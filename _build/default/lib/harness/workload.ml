type op = Insert | Remove | Lookup

type spec = {
  key_bits : int;
  lookup_pct : int;
  threads : int;
  ops_per_thread : int;
  prefill_ratio : float;
  seed : int;
}

let spec ?(prefill_ratio = 0.5) ?(seed = 0x5eed) ~key_bits ~lookup_pct
    ~threads ~ops_per_thread () =
  if key_bits < 1 || key_bits > 30 then invalid_arg "Workload.spec: key_bits";
  if lookup_pct < 0 || lookup_pct > 100 then
    invalid_arg "Workload.spec: lookup_pct";
  if threads < 1 then invalid_arg "Workload.spec: threads";
  { key_bits; lookup_pct; threads; ops_per_thread; prefill_ratio; seed }

let key_range s = 1 lsl s.key_bits

let pp_spec ppf s =
  Format.fprintf ppf "%d-bit keys, %d%% lookups, %d threads, %d ops/thread"
    s.key_bits s.lookup_pct s.threads s.ops_per_thread

module Rng = struct
  type t = { mutable state : int }

  let create ~seed ~thread =
    { state = (seed * 0x9e3779b9) + (thread * 0x85ebca6b) + 1 }

  (* splitmix64-style mixer, truncated to OCaml's 63-bit ints. *)
  let next t =
    t.state <- (t.state + 0x1e3779b97f4a7c15) land max_int;
    let z = t.state in
    let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
    let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb land max_int in
    z lxor (z lsr 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    next t mod bound
end

let next_op rng s =
  let key = 1 + Rng.int rng (key_range s) in
  let roll = Rng.int rng 100 in
  let op =
    if roll < s.lookup_pct then Lookup
    else if (roll - s.lookup_pct) mod 2 = 0 then Insert
    else Remove
  in
  (op, key)

let prefill_keys s =
  let rng = Rng.create ~seed:s.seed ~thread:9999 in
  let range = key_range s in
  let want = int_of_float (s.prefill_ratio *. float_of_int range) in
  let present = Hashtbl.create (2 * want) in
  let rec go acc n guard =
    if n >= want || guard > 100 * range then acc
    else
      let k = 1 + Rng.int rng range in
      if Hashtbl.mem present k then go acc n (guard + 1)
      else begin
        Hashtbl.add present k ();
        go (k :: acc) (n + 1) (guard + 1)
      end
  in
  go [] 0 0
