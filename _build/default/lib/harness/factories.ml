type factory = { label : string; make : unit -> Set_ops.handle }

let rr_kinds =
  List.map
    (fun (name, m) -> (name, Structs.Mode.Rr_kind m))
    Rr.all

let slist ?window ?scatter ?strategy ?rr_config ?max_attempts kind =
  {
    label = Structs.Mode.kind_name kind;
    make =
      (fun () ->
        Set_ops.of_hoh_list
          (Structs.Hoh_list.create ~mode:kind ?window ?scatter ?strategy
             ?rr_config ?max_attempts ()));
  }

let dlist ?window ?scatter ?strategy ?rr_config ?max_attempts ?split_unlink
    kind =
  {
    label = Structs.Mode.kind_name kind;
    make =
      (fun () ->
        Set_ops.of_hoh_dlist
          (Structs.Hoh_dlist.create ~mode:kind ?window ?scatter ?strategy
             ?rr_config ?max_attempts ?split_unlink ()));
  }

let bst_int ?window ?scatter ?strategy ?rr_config ?max_attempts kind =
  {
    label = Structs.Mode.kind_name kind;
    make =
      (fun () ->
        Set_ops.of_bst_int
          (Structs.Hoh_bst_int.create ~mode:kind ?window ?scatter ?strategy
             ?rr_config ?max_attempts ()));
  }

let bst_ext ?window ?scatter ?strategy ?rr_config ?max_attempts kind =
  {
    label = Structs.Mode.kind_name kind;
    make =
      (fun () ->
        Set_ops.of_bst_ext
          (Structs.Hoh_bst_ext.create ~mode:kind ?window ?scatter ?strategy
             ?rr_config ?max_attempts ()));
  }

let hashset ?buckets ?window ?scatter ?strategy ?rr_config ?max_attempts kind =
  {
    label = Structs.Mode.kind_name kind ^ "-hash";
    make =
      (fun () ->
        Set_ops.of_hashset
          (Structs.Hoh_hashset.create ~mode:kind ?buckets ?window ?scatter
             ?strategy ?rr_config ?max_attempts ()));
  }

let skiplist ?window ?scatter ?strategy ?rr_config ?max_attempts kind =
  {
    label = Structs.Mode.kind_name kind ^ "-skip";
    make =
      (fun () ->
        Set_ops.of_skiplist
          (Structs.Hoh_skiplist.create ~mode:kind ?window ?scatter ?strategy
             ?rr_config ?max_attempts ()));
  }

let lf_list reclaim =
  {
    label = (match reclaim with `Leak -> "LFLeak" | `Hp -> "LFHP");
    make =
      (fun () -> Set_ops.of_harris_list (Lockfree.Harris_list.create ~reclaim ()));
  }

let nm_tree () =
  {
    label = "LFLeak-NM";
    make = (fun () -> Set_ops.of_nm_tree (Lockfree.Nm_tree.create ()));
  }

let best_window ~threads = if threads <= 4 then 16 else 8
