lib/harness/serial_check.ml: Array Hashtbl List Printf Workload
