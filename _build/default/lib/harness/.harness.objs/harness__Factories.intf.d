lib/harness/factories.mli: Mempool Rr Set_ops Structs
