lib/harness/set_ops.ml: Lockfree Mempool Option Reclaim Structs
