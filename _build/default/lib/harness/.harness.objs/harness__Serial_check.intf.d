lib/harness/serial_check.mli: Stdlib Workload
