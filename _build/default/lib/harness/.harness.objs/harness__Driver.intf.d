lib/harness/driver.mli: Format Set_ops Stdlib Tm Workload
