lib/harness/workload.ml: Format Hashtbl
