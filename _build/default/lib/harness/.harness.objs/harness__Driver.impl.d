lib/harness/driver.ml: Array Atomic Domain Format List Printf Serial_check Set_ops Stdlib Tm Unix Workload
