lib/harness/factories.ml: List Lockfree Rr Set_ops Structs
