lib/harness/set_ops.mli: Lockfree Structs
