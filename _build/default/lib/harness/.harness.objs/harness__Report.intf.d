lib/harness/report.mli: Format Stdlib
