lib/harness/workload.mli: Format
