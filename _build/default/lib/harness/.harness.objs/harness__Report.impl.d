lib/harness/report.ml: Filename Format List Printf String Unix
