type handle = {
  name : string;
  stamped : bool;
  insert : thread:int -> int -> bool * int;
  remove : thread:int -> int -> bool * int * int;
  lookup : thread:int -> int -> bool * int;
  finalize_thread : thread:int -> unit;
  drain : unit -> unit;
  size : unit -> int;
  contents : unit -> int list;
  check : unit -> (unit, string) result;
  pool_live : unit -> int option;
  max_backlog : unit -> int option;
  leaked : unit -> int option;
}

let hazard_backlog metrics =
  Option.map (fun m -> m.Reclaim.Hazard.max_backlog) metrics

let of_hoh_list l =
  let open Structs.Hoh_list in
  {
    name = name l;
    stamped = true;
    insert = (fun ~thread k -> insert_s l ~thread k);
    remove =
      (fun ~thread k ->
        let r, s = remove_s l ~thread k in
        (r, s, s));
    lookup = (fun ~thread k -> lookup_s l ~thread k);
    finalize_thread = (fun ~thread -> finalize_thread l ~thread);
    drain = (fun () -> drain l);
    size = (fun () -> size l);
    contents = (fun () -> to_list l);
    check = (fun () -> check l);
    pool_live = (fun () -> Some (pool_stats l).Mempool.Stats.live);
    max_backlog = (fun () -> hazard_backlog (hazard_metrics l));
    leaked = (fun () -> None);
  }

let of_hoh_dlist l =
  let open Structs.Hoh_dlist in
  {
    name = name l;
    stamped = true;
    insert = (fun ~thread k -> insert_s l ~thread k);
    remove = (fun ~thread k -> remove_s l ~thread k);
    lookup = (fun ~thread k -> lookup_s l ~thread k);
    finalize_thread = (fun ~thread -> finalize_thread l ~thread);
    drain = (fun () -> drain l);
    size = (fun () -> size l);
    contents = (fun () -> to_list l);
    check = (fun () -> check l);
    pool_live = (fun () -> Some (pool_stats l).Mempool.Stats.live);
    max_backlog = (fun () -> hazard_backlog (hazard_metrics l));
    leaked = (fun () -> None);
  }

let of_bst_int t =
  let open Structs.Hoh_bst_int in
  {
    name = name t;
    stamped = true;
    insert = (fun ~thread k -> insert_s t ~thread k);
    remove =
      (fun ~thread k ->
        let r, s = remove_s t ~thread k in
        (r, s, s));
    lookup = (fun ~thread k -> lookup_s t ~thread k);
    finalize_thread = (fun ~thread -> finalize_thread t ~thread);
    drain = (fun () -> drain t);
    size = (fun () -> size t);
    contents = (fun () -> to_list t);
    check = (fun () -> check t);
    pool_live = (fun () -> Some (pool_stats t).Mempool.Stats.live);
    max_backlog = (fun () -> None);
    leaked = (fun () -> None);
  }

let of_bst_ext t =
  let open Structs.Hoh_bst_ext in
  {
    name = name t;
    stamped = true;
    insert = (fun ~thread k -> insert_s t ~thread k);
    remove =
      (fun ~thread k ->
        let r, s = remove_s t ~thread k in
        (r, s, s));
    lookup = (fun ~thread k -> lookup_s t ~thread k);
    finalize_thread = (fun ~thread -> finalize_thread t ~thread);
    drain = (fun () -> drain t);
    size = (fun () -> size t);
    contents = (fun () -> to_list t);
    check = (fun () -> check t);
    pool_live = (fun () -> Some (pool_stats t).Mempool.Stats.live);
    max_backlog = (fun () -> hazard_backlog (hazard_metrics t));
    leaked = (fun () -> None);
  }

let of_hashset t =
  let open Structs.Hoh_hashset in
  {
    name = name t;
    stamped = true;
    insert = (fun ~thread k -> insert_s t ~thread k);
    remove =
      (fun ~thread k ->
        let r, s = remove_s t ~thread k in
        (r, s, s));
    lookup = (fun ~thread k -> lookup_s t ~thread k);
    finalize_thread = (fun ~thread -> finalize_thread t ~thread);
    drain = (fun () -> drain t);
    size = (fun () -> size t);
    contents = (fun () -> to_list t);
    check = (fun () -> check t);
    pool_live = (fun () -> Some (pool_stats t).Mempool.Stats.live);
    max_backlog = (fun () -> hazard_backlog (hazard_metrics t));
    leaked = (fun () -> None);
  }

let of_skiplist t =
  let open Structs.Hoh_skiplist in
  {
    name = name t;
    stamped = true;
    insert = (fun ~thread k -> insert_s t ~thread k);
    remove =
      (fun ~thread k ->
        let r, s = remove_s t ~thread k in
        (r, s, s));
    lookup = (fun ~thread k -> lookup_s t ~thread k);
    finalize_thread = (fun ~thread -> finalize_thread t ~thread);
    drain = (fun () -> drain t);
    size = (fun () -> size t);
    contents = (fun () -> to_list t);
    check = (fun () -> check t);
    pool_live = (fun () -> Some (pool_stats t).Mempool.Stats.live);
    max_backlog = (fun () -> hazard_backlog (hazard_metrics t));
    leaked = (fun () -> None);
  }

let of_harris_list l =
  let open Lockfree.Harris_list in
  let leaked () =
    match hazard_metrics l with
    | Some _ -> None
    | None -> Some ((pool_stats l).Mempool.Stats.live - size l)
  in
  {
    name = name l;
    stamped = false;
    insert = (fun ~thread k -> (insert l ~thread k, 0));
    remove = (fun ~thread k -> (remove l ~thread k, 0, 0));
    lookup = (fun ~thread k -> (lookup l ~thread k, 0));
    finalize_thread = (fun ~thread -> finalize_thread l ~thread);
    drain = (fun () -> drain l);
    size = (fun () -> size l);
    contents = (fun () -> to_list l);
    check = (fun () -> check l);
    pool_live = (fun () -> Some (pool_stats l).Mempool.Stats.live);
    max_backlog = (fun () -> hazard_backlog (hazard_metrics l));
    leaked;
  }

let of_nm_tree t =
  let open Lockfree.Nm_tree in
  {
    name = name t;
    stamped = false;
    insert = (fun ~thread k -> (insert t ~thread k, 0));
    remove = (fun ~thread k -> (remove t ~thread k, 0, 0));
    lookup = (fun ~thread k -> (lookup t ~thread k, 0));
    finalize_thread = (fun ~thread -> finalize_thread t ~thread);
    drain = (fun () -> drain t);
    size = (fun () -> size t);
    contents = (fun () -> to_list t);
    check = (fun () -> check t);
    pool_live = (fun () -> None);
    max_backlog = (fun () -> None);
    leaked = (fun () -> Some (allocated t - reachable t));
  }
