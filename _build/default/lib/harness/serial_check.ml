type logged = {
  op : Workload.op;
  key : int;
  result : bool;
  earliest : int;  (** = [stamp] for point operations *)
  stamp : int;
}

(* Successful inserts and removes write set content in their final
   transaction, so their stamps are unique writer timestamps; everything
   else is placed after writers with the same stamp (a reader with stamp s
   observed exactly the writes with stamps <= s). *)
let is_writer l =
  match (l.op, l.result) with
  | (Workload.Insert | Workload.Remove), true -> true
  | _ -> false

let check ~initial logs =
  let all =
    List.concat_map Array.to_list logs
    |> List.stable_sort (fun a b ->
           match compare a.stamp b.stamp with
           | 0 -> compare (is_writer b) (is_writer a) (* writers first *)
           | c -> c)
  in
  let model = Hashtbl.create 4096 in
  (* key -> stamp of the insert that made it present *)
  List.iter (fun k -> Hashtbl.replace model k 0) initial;
  let fail l expected =
    Error
      (Printf.sprintf
         "serialization violation: %s %d at stamp %d (earliest %d) returned \
          %b, expected %b%s"
         (match l.op with
         | Workload.Insert -> "insert"
         | Workload.Remove -> "remove"
         | Workload.Lookup -> "lookup")
         l.key l.stamp l.earliest l.result expected
         (match Hashtbl.find_opt model l.key with
         | Some s -> Printf.sprintf " (present since %d)" s
         | None -> " (absent)"))
  in
  let replay l =
    let present = Hashtbl.mem model l.key in
    match l.op with
    | Workload.Lookup -> if present <> l.result then fail l present else Ok ()
    | Workload.Insert ->
        if present then if l.result then fail l false else Ok ()
        else if l.result then begin
          Hashtbl.replace model l.key l.stamp;
          Ok ()
        end
        else fail l true
    | Workload.Remove ->
        if l.result then
          if present then begin
            Hashtbl.remove model l.key;
            Ok ()
          end
          else fail l false
        else if not present then Ok ()
        else if
          (* Interval-linearized fast-fail: valid iff the key was absent at
             some point in (earliest, stamp], i.e. it is absent now or its
             current presence began inside the interval. *)
          l.earliest < l.stamp && Hashtbl.find model l.key > l.earliest
        then Ok ()
        else fail l false
  in
  let rec go = function
    | [] -> Ok ()
    | l :: rest -> ( match replay l with Ok () -> go rest | e -> e)
  in
  go all
