(** Serializability checking via TM commit stamps.

    TL2 gives every writing commit a unique global timestamp and every
    read-only commit the clock value it observed, so a valid serialization
    of all committed operations is: sort by stamp, writers before readers at
    equal stamps. This module replays the per-thread operation logs in that
    order against a sequential set model and reports the first divergence —
    a direct check of the paper's claim that a chain of hand-over-hand
    transactions behaves like one atomic operation (each multi-transaction
    operation is placed at its {e final} transaction's stamp). *)

type logged = {
  op : Workload.op;
  key : int;
  result : bool;
  earliest : int;
      (** equals [stamp] for point operations; strictly smaller for the
          doubly-linked-list strict fast-fail, which may linearize anywhere
          in [(earliest, stamp]] *)
  stamp : int;
}

val check : initial:int list -> logged array list -> (unit, string) Stdlib.result
(** [check ~initial logs] with one log per thread; [initial] is the
    structure's contents before the run. *)
