(** Text/CSV rendering of benchmark series, one table per figure panel:
    thread counts down the rows, one column per implementation. *)

type series = { label : string; points : (int * float) list }

val render_table :
  title:string -> xlabel:string -> series list -> Format.formatter -> unit

val print_table : title:string -> xlabel:string -> series list -> unit

val save_csv :
  dir:string -> name:string -> xlabel:string -> series list -> string
(** Writes [dir/name.csv]; returns the path. *)

val summarize_verdicts : (string * (unit, string) Stdlib.result) list -> unit
(** Print any failed correctness verdicts collected during a figure run. *)
