(** A uniform runtime handle over every set implementation in the
    repository, so the driver and benchmarks can treat the paper's curves
    (HTM, RR-*, TMHP, REF, LFLeak, LFHP, LFLeak-NM) interchangeably.

    Stamped operations return the operation's linearization stamp; for the
    non-transactional (lock-free) structures there is no stamp and
    [stamped] is [false] — the serialization checker skips them. *)

type handle = {
  name : string;
  stamped : bool;
  insert : thread:int -> int -> bool * int;
  remove : thread:int -> int -> bool * int * int;
      (** (result, earliest, stamp): linearizes at [stamp] except for the
          doubly-linked-list strict fast-fail, which may linearize anywhere
          in [(earliest, stamp]] *)
  lookup : thread:int -> int -> bool * int;
  finalize_thread : thread:int -> unit;
  drain : unit -> unit;
  size : unit -> int;
  contents : unit -> int list;
  check : unit -> (unit, string) result;
  pool_live : unit -> int option;
      (** live allocator objects after drain — the precise-reclamation
          footprint *)
  max_backlog : unit -> int option;
      (** worst-case deferred-reclamation backlog (hazard pointers) *)
  leaked : unit -> int option;  (** nodes never reclaimed (leaky baselines) *)
}

val of_hoh_list : Structs.Hoh_list.t -> handle
val of_hoh_dlist : Structs.Hoh_dlist.t -> handle
val of_bst_int : Structs.Hoh_bst_int.t -> handle
val of_bst_ext : Structs.Hoh_bst_ext.t -> handle
val of_hashset : Structs.Hoh_hashset.t -> handle
val of_skiplist : Structs.Hoh_skiplist.t -> handle
val of_harris_list : Lockfree.Harris_list.t -> handle
val of_nm_tree : Lockfree.Nm_tree.t -> handle
