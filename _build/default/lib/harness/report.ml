type series = { label : string; points : (int * float) list }

let xs_of series =
  List.sort_uniq compare
    (List.concat_map (fun s -> List.map fst s.points) series)

let render_table ~title ~xlabel series ppf =
  let xs = xs_of series in
  Format.fprintf ppf "@.== %s ==@." title;
  Format.fprintf ppf "%-10s" xlabel;
  List.iter (fun s -> Format.fprintf ppf " %14s" s.label) series;
  Format.fprintf ppf "@.";
  List.iter
    (fun x ->
      Format.fprintf ppf "%-10d" x;
      List.iter
        (fun s ->
          match List.assoc_opt x s.points with
          | Some v -> Format.fprintf ppf " %14.0f" v
          | None -> Format.fprintf ppf " %14s" "-")
        series;
      Format.fprintf ppf "@.")
    xs

let print_table ~title ~xlabel series =
  render_table ~title ~xlabel series Format.std_formatter;
  Format.print_flush ()

let save_csv ~dir ~name ~xlabel series =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (name ^ ".csv") in
  let oc = open_out path in
  let xs = xs_of series in
  output_string oc
    (String.concat ","
       (xlabel :: List.map (fun s -> s.label) series)
    ^ "\n");
  List.iter
    (fun x ->
      let row =
        string_of_int x
        :: List.map
             (fun s ->
               match List.assoc_opt x s.points with
               | Some v -> Printf.sprintf "%.1f" v
               | None -> "")
             series
      in
      output_string oc (String.concat "," row ^ "\n"))
    xs;
  close_out oc;
  path

let summarize_verdicts verdicts =
  let failures =
    List.filter_map
      (function name, Error e -> Some (name, e) | _, Ok () -> None)
      verdicts
  in
  match failures with
  | [] -> print_endline "verification: all runs passed"
  | fs ->
      List.iter
        (fun (name, e) -> Printf.printf "verification FAILURE [%s]: %s\n" name e)
        fs
