(** Named constructors for every curve in the paper's figures. *)

type factory = { label : string; make : unit -> Set_ops.handle }

val rr_kinds : (string * Structs.Mode.kind) list
(** The six reservation implementations, as [Mode.Rr_kind]s. *)

val slist :
  ?window:int ->
  ?scatter:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?max_attempts:int ->
  Structs.Mode.kind ->
  factory

val dlist :
  ?window:int ->
  ?scatter:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?max_attempts:int ->
  ?split_unlink:bool ->
  Structs.Mode.kind ->
  factory

val bst_int :
  ?window:int ->
  ?scatter:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?max_attempts:int ->
  Structs.Mode.kind ->
  factory

val bst_ext :
  ?window:int ->
  ?scatter:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?max_attempts:int ->
  Structs.Mode.kind ->
  factory

val hashset :
  ?buckets:int ->
  ?window:int ->
  ?scatter:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?max_attempts:int ->
  Structs.Mode.kind ->
  factory

val skiplist :
  ?window:int ->
  ?scatter:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?max_attempts:int ->
  Structs.Mode.kind ->
  factory

val lf_list : [ `Leak | `Hp ] -> factory
val nm_tree : unit -> factory

val best_window : threads:int -> int
(** The paper tunes the window per thread count: larger windows win at low
    thread counts, smaller at high counts (Sec. 5.2). *)
