let walk txn ~key ~prev ~budget =
  let rec go prev curr i =
    match curr with
    | None -> `Absent (prev, None)
    | Some c ->
        let k = Tm.read txn c.Lnode.key in
        if k = key then `Found (prev, c)
        else if k > key then `Absent (prev, Some c)
        else if i >= budget then `Window c
        else go c (Tm.read txn c.Lnode.next) (i + 1)
  in
  go prev (Tm.read txn prev.Lnode.next) 1
