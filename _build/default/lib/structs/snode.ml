type t = {
  id : int;
  pstate : int Atomic.t;
  gen : int Atomic.t;
  key : int Tm.tvar;
  next : t option Tm.tvar array;
  level : int Tm.tvar;
  deleted : bool Tm.tvar;
  rc : Reclaim.Rc.t;
}

let max_level = 16
let poisoned_key = min_int

let make id =
  {
    id;
    pstate = Atomic.make 0;
    gen = Atomic.make 0;
    key = Tm.tvar poisoned_key;
    next = Array.init max_level (fun _ -> Tm.tvar None);
    level = Tm.tvar 0;
    deleted = Tm.tvar false;
    rc = Reclaim.Rc.make 0;
  }

let poison n =
  Tm.poke n.key poisoned_key;
  Tm.poke n.level 0;
  Tm.poke n.deleted true;
  Array.iter (fun nx -> Tm.poke nx None) n.next

let make_pool ?strategy () =
  Mempool.create ?strategy ~make ~node_id:(fun n -> n.id)
    ~state:(fun n -> n.pstate)
    ~poison ()

let sentinel () =
  let n = make (-1) in
  Tm.poke n.level max_level;
  n

let hash n =
  let h = n.id * 0x9e3779b1 in
  h lxor (h lsr 16)

let equal a b = a == b

let alloc pool ~thread =
  let n = Mempool.alloc pool ~thread in
  Atomic.incr n.gen;
  Tm.poke n.deleted false;
  Array.iter (fun nx -> Tm.poke nx None) n.next;
  n
