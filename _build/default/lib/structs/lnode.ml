type t = {
  id : int;
  pstate : int Atomic.t;
  gen : int Atomic.t;
  key : int Tm.tvar;
  next : t option Tm.tvar;
  prev : t option Tm.tvar;
  deleted : bool Tm.tvar;
  rc : Reclaim.Rc.t;
}

let poisoned_key = min_int

let make id =
  {
    id;
    pstate = Atomic.make 0;
    gen = Atomic.make 0;
    key = Tm.tvar poisoned_key;
    next = Tm.tvar None;
    prev = Tm.tvar None;
    deleted = Tm.tvar false;
    rc = Reclaim.Rc.make 0;
  }

(* Version-bumping writes: a doomed transaction that read this node before
   it was freed can no longer pass commit-time validation. *)
let poison n =
  Tm.poke n.key poisoned_key;
  Tm.poke n.next None;
  Tm.poke n.prev None;
  Tm.poke n.deleted true

let make_pool ?strategy () =
  Mempool.create ?strategy ~make ~node_id:(fun n -> n.id)
    ~state:(fun n -> n.pstate)
    ~poison ()

let sentinel () = make (-1)

let hash n =
  let h = n.id * 0x9e3779b1 in
  h lxor (h lsr 16)

let equal a b = a == b

let alloc pool ~thread =
  let n = Mempool.alloc pool ~thread in
  Atomic.incr n.gen;
  Tm.poke n.deleted false;
  Tm.poke n.next None;
  Tm.poke n.prev None;
  n
