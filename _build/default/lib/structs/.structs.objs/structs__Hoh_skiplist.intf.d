lib/structs/hoh_skiplist.mli: Mempool Mode Reclaim Rr
