lib/structs/list_walk.ml: Lnode Tm
