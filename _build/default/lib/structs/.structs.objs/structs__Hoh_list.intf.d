lib/structs/hoh_list.mli: Mempool Mode Reclaim Rr
