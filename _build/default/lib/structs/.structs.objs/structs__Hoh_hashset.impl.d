lib/structs/hoh_hashset.ml: Array Atomic List List_walk Lnode Mempool Mode Printf Rr Tm
