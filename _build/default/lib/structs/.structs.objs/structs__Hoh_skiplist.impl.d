lib/structs/hoh_skiplist.ml: Array Atomic Hashtbl List Mempool Mode Printf Rr Snode Tm
