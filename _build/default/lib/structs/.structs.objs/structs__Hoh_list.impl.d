lib/structs/hoh_list.ml: Atomic List List_walk Lnode Mempool Mode Printf Rr Tm
