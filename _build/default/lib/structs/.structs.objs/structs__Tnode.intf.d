lib/structs/tnode.mli: Atomic Mempool Reclaim Tm
