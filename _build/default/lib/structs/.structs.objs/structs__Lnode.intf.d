lib/structs/lnode.mli: Atomic Mempool Reclaim Tm
