lib/structs/hoh_dlist.ml: Atomic List List_walk Lnode Mempool Mode Printf Rr Tm
