lib/structs/snode.mli: Atomic Mempool Reclaim Tm
