lib/structs/mode.mli: Atomic Mempool Reclaim Rr Tm
