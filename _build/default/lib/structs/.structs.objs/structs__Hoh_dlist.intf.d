lib/structs/hoh_dlist.mli: Mempool Mode Reclaim Rr
