lib/structs/list_walk.mli: Lnode Tm
