lib/structs/tnode.ml: Atomic Mempool Reclaim Tm
