lib/structs/mode.ml: Array Atomic Mempool Reclaim Rr Tm
