lib/structs/snode.ml: Array Atomic Mempool Reclaim Tm
