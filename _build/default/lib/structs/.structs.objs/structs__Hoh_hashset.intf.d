lib/structs/hoh_hashset.mli: Mempool Mode Reclaim Rr
