lib/structs/hoh_bst_ext.mli: Mempool Mode Reclaim Rr
