lib/structs/hoh_bst_int.mli: Mempool Mode Rr
