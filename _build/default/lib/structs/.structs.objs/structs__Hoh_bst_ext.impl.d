lib/structs/hoh_bst_ext.ml: Atomic List Mempool Mode Option Printf Rr Tm Tnode
