lib/structs/lnode.ml: Atomic Mempool Reclaim Tm
