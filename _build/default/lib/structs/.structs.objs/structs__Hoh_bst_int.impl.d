lib/structs/hoh_bst_int.ml: Atomic List Mempool Mode Printf Rr Tm Tnode
