(** The windowed traversal loop shared by the singly and doubly linked
    lists (the [while] of Listing 5). *)

val walk :
  Tm.txn ->
  key:int ->
  prev:Lnode.t ->
  budget:int ->
  [ `Found of Lnode.t * Lnode.t  (** (prev, curr) with [curr.key = key] *)
  | `Absent of Lnode.t * Lnode.t option
    (** key not present; curr is its successor *)
  | `Window of Lnode.t  (** budget exhausted; hand off at this node *) ]
(** Reads at most [budget] nodes starting at [prev.next]. *)
