lib/reclaim/epoch.ml: Array Atomic List Tm Unix
