lib/reclaim/hazard.mli:
