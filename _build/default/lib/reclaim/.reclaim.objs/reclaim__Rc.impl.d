lib/reclaim/rc.ml: Tm
