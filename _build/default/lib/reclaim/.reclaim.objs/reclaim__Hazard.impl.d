lib/reclaim/hazard.ml: Array Atomic List Tm Unix
