lib/reclaim/rc.mli: Tm
