lib/reclaim/epoch.mli:
