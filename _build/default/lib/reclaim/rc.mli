(** Transactional reference counts, used by the paper's REF list variant.

    Each node carries a counter in its own tvar (the paper keeps counts "in
    separate cache lines" — here, separate tvars — so that counter traffic
    does not conflict with node-field traffic). A node is freed by whichever
    transaction drops the count to zero after the node was unlinked. *)

type t

val make : int -> t
(** [make n] creates a counter initialized to [n]. *)

val incr : Tm.txn -> t -> unit

val decr : Tm.txn -> t -> int
(** Decrement and return the new count.
    @raise Invalid_argument if the count would go negative. *)

val get : Tm.txn -> t -> int
val peek : t -> int
