type t = int Tm.tvar

let make n = Tm.tvar n
let incr txn t = Tm.write txn t (Tm.read txn t + 1)

let decr txn t =
  let n = Tm.read txn t - 1 in
  if n < 0 then invalid_arg "Rc.decr: negative refcount";
  Tm.write txn t n;
  n

let get txn t = Tm.read txn t
let peek t = Tm.peek t
