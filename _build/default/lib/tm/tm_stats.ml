type t = {
  mutable started : int;
  mutable commits : int;
  mutable aborts_read : int;
  mutable aborts_lock : int;
  mutable aborts_serial : int;
  mutable aborts_user : int;
  mutable fallbacks : int;
}

let create () =
  {
    started = 0;
    commits = 0;
    aborts_read = 0;
    aborts_lock = 0;
    aborts_serial = 0;
    aborts_user = 0;
    fallbacks = 0;
  }

let reset t =
  t.started <- 0;
  t.commits <- 0;
  t.aborts_read <- 0;
  t.aborts_lock <- 0;
  t.aborts_serial <- 0;
  t.aborts_user <- 0;
  t.fallbacks <- 0

let add acc x =
  acc.started <- acc.started + x.started;
  acc.commits <- acc.commits + x.commits;
  acc.aborts_read <- acc.aborts_read + x.aborts_read;
  acc.aborts_lock <- acc.aborts_lock + x.aborts_lock;
  acc.aborts_serial <- acc.aborts_serial + x.aborts_serial;
  acc.aborts_user <- acc.aborts_user + x.aborts_user;
  acc.fallbacks <- acc.fallbacks + x.fallbacks

let total_aborts t =
  t.aborts_read + t.aborts_lock + t.aborts_serial + t.aborts_user

let copy t =
  {
    started = t.started;
    commits = t.commits;
    aborts_read = t.aborts_read;
    aborts_lock = t.aborts_lock;
    aborts_serial = t.aborts_serial;
    aborts_user = t.aborts_user;
    fallbacks = t.fallbacks;
  }

let pp ppf t =
  Format.fprintf ppf
    "started=%d commits=%d aborts(read=%d lock=%d serial=%d user=%d) \
     fallbacks=%d"
    t.started t.commits t.aborts_read t.aborts_lock t.aborts_serial
    t.aborts_user t.fallbacks
