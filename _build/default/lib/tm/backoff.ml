type t = {
  min_wait : int;
  max_wait : int;
  mutable cur : int;
  mutable seed : int;
}

let create ?(min_wait = 16) ?(max_wait = 4096) () =
  { min_wait; max_wait; cur = min_wait; seed = 0x9e3779b9 }

(* xorshift step; cheap thread-local randomness, no global state. *)
let next_random b =
  let s = b.seed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  b.seed <- s;
  s land max_int

let once b =
  let spins = b.min_wait + (next_random b mod b.cur) in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done;
  b.cur <- min b.max_wait (b.cur * 2)

let reset b = b.cur <- b.min_wait
