(** The TL2 global version clock.

    Every writing transaction increments the clock at commit; the value it
    obtains is its unique commit timestamp ([wv]). Readers sample the clock
    at begin ([rv]) and only accept locations whose version is [<= rv]. *)

val sample : unit -> int
(** Current clock value; used as a transaction's read version. *)

val advance : unit -> int
(** Atomically increment the clock and return the {e new} value; used as a
    writing transaction's unique commit timestamp. *)

val reset_for_testing : unit -> unit
(** Reset to zero. Only for unit tests that assert on absolute stamps. *)
