let clock = Atomic.make 0

let sample () = Atomic.get clock

let advance () = 1 + Atomic.fetch_and_add clock 1

let reset_for_testing () = Atomic.set clock 0
