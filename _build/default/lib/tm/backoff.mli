(** Randomized exponential backoff for contended retry loops.

    Every wait spins on {!Domain.cpu_relax}, which yields the processor on
    oversubscribed machines; this matters because the benchmark harness runs
    more domains than hardware threads. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] makes a fresh backoff whose first wait spins for roughly
    [min_wait] iterations and doubles up to [max_wait]. The number of
    iterations is randomized to de-synchronize colliding threads. *)

val once : t -> unit
(** [once b] waits for the current duration and doubles the next one. *)

val reset : t -> unit
(** [reset b] returns [b] to its initial (shortest) wait. *)
