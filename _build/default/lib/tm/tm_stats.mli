(** Per-thread transaction statistics.

    Counters are plain mutable fields: each record is written by exactly one
    thread and only read by others after the worker threads have joined, so
    no synchronization is needed on the hot path. *)

type t = {
  mutable started : int;  (** transaction attempts begun *)
  mutable commits : int;  (** attempts that committed *)
  mutable aborts_read : int;  (** read-validation failures (opacity) *)
  mutable aborts_lock : int;  (** lock-busy at read or commit time *)
  mutable aborts_serial : int;  (** backed off for a serial transaction *)
  mutable aborts_user : int;  (** explicit {!Tm.retry} *)
  mutable fallbacks : int;  (** operations that ran in serial mode *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val total_aborts : t -> int
val copy : t -> t
val pp : Format.formatter -> t -> unit
