lib/tm/tm.ml: Array Atomic Backoff Domain Fun Gclock List Mutex Obj Tm_stats
