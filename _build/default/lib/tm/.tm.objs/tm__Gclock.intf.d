lib/tm/gclock.mli:
