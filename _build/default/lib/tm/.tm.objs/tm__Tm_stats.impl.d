lib/tm/tm_stats.ml: Format
