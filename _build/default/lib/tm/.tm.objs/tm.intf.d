lib/tm/tm.mli: Tm_stats
