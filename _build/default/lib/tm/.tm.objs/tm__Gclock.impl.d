lib/tm/gclock.ml: Atomic
