lib/tm/backoff.mli:
