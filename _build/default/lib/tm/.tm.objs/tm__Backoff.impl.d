lib/tm/backoff.ml: Domain
