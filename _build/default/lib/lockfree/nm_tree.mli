(** Lock-free external BST of Natarajan and Mittal (PPoPP 2014), the
    paper's "LFLeak" tree baseline (taken from SynchroBench there; it leaks
    removed nodes, as the paper notes).

    Edges — not nodes — carry the synchronization state: a {e flag} on the
    edge to a leaf marks it for deletion, a {e tag} on the sibling edge
    pins it, and the deletion is completed by swinging the ancestor edge to
    the pinned sibling subtree. Operations help complete deletions they
    encounter. Keys are bounded above by three sentinels; the tree is
    initialized so a real leaf's parent is always a proper internal node. *)

type t

val create : unit -> t

val name : t -> string
val max_key : int
(** Largest insertable key (sentinels occupy the top of the range). *)

val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool
val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val to_list : t -> int list
val size : t -> int
val check : t -> (unit, string) result

val allocated : t -> int
(** Total nodes (internal + leaf) ever allocated; with no reclamation the
    difference against the reachable count is the leak. *)

val reachable : t -> int
(** Nodes currently reachable (quiescent). *)
