lib/lockfree/harris_list.mli: Mempool Reclaim
