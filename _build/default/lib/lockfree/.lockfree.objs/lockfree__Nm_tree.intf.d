lib/lockfree/nm_tree.mli:
