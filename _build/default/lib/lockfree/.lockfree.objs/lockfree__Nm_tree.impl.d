lib/lockfree/nm_tree.ml: Atomic List Printf
