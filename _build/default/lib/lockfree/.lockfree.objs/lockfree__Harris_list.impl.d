lib/lockfree/harris_list.ml: Atomic List Mempool Printf Reclaim
