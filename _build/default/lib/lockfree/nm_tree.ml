type node =
  | Leaf of { key : int }
  | Internal of { key : int; left : edge Atomic.t; right : edge Atomic.t }

and edge = { target : node; flag : bool; tag : bool }

let plain target = { target; flag = false; tag = false }
let node_key = function Leaf l -> l.key | Internal i -> i.key

(* Sentinel keys: all real keys are strictly below [inf0]. *)
let inf0 = max_int - 2
let inf1 = max_int - 1
let inf2 = max_int
let max_key = inf0 - 1

type t = {
  root : node;  (** R: Internal inf2 *)
  s : node;  (** S: Internal inf1, R's left child *)
  allocs : int Atomic.t;
}

let create () =
  let s =
    Internal
      {
        key = inf1;
        left = Atomic.make (plain (Leaf { key = inf0 }));
        right = Atomic.make (plain (Leaf { key = inf1 }));
      }
  in
  let root =
    Internal
      {
        key = inf2;
        left = Atomic.make (plain s);
        right = Atomic.make (plain (Leaf { key = inf2 }));
      }
  in
  { root; s; allocs = Atomic.make 5 }

let name _ = "LFLeak-NM"

let fields = function
  | Internal i -> (i.key, i.left, i.right)
  | Leaf _ -> invalid_arg "Nm_tree: leaf has no children"

let child_field node key =
  let k, l, r = fields node in
  if key < k then l else r

type seek_record = {
  ancestor : node;
  successor : node;
  suc_edge : edge;  (** the edge [ancestor -> successor] as read *)
  parent : node;
  par_edge : edge;  (** the edge [parent -> leaf] as read *)
  leaf : node;
}

let seek t key =
  let rec go ~anc ~suc ~suc_edge ~par ~par_edge =
    match par_edge.target with
    | Leaf _ ->
        { ancestor = anc; successor = suc; suc_edge; parent = par; par_edge;
          leaf = par_edge.target }
    | Internal _ as current ->
        let anc, suc, suc_edge =
          if not par_edge.tag then (par, current, par_edge)
          else (anc, suc, suc_edge)
        in
        let field = child_field current key in
        go ~anc ~suc ~suc_edge ~par:current ~par_edge:(Atomic.get field)
  in
  let sl =
    match t.s with Internal i -> i.left | Leaf _ -> assert false
  in
  let e0 = Atomic.get sl in
  go ~anc:t.root ~suc:t.s
    ~suc_edge:(Atomic.get (child_field t.root key))
    ~par:t.s ~par_edge:e0

(* Complete (or help complete) the deletion prepared at [s]: pin the
   sibling edge with a tag, then swing the ancestor edge from the successor
   to the sibling subtree, propagating any flag on the sibling edge. *)
let cleanup _t key s =
  let pkey, pl, pr = fields s.parent in
  let child_f, sibling_f = if key < pkey then (pl, pr) else (pr, pl) in
  let ce = Atomic.get child_f in
  let sibling_f = if ce.flag then sibling_f else child_f in
  let rec pin () =
    let se = Atomic.get sibling_f in
    if se.tag then se
    else if Atomic.compare_and_set sibling_f se { se with tag = true } then
      { se with tag = true }
    else pin ()
  in
  let se = pin () in
  let afield = child_field s.ancestor key in
  Atomic.compare_and_set afield s.suc_edge
    { target = se.target; flag = se.flag; tag = false }

let lookup t ~thread:_ key =
  if key > max_key then invalid_arg "Nm_tree: key out of range";
  match (seek t key).leaf with
  | Leaf l -> l.key = key
  | Internal _ -> assert false

let insert t ~thread:_ key =
  if key > max_key || key <= min_int + 1 then
    invalid_arg "Nm_tree: key out of range";
  let rec loop () =
    let s = seek t key in
    let lkey = node_key s.leaf in
    if lkey = key then false
    else begin
      let field = child_field s.parent key in
      let e = s.par_edge in
      if e.flag || e.tag then begin
        (* The edge is involved in a deletion (flag: of this leaf; tag: of
           its sibling): help complete it, then retry. *)
        ignore (cleanup t key s);
        loop ()
      end
      else begin
        let new_leaf = Leaf { key } in
        let lo, hi = if key < lkey then (new_leaf, s.leaf) else (s.leaf, new_leaf) in
        let internal =
          Internal
            {
              key = max key lkey;
              left = Atomic.make (plain lo);
              right = Atomic.make (plain hi);
            }
        in
        ignore (Atomic.fetch_and_add t.allocs 2);
        if Atomic.compare_and_set field e (plain internal) then true else loop ()
      end
    end
  in
  loop ()

let remove t ~thread:_ key =
  if key > max_key then invalid_arg "Nm_tree: key out of range";
  let rec inject () =
    let s = seek t key in
    if node_key s.leaf <> key then false
    else
      let field = child_field s.parent key in
      let e = s.par_edge in
      if e.target != s.leaf then inject ()
      else if e.flag || e.tag then begin
        ignore (cleanup t key s);
        inject ()
      end
      else if Atomic.compare_and_set field e { e with flag = true } then
        if cleanup t key s then true else finish s.leaf
      else inject ()
  and finish leaf =
    let s = seek t key in
    if s.leaf != leaf then true (* a helper finished our deletion *)
    else if cleanup t key s then true
    else finish leaf
  in
  inject ()

let finalize_thread _ ~thread:_ = ()
let drain _ = ()

let rec fold_leaves acc node f =
  match node with
  | Leaf l -> if l.key <= max_key then f acc l.key else acc
  | Internal i ->
      let acc = fold_leaves acc (Atomic.get i.left).target f in
      fold_leaves acc (Atomic.get i.right).target f

let to_list t = List.rev (fold_leaves [] t.root (fun acc k -> k :: acc))
let size t = fold_leaves 0 t.root (fun acc _ -> acc + 1)

let rec count_nodes node =
  match node with
  | Leaf _ -> 1
  | Internal i ->
      1
      + count_nodes (Atomic.get i.left).target
      + count_nodes (Atomic.get i.right).target

let reachable t = count_nodes t.root
let allocated t = Atomic.get t.allocs

let check t =
  let exception Bad of string in
  (* Routing rule: key < i.key goes left, so left keys are <= i.key - 1 and
     right keys >= i.key; bounds are inclusive. *)
  let rec go node ~lo ~hi =
    match node with
    | Leaf l ->
        if not (l.key >= lo && l.key <= hi) then
          raise (Bad (Printf.sprintf "leaf %d out of bounds" l.key))
    | Internal i ->
        if not (i.key >= lo && i.key <= hi) then
          raise (Bad (Printf.sprintf "internal %d out of bounds" i.key));
        let le = Atomic.get i.left and re = Atomic.get i.right in
        if le.flag || le.tag || re.flag || re.tag then
          raise (Bad (Printf.sprintf "dirty edge below %d after quiesce" i.key));
        go le.target ~lo ~hi:(i.key - 1);
        go re.target ~lo:i.key ~hi
  in
  match go t.root ~lo:min_int ~hi:max_int with
  | () -> Ok ()
  | exception Bad m -> Error m
