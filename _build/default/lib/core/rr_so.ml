(** RR-SO: shared-ownership reservations — {!Rr_own} with
    {!Rr_config.t.assoc} ownership arrays. Threads mapping to different
    ways can hold reservations on the same reference simultaneously;
    [Revoke] writes [-1] in every way (O(A)). *)

type 'r t = 'r Rr_own.t

let name = "RR-SO"
let strict = false

let create ?(config = Rr_config.default) ~hash ~equal () =
  Rr_own.create_t ~ways:config.Rr_config.assoc ~config ~hash ~equal

let register = Rr_own.register
let reserve = Rr_own.reserve
let release = Rr_own.release
let release_all = Rr_own.release_all
let get = Rr_own.get
let revoke = Rr_own.revoke
