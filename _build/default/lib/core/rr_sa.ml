(** RR-SA: set-associative reservations — {!Rr_assoc} with
    {!Rr_config.t.assoc} ways. Threads map to ways, so concurrent
    [Reserve]/[Release] rarely share a list; in exchange [Revoke] must
    walk the hashed bucket in all [A] ways (O(A + T)). *)

type 'r t = 'r Rr_assoc.t

let name = "RR-SA"
let strict = true

let create ?(config = Rr_config.default) ~hash ~equal () =
  Rr_assoc.create_t ~ways:config.Rr_config.assoc ~config ~hash ~equal

let register = Rr_assoc.register
let reserve = Rr_assoc.reserve
let release = Rr_assoc.release
let release_all = Rr_assoc.release_all
let get = Rr_assoc.get
let revoke = Rr_assoc.revoke
