(** Tuning knobs shared by the revocable-reservation implementations. *)

type t = {
  slots_per_thread : int;
      (** Reservation-set capacity per thread ([K]). The paper presents the
          algorithms with one reservation per thread and notes the extension
          to sets is straightforward; all implementations here support
          [K >= 1]. Default 1. *)
  buckets : int;
      (** Size of the hash-indexed metadata arrays ([OWN], [V], and the
          direct-mapped bucket array). More buckets mean fewer spurious
          revocations in the relaxed implementations. Default 256. *)
  assoc : int;
      (** Number of ways ([A]) for the set-associative (RR-SA) and shared
          ownership (RR-SO) variants. The paper's evaluation uses [A = 8]. *)
  dm_eager_unlink : bool;
      (** RR-DM/RR-SA: when true (default), [Release] unlinks the thread's
          cell from its bucket immediately; when false, unlinking is
          deferred to the next [Reserve] — the paper's contention-avoiding
          optimization ("a thread can delay removing the node from its list
          until a subsequent transaction"). *)
}

val default : t
val validate : t -> unit
(** @raise Invalid_argument on nonsensical values. *)
