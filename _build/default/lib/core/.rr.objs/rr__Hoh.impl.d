lib/core/hoh.ml: Array Rr_intf Tm
