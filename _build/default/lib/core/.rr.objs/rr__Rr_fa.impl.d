lib/core/rr_fa.ml: Array Rr_config Tm
