lib/core/rr_so.ml: Rr_config Rr_own
