lib/core/rr.mli: Hoh Rr_config Rr_intf Rr_spec_model Tm
