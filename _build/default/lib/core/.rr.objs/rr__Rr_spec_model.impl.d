lib/core/rr_spec_model.ml: Hashtbl List Option
