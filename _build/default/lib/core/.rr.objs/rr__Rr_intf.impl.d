lib/core/rr_intf.ml: Rr_config Tm
