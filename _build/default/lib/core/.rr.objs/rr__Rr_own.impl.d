lib/core/rr_own.ml: Array Rr_config Tm
