lib/core/hoh.mli: Rr_intf Tm
