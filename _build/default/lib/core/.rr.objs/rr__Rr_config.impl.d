lib/core/rr_config.ml:
