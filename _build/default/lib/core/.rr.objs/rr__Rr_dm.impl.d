lib/core/rr_dm.ml: Rr_assoc Rr_config
