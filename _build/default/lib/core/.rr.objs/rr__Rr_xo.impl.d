lib/core/rr_xo.ml: Rr_config Rr_own
