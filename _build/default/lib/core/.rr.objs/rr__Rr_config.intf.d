lib/core/rr_config.mli:
