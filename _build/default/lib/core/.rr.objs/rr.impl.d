lib/core/rr.ml: Hoh List Rr_config Rr_dm Rr_fa Rr_intf Rr_sa Rr_so Rr_spec_model Rr_v Rr_xo Tm
