lib/core/rr_sa.ml: Rr_assoc Rr_config
