lib/core/rr_v.ml: Array Rr_config Tm
