lib/core/rr_assoc.ml: Array Rr_config Tm
