(** RR-V: versioned reservations (paper Listing 4).

    An array of counters — functioning like STM ownership records — replaces
    the thread-id array of RR-XO. [Reserve] records the counter for the
    reference's bucket alongside the reference; [Get] re-reads the counter
    and succeeds only if unchanged; [Revoke] increments it. Any number of
    threads can reserve the same reference simultaneously, [Reserve] writes
    no shared memory, and [Revoke] is still O(1) (one read-modify-write). A
    spurious drop occurs only when a {e revocation} of a hash-colliding
    reference intervenes. *)

type 'r t = {
  hash : 'r -> int;
  equal : 'r -> 'r -> bool;
  k : int;
  buckets : int;
  v : int Tm.tvar array;
  rt : ('r * int) option Tm.tvar array array;  (** [threads][K]: (ref, V_t) *)
}

let name = "RR-V"
let strict = false

let create ?(config = Rr_config.default) ~hash ~equal () =
  Rr_config.validate config;
  let k = config.Rr_config.slots_per_thread in
  {
    hash;
    equal;
    k;
    buckets = config.Rr_config.buckets;
    v = Array.init config.Rr_config.buckets (fun _ -> Tm.tvar 0);
    rt =
      Array.init Tm.Thread.max_threads (fun _ ->
          Array.init k (fun _ -> Tm.tvar None));
  }

let register _t _txn = ()
let index t r = (t.hash r land max_int) mod t.buckets
let slots t txn = t.rt.(Tm.thread_id txn)

let find_slot t txn cells pred =
  let rec go i =
    if i >= t.k then None
    else
      let c = cells.(i) in
      if pred (Tm.read txn c) then Some c else go (i + 1)
  in
  go 0

let holding t txn cells r =
  find_slot t txn cells (function
    | Some (r', _) -> t.equal r' r
    | None -> false)

let reserve t txn r =
  let cells = slots t txn in
  let vt = Tm.read txn t.v.(index t r) in
  match holding t txn cells r with
  | Some c -> Tm.write txn c (Some (r, vt))
  | None -> (
      match find_slot t txn cells (fun v -> v = None) with
      | None -> invalid_arg "Rr_v.reserve: reservation set full"
      | Some c -> Tm.write txn c (Some (r, vt)))

let release t txn r =
  let cells = slots t txn in
  match holding t txn cells r with
  | Some c -> Tm.write txn c None
  | None -> ()

let release_all t txn =
  Array.iter
    (fun c -> if Tm.read txn c <> None then Tm.write txn c None)
    (slots t txn)

let get t txn r =
  let cells = slots t txn in
  let rec go i =
    if i >= t.k then None
    else
      match Tm.read txn cells.(i) with
      | Some (r', vt) when t.equal r' r ->
          if Tm.read txn t.v.(index t r) = vt then Some r else None
      | Some _ | None -> go (i + 1)
  in
  go 0

let revoke t txn r =
  let cell = t.v.(index t r) in
  Tm.write txn cell (Tm.read txn cell + 1)
