(** Executable form of the paper's Listing 1 sequential specification:
    [refs : thread -> Set(ref)], with [Reserve]/[Release]/[Get]/[Revoke]
    acting on it. Model-based tests drive a real implementation and this
    model with the same operation sequence (inside single-threaded
    transactions, so the sequential spec is the right oracle) and compare
    every [Get]. *)

type 'r t = {
  equal : 'r -> 'r -> bool;
  sets : (int, 'r list) Hashtbl.t;
}

let create ~equal () = { equal; sets = Hashtbl.create 16 }

let refs t thread = Option.value ~default:[] (Hashtbl.find_opt t.sets thread)
let set_refs t thread rs = Hashtbl.replace t.sets thread rs

let mem t thread r = List.exists (fun r' -> t.equal r' r) (refs t thread)

let reserve t ~thread r =
  if not (mem t thread r) then set_refs t thread (r :: refs t thread)

let release t ~thread r =
  set_refs t thread (List.filter (fun r' -> not (t.equal r' r)) (refs t thread))

let release_all t ~thread = set_refs t thread []

let get t ~thread r = if mem t thread r then Some r else None

let revoke t r =
  Hashtbl.iter
    (fun thread rs ->
      Hashtbl.replace t.sets thread
        (List.filter (fun r' -> not (t.equal r' r)) rs))
    (Hashtbl.copy t.sets)

let count t ~thread = List.length (refs t thread)
