(** RR-XO: exclusive-ownership reservations (paper Listing 3) —
    {!Rr_own} with a single ownership array. All methods are O(1); at most
    one thread can hold a reservation on any given hash bucket, so a
    concurrent [Reserve] of a colliding reference acts like a revocation
    (progress, not correctness, is affected). *)

type 'r t = 'r Rr_own.t

let name = "RR-XO"
let strict = false

let create ?(config = Rr_config.default) ~hash ~equal () =
  Rr_own.create_t ~ways:1 ~config ~hash ~equal

let register = Rr_own.register
let reserve = Rr_own.reserve
let release = Rr_own.release
let release_all = Rr_own.release_all
let get = Rr_own.get
let revoke = Rr_own.revoke
