type t = {
  slots_per_thread : int;
  buckets : int;
  assoc : int;
  dm_eager_unlink : bool;
}

let default =
  { slots_per_thread = 1; buckets = 256; assoc = 8; dm_eager_unlink = true }

let validate t =
  if t.slots_per_thread < 1 then
    invalid_arg "Rr_config: slots_per_thread < 1";
  if t.buckets < 1 then invalid_arg "Rr_config: buckets < 1";
  if t.assoc < 1 then invalid_arg "Rr_config: assoc < 1"
