module Config = Rr_config
module Spec_model = Rr_spec_model
module Hoh = Hoh

module type S = Rr_intf.S

type 'r ops = 'r Rr_intf.ops = {
  name : string;
  strict : bool;
  register : Tm.txn -> unit;
  reserve : Tm.txn -> 'r -> unit;
  release : Tm.txn -> 'r -> unit;
  release_all : Tm.txn -> unit;
  get : Tm.txn -> 'r -> 'r option;
  revoke : Tm.txn -> 'r -> unit;
}

let instantiate = Rr_intf.instantiate

module Fa : S = Rr_fa
module Dm : S = Rr_dm
module Sa : S = Rr_sa
module Xo : S = Rr_xo
module So : S = Rr_so
module V : S = Rr_v

let all =
  [
    ("RR-FA", (module Fa : S));
    ("RR-DM", (module Dm : S));
    ("RR-SA", (module Sa : S));
    ("RR-XO", (module Xo : S));
    ("RR-SO", (module So : S));
    ("RR-V", (module V : S));
  ]

let by_name name =
  List.assoc_opt name all
