(** RR-DM: direct-mapped reservations — {!Rr_assoc} with a single way.
    [Revoke] only walks the one bucket the reference hashes to, but threads
    reserving references with colliding hashes share that bucket list and
    can conflict. *)

type 'r t = 'r Rr_assoc.t

let name = "RR-DM"
let strict = true

let create ?(config = Rr_config.default) ~hash ~equal () =
  Rr_assoc.create_t ~ways:1 ~config ~hash ~equal

let register = Rr_assoc.register
let reserve = Rr_assoc.reserve
let release = Rr_assoc.release
let release_all = Rr_assoc.release_all
let get = Rr_assoc.get
let revoke = Rr_assoc.revoke
