bench/bench_figures.ml: Driver Factories Harness List Mempool Printf Report Rr Set_ops String Structs Workload
