bench/main.mli:
