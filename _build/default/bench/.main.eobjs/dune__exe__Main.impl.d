bench/main.ml: Array Bench_figures Bench_micro List Printf String Sys Tm
