bench/bench_micro.ml: Analyze Atomic Bechamel Benchmark Domain Hashtbl Instance Int List Measure Printf Rr Staged Test Time Tm Toolkit
