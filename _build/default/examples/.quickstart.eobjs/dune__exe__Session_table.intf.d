examples/session_table.mli:
