examples/priority_index.mli:
