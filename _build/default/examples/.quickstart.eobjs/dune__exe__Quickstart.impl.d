examples/quickstart.ml: Domain List Mempool Printf Rr Structs Tm
