examples/quickstart.mli:
