examples/priority_index.ml: Domain List Printf Rr Structs Tm Unix
