examples/reclamation_demo.mli:
