examples/session_table.ml: Atomic Domain List Mempool Printf Rr Structs Tm
