examples/reclamation_demo.ml: Driver Factories Harness List Printf Rr Structs Tm Workload
