(* Quickstart: a concurrent ordered integer set backed by hand-over-hand
   transactions with versioned revocable reservations (RR-V), exercised by
   four domains, with precise memory reclamation throughout.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Every domain that touches a transactional structure registers with the
     TM; [with_registered] releases the thread slot at the end. *)
  Tm.Thread.with_registered (fun _ ->
      (* A sorted singly linked list set (the paper's Listing 5). [mode]
         picks the reservation scheme: any [Rr.*] implementation, [Htm]
         (whole-operation transactions), [Tmhp] or [Ref]. *)
      let set =
        Structs.Hoh_list.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.V))
          ~window:8 ()
      in

      (* Single-threaded use. *)
      let me = Tm.Thread.id () in
      assert (Structs.Hoh_list.insert set ~thread:me 42);
      assert (Structs.Hoh_list.lookup set ~thread:me 42);
      assert (not (Structs.Hoh_list.insert set ~thread:me 42));
      assert (Structs.Hoh_list.remove set ~thread:me 42);

      (* Concurrent use: four domains hammer the same set. *)
      let workers =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                Tm.Thread.with_registered (fun thread ->
                    let inserted = ref 0 and removed = ref 0 in
                    for i = 1 to 20_000 do
                      let key = 1 + ((i * (d + 13)) mod 500) in
                      if i mod 3 = 0 then begin
                        if Structs.Hoh_list.remove set ~thread key then
                          incr removed
                      end
                      else if Structs.Hoh_list.insert set ~thread key then
                        incr inserted
                    done;
                    (!inserted, !removed))))
      in
      let results = List.map Domain.join workers in
      let ins = List.fold_left (fun a (i, _) -> a + i) 0 results in
      let rem = List.fold_left (fun a (_, r) -> a + r) 0 results in

      (* The set is exactly consistent with the operation counts, its
         structural invariants hold, and — precise reclamation — the node
         pool holds exactly one live node per element, with no deferred
         backlog to drain. *)
      let size = Structs.Hoh_list.size set in
      Printf.printf "inserted %d, removed %d, final size %d\n" ins rem size;
      assert (size = ins - rem);
      (match Structs.Hoh_list.check set with
      | Ok () -> print_endline "structural invariants: OK"
      | Error e -> failwith e);
      let pool = Structs.Hoh_list.pool_stats set in
      Printf.printf "pool: %d live nodes for %d elements (high water %d)\n"
        pool.Mempool.Stats.live size pool.Mempool.Stats.high_water;
      assert (pool.Mempool.Stats.live = size);
      print_endline "quickstart: OK")
