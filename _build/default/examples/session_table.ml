(* A firewall-style session table: connections open and close at a high
   churn rate, and the table's memory footprint must track the number of
   live sessions *exactly* — the motivating scenario for precise
   reclamation ("programs whose correctness depends on memory being
   reclaimed immediately").

   Sessions are keyed by connection id in a doubly linked list (removal
   needs no predecessor context, so a Remove can reserve-then-unlink in a
   separate small transaction — the paper's Sec. 4.2 optimization). Opener
   domains create sessions, a closer domain tears down the oldest ids, and
   an auditor asserts after every phase that the node pool holds exactly
   one node per live session.

   Run with: dune exec examples/session_table.exe *)

let openers = 3
let sessions_per_opener = 5_000

let () =
  Tm.Thread.with_registered (fun _ ->
      let table =
        Structs.Hoh_dlist.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.Xo))
          ~window:8 ()
      in
      let next_id = Atomic.make 1 in
      let closed = Atomic.make 0 in

      (* Openers allocate fresh connection ids and insert them; they also
         close (remove) roughly a third of their own sessions right away,
         simulating short-lived connections. *)
      let opener d =
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun thread ->
                for i = 1 to sessions_per_opener do
                  let id = Atomic.fetch_and_add next_id 1 in
                  if not (Structs.Hoh_dlist.insert table ~thread id) then
                    failwith "fresh id must be insertable";
                  if i mod 3 = d mod 3 then
                    if Structs.Hoh_dlist.remove table ~thread id then
                      Atomic.incr closed
                done))
      in

      (* The closer sweeps ids from the low end, closing whatever it finds
         — concurrent removals of the same id resolve transactionally. *)
      let closer =
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun thread ->
                let swept = ref 0 in
                for id = 1 to openers * sessions_per_opener do
                  if Structs.Hoh_dlist.remove table ~thread id then begin
                    incr swept;
                    Atomic.incr closed
                  end
                done;
                !swept))
      in
      let ods = List.init openers opener in
      List.iter Domain.join ods;
      let swept = Domain.join closer in

      let opened = Atomic.get next_id - 1 in
      let closed = Atomic.get closed in
      let live_sessions = Structs.Hoh_dlist.size table in
      Printf.printf "opened %d, closed %d (%d by the sweeper), live %d\n"
        opened closed swept live_sessions;
      assert (live_sessions = opened - closed);

      (* The precise-reclamation guarantee: the pool's live count equals the
         session count at every quiescent point — no unreclaimed backlog
         from the churn, no drain needed. *)
      let pool = Structs.Hoh_dlist.pool_stats table in
      Printf.printf
        "pool: live=%d (= sessions), allocated %d nodes total, peak %d\n"
        pool.Mempool.Stats.live pool.Mempool.Stats.allocs
        pool.Mempool.Stats.high_water;
      assert (pool.Mempool.Stats.live = live_sessions);
      (match Structs.Hoh_dlist.check table with
      | Ok () -> ()
      | Error e -> failwith e);
      print_endline "session_table: OK")
