(* Shared helpers for the test suites. *)

(* A persistent worker domain with a stable TM thread id, so tests can
   express "thread 1 does X, then thread 2 does Y, then thread 1 ..."
   sequences without id recycling between steps. *)
module Worker = struct
  type t = {
    m : Mutex.t;
    cv : Condition.t;
    mutable job : (unit -> unit) option;
    mutable stop : bool;
    mutable tid : int;
    mutable dom : unit Domain.t option;
  }

  let spawn () =
    let w =
      {
        m = Mutex.create ();
        cv = Condition.create ();
        job = None;
        stop = false;
        tid = -1;
        dom = None;
      }
    in
    let dom =
      Domain.spawn (fun () ->
          Tm.Thread.with_registered (fun tid ->
              Mutex.lock w.m;
              w.tid <- tid;
              Condition.broadcast w.cv;
              let rec loop () =
                match w.job with
                | Some f ->
                    Mutex.unlock w.m;
                    f ();
                    Mutex.lock w.m;
                    w.job <- None;
                    Condition.broadcast w.cv;
                    loop ()
                | None ->
                    if w.stop then Mutex.unlock w.m
                    else begin
                      Condition.wait w.cv w.m;
                      loop ()
                    end
              in
              loop ()))
    in
    w.dom <- Some dom;
    Mutex.lock w.m;
    while w.tid < 0 do
      Condition.wait w.cv w.m
    done;
    Mutex.unlock w.m;
    w

  let tid w = w.tid

  (* Run [f] on the worker and return its result. *)
  let run w f =
    let result = ref None in
    Mutex.lock w.m;
    while w.job <> None do
      Condition.wait w.cv w.m
    done;
    w.job <- Some (fun () -> result := Some (f ()));
    Condition.broadcast w.cv;
    while w.job <> None do
      Condition.wait w.cv w.m
    done;
    Mutex.unlock w.m;
    Option.get !result

  let stop w =
    Mutex.lock w.m;
    w.stop <- true;
    Condition.broadcast w.cv;
    Mutex.unlock w.m;
    Option.iter Domain.join w.dom

  let with_workers n f =
    let ws = List.init n (fun _ -> spawn ()) in
    Fun.protect ~finally:(fun () -> List.iter stop ws) (fun () -> f ws)
end

(* Deterministic pseudo-random stream for stress loops. *)
module Prng = struct
  type t = { mutable s : int }

  let create seed = { s = (seed * 2654435761) + 1 }

  let int t m =
    t.s <- (t.s * 1103515245) + 12345;
    t.s land 0x3FFFFFFF mod m
end
