test/test_util.ml: Condition Domain Fun List Mutex Option Tm
