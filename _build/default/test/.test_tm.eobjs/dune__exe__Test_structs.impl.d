test/test_structs.ml: Alcotest Array Atomic Domain Driver Factories Harness Hashtbl List Mempool Printf QCheck QCheck_alcotest Reclaim Rr Set_ops String Structs Test_util Tm Workload
