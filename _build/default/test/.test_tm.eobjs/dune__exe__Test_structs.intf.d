test/test_structs.mli:
