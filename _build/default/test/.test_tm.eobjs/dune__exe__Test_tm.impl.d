test/test_tm.ml: Alcotest Array Atomic Domain Gen List Printf QCheck QCheck_alcotest Tm
