test/test_mempool.ml: Alcotest Atomic Domain List Mempool QCheck QCheck_alcotest Tm
