test/test_lockfree.ml: Alcotest Domain Hashtbl List Lockfree Mempool QCheck QCheck_alcotest Reclaim Test_util Tm
