test/test_harness.ml: Alcotest Array Driver Factories Filename Harness Hashtbl List Option QCheck QCheck_alcotest Report Rr Serial_check Set_ops Structs Sys Tm Workload
