test/test_rr.ml: Alcotest Atomic Domain Hashtbl Int List Printf QCheck QCheck_alcotest Rr String Test_util Tm
