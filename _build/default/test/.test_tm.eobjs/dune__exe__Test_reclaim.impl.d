test/test_reclaim.ml: Alcotest Atomic Domain List Reclaim Tm
