(* Tests for the non-transactional baselines: the Harris–Michael lock-free
   list (leaky and hazard-pointer variants) and the Natarajan–Mittal
   lock-free external BST. *)

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

(* ---- generic sequential battery over a (insert, remove, lookup) triple *)

let sequential_battery ~insert ~remove ~lookup ~size ~to_list ~chk tid =
  checkb "insert new" true (insert tid 10);
  checkb "insert dup" false (insert tid 10);
  checkb "lookup present" true (lookup tid 10);
  checkb "lookup absent" false (lookup tid 11);
  checkb "remove present" true (remove tid 10);
  checkb "remove absent" false (remove tid 10);
  List.iter (fun k -> ignore (insert tid k)) [ 5; 3; 8; 1; 9 ];
  Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 8; 9 ] (to_list ());
  check "size" 5 (size ());
  checkb "invariants" true (chk () = Ok ())

let model_churn ~insert ~remove ~lookup ~to_list ~chk tid =
  let rng = Test_util.Prng.create 7 in
  let model = Hashtbl.create 64 in
  for _ = 1 to 4000 do
    let k = 1 + Test_util.Prng.int rng 32 in
    match Test_util.Prng.int rng 3 with
    | 0 ->
        let e = not (Hashtbl.mem model k) in
        if e then Hashtbl.replace model k ();
        checkb "insert agrees" e (insert tid k)
    | 1 ->
        let e = Hashtbl.mem model k in
        if e then Hashtbl.remove model k;
        checkb "remove agrees" e (remove tid k)
    | _ -> checkb "lookup agrees" (Hashtbl.mem model k) (lookup tid k)
  done;
  let want =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model [])
  in
  Alcotest.(check (list int)) "final contents" want (to_list ());
  checkb "invariants" true (chk () = Ok ())

let concurrent_stress ~insert ~remove ~lookup ~finalize ~drain ~size ~chk () =
  let workers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun tid ->
                let rng = Test_util.Prng.create (d * 13) in
                let ins = ref 0 and rem = ref 0 in
                for _ = 1 to 5000 do
                  let k = 1 + Test_util.Prng.int rng 128 in
                  match Test_util.Prng.int rng 3 with
                  | 0 -> if insert tid k then incr ins
                  | 1 -> if remove tid k then incr rem
                  | _ -> ignore (lookup tid k)
                done;
                finalize tid;
                (!ins, !rem))))
  in
  let rs = List.map Domain.join workers in
  drain ();
  let ins = List.fold_left (fun a (i, _) -> a + i) 0 rs in
  let rem = List.fold_left (fun a (_, r) -> a + r) 0 rs in
  check "size accounting" (ins - rem) (size ());
  checkb "invariants" true (chk () = Ok ())

(* ---- Harris list ---- *)

let harris_fns l =
  ( (fun tid k -> Lockfree.Harris_list.insert l ~thread:tid k),
    (fun tid k -> Lockfree.Harris_list.remove l ~thread:tid k),
    (fun tid k -> Lockfree.Harris_list.lookup l ~thread:tid k) )

let test_harris_sequential reclaim () =
  Tm.Thread.with_registered (fun tid ->
      let l = Lockfree.Harris_list.create ~reclaim () in
      let insert, remove, lookup = harris_fns l in
      sequential_battery ~insert ~remove ~lookup
        ~size:(fun () -> Lockfree.Harris_list.size l)
        ~to_list:(fun () -> Lockfree.Harris_list.to_list l)
        ~chk:(fun () -> Lockfree.Harris_list.check l)
        tid)

let test_harris_churn reclaim () =
  Tm.Thread.with_registered (fun tid ->
      let l = Lockfree.Harris_list.create ~reclaim () in
      let insert, remove, lookup = harris_fns l in
      model_churn ~insert ~remove ~lookup
        ~to_list:(fun () -> Lockfree.Harris_list.to_list l)
        ~chk:(fun () -> Lockfree.Harris_list.check l)
        tid)

let test_harris_concurrent reclaim () =
  Tm.Thread.with_registered (fun _ ->
      let l = Lockfree.Harris_list.create ~reclaim () in
      let insert, remove, lookup = harris_fns l in
      concurrent_stress ~insert ~remove ~lookup
        ~finalize:(fun tid -> Lockfree.Harris_list.finalize_thread l ~thread:tid)
        ~drain:(fun () -> Lockfree.Harris_list.drain l)
        ~size:(fun () -> Lockfree.Harris_list.size l)
        ~chk:(fun () -> Lockfree.Harris_list.check l)
        ())

let test_harris_hp_reclaims () =
  Tm.Thread.with_registered (fun tid ->
      let l = Lockfree.Harris_list.create ~reclaim:`Hp () in
      for k = 1 to 200 do
        ignore (Lockfree.Harris_list.insert l ~thread:tid k)
      done;
      for k = 1 to 200 do
        ignore (Lockfree.Harris_list.remove l ~thread:tid k)
      done;
      Lockfree.Harris_list.finalize_thread l ~thread:tid;
      Lockfree.Harris_list.drain l;
      check "pool live = size" 0
        (Lockfree.Harris_list.pool_stats l).Mempool.Stats.live;
      match Lockfree.Harris_list.hazard_metrics l with
      | Some m ->
          check "all retired freed" m.Reclaim.Hazard.retired_total
            m.Reclaim.Hazard.freed_total
      | None -> Alcotest.fail "hp variant must expose metrics")

let test_harris_leak_leaks () =
  Tm.Thread.with_registered (fun tid ->
      let l = Lockfree.Harris_list.create ~reclaim:`Leak () in
      for k = 1 to 50 do
        ignore (Lockfree.Harris_list.insert l ~thread:tid k)
      done;
      for k = 1 to 50 do
        ignore (Lockfree.Harris_list.remove l ~thread:tid k)
      done;
      Lockfree.Harris_list.drain l;
      checkb "leaky list never reclaims" true
        ((Lockfree.Harris_list.pool_stats l).Mempool.Stats.live >= 50))

(* ---- NM tree ---- *)

let nm_fns t =
  ( (fun tid k -> Lockfree.Nm_tree.insert t ~thread:tid k),
    (fun tid k -> Lockfree.Nm_tree.remove t ~thread:tid k),
    (fun tid k -> Lockfree.Nm_tree.lookup t ~thread:tid k) )

let test_nm_sequential () =
  Tm.Thread.with_registered (fun tid ->
      let t = Lockfree.Nm_tree.create () in
      let insert, remove, lookup = nm_fns t in
      sequential_battery ~insert ~remove ~lookup
        ~size:(fun () -> Lockfree.Nm_tree.size t)
        ~to_list:(fun () -> Lockfree.Nm_tree.to_list t)
        ~chk:(fun () -> Lockfree.Nm_tree.check t)
        tid)

let test_nm_churn () =
  Tm.Thread.with_registered (fun tid ->
      let t = Lockfree.Nm_tree.create () in
      let insert, remove, lookup = nm_fns t in
      model_churn ~insert ~remove ~lookup
        ~to_list:(fun () -> Lockfree.Nm_tree.to_list t)
        ~chk:(fun () -> Lockfree.Nm_tree.check t)
        tid)

let test_nm_concurrent () =
  Tm.Thread.with_registered (fun _ ->
      let t = Lockfree.Nm_tree.create () in
      let insert, remove, lookup = nm_fns t in
      concurrent_stress ~insert ~remove ~lookup
        ~finalize:(fun tid -> Lockfree.Nm_tree.finalize_thread t ~thread:tid)
        ~drain:(fun () -> Lockfree.Nm_tree.drain t)
        ~size:(fun () -> Lockfree.Nm_tree.size t)
        ~chk:(fun () -> Lockfree.Nm_tree.check t)
        ())

let test_nm_leak_accounting () =
  Tm.Thread.with_registered (fun tid ->
      let t = Lockfree.Nm_tree.create () in
      for k = 1 to 20 do
        ignore (Lockfree.Nm_tree.insert t ~thread:tid k)
      done;
      for k = 1 to 20 do
        ignore (Lockfree.Nm_tree.remove t ~thread:tid k)
      done;
      checkb "removed nodes leak" true
        (Lockfree.Nm_tree.allocated t - Lockfree.Nm_tree.reachable t > 0);
      check "tree empty" 0 (Lockfree.Nm_tree.size t))

let test_nm_key_bounds () =
  Tm.Thread.with_registered (fun tid ->
      let t = Lockfree.Nm_tree.create () in
      checkb "max_key insertable" true
        (Lockfree.Nm_tree.insert t ~thread:tid Lockfree.Nm_tree.max_key);
      checkb "sentinel range rejected" true
        (match
           Lockfree.Nm_tree.insert t ~thread:tid (Lockfree.Nm_tree.max_key + 1)
         with
        | _ -> false
        | exception Invalid_argument _ -> true))

let qcheck_harris =
  QCheck.Test.make ~name:"harris list matches set model" ~count:80
    QCheck.(list (pair (int_bound 2) (int_bound 20)))
    (fun ops ->
      Tm.Thread.with_registered (fun tid ->
          let l = Lockfree.Harris_list.create ~reclaim:`Hp () in
          let model = Hashtbl.create 32 in
          let ok =
            List.for_all
              (fun (op, k) ->
                let k = k + 1 in
                match op with
                | 0 ->
                    let e = not (Hashtbl.mem model k) in
                    if e then Hashtbl.replace model k ();
                    Lockfree.Harris_list.insert l ~thread:tid k = e
                | 1 ->
                    let e = Hashtbl.mem model k in
                    if e then Hashtbl.remove model k;
                    Lockfree.Harris_list.remove l ~thread:tid k = e
                | _ ->
                    Lockfree.Harris_list.lookup l ~thread:tid k
                    = Hashtbl.mem model k)
              ops
          in
          ok && Lockfree.Harris_list.check l = Ok ()))

let qcheck_nm =
  QCheck.Test.make ~name:"nm tree matches set model" ~count:80
    QCheck.(list (pair (int_bound 2) (int_bound 20)))
    (fun ops ->
      Tm.Thread.with_registered (fun tid ->
          let t = Lockfree.Nm_tree.create () in
          let model = Hashtbl.create 32 in
          let ok =
            List.for_all
              (fun (op, k) ->
                let k = k + 1 in
                match op with
                | 0 ->
                    let e = not (Hashtbl.mem model k) in
                    if e then Hashtbl.replace model k ();
                    Lockfree.Nm_tree.insert t ~thread:tid k = e
                | 1 ->
                    let e = Hashtbl.mem model k in
                    if e then Hashtbl.remove model k;
                    Lockfree.Nm_tree.remove t ~thread:tid k = e
                | _ ->
                    Lockfree.Nm_tree.lookup t ~thread:tid k
                    = Hashtbl.mem model k)
              ops
          in
          ok && Lockfree.Nm_tree.check t = Ok ()))

let () =
  Alcotest.run "lockfree"
    [
      ( "harris",
        [
          Alcotest.test_case "sequential (leak)" `Quick
            (test_harris_sequential `Leak);
          Alcotest.test_case "sequential (hp)" `Quick
            (test_harris_sequential `Hp);
          Alcotest.test_case "churn (leak)" `Quick (test_harris_churn `Leak);
          Alcotest.test_case "churn (hp)" `Quick (test_harris_churn `Hp);
          Alcotest.test_case "concurrent (leak)" `Slow
            (test_harris_concurrent `Leak);
          Alcotest.test_case "concurrent (hp)" `Slow
            (test_harris_concurrent `Hp);
          Alcotest.test_case "hp reclaims" `Quick test_harris_hp_reclaims;
          Alcotest.test_case "leak leaks" `Quick test_harris_leak_leaks;
        ] );
      ( "nm-tree",
        [
          Alcotest.test_case "sequential" `Quick test_nm_sequential;
          Alcotest.test_case "churn" `Quick test_nm_churn;
          Alcotest.test_case "concurrent" `Slow test_nm_concurrent;
          Alcotest.test_case "leak accounting" `Quick test_nm_leak_accounting;
          Alcotest.test_case "key bounds" `Quick test_nm_key_bounds;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_harris;
          QCheck_alcotest.to_alcotest qcheck_nm;
        ] );
    ]
