(** The paper's Listing 5: a sorted singly linked integer set traversed
    with hand-over-hand transactions.

    Operations share one [Apply] skeleton: traverse at most [W] nodes per
    transaction (the first window is scattered to 1..W), hand the traversal
    over by reserving the window's last node, and run the matching
    found/not-found action in the final transaction. The {!Mode.kind}
    selects the reservation/reclamation policy; [Htm] turns the same code
    into the single-transaction baseline (unbounded window, no
    reservations, serial fallback on repeated aborts). *)

type t

val create :
  mode:Mode.kind ->
  ?window:int ->
  ?scatter:bool ->
  ?adaptive:bool ->
  ?fusion:int ->
  ?middle:bool ->
  ?magazines:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?hp_threshold:int ->
  ?max_attempts:int ->
  unit ->
  t
(** [window] defaults to 8 (the paper's best list setting at high thread
    counts); [scatter] to [true]; [adaptive] to [false] (when set, the
    per-thread window controller of {!Rr.Hoh.Window} adjusts the live
    budget from contention feedback, with [window] as the starting point);
    [fusion] to 1 (off; [k > 1] lets clean commits fuse up to [k]
    consecutive windows into one transaction — see {!Rr.Hoh.Window});
    [middle] to [false] (when set, exhausted speculative attempts retry
    under this structure's middle-path lock before escalating to serial —
    see {!Tm.Middle}); [magazines] to [false] (per-thread magazine caches
    in front of the pool strategy — see {!Mempool.create});
    [strategy] to {!Mempool.Thread_arena};
    [max_attempts] to the TM default (the paper uses 2 for lists). *)

val name : t -> string

(** All operations may be called concurrently from registered TM threads.
    [thread] is the caller's {!Tm.Thread} id (used for pool placement and
    hazard slots). Keys must be greater than [min_int + 1]. *)

val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool

(** Stamped variants additionally return the operation's linearization
    stamp (the commit stamp of its final transaction), for the
    serialization checker. *)

val insert_s : t -> thread:int -> int -> bool * int
val remove_s : t -> thread:int -> int -> bool * int
val lookup_s : t -> thread:int -> int -> bool * int

val finalize_thread : t -> thread:int -> unit
(** Per-worker cleanup (clears hazard slots, scans once). *)

val drain : t -> unit
(** Global deferred-reclamation drain; call after all workers quiesce. *)

(** Quiescent inspection — only meaningful with no concurrent operations. *)

val to_list : t -> int list
val size : t -> int

val check : t -> (unit, string) result
(** Structural invariants: strictly sorted keys, no poisoned or
    logically-deleted node linked, every linked node live in the pool. *)

val pool_stats : t -> Mempool.Stats.t

val pool_live : t -> int
(** O(1) live-slot count ([Mempool.live]) for backlog sampling. *)

val hazard_metrics : t -> Reclaim.Hazard.metrics option
val window_size : t -> int

val fuse_budget : t -> thread:int -> int
(** [thread]'s live window-fusion budget ({!Rr.Hoh.Window.fuse_budget});
    observability for tests of the shrink-on-abort controller. *)
