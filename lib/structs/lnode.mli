(** List nodes shared by every list variant (singly/doubly linked;
    RR / HTM / TMHP / REF reclamation).

    All mutable content lives in tvars. A node's [id] is its simulated
    address: it is assigned once by the pool and survives free/reuse, so the
    revocable-reservation hash functions treat it exactly like the paper
    treats pointer values. Freed nodes are poisoned ([key = poisoned_key],
    [deleted = true], links severed) with version-bumping writes, so any
    doomed transaction still looking at a freed node fails validation
    rather than observing stale state. *)

type t = {
  id : int;
  pstate : int Atomic.t;  (** pool live/free word (owned by {!Mempool}) *)
  gen : int Atomic.t;  (** allocation generation (debug/ABA detection) *)
  key : int Tm.tvar;
  next : t option Tm.tvar;
  prev : t option Tm.tvar;  (** used by the doubly linked list only *)
  deleted : bool Tm.tvar;  (** logical-deletion flag (TMHP/REF validity) *)
  rc : Reclaim.Rc.t;  (** reference count (REF variant only) *)
}

val poisoned_key : int

val make_pool :
  ?strategy:Mempool.strategy -> ?magazines:bool -> unit -> t Mempool.t
(** A pool of list nodes with poisoning wired up. *)

val sentinel : unit -> t
(** A head/tail sentinel outside any pool ([id = -1]). *)

val hash : t -> int
(** Mixes the node id; stable across the node's whole lifetime. *)

val equal : t -> t -> bool
(** Physical equality — two nodes are the same reference iff they are the
    same pool slot. *)

val alloc : t Mempool.t -> thread:int -> t
(** Pool allocation plus field re-initialization ([deleted = false],
    links severed) with non-transactional version-bumping writes. The
    caller sets [key] and links transactionally. *)
