(** A probabilistically balanced skiplist set with hand-over-hand
    transactions and revocable reservations — the paper's Section 6
    "balanced trees" claim, realized with the skiplist's probabilistic
    balance instead of rebalancing rotations.

    The traversal phase is windowed exactly like Listing 5: descend/advance
    through at most [W] nodes per transaction, reserving the node where the
    window pauses (the operation also remembers, thread-locally, at which
    level it paused). Along the way it records the rightmost node with a
    smaller key at every level — the predecessor hints. The update phase is
    one transaction that re-validates each hint before using it: a hint
    collected in an earlier window may have been removed (its [deleted]
    flag — written by removals in every mode — is read transactionally) or
    out-run by newer inserts (the transaction walks forward from the hint
    at its level). A deleted hint forces a fresh full descent inside the
    update transaction; both repairs preserve serializability because all
    reads happen in the update transaction's own validated snapshot.

    Removals revoke the node being unlinked, exactly as in the lists: a
    concurrent operation resuming from it restarts from the head, and the
    node's memory is reclaimed the moment the removal commits. *)

type t

val create :
  mode:Mode.kind ->
  ?window:int ->
  ?scatter:bool ->
  ?adaptive:bool ->
  ?fusion:int ->
  ?middle:bool ->
  ?magazines:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?hp_threshold:int ->
  ?max_attempts:int ->
  ?seed:int ->
  unit ->
  t
(** [seed] feeds the per-thread tower-height generators.
    @raise Invalid_argument for [Ref] mode. *)

val name : t -> string
val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool
val insert_s : t -> thread:int -> int -> bool * int
val remove_s : t -> thread:int -> int -> bool * int
val lookup_s : t -> thread:int -> int -> bool * int
val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val to_list : t -> int list
val size : t -> int

val levels_histogram : t -> int array
(** Count of nodes per tower height (quiescent); sanity-checks the
    geometric distribution. *)

val check : t -> (unit, string) result
(** Level-0 sortedness; every level-l list is a sorted sublist of level
    l-1; towers match [level]; no deleted/poisoned/freed node linked. *)

val pool_stats : t -> Mempool.Stats.t

val pool_live : t -> int
(** O(1) live-slot count ([Mempool.live]) for backlog sampling. *)

val hazard_metrics : t -> Reclaim.Hazard.metrics option
