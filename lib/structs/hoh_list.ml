module Window = Rr.Hoh.Window

type t = {
  mode : Lnode.t Mode.t;
  head : Lnode.t;
  window : Window.t;
  middle : Tm.Middle.t option;
  pool : Lnode.t Mempool.t;
  max_attempts : int option;
}

let create ~mode ?(window = 8) ?(scatter = true) ?adaptive ?fusion
    ?(middle = false) ?magazines ?strategy ?rr_config ?hp_threshold
    ?max_attempts () =
  let pool = Lnode.make_pool ?strategy ?magazines () in
  let mode =
    Mode.create mode ~pool
      ~deleted:(fun n -> n.Lnode.deleted)
      ~rc:(fun n -> n.Lnode.rc)
      ~gen:(fun n -> Atomic.get n.Lnode.gen)
      ~hash:Lnode.hash ~equal:Lnode.equal ?rr_config ?hp_threshold ()
  in
  { mode; head = Lnode.sentinel ();
    window = Window.create ~scatter ?adaptive ?fusion window;
    middle = (if middle then Some (Tm.Middle.create ()) else None);
    pool; max_attempts }

let name t = t.mode.Mode.name
let window_size t = Window.size t.window
let fuse_budget t ~thread = Window.fuse_budget t.window ~thread

(* The [Apply] function of Listing 5. [on_found txn ~prev ~curr] runs when a
   node with the key is found; [on_notfound txn ~prev ~curr] when the key is
   absent ([curr] is the first node past it, or [None] at the tail). *)
let apply t ~thread ?(read_phase = false) key ~site ~on_found ~on_notfound =
  if key <= min_int + 1 then invalid_arg "Hoh_list: key out of range";
  Rr.Hoh.apply_stamped ~rr:t.mode.Mode.ops ~site ?max_attempts:t.max_attempts
    ~read_phase
    ~window:(t.window, thread)
    ?middle:t.middle
    (fun txn ~start ->
      let prev, budget =
        match start with
        | Some n -> (n, Window.budget t.window ~thread)
        | None ->
            ( t.head,
              if t.mode.Mode.whole_op then max_int
              else Window.first_budget t.window ~thread )
      in
      match List_walk.walk txn ~key ~prev ~budget with
      | `Found (prev, curr) -> Rr.Hoh.Finish (on_found txn ~prev ~curr)
      | `Absent (prev, curr) -> Rr.Hoh.Finish (on_notfound txn ~prev ~curr)
      | `Window c -> Rr.Hoh.Hand_off c)

let lookup_s t ~thread key =
  apply t ~thread ~read_phase:t.mode.Mode.ro_hint key ~site:"slist.lookup"
    ~on_found:(fun _ ~prev:_ ~curr:_ -> true)
    ~on_notfound:(fun _ ~prev:_ ~curr:_ -> false)

let insert_s t ~thread key =
  let spare = ref None in
  let result =
    apply t ~thread key ~site:"slist.insert"
      ~on_found:(fun _ ~prev:_ ~curr:_ -> false)
      ~on_notfound:(fun txn ~prev ~curr ->
        let n =
          match !spare with
          | Some n -> n
          | None ->
              (* Allocation happens at most once per operation and outside
                 any committed effect: an aborted attempt keeps the node as
                 a spare for the retry. *)
              let n = Lnode.alloc t.pool ~thread in
              spare := Some n;
              n
        in
        Tm.write txn n.Lnode.key key;
        Tm.write txn n.Lnode.next curr;
        Tm.write txn prev.Lnode.next (Some n);
        Tm.defer txn (fun () -> spare := None);
        true)
  in
  Mode.give_back_spare t.pool ~thread spare;
  result

let remove_s t ~thread key =
  ignore thread;
  apply t ~thread key ~site:"slist.remove"
    ~on_found:(fun txn ~prev ~curr ->
      Tm.write txn prev.Lnode.next (Tm.read txn curr.Lnode.next);
      t.mode.Mode.invalidate txn curr;
      t.mode.Mode.dispose txn curr;
      true)
    ~on_notfound:(fun _ ~prev:_ ~curr:_ -> false)

let insert t ~thread key = fst (insert_s t ~thread key)
let remove t ~thread key = fst (remove_s t ~thread key)
let lookup t ~thread key = fst (lookup_s t ~thread key)

let finalize_thread t ~thread =
  t.mode.Mode.finalize ~thread;
  Mempool.drain_magazines t.pool ~thread
let drain t = t.mode.Mode.drain ()

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (Tm.peek n.Lnode.key :: acc) (Tm.peek n.Lnode.next)
  in
  go [] (Tm.peek t.head.Lnode.next)

let size t = List.length (to_list t)

let check t =
  let rec go prev_key node =
    match node with
    | None -> Ok ()
    | Some n ->
        let k = Tm.peek n.Lnode.key in
        if k = Lnode.poisoned_key then
          Error (Printf.sprintf "poisoned node %d linked" n.Lnode.id)
        else if Tm.peek n.Lnode.deleted then
          Error (Printf.sprintf "deleted node %d (key %d) linked" n.Lnode.id k)
        else if not (Mempool.is_live t.pool n) then
          Error (Printf.sprintf "freed node %d (key %d) linked" n.Lnode.id k)
        else if k <= prev_key then
          Error (Printf.sprintf "keys not strictly sorted at %d" k)
        else go k (Tm.peek n.Lnode.next)
  in
  go min_int (Tm.peek t.head.Lnode.next)

let pool_stats t = Mempool.stats t.pool
let pool_live t = Mempool.live t.pool
let hazard_metrics t = t.mode.Mode.hazard_metrics ()
