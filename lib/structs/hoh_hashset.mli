(** A hash set built from hand-over-hand transactions and revocable
    reservations — the paper's Section 6 future-work claim ("we believe
    they will be a valuable technique for other concurrent data structures,
    such as balanced trees and hash tables") made concrete.

    Keys hash into a fixed array of sorted bucket chains; each chain is
    traversed exactly like Listing 5's list, sharing one node pool and one
    reservation object across all buckets. Because chains are short, most
    operations fit in a single window and the reservation machinery only
    pays off under pathological bucket loads — which the benchmarks can
    exhibit by under-sizing [buckets]. *)

type t

val create :
  mode:Mode.kind ->
  ?buckets:int ->
  ?window:int ->
  ?scatter:bool ->
  ?adaptive:bool ->
  ?fusion:int ->
  ?middle:bool ->
  ?magazines:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?hp_threshold:int ->
  ?max_attempts:int ->
  unit ->
  t
(** [buckets] defaults to 64. *)

val name : t -> string
val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool
val insert_s : t -> thread:int -> int -> bool * int
val remove_s : t -> thread:int -> int -> bool * int
val lookup_s : t -> thread:int -> int -> bool * int
val finalize_thread : t -> thread:int -> unit
val drain : t -> unit

val to_list : t -> int list
(** Sorted contents (quiescent). *)

val size : t -> int
val check : t -> (unit, string) result
val pool_stats : t -> Mempool.Stats.t

val pool_live : t -> int
(** O(1) live-slot count ([Mempool.live]) for backlog sampling. *)

val hazard_metrics : t -> Reclaim.Hazard.metrics option
