(** The paper's Section 4.3 internal unbalanced binary search tree with
    hand-over-hand transactions.

    Lookups and inserts are singly-linked-list-like: windowed descent, one
    reservation at a time, no revocation. Removal of a node with at most one
    child splices it out and revokes just that node. Removal of a node with
    two children overwrites its key with that of the leftmost descendant of
    its right child, extracts that descendant, and — because the moved value
    makes resume points between the two nodes stale — revokes {e every node
    on the path} between them (inclusive), the paper's sufficient condition.
    These multi-reference revocations are exactly why the O(T)/O(A) [Revoke]
    implementations fall behind RR-XO/RR-V in Figure 6.

    A sentinel root (key [max_int], real tree on its left) simplifies
    removal of the topmost node. Only [Rr_kind] and [Htm] modes are
    supported (the paper knows of no internal trees using hazard
    pointers). *)

type t

val create :
  mode:Mode.kind ->
  ?window:int ->
  ?scatter:bool ->
  ?adaptive:bool ->
  ?fusion:int ->
  ?middle:bool ->
  ?magazines:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?max_attempts:int ->
  unit ->
  t
(** [window] defaults to 16; [max_attempts] to 8 (the paper raises the
    HTM retry count to 8 for trees).
    @raise Invalid_argument for [Tmhp]/[Ref] modes. *)

val name : t -> string

val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool
val insert_s : t -> thread:int -> int -> bool * int
val remove_s : t -> thread:int -> int -> bool * int
val lookup_s : t -> thread:int -> int -> bool * int

val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val to_list : t -> int list  (** sorted contents (quiescent) *)

val size : t -> int
val depth : t -> int  (** maximum depth (quiescent) *)

val check : t -> (unit, string) result
(** BST ordering with strict bounds, correct [side] flags, linked nodes
    live and unpoisoned. *)

val pool_stats : t -> Mempool.Stats.t

val pool_live : t -> int
(** O(1) live-slot count ([Mempool.live]) for backlog sampling. *)

