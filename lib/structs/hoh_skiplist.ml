module Window = Rr.Hoh.Window

type t = {
  mode : Snode.t Mode.t;
  head : Snode.t;
  window : Window.t;
  middle : Tm.Middle.t option;
  pool : Snode.t Mempool.t;
  max_attempts : int option;
  seeds : int array;
}

let create ~mode ?(window = 16) ?(scatter = true) ?adaptive ?fusion
    ?(middle = false) ?magazines ?strategy ?rr_config ?hp_threshold
    ?(max_attempts = 8) ?(seed = 42) () =
  (match mode with
  | Mode.Ref -> invalid_arg "Hoh_skiplist: Ref mode is not supported"
  | Mode.Rr_kind _ | Mode.Htm | Mode.Tmhp | Mode.Ebr -> ());
  let pool = Snode.make_pool ?strategy ?magazines () in
  let mode =
    Mode.create mode ~pool
      ~deleted:(fun n -> n.Snode.deleted)
      ~rc:(fun n -> n.Snode.rc)
      ~gen:(fun n -> Atomic.get n.Snode.gen)
      ~hash:Snode.hash ~equal:Snode.equal ?rr_config ?hp_threshold ()
  in
  {
    mode;
    head = Snode.sentinel ();
    window = Window.create ~scatter ?adaptive ?fusion window;
    middle = (if middle then Some (Tm.Middle.create ()) else None);
    pool;
    max_attempts = Some max_attempts;
    seeds = Array.init Tm.Thread.max_threads (fun i -> seed + (i * 7919) + 1);
  }

let name t = t.mode.Mode.name ^ "-skip"

(* Geometric tower heights (p = 1/2), per-thread generators. *)
let random_level t ~thread =
  let s = t.seeds.(thread) in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  t.seeds.(thread) <- s;
  let rec go lvl bits =
    if lvl >= Snode.max_level || bits land 1 = 0 then lvl
    else go (lvl + 1) (bits lsr 1)
  in
  1 + go 0 (s land max_int)

exception Stale_hint

(* TxSan: record a pred-array entry as a carried hint (its shadow
   generation is captured when the noting transaction commits). The head
   sentinel is not pool-backed and never reclaimed, so it is not noted. *)
let note_hint txn t node =
  if San.enabled () && not (Snode.equal node t.head) then
    San.hint_note ~tid:(Tm.thread_id txn) ~node:(Mempool.san_key t.pool node)

(* Full descent inside the current transaction, refreshing every hint;
   the fallback when a hint from an earlier window was removed. *)
let collect_preds txn t ~key preds =
  let rec walk node lvl =
    match Tm.read txn node.Snode.next.(lvl) with
    | Some m when Tm.read txn m.Snode.key < key -> walk m lvl
    | _ ->
        preds.(lvl) <- node;
        note_hint txn t node;
        if lvl > 0 then walk node (lvl - 1)
  in
  walk t.head (Snode.max_level - 1)

(* Validate and fast-forward the hint for level [l]. A hint recorded in an
   earlier window is only usable if, in this transaction's snapshot, it is
   still a live level-[l] node below [key]: checking [deleted] alone is not
   enough, because a hint can be freed, recycled, and re-inserted elsewhere
   — alive again, but with a new key and a new (possibly shorter) tower, so
   walking level [l] from it would start outside the level-[l] list. Any
   live node with [key' < key] and [level > l] is on the sorted level-[l]
   list, so fast-forwarding from it is correct; newer inserts between hint
   and position are skipped by walking forward within the snapshot. *)
let fresh_pred txn t ~key ~preds l =
  let hint = preds.(l) in
  (* Dst.Inject bug #3: only check [deleted], as the original code did — a
     freed hint recycled under a new key/tower is then accepted and the
     level-[l] walk starts outside the level-[l] list (DESIGN.md). *)
  if
    (not (Snode.equal hint t.head))
    && (Tm.read txn hint.Snode.deleted
       || (not (Dst.Inject.bug Dst.Inject.Stale_hint))
          && (Tm.read txn hint.Snode.key >= key
             || Tm.read txn hint.Snode.level <= l))
  then raise Stale_hint;
  (* The hint survived validation and is about to seed the level-[l] walk.
     Under bug #3 only [deleted] was checked, so the use counts as
     unrevalidated: TxSan flags it if the hint's shadow generation moved
     (freed or recycled) since the window that noted it. *)
  if San.enabled () && not (Snode.equal hint t.head) then
    San.hint_use ~tid:(Tm.thread_id txn) ~site:(Tm.txn_site txn)
      ~node:(Mempool.san_key t.pool hint)
      ~revalidated:(not (Dst.Inject.bug Dst.Inject.Stale_hint));
  let rec go p =
    match Tm.read txn p.Snode.next.(l) with
    | Some m when Tm.read txn m.Snode.key < key -> go m
    | _ -> p
  in
  go hint

let pred_with_hint txn t ~key ~preds l =
  try fresh_pred txn t ~key ~preds l
  with Stale_hint ->
    collect_preds txn t ~key preds;
    fresh_pred txn t ~key ~preds l

(* The windowed traversal. [on_position txn ~preds ~pred0 ~curr] runs in the
   final transaction once level 0 is reached: [pred0 = preds.(0)] is fresh,
   [curr] its level-0 successor (the candidate match). *)
let apply t ~thread ?(read_phase = false) key ~site ~on_position =
  if key <= min_int + 1 then invalid_arg "Hoh_skiplist: key out of range";
  let preds = Array.make Snode.max_level t.head in
  let resume_level = ref (Snode.max_level - 1) in
  Rr.Hoh.apply_stamped ~rr:t.mode.Mode.ops ~site ?max_attempts:t.max_attempts
    ~read_phase
    ~window:(t.window, thread)
    ?middle:t.middle
    (fun txn ~start ->
      let node, lvl, budget =
        match start with
        | Some n -> (n, !resume_level, Window.budget t.window ~thread)
        | None ->
            Array.fill preds 0 Snode.max_level t.head;
            ( t.head,
              Snode.max_level - 1,
              if t.mode.Mode.whole_op then max_int
              else Window.first_budget t.window ~thread )
      in
      let rec walk node lvl visited =
        match Tm.read txn node.Snode.next.(lvl) with
        | Some m when Tm.read txn m.Snode.key < key ->
            if visited >= budget then begin
              Tm.defer txn (fun () -> resume_level := lvl);
              Rr.Hoh.Hand_off m
            end
            else walk m lvl (visited + 1)
        | curr ->
            preds.(lvl) <- node;
            note_hint txn t node;
            if lvl = 0 then
              Rr.Hoh.Finish (on_position txn ~preds ~pred0:node ~curr)
            else walk node (lvl - 1) visited
      in
      walk node lvl 1)

let key_matches txn curr key =
  match curr with
  | Some c -> Tm.read txn c.Snode.key = key
  | None -> false

let lookup_s t ~thread key =
  apply t ~thread ~read_phase:t.mode.Mode.ro_hint key ~site:"skiplist.lookup"
    ~on_position:(fun txn ~preds:_ ~pred0:_ ~curr -> key_matches txn curr key)

let insert_s t ~thread key =
  let spare = ref None in
  let result =
    apply t ~thread key ~site:"skiplist.insert"
      ~on_position:(fun txn ~preds ~pred0:_ ~curr ->
        if key_matches txn curr key then false
        else begin
          let n =
            match !spare with
            | Some n -> n
            | None ->
                let n = Snode.alloc t.pool ~thread in
                spare := Some n;
                n
          in
          let height = random_level t ~thread in
          Tm.write txn n.Snode.key key;
          Tm.write txn n.Snode.level height;
          for l = 0 to height - 1 do
            let p = pred_with_hint txn t ~key ~preds l in
            Tm.write txn n.Snode.next.(l) (Tm.read txn p.Snode.next.(l));
            Tm.write txn p.Snode.next.(l) (Some n)
          done;
          Tm.defer txn (fun () -> spare := None);
          true
        end)
  in
  Mode.give_back_spare t.pool ~thread spare;
  result

let remove_s t ~thread key =
  apply t ~thread key ~site:"skiplist.remove"
    ~on_position:(fun txn ~preds ~pred0:_ ~curr ->
      match curr with
      | Some c when Tm.read txn c.Snode.key = key ->
          (* the deleted flag is the hint-validity marker in every mode *)
          Tm.write txn c.Snode.deleted true;
          let height = Tm.read txn c.Snode.level in
          for l = 0 to height - 1 do
            let p = pred_with_hint txn t ~key ~preds l in
            (* [p] is the rightmost node below [key] at level l, so its
               successor at level l is [c] in this snapshot *)
            (match Tm.read txn p.Snode.next.(l) with
            | Some m when Snode.equal m c ->
                Tm.write txn p.Snode.next.(l) (Tm.read txn c.Snode.next.(l))
            | _ -> assert false);
            ()
          done;
          t.mode.Mode.invalidate txn c;
          t.mode.Mode.dispose txn c;
          true
      | _ -> false)

let insert t ~thread key = fst (insert_s t ~thread key)
let remove t ~thread key = fst (remove_s t ~thread key)
let lookup t ~thread key = fst (lookup_s t ~thread key)

let finalize_thread t ~thread =
  t.mode.Mode.finalize ~thread;
  Mempool.drain_magazines t.pool ~thread
let drain t = t.mode.Mode.drain ()

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (Tm.peek n.Snode.key :: acc) (Tm.peek n.Snode.next.(0))
  in
  go [] (Tm.peek t.head.Snode.next.(0))

let size t = List.length (to_list t)

let levels_histogram t =
  let hist = Array.make (Snode.max_level + 1) 0 in
  let rec go = function
    | None -> ()
    | Some n ->
        let l = Tm.peek n.Snode.level in
        hist.(l) <- hist.(l) + 1;
        go (Tm.peek n.Snode.next.(0))
  in
  go (Tm.peek t.head.Snode.next.(0));
  hist

let check t =
  let exception Bad of string in
  let node_ok n =
    if Tm.peek n.Snode.key = Snode.poisoned_key then
      raise (Bad (Printf.sprintf "poisoned node %d linked" n.Snode.id));
    if Tm.peek n.Snode.deleted then
      raise (Bad (Printf.sprintf "deleted node %d linked" n.Snode.id));
    if not (Mempool.is_live t.pool n) then
      raise (Bad (Printf.sprintf "freed node %d linked" n.Snode.id))
  in
  try
    (* level-0 contents; remember them for the sublist checks *)
    let level0 = Hashtbl.create 64 in
    let rec walk0 prev_key = function
      | None -> ()
      | Some n ->
          node_ok n;
          let k = Tm.peek n.Snode.key in
          if k <= prev_key then
            raise (Bad (Printf.sprintf "level 0 not sorted at %d" k));
          let l = Tm.peek n.Snode.level in
          if l < 1 || l > Snode.max_level then
            raise (Bad (Printf.sprintf "bad tower height %d at %d" l k));
          Hashtbl.replace level0 n.Snode.id l;
          walk0 k (Tm.peek n.Snode.next.(0))
    in
    walk0 min_int (Tm.peek t.head.Snode.next.(0));
    (* every upper level: sorted, and only nodes whose tower reaches it *)
    for l = 1 to Snode.max_level - 1 do
      let rec walk prev_key = function
        | None -> ()
        | Some n ->
            let k = Tm.peek n.Snode.key in
            if k <= prev_key then
              raise (Bad (Printf.sprintf "level %d not sorted at %d" l k));
            (match Hashtbl.find_opt level0 n.Snode.id with
            | Some h when h > l -> ()
            | Some _ ->
                raise
                  (Bad (Printf.sprintf "node %d linked above its height" k))
            | None ->
                raise
                  (Bad
                     (Printf.sprintf "node %d at level %d missing from level 0"
                        k l)));
            walk k (Tm.peek n.Snode.next.(l))
      in
      walk min_int (Tm.peek t.head.Snode.next.(l))
    done;
    (* conversely, every tall node must be reachable at each of its levels *)
    let counts = Array.make Snode.max_level 0 in
    Hashtbl.iter
      (fun _ h ->
        for l = 0 to h - 1 do
          counts.(l) <- counts.(l) + 1
        done)
      level0;
    for l = 0 to Snode.max_level - 1 do
      let rec len acc = function
        | None -> acc
        | Some n -> len (acc + 1) (Tm.peek n.Snode.next.(l))
      in
      let reach = len 0 (Tm.peek t.head.Snode.next.(l)) in
      if reach <> counts.(l) then
        raise
          (Bad
             (Printf.sprintf "level %d reaches %d nodes, towers say %d" l reach
                counts.(l)))
    done;
    Ok ()
  with Bad m -> Error m

let pool_stats t = Mempool.stats t.pool
let pool_live t = Mempool.live t.pool
let hazard_metrics t = t.mode.Mode.hazard_metrics ()
