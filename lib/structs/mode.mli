(** Reclamation/traversal modes shared by the transactional data
    structures.

    Every structure in the paper's evaluation is "Listing 5 plus a policy":
    the same hand-over-hand traversal code runs with

    - one of the six revocable-reservation implementations (precise,
      immediate reclamation),
    - no reservations at all and an unbounded window — the single-hardware-
      transaction HTM baseline,
    - transactional hazard pointers (TMHP): reservations become hazard-slot
      publications and node validity becomes a transactional
      logical-deletion flag; reclamation is deferred and batched,
    - transactional reference counts (REF): window-start nodes are pinned by
      a count; the last unpinner frees a deleted node.

    A mode bundles the reservation operations with two removal hooks:
    [invalidate] makes any outstanding reservation/resume point on a node
    unusable (RR: [Revoke]; TMHP/REF: set the deleted flag), and [dispose]
    schedules the node's memory for reclamation (free on commit, retire to
    the hazard domain, or refcount-guarded free). *)

type kind =
  | Rr_kind of (module Rr.S)
  | Htm  (** whole operation in one transaction; serial fallback as HTM *)
  | Tmhp
  | Ref
  | Ebr
      (** epoch-based deferred reclamation: threads stay announced in an
          epoch for the whole operation; removed nodes are freed two epoch
          advances after retirement *)

val kind_name : kind -> string

type 'n t = {
  name : string;
  strict : bool;
  whole_op : bool;  (** ignore windows; run the operation in one txn *)
  ro_hint : bool;
      (** pure lookups under this mode may run their windows with
          {!Tm.atomic}'s [read_phase] hint (wait out locked words, never
          escalate to the serial fallback). True for TMHP and EBR, whose
          reservations are out-of-band publications (the lookup windows
          are TM-read-only, so they never advance the clock), and for the
          RR kinds, whose reservation writes touch only the reserving
          thread's own slots/cells — contended solely by rare revocations,
          which regular abort/retry handles. False for REF (reserving
          writes shared refcount tvars that every passing thread
          contends on) and HTM (the whole operation, writes included,
          runs as one transaction). *)
  ops : 'n Rr.ops;
  invalidate : Tm.txn -> 'n -> unit;
  dispose : Tm.txn -> 'n -> unit;
  finalize : thread:int -> unit;
      (** per-thread cleanup after a worker quiesces (clear hazard slots) *)
  drain : unit -> unit;  (** global cleanup: drain deferred reclamation *)
  hazard_metrics : unit -> Reclaim.Hazard.metrics option;
}

val tmhp_gen_violations : int Atomic.t
(** Diagnostic: TMHP resumes whose node was recycled (freed and
    reallocated) since reservation. Must stay zero if the hazard-pointer
    protocol is airtight. *)

val give_back_spare : 'n Mempool.t -> thread:int -> 'n option ref -> unit
(** Return an unconsumed insert spare to the pool. Outside any transaction
    the node is freed immediately; inside an enclosing transaction (a
    flat-nested, composed operation) the free is deferred to the enclosing
    commit — freeing eagerly would poison a node whose linking writes are
    still buffered. The ref is re-checked at commit so a spare consumed by
    a later attempt is not freed. *)

val create :
  kind ->
  pool:'n Mempool.t ->
  deleted:('n -> bool Tm.tvar) ->
  rc:('n -> Reclaim.Rc.t) ->
  gen:('n -> int) ->
  hash:('n -> int) ->
  equal:('n -> 'n -> bool) ->
  ?rr_config:Rr.Config.t ->
  ?hp_threshold:int ->
  unit ->
  'n t
(** [hp_threshold] is the TMHP scan threshold (default 64, the paper's best
    setting). *)
