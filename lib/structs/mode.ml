type kind =
  | Rr_kind of (module Rr.S)
  | Htm
  | Tmhp
  | Ref
  | Ebr

let kind_name = function
  | Rr_kind m ->
      let module M = (val m : Rr.S) in
      M.name
  | Htm -> "HTM"
  | Tmhp -> "TMHP"
  | Ref -> "REF"
  | Ebr -> "EBR"

type 'n t = {
  name : string;
  strict : bool;
  whole_op : bool;
  ro_hint : bool;
  ops : 'n Rr.ops;
  invalidate : Tm.txn -> 'n -> unit;
  dispose : Tm.txn -> 'n -> unit;
  finalize : thread:int -> unit;
  drain : unit -> unit;
  hazard_metrics : unit -> Reclaim.Hazard.metrics option;
}

let give_back_spare pool ~thread spare =
  match !spare with
  | None -> ()
  | Some n -> (
      match Tm.current_txn () with
      | None ->
          Mempool.free pool ~thread n;
          spare := None
      | Some txn ->
          Tm.defer txn (fun () ->
              match !spare with
              | Some n ->
                  Mempool.free pool ~thread n;
                  spare := None
              | None -> ()))

(* Mirror the TxSan funnel that [Rr.instantiate] wraps around the six RR
   implementations, so the baseline modes' reservations answer to the same
   window discipline (reservation-leak at window end, unchecked-carry until
   a successful [get], stamp-window use-after-free at the reserving
   commit). [key] is the pool-backed shadow-slot key. *)
let san_ops ~key (ops : 'n Rr.ops) : 'n Rr.ops =
  {
    ops with
    reserve =
      (fun txn n ->
        San.rr_reserve ~tid:(Tm.thread_id txn) ~node:(key n);
        ops.Rr.reserve txn n);
    release =
      (fun txn n ->
        San.rr_release ~tid:(Tm.thread_id txn) ~node:(key n);
        ops.Rr.release txn n);
    release_all =
      (fun txn ->
        San.rr_release_all ~tid:(Tm.thread_id txn);
        ops.Rr.release_all txn);
    get =
      (fun txn n ->
        if San.enabled () then begin
          let tid = Tm.thread_id txn in
          San.rr_check_begin ~tid;
          let res = ops.Rr.get txn n in
          San.rr_check_end ~tid ~site:(Tm.txn_site txn) ~node:(key n)
            ~ok:(res <> None);
          res
        end
        else ops.Rr.get txn n);
  }

let no_op_ops name : 'n Rr.ops =
  {
    Rr.name;
    strict = true;
    register = (fun _ -> ());
    reserve = (fun _ _ -> ());
    release = (fun _ _ -> ());
    release_all = (fun _ -> ());
    get = (fun _ _ -> None);
    revoke = (fun _ _ -> ());
  }

(* TMHP: a reservation is a hazard-slot publication plus, for validity, a
   transactional read of the node's deleted flag. Publications are made
   eagerly (so they are visible before the commit that makes the hand-off
   real) but only {e dropped} on commit, via Tm.defer with two rotating
   slots per thread — an aborted attempt must keep its previous window-start
   protected or the node could be freed and reused under it. *)
let tmhp_gen_violations = Atomic.make 0

let tmhp_mode ~pool ~deleted ~gen ~hp_threshold =
  let hazard =
    Reclaim.Hazard.create ~slots_per_thread:2 ~scan_threshold:hp_threshold
      ~free:(fun ~thread n -> Mempool.free pool ~thread n)
      ~node_id:(Mempool.id_of pool)
      ~san_key:(Mempool.san_key pool) ()
  in
  let cur = Array.make Tm.Thread.max_threads 0 in
  let gens = Array.make Tm.Thread.max_threads 0 in
  let pending_gen = Array.make Tm.Thread.max_threads 0 in
  let reserve txn n =
    let thread = Tm.thread_id txn in
    let spare = 1 - cur.(thread) in
    Reclaim.Hazard.protect hazard ~thread ~slot:spare n;
    pending_gen.(thread) <- gen n;
    (* Publish-then-revalidate: this transaction is otherwise read-only
       (the publication is a side effect), so it would skip commit
       validation — and the publication could then land only after a
       concurrent remover's retire-scan had already decided to free [n].
       Forcing read-set validation orders the publication before any
       conflicting commit, exactly like Michael's re-read of the source
       pointer after setting a hazard pointer. Dst.Inject bug #2 drops the
       forced validation, re-opening the publication race (DESIGN.md). *)
    if not (Dst.Inject.bug Dst.Inject.Ro_publication) then
      Tm.validate_on_commit txn;
    Tm.defer txn (fun () ->
        Reclaim.Hazard.clear hazard ~thread ~slot:cur.(thread);
        cur.(thread) <- spare;
        gens.(thread) <- pending_gen.(thread))
  in
  let release_all txn =
    let thread = Tm.thread_id txn in
    Tm.defer txn (fun () ->
        Reclaim.Hazard.clear hazard ~thread ~slot:cur.(thread))
  in
  let get txn n =
    if Tm.read txn (deleted n) then None
    else begin
      if gen n <> gens.(Tm.thread_id txn) then
        Atomic.incr tmhp_gen_violations;
      Some n
    end
  in
  let ops =
    san_ops ~key:(Mempool.san_key pool)
      {
        Rr.name = "TMHP";
        strict = true;
        register = (fun _ -> ());
        reserve;
        release = (fun txn _ -> release_all txn);
        release_all;
        get;
        revoke = (fun _ _ -> ());
      }
  in
  {
    name = "TMHP";
    strict = true;
    whole_op = false;
    ro_hint = true;
    ops;
    invalidate = (fun txn n -> Tm.write txn (deleted n) true);
    dispose =
      (fun txn n ->
        let thread = Tm.thread_id txn in
        Tm.defer txn (fun () -> Reclaim.Hazard.retire hazard ~thread n));
    finalize =
      (fun ~thread ->
        Reclaim.Hazard.clear_all hazard ~thread;
        Reclaim.Hazard.scan hazard ~thread);
    drain = (fun () -> Reclaim.Hazard.drain hazard);
    hazard_metrics = (fun () -> Some (Reclaim.Hazard.metrics hazard));
  }

(* REF: the reservation pins the node with a transactional reference count;
   everything (count, held-slot, deleted flag) is in tvars, so aborts roll
   the pin back — no rotation tricks needed. Whoever drops the count of an
   already-deleted node to zero frees it. *)
let ref_mode ~pool ~deleted ~rc =
  let held = Array.init Tm.Thread.max_threads (fun _ -> Tm.tvar None) in
  let free_if_dead txn n =
    if Reclaim.Rc.get txn (rc n) = 0 && Tm.read txn (deleted n) then begin
      let thread = Tm.thread_id txn in
      Tm.defer txn (fun () -> Mempool.free pool ~thread n)
    end
  in
  let release_all txn =
    let slot = held.(Tm.thread_id txn) in
    match Tm.read txn slot with
    | None -> ()
    | Some n ->
        ignore (Reclaim.Rc.decr txn (rc n));
        Tm.write txn slot None;
        free_if_dead txn n
  in
  let reserve txn n =
    release_all txn;
    Reclaim.Rc.incr txn (rc n);
    Tm.write txn held.(Tm.thread_id txn) (Some n)
  in
  let get txn n = if Tm.read txn (deleted n) then None else Some n in
  let ops =
    san_ops ~key:(Mempool.san_key pool)
      {
        Rr.name = "REF";
        strict = true;
        register = (fun _ -> ());
        reserve;
        release = (fun txn _ -> release_all txn);
        release_all;
        get;
        revoke = (fun _ _ -> ());
      }
  in
  {
    name = "REF";
    strict = true;
    whole_op = false;
    ro_hint = false;
    ops;
    invalidate = (fun txn n -> Tm.write txn (deleted n) true);
    dispose = (fun txn n -> free_if_dead txn n);
    finalize = (fun ~thread:_ -> ());
    drain = (fun () -> ());
    hazard_metrics = (fun () -> None);
  }

(* EBR: epoch-based reclamation. A thread announces the global epoch when
   it establishes its first reservation of an operation and stays announced
   until the operation finishes, so nodes retired during the operation
   cannot be freed under it (the epoch can advance at most once past a
   still-announced thread). Validity across transactions is the same
   logical-deletion flag as TMHP, and the reserving transaction forces
   commit validation for the same publish-then-revalidate reason. *)
let ebr_mode ~pool ~deleted ~advance_threshold =
  let epoch =
    Reclaim.Epoch.create ~advance_threshold
      ~free:(fun ~thread n -> Mempool.free pool ~thread n)
      ~san_key:(Mempool.san_key pool) ()
  in
  let active = Array.make Tm.Thread.max_threads false in
  (* [keep] mediates the engine's release_all-then-reserve hand-off
     sequence: a reserve in the same transaction cancels the leave that
     release_all would otherwise perform at commit, so the thread stays
     announced for the whole multi-transaction operation. *)
  let keep = Array.make Tm.Thread.max_threads false in
  let reserve txn n =
    ignore n;
    let thread = Tm.thread_id txn in
    keep.(thread) <- true;
    if not active.(thread) then begin
      Reclaim.Epoch.enter epoch ~thread;
      (* Same publication race as TMHP's reserve (Dst.Inject bug #2). *)
      if not (Dst.Inject.bug Dst.Inject.Ro_publication) then
        Tm.validate_on_commit txn
    end;
    Tm.defer txn (fun () -> active.(thread) <- true)
  in
  let release_all txn =
    let thread = Tm.thread_id txn in
    keep.(thread) <- false;
    Tm.defer txn (fun () ->
        if (not keep.(thread)) && active.(thread) then begin
          Reclaim.Epoch.leave epoch ~thread;
          active.(thread) <- false
        end)
  in
  let get txn n = if Tm.read txn (deleted n) then None else Some n in
  let ops =
    san_ops ~key:(Mempool.san_key pool)
      {
        Rr.name = "EBR";
        strict = true;
        register = (fun _ -> ());
        reserve;
        release = (fun txn _ -> release_all txn);
        release_all;
        get;
        revoke = (fun _ _ -> ());
      }
  in
  {
    name = "EBR";
    strict = true;
    whole_op = false;
    ro_hint = true;
    ops;
    invalidate = (fun txn n -> Tm.write txn (deleted n) true);
    dispose =
      (fun txn n ->
        let thread = Tm.thread_id txn in
        Tm.defer txn (fun () -> Reclaim.Epoch.retire epoch ~thread n));
    finalize =
      (fun ~thread ->
        if active.(thread) then begin
          Reclaim.Epoch.leave epoch ~thread;
          active.(thread) <- false
        end);
    drain = (fun () -> Reclaim.Epoch.drain epoch);
    hazard_metrics =
      (fun () ->
        (* report through the common deferred-reclamation record;
           "scans" counts epoch advances here *)
        let m = Reclaim.Epoch.metrics epoch in
        Some
          {
            Reclaim.Hazard.retired_total = m.Reclaim.Epoch.retired_total;
            freed_total = m.Reclaim.Epoch.freed_total;
            backlog = m.Reclaim.Epoch.backlog;
            max_backlog = m.Reclaim.Epoch.max_backlog;
            scans = m.Reclaim.Epoch.advances;
            delay_total_s = m.Reclaim.Epoch.delay_total_s;
            delay_max_s = m.Reclaim.Epoch.delay_max_s;
          });
  }

let rr_mode m ~pool ~hash ~equal ~rr_config =
  let module M = (val m : Rr.S) in
  let ops =
    Rr.instantiate m ?config:rr_config ~hash
      ~sid:(Mempool.san_key pool) ~equal ()
  in
  {
    name = M.name;
    strict = M.strict;
    whole_op = false;
    ro_hint = true;
    ops;
    invalidate = (fun txn n -> ops.Rr.revoke txn n);
    dispose =
      (fun txn n ->
        let thread = Tm.thread_id txn in
        Tm.defer txn (fun () -> Mempool.free pool ~thread n));
    finalize = (fun ~thread:_ -> ());
    drain = (fun () -> ());
    hazard_metrics = (fun () -> None);
  }

let htm_mode ~pool =
  {
    name = "HTM";
    strict = true;
    whole_op = true;
    ro_hint = false;
    ops = no_op_ops "HTM";
    invalidate = (fun _ _ -> ());
    dispose =
      (fun txn n ->
        let thread = Tm.thread_id txn in
        Tm.defer txn (fun () -> Mempool.free pool ~thread n));
    finalize = (fun ~thread:_ -> ());
    drain = (fun () -> ());
    hazard_metrics = (fun () -> None);
  }

let create kind ~pool ~deleted ~rc ~gen ~hash ~equal ?rr_config
    ?(hp_threshold = 64) () =
  match kind with
  | Rr_kind m -> rr_mode m ~pool ~hash ~equal ~rr_config
  | Htm -> htm_mode ~pool
  | Tmhp -> tmhp_mode ~pool ~deleted ~gen ~hp_threshold
  | Ref -> ref_mode ~pool ~deleted ~rc
  | Ebr -> ebr_mode ~pool ~deleted ~advance_threshold:hp_threshold
