type t = {
  id : int;
  pstate : int Atomic.t;
  gen : int Atomic.t;
  key : int Tm.tvar;
  next : t option Tm.tvar array;
  level : int Tm.tvar;
  deleted : bool Tm.tvar;
  rc : Reclaim.Rc.t;
}

let max_level = 16
let poisoned_key = min_int

let make id =
  {
    id;
    pstate = Atomic.make 0;
    gen = Atomic.make 0;
    key = Tm.tvar poisoned_key;
    next = Array.init max_level (fun _ -> Tm.tvar None);
    level = Tm.tvar 0;
    deleted = Tm.tvar false;
    rc = Reclaim.Rc.make 0;
  }

let poison n =
  Tm.poke n.key poisoned_key;
  Tm.poke n.level 0;
  Tm.poke n.deleted true;
  Array.iter (fun nx -> Tm.poke nx None) n.next

let tvar_ids n =
  Tm.tvar_id n.key :: Tm.tvar_id n.level :: Tm.tvar_id n.deleted
  :: Array.to_list (Array.map Tm.tvar_id n.next)

let make_pool ?strategy ?magazines () =
  Mempool.create ?strategy ?magazines ~make ~node_id:(fun n -> n.id)
    ~state:(fun n -> n.pstate)
    ~poison ~tvar_ids
    ~probe_ids:(fun n -> [ Tm.tvar_id n.deleted ])
    ()

let sentinel () =
  let n = make (-1) in
  Tm.poke n.level max_level;
  n

let hash n =
  let h = n.id * 0x9e3779b1 in
  h lxor (h lsr 16)

let equal a b = a == b

let alloc pool ~thread =
  let n = Mempool.alloc pool ~thread in
  Atomic.incr n.gen;
  (* Re-initialization pokes on a node no thread can reach yet: exempt from
     TxSan's non-transactional-access rule, like the poison pokes in free. *)
  San.exempt_begin ();
  Tm.poke n.deleted false;
  Array.iter (fun nx -> Tm.poke nx None) n.next;
  San.exempt_end ();
  n
