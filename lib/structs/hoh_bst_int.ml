module Window = Rr.Hoh.Window

type t = {
  mode : Tnode.t Mode.t;
  root : Tnode.t;  (** sentinel, key = [max_int]; real tree on its left *)
  window : Window.t;
  middle : Tm.Middle.t option;
  pool : Tnode.t Mempool.t;
  max_attempts : int option;
}

let create ~mode ?(window = 16) ?(scatter = true) ?adaptive ?fusion
    ?(middle = false) ?magazines ?strategy ?rr_config ?(max_attempts = 8) () =
  (match mode with
  | Mode.Tmhp | Mode.Ref | Mode.Ebr ->
      invalid_arg "Hoh_bst_int: only Rr_kind and Htm modes are supported"
  | Mode.Rr_kind _ | Mode.Htm -> ());
  let pool = Tnode.make_pool ?strategy ?magazines () in
  let mode =
    Mode.create mode ~pool
      ~deleted:(fun n -> n.Tnode.deleted)
      ~rc:(fun n -> n.Tnode.rc)
      ~gen:(fun n -> Atomic.get n.Tnode.gen)
      ~hash:Tnode.hash ~equal:Tnode.equal ?rr_config ()
  in
  {
    mode;
    root = Tnode.sentinel ~key:max_int;
    window = Window.create ~scatter ?adaptive ?fusion window;
    middle = (if middle then Some (Tm.Middle.create ()) else None);
    pool;
    max_attempts = Some max_attempts;
  }

let name t = t.mode.Mode.name

(* One windowed descent. Examines up to [budget] nodes; on exhaustion hands
   off the last examined node (whose key the resuming transaction
   re-reads to recover direction). [`Found_unparented] arises only when the
   resumed node itself matches — possible only if its key changed, which
   revocation prevents — and is handled by re-descending from the root. *)
let descend txn ~key ~start ~budget =
  let rec go parent curr i =
    let k = Tm.read txn curr.Tnode.key in
    if k = key then
      match parent with
      | Some p -> `Found (p, curr)
      | None -> `Found_unparented
    else
      let side = key < k in
      let child = if side then curr.Tnode.left else curr.Tnode.right in
      match Tm.read txn child with
      | None -> `Absent (curr, side)
      | Some c ->
          if i >= budget then `Window curr
          else go (Some curr) c (i + 1)
  in
  go None start 1

let start_point t ~thread ~start =
  match start with
  | Some n -> (n, Window.budget t.window ~thread)
  | None ->
      ( t.root,
        if t.mode.Mode.whole_op then max_int
        else Window.first_budget t.window ~thread )

let apply t ~thread ?(read_phase = false) key ~site ~on_found ~on_notfound =
  if key <= min_int + 1 || key >= max_int then
    invalid_arg "Hoh_bst_int: key out of range";
  Rr.Hoh.apply_stamped ~rr:t.mode.Mode.ops ~site ?max_attempts:t.max_attempts
    ~read_phase
    ~window:(t.window, thread)
    ?middle:t.middle
    (fun txn ~start ->
      let start, budget = start_point t ~thread ~start in
      let outcome =
        match descend txn ~key ~start ~budget with
        | `Found_unparented ->
            (* Rare fallback: finish the descent from the root in this same
               transaction to recover the parent. *)
            descend txn ~key ~start:t.root ~budget:max_int
        | o -> o
      in
      match outcome with
      | `Found (p, curr) -> Rr.Hoh.Finish (on_found txn ~parent:p ~curr)
      | `Absent (p, side) -> Rr.Hoh.Finish (on_notfound txn ~parent:p ~side)
      | `Window c -> Rr.Hoh.Hand_off c
      | `Found_unparented -> assert false (* root descent always has parents *))

let lookup_s t ~thread key =
  apply t ~thread ~read_phase:t.mode.Mode.ro_hint key ~site:"bst_int.lookup"
    ~on_found:(fun _ ~parent:_ ~curr:_ -> true)
    ~on_notfound:(fun _ ~parent:_ ~side:_ -> false)

let insert_s t ~thread key =
  let spare = ref None in
  let result =
    apply t ~thread key ~site:"bst_int.insert"
      ~on_found:(fun _ ~parent:_ ~curr:_ -> false)
      ~on_notfound:(fun txn ~parent ~side ->
        let n =
          match !spare with
          | Some n -> n
          | None ->
              let n = Tnode.alloc t.pool ~thread in
              spare := Some n;
              n
        in
        Tm.write txn n.Tnode.key key;
        Tm.write txn n.Tnode.side side;
        Tm.write txn
          (if side then parent.Tnode.left else parent.Tnode.right)
          (Some n);
        Tm.defer txn (fun () -> spare := None);
        true)
  in
  Mode.give_back_spare t.pool ~thread spare;
  result

(* Replace [parent]'s edge to [curr] with [child] (zero- or one-child
   splice). *)
let splice t txn ~parent ~curr child =
  let cside = Tm.read txn curr.Tnode.side in
  Tm.write txn (if cside then parent.Tnode.left else parent.Tnode.right) child;
  (match child with
  | Some c -> Tm.write txn c.Tnode.side cside
  | None -> ());
  t.mode.Mode.invalidate txn curr;
  t.mode.Mode.dispose txn curr

(* Two-child removal: move the key of the leftmost descendant of the right
   child into [curr], extract that descendant, and revoke the whole
   curr..leftmost path. *)
let remove_two_children t txn ~curr ~right =
  let rec find_leftmost parent node acc =
    match Tm.read txn node.Tnode.left with
    | Some l -> find_leftmost node l (node :: acc)
    | None -> (parent, node, node :: acc)
  in
  let lparent, lm, path = find_leftmost curr right [ curr ] in
  Tm.write txn curr.Tnode.key (Tm.read txn lm.Tnode.key);
  let promoted = Tm.read txn lm.Tnode.right in
  if Tnode.equal lparent curr then begin
    (* [lm] is curr's right child: its right subtree takes its place. *)
    Tm.write txn curr.Tnode.right promoted;
    match promoted with
    | Some x -> Tm.write txn x.Tnode.side false
    | None -> ()
  end
  else begin
    Tm.write txn lparent.Tnode.left promoted;
    match promoted with
    | Some x -> Tm.write txn x.Tnode.side true
    | None -> ()
  end;
  List.iter (fun n -> t.mode.Mode.invalidate txn n) path;
  t.mode.Mode.dispose txn lm

let remove_s t ~thread key =
  apply t ~thread key ~site:"bst_int.remove"
    ~on_found:(fun txn ~parent ~curr ->
      let lv = Tm.read txn curr.Tnode.left in
      let rv = Tm.read txn curr.Tnode.right in
      (match (lv, rv) with
      | None, _ -> splice t txn ~parent ~curr rv
      | _, None -> splice t txn ~parent ~curr lv
      | Some _, Some r -> remove_two_children t txn ~curr ~right:r);
      true)
    ~on_notfound:(fun _ ~parent:_ ~side:_ -> false)

let insert t ~thread key = fst (insert_s t ~thread key)
let remove t ~thread key = fst (remove_s t ~thread key)
let lookup t ~thread key = fst (lookup_s t ~thread key)

let finalize_thread t ~thread =
  t.mode.Mode.finalize ~thread;
  Mempool.drain_magazines t.pool ~thread
let drain t = t.mode.Mode.drain ()

let rec fold_infix acc node f =
  match node with
  | None -> acc
  | Some n ->
      let acc = fold_infix acc (Tm.peek n.Tnode.left) f in
      let acc = f acc n in
      fold_infix acc (Tm.peek n.Tnode.right) f

let to_list t =
  List.rev
    (fold_infix [] (Tm.peek t.root.Tnode.left) (fun acc n ->
         Tm.peek n.Tnode.key :: acc))

let size t = fold_infix 0 (Tm.peek t.root.Tnode.left) (fun acc _ -> acc + 1)

let depth t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + max (go (Tm.peek n.Tnode.left)) (go (Tm.peek n.Tnode.right))
  in
  go (Tm.peek t.root.Tnode.left)

let check t =
  let exception Bad of string in
  let rec go node ~lo ~hi ~expect_side =
    match node with
    | None -> ()
    | Some n ->
        let k = Tm.peek n.Tnode.key in
        if k = Tnode.poisoned_key then
          raise (Bad (Printf.sprintf "poisoned node %d linked" n.Tnode.id));
        if Tm.peek n.Tnode.deleted then
          raise (Bad (Printf.sprintf "deleted node %d linked" n.Tnode.id));
        if not (Mempool.is_live t.pool n) then
          raise (Bad (Printf.sprintf "freed node %d linked" n.Tnode.id));
        if not (k > lo && k < hi) then
          raise (Bad (Printf.sprintf "BST ordering violated at key %d" k));
        if Tm.peek n.Tnode.side <> expect_side then
          raise (Bad (Printf.sprintf "wrong side flag at key %d" k));
        go (Tm.peek n.Tnode.left) ~lo ~hi:k ~expect_side:true;
        go (Tm.peek n.Tnode.right) ~lo:k ~hi ~expect_side:false
  in
  match go (Tm.peek t.root.Tnode.left) ~lo:min_int ~hi:max_int ~expect_side:true with
  | () -> Ok ()
  | exception Bad msg -> Error msg

let pool_stats t = Mempool.stats t.pool
let pool_live t = Mempool.live t.pool
