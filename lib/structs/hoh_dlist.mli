(** The paper's Section 4.2 doubly linked list.

    Traversal is identical to the singly linked list; nodes additionally
    maintain [prev] pointers (set transactionally, so insertion/removal read
    like sequential code). The substantive difference is removal: because a
    node's neighbours are reachable from the node itself, a [Remove] that
    finds its target can {e reserve it and commit}, then unlink and revoke
    in a separate, smaller transaction. If that second transaction finds
    the reservation gone:

    - under a {e strict} reservation implementation (or TMHP, whose
      validity check is exact), only a concurrent removal of the same node
      can have invalidated it, so the operation returns [false]
      immediately;
    - under a {e relaxed} implementation the invalidation may be spurious,
      so the operation must retry from the beginning — exactly the paper's
      prescription. *)

type t

val create :
  mode:Mode.kind ->
  ?window:int ->
  ?scatter:bool ->
  ?adaptive:bool ->
  ?fusion:int ->
  ?middle:bool ->
  ?magazines:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?hp_threshold:int ->
  ?max_attempts:int ->
  ?split_unlink:bool ->
  unit ->
  t
(** [split_unlink] (default [true]) enables the separate unlink-and-revoke
    transaction; disabling it makes [remove] unlink inside the traversal's
    final transaction, as in the singly linked list — the ablation knob for
    the paper's claim that the split reduces conflicts. *)

val name : t -> string

val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool
val insert_s : t -> thread:int -> int -> bool * int

val remove_s : t -> thread:int -> int -> bool * int * int
(** [(result, earliest, stamp)]: normally [earliest = stamp] (the operation
    linearizes at its final commit), but a strict-mode fast-fail — the
    reservation was revoked between the reserving and unlinking
    transactions — linearizes anywhere in [(earliest, stamp]], immediately
    after the concurrent removal that revoked it (Sec. 4.2). *)

val lookup_s : t -> thread:int -> int -> bool * int

val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val to_list : t -> int list
val size : t -> int

val check : t -> (unit, string) result
(** Adds to the singly-linked invariants: [n.next.prev == n] and
    [n.prev.next == n] for every linked node. *)

val pool_stats : t -> Mempool.Stats.t

val pool_live : t -> int
(** O(1) live-slot count ([Mempool.live]) for backlog sampling. *)

val hazard_metrics : t -> Reclaim.Hazard.metrics option
