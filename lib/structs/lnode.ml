type t = {
  id : int;
  pstate : int Atomic.t;
  gen : int Atomic.t;
  key : int Tm.tvar;
  next : t option Tm.tvar;
  prev : t option Tm.tvar;
  deleted : bool Tm.tvar;
  rc : Reclaim.Rc.t;
}

let poisoned_key = min_int

let make id =
  {
    id;
    pstate = Atomic.make 0;
    gen = Atomic.make 0;
    key = Tm.tvar poisoned_key;
    next = Tm.tvar None;
    prev = Tm.tvar None;
    deleted = Tm.tvar false;
    rc = Reclaim.Rc.make 0;
  }

(* Version-bumping writes: a doomed transaction that read this node before
   it was freed can no longer pass commit-time validation. *)
let poison n =
  Tm.poke n.key poisoned_key;
  Tm.poke n.next None;
  Tm.poke n.prev None;
  Tm.poke n.deleted true

let tvar_ids n =
  [
    Tm.tvar_id n.key;
    Tm.tvar_id n.next;
    Tm.tvar_id n.prev;
    Tm.tvar_id n.deleted;
  ]

let make_pool ?strategy ?magazines () =
  Mempool.create ?strategy ?magazines ~make ~node_id:(fun n -> n.id)
    ~state:(fun n -> n.pstate)
    ~poison ~tvar_ids
    ~probe_ids:(fun n -> [ Tm.tvar_id n.deleted ])
    ()

let sentinel () = make (-1)

let hash n =
  let h = n.id * 0x9e3779b1 in
  h lxor (h lsr 16)

let equal a b = a == b

let alloc pool ~thread =
  let n = Mempool.alloc pool ~thread in
  Atomic.incr n.gen;
  (* Re-initialization pokes on a node no thread can reach yet: exempt from
     TxSan's non-transactional-access rule, like the poison pokes in free. *)
  San.exempt_begin ();
  Tm.poke n.deleted false;
  Tm.poke n.next None;
  Tm.poke n.prev None;
  San.exempt_end ();
  n
