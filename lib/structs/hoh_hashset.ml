module Window = Rr.Hoh.Window

type t = {
  mode : Lnode.t Mode.t;
  heads : Lnode.t array;
  window : Window.t;
  middle : Tm.Middle.t option;
  pool : Lnode.t Mempool.t;
  max_attempts : int option;
}

let create ~mode ?(buckets = 64) ?(window = 8) ?(scatter = true) ?adaptive
    ?fusion ?(middle = false) ?magazines ?strategy ?rr_config ?hp_threshold
    ?max_attempts () =
  if buckets < 1 then invalid_arg "Hoh_hashset.create: buckets < 1";
  let pool = Lnode.make_pool ?strategy ?magazines () in
  let mode =
    Mode.create mode ~pool
      ~deleted:(fun n -> n.Lnode.deleted)
      ~rc:(fun n -> n.Lnode.rc)
      ~gen:(fun n -> Atomic.get n.Lnode.gen)
      ~hash:Lnode.hash ~equal:Lnode.equal ?rr_config ?hp_threshold ()
  in
  {
    mode;
    heads = Array.init buckets (fun _ -> Lnode.sentinel ());
    window = Window.create ~scatter ?adaptive ?fusion window;
    middle = (if middle then Some (Tm.Middle.create ()) else None);
    pool;
    max_attempts;
  }

let name t = t.mode.Mode.name ^ "-hash"

let bucket_of t key =
  let h = key * 0x9e3779b1 in
  t.heads.((h lxor (h lsr 16)) land max_int mod Array.length t.heads)

(* The per-bucket Apply is Listing 5 verbatim, with the bucket's sentinel
   in place of the global list head. *)
let apply t ~thread ?(read_phase = false) key ~site ~on_found ~on_notfound =
  if key <= min_int + 1 then invalid_arg "Hoh_hashset: key out of range";
  let head = bucket_of t key in
  Rr.Hoh.apply_stamped ~rr:t.mode.Mode.ops ~site ?max_attempts:t.max_attempts
    ~read_phase
    ~window:(t.window, thread)
    ?middle:t.middle
    (fun txn ~start ->
      let prev, budget =
        match start with
        | Some n -> (n, Window.budget t.window ~thread)
        | None ->
            ( head,
              if t.mode.Mode.whole_op then max_int
              else Window.first_budget t.window ~thread )
      in
      match List_walk.walk txn ~key ~prev ~budget with
      | `Found (prev, curr) -> Rr.Hoh.Finish (on_found txn ~prev ~curr)
      | `Absent (prev, curr) -> Rr.Hoh.Finish (on_notfound txn ~prev ~curr)
      | `Window c -> Rr.Hoh.Hand_off c)

let lookup_s t ~thread key =
  apply t ~thread ~read_phase:t.mode.Mode.ro_hint key ~site:"hashset.lookup"
    ~on_found:(fun _ ~prev:_ ~curr:_ -> true)
    ~on_notfound:(fun _ ~prev:_ ~curr:_ -> false)

let insert_s t ~thread key =
  let spare = ref None in
  let result =
    apply t ~thread key ~site:"hashset.insert"
      ~on_found:(fun _ ~prev:_ ~curr:_ -> false)
      ~on_notfound:(fun txn ~prev ~curr ->
        let n =
          match !spare with
          | Some n -> n
          | None ->
              let n = Lnode.alloc t.pool ~thread in
              spare := Some n;
              n
        in
        Tm.write txn n.Lnode.key key;
        Tm.write txn n.Lnode.next curr;
        Tm.write txn prev.Lnode.next (Some n);
        Tm.defer txn (fun () -> spare := None);
        true)
  in
  Mode.give_back_spare t.pool ~thread spare;
  result

let remove_s t ~thread key =
  apply t ~thread key ~site:"hashset.remove"
    ~on_found:(fun txn ~prev ~curr ->
      Tm.write txn prev.Lnode.next (Tm.read txn curr.Lnode.next);
      t.mode.Mode.invalidate txn curr;
      t.mode.Mode.dispose txn curr;
      true)
    ~on_notfound:(fun _ ~prev:_ ~curr:_ -> false)

let insert t ~thread key = fst (insert_s t ~thread key)
let remove t ~thread key = fst (remove_s t ~thread key)
let lookup t ~thread key = fst (lookup_s t ~thread key)

let finalize_thread t ~thread =
  t.mode.Mode.finalize ~thread;
  Mempool.drain_magazines t.pool ~thread
let drain t = t.mode.Mode.drain ()

let fold_buckets t f acc =
  Array.fold_left
    (fun acc head ->
      let rec go acc = function
        | None -> acc
        | Some n -> go (f acc n) (Tm.peek n.Lnode.next)
      in
      go acc (Tm.peek head.Lnode.next))
    acc t.heads

let to_list t =
  List.sort compare (fold_buckets t (fun acc n -> Tm.peek n.Lnode.key :: acc) [])

let size t = fold_buckets t (fun acc _ -> acc + 1) 0

let check t =
  let exception Bad of string in
  try
    Array.iter
      (fun head ->
        let rec go prev_key = function
          | None -> ()
          | Some n ->
              let k = Tm.peek n.Lnode.key in
              if k = Lnode.poisoned_key then
                raise (Bad (Printf.sprintf "poisoned node %d linked" n.Lnode.id));
              if Tm.peek n.Lnode.deleted then
                raise (Bad (Printf.sprintf "deleted node %d linked" n.Lnode.id));
              if not (Mempool.is_live t.pool n) then
                raise (Bad (Printf.sprintf "freed node %d linked" n.Lnode.id));
              if k <= prev_key then
                raise (Bad (Printf.sprintf "bucket not sorted at %d" k));
              if bucket_of t k != head then
                raise (Bad (Printf.sprintf "key %d in the wrong bucket" k));
              go k (Tm.peek n.Lnode.next)
        in
        go min_int (Tm.peek head.Lnode.next))
      t.heads;
    Ok ()
  with Bad m -> Error m

let pool_stats t = Mempool.stats t.pool
let pool_live t = Mempool.live t.pool
let hazard_metrics t = t.mode.Mode.hazard_metrics ()
