(** External (leaf-oriented) unbalanced BST with hand-over-hand
    transactions (Figure 7's "RR-*" and "TMHP" trees).

    Keys live only in leaves; internal nodes are routers with exactly two
    children whose key equals the smallest key of their right subtree
    (routing rule: [key < node.key] goes left). Insertion replaces a leaf
    with a router over the old and new leaves; removal splices the leaf and
    its router out by redirecting the grandparent edge to the sibling.
    Values never move, so removals revoke exactly two references (leaf and
    router) — no path revocation, which is why all six reservation schemes
    behave better here than in the internal tree. *)

type t

val create :
  mode:Mode.kind ->
  ?window:int ->
  ?scatter:bool ->
  ?adaptive:bool ->
  ?fusion:int ->
  ?middle:bool ->
  ?magazines:bool ->
  ?strategy:Mempool.strategy ->
  ?rr_config:Rr.Config.t ->
  ?hp_threshold:int ->
  ?max_attempts:int ->
  unit ->
  t
(** Supports [Rr_kind], [Htm] and [Tmhp] modes.
    @raise Invalid_argument for [Ref]. *)

val name : t -> string

val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool
val insert_s : t -> thread:int -> int -> bool * int
val remove_s : t -> thread:int -> int -> bool * int
val lookup_s : t -> thread:int -> int -> bool * int

val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val to_list : t -> int list
val size : t -> int
val depth : t -> int
val check : t -> (unit, string) result
val pool_stats : t -> Mempool.Stats.t

val pool_live : t -> int
(** O(1) live-slot count ([Mempool.live]) for backlog sampling. *)

val hazard_metrics : t -> Reclaim.Hazard.metrics option
