module Window = Rr.Hoh.Window

type t = {
  mode : Lnode.t Mode.t;
  head : Lnode.t;
  window : Window.t;
  middle : Tm.Middle.t option;
  pool : Lnode.t Mempool.t;
  max_attempts : int option;
  split_unlink : bool;
}

let create ~mode ?(window = 8) ?(scatter = true) ?adaptive ?fusion
    ?(middle = false) ?magazines ?strategy ?rr_config ?hp_threshold
    ?max_attempts ?(split_unlink = true) () =
  let pool = Lnode.make_pool ?strategy ?magazines () in
  let mode =
    Mode.create mode ~pool
      ~deleted:(fun n -> n.Lnode.deleted)
      ~rc:(fun n -> n.Lnode.rc)
      ~gen:(fun n -> Atomic.get n.Lnode.gen)
      ~hash:Lnode.hash ~equal:Lnode.equal ?rr_config ?hp_threshold ()
  in
  {
    mode;
    head = Lnode.sentinel ();
    window = Window.create ~scatter ?adaptive ?fusion window;
    middle = (if middle then Some (Tm.Middle.create ()) else None);
    pool;
    max_attempts;
    split_unlink;
  }

let name t = t.mode.Mode.name

let start_point t ~thread ~start =
  match start with
  | Some n -> (n, Window.budget t.window ~thread)
  | None ->
      ( t.head,
        if t.mode.Mode.whole_op then max_int
        else Window.first_budget t.window ~thread )

let apply t ~thread ?(read_phase = false) key ~site ~on_found ~on_notfound =
  if key <= min_int + 1 then invalid_arg "Hoh_dlist: key out of range";
  Rr.Hoh.apply_stamped ~rr:t.mode.Mode.ops ~site ?max_attempts:t.max_attempts
    ~read_phase
    ~window:(t.window, thread)
    ?middle:t.middle
    (fun txn ~start ->
      let prev, budget = start_point t ~thread ~start in
      match List_walk.walk txn ~key ~prev ~budget with
      | `Found (prev, curr) -> on_found txn ~prev ~curr
      | `Absent (prev, curr) -> Rr.Hoh.Finish (on_notfound txn ~prev ~curr)
      | `Window c -> Rr.Hoh.Hand_off c)

let lookup_s t ~thread key =
  apply t ~thread ~read_phase:t.mode.Mode.ro_hint key ~site:"dlist.lookup"
    ~on_found:(fun _ ~prev:_ ~curr:_ -> Rr.Hoh.Finish true)
    ~on_notfound:(fun _ ~prev:_ ~curr:_ -> false)

let insert_s t ~thread key =
  let spare = ref None in
  let result =
    apply t ~thread key ~site:"dlist.insert"
      ~on_found:(fun _ ~prev:_ ~curr:_ -> Rr.Hoh.Finish false)
      ~on_notfound:(fun txn ~prev ~curr ->
        let n =
          match !spare with
          | Some n -> n
          | None ->
              let n = Lnode.alloc t.pool ~thread in
              spare := Some n;
              n
        in
        Tm.write txn n.Lnode.key key;
        Tm.write txn n.Lnode.prev (Some prev);
        Tm.write txn n.Lnode.next curr;
        Tm.write txn prev.Lnode.next (Some n);
        (match curr with
        | Some c -> Tm.write txn c.Lnode.prev (Some n)
        | None -> ());
        Tm.defer txn (fun () -> spare := None);
        true)
  in
  Mode.give_back_spare t.pool ~thread spare;
  result

(* Unlink [n] using its own prev/next pointers — the point of the doubly
   linked list: the traversal's (prev, curr) pair is not needed. *)
let unlink_and_reclaim t txn n =
  let p =
    match Tm.read txn n.Lnode.prev with
    | Some p -> p
    | None -> assert false (* linked nodes always have a predecessor *)
  in
  let nx = Tm.read txn n.Lnode.next in
  Tm.write txn p.Lnode.next nx;
  (match nx with
  | Some x -> Tm.write txn x.Lnode.prev (Some p)
  | None -> ());
  t.mode.Mode.invalidate txn n;
  t.mode.Mode.dispose txn n

type phase = Traversing | Unlink of Lnode.t

(* Returns (result, earliest, stamp). For most paths the operation is a
   point at [stamp]; the strict fast-fail path (reservation revoked between
   the reserving and unlinking transactions) linearizes "immediately after
   the concurrent Remove" (Sec. 4.2), somewhere in the open interval
   between the reserving commit [earliest] and the final commit [stamp] —
   the serialization checker accepts any absence of the key inside it. *)
let remove_s t ~thread key =
  if key <= min_int + 1 then invalid_arg "Hoh_dlist: key out of range";
  let split = t.split_unlink && not t.mode.Mode.whole_op in
  let phase = ref Traversing in
  let reserve_stamp = ref 0 in
  let flex = ref false in
  let result, stamp =
    Rr.Hoh.apply_stamped ~rr:t.mode.Mode.ops ~site:"dlist.remove"
      ?max_attempts:t.max_attempts
      ~window:(t.window, thread)
      ?middle:t.middle
      (fun txn ~start ->
        let traverse ~start =
          let prev, budget = start_point t ~thread ~start in
          match List_walk.walk txn ~key ~prev ~budget with
          | `Found (_, curr) ->
              if split then begin
                (* Reserve the target and commit; unlink in the next,
                   write-only transaction. *)
                Tm.defer txn (fun () ->
                    phase := Unlink curr;
                    reserve_stamp := Tm.commit_stamp txn);
                Rr.Hoh.Hand_off curr
              end
              else begin
                unlink_and_reclaim t txn curr;
                Rr.Hoh.Finish true
              end
          | `Absent (_, _) -> Rr.Hoh.Finish false
          | `Window c -> Rr.Hoh.Hand_off c
        in
        match !phase with
        | Traversing -> traverse ~start
        | Unlink n -> (
            match start with
            | Some s ->
                assert (Lnode.equal s n);
                unlink_and_reclaim t txn n;
                Rr.Hoh.Finish true
            | None ->
                if t.mode.Mode.strict then begin
                  (* Only a concurrent removal of this very node can revoke
                     a strict reservation: fail without re-traversing,
                     linearizing right after that removal. *)
                  Tm.defer txn (fun () -> flex := true);
                  Rr.Hoh.Finish false
                end
                else begin
                  (* Spurious invalidation is possible: retry the whole
                     operation (Sec. 4.2). *)
                  Tm.defer txn (fun () -> phase := Traversing);
                  traverse ~start:None
                end))
  in
  let earliest = if !flex then !reserve_stamp else stamp in
  (result, earliest, stamp)

let insert t ~thread key = fst (insert_s t ~thread key)

let remove t ~thread key =
  let r, _, _ = remove_s t ~thread key in
  r

let lookup t ~thread key = fst (lookup_s t ~thread key)

let finalize_thread t ~thread =
  t.mode.Mode.finalize ~thread;
  Mempool.drain_magazines t.pool ~thread
let drain t = t.mode.Mode.drain ()

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (Tm.peek n.Lnode.key :: acc) (Tm.peek n.Lnode.next)
  in
  go [] (Tm.peek t.head.Lnode.next)

let size t = List.length (to_list t)

let check t =
  let rec go prev node =
    match node with
    | None -> Ok ()
    | Some n ->
        let k = Tm.peek n.Lnode.key in
        if k = Lnode.poisoned_key then
          Error (Printf.sprintf "poisoned node %d linked" n.Lnode.id)
        else if Tm.peek n.Lnode.deleted then
          Error (Printf.sprintf "deleted node %d (key %d) linked" n.Lnode.id k)
        else if not (Mempool.is_live t.pool n) then
          Error (Printf.sprintf "freed node %d (key %d) linked" n.Lnode.id k)
        else if k <= Tm.peek prev.Lnode.key && prev != t.head then
          Error (Printf.sprintf "keys not strictly sorted at %d" k)
        else if
          not
            (match Tm.peek n.Lnode.prev with
            | Some p -> p == prev
            | None -> false)
        then Error (Printf.sprintf "bad prev pointer at key %d" k)
        else go n (Tm.peek n.Lnode.next)
  in
  go t.head (Tm.peek t.head.Lnode.next)

let pool_stats t = Mempool.stats t.pool
let pool_live t = Mempool.live t.pool
let hazard_metrics t = t.mode.Mode.hazard_metrics ()
