(** Skiplist nodes: a fixed-capacity tower of transactional forward
    pointers. [level] is the number of levels the node occupies (immutable
    while the node is linked); [deleted] is written by every removal — in
    all modes, not just TMHP — because the skiplist validates stale
    predecessor hints against it (see {!Hoh_skiplist}). *)

type t = {
  id : int;
  pstate : int Atomic.t;
  gen : int Atomic.t;
  key : int Tm.tvar;
  next : t option Tm.tvar array;  (** length {!max_level} *)
  level : int Tm.tvar;  (** levels in use, 1..{!max_level} *)
  deleted : bool Tm.tvar;
  rc : Reclaim.Rc.t;
}

val max_level : int
(** Tower capacity (16): comfortable for millions of keys. *)

val poisoned_key : int
val make_pool :
  ?strategy:Mempool.strategy -> ?magazines:bool -> unit -> t Mempool.t
val sentinel : unit -> t
val hash : t -> int
val equal : t -> t -> bool
val alloc : t Mempool.t -> thread:int -> t
