(** Tree nodes shared by the internal and external unbalanced BSTs.

    As with {!Lnode}, all mutable content is transactional, the pool id is
    the node's simulated address, and freed nodes are poisoned with
    version-bumping writes. [side] records whether the node is currently
    the left child of its parent — the paper's internal tree stores this
    instead of parent pointers, so a removal can splice a node knowing only
    (parent, node). *)

type t = {
  id : int;
  pstate : int Atomic.t;
  gen : int Atomic.t;  (** allocation generation (ABA detection) *)
  key : int Tm.tvar;  (** mutable: internal-tree removal swaps values *)
  left : t option Tm.tvar;
  right : t option Tm.tvar;
  side : bool Tm.tvar;  (** [true] = left child of its parent *)
  deleted : bool Tm.tvar;
  rc : Reclaim.Rc.t;
}

val poisoned_key : int
val make_pool :
  ?strategy:Mempool.strategy -> ?magazines:bool -> unit -> t Mempool.t
val sentinel : key:int -> t
val hash : t -> int
val equal : t -> t -> bool

val alloc : t Mempool.t -> thread:int -> t
(** Allocate and reset ([deleted = false], children severed). *)
