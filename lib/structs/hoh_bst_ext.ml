module Window = Rr.Hoh.Window

type t = {
  mode : Tnode.t Mode.t;
  root : Tnode.t;  (** sentinel router, key = [max_int]; tree on its left *)
  window : Window.t;
  middle : Tm.Middle.t option;
  pool : Tnode.t Mempool.t;
  max_attempts : int option;
}

let create ~mode ?(window = 16) ?(scatter = true) ?adaptive ?fusion
    ?(middle = false) ?magazines ?strategy ?rr_config ?hp_threshold
    ?(max_attempts = 8) () =
  (match mode with
  | Mode.Ref -> invalid_arg "Hoh_bst_ext: Ref mode is not supported"
  | Mode.Rr_kind _ | Mode.Htm | Mode.Tmhp | Mode.Ebr -> ());
  let pool = Tnode.make_pool ?strategy ?magazines () in
  let mode =
    Mode.create mode ~pool
      ~deleted:(fun n -> n.Tnode.deleted)
      ~rc:(fun n -> n.Tnode.rc)
      ~gen:(fun n -> Atomic.get n.Tnode.gen)
      ~hash:Tnode.hash ~equal:Tnode.equal ?rr_config ?hp_threshold ()
  in
  {
    mode;
    root = Tnode.sentinel ~key:max_int;
    window = Window.create ~scatter ?adaptive ?fusion window;
    middle = (if middle then Some (Tm.Middle.create ()) else None);
    pool;
    max_attempts = Some max_attempts;
  }

let name t = t.mode.Mode.name

let is_leaf txn n = Tm.read txn n.Tnode.left = None

(* Windowed descent to a leaf, tracking parent and grandparent. Hands off
   the last examined router; [`Leaf (gp, p, leaf)] may surface [gp = None]
   when the leaf was reached within two steps of the resume point. *)
let descend txn ~key ~start ~budget =
  let rec go gp p curr i =
    if is_leaf txn curr then `Leaf (gp, p, curr)
    else
      let k = Tm.read txn curr.Tnode.key in
      let childv = if key < k then curr.Tnode.left else curr.Tnode.right in
      match Tm.read txn childv with
      | None -> `Leaf (gp, p, curr) (* only the empty root lacks children *)
      | Some c ->
          if i >= budget then `Window curr else go p (Some curr) c (i + 1)
  in
  go None None start 1

let start_point t ~thread ~start =
  match start with
  | Some n -> (n, Window.budget t.window ~thread)
  | None ->
      ( t.root,
        if t.mode.Mode.whole_op then max_int
        else Window.first_budget t.window ~thread )

(* [on_leaf txn ~gp ~p ~leaf] with [p]/[gp] as available; [p = None] only
   when the tree is empty ([leaf] is then the root sentinel). *)
let apply t ~thread ?(read_phase = false) key ~site ~on_leaf =
  if key <= min_int + 1 || key >= max_int - 1 then
    invalid_arg "Hoh_bst_ext: key out of range";
  Rr.Hoh.apply_stamped ~rr:t.mode.Mode.ops ~site ?max_attempts:t.max_attempts
    ~read_phase
    ~window:(t.window, thread)
    ?middle:t.middle
    (fun txn ~start ->
      let start, budget = start_point t ~thread ~start in
      match descend txn ~key ~start ~budget with
      | `Leaf (gp, p, leaf) -> on_leaf txn ~gp ~p ~leaf
      | `Window c -> Rr.Hoh.Hand_off c)

let lookup_s t ~thread key =
  apply t ~thread ~read_phase:t.mode.Mode.ro_hint key ~site:"bst_ext.lookup"
    ~on_leaf:(fun txn ~gp:_ ~p:_ ~leaf ->
      Rr.Hoh.Finish
        (Tnode.equal leaf t.root = false && Tm.read txn leaf.Tnode.key = key))

let insert_s t ~thread key =
  (* Two spares: the new leaf and its router. *)
  let spare_leaf = ref None and spare_router = ref None in
  let take spare =
    match !spare with
    | Some n -> n
    | None ->
        let n = Tnode.alloc t.pool ~thread in
        spare := Some n;
        n
  in
  let result =
    apply t ~thread key ~site:"bst_ext.insert" ~on_leaf:(fun txn ~gp:_ ~p ~leaf ->
        if Tnode.equal leaf t.root then begin
          (* Empty tree: hang the first leaf off the sentinel. *)
          let nl = take spare_leaf in
          Tm.write txn nl.Tnode.key key;
          Tm.write txn t.root.Tnode.left (Some nl);
          Tm.defer txn (fun () -> spare_leaf := None);
          Rr.Hoh.Finish true
        end
        else
          let lk = Tm.read txn leaf.Tnode.key in
          if lk = key then Rr.Hoh.Finish false
          else begin
            let p = Option.get p in
            let nl = take spare_leaf and router = take spare_router in
            Tm.write txn nl.Tnode.key key;
            let lo, hi = if key < lk then (nl, leaf) else (leaf, nl) in
            Tm.write txn router.Tnode.key (Tm.read txn hi.Tnode.key);
            Tm.write txn router.Tnode.left (Some lo);
            Tm.write txn router.Tnode.right (Some hi);
            let pk = Tm.read txn p.Tnode.key in
            Tm.write txn
              (if key < pk then p.Tnode.left else p.Tnode.right)
              (Some router);
            Tm.defer txn (fun () ->
                spare_leaf := None;
                spare_router := None);
            Rr.Hoh.Finish true
          end)
  in
  Mode.give_back_spare t.pool ~thread spare_leaf;
  Mode.give_back_spare t.pool ~thread spare_router;
  result

let remove_s t ~thread key =
  apply t ~thread key ~site:"bst_ext.remove" ~on_leaf:(fun txn ~gp ~p ~leaf ->
      if Tnode.equal leaf t.root then Rr.Hoh.Finish false
      else if Tm.read txn leaf.Tnode.key <> key then Rr.Hoh.Finish false
      else
        match p with
        | None -> Rr.Hoh.Finish false (* unreachable: leaf has a parent *)
        | Some p when Tnode.equal p t.root ->
            (* Single-leaf tree: detach the leaf from the sentinel. *)
            Tm.write txn t.root.Tnode.left None;
            t.mode.Mode.invalidate txn leaf;
            t.mode.Mode.dispose txn leaf;
            Rr.Hoh.Finish true
        | Some p ->
            let gp =
              match gp with
              | Some gp -> gp
              | None ->
                  (* The resume point was too close to the leaf: recover the
                     grandparent with a full descent in this transaction. *)
                  let rec from_root gp node =
                    if Tnode.equal node p then Option.get gp
                    else
                      let k = Tm.read txn node.Tnode.key in
                      let child =
                        if key < k then node.Tnode.left else node.Tnode.right
                      in
                      from_root (Some node) (Option.get (Tm.read txn child))
                  in
                  from_root None t.root
            in
            let sibling =
              match Tm.read txn p.Tnode.left with
              | Some l when Tnode.equal l leaf -> Tm.read txn p.Tnode.right
              | _ -> Tm.read txn p.Tnode.left
            in
            (match Tm.read txn gp.Tnode.left with
            | Some l when Tnode.equal l p -> Tm.write txn gp.Tnode.left sibling
            | _ -> Tm.write txn gp.Tnode.right sibling);
            t.mode.Mode.invalidate txn p;
            t.mode.Mode.invalidate txn leaf;
            t.mode.Mode.dispose txn p;
            t.mode.Mode.dispose txn leaf;
            Rr.Hoh.Finish true)

let insert t ~thread key = fst (insert_s t ~thread key)
let remove t ~thread key = fst (remove_s t ~thread key)
let lookup t ~thread key = fst (lookup_s t ~thread key)

let finalize_thread t ~thread =
  t.mode.Mode.finalize ~thread;
  Mempool.drain_magazines t.pool ~thread
let drain t = t.mode.Mode.drain ()

let rec fold_leaves acc node f =
  match node with
  | None -> acc
  | Some n -> (
      match Tm.peek n.Tnode.left with
      | None -> f acc n
      | Some _ as l ->
          let acc = fold_leaves acc l f in
          fold_leaves acc (Tm.peek n.Tnode.right) f)

let to_list t =
  List.rev
    (fold_leaves [] (Tm.peek t.root.Tnode.left) (fun acc n ->
         Tm.peek n.Tnode.key :: acc))

let size t = fold_leaves 0 (Tm.peek t.root.Tnode.left) (fun acc _ -> acc + 1)

let depth t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + max (go (Tm.peek n.Tnode.left)) (go (Tm.peek n.Tnode.right))
  in
  go (Tm.peek t.root.Tnode.left)

let check t =
  let exception Bad of string in
  let node_ok n =
    if Tm.peek n.Tnode.key = Tnode.poisoned_key then
      raise (Bad (Printf.sprintf "poisoned node %d linked" n.Tnode.id));
    if Tm.peek n.Tnode.deleted then
      raise (Bad (Printf.sprintf "deleted node %d linked" n.Tnode.id));
    if not (Mempool.is_live t.pool n) then
      raise (Bad (Printf.sprintf "freed node %d linked" n.Tnode.id))
  in
  (* Routers have exactly two children. Routing correctness is a bounds
     invariant: a router with key [k] keeps its left subtree in [lo, k) and
     its right subtree in [k, hi); router keys may go stale after removals
     (they need not equal any present key), but bounds must hold so
     descents stay deterministic. *)
  let rec go node ~lo ~hi =
    node_ok node;
    let k = Tm.peek node.Tnode.key in
    match (Tm.peek node.Tnode.left, Tm.peek node.Tnode.right) with
    | None, None ->
        if not (k >= lo && k < hi) then
          raise (Bad (Printf.sprintf "leaf %d out of bounds" k))
    | Some l, Some r ->
        if not (k > lo && k < hi) then
          raise (Bad (Printf.sprintf "router %d out of bounds" k));
        go l ~lo ~hi:k;
        go r ~lo:k ~hi
    | _ -> raise (Bad (Printf.sprintf "router %d with one child" node.Tnode.id))
  in
  match Tm.peek t.root.Tnode.left with
  | None -> Ok ()
  | Some n -> (
      match go n ~lo:min_int ~hi:max_int with
      | () -> Ok ()
      | exception Bad m -> Error m)

let pool_stats t = Mempool.stats t.pool
let pool_live t = Mempool.live t.pool
let hazard_metrics t = t.mode.Mode.hazard_metrics ()
