type node = {
  id : int;
  pstate : int Atomic.t;
  mutable key : int;  (** written before publication, constant while linked *)
  next : link Atomic.t;
}

and link = { marked : bool; tail : node option }

let unmarked tail = { marked = false; tail }

let make id =
  { id; pstate = Atomic.make 0; key = min_int; next = Atomic.make (unmarked None) }

let poison n =
  n.key <- min_int;
  Atomic.set n.next { marked = true; tail = None }

type t = {
  head : node;
  pool : node Mempool.t;
  hazard : node Reclaim.Hazard.t option;
  leaked : int Atomic.t;  (** nodes unlinked but never reclaimed (`Leak) *)
}

let create ?(reclaim = `Leak) ?(hp_threshold = 64) ?strategy () =
  let pool =
    Mempool.create ?strategy ~make ~node_id:(fun n -> n.id)
      ~state:(fun n -> n.pstate)
      ~poison ()
  in
  let hazard =
    match reclaim with
    | `Leak -> None
    | `Hp ->
        Some
          (Reclaim.Hazard.create ~slots_per_thread:3 ~scan_threshold:hp_threshold
             ~free:(fun ~thread n -> Mempool.free pool ~thread n)
             ~node_id:(fun n -> n.id)
             ())
  in
  { head = make (-1); pool; hazard; leaked = Atomic.make 0 }

let name t = match t.hazard with None -> "LFLeak" | Some _ -> "LFHP"

let protect t ~thread slot n =
  match t.hazard with
  | None -> ()
  | Some h -> Reclaim.Hazard.protect h ~thread ~slot n

let clear_hazards t ~thread =
  match t.hazard with
  | None -> ()
  | Some h -> Reclaim.Hazard.clear_all h ~thread

let retire t ~thread n =
  match t.hazard with
  | None -> Atomic.incr t.leaked
  | Some h -> Reclaim.Hazard.retire h ~thread n

exception Restart

(* Michael's find: returns (prev, plink, curr) with [prev.next == plink],
   [plink = {false; Some curr}] (or tail), and [curr.key >= key]; unlinks
   marked nodes along the way. Hazard slots: 0 protects curr, 2 protects
   prev. *)
let find t ~thread key =
  let rec from_head () =
    match walk t.head (Atomic.get t.head.next) with
    | r -> r
    | exception Restart -> from_head ()
  and walk prev plink =
    match plink.tail with
    | None -> (prev, plink, None)
    | Some curr ->
        protect t ~thread 0 curr;
        if Atomic.get prev.next != plink then raise Restart;
        let clink = Atomic.get curr.next in
        if clink.marked then begin
          (* Help: physically unlink the logically deleted [curr]. *)
          let next = unmarked clink.tail in
          if Atomic.compare_and_set prev.next plink next then begin
            retire t ~thread curr;
            walk prev next
          end
          else raise Restart
        end
        else if curr.key >= key then (prev, plink, Some curr)
        else begin
          protect t ~thread 2 curr;
          walk curr clink
        end
  in
  from_head ()

let lookup t ~thread key =
  let _, _, curr = find t ~thread key in
  let r = match curr with Some c -> c.key = key | None -> false in
  clear_hazards t ~thread;
  r

let insert t ~thread key =
  if key <= min_int + 1 then invalid_arg "Harris_list: key out of range";
  let n = Mempool.alloc t.pool ~thread in
  n.key <- key;
  let rec loop () =
    let prev, plink, curr = find t ~thread key in
    match curr with
    | Some c when c.key = key ->
        Mempool.free t.pool ~thread n;
        false
    | _ ->
        Atomic.set n.next (unmarked curr);
        if Atomic.compare_and_set prev.next plink (unmarked (Some n)) then true
        else loop ()
  in
  let r = loop () in
  clear_hazards t ~thread;
  r

let remove t ~thread key =
  let rec loop () =
    let prev, plink, curr = find t ~thread key in
    match curr with
    | Some c when c.key = key ->
        let clink = Atomic.get c.next in
        if clink.marked then loop ()
        else if
          Atomic.compare_and_set c.next clink
            { marked = true; tail = clink.tail }
        then begin
          (* Try to unlink; on failure the next traversal helps. *)
          if Atomic.compare_and_set prev.next plink (unmarked clink.tail) then
            retire t ~thread c
          else ignore (find t ~thread key);
          true
        end
        else loop ()
    | _ -> false
  in
  let r = loop () in
  clear_hazards t ~thread;
  r

let finalize_thread t ~thread =
  clear_hazards t ~thread;
  match t.hazard with
  | None -> ()
  | Some h -> Reclaim.Hazard.scan h ~thread

let drain t =
  match t.hazard with None -> () | Some h -> Reclaim.Hazard.drain h

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.key :: acc) (Atomic.get n.next).tail
  in
  go [] (Atomic.get t.head.next).tail

let size t = List.length (to_list t)

let check t =
  let rec go prev_key = function
    | None -> Ok ()
    | Some n ->
        if (Atomic.get n.next).marked then
          Error (Printf.sprintf "marked node %d still linked" n.id)
        else if n.key = min_int then
          Error (Printf.sprintf "poisoned node %d linked" n.id)
        else if not (Mempool.is_live t.pool n) then
          Error (Printf.sprintf "freed node %d linked" n.id)
        else if n.key <= prev_key then
          Error (Printf.sprintf "keys not sorted at %d" n.key)
        else go n.key (Atomic.get n.next).tail
  in
  go min_int (Atomic.get t.head.next).tail

let pool_stats t = Mempool.stats t.pool
let pool_live t = Mempool.live t.pool

let hazard_metrics t =
  match t.hazard with None -> None | Some h -> Some (Reclaim.Hazard.metrics h)
