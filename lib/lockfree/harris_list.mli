(** Lock-free sorted linked list (Harris 2001 / Michael 2002), the paper's
    non-transactional list baseline.

    Logical deletion marks the victim's [next] pointer; traversals help
    physically unlink marked nodes. Two reclamation policies match the
    paper's two curves:

    - [`Leak]: removed nodes are never reclaimed ("LFLeak"), approximating
      the best case of an epoch scheme or garbage collector;
    - [`Hp]: unlinked nodes are retired through hazard pointers ("LFHP"),
      with the paper's best-performing scan threshold of 64.

    Mark-and-pointer words are immutable records in [Atomic.t] cells; CAS
    on them is ABA-free under OCaml's GC because a cell is never recycled
    while referenced. *)

type t

val create :
  ?reclaim:[ `Leak | `Hp ] ->
  ?hp_threshold:int ->
  ?strategy:Mempool.strategy ->
  unit ->
  t
(** [reclaim] defaults to [`Leak]. *)

val name : t -> string
val insert : t -> thread:int -> int -> bool
val remove : t -> thread:int -> int -> bool
val lookup : t -> thread:int -> int -> bool
val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val to_list : t -> int list
val size : t -> int

val check : t -> (unit, string) result
(** Quiescent: strictly sorted, no marked node linked, linked nodes live. *)

val pool_stats : t -> Mempool.Stats.t

val pool_live : t -> int
(** O(1) live-slot count ([Mempool.live]) for backlog sampling. *)

val hazard_metrics : t -> Reclaim.Hazard.metrics option
