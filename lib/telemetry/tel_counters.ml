type t = {
  mutable started : int;
  mutable commits : int;
  mutable aborts_read : int;
  mutable aborts_lock : int;
  mutable aborts_serial : int;
  mutable aborts_user : int;
  mutable fallbacks_middle : int;
  mutable fallbacks_serial : int;
  mutable extensions : int;
  mutable ext_fails : int;
}

let create () =
  {
    started = 0;
    commits = 0;
    aborts_read = 0;
    aborts_lock = 0;
    aborts_serial = 0;
    aborts_user = 0;
    fallbacks_middle = 0;
    fallbacks_serial = 0;
    extensions = 0;
    ext_fails = 0;
  }

let reset t =
  t.started <- 0;
  t.commits <- 0;
  t.aborts_read <- 0;
  t.aborts_lock <- 0;
  t.aborts_serial <- 0;
  t.aborts_user <- 0;
  t.fallbacks_middle <- 0;
  t.fallbacks_serial <- 0;
  t.extensions <- 0;
  t.ext_fails <- 0

let incr_started t = t.started <- t.started + 1
let incr_commits t = t.commits <- t.commits + 1
let incr_aborts_read t = t.aborts_read <- t.aborts_read + 1
let incr_aborts_lock t = t.aborts_lock <- t.aborts_lock + 1
let incr_aborts_serial t = t.aborts_serial <- t.aborts_serial + 1
let incr_aborts_user t = t.aborts_user <- t.aborts_user + 1
let incr_fallbacks_middle t = t.fallbacks_middle <- t.fallbacks_middle + 1
let incr_fallbacks_serial t = t.fallbacks_serial <- t.fallbacks_serial + 1
let incr_extensions t = t.extensions <- t.extensions + 1
let incr_ext_fails t = t.ext_fails <- t.ext_fails + 1

let started t = t.started
let commits t = t.commits
let aborts_read t = t.aborts_read
let aborts_lock t = t.aborts_lock
let aborts_serial t = t.aborts_serial
let aborts_user t = t.aborts_user
let fallbacks_middle t = t.fallbacks_middle
let fallbacks_serial t = t.fallbacks_serial
let fallbacks t = t.fallbacks_middle + t.fallbacks_serial
let extensions t = t.extensions
let ext_fails t = t.ext_fails

let add acc x =
  acc.started <- acc.started + x.started;
  acc.commits <- acc.commits + x.commits;
  acc.aborts_read <- acc.aborts_read + x.aborts_read;
  acc.aborts_lock <- acc.aborts_lock + x.aborts_lock;
  acc.aborts_serial <- acc.aborts_serial + x.aborts_serial;
  acc.aborts_user <- acc.aborts_user + x.aborts_user;
  acc.fallbacks_middle <- acc.fallbacks_middle + x.fallbacks_middle;
  acc.fallbacks_serial <- acc.fallbacks_serial + x.fallbacks_serial;
  acc.extensions <- acc.extensions + x.extensions;
  acc.ext_fails <- acc.ext_fails + x.ext_fails

let total_aborts t =
  t.aborts_read + t.aborts_lock + t.aborts_serial + t.aborts_user

let copy t =
  let c = create () in
  add c t;
  c

let to_json t =
  Tel_json.Obj
    [
      ("started", Tel_json.Int t.started);
      ("commits", Tel_json.Int t.commits);
      ("aborts_read", Tel_json.Int t.aborts_read);
      ("aborts_lock", Tel_json.Int t.aborts_lock);
      ("aborts_serial", Tel_json.Int t.aborts_serial);
      ("aborts_user", Tel_json.Int t.aborts_user);
      ("fallbacks", Tel_json.Int (fallbacks t));
      ("fallbacks_middle", Tel_json.Int t.fallbacks_middle);
      ("fallbacks_serial", Tel_json.Int t.fallbacks_serial);
      ("extensions", Tel_json.Int t.extensions);
      ("ext_fails", Tel_json.Int t.ext_fails);
    ]

let pp ppf t =
  Format.fprintf ppf
    "started=%d commits=%d aborts(read=%d lock=%d serial=%d user=%d) \
     fallbacks(middle=%d serial=%d) extensions=%d ext_fails=%d"
    t.started t.commits t.aborts_read t.aborts_lock t.aborts_serial
    t.aborts_user t.fallbacks_middle t.fallbacks_serial t.extensions
    t.ext_fails
