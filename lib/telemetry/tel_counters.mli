(** Per-thread transaction event counters — the counter backend of the
    telemetry layer (re-exported by the TM as [Tm.Stats]).

    The type is abstract: callers go through the [incr_*] bumpers and the
    named accessors, so the representation can change (padding, sharding)
    without touching call sites. Each counter record is written by exactly
    one thread and only read by others after that thread has quiesced, so
    no synchronization is needed on the hot path. *)

type t

val create : unit -> t
val reset : t -> unit

val incr_started : t -> unit
(** A transaction attempt began. *)

val incr_commits : t -> unit
(** An attempt committed. *)

val incr_aborts_read : t -> unit
(** Read-validation failure (opacity). *)

val incr_aborts_lock : t -> unit
(** Lock-busy at read or commit time. *)

val incr_aborts_serial : t -> unit
(** Backed off for a serial transaction. *)

val incr_aborts_user : t -> unit
(** Explicit user retry. *)

val incr_fallbacks_middle : t -> unit
(** An operation escalated to the middle path (per-structure lock). *)

val incr_fallbacks_serial : t -> unit
(** An operation escalated to global serial mode (the final rung). *)

val incr_extensions : t -> unit
(** A stale read was rescued by a successful timestamp extension. *)

val incr_ext_fails : t -> unit
(** A timestamp extension was attempted but revalidation failed (the
    attempt then aborts with a read-validation failure). *)

val started : t -> int
val commits : t -> int
val aborts_read : t -> int
val aborts_lock : t -> int
val aborts_serial : t -> int
val aborts_user : t -> int
val fallbacks_middle : t -> int
val fallbacks_serial : t -> int

val fallbacks : t -> int
(** Total escalations above the fast path: [fallbacks_middle] plus
    [fallbacks_serial]. *)

val extensions : t -> int
val ext_fails : t -> int

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc]. *)

val total_aborts : t -> int
val copy : t -> t
val to_json : t -> Tel_json.t
val pp : Format.formatter -> t -> unit
