let schema = "hohtx-telemetry/1"

type t = {
  label : string;
  counters : Tel_counters.t option;
  attempts : Tel_hist.t;
  ops : Tel_hist.t;
  serial : Tel_hist.t;
  attribution : Tel_attr.t;
  gauges : Tel_gauges.sample list;
}

let snapshot ?(label = "") ?counters () =
  let attempts = Tel_hist.create ()
  and ops = Tel_hist.create ()
  and serial = Tel_hist.create ()
  and attribution = Tel_attr.create () in
  Tel_state.iter_slots (fun s ->
      Tel_hist.merge ~into:attempts s.Tel_state.attempts;
      Tel_hist.merge ~into:ops s.Tel_state.ops;
      Tel_hist.merge ~into:serial s.Tel_state.serial;
      Tel_attr.merge ~into:attribution s.Tel_state.attr);
  {
    label;
    counters;
    attempts;
    ops;
    serial;
    attribution;
    gauges = Tel_gauges.sample ();
  }

let to_json t =
  Tel_json.Obj
    [
      ("schema", Tel_json.String schema);
      ("label", Tel_json.String t.label);
      ( "tm",
        match t.counters with
        | Some c -> Tel_counters.to_json c
        | None -> Tel_json.Null );
      ( "latency_ns",
        Tel_json.Obj
          [
            ("attempt", Tel_hist.to_json t.attempts);
            ("op", Tel_hist.to_json t.ops);
            ("serial_fallback", Tel_hist.to_json t.serial);
          ] );
      ("aborts", Tel_attr.to_json t.attribution);
      ("gauges", Tel_gauges.to_json t.gauges);
    ]

(* Schema validation for smoke tests: the report must carry the current
   schema tag and every top-level section with the right shape. *)
let validate json =
  let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v in
  let need name = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing field %S" name)
  in
  let hist_ok name j =
    let* h =
      match j with
      | Tel_json.Obj _ -> Ok j
      | _ -> Error (Printf.sprintf "%s: not an object" name)
    in
    let int_field f =
      let* v = need (name ^ "." ^ f) (Tel_json.member f h) in
      match Tel_json.to_int v with
      | Some _ -> Ok ()
      | None -> Error (Printf.sprintf "%s.%s: not an int" name f)
    in
    let* () = int_field "count" in
    let* () = int_field "sum" in
    let* () = int_field "p50" in
    let* () = int_field "p99" in
    let* b = need (name ^ ".buckets") (Tel_json.member "buckets" h) in
    match Tel_json.to_list b with
    | Some _ -> Ok ()
    | None -> Error (name ^ ".buckets: not a list")
  in
  let* s = need "schema" (Tel_json.member "schema" json) in
  let* () =
    if s = Tel_json.String schema then Ok ()
    else Error "schema: unknown version tag"
  in
  let* lat = need "latency_ns" (Tel_json.member "latency_ns" json) in
  let* a = need "latency_ns.attempt" (Tel_json.member "attempt" lat) in
  let* () = hist_ok "attempt" a in
  let* o = need "latency_ns.op" (Tel_json.member "op" lat) in
  let* () = hist_ok "op" o in
  let* f = need "latency_ns.serial_fallback" (Tel_json.member "serial_fallback" lat) in
  let* () = hist_ok "serial_fallback" f in
  let* aborts = need "aborts" (Tel_json.member "aborts" json) in
  let* entries =
    match Tel_json.to_list aborts with
    | Some l -> Ok l
    | None -> Error "aborts: not a list"
  in
  let* () =
    List.fold_left
      (fun acc e ->
        let* () = acc in
        let* _ = need "aborts[].site" (Tel_json.member "site" e) in
        let* _ = need "aborts[].cause" (Tel_json.member "cause" e) in
        let* c = need "aborts[].count" (Tel_json.member "count" e) in
        let* _ = need "aborts[].tvars" (Tel_json.member "tvars" e) in
        match Tel_json.to_int c with
        | Some _ -> Ok ()
        | None -> Error "aborts[].count: not an int")
      (Ok ()) entries
  in
  let* gauges = need "gauges" (Tel_json.member "gauges" json) in
  let* samples =
    match Tel_json.to_list gauges with
    | Some l -> Ok l
    | None -> Error "gauges: not a list"
  in
  List.fold_left
    (fun acc g ->
      let* () = acc in
      let* _ = need "gauges[].group" (Tel_json.member "group" g) in
      let* _ = need "gauges[].name" (Tel_json.member "name" g) in
      let* v = need "gauges[].values" (Tel_json.member "values" g) in
      match v with
      | Tel_json.Obj _ -> Ok ()
      | _ -> Error "gauges[].values: not an object")
    (Ok ()) samples

let pp_hist_row ppf name h =
  Format.fprintf ppf "  %-18s %a@." name Tel_hist.pp h

let pp ppf t =
  Format.fprintf ppf "== telemetry report%s ==@."
    (if t.label = "" then "" else " [" ^ t.label ^ "]");
  (match t.counters with
  | Some c -> Format.fprintf ppf "tm: %a@." Tel_counters.pp c
  | None -> ());
  Format.fprintf ppf "latency (ns):@.";
  pp_hist_row ppf "attempt" t.attempts;
  pp_hist_row ppf "op" t.ops;
  pp_hist_row ppf "serial fallback" t.serial;
  Format.fprintf ppf "abort attribution (site, cause, count, top tvars):@.";
  Tel_attr.pp ppf t.attribution;
  Format.fprintf ppf "gauges:@.";
  Tel_gauges.pp ppf t.gauges
