(** Transaction telemetry: abort attribution, latency histograms, gauges,
    and machine-readable reports.

    The paper's evaluation explains throughput differences by {e where}
    retries and time go — abort causes, fallback frequency, reclamation
    backlog — not by end throughput alone. This subsystem makes those
    quantities observable across the whole stack:

    - the TM records per-thread, allocation-free latency histograms for
      attempts, committed operations and serial fallbacks, and attributes
      each abort to a (site, cause, tvar) triple;
    - pools, reservation instances and reclaimers register {!Gauges}
      providers when telemetry is enabled;
    - {!Report.snapshot} aggregates everything after quiescence and
      renders a human table or JSON ([hohtx-telemetry/1]).

    The master switch is {b off by default}: with telemetry disabled the
    instrumented hot path costs one atomic load per [Tm.atomic] call, and
    components register nothing. Enable it {e before} constructing the
    structures you want gauges for. *)

module Json = Tel_json
module Histogram = Tel_hist
module Counters = Tel_counters
module Attribution = Tel_attr
module Gauges = Tel_gauges
module Report = Tel_report

val enabled : unit -> bool
val set_enabled : bool -> unit

val max_threads : int
(** Capacity of the per-thread slot table; the TM's thread-id space must
    fit in it. *)

(** The per-thread recording surface the TM writes into. *)
type slot = Tel_state.slot = {
  attempts : Tel_hist.t;  (** latency of every speculative attempt *)
  ops : Tel_hist.t;  (** whole committed operation, retries included *)
  serial : Tel_hist.t;  (** serial-fallback executions *)
  attr : Tel_attr.t;  (** abort attribution *)
}

val slot : int -> slot
(** The slot for a TM thread id, created on first use. Only the owning
    thread may write through it. *)

val reset_slots : unit -> unit
(** Start a fresh measurement window. Call while workers are quiescent. *)

val now_ns : unit -> int
(** Wall-clock nanoseconds (microsecond-granular underneath). *)
