(* Registry of gauge providers. A component (memory pool, reservation
   instance, reclaimer) registers a named closure at construction time;
   {!sample} evaluates all of them at report time. Registration and
   sampling are rare and mutex-protected; the providers themselves read
   atomics owned by the component, so sampling is safe after quiescence
   (and approximate, but race-free, before it). *)

type sample = {
  group : string;
  name : string;
  values : (string * float) list;
}

type provider = {
  p_group : string;
  p_name : string;
  read : unit -> (string * float) list;
}

let mutex = Mutex.create ()
let providers : provider list ref = ref []

let with_lock f =
  Mutex.lock mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock mutex) f

let register ~group ~name read =
  with_lock (fun () ->
      (* Disambiguate repeated registrations of the same component kind
         (one pool per structure instance, say) with an ordinal suffix. *)
      let same p =
        p.p_group = group
        && (p.p_name = name
           ||
           let l = String.length name in
           String.length p.p_name > l + 1
           && String.sub p.p_name 0 (l + 1) = name ^ "#")
      in
      let dups = List.length (List.filter same !providers) in
      let name = if dups = 0 then name else Printf.sprintf "%s#%d" name dups in
      providers := { p_group = group; p_name = name; read } :: !providers)

let clear () = with_lock (fun () -> providers := [])

(* Exact-name match only (no [#n] suffixes): singleton components use this
   to re-register after a [clear] without duplicating themselves within a
   window. *)
let registered ~group ~name =
  with_lock (fun () ->
      List.exists (fun p -> p.p_group = group && p.p_name = name) !providers)

let sample () =
  let ps = with_lock (fun () -> List.rev !providers) in
  List.map (fun p -> { group = p.p_group; name = p.p_name; values = p.read () }) ps

let to_json samples =
  Tel_json.List
    (List.map
       (fun s ->
         Tel_json.Obj
           [
             ("group", Tel_json.String s.group);
             ("name", Tel_json.String s.name);
             ( "values",
               Tel_json.Obj
                 (List.map (fun (k, v) -> (k, Tel_json.Float v)) s.values) );
           ])
       samples)

let pp ppf samples =
  if samples = [] then Format.fprintf ppf "  (no gauges registered)@."
  else
    List.iter
      (fun s ->
        Format.fprintf ppf "  %-10s %-24s %s@." s.group s.name
          (String.concat " "
             (List.map
                (fun (k, v) ->
                  if Float.is_integer v then
                    Printf.sprintf "%s=%.0f" k v
                  else Printf.sprintf "%s=%.3g" k v)
                s.values)))
      samples
