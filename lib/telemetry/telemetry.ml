module Json = Tel_json
module Histogram = Tel_hist
module Counters = Tel_counters
module Attribution = Tel_attr
module Gauges = Tel_gauges
module Report = Tel_report

let enabled = Tel_state.enabled
let set_enabled = Tel_state.set_enabled
let max_threads = Tel_state.max_threads

type slot = Tel_state.slot = {
  attempts : Tel_hist.t;
  ops : Tel_hist.t;
  serial : Tel_hist.t;
  attr : Tel_attr.t;
}

let slot = Tel_state.slot
let reset_slots = Tel_state.reset_slots
let now_ns = Tel_state.now_ns
