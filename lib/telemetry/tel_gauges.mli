(** Gauge provider registry: components (pools, reservation instances,
    reclaimers) register named sampler closures at construction time, and
    {!sample} reads them all at report time.

    Components should only register when telemetry is enabled (the
    registry never drops entries on its own — a long-lived process that
    churns instances must {!clear} between measurement windows, as the
    benchmark drivers do). *)

type sample = {
  group : string;  (** component family: ["mempool"], ["rr"], ["reclaim"] *)
  name : string;  (** instance label, suffixed [#n] on repeats *)
  values : (string * float) list;
}

val register :
  group:string -> name:string -> (unit -> (string * float) list) -> unit
(** Register a sampler. The closure is called at {!sample} time; it must
    be safe to call from any thread (read atomics, don't mutate). *)

val clear : unit -> unit
(** Drop all providers (start a fresh measurement window). *)

val registered : group:string -> name:string -> bool
(** Whether a provider with exactly this group and name is present
    (ordinal [#n] duplicates don't count). Singleton components check this
    to re-register after {!clear} without duplicating themselves. *)

val sample : unit -> sample list
(** Evaluate every provider, in registration order. *)

val to_json : sample list -> Tel_json.t
val pp : Format.formatter -> sample list -> unit
