(** The telemetry master switch and the per-thread recording slots.

    Everything here is process-global. The switch is off by default; the
    TM samples it once per [atomic] call, so flipping it mid-run affects
    operations that start afterwards. Slots are created lazily, written
    only by their owning thread, and read by reports after quiescence. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val max_threads : int
(** Capacity of the slot table (= the TM's thread-id space). *)

type slot = {
  attempts : Tel_hist.t;
  ops : Tel_hist.t;
  serial : Tel_hist.t;
  attr : Tel_attr.t;
}

val slot : int -> slot
(** The slot for a TM thread id, created on first use. Call only from the
    owning thread (or before any worker runs). *)

val reset_slots : unit -> unit
(** Zero every slot — start a measurement window. Only meaningful while no
    worker threads are recording. *)

val iter_slots : (slot -> unit) -> unit

val now_ns : unit -> int
(** Monotonic nanoseconds ([clock_gettime(CLOCK_MONOTONIC)] underneath):
    never steps, nanosecond-granular, epoch is arbitrary (boot) — only
    differences are meaningful. *)
