(** Abort attribution: (site × cause × tvar) counts.

    A {e site} is a caller-supplied static label naming the structure and
    operation that ran the transaction (e.g. ["slist(RR-XO).insert"]); the
    {e cause} is the abort cause; the tvar uid identifies the conflicting
    location when the TM knows it ([-1] when it does not, e.g. a
    serial-pending back-off). Recording is confined to the abort path. A
    record is owned by one thread; {!merge} aggregates after quiescence. *)

type t

val create : unit -> t
val clear : t -> unit

val record : t -> site:string -> cause:string -> uid:int -> unit
(** Count one abort. [uid < 0] means "unknown location". Distinct uids per
    (site, cause) are capped at 64; the excess folds into a [-2] overflow
    pseudo-uid. *)

val count : t -> site:string -> cause:string -> int
val is_empty : t -> bool
val total : t -> int

type entry = {
  site : string;
  cause : string;
  count : int;
  top_tvars : (int * int) list;
      (** (uid, count) pairs, by descending count, at most 8; uid [-1] is
          "unknown", [-2] is the overflow bucket *)
}

val entries : t -> entry list
(** All cells, by descending abort count. *)

val merge : into:t -> t -> unit
val to_json : t -> Tel_json.t
val pp : Format.formatter -> t -> unit
