type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let equal = Stdlib.( = )

(* ---- printing ---- *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      (* infinities and NaN are not JSON; emit null *)
      if Float.is_finite f then Buffer.add_string buf (float_to_string f)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

let pp ppf j = Format.pp_print_string ppf (to_string j)

(* ---- parsing ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word v =
  String.iter (fun ch -> expect c ch) word;
  v

let parse_string_body c =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some esc ->
            advance c;
            (match esc with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then fail c "short \\u";
                let hex = String.sub c.src c.pos 4 in
                c.pos <- c.pos + 4;
                let code =
                  try int_of_string ("0x" ^ hex)
                  with Failure _ -> fail c "bad \\u escape"
                in
                (* Encode the code point as UTF-8 (no surrogate pairing:
                   we only ever emit \u00XX for control characters). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> fail c "unknown escape");
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  if s = "" then fail c "expected number";
  match int_of_string_opt s with
  | Some i -> Int i
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c "malformed number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        List (items [])
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let field () =
          skip_ws c;
          expect c '"';
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          (k, v)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_string_opt = function String s -> Some s | _ -> None
let to_list = function List xs -> Some xs | _ -> None
