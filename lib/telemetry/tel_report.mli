(** Post-quiescence telemetry reports.

    {!snapshot} aggregates every per-thread slot (latency histograms and
    abort attribution) and samples the gauge registry; the result renders
    as a human-readable table ({!pp}) or machine-readable JSON
    ({!to_json}) under the [hohtx-telemetry/1] schema. Snapshot only after
    worker threads have quiesced — the slots are being written until
    then. *)

val schema : string
(** The schema tag embedded in every JSON report. *)

type t = {
  label : string;
  counters : Tel_counters.t option;
      (** aggregated TM counters, when the caller has them *)
  attempts : Tel_hist.t;
  ops : Tel_hist.t;
  serial : Tel_hist.t;
  attribution : Tel_attr.t;
  gauges : Tel_gauges.sample list;
}

val snapshot : ?label:string -> ?counters:Tel_counters.t -> unit -> t

val to_json : t -> Tel_json.t

val validate : Tel_json.t -> (unit, string) result
(** Check that a JSON value is a well-formed [hohtx-telemetry/1] report:
    schema tag, the three latency histograms, attribution entries and
    gauge samples all shaped as {!to_json} emits them. *)

val pp : Format.formatter -> t -> unit
