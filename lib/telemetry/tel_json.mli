(** A minimal JSON tree, printer and parser — enough for telemetry export
    and the report round-trip tests without pulling in an external JSON
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val equal : t -> t -> bool
(** Structural equality (field order is significant in [Obj]). *)

val to_string : t -> string
(** Compact rendering. Non-finite floats render as [null]. *)

val pp : Format.formatter -> t -> unit

val of_string : string -> (t, string) result
(** Inverse of {!to_string} on the subset it emits; also accepts
    whitespace, [\u] escapes, and float notation generally. *)

val member : string -> t -> t option
(** [member k (Obj kvs)] is the value bound to [k], if any. *)

val to_int : t -> int option
val to_float : t -> float option
val to_bool : t -> bool option
(** [Int]s coerce to float. *)

val to_string_opt : t -> string option
val to_list : t -> t list option
