(* HDR-style log-bucketed histogram over non-negative integers
   (nanoseconds). A value [v >= 8] lands in the bucket addressed by the
   position of its most significant bit plus the next [sub_bits] bits, so
   the relative bucketing error is bounded by 2^-sub_bits = 12.5% while the
   whole structure is one fixed [int array] — recording never allocates.
   Values 0..7 get exact buckets. *)

let sub_bits = 3
let sub = 1 lsl sub_bits
let max_major = 62

(* buckets 0..7 are exact; then [sub] buckets per power of two *)
let nbuckets = sub + ((max_major - sub_bits + 1) * sub)

type t = {
  counts : int array;
  mutable n : int;
  mutable sum : int;
  mutable vmin : int;
  mutable vmax : int;
}

let create () =
  { counts = Array.make nbuckets 0; n = 0; sum = 0; vmin = max_int; vmax = 0 }

let reset t =
  Array.fill t.counts 0 nbuckets 0;
  t.n <- 0;
  t.sum <- 0;
  t.vmin <- max_int;
  t.vmax <- 0

let msb v =
  let r = ref 0 and v = ref v in
  while !v > 1 do
    v := !v lsr 1;
    incr r
  done;
  !r

let index_of v =
  if v < sub then v
  else
    let m = msb v in
    let sub_i = (v lsr (m - sub_bits)) - sub in
    sub + ((m - sub_bits) * sub) + sub_i

(* Inclusive lower bound of bucket [i]; every recorded value [v] satisfies
   [lower_bound (index_of v) <= v]. *)
let lower_bound i =
  if i < sub then i
  else
    let g = (i - sub) / sub and s = (i - sub) mod sub in
    let m = g + sub_bits in
    (1 lsl m) + (s lsl (m - sub_bits))

let record t v =
  let v = if v < 0 then 0 else v in
  t.counts.(index_of v) <- t.counts.(index_of v) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum + v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.n
let sum t = t.sum
let is_empty t = t.n = 0
let min_value t = if t.n = 0 then 0 else t.vmin
let max_value t = t.vmax
let mean t = if t.n = 0 then 0. else float_of_int t.sum /. float_of_int t.n

(* Value at quantile [q] in [0,1]: the lower bound of the bucket holding
   the ceil(q*n)-th smallest recorded value (so the estimate never exceeds
   the true quantile by more than one bucket width). *)
let quantile t q =
  if t.n = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else if rank > t.n then t.n else rank in
    let acc = ref 0 and i = ref 0 and res = ref t.vmax in
    (try
       while !i < nbuckets do
         acc := !acc + t.counts.(!i);
         if !acc >= rank then begin
           res := lower_bound !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    if !res > t.vmax then t.vmax else !res
  end

let merge ~into src =
  for i = 0 to nbuckets - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.n <- into.n + src.n;
  into.sum <- into.sum + src.sum;
  if src.n > 0 then begin
    if src.vmin < into.vmin then into.vmin <- src.vmin;
    if src.vmax > into.vmax then into.vmax <- src.vmax
  end

let copy t =
  let c = create () in
  merge ~into:c t;
  c

let to_json t =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      buckets :=
        Tel_json.List [ Tel_json.Int (lower_bound i); Tel_json.Int t.counts.(i) ]
        :: !buckets
  done;
  Tel_json.Obj
    [
      ("count", Tel_json.Int t.n);
      ("sum", Tel_json.Int t.sum);
      ("min", Tel_json.Int (min_value t));
      ("max", Tel_json.Int t.vmax);
      ("mean", Tel_json.Float (mean t));
      ("p50", Tel_json.Int (quantile t 0.50));
      ("p90", Tel_json.Int (quantile t 0.90));
      ("p99", Tel_json.Int (quantile t 0.99));
      ("buckets", Tel_json.List !buckets);
    ]

let pp ppf t =
  if t.n = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf
      "n=%d mean=%.0f min=%d p50=%d p90=%d p99=%d max=%d" t.n (mean t)
      (min_value t) (quantile t 0.50) (quantile t 0.90) (quantile t 0.99)
      t.vmax
