/* Monotonic nanosecond clock for telemetry timestamps.
 *
 * Unix.gettimeofday is wall time: it steps under NTP adjustment and, being
 * a float of seconds, has ~200ns of representable resolution in 2026 —
 * both fatal to nanosecond latency histograms. CLOCK_MONOTONIC never steps
 * and the kernel serves it from the vDSO, so the call is a few ns.
 *
 * The value is returned as a tagged OCaml int: 62 bits of nanoseconds
 * since an arbitrary epoch (boot) wrap after ~146 years of uptime.
 */

#include <caml/mlvalues.h>

#if defined(_WIN32)

#include <windows.h>

CAMLprim value hohtx_monotonic_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return Val_long((intnat)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else /* POSIX */

#include <time.h>
#include <stdint.h>

CAMLprim value hohtx_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

#endif
