(* Abort attribution: for every (site, cause) pair, how many aborts
   occurred and which tvars caused them. Recording happens on the abort
   path only — an abort already cost a failed transaction, so a hashtable
   update is acceptable there (the commit fast path never touches this).

   The per-cell tvar table is capped: once [max_tvars] distinct uids have
   been seen, further uids fold into the [overflow_uid] pseudo-entry so a
   pathological workload cannot grow attribution memory without bound. *)

let max_tvars = 64
let overflow_uid = -2
let no_uid = -1

type cell = { mutable count : int; tvars : (int, int ref) Hashtbl.t }

type t = { cells : (string * string, cell) Hashtbl.t }

let create () = { cells = Hashtbl.create 16 }

let clear t = Hashtbl.reset t.cells

let cell t ~site ~cause =
  let key = (site, cause) in
  match Hashtbl.find_opt t.cells key with
  | Some c -> c
  | None ->
      let c = { count = 0; tvars = Hashtbl.create 8 } in
      Hashtbl.add t.cells key c;
      c

let bump_tvar c uid =
  let uid =
    if uid < 0 then no_uid
    else if Hashtbl.length c.tvars >= max_tvars && not (Hashtbl.mem c.tvars uid)
    then overflow_uid
    else uid
  in
  match Hashtbl.find_opt c.tvars uid with
  | Some r -> incr r
  | None -> Hashtbl.add c.tvars uid (ref 1)

let record t ~site ~cause ~uid =
  let c = cell t ~site ~cause in
  c.count <- c.count + 1;
  bump_tvar c uid

let count t ~site ~cause =
  match Hashtbl.find_opt t.cells (site, cause) with
  | Some c -> c.count
  | None -> 0

let is_empty t = Hashtbl.length t.cells = 0

let total t = Hashtbl.fold (fun _ c acc -> acc + c.count) t.cells 0

type entry = {
  site : string;
  cause : string;
  count : int;
  top_tvars : (int * int) list;  (** (uid, count), descending; -1 = unknown *)
}

let top_k = 8

let entries t =
  Hashtbl.fold
    (fun (site, cause) (c : cell) acc ->
      let tvars =
        Hashtbl.fold (fun uid r acc -> (uid, !r) :: acc) c.tvars []
        |> List.sort (fun (ua, a) (ub, b) ->
               if a <> b then compare b a else compare ua ub)
      in
      let top_tvars =
        List.filteri (fun i _ -> i < top_k) tvars
      in
      { site; cause; count = c.count; top_tvars } :: acc)
    t.cells []
  |> List.sort (fun a b ->
         if a.count <> b.count then compare b.count a.count
         else compare (a.site, a.cause) (b.site, b.cause))

let merge ~into src =
  Hashtbl.iter
    (fun (site, cause) (c : cell) ->
      let dst = cell into ~site ~cause in
      dst.count <- dst.count + c.count;
      Hashtbl.iter
        (fun uid r ->
          for _ = 1 to !r do
            bump_tvar dst uid
          done)
        c.tvars)
    src.cells

let to_json t =
  Tel_json.List
    (List.map
       (fun e ->
         Tel_json.Obj
           [
             ("site", Tel_json.String e.site);
             ("cause", Tel_json.String e.cause);
             ("count", Tel_json.Int e.count);
             ( "tvars",
               Tel_json.List
                 (List.map
                    (fun (uid, n) ->
                      Tel_json.Obj
                        [ ("uid", Tel_json.Int uid); ("count", Tel_json.Int n) ])
                    e.top_tvars) );
           ])
       (entries t))

let pp ppf t =
  if is_empty t then Format.fprintf ppf "  (no aborts recorded)@."
  else
    List.iter
      (fun e ->
        let tvars =
          String.concat ", "
            (List.map
               (fun (uid, n) ->
                 if uid = no_uid then Printf.sprintf "?x%d" n
                 else if uid = overflow_uid then Printf.sprintf "(other)x%d" n
                 else Printf.sprintf "#%dx%d" uid n)
               e.top_tvars)
        in
        Format.fprintf ppf "  %-28s %-14s %8d  [%s]@." e.site e.cause e.count
          tvars)
      (entries t)
