(** Allocation-free log-bucketed (HDR-style) latency histogram.

    Values are non-negative integers (nanoseconds by convention). Buckets
    are exact below 8 and otherwise indexed by the most significant bit
    plus the next 3 bits, bounding relative error at 12.5%. A histogram is
    one fixed array: {!record} performs two array updates and never
    allocates, so it is safe on hot paths. A histogram must be owned by a
    single thread; cross-thread aggregation goes through {!merge} after
    quiescence. *)

type t

val create : unit -> t
val reset : t -> unit

val record : t -> int -> unit
(** Record one value; negatives clamp to 0. *)

val count : t -> int
val sum : t -> int
val is_empty : t -> bool
val min_value : t -> int
val max_value : t -> int
val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] for [q] in [0,1]: lower bound of the bucket holding the
    rank-[ceil q*n] value; underestimates by at most one bucket width. *)

val merge : into:t -> t -> unit
val copy : t -> t

val index_of : int -> int
(** Bucket index of a value (exposed for tests). *)

val lower_bound : int -> int
(** Inclusive lower bound of a bucket: [lower_bound (index_of v) <= v]. *)

val to_json : t -> Tel_json.t
(** [{count; sum; min; max; mean; p50; p90; p99; buckets: [[lo; n]; ...]}]
    with only non-empty buckets listed. *)

val pp : Format.formatter -> t -> unit
