(* Global telemetry state: the master switch and the per-thread slots the
   TM records into. Slot [i] belongs to the thread holding TM thread id
   [i]; ids are recycled across domains, so a slot aggregates every domain
   that held the id during the measurement window — which is exactly what a
   post-quiescence report wants. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Must cover Tm.Thread.max_threads; the TM asserts this at start-up. *)
let max_threads = 128

type slot = {
  attempts : Tel_hist.t;  (** latency of every speculative attempt *)
  ops : Tel_hist.t;  (** whole committed operation, retries included *)
  serial : Tel_hist.t;  (** serial-fallback executions *)
  attr : Tel_attr.t;
}

(* Histograms bump four scalar fields on every record; the slots for
   concurrently registered threads are allocated back-to-back, so without
   padding two threads' hot counters share cache lines. *)
let make_slot () =
  Pad.copy_as_padded
    {
      attempts = Pad.copy_as_padded (Tel_hist.create ());
      ops = Pad.copy_as_padded (Tel_hist.create ());
      serial = Pad.copy_as_padded (Tel_hist.create ());
      attr = Tel_attr.create ();
    }

let slots : slot option array = Array.make max_threads None

let slot id =
  match slots.(id) with
  | Some s -> s
  | None ->
      let s = make_slot () in
      slots.(id) <- Some s;
      s

let reset_slots () =
  Array.iter
    (function
      | None -> ()
      | Some s ->
          Tel_hist.reset s.attempts;
          Tel_hist.reset s.ops;
          Tel_hist.reset s.serial;
          Tel_attr.clear s.attr)
    slots

let iter_slots f =
  Array.iter (function None -> () | Some s -> f s) slots

(* Monotonic nanoseconds (epoch: boot). [Unix.gettimeofday] is unusable
   here: it steps under NTP and its float format quantizes to ~200ns, which
   corrupts latency histograms whose p50 is a few hundred ns. *)
external now_ns : unit -> int = "hohtx_monotonic_ns" [@@noalloc]
