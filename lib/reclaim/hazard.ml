type 'a retired = { node : 'a; retired_at : float }

type 'a per_thread = {
  mutable retired : 'a retired list;
  mutable retired_count : int;
  mutable freed : int;
  mutable scans : int;
  mutable delay_total : float;
  mutable delay_max : float;
}

type 'a t = {
  slots_per_thread : int;
  scan_threshold : int;
  free : thread:int -> 'a -> unit;
  node_id : 'a -> int;
  san_key : 'a -> int;
  san_group : int;
  (* Flattened [max_threads * slots_per_thread] hazard slots. *)
  slots : 'a option Atomic.t array;
  threads : 'a per_thread array;
  retired_total : int Atomic.t;
  backlog : int Atomic.t;
  max_backlog : int Atomic.t;
}

let now () = float_of_int (Telemetry.now_ns ()) /. 1e9

let create ?(slots_per_thread = 3) ?(scan_threshold = 64) ~free ~node_id
    ?(san_key = fun _ -> min_int) () =
  if slots_per_thread < 1 then invalid_arg "Hazard.create: slots_per_thread";
  if scan_threshold < 1 then invalid_arg "Hazard.create: scan_threshold";
  let nthreads = Tm.Thread.max_threads in
  let t =
    {
      slots_per_thread;
      scan_threshold;
      free;
      node_id;
      san_key;
      san_group = San.fresh_group ();
      slots =
        Array.init (nthreads * slots_per_thread) (fun _ -> Atomic.make None);
      threads =
        Array.init nthreads (fun _ ->
            {
              retired = [];
              retired_count = 0;
              freed = 0;
              scans = 0;
              delay_total = 0.;
              delay_max = 0.;
            });
      retired_total = Atomic.make 0;
      backlog = Atomic.make 0;
      max_backlog = Atomic.make 0;
    }
  in
  if Telemetry.enabled () then
    Telemetry.Gauges.register ~group:"reclaim" ~name:"hazard" (fun () ->
        let retired = Atomic.get t.retired_total in
        let backlog = Atomic.get t.backlog in
        [
          ("retired", float_of_int retired);
          ("freed", float_of_int (retired - backlog));
          ("backlog", float_of_int backlog);
          ("max_backlog", float_of_int (Atomic.get t.max_backlog));
        ]);
  t

let slot_index t ~thread ~slot =
  if slot < 0 || slot >= t.slots_per_thread then invalid_arg "Hazard: slot";
  (thread * t.slots_per_thread) + slot

let protect t ~thread ~slot n =
  (* The publish race lives here: between the caller's read of the pointer
     and this store, a concurrent retire+scan can free the node. *)
  Dst.point Dst.Hp_protect;
  San.hp_protect ~group:t.san_group ~thread ~slot ~node:(t.san_key n);
  Atomic.set t.slots.(slot_index t ~thread ~slot) (Some n)

let clear t ~thread ~slot =
  San.hp_clear ~group:t.san_group ~thread ~slot;
  Atomic.set t.slots.(slot_index t ~thread ~slot) None

let clear_all t ~thread =
  for slot = 0 to t.slots_per_thread - 1 do
    clear t ~thread ~slot
  done

let bump_max_backlog t =
  let cur = Atomic.get t.backlog in
  let rec loop () =
    let m = Atomic.get t.max_backlog in
    if cur > m && not (Atomic.compare_and_set t.max_backlog m cur) then loop ()
  in
  loop ()

(* Snapshot every hazard slot into a sorted array of node ids for O(log n)
   membership tests during the sweep. *)
let hazard_snapshot t =
  let ids =
    Array.to_list t.slots
    |> List.filter_map (fun s ->
           match Atomic.get s with
           | None -> None
           | Some n -> Some (t.node_id n))
    |> Array.of_list
  in
  Array.sort compare ids;
  ids

let mem_sorted ids x =
  let rec go lo hi =
    if lo >= hi then false
    else
      let mid = (lo + hi) / 2 in
      if ids.(mid) = x then true
      else if ids.(mid) < x then go (mid + 1) hi
      else go lo mid
  in
  go 0 (Array.length ids)

let scan_thread t ~thread pt =
  Dst.point Dst.Hp_scan;
  pt.scans <- pt.scans + 1;
  let hazards = hazard_snapshot t in
  let tnow = now () in
  let keep, free_now =
    List.partition (fun r -> mem_sorted hazards (t.node_id r.node)) pt.retired
  in
  pt.retired <- keep;
  pt.retired_count <- List.length keep;
  List.iter
    (fun r ->
      let delay = tnow -. r.retired_at in
      pt.delay_total <- pt.delay_total +. delay;
      if delay > pt.delay_max then pt.delay_max <- delay;
      pt.freed <- pt.freed + 1;
      Atomic.decr t.backlog;
      t.free ~thread r.node)
    free_now

let scan t ~thread = scan_thread t ~thread t.threads.(thread)

let retire t ~thread n =
  Dst.point Dst.Hp_retire;
  if San.enabled () then
    San.retire ~thread ~site:(Tm.current_site ()) ~node:(t.san_key n);
  let pt = t.threads.(thread) in
  pt.retired <- { node = n; retired_at = now () } :: pt.retired;
  pt.retired_count <- pt.retired_count + 1;
  Atomic.incr t.retired_total;
  Atomic.incr t.backlog;
  bump_max_backlog t;
  if pt.retired_count >= t.scan_threshold then scan_thread t ~thread pt

let drain t =
  Array.iteri (fun thread pt -> scan_thread t ~thread pt) t.threads

type metrics = {
  retired_total : int;
  freed_total : int;
  backlog : int;
  max_backlog : int;
  scans : int;
  delay_total_s : float;
  delay_max_s : float;
}

let metrics t =
  let freed = ref 0 and scans = ref 0 in
  let delay_total = ref 0. and delay_max = ref 0. in
  Array.iter
    (fun pt ->
      freed := !freed + pt.freed;
      scans := !scans + pt.scans;
      delay_total := !delay_total +. pt.delay_total;
      if pt.delay_max > !delay_max then delay_max := pt.delay_max)
    t.threads;
  {
    retired_total = Atomic.get t.retired_total;
    freed_total = !freed;
    backlog = Atomic.get t.backlog;
    max_backlog = Atomic.get t.max_backlog;
    scans = !scans;
    delay_total_s = !delay_total;
    delay_max_s = !delay_max;
  }
