(** Epoch-based reclamation (three-epoch RCU-style scheme).

    Threads wrap data-structure operations in {!enter}/{!leave}; a retired
    node becomes freeable two epoch advances after its retirement, at which
    point no active thread can still hold a reference obtained before it was
    unlinked. The paper notes that epoch schemes accept unbounded
    reclamation delay for an unbounded number of items (a stalled reader
    blocks the epoch); the backlog metrics here make that visible, in
    contrast with the zero-delay reclamation of revocable reservations. *)

type 'a t

val create :
  ?advance_threshold:int ->
  free:(thread:int -> 'a -> unit) ->
  ?san_key:('a -> int) ->
  unit ->
  'a t
(** [advance_threshold] is how many retires a thread performs between
    attempts to advance the global epoch (default 32). [san_key] maps a node
    to its TxSan shadow-slot key (pool-backed structures pass
    [Mempool.san_key]); the default maps every node to a key the sanitizer
    ignores. *)

val enter : 'a t -> thread:int -> unit
(** Mark the thread active in the current epoch. Must not nest. *)

val leave : 'a t -> thread:int -> unit
(** Mark the thread quiescent. *)

val retire : 'a t -> thread:int -> 'a -> unit
(** Defer freeing until two epochs have passed. May advance the epoch and
    free previously-retired nodes. *)

val drain : 'a t -> unit
(** After all threads quiesce: advance epochs and free everything. *)

val current_epoch : 'a t -> int

type metrics = {
  retired_total : int;
  freed_total : int;
  backlog : int;
  max_backlog : int;
  advances : int;  (** successful global epoch advances *)
  delay_total_s : float;
  delay_max_s : float;
}

val metrics : 'a t -> metrics
