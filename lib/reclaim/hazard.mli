(** Hazard pointers (Michael, 2004): the deferred-reclamation baseline.

    A thread {e protects} a node by publishing it in one of its hazard
    slots before dereferencing it, and re-validating the source pointer
    afterwards. A remover {e retires} an unlinked node instead of freeing
    it; once the thread's retired list reaches [scan_threshold] nodes, it
    scans all hazard slots and frees every retired node that no slot
    protects. The paper reports hazard pointers perform best when threads
    reclaim only after 64 deletions, hence the default threshold.

    Unlike revocable reservations, reclamation is neither precise nor
    immediate: the backlog and delay metrics exposed here quantify exactly
    the cost the paper's mechanism eliminates. *)

type 'a t

val create :
  ?slots_per_thread:int ->
  ?scan_threshold:int ->
  free:(thread:int -> 'a -> unit) ->
  node_id:('a -> int) ->
  ?san_key:('a -> int) ->
  unit ->
  'a t
(** [create ~free ~node_id ()] builds a hazard-pointer domain whose scans
    call [free] on unprotected retired nodes. [slots_per_thread] defaults to
    3 (enough for Harris–Michael traversals); [scan_threshold] defaults to
    64. [san_key] maps a node to its TxSan shadow-slot key (pool-backed
    structures pass [Mempool.san_key]); the default maps every node to a key
    the sanitizer ignores. *)

val protect : 'a t -> thread:int -> slot:int -> 'a -> unit
(** Publish a hazard. The caller must re-validate its source pointer after
    publishing, per the hazard-pointer protocol. *)

val clear : 'a t -> thread:int -> slot:int -> unit
val clear_all : 'a t -> thread:int -> unit

val retire : 'a t -> thread:int -> 'a -> unit
(** Defer the node's free until no hazard slot protects it. Triggers a scan
    when this thread's retired list reaches the threshold. *)

val scan : 'a t -> thread:int -> unit
(** Force a scan of this thread's retired list regardless of threshold. *)

val drain : 'a t -> unit
(** Reclaim everything reclaimable from every thread's retired list; call
    after workers quiesce. Nodes still protected by a stale hazard remain
    retired and are counted in {!backlog}. *)

type metrics = {
  retired_total : int;  (** nodes ever passed to {!retire} *)
  freed_total : int;  (** nodes actually freed by scans *)
  backlog : int;  (** currently retired, not yet freed *)
  max_backlog : int;  (** worst-case deferred-reclamation footprint *)
  scans : int;  (** number of scans performed *)
  delay_total_s : float;  (** summed retire-to-free delay, seconds *)
  delay_max_s : float;  (** worst single-node reclamation delay *)
}

val metrics : 'a t -> metrics
