type 'a retired = { node : 'a; retired_at : float }
type 'a bag = { mutable epoch : int; mutable nodes : 'a retired list }

type 'a per_thread = {
  announce : int Atomic.t;  (** [2*epoch+1] when active, [0] when idle *)
  bags : 'a bag array;  (** indexed by epoch mod 3 *)
  mutable retire_count : int;
  mutable freed : int;
  mutable delay_total : float;
  mutable delay_max : float;
}

type 'a t = {
  advance_threshold : int;
  free : thread:int -> 'a -> unit;
  san_key : 'a -> int;
  global : int Atomic.t;
  advances : int Atomic.t;
  threads : 'a per_thread array;
  retired_total : int Atomic.t;
  backlog : int Atomic.t;
  max_backlog : int Atomic.t;
}

let now () = float_of_int (Telemetry.now_ns ()) /. 1e9

let create ?(advance_threshold = 32) ~free ?(san_key = fun _ -> min_int) () =
  if advance_threshold < 1 then invalid_arg "Epoch.create";
  let t =
    {
      advance_threshold;
      free;
      san_key;
      global = Atomic.make 2;
      (* start at 2 so [epoch - 2] is never negative *)
      advances = Atomic.make 0;
      threads =
        Array.init Tm.Thread.max_threads (fun _ ->
            {
              announce = Atomic.make 0;
              bags = Array.init 3 (fun i -> { epoch = i - 3; nodes = [] });
              retire_count = 0;
              freed = 0;
              delay_total = 0.;
              delay_max = 0.;
            });
      retired_total = Atomic.make 0;
      backlog = Atomic.make 0;
      max_backlog = Atomic.make 0;
    }
  in
  if Telemetry.enabled () then
    Telemetry.Gauges.register ~group:"reclaim" ~name:"epoch" (fun () ->
        let retired = Atomic.get t.retired_total in
        let backlog = Atomic.get t.backlog in
        [
          ("retired", float_of_int retired);
          ("freed", float_of_int (retired - backlog));
          ("backlog", float_of_int backlog);
          ("max_backlog", float_of_int (Atomic.get t.max_backlog));
          ("advances", float_of_int (Atomic.get t.advances));
        ]);
  t

let enter t ~thread =
  Dst.point Dst.Ep_enter;
  San.ep_enter ~thread;
  let pt = t.threads.(thread) in
  (* Announce, then re-check the global epoch: if it moved between the read
     and the announce, re-announce so we never appear active in a stale
     epoch that the advancer already skipped. *)
  let rec loop () =
    let e = Atomic.get t.global in
    Atomic.set pt.announce ((2 * e) + 1);
    if Atomic.get t.global <> e then loop ()
  in
  loop ()

let leave t ~thread =
  San.ep_leave ~thread;
  Atomic.set t.threads.(thread).announce 0

let bump_max_backlog t =
  let cur = Atomic.get t.backlog in
  let rec loop () =
    let m = Atomic.get t.max_backlog in
    if cur > m && not (Atomic.compare_and_set t.max_backlog m cur) then loop ()
  in
  loop ()

let free_bag t ~thread pt bag =
  let tnow = now () in
  List.iter
    (fun r ->
      let delay = tnow -. r.retired_at in
      pt.delay_total <- pt.delay_total +. delay;
      if delay > pt.delay_max then pt.delay_max <- delay;
      pt.freed <- pt.freed + 1;
      Atomic.decr t.backlog;
      t.free ~thread r.node)
    bag.nodes;
  bag.nodes <- []

(* Free this thread's bags whose epoch is at least two behind. *)
let collect t ~thread pt =
  let e = Atomic.get t.global in
  Array.iter
    (fun bag -> if bag.nodes <> [] && bag.epoch <= e - 2 then free_bag t ~thread pt bag)
    pt.bags

let try_advance t =
  Dst.point Dst.Ep_advance;
  let e = Atomic.get t.global in
  let blocked =
    Array.exists
      (fun pt ->
        let a = Atomic.get pt.announce in
        a land 1 = 1 && a asr 1 <> e)
      t.threads
  in
  if not blocked then
    if Atomic.compare_and_set t.global e (e + 1) then
      Atomic.incr t.advances

let retire t ~thread n =
  Dst.point Dst.Ep_retire;
  if San.enabled () then
    San.retire ~thread ~site:(Tm.current_site ()) ~node:(t.san_key n);
  let pt = t.threads.(thread) in
  let e = Atomic.get t.global in
  let bag = pt.bags.(e mod 3) in
  if bag.epoch <> e then begin
    (* The slot cycles every three epochs, so its previous contents are at
       least three epochs old and safe to free. *)
    if bag.nodes <> [] then free_bag t ~thread pt bag;
    bag.epoch <- e
  end;
  bag.nodes <- { node = n; retired_at = now () } :: bag.nodes;
  Atomic.incr t.retired_total;
  Atomic.incr t.backlog;
  bump_max_backlog t;
  pt.retire_count <- pt.retire_count + 1;
  if pt.retire_count mod t.advance_threshold = 0 then begin
    try_advance t;
    collect t ~thread pt
  end

let drain t =
  (* Callable only once all threads are quiescent. *)
  for _ = 1 to 3 do
    try_advance t
  done;
  Array.iteri (fun thread pt -> collect t ~thread pt) t.threads

let current_epoch t = Atomic.get t.global

type metrics = {
  retired_total : int;
  freed_total : int;
  backlog : int;
  max_backlog : int;
  advances : int;
  delay_total_s : float;
  delay_max_s : float;
}

let metrics t =
  let freed = ref 0 in
  let delay_total = ref 0. and delay_max = ref 0. in
  Array.iter
    (fun pt ->
      freed := !freed + pt.freed;
      delay_total := !delay_total +. pt.delay_total;
      if pt.delay_max > !delay_max then delay_max := pt.delay_max)
    t.threads;
  {
    retired_total = Atomic.get t.retired_total;
    freed_total = !freed;
    backlog = Atomic.get t.backlog;
    max_backlog = Atomic.get t.max_backlog;
    advances = Atomic.get t.advances;
    delay_total_s = !delay_total;
    delay_max_s = !delay_max;
  }
