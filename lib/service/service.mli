(** The sharded KV service layer.

    A keyspace partitioned across N shards, each a complete independent
    stack (its own {!Mempool}, its own HOH structure, its own telemetry)
    built from one {!Harness.Factories.Spec}, fronted by a router:

    - keys hash to shards deterministically ({!shard_of_key});
    - single-key operations and same-shard batches run under a per-shard
      {e shared} gate, so they proceed concurrently — the underlying
      store's transactions provide their isolation;
    - cross-shard multi-key operations ({!multi}) take every involved
      shard's gate {e exclusively} (ascending shard order, so gate
      acquisition cannot deadlock) and run two-phase commit over
      per-shard transactions: prepare probes every precondition, apply
      performs the writes, and a failure mid-apply rolls the applied
      prefix back with compensating operations while the gates are still
      held — other threads observe all of the multi or none of it.

    Because all shards share the TM's global commit clock, the stamps of
    a multi's sub-transactions order consistently against all other
    stamped operations, and the whole service history remains checkable
    by {!Harness.Serial_check} (DESIGN.md, decision 10).

    Three optional layers ride in front of the router (DESIGN.md,
    decision 13): per-shard worker pools with bounded request queues and
    an async {!submit}/{!await} path ({!Pool}), a versioned hot-key read
    cache whose hits skip the gate and the transaction entirely
    ({!Hotcache}), and SLO-driven admission control that sheds
    low-priority submissions with {!Harness.Store_intf.Overload}
    replies. *)

(** The front layers, re-exported: the service library is wrapped behind
    this module, so benches and white-box tests reach {!Pool} and
    {!Hotcache} through these aliases. *)
module Worker_pool : module type of struct
  include Pool
end

module Hot_cache : module type of struct
  include Hotcache
end

type priority = Pool.priority = High | Low
(** Admission class of an async submission: [Low] is sheddable under an
    SLO, [High] never sheds. *)

type t

val create :
  ?shards:int ->
  ?fuse:bool ->
  ?pool:bool ->
  ?hotcache:bool ->
  ?slo_us:int ->
  ?pool_spawn:bool ->
  Harness.Factories.Spec.t ->
  t
(** Build a service from a spec; one store per shard via
    {!Harness.Factories.make}. [shards] (default the spec's [shards]
    knob, default 1), [fuse] (spec's [fuse], default [true]), [pool]
    (spec's [pool], default off), [hotcache] (spec's [hotcache], default
    off) and [slo_us] (spec's [slo_us], default none) override the spec.
    [pool_spawn] (default [true]) controls whether worker domains start;
    DST scenarios pass [false] and drive {!pool_step} from logical
    threads instead.
    @raise Invalid_argument if the shard count is below 1, or [slo_us]
    is set without the pool. *)

val label : t -> string
val shards : t -> int

val shard_of_key : t -> int -> int
(** Deterministic routing: which shard owns a key. *)

(** {1 Request paths} *)

val exec : t -> thread:int -> Harness.Store.op -> Harness.Store.reply
(** Route and run one operation under the owning shard's shared gate.
    Scans span shards: they decompose into per-shard probe batches and
    merge, interval-linearized like {!Harness.Store_intf.S.scan}. *)

val exec_batch : t -> thread:int -> Harness.Store.op array -> Harness.Store.reply array
(** Group a batch by shard and run each shard's sub-batch as one
    {!Harness.Store.batch} — a single fused transaction per shard when
    the service fuses. Replies return in request order. The batch is
    atomic per shard, not across shards; use {!multi} for that. *)

type multi_result =
  | Committed of Harness.Store.reply array
  | Aborted of int
      (** index of the first operation whose precondition failed
          (insert of a present key / remove of an absent key); no effect
          was applied *)

val multi : t -> thread:int -> Harness.Store.op array -> multi_result
(** Cross-shard atomic multi-key operation (two-phase commit). [Get]s are
    answered from the prepare phase; [Insert]/[Remove] preconditions are
    all checked before any write applies.
    @raise Invalid_argument on scans, or two writes to the same key. *)

(** {1 Asynchronous submission}

    With the worker pool on, {!submit} enqueues a same-shard operation
    group on the owning shard's bounded queue and returns immediately;
    the shard's worker drains the queue head into one fused transaction.
    Without the pool (or for groups the queues cannot carry — scans,
    cross-shard batches) {!submit} degrades to the synchronous paths and
    returns an already-completed ticket, so callers are written once. *)

type ticket =
  | Done of Harness.Store.reply array
      (** answered synchronously: cache hit, pool off, or cross-shard
          fallback *)
  | Queued of Pool.ticket  (** in a shard queue; redeem with {!await} *)
  | Shed of int
      (** rejected by admission control; {!await} yields that many
          [Overload] replies *)

val submit :
  t -> thread:int -> ?priority:priority -> Harness.Store.op array -> ticket
(** [priority] defaults to [High] (never shed). A lone cache-hit [Get]
    completes inline without touching a queue, a gate, or a
    transaction. *)

val await : t -> ticket -> Harness.Store.reply array
(** Redeem a ticket, blocking until the worker has run the group. *)

val try_await : t -> ticket -> Harness.Store.reply array option
(** Non-blocking poll. *)

val pool_step : t -> shard:int -> thread:int -> int
(** Drain one fused batch from [shard]'s queue (0 when idle or no pool).
    The worker-loop body, exposed so DST scenarios created with
    [pool_spawn:false] can run drains as scheduled logical threads. *)

val note_lag : t -> int -> unit
(** Report an observed open-loop schedule lag (ns) to the admission
    controller. *)

val queue_depth : t -> shard:int -> int
val queued : t -> int

val pooled : t -> bool
(** Was this service created with the worker pool? Callers that want
    every operation to flow through the queues (the soak churn driver)
    switch on this rather than on the spec. *)

val overloaded : t -> shard:int -> bool
(** Would a [Low] submission for [shard] be shed right now? *)

val shutdown : t -> unit
(** Stop and join the worker domains (workers drain their queues, then
    finalize their threads against every shard). Idempotent; a no-op
    without the pool. Run before {!drain}/{!check} on pooled services. *)

val cache_hit_rate : t -> float
(** Hot-cache hit rate ([0.] without the cache). *)

val recover : t -> int
(** Resolve intents abandoned by dead threads: complete the undo of every
    applied sub-operation, disambiguate in-flight ones by probing the
    (still-gated) shard, release the dead threads' gates. Must run from a
    registered thread with the service otherwise quiescent. Returns the
    number of intents resolved. DST kill-paths rely on this: a thread
    abandoned mid-2PC leaves its gates and intent in place rather than
    running transactions during unwinding. *)

(** {1 Whole-service views} *)

val counters : t -> (string * int) list
(** Router counters (singles, batches, multis, multi_aborts, recovered)
    plus, when the layers are on, the pool's queue/shed counters
    ({!Pool.counters}) and the cache's hit/miss/invalidation counts
    ({!Hotcache.stats}). *)

val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val size : t -> int
val contents : t -> int list

val check : t -> (unit, string) result
(** Every shard's structural check, plus service invariants: no
    unresolved intent, no held gate, no misrouted key. *)

val pool_live : t -> int option
val max_backlog : t -> int option
val leaked : t -> int option

val as_store : t -> Harness.Store.t
(** The service packed as a store: anything that drives a {!Harness.Store.t}
    (the benchmark driver and its serialization checker included) can
    drive a sharded service unchanged. *)
