(** The sharded KV service layer.

    A keyspace partitioned across N shards, each a complete independent
    stack (its own {!Mempool}, its own HOH structure, its own telemetry)
    built from one {!Harness.Factories.Spec}, fronted by a router:

    - keys hash to shards deterministically ({!shard_of_key});
    - single-key operations and same-shard batches run under a per-shard
      {e shared} gate, so they proceed concurrently — the underlying
      store's transactions provide their isolation;
    - cross-shard multi-key operations ({!multi}) take every involved
      shard's gate {e exclusively} (ascending shard order, so gate
      acquisition cannot deadlock) and run two-phase commit over
      per-shard transactions: prepare probes every precondition, apply
      performs the writes, and a failure mid-apply rolls the applied
      prefix back with compensating operations while the gates are still
      held — other threads observe all of the multi or none of it.

    Because all shards share the TM's global commit clock, the stamps of
    a multi's sub-transactions order consistently against all other
    stamped operations, and the whole service history remains checkable
    by {!Harness.Serial_check} (DESIGN.md, decision 10). *)

type t

val create : ?shards:int -> ?fuse:bool -> Harness.Factories.Spec.t -> t
(** Build a service from a spec; one store per shard via
    {!Harness.Factories.make}. [shards] (default the spec's [shards]
    knob, default 1) and [fuse] (default the spec's [fuse] knob, default
    [true]) override the spec.
    @raise Invalid_argument if the shard count is below 1. *)

val label : t -> string
val shards : t -> int

val shard_of_key : t -> int -> int
(** Deterministic routing: which shard owns a key. *)

(** {1 Request paths} *)

val exec : t -> thread:int -> Harness.Store.op -> Harness.Store.reply
(** Route and run one operation under the owning shard's shared gate.
    Scans span shards: they decompose into per-shard probe batches and
    merge, interval-linearized like {!Harness.Store_intf.S.scan}. *)

val exec_batch : t -> thread:int -> Harness.Store.op array -> Harness.Store.reply array
(** Group a batch by shard and run each shard's sub-batch as one
    {!Harness.Store.batch} — a single fused transaction per shard when
    the service fuses. Replies return in request order. The batch is
    atomic per shard, not across shards; use {!multi} for that. *)

type multi_result =
  | Committed of Harness.Store.reply array
  | Aborted of int
      (** index of the first operation whose precondition failed
          (insert of a present key / remove of an absent key); no effect
          was applied *)

val multi : t -> thread:int -> Harness.Store.op array -> multi_result
(** Cross-shard atomic multi-key operation (two-phase commit). [Get]s are
    answered from the prepare phase; [Insert]/[Remove] preconditions are
    all checked before any write applies.
    @raise Invalid_argument on scans, or two writes to the same key. *)

val recover : t -> int
(** Resolve intents abandoned by dead threads: complete the undo of every
    applied sub-operation, disambiguate in-flight ones by probing the
    (still-gated) shard, release the dead threads' gates. Must run from a
    registered thread with the service otherwise quiescent. Returns the
    number of intents resolved. DST kill-paths rely on this: a thread
    abandoned mid-2PC leaves its gates and intent in place rather than
    running transactions during unwinding. *)

(** {1 Whole-service views} *)

val counters : t -> (string * int) list
(** Router counters: singles, batches, multis, multi_aborts, recovered. *)

val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val size : t -> int
val contents : t -> int list

val check : t -> (unit, string) result
(** Every shard's structural check, plus service invariants: no
    unresolved intent, no held gate, no misrouted key. *)

val pool_live : t -> int option
val max_backlog : t -> int option
val leaked : t -> int option

val as_store : t -> Harness.Store.t
(** The service packed as a store: anything that drives a {!Harness.Store.t}
    (the benchmark driver and its serialization checker included) can
    drive a sharded service unchanged. *)
