(* Hot-key read cache in front of the service router.

   One small direct-mapped table per shard, versioned by a per-shard
   invalidation epoch instead of per-key deletion: a populated entry
   remembers the epoch observed *before* its lookup transaction ran, and
   a hit is valid only while the shard's epoch is unchanged. Any write
   committing against the shard bumps the epoch (while the shard gate is
   still held), which invalidates every cached entry of that shard at
   once — cheap for writers, and immune to the populate/invalidate race:
   a reply populated concurrently with a write carries the pre-write
   epoch and can never be served (DESIGN.md, decision 13).

   Freshness is checkable: alongside the epoch the shard publishes the
   stamp of its last committed write (bumped first, so a matching epoch
   implies the published stamp predates the entry's lookup). On every hit
   the TxSan hook asserts [entry stamp >= last committed write stamp];
   the [Stale_cache] injected bug (skip the bump) trips it. *)

open Harness

type entry = {
  e_key : int;
  e_epoch : int;  (** shard epoch observed before the lookup transaction *)
  e_present : bool;
  e_earliest : int;
  e_stamp : int;
}

type shard = {
  epoch : int Atomic.t;
  last_write : int Atomic.t;  (** max commit stamp of any write, CAS-maxed *)
  slots : entry option Atomic.t array;
}

type t = {
  mask : int;
  shards : shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
  invalidations : int Atomic.t;
}

let default_capacity = 256

let create ?(capacity = default_capacity) ~shards () =
  if shards < 1 then invalid_arg "Hotcache.create: shards must be >= 1";
  let cap =
    (* round up to a power of two so the slot index is a mask *)
    let rec up n = if n >= capacity then n else up (n * 2) in
    up 16
  in
  {
    mask = cap - 1;
    shards =
      Array.init shards (fun _ ->
          {
            epoch = Pad.atomic 0;
            last_write = Pad.atomic 0;
            slots = Array.init cap (fun _ -> Atomic.make None);
          });
    hits = Pad.atomic 0;
    misses = Pad.atomic 0;
    invalidations = Pad.atomic 0;
  }

let epoch t ~shard = Atomic.get t.shards.(shard).epoch

(* Lookup for a single-key [Get]. A hit returns the cached reply; the
   entry is valid only when populated under the current epoch. *)
let find t ~shard ~thread key =
  let s = t.shards.(shard) in
  Dst.point Dst.Svc_cache;
  match Atomic.get s.slots.(key land t.mask) with
  | Some e when e.e_key = key && e.e_epoch = Atomic.get s.epoch ->
      Atomic.incr t.hits;
      San.cache_hit ~thread ~shard ~stamp:e.e_stamp
        ~last_write:(Atomic.get s.last_write);
      Some
        {
          Store.outcome = (if e.e_present then Store.Found else Store.Absent);
          earliest = e.e_earliest;
          stamp = e.e_stamp;
        }
  | _ ->
      Atomic.incr t.misses;
      None

(* Populate from a lookup reply. [epoch0] must have been read (via
   {!epoch}) before the lookup transaction started: if a write committed
   since, the current epoch has moved past [epoch0] and the entry is
   stillborn — present but never served. *)
let note t ~shard ~epoch0 key (r : Store.reply) =
  match r.Store.outcome with
  | Store.Found | Store.Absent ->
      let s = t.shards.(shard) in
      Atomic.set
        s.slots.(key land t.mask)
        (Some
           {
             e_key = key;
             e_epoch = epoch0;
             e_present = r.Store.outcome = Store.Found;
             e_earliest = r.Store.earliest;
             e_stamp = r.Store.stamp;
           })
  | _ -> ()

(* A write committed at [stamp] against [shard]: invalidate. The epoch
   bump comes first so no hit can observe the new last-write stamp while
   an entry from before the write still validates. Callers hold the
   shard's gate (shared for singles/batches, exclusive for 2PC applies),
   but writers under the shared gate may bump concurrently — hence
   atomics, and a CAS-max for the published stamp. *)
let bump t ~shard ~stamp =
  let s = t.shards.(shard) in
  (* The [Stale_cache] injected bug models a writer that forgets to
     invalidate: the epoch bump is skipped, leaving the shard's cached
     entries servable. The published last-write stamp still advances —
     it is the freshness ground truth the TxSan hit check compares
     against, which is exactly what makes the forgotten invalidation
     detectable at the next hit. *)
  if not (Dst.Inject.bug Dst.Inject.Stale_cache) then begin
    Atomic.incr s.epoch;
    Atomic.incr t.invalidations
  end;
  let rec max_loop () =
    let cur = Atomic.get s.last_write in
    if stamp > cur && not (Atomic.compare_and_set s.last_write cur stamp) then
      max_loop ()
  in
  max_loop ()

let stats t =
  [
    ("cache_hits", Atomic.get t.hits);
    ("cache_misses", Atomic.get t.misses);
    ("cache_invalidations", Atomic.get t.invalidations);
  ]

let hit_rate t =
  let h = Atomic.get t.hits and m = Atomic.get t.misses in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)
