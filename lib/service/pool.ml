(* Per-shard worker pools with bounded MPSC request queues.

   Clients submit operation groups asynchronously: a submission lands in
   the owning shard's bounded ring and returns a completion cell; the
   shard's dedicated worker domain drains the queue head into one fused
   batch per pass, so queue pressure converts into larger transactions —
   the expensive per-transaction work (clock stamp, reserve/check round)
   is paid once per batch, not once per request (the amortization the
   service layer already exploits for explicit batches, now applied to
   independent requests; DESIGN.md, decision 13).

   The pool is generic over the execution closure so it carries no
   dependency on the router: the service passes a closure that takes the
   shard's gate, runs [Store.batch ~fuse], and bumps the hot-cache epoch
   for writes.

   Admission control rides the same queues: a controller projects the
   p99 queueing lag of a new arrival from the shard's queue depth and a
   decaying-max estimate of per-request service time, folds in the
   open-loop lag signal reported by {!note_lag}, and sheds low-priority
   requests ([`Shed], served as [Overload] replies by the service) when
   the projection exceeds the configured SLO. High-priority requests are
   never shed; they are deferred — enqueued anyway — and counted.

   Determinism: with [spawn:false] no domains start and a DST scenario
   drives {!step} from logical threads; [submit]/[await] yield at the
   [Svc_enqueue] site and [step] at [Svc_drain], so queue-drain
   interleavings are explorable and replayable. *)

open Harness

type priority = High | Low

type cell = {
  mutable c_replies : Store.reply array;
  c_done : bool Atomic.t;
  c_mu : Mutex.t;
  c_cond : Condition.t;
}

type ticket = cell

type req = { r_ops : Store.op array; r_cell : cell }

(* Vyukov-style bounded MPMC ring (used MPSC: one worker per shard).
   [seq.(i) = pos] means slot [i] is free for the producer of ticket
   [pos]; [seq.(i) = pos + 1] means it holds ticket [pos]'s value. *)
type queue = {
  buf : req option Atomic.t array;
  seq : int Atomic.t array;
  head : int Atomic.t;  (* consumer ticket *)
  tail : int Atomic.t;  (* producer ticket *)
  depth : int Atomic.t;
  svc_p99_ns : int Atomic.t;  (* decaying max of per-request service time *)
  drained_reqs : int Atomic.t;
  drained_batches : int Atomic.t;
  (* idle-worker parking: a worker that found the ring empty publishes
     [sleeping] and blocks on [wake]; producers signal after an enqueue.
     Without this an idle worker spin-burns its whole OS timeslice, which
     starves the clients on low-core machines. *)
  mu : Mutex.t;
  wake : Condition.t;
  sleeping : bool Atomic.t;
  (* a dequeued request deferred to the next fused batch because it
     touches a key an earlier request in the current batch already
     touches (see [step]); single-consumer, worker-only *)
  mutable carry : req option;
}

type t = {
  qs : queue array;
  mask : int;
  drain_ops : int;  (* max operations fused into one drained batch *)
  slo_ns : int option;
  exec : shard:int -> thread:int -> Store.op array -> Store.reply array;
  finalize : thread:int -> unit;
  stop : bool Atomic.t;
  mutable workers : unit Domain.t array;
  shed_low : int Atomic.t;
  shed_high : int Atomic.t;  (* always 0: High is deferred, never shed *)
  deferred : int Atomic.t;  (* High admitted while the controller would shed *)
  lag_ns : int Atomic.t;  (* EWMA of the reported open-loop schedule lag *)
  max_depth : int Atomic.t;
}

let default_queue_capacity = 1024
let default_drain_ops = 64

let queue_make cap =
  {
    buf = Array.init cap (fun _ -> Atomic.make None);
    seq = Array.init cap (fun i -> Atomic.make i);
    head = Pad.atomic 0;
    tail = Pad.atomic 0;
    depth = Pad.atomic 0;
    svc_p99_ns = Pad.atomic 0;
    drained_reqs = Pad.atomic 0;
    drained_batches = Pad.atomic 0;
    mu = Mutex.create ();
    wake = Condition.create ();
    sleeping = Atomic.make false;
    carry = None;
  }

(* ---- queue primitives ---- *)

(* Try to claim one producer ticket; returns false when the ring is full
   at the instant of the attempt. *)
let try_enqueue t q r =
  let rec go pos =
    let slot = pos land t.mask in
    let s = Atomic.get q.seq.(slot) in
    if s = pos then
      if Atomic.compare_and_set q.tail pos (pos + 1) then begin
        Atomic.set q.buf.(slot) (Some r);
        Atomic.set q.seq.(slot) (pos + 1);
        Atomic.incr q.depth;
        (* depth is published before this read, so a worker that saw the
           ring empty either sees the new depth on its recheck or is
           already parked and gets the signal *)
        if Atomic.get q.sleeping then begin
          Mutex.lock q.mu;
          Condition.signal q.wake;
          Mutex.unlock q.mu
        end;
        true
      end
      else go (Atomic.get q.tail)
    else if s < pos then false (* the slot still holds lap-old data: full *)
    else go (Atomic.get q.tail)
  in
  go (Atomic.get q.tail)

let try_dequeue t q =
  let rec go pos =
    let slot = pos land t.mask in
    let s = Atomic.get q.seq.(slot) in
    if s = pos + 1 then
      if Atomic.compare_and_set q.head pos (pos + 1) then begin
        let r = Atomic.get q.buf.(slot) in
        Atomic.set q.buf.(slot) None;
        Atomic.set q.seq.(slot) (pos + t.mask + 1);
        Atomic.decr q.depth;
        r
      end
      else go (Atomic.get q.head)
    else if s <= pos then None (* empty *)
    else go (Atomic.get q.head)
  in
  go (Atomic.get q.head)

(* ---- completion cells ---- *)

let cell_make () =
  {
    c_replies = [||];
    c_done = Atomic.make false;
    c_mu = Mutex.create ();
    c_cond = Condition.create ();
  }

let complete cell replies =
  Mutex.lock cell.c_mu;
  cell.c_replies <- replies;
  Atomic.set cell.c_done true;
  Condition.broadcast cell.c_cond;
  Mutex.unlock cell.c_mu

let try_await cell =
  if Atomic.get cell.c_done then Some cell.c_replies else None

let await cell =
  if Dst.scheduled () then begin
    (* virtual threads: spin through the scheduler so a drainer thread
       can run; blocking on a condition would wedge the single domain *)
    while not (Atomic.get cell.c_done) do
      Dst.point Dst.Svc_enqueue
    done;
    cell.c_replies
  end
  else begin
    let spins = ref 0 in
    while (not (Atomic.get cell.c_done)) && !spins < 256 do
      incr spins;
      Domain.cpu_relax ()
    done;
    if not (Atomic.get cell.c_done) then begin
      Mutex.lock cell.c_mu;
      while not (Atomic.get cell.c_done) do
        Condition.wait cell.c_cond cell.c_mu
      done;
      Mutex.unlock cell.c_mu
    end;
    cell.c_replies
  end

(* ---- admission control ---- *)

(* EWMA (alpha = 1/8) of the open-loop schedule lag the harness reports;
   racy read-modify-write is fine for a control signal. *)
let note_lag t ns =
  if ns >= 0 then
    Atomic.set t.lag_ns (((7 * Atomic.get t.lag_ns) + ns) / 8)

let projected_lag_ns t ~shard =
  let q = t.qs.(shard) in
  (Atomic.get q.depth + 1) * Atomic.get q.svc_p99_ns

(* Would the controller shed a new arrival for [shard] right now? The
   verdict combines the queue projection with the reported open-loop lag
   so a service that is behind schedule sheds even while its queues are
   momentarily shallow. Both signals are compared against HALF the SLO:
   the projection and the EWMA both track the middle of their
   distributions, and the p99 the SLO constrains sits well above the
   middle — shedding at the full budget lands the served tail just past
   it, shedding at half leaves room for the spikes (OS preemption, a
   2PC multi freezing the shard) the controller cannot see coming. *)
let overloaded t ~shard =
  match t.slo_ns with
  | None -> false
  | Some slo ->
      let budget = slo / 2 in
      projected_lag_ns t ~shard > budget || Atomic.get t.lag_ns > budget

(* ---- submission ---- *)

let submit t ~shard ~priority ops =
  let over = overloaded t ~shard in
  if over && priority = Low then begin
    Atomic.incr t.shed_low;
    `Shed
  end
  else begin
    if over then Atomic.incr t.deferred;
    let cell = cell_make () in
    let r = { r_ops = ops; r_cell = cell } in
    Dst.point Dst.Svc_enqueue;
    let q = t.qs.(shard) in
    (* a full ring is backpressure, not overload: spin until space (the
       worker is draining at its fused-batch rate) — except for Low
       traffic under an SLO, which sheds rather than queue-builds *)
    let rec push () =
      if try_enqueue t q r then ()
      else if t.slo_ns <> None && priority = Low then begin
        Atomic.incr t.shed_low;
        raise Exit
      end
      else begin
        Dst.point Dst.Svc_enqueue;
        Domain.cpu_relax ();
        push ()
      end
    in
    match push () with
    | () ->
        let d = Atomic.get q.depth in
        if d > Atomic.get t.max_depth then Atomic.set t.max_depth d;
        `Ticket cell
    | exception Exit -> `Shed
  end

(* ---- drain ---- *)

(* Decaying max: an overload spike raises the estimate instantly, and it
   relaxes by 1/32 per drained batch afterwards — a cheap stand-in for a
   p99 that must react fast to congestion. *)
let note_service_time q ns =
  let cur = Atomic.get q.svc_p99_ns in
  let decayed = cur - (cur / 32) in
  Atomic.set q.svc_p99_ns (max ns (max decayed 1))

(* Drain the queue head into one fused batch: requests are popped until
   the fusion budget fills or the queue empties, their ops concatenated
   into a single [exec] call (one transaction per shard pass when the
   service fuses), and the replies scattered back to each request's
   completion cell. Returns the number of requests completed.

   Fusion is conflict-bounded: a batch never carries two requests that
   touch the same key. Fused replies all publish the batch's one commit
   stamp, so two same-key requests fused together would lose their
   relative order in any stamp-sorted history — a read fused before a
   write of its key would replay as if it ran after. The first request
   that conflicts is stashed in [carry] (still counted in [depth]) and
   leads the next batch, preserving FIFO. *)
let step t ~shard ~thread =
  let q = t.qs.(shard) in
  let take () =
    match q.carry with
    | Some r ->
        q.carry <- None;
        Atomic.decr q.depth;
        Some r
    | None -> try_dequeue t q
  in
  match take () with
  | None -> 0
  | Some first ->
      let keys = Hashtbl.create 16 in
      let note_keys r =
        Array.iter
          (fun op ->
            match op with
            | Store.Scan _ -> ()
            | op -> Hashtbl.replace keys (Store.op_key op) ())
          r.r_ops
      in
      let conflicts r =
        Array.exists
          (fun op ->
            match op with
            | Store.Scan _ -> true
            | op -> Hashtbl.mem keys (Store.op_key op))
          r.r_ops
      in
      note_keys first;
      let reqs = ref [ first ] in
      let nops = ref (Array.length first.r_ops) in
      let continue = ref true in
      while !continue && !nops < t.drain_ops do
        match try_dequeue t q with
        | None -> continue := false
        | Some r ->
            if conflicts r then begin
              q.carry <- Some r;
              Atomic.incr q.depth;
              continue := false
            end
            else begin
              note_keys r;
              reqs := r :: !reqs;
              nops := !nops + Array.length r.r_ops
            end
      done;
      let reqs = Array.of_list (List.rev !reqs) in
      Dst.point Dst.Svc_drain;
      let ops = Array.concat (Array.to_list (Array.map (fun r -> r.r_ops) reqs)) in
      let t0 = Telemetry.now_ns () in
      let replies = t.exec ~shard ~thread ops in
      let t1 = Telemetry.now_ns () in
      let n = Array.length reqs in
      if n > 0 then note_service_time q ((t1 - t0) / n);
      let off = ref 0 in
      Array.iter
        (fun r ->
          let len = Array.length r.r_ops in
          complete r.r_cell (Array.sub replies !off len);
          off := !off + len)
        reqs;
      Atomic.set q.drained_reqs (Atomic.get q.drained_reqs + n);
      Atomic.incr q.drained_batches;
      n

let worker t shard () =
  Tm.Thread.with_registered (fun thread ->
      let q = t.qs.(shard) in
      let idle = ref 0 in
      let running = ref true in
      while !running do
        let n = step t ~shard ~thread in
        if n > 0 then idle := 0
        else if Atomic.get t.stop then running := false
        else begin
          incr idle;
          if !idle <= 64 then Domain.cpu_relax ()
          else begin
            (* park until a producer signals: spinning here would burn a
               whole OS timeslice that the clients need *)
            Mutex.lock q.mu;
            Atomic.set q.sleeping true;
            if Atomic.get q.depth = 0 && not (Atomic.get t.stop) then
              Condition.wait q.wake q.mu;
            Atomic.set q.sleeping false;
            Mutex.unlock q.mu;
            idle := 0
          end
        end
      done;
      t.finalize ~thread)

(* ---- lifecycle ---- *)

let create ?(queue_capacity = default_queue_capacity)
    ?(drain_ops = default_drain_ops) ?slo_ns ?(spawn = true) ~shards ~exec
    ~finalize () =
  if shards < 1 then invalid_arg "Pool.create: shards must be >= 1";
  if queue_capacity < 2 || queue_capacity land (queue_capacity - 1) <> 0 then
    invalid_arg "Pool.create: queue_capacity must be a power of two >= 2";
  let t =
    {
      qs = Array.init shards (fun _ -> queue_make queue_capacity);
      mask = queue_capacity - 1;
      drain_ops = max 1 drain_ops;
      slo_ns;
      exec;
      finalize;
      stop = Atomic.make false;
      workers = [||];
      shed_low = Pad.atomic 0;
      shed_high = Pad.atomic 0;
      deferred = Pad.atomic 0;
      lag_ns = Pad.atomic 0;
      max_depth = Pad.atomic 0;
    }
  in
  if spawn then
    t.workers <- Array.init shards (fun s -> Domain.spawn (worker t s));
  t

let shutdown t =
  if not (Atomic.get t.stop) then begin
    Atomic.set t.stop true;
    Array.iter
      (fun q ->
        Mutex.lock q.mu;
        Condition.broadcast q.wake;
        Mutex.unlock q.mu)
      t.qs;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* ---- observation ---- *)

let queue_depth t ~shard = Atomic.get t.qs.(shard).depth

let depth t =
  Array.fold_left (fun a q -> a + Atomic.get q.depth) 0 t.qs

let slo_ns t = t.slo_ns
let lag_ewma_ns t = Atomic.get t.lag_ns

let counters t =
  let drained =
    Array.fold_left (fun a q -> a + Atomic.get q.drained_reqs) 0 t.qs
  in
  let batches =
    Array.fold_left (fun a q -> a + Atomic.get q.drained_batches) 0 t.qs
  in
  [
    ("queue_depth", depth t);
    ("queue_max_depth", Atomic.get t.max_depth);
    ("drained_requests", drained);
    ("drained_batches", batches);
    ("shed_low", Atomic.get t.shed_low);
    ("shed_high", Atomic.get t.shed_high);
    ("deferred_high", Atomic.get t.deferred);
  ]
