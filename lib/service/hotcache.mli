(** Hot-key read cache in front of the service router.

    A small direct-mapped per-shard table of [Get] replies, versioned by
    a per-shard invalidation epoch keyed to the TM clock: entries
    remember the epoch observed before their lookup transaction, writers
    bump the epoch inside commit (gates still held), and a hit is served
    only while the epoch is unchanged — so a hit is always a reply the
    shard could still give at some stamp in the entry's lifetime, and
    cached histories stay serializable. Every hit runs the TxSan
    {!San.cache_hit} freshness check against the shard's published
    last-committed-write stamp (DESIGN.md, decision 13). *)

type t

val create : ?capacity:int -> shards:int -> unit -> t
(** [capacity] (default 256, rounded up to a power of two) is the slot
    count of each shard's direct-mapped table. *)

val epoch : t -> shard:int -> int
(** The shard's current invalidation epoch. Read it {e before} running
    the lookup transaction and pass it to {!note}. *)

val find : t -> shard:int -> thread:int -> int -> Harness.Store.reply option
(** Serve a [Get key] from cache if a valid entry exists. Counts a hit or
    a miss either way. *)

val note : t -> shard:int -> epoch0:int -> int -> Harness.Store.reply -> unit
(** Populate from a lookup reply ([Found]/[Absent] outcomes only;
    anything else is ignored). [epoch0] is the {!epoch} sample taken
    before the lookup ran; if a write has committed since, the entry is
    dead on arrival rather than stale. *)

val bump : t -> shard:int -> stamp:int -> unit
(** A write committed at [stamp] against [shard]: advance the epoch
    (invalidating every cached entry of the shard) and publish the stamp
    for the freshness check. Call while the shard's gate is still held.
    Under the [Dst.Inject.Stale_cache] bug the invalidation is skipped
    while the stamp still publishes — the forgotten-invalidation fault
    the TxSan {!San.cache_hit} rule exists to catch. *)

val stats : t -> (string * int) list
(** [cache_hits] / [cache_misses] / [cache_invalidations]. *)

val hit_rate : t -> float
