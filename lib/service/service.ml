(* Sharded KV service: a router in front of N independent stores.

   Every shard is a complete stack — its own Mempool, its own HOH
   structure, its own telemetry — built from one Factories.Spec. Keys
   hash to shards; single-key traffic and same-shard batches run under a
   per-shard shared gate, cross-shard multi-key operations take the
   involved shards' gates exclusively (in ascending shard order) and run
   two-phase commit over per-shard transactions. The gates carry no data:
   they only exclude multis from overlapping the shards they span, so the
   per-shard TM stamps of a multi's sub-transactions are a valid global
   serialization (DESIGN.md, decision 10).

   Three optional layers ride in front of the router (DESIGN.md,
   decision 13):

   - a hot-key read cache ({!Hotcache}): single-key Gets are answered
     from a per-shard versioned table when valid, skipping the gate and
     the transaction entirely; every write path bumps the owning shard's
     invalidation epoch while its gate is still held (a 2PC multi bumps
     every touched shard before releasing any gate);
   - per-shard worker pools ({!Pool}): {!submit} enqueues an operation
     group on the owning shard's bounded queue and returns a ticket; the
     shard's worker drains the queue head into one fused batch;
   - SLO admission control: the pool's controller sheds low-priority
     submissions with an [Overload] reply when the projected p99 lag
     exceeds the configured SLO. *)

open Harness

(* The service library is wrapped behind this module; re-export the
   front layers so benches and white-box tests can reach them. *)
module Worker_pool = Pool
module Hot_cache = Hotcache

type priority = Pool.priority = High | Low

type gate = { word : int Atomic.t; readers : int Atomic.t }
(* [word] = 0 free, or owner thread id + 1 (exclusive). [readers] counts
   single-op traffic currently inside the shard. *)

let gate_make () = { word = Pad.atomic 0; readers = Pad.atomic 0 }

let rec enter_shared g =
  if Atomic.get g.word = 0 then begin
    Atomic.incr g.readers;
    (* recheck: a writer may have claimed the gate between the load and
       the increment; back out so it is not stuck waiting on us *)
    if Atomic.get g.word <> 0 then begin
      Atomic.decr g.readers;
      Dst.point Dst.Svc_gate;
      Domain.cpu_relax ();
      enter_shared g
    end
  end
  else begin
    Dst.point Dst.Svc_gate;
    Domain.cpu_relax ();
    enter_shared g
  end

let exit_shared g = Atomic.decr g.readers

let enter_excl g ~thread =
  while not (Atomic.compare_and_set g.word 0 (thread + 1)) do
    Dst.point Dst.Svc_gate;
    Domain.cpu_relax ()
  done;
  while Atomic.get g.readers > 0 do
    Dst.point Dst.Svc_gate;
    Domain.cpu_relax ()
  done

let exit_excl g = Atomic.set g.word 0

(* ---- cross-shard intent log ---- *)

type sub_state =
  | Pending  (** not yet applied *)
  | Applying  (** apply in flight: effect may or may not have landed *)
  | Applied of Store.op option  (** applied; the compensating op, if any *)

type intent = {
  i_thread : int;
  i_subs : (int * Store.op * sub_state ref) array;  (** (shard, op, state) *)
}

type counters = {
  singles : int Atomic.t;
  batches : int Atomic.t;
  multis : int Atomic.t;
  multi_aborts : int Atomic.t;
  recovered : int Atomic.t;
}

type t = {
  label : string;
  stores : Store.t array;
  gates : gate array;
  fuse : bool;
  inflight : intent option array;  (* indexed by TM thread id *)
  c : counters;
  cache : Hotcache.t option;
  mutable pool : Pool.t option;
      (* mutable only to tie the knot: the pool's exec closure needs [t] *)
}

let label t = t.label
let shards t = Array.length t.stores

(* Deterministic key-to-shard routing: a 63-bit splitmix-style finalizer
   so adjacent keys scatter instead of striping. *)
let mix k =
  let k = k * 0x20ab53db4bb37 in
  let k = k lxor (k lsr 29) in
  let k = k * 0x4cf5ad432745937 in
  (k lxor (k lsr 32)) land max_int

let shard_of_key t k = mix k mod Array.length t.stores

let with_shared t s f =
  enter_shared t.gates.(s);
  Fun.protect ~finally:(fun () -> exit_shared t.gates.(s)) f

(* ---- hot-cache maintenance ---- *)

(* A write committed at [stamp] against [shard]: invalidate the shard's
   cache. Callers still hold the shard's gate. The [Stale_cache] injected
   bug (handled inside {!Hotcache.bump}) skips the invalidation while
   the published last-write stamp still advances — the TxSan freshness
   rule catches the resulting stale hits. *)
let bump_cache t ~shard ~stamp =
  match t.cache with
  | Some c -> Hotcache.bump c ~shard ~stamp
  | None -> ()

(* Post-batch cache maintenance, run while the shard's gate is held:
   bump for every reply that mutated the shard, then populate from Get
   replies under the pre-batch epoch (stillborn if any write — ours or a
   concurrent one — has committed since [epoch0] was read). *)
let cache_after_batch t ~shard ~epoch0 ops replies =
  match t.cache with
  | None -> ()
  | Some cache ->
      Array.iteri
        (fun i (r : Store.reply) ->
          match r.Store.outcome with
          | Store.Inserted | Store.Removed ->
              bump_cache t ~shard ~stamp:r.Store.stamp
          | Store.Found | Store.Absent -> (
              match ops.(i) with
              | Store.Get k -> Hotcache.note cache ~shard ~epoch0 k r
              | _ -> ())
          | _ -> ())
        replies

(* The workhorse for same-shard operation groups: one [Store.batch] —
   fused into a single transaction when the service fuses — under the
   shard's shared gate, with cache maintenance before the gate drops.
   Both the synchronous paths and the pool workers land here. *)
let run_shard_ops t ~shard ~thread ops =
  let epoch0 =
    match t.cache with Some c -> Hotcache.epoch c ~shard | None -> 0
  in
  with_shared t shard (fun () ->
      let replies = Store.batch ~fuse:t.fuse t.stores.(shard) ~thread ops in
      cache_after_batch t ~shard ~epoch0 ops replies;
      replies)

(* ---- construction ---- *)

let create ?shards ?fuse ?pool ?hotcache ?slo_us ?(pool_spawn = true)
    (spec : Factories.Spec.t) =
  let knob o spec_v default =
    match o with Some v -> v | None -> Option.value spec_v ~default
  in
  let n = knob shards spec.Factories.Spec.shards 1 in
  if n < 1 then invalid_arg "Service.create: shards must be >= 1";
  let fuse = knob fuse spec.Factories.Spec.fuse true in
  let pool_on = knob pool spec.Factories.Spec.pool false in
  let cache_on = knob hotcache spec.Factories.Spec.hotcache false in
  let slo_us =
    match slo_us with Some _ -> slo_us | None -> spec.Factories.Spec.slo_us
  in
  if slo_us <> None && not pool_on then
    invalid_arg "Service.create: slo_us requires pool";
  let f = Factories.make spec in
  let t =
    {
      label =
        Factories.Spec.label
          {
            spec with
            Factories.Spec.shards = Some n;
            pool = (if pool_on then Some true else spec.Factories.Spec.pool);
            hotcache =
              (if cache_on then Some true else spec.Factories.Spec.hotcache);
            slo_us;
          };
      stores = Array.init n (fun _ -> f.Factories.make ());
      gates = Array.init n (fun _ -> gate_make ());
      fuse;
      inflight = Array.make Tm.Thread.max_threads None;
      c =
        {
          singles = Atomic.make 0;
          batches = Atomic.make 0;
          multis = Atomic.make 0;
          multi_aborts = Atomic.make 0;
          recovered = Atomic.make 0;
        };
      cache = (if cache_on then Some (Hotcache.create ~shards:n ()) else None);
      pool = None;
    }
  in
  if pool_on then
    t.pool <-
      Some
        (Pool.create
           ?slo_ns:(Option.map (fun us -> us * 1_000) slo_us)
           ~spawn:pool_spawn ~shards:n
           ~exec:(fun ~shard ~thread ops -> run_shard_ops t ~shard ~thread ops)
           ~finalize:(fun ~thread ->
             Array.iter (fun st -> Store.finalize_thread st ~thread) t.stores)
           ());
  (match t.pool with
  | Some p when Telemetry.enabled () ->
      Telemetry.Gauges.register ~group:"service" ~name:"queue_depth" (fun () ->
          List.map
            (fun (k, v) -> (k, float_of_int v))
            (Pool.counters p))
  | _ -> ());
  (match t.cache with
  | Some c when Telemetry.enabled () ->
      Telemetry.Gauges.register ~group:"service" ~name:"cache_hits" (fun () ->
          ("hit_rate", Hotcache.hit_rate c)
          :: List.map (fun (k, v) -> (k, float_of_int v)) (Hotcache.stats c))
  | _ -> ());
  t

(* ---- single-key and same-shard traffic ---- *)

let overload_reply = { Store.outcome = Store.Overload; earliest = 0; stamp = 0 }

let exec_point t ~thread op =
  Atomic.incr t.c.singles;
  let s = shard_of_key t (Store.op_key op) in
  match (op, t.cache) with
  | Store.Get k, Some cache -> (
      match Hotcache.find cache ~shard:s ~thread k with
      | Some r -> r
      | None ->
          let epoch0 = Hotcache.epoch cache ~shard:s in
          with_shared t s (fun () ->
              let r = Store.exec t.stores.(s) ~thread op in
              (match r.Store.outcome with
              | Store.Found | Store.Absent ->
                  Hotcache.note cache ~shard:s ~epoch0 k r
              | _ -> ());
              r))
  | _ ->
      with_shared t s (fun () ->
          let r = Store.exec t.stores.(s) ~thread op in
          (match r.Store.outcome with
          | Store.Inserted | Store.Removed ->
              bump_cache t ~shard:s ~stamp:r.Store.stamp
          | _ -> ());
          r)

(* A scan's range spans shards under hash routing, so the service
   decomposes it into per-shard Get probes (each sub-batch under that
   shard's gate, fused when the service fuses) and merges the hits. The
   result is interval-linearized across [earliest, stamp], like
   Store-level scans. *)
let exec_scan t ~thread ~low ~count =
  if count < 0 then invalid_arg "Service.exec: negative scan count";
  let n = Array.length t.stores in
  let keys_of_shard = Array.make n [] in
  for k = low + count - 1 downto low do
    let s = shard_of_key t k in
    keys_of_shard.(s) <- k :: keys_of_shard.(s)
  done;
  let hits = ref [] and earliest = ref max_int and stamp = ref 0 in
  for s = n - 1 downto 0 do
    match keys_of_shard.(s) with
    | [] -> ()
    | keys ->
        let ops = Array.of_list (List.map (fun k -> Store.Get k) keys) in
        let replies = run_shard_ops t ~shard:s ~thread ops in
        Array.iteri
          (fun i r ->
            earliest := min !earliest r.Store.earliest;
            stamp := max !stamp r.Store.stamp;
            if Store.positive r.Store.outcome then
              hits := Store.op_key ops.(i) :: !hits)
          replies
  done;
  let hits = List.sort compare !hits in
  {
    Store.outcome = Store.Keys hits;
    earliest = (if !earliest = max_int then 0 else !earliest);
    stamp = !stamp;
  }

let exec t ~thread op =
  match op with
  | Store.Scan { low; count } -> exec_scan t ~thread ~low ~count
  | _ -> exec_point t ~thread op

(* Group a batch by shard (preserving per-shard issue order), run each
   shard's sub-batch under its shared gate as one Store.batch — fused
   into a single transaction when the service fuses — and scatter the
   replies back to the request positions. Scans are executed inline: they
   span shards, so they cannot join a sub-batch. *)
let exec_batch t ~thread ops =
  Atomic.incr t.c.batches;
  let n = Array.length t.stores in
  let by_shard = Array.make n [] in
  Array.iteri
    (fun i op ->
      match op with
      | Store.Scan _ -> ()
      | op -> (
          let s = shard_of_key t (Store.op_key op) in
          by_shard.(s) <- (i, op) :: by_shard.(s)))
    ops;
  let replies =
    Array.make (Array.length ops)
      { Store.outcome = Store.Absent; earliest = 0; stamp = 0 }
  in
  for s = 0 to n - 1 do
    match List.rev by_shard.(s) with
    | [] -> ()
    | subs ->
        let idx = Array.of_list (List.map fst subs) in
        let sub_ops = Array.of_list (List.map snd subs) in
        let rs = run_shard_ops t ~shard:s ~thread sub_ops in
        Array.iteri (fun j r -> replies.(idx.(j)) <- r) rs
  done;
  Array.iteri
    (fun i op ->
      match op with
      | Store.Scan { low; count } -> replies.(i) <- exec_scan t ~thread ~low ~count
      | _ -> ())
    ops;
  replies

(* ---- cross-shard multi-key operations: two-phase commit ---- *)

type multi_result =
  | Committed of Store.reply array
  | Aborted of int
      (** index of the first operation whose precondition failed; no
          effect was applied *)

let check_multi_ops ops =
  let seen = Hashtbl.create 8 in
  Array.iter
    (fun op ->
      match op with
      | Store.Scan _ -> invalid_arg "Service.multi: scans are not multi ops"
      | Store.Get _ -> ()
      | Store.Insert k | Store.Remove k ->
          if Hashtbl.mem seen k then
            invalid_arg "Service.multi: duplicate write key"
          else Hashtbl.add seen k ())
    ops

let undo_of = function
  | Store.Insert k -> Some (Store.Remove k)
  | Store.Remove k -> Some (Store.Insert k)
  | Store.Get _ | Store.Scan _ -> None

(* Compensate the already-applied prefix, most recent first. Runs with
   the gates still held, so the rollback is invisible to other threads:
   they observe either nothing or the full multi. *)
let rollback t ~thread intent =
  let n = Array.length intent.i_subs in
  for j = n - 1 downto 0 do
    let s, _, state = intent.i_subs.(j) in
    match !state with
    | Applied (Some undo) ->
        let r = Store.exec t.stores.(s) ~thread undo in
        (* the compensation is a write too: invalidate the shard's cache
           before the gate drops *)
        bump_cache t ~shard:s ~stamp:r.Store.stamp;
        state := Pending
    | Applied None -> state := Pending
    | Applying | Pending -> state := Pending
  done

let release_gates t intent =
  let released = Hashtbl.create 8 in
  Array.iter
    (fun (s, _, _) ->
      if not (Hashtbl.mem released s) then begin
        Hashtbl.add released s ();
        exit_excl t.gates.(s)
      end)
    intent.i_subs

let multi t ~thread ops =
  check_multi_ops ops;
  Atomic.incr t.c.multis;
  let subs =
    Array.map (fun op -> (shard_of_key t (Store.op_key op), op, ref Pending)) ops
  in
  let intent = { i_thread = thread; i_subs = subs } in
  let gate_shards =
    List.sort_uniq compare (Array.to_list (Array.map (fun (s, _, _) -> s) subs))
  in
  (* Publish the intent before taking the first gate: if this thread dies
     anywhere past this point, [recover] can find the intent, resolve the
     sub-states, and free the gates (gate words name their owner). *)
  t.inflight.(thread) <- Some intent;
  List.iter
    (fun s ->
      Dst.point Dst.Svc_gate;
      enter_excl t.gates.(s) ~thread)
    gate_shards;
  (* Phase 1 — prepare: check every precondition with read-only probes.
     The exclusive gates freeze the involved shards, so a probe's verdict
     still holds when phase 2 applies. *)
  let n = Array.length ops in
  let replies =
    Array.make n { Store.outcome = Store.Absent; earliest = 0; stamp = 0 }
  in
  let failed = ref (-1) in
  (try
     for i = 0 to n - 1 do
       Dst.point Dst.Svc_prepare;
       let s, op, _ = subs.(i) in
       let key = Store.op_key op in
       let probe = Store.get t.stores.(s) ~thread key in
       let ok =
         match op with
         | Store.Get _ ->
             replies.(i) <- probe;
             true
         | Store.Insert _ -> probe.Store.outcome = Store.Absent
         | Store.Remove _ -> probe.Store.outcome = Store.Found
         | Store.Scan _ -> assert false
       in
       if not ok && !failed < 0 then begin
         failed := i;
         raise Exit
       end
     done;
     (* Phase 2 — apply. Every sub-operation must succeed: prepare
        established the preconditions and the gates exclude interference.
        A failure here is an environment fault (e.g. injected allocation
        failure) and triggers compensating rollback. *)
     for i = 0 to n - 1 do
       let s, op, state = subs.(i) in
       match op with
       | Store.Get _ -> state := Applied None
       | op ->
           Dst.point Dst.Svc_apply;
           state := Applying;
           let r = Store.exec t.stores.(s) ~thread op in
           if not (Store.positive r.Store.outcome) then
             failwith "Service.multi: apply contradicted prepare";
           replies.(i) <- r;
           (* invalidate while this shard's exclusive gate (and every
              other touched shard's) is still held: no cache hit can
              observe a partially-visible multi *)
           bump_cache t ~shard:s ~stamp:r.Store.stamp;
           state := Applied (undo_of op)
     done
   with
  | Exit -> ()
  | Dst.Killed as e ->
      (* Scheduler abandonment mid-2PC: deliberately leave the intent and
         the gates in place — the unwinding context must not run store
         transactions — and let an explicit {!recover} resolve them. *)
      raise e
  | e ->
      if not (Dst.Inject.bug Dst.Inject.Tear_2pc) then rollback t ~thread intent;
      release_gates t intent;
      t.inflight.(thread) <- None;
      raise e);
  if !failed >= 0 then begin
    Atomic.incr t.c.multi_aborts;
    release_gates t intent;
    t.inflight.(thread) <- None;
    Aborted !failed
  end
  else begin
    release_gates t intent;
    t.inflight.(thread) <- None;
    Committed replies
  end

(* ---- post-crash resolution ---- *)

let recover t =
  let tid = Tm.Thread.id () in
  let resolved = ref 0 in
  Array.iteri
    (fun owner slot ->
      match slot with
      | None -> ()
      | Some intent ->
          incr resolved;
          Atomic.incr t.c.recovered;
          (* Resolve ambiguous sub-states first: the gates were held from
             before the first probe, so the shard cannot have moved under
             the dead thread — a probe tells exactly whether the apply
             landed. *)
          Array.iter
            (fun (s, op, state) ->
              match !state with
              | Applying -> (
                  let probe = Store.get t.stores.(s) ~thread:tid (Store.op_key op) in
                  let landed =
                    match op with
                    | Store.Insert _ -> probe.Store.outcome = Store.Found
                    | Store.Remove _ -> probe.Store.outcome = Store.Absent
                    | Store.Get _ | Store.Scan _ -> false
                  in
                  state := (if landed then Applied (undo_of op) else Pending))
              | Pending | Applied _ -> ())
            intent.i_subs;
          rollback t ~thread:tid intent;
          (* Free every gate the dead thread owned — including gates it
             acquired before dying mid-acquisition loop. *)
          Array.iter
            (fun g ->
              if Atomic.get g.word = intent.i_thread + 1 then exit_excl g)
            t.gates;
          t.inflight.(owner) <- None)
    t.inflight;
  !resolved

(* ---- asynchronous submission ---- *)

type ticket =
  | Done of Store.reply array  (** answered synchronously (cache hit,
                                   no pool, or cross-shard fallback) *)
  | Queued of Pool.ticket
  | Shed of int  (** rejected by admission control; op count *)

(* The shard an operation group can be queued on: all ops must route to
   one shard, and scans never queue (they span shards). *)
let queueable_shard t ops =
  let rec go i acc =
    if i >= Array.length ops then acc
    else
      match ops.(i) with
      | Store.Scan _ -> None
      | op -> (
          let s = shard_of_key t (Store.op_key op) in
          match acc with
          | Some s' when s' <> s -> None
          | _ -> go (i + 1) (Some s))
  in
  go 0 None

let submit t ~thread ?(priority = Pool.High) ops =
  if Array.length ops = 0 then Done [||]
  else begin
    (* cache fast path: a lone Get answered without touching a queue, a
       gate, or a transaction — this is where hot-key traffic wins *)
    let hit =
      match (ops, t.cache) with
      | [| Store.Get k |], Some cache ->
          Hotcache.find cache ~shard:(shard_of_key t k) ~thread k
      | _ -> None
    in
    match hit with
    | Some r ->
        Atomic.incr t.c.singles;
        Done [| r |]
    | None -> (
        match t.pool with
        | None ->
            Done
              (if Array.length ops = 1 then [| exec t ~thread ops.(0) |]
               else exec_batch t ~thread ops)
        | Some p -> (
            match queueable_shard t ops with
            | None -> Done (exec_batch t ~thread ops)
            | Some s -> (
                (* the cache-miss Get enqueues; the worker's batch path
                   populates the entry for the next hit *)
                match Pool.submit p ~shard:s ~priority ops with
                | `Ticket tk ->
                    if Array.length ops = 1 then Atomic.incr t.c.singles
                    else Atomic.incr t.c.batches;
                    Queued tk
                | `Shed -> Shed (Array.length ops))))
  end

let await _t = function
  | Done rs -> rs
  | Queued tk -> Pool.await tk
  | Shed n -> Array.make n overload_reply

let try_await _t = function
  | Done rs -> Some rs
  | Queued tk -> Pool.try_await tk
  | Shed n -> Some (Array.make n overload_reply)

(* One worker-loop body, for DST scenarios driving drains from logical
   threads (the pool is created with [pool_spawn:false] there). *)
let pool_step t ~shard ~thread =
  match t.pool with None -> 0 | Some p -> Pool.step p ~shard ~thread

let note_lag t ns = Option.iter (fun p -> Pool.note_lag p ns) t.pool

let queue_depth t ~shard =
  match t.pool with None -> 0 | Some p -> Pool.queue_depth p ~shard

let queued t = match t.pool with None -> 0 | Some p -> Pool.depth p
let pooled t = Option.is_some t.pool

let overloaded t ~shard =
  match t.pool with None -> false | Some p -> Pool.overloaded p ~shard

let shutdown t = Option.iter Pool.shutdown t.pool

let cache_hit_rate t =
  match t.cache with None -> 0. | Some c -> Hotcache.hit_rate c

(* ---- whole-service views ---- *)

let counters t =
  [
    ("singles", Atomic.get t.c.singles);
    ("batches", Atomic.get t.c.batches);
    ("multis", Atomic.get t.c.multis);
    ("multi_aborts", Atomic.get t.c.multi_aborts);
    ("recovered", Atomic.get t.c.recovered);
  ]
  @ (match t.pool with Some p -> Pool.counters p | None -> [])
  @ match t.cache with Some c -> Hotcache.stats c | None -> []

let finalize_thread t ~thread =
  Array.iter (fun st -> Store.finalize_thread st ~thread) t.stores

let drain t = Array.iter Store.drain t.stores
let size t = Array.fold_left (fun a st -> a + Store.size st) 0 t.stores

let contents t =
  List.sort compare (List.concat_map Store.contents (Array.to_list t.stores))

let sum_opt f t =
  Array.fold_left
    (fun acc st ->
      match (acc, f st) with
      | Some a, Some v -> Some (a + v)
      | None, v -> v
      | acc, None -> acc)
    None t.stores

let pool_live t = sum_opt Store.pool_live t
let leaked t = sum_opt Store.leaked t

let max_backlog t =
  Array.fold_left
    (fun acc st ->
      match (acc, Store.max_backlog st) with
      | Some a, Some v -> Some (max a v)
      | None, v -> v
      | acc, None -> acc)
    None t.stores

let check t =
  let ( let* ) = Result.bind in
  let* () =
    Array.fold_left
      (fun acc (i, st) ->
        let* () = acc in
        match Store.check st with
        | Ok () -> Ok ()
        | Error e -> Error (Printf.sprintf "shard %d: %s" i e))
      (Ok ())
      (Array.mapi (fun i st -> (i, st)) t.stores)
  in
  let* () =
    if Array.exists Option.is_some t.inflight then
      Error "unresolved in-flight multi intent (recover not run?)"
    else Ok ()
  in
  let* () =
    match t.pool with
    | Some p when Pool.depth p > 0 ->
        Error
          (Printf.sprintf "%d requests still queued (shutdown not run?)"
             (Pool.depth p))
    | _ -> Ok ()
  in
  let* () =
    match
      Array.find_index (fun g -> Atomic.get g.word <> 0) t.gates
    with
    | Some i -> Error (Printf.sprintf "gate %d still held" i)
    | None -> Ok ()
  in
  (* shards partition the keyspace: a key routed to shard s must never
     surface from another shard *)
  let misrouted = ref None in
  Array.iteri
    (fun s st ->
      List.iter
        (fun k ->
          if shard_of_key t k <> s && !misrouted = None then
            misrouted := Some (k, s))
        (Store.contents st))
    t.stores;
  match !misrouted with
  | Some (k, s) ->
      Error (Printf.sprintf "key %d found in shard %d, routes to %d" k s
               (shard_of_key t k))
  | None -> Ok ()

(* ---- the service as a Store ----

   The router satisfies Store_intf.S itself, so anything that drives a
   store — the benchmark driver and its serialization checker included —
   can drive a sharded service unchanged. *)

module As_store = struct
  type nonrec t = t

  let name t = t.label
  let stamped t = Array.for_all Store.stamped t.stores
  let get t ~thread k = exec t ~thread (Store.Get k)
  let insert t ~thread k = exec t ~thread (Store.Insert k)
  let remove t ~thread k = exec t ~thread (Store.Remove k)
  let scan t ~thread ~low ~count = exec_scan t ~thread ~low ~count
  let batch t ~thread ~fuse:_ ops = exec_batch t ~thread ops
  let stats t = Telemetry.Report.snapshot ~label:t.label ()
  let finalize_thread = finalize_thread
  let drain = drain
  let size = size
  let contents = contents
  let check = check
  let pool_live = pool_live
  let max_backlog = max_backlog
  let leaked = leaked
end

let as_store t = Store.pack (module As_store : Store.S with type t = t) t
