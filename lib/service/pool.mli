(** Per-shard worker pools: bounded MPSC request queues, dedicated drain
    domains that fuse queued requests into batched transactions, and
    SLO-driven admission control.

    The pool is generic over execution: {!create} takes an [exec]
    closure (run these ops against this shard, under whatever locking
    the owner requires) so the service layer can pass its gated
    [Store.batch ~fuse] path without a dependency cycle.

    With [spawn:false] no worker domains start; a DST scenario drives
    {!step} from logical threads, and {!submit}/{!await} yield at the
    [Svc_enqueue] site so enqueue/drain interleavings replay
    deterministically. *)

type t

type priority = High | Low
(** {!Low} requests are shed with [`Shed] when the admission controller
    projects the SLO blown; {!High} requests are always admitted (and
    counted as deferred when admitted during overload). *)

type ticket
(** A pending submission's completion cell. *)

val create :
  ?queue_capacity:int ->
  ?drain_ops:int ->
  ?slo_ns:int ->
  ?spawn:bool ->
  shards:int ->
  exec:(shard:int -> thread:int -> Harness.Store.op array -> Harness.Store.reply array) ->
  finalize:(thread:int -> unit) ->
  unit ->
  t
(** [queue_capacity] (default 1024, power of two) bounds each shard's
    ring. [drain_ops] (default 64) caps the operations fused into one
    drained batch. [slo_ns] enables admission control; without it
    nothing is ever shed. [finalize] runs on each worker's registered
    thread as it exits (epoch-reclamation handoff). *)

val submit :
  t -> shard:int -> priority:priority -> Harness.Store.op array ->
  [ `Ticket of ticket | `Shed ]
(** Enqueue an operation group on [shard]'s queue. Returns [`Shed]
    without executing anything when the controller rejects a [Low]
    request (SLO projected blown, or ring full under an SLO). A full
    ring otherwise spins — backpressure, not overload. *)

val await : ticket -> Harness.Store.reply array
(** Block until the worker has executed the submission. Under DST this
    spins through the scheduler instead of blocking the domain. *)

val try_await : ticket -> Harness.Store.reply array option
(** Non-blocking poll. *)

val step : t -> shard:int -> thread:int -> int
(** Drain one fused batch from [shard]'s queue head: pops requests up to
    the fusion budget, runs them through [exec] as one batch, scatters
    replies. Returns the number of requests completed (0 when idle).
    This is the worker loop body; DST scenarios call it directly.

    Fusion never merges two requests touching the same key into one
    batch (their replies would share one commit stamp and lose their
    order in a stamp-sorted history); the conflicting request is held
    back, still counted queued, and leads the next batch. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Workers drain their queues before
    exiting, so no admitted request is abandoned. Idempotent. *)

val note_lag : t -> int -> unit
(** Report an observed open-loop schedule lag (ns); folded into the
    admission controller's EWMA lag signal. *)

val overloaded : t -> shard:int -> bool
(** Would a [Low] arrival for [shard] be shed right now? True when
    either the queue projection or the lag EWMA exceeds half the SLO —
    the half is tail headroom: both signals track means, the SLO
    constrains a p99. *)

val projected_lag_ns : t -> shard:int -> int
(** (depth + 1) x decaying-max per-request service time. *)

val queue_depth : t -> shard:int -> int

val depth : t -> int
(** Total queued requests across shards. *)

val slo_ns : t -> int option
val lag_ewma_ns : t -> int

val counters : t -> (string * int) list
(** [queue_depth], [queue_max_depth], [drained_requests],
    [drained_batches], [shed_low], [shed_high], [deferred_high]. *)
