(** Explicit pool allocation: the substrate that makes reclamation
    {e precise} and observable.

    The paper's data structures run in C++ and call [delete] the moment a
    node is unlinked; the entire point of revocable reservations is to make
    that immediate [free] safe. OCaml is garbage-collected, so we simulate
    an explicit allocator: nodes are recycled through pools, a freed node is
    poisoned and may be handed out again immediately (reproducing the
    reuse/ABA hazards the paper targets), and misuse — double free, free of
    a foreign node — is detected rather than corrupting memory.

    Two placement strategies reproduce the allocator sensitivity of Fig. 5:

    - {!Size_class} ("J-", jemalloc-like): one global lock-free freelist per
      pool; every allocation and free performs a CAS on the shared head, so
      allocator metadata is a contention point.
    - {!Thread_arena} ("H-", Hoard-like): per-thread freelists exchanging
      whole batches with a global batch stack, so the common case touches
      only thread-local state.

    Orthogonally, [~magazines:true] layers a jemalloc-tcache-style cache
    in front of either strategy: each thread holds two magazines of
    [batch] slot ids (a loaded one and a spare), so hot alloc/free never
    touches a shared CAS; only whole-magazine refills/spills go through
    the global depot, and {!drain_magazines} returns the cached slots at
    quiescence so live/free accounting stays exact. *)

type strategy = Size_class | Thread_arena

val strategy_name : strategy -> string
(** ["J-size-class"] or ["H-thread-arena"], echoing the paper's curve
    prefixes. *)

module Stats : sig
  type t = {
    allocs : int;  (** successful allocations *)
    frees : int;  (** successful frees *)
    fresh : int;  (** nodes created anew (pool misses) *)
    global_ops : int;  (** operations that touched the shared freelist *)
    live : int;  (** currently outstanding nodes *)
    high_water : int;  (** maximum simultaneous live nodes *)
    magazine_hits : int;
        (** alloc/free served entirely from a thread's magazines *)
    magazine_misses : int;
        (** alloc/free that had to exchange a magazine with the depot (or
            fall through to the strategy path) *)
  }

  val pp : Format.formatter -> t -> unit
end

exception Double_free of int
(** Raised (with the node id) when a node is freed twice, or freed without
    having been allocated. *)

type 'a t

val create :
  ?strategy:strategy ->
  ?batch:int ->
  ?magazines:bool ->
  make:(int -> 'a) ->
  node_id:('a -> int) ->
  state:('a -> int Atomic.t) ->
  ?poison:('a -> unit) ->
  ?tvar_ids:('a -> int list) ->
  ?probe_ids:('a -> int list) ->
  unit ->
  'a t
(** [create ~make ~node_id ~state ()] builds a pool of nodes fabricated by
    [make id] (each with a unique id — the node's simulated address, which
    [node_id] must return). [state] must return a per-node cell owned by the
    pool; it tracks live/free and catches double frees. [poison] is applied
    when a node is freed, so that any logically-erroneous later use is
    detectable by tests. [batch] sizes the arena-to-global transfer unit for
    {!Thread_arena} (default 32) and the magazine capacity. [magazines]
    (default [false]) enables the per-thread magazine cache. *)

val alloc : 'a t -> thread:int -> 'a
(** Allocate a node: reuse a pooled one if available, else fabricate a fresh
    one. [thread] selects the arena under {!Thread_arena}. *)

val free : 'a t -> thread:int -> 'a -> unit
(** Return a node to the pool, poisoning it. The node may be handed out
    again by a concurrent [alloc] immediately — this immediacy is precisely
    what "precise reclamation" means here.
    @raise Double_free on repeated free. *)

val is_live : 'a t -> 'a -> bool
(** Whether the node is currently allocated (for invariant checks). *)

val id_of : 'a t -> 'a -> int
(** The pool-assigned id of a node. O(1); works on live and freed nodes. *)

val san_key : 'a t -> 'a -> int
(** The node's identity in TxSan's shadow tables: {!San.node_key} over this
    pool's sanitizer group and {!id_of}. [tvar_ids] (optional in
    {!create}) lists the node's tvar uids so the sanitizer can map tvar
    accesses back to the owning slot; pools created without it still track
    slot-level events (alloc/free/reserve/retire) but not tvar-level
    use-after-free. [probe_ids] marks the subset serving as validity flags
    ([deleted]): probing those on a possibly-freed pointer is sanctioned by
    the discipline and exempt from the sanitizer's eager read-UAF rule. *)

val stats : 'a t -> Stats.t
val strategy : 'a t -> strategy
val magazines : 'a t -> bool

val live : 'a t -> int
(** Currently outstanding nodes ([allocs - frees]): two atomic loads, no
    per-thread summation, so it is cheap enough to sample after every
    operation. The soak harness's reclamation-backlog axis is built from
    this trajectory — under RR the value tracks the structure's size
    tightly, while a stalled EBR reader lets it grow with every deferred
    retire. *)

val drain_magazines : 'a t -> thread:int -> unit
(** Return [thread]'s magazine-cached slots to the shared bins (counted
    in [global_ops]). The per-thread watermark-quiescence drain hook: call
    it when a worker quiesces (the structures do, from
    [finalize_thread]). No-op without [magazines]. *)

val flush_arenas : 'a t -> unit
(** Move all arena-held (and magazine-held) nodes to the global freelist.
    Call after worker threads have quiesced, before asserting on
    accounting invariants. *)
