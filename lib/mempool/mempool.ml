type strategy = Size_class | Thread_arena

let strategy_name = function
  | Size_class -> "J-size-class"
  | Thread_arena -> "H-thread-arena"

module Stats = struct
  type t = {
    allocs : int;
    frees : int;
    fresh : int;
    global_ops : int;
    live : int;
    high_water : int;
    magazine_hits : int;
    magazine_misses : int;
  }

  let pp ppf t =
    Format.fprintf ppf
      "allocs=%d frees=%d fresh=%d global_ops=%d live=%d high_water=%d \
       mag_hits=%d mag_misses=%d"
      t.allocs t.frees t.fresh t.global_ops t.live t.high_water
      t.magazine_hits t.magazine_misses
end

exception Double_free of int

(* Node state markers stored in the client-owned cell. *)
let st_free = 0
let st_live = 1

type 'a arena = { mutable nodes : 'a list; mutable count : int }

(* Bonwick-style per-thread magazine pair (jemalloc tcache): [loaded] is
   the working cache, [prev] the spare. Hot alloc/free touch only these
   two thread-owned lists; only a refill from (or a spill of) a whole
   magazine goes through the shared depot. *)
type 'a magazine = {
  mutable loaded : 'a list;
  mutable ln : int;
  mutable prev : 'a list;
  mutable pn : int;
}

type 'a t = {
  strategy : strategy;
  batch : int;
  make : int -> 'a;
  node_id : 'a -> int;
  state : 'a -> int Atomic.t;
  poison : 'a -> unit;
  tvar_ids : 'a -> int list;
  probe_ids : 'a -> int list;
  (* TxSan identity: pools hand out per-pool node ids, so shadow slots are
     keyed by (pool group, node id) packed into one int. *)
  san_group : int;
  next_id : int Atomic.t;
  (* Global freelist. Under [Size_class] nodes are pushed/popped one at a
     time; under [Thread_arena] whole batches move at once. Both are Treiber
     stacks over immutable cons cells, so CAS is ABA-free under OCaml's GC. *)
  global_nodes : 'a list Atomic.t;
  global_batches : 'a list list Atomic.t;
  arenas : 'a arena array;
  (* Magazine layer, in front of the strategy when [magazines] is set.
     Full magazines (of [batch] slots) are exchanged through the
     [global_batches] depot. The hit/miss counters are thread-owned plain
     cells, read only after quiescence. *)
  magazines : bool;
  mags : 'a magazine array;
  mag_hits : int array;
  mag_misses : int array;
  allocs : int Atomic.t;
  frees : int Atomic.t;
  fresh : int Atomic.t;
  global_ops : int Atomic.t;
  high_water : int Atomic.t;
}

let create ?(strategy = Thread_arena) ?(batch = 32) ?(magazines = false)
    ~make ~node_id ~state ?(poison = fun _ -> ())
    ?(tvar_ids = fun _ -> []) ?(probe_ids = fun _ -> []) () =
  if batch < 1 then invalid_arg "Mempool.create: batch < 1";
  let t =
    {
      strategy;
      batch;
      make;
      node_id;
      state;
      poison;
      tvar_ids;
      probe_ids;
      san_group = San.fresh_group ();
      next_id = Atomic.make 0;
      global_nodes = Atomic.make [];
      global_batches = Atomic.make [];
      arenas =
        Array.init Tm.Thread.max_threads (fun _ -> { nodes = []; count = 0 });
      magazines;
      mags =
        Array.init Tm.Thread.max_threads (fun _ ->
            { loaded = []; ln = 0; prev = []; pn = 0 });
      mag_hits = Array.make Tm.Thread.max_threads 0;
      mag_misses = Array.make Tm.Thread.max_threads 0;
      allocs = Atomic.make 0;
      frees = Atomic.make 0;
      fresh = Atomic.make 0;
      global_ops = Atomic.make 0;
      high_water = Atomic.make 0;
    }
  in
  (* Gauge registration happens at construction, so pools built before
     telemetry is switched on cost nothing and report nothing. *)
  if Telemetry.enabled () then
    Telemetry.Gauges.register ~group:"mempool" ~name:(strategy_name strategy)
      (fun () ->
        let allocs = Atomic.get t.allocs and frees = Atomic.get t.frees in
        [
          ("live", float_of_int (allocs - frees));
          ("freed", float_of_int frees);
          ("allocs", float_of_int allocs);
          ("fresh", float_of_int (Atomic.get t.fresh));
          ("global_ops", float_of_int (Atomic.get t.global_ops));
          ("high_water", float_of_int (Atomic.get t.high_water));
          ( "magazine_hits",
            float_of_int (Array.fold_left ( + ) 0 t.mag_hits) );
          ( "magazine_misses",
            float_of_int (Array.fold_left ( + ) 0 t.mag_misses) );
        ]);
  t

let strategy t = t.strategy
let id_of t n = t.node_id n
let san_key t n = San.node_key ~group:t.san_group ~node:(t.node_id n)
let is_live t n = Atomic.get (t.state n) = st_live

let rec push_global t n =
  let cur = Atomic.get t.global_nodes in
  if not (Atomic.compare_and_set t.global_nodes cur (n :: cur)) then begin
    Domain.cpu_relax ();
    push_global t n
  end

let rec pop_global t =
  match Atomic.get t.global_nodes with
  | [] -> None
  | n :: rest as cur ->
      if Atomic.compare_and_set t.global_nodes cur rest then Some n
      else begin
        Domain.cpu_relax ();
        pop_global t
      end

let rec push_batch t b =
  let cur = Atomic.get t.global_batches in
  if not (Atomic.compare_and_set t.global_batches cur (b :: cur)) then begin
    Domain.cpu_relax ();
    push_batch t b
  end

let rec pop_batch t =
  match Atomic.get t.global_batches with
  | [] -> None
  | b :: rest as cur ->
      if Atomic.compare_and_set t.global_batches cur rest then Some b
      else begin
        Domain.cpu_relax ();
        pop_batch t
      end

let bump_high_water t =
  let live = Atomic.get t.allocs - Atomic.get t.frees in
  let rec loop () =
    let hw = Atomic.get t.high_water in
    if live > hw && not (Atomic.compare_and_set t.high_water hw live) then
      loop ()
  in
  loop ()

let fabricate t =
  Atomic.incr t.fresh;
  let n = t.make (Atomic.fetch_and_add t.next_id 1) in
  (* Fresh nodes are born free; the caller marks them live. *)
  Atomic.set (t.state n) st_free;
  n

let take_pooled t ~thread =
  match t.strategy with
  | Size_class ->
      Atomic.incr t.global_ops;
      pop_global t
  | Thread_arena -> (
      let a = t.arenas.(thread) in
      match a.nodes with
      | n :: rest ->
          a.nodes <- rest;
          a.count <- a.count - 1;
          Some n
      | [] -> (
          Atomic.incr t.global_ops;
          match pop_batch t with
          | None -> None
          | Some [] -> None
          | Some (n :: rest) ->
              a.nodes <- rest;
              a.count <- List.length rest;
              Some n))

(* Magazine-cached take: serve from [loaded], then from a swapped-in
   [prev], and only then (a miss) refill a whole magazine from the depot —
   falling through to the strategy path when the depot is dry. *)
let mag_take t ~thread =
  let m = t.mags.(thread) in
  match m.loaded with
  | n :: rest ->
      m.loaded <- rest;
      m.ln <- m.ln - 1;
      t.mag_hits.(thread) <- t.mag_hits.(thread) + 1;
      Some n
  | [] -> (
      if m.pn > 0 then begin
        m.loaded <- m.prev;
        m.ln <- m.pn;
        m.prev <- [];
        m.pn <- 0
      end;
      match m.loaded with
      | n :: rest ->
          m.loaded <- rest;
          m.ln <- m.ln - 1;
          t.mag_hits.(thread) <- t.mag_hits.(thread) + 1;
          Some n
      | [] -> (
          t.mag_misses.(thread) <- t.mag_misses.(thread) + 1;
          Dst.point Dst.Mp_magazine;
          Atomic.incr t.global_ops;
          match pop_batch t with
          | Some (n :: rest) ->
              m.loaded <- rest;
              m.ln <- List.length rest;
              Some n
          | Some [] | None -> take_pooled t ~thread))

(* Magazine-cached put: push onto [loaded]; when full, rotate it to
   [prev]; when both are full, spill the previous (full) magazine to the
   depot — the only shared operation on the free path. *)
let mag_put t ~thread n =
  let m = t.mags.(thread) in
  if m.ln < t.batch then begin
    m.loaded <- n :: m.loaded;
    m.ln <- m.ln + 1;
    t.mag_hits.(thread) <- t.mag_hits.(thread) + 1
  end
  else if m.pn = 0 then begin
    m.prev <- m.loaded;
    m.pn <- m.ln;
    m.loaded <- [ n ];
    m.ln <- 1;
    t.mag_hits.(thread) <- t.mag_hits.(thread) + 1
  end
  else begin
    t.mag_misses.(thread) <- t.mag_misses.(thread) + 1;
    Dst.point Dst.Mp_magazine;
    Atomic.incr t.global_ops;
    push_batch t m.prev;
    m.prev <- m.loaded;
    m.pn <- m.ln;
    m.loaded <- [ n ];
    m.ln <- 1
  end

let alloc t ~thread =
  (* DST fault injection: a [Fail] arm on [Mp_alloc] models allocation
     failure (arena and global freelists empty, fabrication refused). *)
  if Dst.point_fails Dst.Mp_alloc then raise (Dst.Injected Dst.Mp_alloc);
  let take = if t.magazines then mag_take else take_pooled in
  let n = match take t ~thread with Some n -> n | None -> fabricate t in
  let st = t.state n in
  if not (Atomic.compare_and_set st st_free st_live) then
    (* A pooled node must be in the free state; anything else means the
       freelist was corrupted. *)
    failwith "Mempool.alloc: pooled node was not free";
  Atomic.incr t.allocs;
  bump_high_water t;
  if San.enabled () then
    San.mp_alloc ~thread ~node:(san_key t n) ~tvars:(t.tvar_ids n)
      ~probes:(t.probe_ids n) ~stamp:(Tm.clock ());
  n

let stash t ~thread n =
  match t.strategy with
  | Size_class ->
      Atomic.incr t.global_ops;
      push_global t n
  | Thread_arena ->
      let a = t.arenas.(thread) in
      a.nodes <- n :: a.nodes;
      a.count <- a.count + 1;
      if a.count >= 2 * t.batch then begin
        (* Spill one batch to the global stack, keep the rest local. *)
        let rec split k acc rest =
          if k = 0 then (acc, rest)
          else
            match rest with
            | [] -> (acc, [])
            | n :: tl -> split (k - 1) (n :: acc) tl
        in
        let spill, keep = split t.batch [] a.nodes in
        a.nodes <- keep;
        a.count <- a.count - t.batch;
        Atomic.incr t.global_ops;
        push_batch t spill
      end

let free t ~thread n =
  Dst.point Dst.Mp_free;
  let st = t.state n in
  if not (Atomic.compare_and_set st st_live st_free) then
    raise (Double_free (t.node_id n));
  (* Poisoning is a sanctioned raw write to the dying node's tvars. *)
  San.exempt_begin ();
  t.poison n;
  San.exempt_end ();
  if San.enabled () then
    San.mp_free ~thread ~site:(Tm.current_site ()) ~node:(san_key t n)
      ~stamp:(Tm.clock ());
  Atomic.incr t.frees;
  if t.magazines then mag_put t ~thread n else stash t ~thread n

(* Drain one thread's magazine pair back through the shared bins. The
   pushes are counted in [global_ops] (one per non-empty magazine): a
   drain genuinely touches the shared freelist, it is just off the hot
   path. Partial magazines go back node-by-node under [Size_class] and as
   (short) batches under [Thread_arena], matching [flush_arenas]. *)
let drain_magazines t ~thread =
  if t.magazines then begin
    let m = t.mags.(thread) in
    let give nodes =
      if nodes <> [] then begin
        Atomic.incr t.global_ops;
        match t.strategy with
        | Size_class -> List.iter (fun n -> push_global t n) nodes
        | Thread_arena -> push_batch t nodes
      end
    in
    give m.loaded;
    give m.prev;
    m.loaded <- [];
    m.ln <- 0;
    m.prev <- [];
    m.pn <- 0
  end

let flush_arenas t =
  Array.iter
    (fun a ->
      (match t.strategy with
      | Size_class -> List.iter (fun n -> push_global t n) a.nodes
      | Thread_arena -> if a.nodes <> [] then push_batch t a.nodes);
      a.nodes <- [];
      a.count <- 0)
    t.arenas;
  if t.magazines then
    for i = 0 to Array.length t.mags - 1 do
      drain_magazines t ~thread:i
    done

let magazines t = t.magazines
let live t = Atomic.get t.allocs - Atomic.get t.frees

let stats t =
  let allocs = Atomic.get t.allocs and frees = Atomic.get t.frees in
  let sum a = Array.fold_left ( + ) 0 a in
  {
    Stats.allocs;
    frees;
    fresh = Atomic.get t.fresh;
    global_ops = Atomic.get t.global_ops;
    live = allocs - frees;
    high_water = Atomic.get t.high_water;
    magazine_hits = sum t.mag_hits;
    magazine_misses = sum t.mag_misses;
  }
