(** Deterministic schedule testing (DST).

    A controllable-interleaving harness for the TM, RR and reclamation
    layers.  Production code is threaded with {!point} yield sites that
    compile down to a single load-and-branch when the harness is inactive.
    When a {!Sched.run} is active, N logical threads are multiplexed on one
    domain and driven through those sites by a virtual scheduler; every run
    is replayable from a printed seed or an explicit schedule, and failing
    schedules shrink automatically.

    The harness is single-domain by construction: while a run is active no
    other domain may execute instrumented code (tests own the process). *)

(** Instrumented yield sites. Constant constructors only (except [User]),
    so passing one to {!point} never allocates on the inactive path. *)
type site =
  | Tm_read  (** speculative read of a tvar *)
  | Tm_sample_rv  (** between the serial-clear wait and the clock sample *)
  | Tm_wait_serial  (** spinning for the serial token to clear *)
  | Tm_commit  (** commit entry, before the committing flag is raised *)
  | Tm_lock  (** before each write-set lock acquisition *)
  | Tm_gclock  (** before the commit-time global-clock bump *)
  | Tm_extend
      (** before a timestamp-extension attempt (a stale read about to
          resample the clock and revalidate; an {!Inject.Fail} arm here
          forces the extension to fail) *)
  | Tm_validate  (** before read-set validation *)
  | Tm_publish  (** before each write-back of a buffered value *)
  | Tm_serial_token  (** serial-token CAS loop *)
  | Tm_serial_quiesce  (** serial fallback waiting for in-flight committers *)
  | Tm_serial_write  (** before each direct serial-mode write *)
  | Tm_backoff  (** replaces the contention backoff between attempts *)
  | Tm_middle_token  (** middle-path (per-structure lock) CAS loop *)
  | Rr_reserve
  | Rr_release
  | Rr_get
  | Rr_revoke
  | Rr_revoke_step  (** inside a revocation sweep, per node *)
  | Mp_alloc
  | Mp_free
  | Mp_magazine  (** magazine/depot exchange in the mempool cache *)
  | Hp_protect  (** before the hazard-slot store *)
  | Hp_retire
  | Hp_scan
  | Ep_enter
  | Ep_retire
  | Ep_advance
  | Hoh_handoff  (** between the windowed transactions of one HoH op *)
  | Svc_gate  (** service shard gate acquire/release *)
  | Svc_prepare  (** between 2PC prepare sub-steps of a cross-shard multi *)
  | Svc_apply  (** between 2PC apply sub-steps of a cross-shard multi *)
  | Svc_enqueue
      (** worker-pool submission: before a request lands in a shard
          queue, and inside the await spin of a completion cell *)
  | Svc_drain  (** worker-pool drain: before a worker fuses the queue head *)
  | Svc_cache
      (** hot-cache lookup: before the slot read, so a writer's commit +
          invalidation can interleave between consecutive cached reads *)
  | User of int  (** scenario-private sites (allocates; tests only) *)

val site_name : site -> string

exception Killed
(** Raised into a paused logical thread to abandon it (end of a run). User
    code sees it as an ordinary exception: [Fun.protect] finalizers run. *)

exception Injected of site
(** Raised by instrumented production code when a {!Inject.Fail} arm fires
    at a site that models an environment fault (e.g. [Mp_alloc]). *)

val point : site -> unit
(** Yield site. No-op unless a run is active on this domain and the caller
    is a logical thread. *)

val point_fails : site -> bool
(** Like {!point}, but additionally reports whether a {!Inject.Fail} arm
    fired at this site; the caller turns [true] into its own failure
    (an abort, an allocation error, ...). Always [false] when inactive. *)

val scheduled : unit -> bool
(** True when the caller is a logical thread under an active run. *)

(** Logical-thread-local storage: Domain.DLS when no run is active,
    per-logical-thread when one is. Production code that keys state by
    domain must use this so N logical threads on one domain stay
    distinct. *)
module Tls : sig
  type 'a key

  val new_key : (unit -> 'a) -> 'a key
  val get : 'a key -> 'a
  val set : 'a key -> 'a -> unit
end

(** Fault injection, sharing the {!point} hooks. *)
module Inject : sig
  (** Re-introducible concurrency bugs documented in DESIGN.md. Each flag
      disables the corresponding production fix while a run is active:
      - [Snapshot_straddle]: bug #1 — skip the serial-token re-check after
        sampling the read version.
      - [Ro_publication]: bug #2 — skip forced commit-time validation for
        read-only transactions that publish hazard/epoch state.
      - [Stale_hint]: bug #3 — accept a recycled skiplist hint whose key or
        tower no longer matches.
      - [Tear_2pc]: bug #4 — the service layer skips compensating rollback
        when a cross-shard multi-key op fails mid-apply, leaving a torn
        partial write behind (see DESIGN.md decision 10).
      - [Stale_cache]: bug #5 — the service layer skips the hot-cache
        epoch bump after a write commits, so cache hits can serve values
        older than the shard's last committed stamp (caught by the TxSan
        stale-cache-hit rule; see DESIGN.md decision 13). *)
  type bug =
    | Snapshot_straddle
    | Ro_publication
    | Stale_hint
    | Tear_2pc
    | Stale_cache

  val set_bug : bug -> bool -> unit

  val bug : bug -> bool
  (** True only while a run is active and the flag is set. *)

  val with_bug : bug -> (unit -> 'a) -> 'a

  type action =
    | Fail  (** report failure via {!point_fails} *)
    | Delay of int  (** insert [n] extra yields before proceeding *)

  val arm : ?thread:int -> ?after:int -> ?times:int -> site -> action -> unit
  (** Arm a fault at [site]: skip the first [after] eligible visits, then
      fire on the next [times] visits. [?thread] restricts the arm to one
      logical thread (the index of its body in the {!Sched.run} list), so
      an adversary can arm a hot site — [Tm_commit], [Hoh_handoff] —
      without tripping every other thread that passes it; visits by other
      threads neither fire nor consume the arm. Arms are consumed across
      runs; re-arm per attempt (a scenario's builder is the natural
      place). *)

  val clear : unit -> unit
  (** Drop all arms and bug flags. *)
end

(** The virtual scheduler. *)
module Sched : sig
  type strategy =
    | Random of int  (** uniform over runnable threads, seeded *)
    | Pct of { seed : int; depth : int }
        (** PCT: random thread priorities with [depth - 1] priority-change
            points; finds any bug of depth [d] with probability
            >= 1/(n * k^(d-1)) per run *)
    | Fixed of int array
        (** replay: step [i] runs thread [schedule.(i)] if runnable,
            otherwise (and past the end) the lowest-numbered runnable
            thread *)

  type failure =
    | Thread_raised of { thread : int; exn : exn; bt : string }
    | Check_failed of { exn : exn; bt : string }

  type outcome = {
    trace : int array;  (** thread chosen at each scheduling decision *)
    options : int array array;  (** runnable set at each decision *)
    steps : int;
    hung : bool;  (** budget exhausted before all threads finished *)
    failure : failure option;
  }

  val failed : outcome -> bool
  val pp_failure : Format.formatter -> failure -> unit
  val pp_trace : Format.formatter -> int array -> unit
  (** Prints an OCaml array literal, pasteable as a regression schedule. *)

  val run :
    ?budget:int ->
    ?init:(unit -> unit) ->
    ?check:(unit -> unit) ->
    strategy ->
    (unit -> unit) list ->
    outcome
  (** Run thread bodies under [strategy]. [init] executes to completion as
      a solo logical thread first (deterministic setup: prefills, handle
      registration). [check] runs after a clean completion; raising marks
      the outcome failed. [budget] caps scheduling decisions; exhaustion
      sets [hung] without failing. Threads still paused when the run ends
      are abandoned with {!Killed}. *)
end

(** Schedule search: seeded random / PCT sweeps and bounded exhaustive
    exploration, with automatic shrinking of failing schedules. *)
module Explore : sig
  type case = {
    init : (unit -> unit) option;
    threads : (unit -> unit) list;
    check : unit -> unit;
  }

  type scenario = unit -> case
  (** Builds a fresh instance of the scenario; called once per attempt so
      every run starts from identical state. *)

  type found = {
    seed : int option;  (** seed of the first failing run, if seeded *)
    schedule : int array;  (** minimized failing schedule *)
    failure : Sched.failure;
    runs : int;  (** total runs spent, including shrinking *)
  }

  val random_search :
    ?budget:int ->
    ?max_runs:int ->
    ?shrink_fuel:int ->
    ?seed0:int ->
    scenario ->
    found option

  val pct_search :
    ?budget:int ->
    ?max_runs:int ->
    ?shrink_fuel:int ->
    ?seed0:int ->
    ?depth:int ->
    scenario ->
    found option

  val exhaustive :
    ?budget:int ->
    ?max_runs:int ->
    ?max_depth:int ->
    ?shrink_fuel:int ->
    scenario ->
    found option
  (** Depth-first enumeration of all schedules whose first [max_depth]
      decisions differ, each completed with the deterministic default
      tail; capped at [max_runs] runs. Returns the first failure found,
      minimized. [None] means the space (or cap) was exhausted cleanly. *)

  val replay : ?budget:int -> scenario -> int array -> Sched.outcome
  (** Deterministic replay of a pinned schedule ([Fixed]). *)
end
