type site =
  | Tm_read
  | Tm_sample_rv
  | Tm_wait_serial
  | Tm_commit
  | Tm_lock
  | Tm_gclock
  | Tm_extend
  | Tm_validate
  | Tm_publish
  | Tm_serial_token
  | Tm_serial_quiesce
  | Tm_serial_write
  | Tm_backoff
  | Tm_middle_token
  | Rr_reserve
  | Rr_release
  | Rr_get
  | Rr_revoke
  | Rr_revoke_step
  | Mp_alloc
  | Mp_free
  | Mp_magazine
  | Hp_protect
  | Hp_retire
  | Hp_scan
  | Ep_enter
  | Ep_retire
  | Ep_advance
  | Hoh_handoff
  | Svc_gate
  | Svc_prepare
  | Svc_apply
  | Svc_enqueue
  | Svc_drain
  | Svc_cache
  | User of int

let site_name = function
  | Tm_read -> "tm.read"
  | Tm_sample_rv -> "tm.sample_rv"
  | Tm_wait_serial -> "tm.wait_serial"
  | Tm_commit -> "tm.commit"
  | Tm_lock -> "tm.lock"
  | Tm_gclock -> "tm.gclock"
  | Tm_extend -> "tm.extend"
  | Tm_validate -> "tm.validate"
  | Tm_publish -> "tm.publish"
  | Tm_serial_token -> "tm.serial_token"
  | Tm_serial_quiesce -> "tm.serial_quiesce"
  | Tm_serial_write -> "tm.serial_write"
  | Tm_backoff -> "tm.backoff"
  | Tm_middle_token -> "tm.middle_token"
  | Rr_reserve -> "rr.reserve"
  | Rr_release -> "rr.release"
  | Rr_get -> "rr.get"
  | Rr_revoke -> "rr.revoke"
  | Rr_revoke_step -> "rr.revoke_step"
  | Mp_alloc -> "mempool.alloc"
  | Mp_free -> "mempool.free"
  | Mp_magazine -> "mempool.magazine"
  | Hp_protect -> "hazard.protect"
  | Hp_retire -> "hazard.retire"
  | Hp_scan -> "hazard.scan"
  | Ep_enter -> "epoch.enter"
  | Ep_retire -> "epoch.retire"
  | Ep_advance -> "epoch.advance"
  | Hoh_handoff -> "hoh.handoff"
  | Svc_gate -> "service.gate"
  | Svc_prepare -> "service.prepare"
  | Svc_apply -> "service.apply"
  | Svc_enqueue -> "service.enqueue"
  | Svc_drain -> "service.drain"
  | Svc_cache -> "service.cache"
  | User n -> "user." ^ string_of_int n

exception Killed
exception Injected of site

type _ Effect.t += Yield : site -> unit Effect.t

(* Written only by the scheduling domain; other domains read [enabled]
   (monotone false during their lifetime outside tests) and fall through. *)
let enabled = ref false
let sched_domain = ref (-1)
let current = ref (-1)

let[@inline] my_domain () = (Domain.self () :> int)

let[@inline] scheduled () =
  !enabled && my_domain () = !sched_domain && !current >= 0

module Inject = struct
  type bug =
    | Snapshot_straddle
    | Ro_publication
    | Stale_hint
    | Tear_2pc
    | Stale_cache

  let bug_idx = function
    | Snapshot_straddle -> 0
    | Ro_publication -> 1
    | Stale_hint -> 2
    | Tear_2pc -> 3
    | Stale_cache -> 4

  let bugs = Array.make 5 false
  let set_bug b v = bugs.(bug_idx b) <- v
  let[@inline] bug b = !enabled && Array.unsafe_get bugs (bug_idx b)
  let clear_bugs () = Array.fill bugs 0 (Array.length bugs) false

  let with_bug b f =
    set_bug b true;
    Fun.protect ~finally:(fun () -> set_bug b false) f

  type action = Fail | Delay of int

  type arm = {
    a_site : site;
    a_thread : int option;  (* fire only for this logical thread id *)
    mutable skips : int;
    mutable fires : int;
    action : action;
  }

  let arms : arm list ref = ref []

  let arm ?thread ?(after = 0) ?(times = 1) site action =
    arms :=
      { a_site = site; a_thread = thread; skips = after; fires = times; action }
      :: !arms

  let clear () =
    arms := [];
    clear_bugs ()

  (* Consume one visit of [site]. [want_fail] selects whether Fail arms
     are eligible, so a plain [point] never swallows an armed failure
     meant for a [point_fails] site. *)
  let hit ~want_fail site =
    let rec go = function
      | [] -> None
      | a :: rest ->
          if
            a.a_site = site && a.fires > 0
            && (match a.a_thread with None -> true | Some t -> t = !current)
            && (match a.action with Fail -> want_fail | Delay _ -> true)
          then
            if a.skips > 0 then begin
              a.skips <- a.skips - 1;
              go rest
            end
            else begin
              a.fires <- a.fires - 1;
              Some a.action
            end
          else go rest
    in
    go !arms
end

let[@inline never] point_slow site =
  if my_domain () = !sched_domain && !current >= 0 then begin
    (match Inject.hit ~want_fail:false site with
    | Some (Inject.Delay n) ->
        for _ = 1 to n do
          Effect.perform (Yield site)
        done
    | Some Inject.Fail | None -> ());
    Effect.perform (Yield site)
  end

let[@inline] point site = if !enabled then point_slow site

let[@inline never] point_fails_slow site =
  if my_domain () = !sched_domain && !current >= 0 then begin
    let failing =
      match Inject.hit ~want_fail:true site with
      | Some Inject.Fail -> true
      | Some (Inject.Delay n) ->
          for _ = 1 to n do
            Effect.perform (Yield site)
          done;
          false
      | None -> false
    in
    Effect.perform (Yield site);
    failing
  end
  else false

let[@inline] point_fails site = !enabled && point_fails_slow site

module Tls = struct
  type 'a key = {
    dls : 'a Domain.DLS.key;
    tbl : (int, 'a) Hashtbl.t;
    init : unit -> 'a;
  }

  let clearers : (unit -> unit) list ref = ref []

  let new_key init =
    let k = { dls = Domain.DLS.new_key init; tbl = Hashtbl.create 16; init } in
    clearers := (fun () -> Hashtbl.reset k.tbl) :: !clearers;
    k

  let[@inline] get k =
    if !enabled && my_domain () = !sched_domain && !current >= 0 then begin
      let c = !current in
      match Hashtbl.find_opt k.tbl c with
      | Some v -> v
      | None ->
          let v = k.init () in
          Hashtbl.replace k.tbl c v;
          v
    end
    else Domain.DLS.get k.dls

  let set k v =
    if !enabled && my_domain () = !sched_domain && !current >= 0 then
      Hashtbl.replace k.tbl !current v
    else Domain.DLS.set k.dls v

  let clear_all () = List.iter (fun f -> f ()) !clearers
end

module Sched = struct
  type strategy =
    | Random of int
    | Pct of { seed : int; depth : int }
    | Fixed of int array

  type failure =
    | Thread_raised of { thread : int; exn : exn; bt : string }
    | Check_failed of { exn : exn; bt : string }

  type outcome = {
    trace : int array;
    options : int array array;
    steps : int;
    hung : bool;
    failure : failure option;
  }

  let failed o = o.failure <> None

  let pp_failure ppf = function
    | Thread_raised { thread; exn; bt } ->
        Format.fprintf ppf "thread %d raised %s@.%s" thread
          (Printexc.to_string exn) bt
    | Check_failed { exn; bt } ->
        Format.fprintf ppf "post-run check failed: %s@.%s"
          (Printexc.to_string exn) bt

  let pp_trace ppf t =
    Format.fprintf ppf "[|";
    Array.iteri
      (fun i c ->
        if i > 0 then Format.pp_print_string ppf ";";
        Format.pp_print_int ppf c)
      t;
    Format.fprintf ppf "|]"

  (* SplitMix-style mixer; all strategy randomness derives from it so a
     seed fully determines a schedule. *)
  let mix z =
    let z = (z + 0x9E3779B97F4A7C1) land max_int in
    let z = z lxor (z lsr 30) in
    let z = z * 0x1BF58476D1CE4E5 land max_int in
    let z = z lxor (z lsr 27) in
    let z = z * 0x94D049BB133111E land max_int in
    z lxor (z lsr 31)

  type status =
    | Ready of (unit -> unit)
    | Paused of (unit, unit) Effect.Deep.continuation
    | Done

  type thread = { id : int; mutable status : status }

  let init_ltid = 1_000_000

  let run ?(budget = 20_000) ?init ?(check = fun () -> ()) strategy bodies =
    if !enabled then invalid_arg "Dst.Sched.run: a schedule is already active";
    let n = List.length bodies in
    if n = 0 then invalid_arg "Dst.Sched.run: no threads";
    enabled := true;
    sched_domain := my_domain ();
    current := -1;
    Tls.clear_all ();
    let failure = ref None in
    let hung = ref false in
    let trace = ref [] in
    let options = ref [] in
    let steps = ref 0 in
    let run_slice t =
      current := t.id;
      (match t.status with
      | Ready body ->
          Effect.Deep.match_with body ()
            {
              retc = (fun () -> t.status <- Done);
              exnc =
                (fun e ->
                  t.status <- Done;
                  match e with
                  | Killed -> ()
                  | e ->
                      if !failure = None then
                        failure :=
                          Some
                            (Thread_raised
                               {
                                 thread = t.id;
                                 exn = e;
                                 bt = Printexc.get_backtrace ();
                               }));
              effc =
                (fun (type a) (eff : a Effect.t) ->
                  match eff with
                  | Yield _ ->
                      Some
                        (fun (k : (a, unit) Effect.Deep.continuation) ->
                          t.status <- Paused k)
                  | _ -> None);
            }
      | Paused k -> Effect.Deep.continue k ()
      | Done -> assert false);
      current := -1
    in
    let kill t =
      match t.status with
      | Paused k ->
          current := t.id;
          (try Effect.Deep.discontinue k Killed with _ -> ());
          current := -1;
          t.status <- Done
      | _ -> t.status <- Done
    in
    Fun.protect
      ~finally:(fun () ->
        enabled := false;
        current := -1;
        sched_domain := -1)
      (fun () ->
        (* Deterministic setup phase: a solo logical thread driven to
           completion, its yields resumed immediately and not recorded. *)
        (match init with
        | None -> ()
        | Some f ->
            let t = { id = init_ltid; status = Ready f } in
            let rec drive fuel =
              match t.status with
              | Done -> ()
              | _ when fuel = 0 ->
                  hung := true;
                  kill t
              | _ ->
                  run_slice t;
                  drive (fuel - 1)
            in
            drive budget;
            if !failure <> None then hung := false);
        let threads =
          Array.of_list (List.mapi (fun i b -> { id = i; status = Ready b }) bodies)
        in
        let runnable () =
          let rec go i acc =
            if i < 0 then acc
            else
              go (i - 1)
                (match threads.(i).status with Done -> acc | _ -> i :: acc)
          in
          go (n - 1) []
        in
        (* Strategy state *)
        let rng =
          ref
            (match strategy with
            | Random s -> mix (s lxor 0x5d7)
            | Pct { seed; _ } -> mix (seed lxor 0x9c7)
            | Fixed _ -> 0)
        in
        let next_rand bound =
          rng := mix !rng;
          !rng mod bound
        in
        let prios = Array.make n 0 in
        let change_steps = Hashtbl.create 8 in
        (match strategy with
        | Pct { depth; _ } ->
            let ranks = Array.init n (fun i -> i) in
            for i = n - 1 downto 1 do
              let j = next_rand (i + 1) in
              let t = ranks.(i) in
              ranks.(i) <- ranks.(j);
              ranks.(j) <- t
            done;
            let d = max 1 depth in
            Array.iteri (fun i r -> prios.(i) <- d + r) ranks;
            for j = 1 to d - 1 do
              Hashtbl.replace change_steps (1 + next_rand budget) (d - 1 - j)
            done
        | Random _ | Fixed _ -> ());
        let best rs =
          List.fold_left
            (fun acc i ->
              match acc with
              | Some b when prios.(b) >= prios.(i) -> acc
              | _ -> Some i)
            None rs
          |> Option.get
        in
        let pick rs =
          match strategy with
          | Random _ -> List.nth rs (next_rand (List.length rs))
          | Fixed pre ->
              let s = !steps in
              if s < Array.length pre && List.mem pre.(s) rs then pre.(s)
              else List.hd rs
          | Pct _ ->
              (match Hashtbl.find_opt change_steps !steps with
              | Some newp -> prios.(best rs) <- newp
              | None -> ());
              best rs
        in
        (if !failure = None && not !hung then
           let rec loop () =
             match runnable () with
             | [] -> ()
             | rs ->
                 if !steps >= budget then hung := true
                 else begin
                   let c = pick rs in
                   trace := c :: !trace;
                   options := Array.of_list rs :: !options;
                   incr steps;
                   run_slice threads.(c);
                   if !failure = None then loop ()
                 end
           in
           loop ());
        Array.iter kill threads;
        (if !failure = None && not !hung then
           try check ()
           with e ->
             failure :=
               Some (Check_failed { exn = e; bt = Printexc.get_backtrace () }));
        {
          trace = Array.of_list (List.rev !trace);
          options = Array.of_list (List.rev !options);
          steps = !steps;
          hung = !hung;
          failure = !failure;
        })
end

module Explore = struct
  type case = {
    init : (unit -> unit) option;
    threads : (unit -> unit) list;
    check : unit -> unit;
  }

  type scenario = unit -> case

  let attempt ?budget strategy (mk : scenario) =
    let c = mk () in
    Sched.run ?budget ?init:c.init ~check:c.check strategy c.threads

  type found = {
    seed : int option;
    schedule : int array;
    failure : Sched.failure;
    runs : int;
  }

  (* Minimize a failing schedule: shortest failing prefix by bisection,
     then greedy single-decision deletion, then context-switch collapse.
     Every kept candidate was re-executed and observed to fail, so the
     result always reproduces. Returns (schedule, runs_spent, reproduced);
     [reproduced = false] means even the full trace did not fail under
     Fixed replay (a nondeterministic scenario) and no shrinking was
     attempted. *)
  let shrink ?budget ~fuel mk (trace : int array) =
    let runs = ref 0 in
    let fails t =
      !runs < fuel
      && begin
           incr runs;
           Sched.failed (attempt ?budget (Sched.Fixed t) mk)
         end
    in
    if not (fails trace) then (trace, !runs, false)
    else begin
      let lo = ref 0 and hi = ref (Array.length trace) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if fails (Array.sub trace 0 mid) then hi := mid else lo := mid + 1
      done;
      let cur = ref (Array.sub trace 0 !hi) in
      let i = ref (Array.length !cur - 1) in
      while !i >= 0 do
        let t = !cur in
        let cand =
          Array.init
            (Array.length t - 1)
            (fun j -> if j < !i then t.(j) else t.(j + 1))
        in
        if fails cand then cur := cand;
        decr i
      done;
      let t = Array.copy !cur in
      for j = 1 to Array.length t - 1 do
        if t.(j) <> t.(j - 1) then begin
          let old = t.(j) in
          t.(j) <- t.(j - 1);
          if not (fails t) then t.(j) <- old
        end
      done;
      cur := t;
      (!cur, !runs, true)
    end

  let finish ?budget ~fuel mk ~seed ~runs (o : Sched.outcome) =
    let failure = Option.get o.Sched.failure in
    let schedule, sruns, reproduced = shrink ?budget ~fuel mk o.Sched.trace in
    if reproduced then
      let o' = attempt ?budget (Sched.Fixed schedule) mk in
      match o'.Sched.failure with
      | Some f -> { seed; schedule; failure = f; runs = runs + sruns + 1 }
      | None ->
          (* should be unreachable: shrink verified the schedule *)
          { seed; schedule = o.Sched.trace; failure; runs = runs + sruns + 1 }
    else { seed; schedule = o.Sched.trace; failure; runs = runs + sruns }

  let seeded_search ?(budget = 20_000) ?(max_runs = 500) ?(shrink_fuel = 400)
      ~seed0 ~strategy_of_seed mk =
    let rec go i =
      if i >= max_runs then None
      else begin
        let seed = seed0 + i in
        let o = attempt ~budget (strategy_of_seed seed) mk in
        if Sched.failed o then
          Some
            (finish ~budget ~fuel:shrink_fuel mk ~seed:(Some seed) ~runs:(i + 1)
               o)
        else go (i + 1)
      end
    in
    go 0

  let random_search ?budget ?max_runs ?shrink_fuel ?(seed0 = 1) mk =
    seeded_search ?budget ?max_runs ?shrink_fuel ~seed0
      ~strategy_of_seed:(fun s -> Sched.Random s)
      mk

  let pct_search ?budget ?max_runs ?shrink_fuel ?(seed0 = 1) ?(depth = 3) mk =
    seeded_search ?budget ?max_runs ?shrink_fuel ~seed0
      ~strategy_of_seed:(fun s -> Sched.Pct { seed = s; depth })
      mk

  let exhaustive ?(budget = 2_000) ?(max_runs = 20_000) ?(max_depth = max_int)
      ?(shrink_fuel = 400) mk =
    let runs = ref 0 in
    let rec go prefix =
      if !runs >= max_runs then None
      else begin
        incr runs;
        let o = attempt ~budget (Sched.Fixed prefix) mk in
        if Sched.failed o then
          Some (finish ~budget ~fuel:shrink_fuel mk ~seed:None ~runs:!runs o)
        else begin
          (* next prefix in depth-first lexicographic order: deepest
             decision with an untried larger alternative *)
          let t = o.Sched.trace and opts = o.Sched.options in
          let d = min (Array.length t) max_depth in
          let rec back s =
            if s < 0 then None
            else begin
              let next =
                Array.fold_left
                  (fun acc x ->
                    if x > t.(s) then
                      match acc with
                      | Some y when y <= x -> acc
                      | _ -> Some x
                    else acc)
                  None opts.(s)
              in
              match next with
              | Some x -> Some (Array.append (Array.sub t 0 s) [| x |])
              | None -> back (s - 1)
            end
          in
          match back (d - 1) with Some p -> go p | None -> None
        end
      end
    in
    go [||]

  let replay ?budget mk schedule = attempt ?budget (Sched.Fixed schedule) mk
end
