(* Driver: load .cmt typedtrees, compute bottom-up summaries, then run
   the diagnostic pass.

   Files are analyzed in the order given (the dune rules list them in
   dependency order: tm → mempool → core → reclaim → structs). The
   summary pass runs twice so intra- and cross-module recursion reaches
   its (tiny) fixpoint before anything is reported; the per-file
   [ref_accum] tables also persist across passes, which is what lets a
   window entry age a ref cell by the join of every assignment anywhere
   in the enclosing function, not just the ones already seen. *)

open Typedtree

(* re-export the analysis modules through the library's main module *)
module Vdiag = Vdiag
module Vsarif = Vsarif
module Vsummary = Vsummary
module Vanalyze = Vanalyze

type file = {
  f_path : string;
  f_modname : string;
  f_structure : structure;
  f_ref_accum : (string, Vanalyze.nstate * Vanalyze.prov) Hashtbl.t;
}

let load_cmt path =
  let cmt = Cmt_format.read_cmt path in
  match cmt.Cmt_format.cmt_annots with
  | Cmt_format.Implementation str ->
      Some
        {
          f_path = path;
          f_modname = Vanalyze.strip_prefix cmt.Cmt_format.cmt_modname;
          f_structure = str;
          f_ref_accum = Hashtbl.create 16;
        }
  | _ -> None

let mk_ctx ~modname ~ref_accum ~out : Vanalyze.ctx =
  {
    Vanalyze.in_txn = false;
    free_ok = false;
    no_txn = false;
    trusted = false;
    fname = "";
    modname;
    trace = [];
    handler = None;
    summary = Vsummary.create ~arity:0;
    locals = Hashtbl.create 32;
    ref_accum;
    out;
  }

let rec analyze_module_expr ctx env (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> analyze_structure ctx env str
  | Tmod_constraint (me, _, _, _) -> analyze_module_expr ctx env me
  | Tmod_functor (_, me) -> analyze_module_expr ctx env me
  | _ -> env

and analyze_structure ctx env (str : structure) =
  List.fold_left (analyze_item ctx) env str.str_items

and analyze_item ctx env (item : structure_item) =
  match item.str_desc with
  | Tstr_value (_, vbs) ->
      List.fold_left
        (fun env (vb : value_binding) ->
          match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
          | Tpat_var (id, _), Texp_function _ ->
              let name = Ident.name id in
              let ctx =
                match Vanalyze.trusted_attr vb.vb_attributes with
                | Some (aloc, reason) ->
                    let aloc =
                      if aloc = Location.none then vb.vb_loc else aloc
                    in
                    if ctx.Vanalyze.out.Vanalyze.emit then begin
                      let file, line, _ = Vanalyze.loc_pos aloc in
                      match reason with
                      | Some r ->
                          ctx.Vanalyze.out.Vanalyze.sups <-
                            { Vdiag.s_file = file; s_line = line; reason = r }
                            :: ctx.Vanalyze.out.Vanalyze.sups
                      | None ->
                          ctx.Vanalyze.out.Vanalyze.diags <-
                            {
                              Vdiag.rule = "trusted-without-reason";
                              file;
                              line;
                              col = 0;
                              message =
                                "[@hohtx.trusted] must carry a reason \
                                 string explaining why the verifier is \
                                 being waved through";
                              path = [];
                              fn = name;
                            }
                            :: ctx.Vanalyze.out.Vanalyze.diags
                    end;
                    if reason <> None then
                      { ctx with Vanalyze.trusted = true }
                    else ctx
                | None -> ctx
              in
              let s = Vanalyze.analyze_lambda ctx env ~name vb.vb_expr in
              Vsummary.record ~modname:ctx.Vanalyze.modname ~name s;
              env
          | _ -> Vanalyze.analyze_binding ctx env vb)
        env vbs
  | Tstr_module mb -> analyze_module_binding ctx env mb
  | Tstr_recmodule mbs ->
      List.fold_left (analyze_module_binding ctx) env mbs
  | Tstr_eval (e, _) -> fst (Vanalyze.analyze_expr ctx env e)
  | _ -> env

and analyze_module_binding ctx env (mb : module_binding) =
  let sub =
    match mb.mb_id with
    | Some id -> Ident.name id
    | None -> ctx.Vanalyze.modname
  in
  (* inner module: its bindings key under the inner module's own name,
     which is how [Path.Pdot] call sites resolve them (Hoh.Window.spend
     has parent "Window") *)
  ignore (analyze_module_expr { ctx with Vanalyze.modname = sub } env mb.mb_expr);
  env

let analyze_file ~out (f : file) =
  let ctx = mk_ctx ~modname:f.f_modname ~ref_accum:f.f_ref_accum ~out in
  ignore (analyze_structure ctx Vanalyze.empty_env f.f_structure)

(* Run the whole thing; returns (diags, sups) sorted by position. *)
let run paths =
  Vsummary.reset ();
  let files = List.filter_map load_cmt paths in
  let silent = { Vanalyze.diags = []; sups = []; emit = false } in
  (* two summary passes for recursion/late bindings *)
  List.iter (analyze_file ~out:silent) files;
  List.iter (analyze_file ~out:silent) files;
  let out = { Vanalyze.diags = []; sups = []; emit = true } in
  List.iter (analyze_file ~out) files;
  let cmp_pos (a : Vdiag.t) (b : Vdiag.t) =
    match compare a.Vdiag.file b.Vdiag.file with
    | 0 -> compare (a.Vdiag.line, a.Vdiag.col) (b.Vdiag.line, b.Vdiag.col)
    | c -> c
  in
  (* The same protocol fault often trips two detectors on one line (the
     field read and the builtin that consumed it); one report per
     (file, line, rule) is the useful granularity. *)
  let diags =
    List.sort_uniq
      (fun a b ->
        match compare a.Vdiag.file b.Vdiag.file with
        | 0 -> (
            match compare a.Vdiag.line b.Vdiag.line with
            | 0 -> compare a.Vdiag.rule b.Vdiag.rule
            | c -> c)
        | c -> c)
      (List.sort cmp_pos out.Vanalyze.diags)
  in
  let sups =
    List.sort_uniq compare out.Vanalyze.sups
  in
  (diags, sups)
