(* Diagnostics for the hohtx static tools.

   One schema (hohtx-diag/1) shared by hohtx_verify and hohtx_lint --json,
   so CI and editors consume both tools through one parser. A diagnostic
   names the rule, the source position, and — for the path-sensitive
   verifier — the offending control-flow path, plus a one-line repro
   command in the soak/DST convention. *)

type rule = {
  id : string;  (* stable SARIF ruleId, e.g. "reservation-leak" *)
  code : string;  (* short code, e.g. "HV004" *)
  summary : string;  (* one-line rule description *)
}

let rules : rule list =
  [
    { id = "trusted-without-reason"; code = "HV000";
      summary = "[@hohtx.trusted] suppression without a reason string" };
    { id = "deref-before-check"; code = "HV001";
      summary =
        "a carried pointer is dereferenced before the window re-checks \
         its reservation (Get)" };
    { id = "use-after-free"; code = "HV002";
      summary = "a freed (or disposed) node is dereferenced" };
    { id = "free-under-live-reservation"; code = "HV003";
      summary =
        "a node is freed/disposed without being revoked first, so a \
         concurrent reservation may still protect it" };
    { id = "reservation-leak"; code = "HV004";
      summary =
        "an exit path commits with a reservation neither released, \
         revoked, nor handed over" };
    { id = "double-revoke"; code = "HV005";
      summary = "a node already revoked/invalidated is revoked again" };
    { id = "non-deferred-free"; code = "HV006";
      summary =
        "Mempool.free runs inside a transaction without Tm.defer / a \
         ~free closure, racing the window's revoke" };
    { id = "lock-leak"; code = "HV007";
      summary =
        "an exit path (including an exception edge) leaves the middle \
         lock held" };
    { id = "magazine-drain-in-txn"; code = "HV008";
      summary =
        "Mempool.drain_magazines runs inside a transaction; drains are \
         quiescence-only" };
    { id = "raw-access"; code = "HV009";
      summary =
        "non-transactional access (Tm.peek/Tm.poke, raw Atomic) to a \
         shared node's payload inside a transaction" };
  ]

let find_rule id = List.find_opt (fun r -> r.id = id) rules

type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
  path : string list;
      (* branch decisions leading to the violation, outermost first *)
  fn : string;  (* enclosing function, for the message *)
}

type suppression = { s_file : string; s_line : int; reason : string }

let repro ~alias d =
  Printf.sprintf "dune build %s   # or: --filter %s" alias
    (Filename.basename d.file)

let pp_text ?(alias = "@verify") oc d =
  Printf.fprintf oc "%s:%d:%d: [%s] %s%s\n" d.file d.line d.col d.rule
    d.message
    (if d.fn = "" then "" else Printf.sprintf " (in %s)" d.fn);
  (match d.path with
  | [] -> ()
  | p ->
      Printf.fprintf oc "  path: %s\n" (String.concat " -> " p));
  Printf.fprintf oc "  repro: %s\n" (repro ~alias d)

let pp_github oc d =
  Printf.fprintf oc "::error file=%s,line=%d,col=%d::[%s] %s%s\n" d.file
    d.line d.col d.rule d.message
    (match d.path with
    | [] -> ""
    | p -> Printf.sprintf " (path: %s)" (String.concat " -> " p))

(* ---- hohtx-diag/1 JSON ---- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let diag_json ~alias d =
  Printf.sprintf
    "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"rule\":\"%s\",\"message\":\"%s\",\"path\":[%s],\"repro\":\"%s\"}"
    (json_escape d.file) d.line d.col (json_escape d.rule)
    (json_escape d.message)
    (String.concat ","
       (List.map (fun p -> "\"" ^ json_escape p ^ "\"") d.path))
    (json_escape (repro ~alias d))

let to_json ~tool ~alias (diags : t list) (sups : suppression list) =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"hohtx-diag/1\",\"tool\":\"%s\"," tool);
  Buffer.add_string b
    (Printf.sprintf "\"diagnostics\":[%s],"
       (String.concat "," (List.map (diag_json ~alias) diags)));
  Buffer.add_string b
    (Printf.sprintf "\"suppressions\":[%s],"
       (String.concat ","
          (List.map
             (fun s ->
               Printf.sprintf
                 "{\"file\":\"%s\",\"line\":%d,\"reason\":\"%s\"}"
                 (json_escape s.s_file) s.s_line (json_escape s.reason))
             sups)));
  Buffer.add_string b
    (Printf.sprintf "\"counts\":{\"diagnostics\":%d,\"suppressions\":%d}}"
       (List.length diags) (List.length sups));
  Buffer.contents b

(* ---- --expect files: lines of "file.ml:LINE:rule-id" ---- *)

let parse_expect_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | line ->
            let line = String.trim line in
            if line = "" || String.length line > 0 && line.[0] = '#' then
              go acc
            else
              (match String.split_on_char ':' line with
              | [ f; l; r ] -> go ((f, int_of_string l, r) :: acc)
              | _ ->
                  failwith
                    (Printf.sprintf "%s: bad expect line %S" path line))
      in
      go [])

let expect_key d = (Filename.basename d.file, d.line, d.rule)

(* Compare found diagnostics against an expectation multiset; returns the
   mismatches as human-readable lines (empty = exact match). Counted, not
   set-membership: a rule regressing from firing twice to once on the same
   line must be caught, and duplicate expect lines must be earned. *)
let check_expect expected diags =
  let found = List.map expect_key diags in
  let count k l = List.length (List.filter (( = ) k) l) in
  List.concat_map
    (fun ((f, l, r) as k) ->
      let want = count k expected and got = count k found in
      if got < want then
        [
          Printf.sprintf "missing expected %s:%d:%s (want %d, got %d)" f l
            r want got;
        ]
      else if got > want then
        [
          Printf.sprintf "unexpected %s:%d:%s (want %d, got %d)" f l r want
            got;
        ]
      else [])
    (List.sort_uniq compare (expected @ found))
