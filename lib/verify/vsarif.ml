(* SARIF 2.1.0 emission for GitHub code-scanning upload.

   Hand-rolled (the repo deliberately avoids JSON dependencies; cf.
   lib/telemetry/tel_json.ml). One run, one driver, the rule table from
   Vdiag, each diagnostic as a "result" with its path trace rendered into
   the message, and [@hohtx.trusted] uses reported as suppressed notes so
   the code-scanning UI shows where the verifier was waved through. *)

let esc = Vdiag.json_escape

let rule_json (r : Vdiag.rule) =
  Printf.sprintf
    "{\"id\":\"%s\",\"name\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\"defaultConfiguration\":{\"level\":\"error\"}}"
    (esc r.Vdiag.id) (esc r.Vdiag.code) (esc r.Vdiag.summary)

let location_json ~file ~line ~col =
  Printf.sprintf
    "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}"
    (esc file) line (max 1 col)

let result_json (d : Vdiag.t) =
  let message =
    match d.Vdiag.path with
    | [] -> d.Vdiag.message
    | p ->
        Printf.sprintf "%s [path: %s]" d.Vdiag.message
          (String.concat " -> " p)
  in
  Printf.sprintf
    "{\"ruleId\":\"%s\",\"level\":\"error\",\"message\":{\"text\":\"%s\"},\"locations\":[%s]}"
    (esc d.Vdiag.rule) (esc message)
    (location_json ~file:d.Vdiag.file ~line:d.Vdiag.line ~col:(d.Vdiag.col + 1))

let suppression_json (s : Vdiag.suppression) =
  Printf.sprintf
    "{\"ruleId\":\"trusted-suppression\",\"level\":\"note\",\"message\":{\"text\":\"[@hohtx.trusted] %s\"},\"locations\":[%s],\"suppressions\":[{\"kind\":\"inSource\",\"justification\":\"%s\"}]}"
    (esc s.Vdiag.reason)
    (location_json ~file:s.Vdiag.s_file ~line:s.Vdiag.s_line ~col:1)
    (esc s.Vdiag.reason)

let to_string ?(tool = "hohtx_verify") ?(version = "1.0.0")
    (diags : Vdiag.t list) (sups : Vdiag.suppression list) =
  let results =
    List.map result_json diags @ List.map suppression_json sups
  in
  String.concat ""
    [
      "{\"$schema\":\"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",";
      "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{";
      Printf.sprintf "\"name\":\"%s\",\"version\":\"%s\"," (esc tool)
        (esc version);
      "\"informationUri\":\"https://github.com/hohtx/hohtx\",";
      Printf.sprintf "\"rules\":[%s]}},"
        (String.concat ","
           (List.map rule_json Vdiag.rules
            @ [
                "{\"id\":\"trusted-suppression\",\"name\":\"HVSUP\",\"shortDescription\":{\"text\":\"[@hohtx.trusted] in-source suppression\"},\"defaultConfiguration\":{\"level\":\"note\"}}";
              ]));
      Printf.sprintf "\"results\":[%s]," (String.concat "," results);
      Printf.sprintf
        "\"properties\":{\"suppressionCount\":%d,\"diagnosticCount\":%d}}]}"
        (List.length sups) (List.length diags);
    ]
