(* Interprocedural effect rows.

   A summary is computed bottom-up per function (module-level bindings and
   local [let]/[let rec] closures alike) and applied at call sites, so a
   helper like [List_walk.walk] advances its caller's typestate instead of
   havocking it. Transfers are per-parameter: what protocol operations the
   callee performs on that argument, and what it therefore requires of the
   argument's abstract state. *)

type ptransfer = {
  mutable derefs : bool;  (* reads/writes a field of this parameter *)
  mutable checks : bool;  (* upgrades it via Get / an equality witness *)
  mutable reserves : bool;
  mutable releases : bool;
  mutable revokes : bool;  (* revoke / Mode.invalidate *)
  mutable frees : bool;  (* Mempool.free / Mode.dispose *)
  mutable requires_retired : bool;
      (* the free path expects the node already revoked (dispose-style);
         calling it on an un-revoked node is free-under-live-reservation *)
}

let fresh_ptransfer () =
  {
    derefs = false;
    checks = false;
    reserves = false;
    releases = false;
    revokes = false;
    frees = false;
    requires_retired = false;
  }

(* Where the returned node (if any) comes from: a fresh pool allocation, a
   shared transactional read, or one of the parameters passed through. *)
type src = Sfresh | Sshared | Sparam of int

type t = {
  params : ptransfer array;
  mutable ret_sources : src list;  (* [] = the result carries no node *)
  mutable may_raise : bool;
  mutable releases_all : bool;  (* discharges every live reservation *)
  mutable acquires_lock : bool;
  mutable releases_lock : bool;
  mutable drains : bool;  (* calls Mempool.drain_magazines *)
}

let create ~arity =
  {
    params = Array.init arity (fun _ -> fresh_ptransfer ());
    ret_sources = [];
    may_raise = false;
    releases_all = false;
    acquires_lock = false;
    releases_lock = false;
    drains = false;
  }

let param t i =
  if i >= 0 && i < Array.length t.params then Some t.params.(i) else None

let add_ret_source t s =
  if not (List.mem s t.ret_sources) then t.ret_sources <- s :: t.ret_sources

(* The global summary table: module-level functions keyed by
   (immediate module basename, value name), filled in dependency order by
   the driver.  "Basename" strips dune's wrapping prefix, so
   [Structs__List_walk.walk] and [List_walk.walk] resolve identically. *)
let table : (string * string, t) Hashtbl.t = Hashtbl.create 256

let record ~modname ~name summary =
  Hashtbl.replace table (modname, name) summary

let lookup ~modname ~name = Hashtbl.find_opt table (modname, name)
let reset () = Hashtbl.reset table
