(* The flow-sensitive, interprocedural typestate analysis over .cmt
   typedtrees.

   Abstract state per node-typed binding:

     Fresh ── reserve ──▶ (obligation)      alloc'd, thread-private
     Shared               read from a tvar this window: deref OK (the
                          window's read-set validation protects it)
     Checked              Get returned Some (or an equality witness
                          against a checked node) this window
     Carried              a shared/checked value that crossed a window
                          boundary through an outer ref: deref is
                          deref-before-check until a new Get
     Retired              revoked/invalidated this window
     Freed                freed/disposed: deref is use-after-free

   Obligations (reservations, middle locks) must be discharged on every
   exit path; branch joins keep an obligation alive if either side does
   and remember which branch kept it, so diagnostics can name the
   offending path. Exception edges are modelled by joining the
   environment at every (may-)raising point into the innermost handler,
   and by checking lock obligations at raise points that escape the
   function. Reservations are transactional (they roll back with an
   abort), so only committing exits are charged for them.

   Everything is resolved through typedtree [Path.t]s and label
   descriptions — no [Longident] guessing. *)

open Typedtree

module IM = Map.Make (String)

(* compiler-libs no longer exposes integer stamps; [unique_name] ("x/1023")
   is unique within a compilation unit, which is all we key by *)
let stamp = Ident.unique_name

(* ---- paths and types ---- *)

let strip_prefix s =
  (* "Structs__Lnode" -> "Lnode"; dune's wrapping prefix is irrelevant to
     recognition. *)
  let n = String.length s in
  let rec last_sep i best =
    if i >= n - 1 then best
    else if s.[i] = '_' && s.[i + 1] = '_' then last_sep (i + 1) (i + 2)
    else last_sep (i + 1) best
  in
  let k = last_sep 0 0 in
  if k > 0 && k < n then String.sub s k (n - k) else s

let rec path_parts = function
  | Path.Pident id -> [ strip_prefix (Ident.name id) ]
  | Path.Pdot (p, s) -> path_parts p @ [ strip_prefix s ]
  | Path.Papply (f, _) -> path_parts f
  | Path.Pextra_ty (p, _) -> path_parts p

(* (parent module, name): [Rr.Hoh.apply] -> ("Hoh", "apply"). *)
let path_key p =
  match List.rev (path_parts p) with
  | name :: parent :: _ -> (parent, name)
  | [ name ] -> ("", name)
  | [] -> ("", "")

let node_modules = [ "Lnode"; "Snode"; "Tnode" ]

(* Fields on node records that are legitimately non-transactional. *)
let benign_node_fields = [ "gen"; "pstate"; "id" ]

let rec type_key ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, args, _) -> Some (path_key p, args)
  | Types.Tlink t | Types.Tsubst (t, _) -> type_key t
  | Types.Tpoly (t, _) -> type_key t
  | _ -> None

let rec node_of_type ty =
  (* [`Node m], [`Opt m] for [m.t option], or [`No]. *)
  match type_key ty with
  | Some ((m, "t"), _) when List.mem m node_modules -> `Node m
  | Some (("", "option"), [ a ]) | Some (("Stdlib", "option"), [ a ]) -> (
      match node_of_type a with `Node m -> `Opt m | _ -> `No)
  | _ -> `No

let is_txn_type ty =
  match type_key ty with Some (("Tm", "txn"), _) -> true | _ -> false

let is_ref_type ty =
  match type_key ty with
  | Some (("Stdlib", "ref"), _) | Some (("", "ref"), _) -> true
  | _ -> false

(* Record kinds recognized through label descriptions. *)
let record_kind (lbl : Types.label_description) =
  match type_key lbl.Types.lbl_res with
  | Some ((("Rr" | "Rr_intf"), "ops"), _) -> `Rr_ops
  | Some (("Mode", "t"), _) -> `Mode
  | Some ((m, "t"), _) when List.mem m node_modules -> `Node_record m
  | _ -> `Other

(* ---- abstract values ---- *)

type nstate =
  | Nbot
  | Nunknown
  | Fresh
  | Checked
  | Shared
  | Retired
  | Carried
  | Freed

let sev = function
  | Nbot -> 0
  | Nunknown -> 1
  | Fresh -> 2
  | Checked -> 3
  | Shared -> 4
  | Retired -> 5
  | Carried -> 6
  | Freed -> 7

let join_state a b = if sev a >= sev b then a else b

let state_name = function
  | Nbot -> "none"
  | Nunknown -> "unknown"
  | Fresh -> "fresh"
  | Checked -> "checked"
  | Shared -> "shared-read"
  | Retired -> "retired"
  | Carried -> "carried-unchecked"
  | Freed -> "freed"

(* Aging across a window boundary: a check or an in-window read does not
   survive into the next transaction; private and already-dead states do. *)
let age = function Shared | Checked -> Carried | s -> s

type prov = Pparam of int | Plocal

type aval =
  | Anode of nstate * prov
  | Awrap of nstate * prov  (* option / single-node constructor payload *)
  | Aref of string  (* tracked ref cell, by unique ident name *)
  | Atuple of aval list
  | Atxn
  | Acurtxn  (* result of Tm.current_txn *)
  | Abot  (* diverges *)
  | Aother

let join_prov a b = match (a, b) with Pparam i, Pparam j when i = j -> a | _ -> Plocal

let rec join_aval a b =
  match (a, b) with
  | Abot, x | x, Abot -> x
  | Anode (s1, p1), Anode (s2, p2) -> Anode (join_state s1 s2, join_prov p1 p2)
  | Awrap (s1, p1), Awrap (s2, p2) -> Awrap (join_state s1 s2, join_prov p1 p2)
  | (Anode _ as n), Awrap (s, p) | Awrap (s, p), (Anode _ as n) ->
      join_aval n (Anode (s, p))
  | Aref i, Aref j when i = j -> a
  | Atuple l1, Atuple l2 when List.length l1 = List.length l2 ->
      Atuple (List.map2 join_aval l1 l2)
  | Atxn, Atxn -> Atxn
  | Acurtxn, Acurtxn -> Acurtxn
  | _ -> Aother

(* ---- obligations ---- *)

type okind = Oresv | Olock

type obl = {
  o_id : int;
  o_kind : okind;
  o_node : string option;  (* unique ident of the reserved node / lock *)
  o_loc : Location.t;
  o_what : string;
  mutable o_trace : string list;  (* branch decisions that kept it alive *)
}

let obl_counter = ref 0

let fresh_obl ~kind ~node ~loc ~what =
  incr obl_counter;
  { o_id = !obl_counter; o_kind = kind; o_node = node; o_loc = loc;
    o_what = what; o_trace = [] }

(* ---- environments ---- *)

type rcell = { r_state : nstate; r_prov : prov; r_this_window : bool }

type env = {
  vals : aval IM.t;
  refs : rcell IM.t;
  obls : obl list;
}

let empty_env = { vals = IM.empty; refs = IM.empty; obls = [] }

let join_env ?left ?right e1 e2 =
  let tag side o =
    (match side with
    | Some lbl when not (List.mem lbl o.o_trace) ->
        o.o_trace <- lbl :: o.o_trace
    | _ -> ());
    o
  in
  let vals =
    IM.merge
      (fun _ a b ->
        match (a, b) with
        | Some a, Some b -> Some (join_aval a b)
        | Some a, None | None, Some a -> Some a
        | None, None -> None)
      e1.vals e2.vals
  in
  let refs =
    IM.merge
      (fun _ a b ->
        match (a, b) with
        | Some a, Some b ->
            Some
              {
                r_state = join_state a.r_state b.r_state;
                r_prov = join_prov a.r_prov b.r_prov;
                r_this_window = a.r_this_window && b.r_this_window;
              }
        | Some a, None | None, Some a -> Some a
        | None, None -> None)
      e1.refs e2.refs
  in
  let in_either =
    List.map
      (fun o ->
        if List.exists (fun o2 -> o2.o_id = o.o_id) e2.obls then o
        else tag left o)
      e1.obls
    @ List.filter_map
        (fun o ->
          if List.exists (fun o2 -> o2.o_id = o.o_id) e1.obls then None
          else Some (tag right o))
        e2.obls
  in
  { vals; refs; obls = in_either }

let set_val env id v = { env with vals = IM.add (stamp id) v env.vals }
let get_val env id = IM.find_opt (stamp id) env.vals

let discharge env ~kind ~node =
  {
    env with
    obls =
      List.filter
        (fun o ->
          not
            (o.o_kind = kind
            && match node with None -> true | Some s -> o.o_node = Some s))
        env.obls;
  }

(* ---- diagnostics plumbing ---- *)

type out = {
  mutable diags : Vdiag.t list;
  mutable sups : Vdiag.suppression list;
  emit : bool;  (* final pass only *)
}

let loc_pos (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_fname, p.Lexing.pos_lnum,
   p.Lexing.pos_cnum - p.Lexing.pos_bol)

(* ---- analysis context ---- *)

type exnacc = { mutable x_envs : env list; mutable x_traces : string list }

type ctx = {
  in_txn : bool;
  free_ok : bool;
  no_txn : bool;
  trusted : bool;
  fname : string;
  modname : string;
  trace : string list;  (* innermost first *)
  handler : exnacc option;  (* innermost enclosing try, if any *)
  summary : Vsummary.t;  (* row under construction for enclosing fn *)
  locals : (string, Vsummary.t) Hashtbl.t;  (* closures by unique ident *)
  ref_accum : (string, nstate * prov) Hashtbl.t;
      (* per-function: join of every state ever assigned to each outer
         ref, used as the entry content of the next window (fixpoint
         across the two module passes) *)
  out : out;
}

let report ctx ~loc ~rule msg =
  if ctx.trusted then ()
  else if ctx.out.emit then begin
    let file, line, col = loc_pos loc in
    ctx.out.diags <-
      {
        Vdiag.rule;
        file;
        line;
        col;
        message = msg;
        path = List.rev ctx.trace;
        fn = ctx.fname;
      }
      :: ctx.out.diags
  end

let push ctx lbl = { ctx with trace = lbl :: (match ctx.trace with l when List.length l >= 6 -> List.filteri (fun i _ -> i < 5) l | l -> l) }

let lline (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* [@hohtx.trusted "reason"] *)
let trusted_attr (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.Parsetree.attr_name.Location.txt = "hohtx.trusted" then
        Some
          (match a.Parsetree.attr_payload with
          | Parsetree.PStr
              [
                {
                  pstr_desc =
                    Pstr_eval
                      ( {
                          pexp_desc =
                            Pexp_constant (Pconst_string (s, _, _));
                          _;
                        },
                        _ );
                  _;
                };
              ] ->
              (a.Parsetree.attr_name.Location.loc, Some s)
          | _ -> (a.Parsetree.attr_name.Location.loc, None))
      else None)
    attrs

let enter_trusted ctx ~loc attrs =
  match trusted_attr attrs with
  | None -> ctx
  | Some (aloc, reason) ->
      let aloc = if aloc = Location.none then loc else aloc in
      if ctx.out.emit then begin
        let file, line, _ = loc_pos aloc in
        match reason with
        | Some r ->
            ctx.out.sups <-
              { Vdiag.s_file = file; s_line = line; reason = r }
              :: ctx.out.sups
        | None ->
            ctx.out.diags <-
              {
                Vdiag.rule = "trusted-without-reason";
                file;
                line;
                col = 0;
                message =
                  "[@hohtx.trusted] must carry a reason string explaining \
                   why the verifier is being waved through";
                path = [];
                fn = ctx.fname;
              }
              :: ctx.out.diags
      end;
      if reason <> None then { ctx with trusted = true } else ctx

(* may-raise bookkeeping: join the current env into the innermost
   handler; when no handler encloses the point inside this function, a
   live lock obligation leaks on the exception edge. *)
let note_raise ctx env ~loc ~definite =
  (match ctx.handler with
  | Some acc ->
      acc.x_envs <- env :: acc.x_envs;
      if definite then
        acc.x_traces <-
          Printf.sprintf "exception edge from line %d" (lline loc)
          :: acc.x_traces
  | None ->
      List.iter
        (fun o ->
          if o.o_kind = Olock && definite then
            report
              (push ctx
                 (Printf.sprintf "exception edge at line %d" (lline loc)))
              ~loc ~rule:"lock-leak"
              (Printf.sprintf
                 "middle lock acquired at line %d is still held when this \
                  exception escapes"
                 (lline o.o_loc)))
        env.obls);
  ()

(* ---- the expression interpreter ---- *)

let rec state_of_aval = function
  | Anode (s, _) | Awrap (s, _) -> s
  | Atuple l ->
      List.fold_left (fun acc v -> join_state acc (state_of_aval v)) Nbot l
  | _ -> Nbot

let prov_of_aval = function Anode (_, p) | Awrap (_, p) -> p | _ -> Plocal

(* Record a per-param effect in the enclosing function's summary. *)
let on_param ctx prov f =
  match prov with
  | Pparam i -> (
      match Vsummary.param ctx.summary i with
      | Some pt -> f pt
      | None -> ())
  | Plocal -> ()

let rec bind_pattern :
    type k. ctx -> env -> k general_pattern -> aval -> env =
 fun ctx env pat v ->
  match pat.pat_desc with
  | Tpat_var (id, _) -> set_val env id v
  | Tpat_alias (p, id, _) -> bind_pattern ctx (set_val env id v) p v
  | Tpat_tuple ps -> (
      match v with
      | Atuple vs when List.length vs = List.length ps ->
          List.fold_left2 (bind_pattern ctx) env ps vs
      | _ ->
          List.fold_left (fun e p -> bind_pattern ctx e p Aother) env ps)
  | Tpat_construct (_, cd, args, _) -> (
      match (cd.Types.cstr_name, args, v) with
      | "Some", [ p ], (Awrap (s, pr) | Anode (s, pr)) ->
          bind_pattern ctx env p (Anode (s, pr))
      | "None", [], _ -> env
      | _, args, Awrap (s, pr) ->
          (* single-node constructor payload (e.g. [Unlink n]) *)
          List.fold_left
            (fun e (p : value general_pattern) ->
              match node_of_type p.pat_type with
              | `Node _ -> bind_pattern ctx e p (Anode (s, pr))
              | _ -> bind_pattern ctx e p Aother)
            env args
      | _ ->
          List.fold_left (fun e p -> bind_pattern ctx e p Aother) env args)
  | Tpat_value arg ->
      bind_pattern ctx env (arg :> value general_pattern) v
  | Tpat_exception p -> bind_pattern ctx env p Aother
  | Tpat_or (p1, p2, _) ->
      let e1 = bind_pattern ctx env p1 v in
      bind_pattern ctx e1 p2 v
  | Tpat_record (fields, _) ->
      List.fold_left
        (fun e (_, _, p) -> bind_pattern ctx e p Aother)
        env fields
  | Tpat_lazy p -> bind_pattern ctx env p Aother
  | Tpat_array ps ->
      List.fold_left (fun e p -> bind_pattern ctx e p Aother) env ps
  | Tpat_variant (_, Some p, _) -> bind_pattern ctx env p Aother
  | _ -> env

(* Deref check: [base.field] is being read/written (transactionally or
   not). *)
and check_deref ctx env ~loc base_aval =
  let s = state_of_aval base_aval in
  (match base_aval with
  | Anode (_, p) | Awrap (_, p) -> on_param ctx p (fun pt -> pt.derefs <- true)
  | _ -> ());
  match s with
  | Carried ->
      report ctx ~loc ~rule:"deref-before-check"
        "dereference of a pointer carried across a window boundary before \
         this window's reservation check (Get) has validated it"
  | Freed ->
      report ctx ~loc ~rule:"use-after-free"
        "dereference of a node that was already freed/disposed on this path"
  | _ -> ignore env

and analyze_expr ctx env (e : expression) : env * aval =
  let ctx = enter_trusted ctx ~loc:e.exp_loc e.exp_attributes in
  match e.exp_desc with
  | Texp_ident (p, _, _) -> (
      match p with
      | Path.Pident id -> (
          match get_val env id with
          | Some v -> (env, v)
          | None -> (env, aval_of_type e.exp_type))
      | _ -> (env, aval_of_type e.exp_type))
  | Texp_constant _ -> (env, Aother)
  | Texp_let (_, vbs, body) ->
      let env =
        List.fold_left
          (fun env (vb : value_binding) ->
            analyze_binding ctx env vb)
          env vbs
      in
      analyze_expr ctx env body
  | Texp_function _ ->
      (* an anonymous closure in value position: analyze its body (it may
         violate rules internally); callers treat it as opaque *)
      ignore (analyze_lambda ctx env ~name:"<lambda>" e);
      (env, Aother)
  | Texp_apply (fn, args) -> analyze_apply ctx env e fn args
  | Texp_match (scrut, cases, _) -> analyze_match ctx env e scrut cases
  | Texp_try (body, cases) ->
      let acc = { x_envs = []; x_traces = [] } in
      let benv, bval =
        analyze_expr { ctx with handler = Some acc } env body
      in
      let hentry =
        List.fold_left join_env env acc.x_envs
      in
      let hctx =
        push ctx
          (match acc.x_traces with
          | t :: _ -> t
          | [] ->
              Printf.sprintf "exception edge into handler at line %d"
                (lline e.exp_loc))
      in
      let joined =
        List.fold_left
          (fun (accenv, accval) (c : value case) ->
            let henv = bind_pattern hctx hentry c.c_lhs Aother in
            let henv, hval = analyze_expr hctx henv c.c_rhs in
            match accenv with
            | None -> (Some henv, hval)
            | Some a -> (Some (join_env a henv), join_aval accval hval))
          (None, Abot) cases
      in
      (match joined with
      | Some henv, hval -> (join_env benv henv, join_aval bval hval)
      | None, _ -> (benv, bval))
  | Texp_tuple es ->
      let env, vs =
        List.fold_left
          (fun (env, acc) e ->
            let env, v = analyze_expr ctx env e in
            (env, v :: acc))
          (env, []) es
      in
      (env, Atuple (List.rev vs))
  | Texp_construct (_, cd, args) -> (
      let env, vs =
        List.fold_left
          (fun (env, acc) e ->
            let env, v = analyze_expr ctx env e in
            (env, v :: acc))
          (env, []) args
      in
      let vs = List.rev vs in
      match (cd.Types.cstr_name, vs) with
      | "Some", [ v ] -> (env, Awrap (state_of_aval v, prov_of_aval v))
      | "None", [] -> (env, Awrap (Nbot, Plocal))
      | "Hand_off", [ v ] ->
          (* the hand-over: the reservation obligation transfers with the
             committed reservation *)
          let env =
            match args with
            | [ { exp_desc = Texp_ident (Path.Pident id, _, _); _ } ] ->
                discharge env ~kind:Oresv ~node:(Some (stamp id))
            | _ -> discharge env ~kind:Oresv ~node:None
          in
          (env, Awrap (state_of_aval v, prov_of_aval v))
      | _, vs
        when List.exists (fun v -> state_of_aval v <> Nbot) vs
             && List.length args = 1 ->
          (env, Awrap (state_of_aval (List.hd vs), prov_of_aval (List.hd vs)))
      | _ -> (env, Aother))
  | Texp_variant (_, Some arg) ->
      let env, _ = analyze_expr ctx env arg in
      (env, Aother)
  | Texp_variant (_, None) -> (env, Aother)
  | Texp_field (base, _, lbl) ->
      let env, bval = analyze_expr ctx env base in
      (match record_kind lbl with
      | `Node_record _ -> check_deref ctx env ~loc:e.exp_loc bval
      | _ -> ());
      (env, aval_of_type e.exp_type)
  | Texp_setfield (base, _, lbl, v) ->
      let env, bval = analyze_expr ctx env base in
      (match record_kind lbl with
      | `Node_record _ -> check_deref ctx env ~loc:e.exp_loc bval
      | _ -> ());
      let env, _ = analyze_expr ctx env v in
      (env, Aother)
  | Texp_ifthenelse (cond, ethen, eelse) -> (
      let env, _ = analyze_expr ctx env cond in
      let tctx = push ctx (Printf.sprintf "then-branch at line %d" (lline ethen.exp_loc)) in
      let tenv, tval = analyze_expr tctx env ethen in
      match eelse with
      | Some eelse ->
          let ectx = push ctx (Printf.sprintf "else-branch at line %d" (lline eelse.exp_loc)) in
          let eenv, eval_ = analyze_expr ectx env eelse in
          ( join_env
              ~left:(Printf.sprintf "then-branch at line %d" (lline ethen.exp_loc))
              ~right:(Printf.sprintf "else-branch at line %d" (lline eelse.exp_loc))
              tenv eenv,
            join_aval tval eval_ )
      | None ->
          ( join_env
              ~left:(Printf.sprintf "then-branch at line %d" (lline ethen.exp_loc))
              ~right:"fall-through else" tenv env,
            Aother ))
  | Texp_sequence (e1, e2) ->
      let env, _ = analyze_expr ctx env e1 in
      analyze_expr ctx env e2
  | Texp_while (cond, body) ->
      let env, _ = analyze_expr ctx env cond in
      let benv, _ = analyze_expr ctx env body in
      (join_env env benv, Aother)
  | Texp_for (id, _, lo, hi, _, body) ->
      let env, _ = analyze_expr ctx env lo in
      let env, _ = analyze_expr ctx env hi in
      let benv, _ = analyze_expr ctx (set_val env id Aother) body in
      (join_env env benv, Aother)
  | Texp_assert (e1, _) -> (
      match e1.exp_desc with
      | Texp_construct (_, { Types.cstr_name = "false"; _ }, []) ->
          note_raise ctx env ~loc:e.exp_loc ~definite:true;
          (env, Abot)
      | Texp_apply
          ( { exp_desc = Texp_ident (p, _, _); _ },
            [ (_, Some a1); (_, Some a2) ] )
        when (match path_key p with
             | m, "equal" when List.mem m node_modules -> true
             | _ -> false) ->
          (* assert (Lnode.equal s n): an equality witness against a
             checked node upgrades the other side (the dlist two-phase
             remove re-validates its carried target this way) *)
          let env, v1 = analyze_expr ctx env a1 in
          let env, v2 = analyze_expr ctx env a2 in
          let upgrade env src tgt targ =
            if state_of_aval src = Checked then begin
              (match targ.exp_desc with
              | Texp_ident (Path.Pident id, _, _) ->
                  on_param ctx (prov_of_aval tgt) (fun pt ->
                      pt.checks <- true);
                  set_val env id (Anode (Checked, prov_of_aval tgt))
              | _ -> env)
            end
            else env
          in
          let env = upgrade env v1 v2 a2 in
          let env = upgrade env v2 v1 a1 in
          (env, Aother)
      | _ ->
          let env, _ = analyze_expr ctx env e1 in
          (env, Aother))
  | Texp_lazy e1 ->
      let env, _ = analyze_expr ctx env e1 in
      (env, Aother)
  | Texp_record { fields; extended_expression; _ } ->
      let env =
        match extended_expression with
        | Some e1 -> fst (analyze_expr ctx env e1)
        | None -> env
      in
      let env =
        Array.fold_left
          (fun env (_, def) ->
            match def with
            | Overridden (_, e1) -> fst (analyze_expr ctx env e1)
            | Kept _ -> env)
          env fields
      in
      (env, Aother)
  | Texp_array es ->
      ( List.fold_left (fun env e1 -> fst (analyze_expr ctx env e1)) env es,
        Aother )
  | Texp_letmodule (_, _, _, _, body) -> analyze_expr ctx env body
  | Texp_open (_, body) -> analyze_expr ctx env body
  | Texp_letexception (_, body) -> analyze_expr ctx env body
  | _ -> (env, Aother)

and aval_of_type ty =
  match node_of_type ty with
  | `Node _ -> Anode (Nunknown, Plocal)
  | `Opt _ -> Awrap (Nunknown, Plocal)
  | `No -> if is_txn_type ty then Atxn else Aother

and analyze_binding ctx env (vb : value_binding) =
  let ctx = enter_trusted ctx ~loc:vb.vb_loc vb.vb_attributes in
  match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
  | Tpat_var (id, _), Texp_function _ ->
      (* a local closure: compute its summary (twice, for recursion) and
         register it so calls advance the caller's typestate. The warm-up
         run is silenced — its diagnostics predate the closure's own
         summary and would be stale. *)
      let name = Ident.name id in
      let warm =
        { ctx with out = { diags = []; sups = []; emit = false } }
      in
      let s1 = analyze_lambda warm env ~name vb.vb_expr in
      Hashtbl.replace ctx.locals (stamp id) s1;
      let s2 = analyze_lambda ctx env ~name vb.vb_expr in
      Hashtbl.replace ctx.locals (stamp id) s2;
      env
  | ( Tpat_var (id, _),
      Texp_apply
        ({ exp_desc = Texp_ident (p, _, _); _ }, [ (_, Some init) ]) )
    when path_key p = ("Stdlib", "ref")
         && (match node_of_type init.exp_type with
            | `Node _ | `Opt _ -> true
            | `No -> false) ->
      (* [let cell = ref init] over nodes / node options: track the cell
         so reads inside later windows see the aged (carried) state *)
      let env, v = analyze_expr ctx env init in
      let stamp = stamp id in
      let st = state_of_aval v and pr = prov_of_aval v in
      (match Hashtbl.find_opt ctx.ref_accum stamp with
      | Some (s0, p0) ->
          Hashtbl.replace ctx.ref_accum stamp
            (join_state s0 st, join_prov p0 pr)
      | None -> Hashtbl.replace ctx.ref_accum stamp (st, pr));
      let env =
        {
          env with
          refs =
            IM.add stamp
              { r_state = st; r_prov = pr; r_this_window = true }
              env.refs;
        }
      in
      set_val env id (Aref stamp)
  | _ ->
      let env, v = analyze_expr ctx env vb.vb_expr in
      bind_pattern ctx env vb.vb_pat v

(* ---- matches ---- *)

and analyze_match ctx env e scrut (cases : computation case list) =
  let acc = { x_envs = []; x_traces = [] } in
  let has_exn_case =
    List.exists
      (fun (c : computation case) ->
        match c.c_lhs.pat_desc with
        | Tpat_exception _ -> true
        | Tpat_or ({ pat_desc = Tpat_exception _; _ }, _, _) -> true
        | _ -> false)
      cases
  in
  (* one scrutinee run, under the handler when an exception case exists:
     x_envs must snapshot the state at each raise point, not the
     post-success state — a callee's Get upgrade performed on the success
     path must not leak into the exception branch *)
  let pre_env = env in
  let scrut_ctx =
    if has_exn_case then { ctx with handler = Some acc } else ctx
  in
  let env, sval = analyze_expr scrut_ctx pre_env scrut in
  let branch (accenv, accval) (c : computation case) =
    let lbl =
      Printf.sprintf "match case at line %d" (lline c.c_rhs.exp_loc)
    in
    let bctx = push ctx lbl in
    (* refine: [match ops.get txn n with Some x] checks x (and n);
       [match Tm.current_txn () with None] enables bare frees *)
    let benv =
      match (sval, c.c_lhs.pat_desc) with
      | Acurtxn, Tpat_value arg -> (
          match (arg :> value general_pattern).pat_desc with
          | Tpat_construct (_, { Types.cstr_name = "None"; _ }, _, _) ->
              env
          | _ -> env)
      | _ -> env
    in
    let is_none_case =
      match c.c_lhs.pat_desc with
      | Tpat_value arg -> (
          match (arg :> value general_pattern).pat_desc with
          | Tpat_construct (_, { Types.cstr_name = "None"; _ }, _, _) ->
              true
          | _ -> false)
      | _ -> false
    in
    let bctx =
      if sval = Acurtxn && is_none_case then { bctx with no_txn = true }
      else bctx
    in
    let is_exn_case =
      match c.c_lhs.pat_desc with Tpat_exception _ -> true | _ -> false
    in
    (* exception cases enter with the raise-point envs (joined with the
       pre-scrutinee snapshot), never with the scrutinee's success state *)
    let benv =
      if is_exn_case then List.fold_left join_env pre_env acc.x_envs
      else benv
    in
    let benv = bind_pattern bctx benv c.c_lhs sval in
    let benv =
      match c.c_guard with
      | Some g -> fst (analyze_expr bctx benv g)
      | None -> benv
    in
    let bctx =
      if is_exn_case then
        push ctx (Printf.sprintf "exception case at line %d" (lline c.c_rhs.exp_loc))
      else bctx
    in
    let benv, bval = analyze_expr bctx benv c.c_rhs in
    match accenv with
    | None -> (Some benv, bval)
    | Some a -> (Some (join_env ~right:lbl a benv), join_aval accval bval)
  in
  match List.fold_left branch (None, Abot) cases with
  | Some benv, bval -> (benv, bval)
  | None, bval -> (env, bval)

(* ---- applications ---- *)

and analyze_args ctx env args =
  (* analyze non-function args left to right; lambdas are handled by the
     caller (they may need txn context) *)
  List.fold_left
    (fun (env, acc) (lbl, arg) ->
      match arg with
      | None -> (env, acc @ [ (lbl, None) ])
      | Some (a : expression) -> (
          match a.exp_desc with
          | Texp_function _ -> (env, acc @ [ (lbl, Some (a, Aother)) ])
          | _ ->
              let env, v = analyze_expr ctx env a in
              (env, acc @ [ (lbl, Some (a, v)) ])))
    (env, []) args

and node_arg args =
  (* last unlabelled argument that is a tracked node *)
  List.fold_left
    (fun acc (lbl, arg) ->
      match (lbl, arg) with
      | Asttypes.Nolabel, Some ((a : expression), v) -> (
          match node_of_type a.exp_type with
          | `Node _ | `Opt _ -> Some (a, v)
          | `No -> acc)
      | _ -> acc)
    None args

and ident_of (a : expression) =
  match a.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some (stamp id)
  | _ -> None

and set_node_state env (a : expression) st =
  match a.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> (
      match get_val env id with
      | Some (Anode (_, p)) -> set_val env id (Anode (st, p))
      | Some (Awrap (_, p)) -> set_val env id (Awrap (st, p))
      | _ -> set_val env id (Anode (st, Plocal)))
  | _ -> env

and analyze_lambda_args ctx env args =
  (* analyze lambda args that were deferred by [analyze_args], in plain
     context (used when the callee is unknown) *)
  List.iter
    (fun (_, arg) ->
      match arg with
      | Some ((a : expression), _) -> (
          match a.exp_desc with
          | Texp_function _ ->
              ignore (analyze_lambda ctx env ~name:"<lambda>" a)
          | _ -> ())
      | None -> ())
    args

and analyze_apply ctx env (e : expression) fn args =
  match fn.exp_desc with
  | Texp_field (base, _, lbl) -> (
      let env, bval = analyze_expr ctx env base in
      ignore bval;
      let env, args = analyze_args ctx env args in
      match (record_kind lbl, lbl.Types.lbl_name) with
      | `Rr_ops, op -> apply_rr_op ctx env e op args
      | `Mode, ("invalidate" | "dispose") ->
          apply_mode_op ctx env e lbl.Types.lbl_name args
      | _ ->
          analyze_lambda_args ctx env args;
          note_raise ctx env ~loc:e.exp_loc ~definite:false;
          (env, aval_of_type e.exp_type))
  | Texp_ident (p, _, _) -> apply_path ctx env e p args
  | _ ->
      let env, _ = analyze_expr ctx env fn in
      let env, args = analyze_args ctx env args in
      analyze_lambda_args ctx env args;
      note_raise ctx env ~loc:e.exp_loc ~definite:false;
      (env, aval_of_type e.exp_type)

and apply_rr_op ctx env e op args =
  let loc = e.exp_loc in
  match (op, node_arg args) with
  | "reserve", Some (a, v) ->
      on_param ctx (prov_of_aval v) (fun pt -> pt.reserves <- true);
      let env =
        match (prov_of_aval v, ident_of a) with
        | Pparam _, _ ->
            (* reserving a caller-supplied node: the obligation is the
               caller's (recorded in the effect row) *)
            env
        | Plocal, node ->
            {
              env with
              obls =
                fresh_obl ~kind:Oresv ~node ~loc
                  ~what:"reservation"
                :: env.obls;
            }
      in
      (env, Aother)
  | "release", node -> (
      match node with
      | Some (a, v) ->
          on_param ctx (prov_of_aval v) (fun pt -> pt.releases <- true);
          (discharge env ~kind:Oresv ~node:(ident_of a), Aother)
      | None -> (discharge env ~kind:Oresv ~node:None, Aother))
  | "release_all", _ ->
      ctx.summary.Vsummary.releases_all <- true;
      (discharge env ~kind:Oresv ~node:None, Aother)
  | "get", Some (a, v) ->
      on_param ctx (prov_of_aval v) (fun pt -> pt.checks <- true);
      let env = set_node_state env a Checked in
      (env, Awrap (Checked, prov_of_aval v))
  | "revoke", Some (a, v) ->
      on_param ctx (prov_of_aval v) (fun pt -> pt.revokes <- true);
      if state_of_aval v = Retired then
        report ctx ~loc ~rule:"double-revoke"
          "this node was already revoked/invalidated on this path";
      let env = discharge env ~kind:Oresv ~node:(ident_of a) in
      (set_node_state env a Retired, Aother)
  | _ -> (env, Aother)

and apply_mode_op ctx env e op args =
  let loc = e.exp_loc in
  match (op, node_arg args) with
  | "invalidate", Some (a, v) ->
      on_param ctx (prov_of_aval v) (fun pt -> pt.revokes <- true);
      if state_of_aval v = Retired then
        report ctx ~loc ~rule:"double-revoke"
          "this node was already revoked/invalidated on this path";
      let env = discharge env ~kind:Oresv ~node:(ident_of a) in
      (set_node_state env a Retired, Aother)
  | "dispose", Some (a, v) ->
      on_param ctx (prov_of_aval v) (fun pt ->
          pt.frees <- true;
          pt.requires_retired <- true);
      (match state_of_aval v with
      | Retired | Nunknown | Nbot | Fresh -> ()
      | Freed ->
          report ctx ~loc ~rule:"use-after-free"
            "this node was already freed/disposed on this path"
      | Shared | Checked | Carried ->
          report ctx ~loc ~rule:"free-under-live-reservation"
            "dispose without a prior revoke/invalidate: concurrent \
             reservations on this node may still be live when it is \
             reclaimed");
      (set_node_state env a Freed, Aother)
  | _ -> (env, Aother)

and free_checks ctx env ~loc (a : expression) v =
  on_param ctx (prov_of_aval v) (fun pt -> pt.frees <- true);
  if ctx.in_txn && (not ctx.free_ok) && not ctx.no_txn then
    report ctx ~loc ~rule:"non-deferred-free"
      "Mempool.free inside a transaction without Tm.defer / a ~free \
       closure: the free races the window's revoke";
  let stamp = ident_of a in
  if
    List.exists
      (fun o -> o.o_kind = Oresv && o.o_node <> None && o.o_node = stamp)
      env.obls
  then
    report ctx ~loc ~rule:"free-under-live-reservation"
      "this function still holds a reservation on the node it is freeing";
  (match state_of_aval v with
  | Shared | Checked | Carried ->
      report ctx ~loc ~rule:"free-under-live-reservation"
        "freeing a shared node that was never revoked: concurrent \
         reservations may still protect it"
  | Freed ->
      report ctx ~loc ~rule:"use-after-free"
        "this node was already freed on this path"
  | _ -> ());
  set_node_state env a Freed

and apply_path ctx env (e : expression) p args =
  let loc = e.exp_loc in
  let key = path_key p in
  (* local closure? *)
  let local_summary =
    match p with
    | Path.Pident id -> Hashtbl.find_opt ctx.locals (stamp id)
    | _ -> None
  in
  match (key, local_summary) with
  | ("Stdlib", "ref"), None ->
      (* untracked [ref] in expression position; node-carrying refs are
         recognized at their let binding (see [analyze_binding]) *)
      let env, _ = analyze_args ctx env args in
      (env, Aother)
  | ("Stdlib", "!"), None -> (
      let env, args = analyze_args ctx env args in
      match args with
      | [ (_, Some (_, Aref r)) ] -> (
          match IM.find_opt r env.refs with
          | Some c ->
              let st =
                if ctx.in_txn && not c.r_this_window then age c.r_state
                else c.r_state
              in
              (env, Awrap (st, c.r_prov))
          | None -> (env, Aother))
      | _ -> (env, Aother))
  | ("Stdlib", ":="), None -> (
      let env, args = analyze_args ctx env args in
      match args with
      | [ (_, Some (_, Aref r)); (_, Some (_, v)) ] ->
          let st = state_of_aval v and pr = prov_of_aval v in
          (match Hashtbl.find_opt ctx.ref_accum r with
          | Some (s0, p0) ->
              Hashtbl.replace ctx.ref_accum r
                (join_state s0 st, join_prov p0 pr)
          | None -> Hashtbl.replace ctx.ref_accum r (st, pr));
          ( {
              env with
              refs =
                IM.add r
                  { r_state = st; r_prov = pr; r_this_window = true }
                  env.refs;
            },
            Aother )
      | _ -> (env, Aother))
  | ( ( ("Stdlib", ("raise" | "raise_notrace" | "failwith" | "invalid_arg"))
      | ("", ("raise" | "raise_notrace" | "failwith" | "invalid_arg")) ),
      None ) ->
      let env, _ = analyze_args ctx env args in
      ctx.summary.Vsummary.may_raise <- true;
      note_raise ctx env ~loc ~definite:true;
      (env, Abot)
  | ((("Mempool", "alloc") | (("Lnode" | "Snode" | "Tnode"), "alloc")), None)
    ->
      let env, _ = analyze_args ctx env args in
      if node_of_type e.exp_type <> `No then (env, Anode (Fresh, Plocal))
      else (env, Aother)
  | (("Mempool", "free"), None) -> (
      let env, args = analyze_args ctx env args in
      match node_arg args with
      | Some (a, v) -> (free_checks ctx env ~loc a v, Aother)
      | None -> (env, Aother))
  | (("Mempool", "drain_magazines"), None) ->
      let env, _ = analyze_args ctx env args in
      ctx.summary.Vsummary.drains <- true;
      if ctx.in_txn then
        report ctx ~loc ~rule:"magazine-drain-in-txn"
          "Mempool.drain_magazines inside a transaction: magazine drains \
           free whole depot batches and are only safe at quiescence";
      (env, Aother)
  | (("Tm", ("read" | "write")), None) ->
      let env, args = analyze_args ctx env args in
      (* the tvar argument: a field of a node record? *)
      List.iter
        (fun (_, arg) ->
          match arg with
          | Some ((a : expression), _) -> (
              match a.exp_desc with
              | Texp_field (base, _, lbl) -> (
                  match record_kind lbl with
                  | `Node_record _ -> (
                      match base.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) -> (
                          match get_val env id with
                          | Some bv -> check_deref ctx env ~loc bv
                          | None -> ())
                      | _ -> ())
                  | _ -> ())
              | _ -> ())
          | None -> ())
        args;
      if snd key = "read" then
        match node_of_type e.exp_type with
        | `Node _ -> (env, Anode (Shared, Plocal))
        | `Opt _ -> (env, Awrap (Shared, Plocal))
        | `No -> (env, Aother)
      else (env, Aother)
  | (("Tm", ("peek" | "poke")), None) ->
      let env, args = analyze_args ctx env args in
      List.iter
        (fun (_, arg) ->
          match arg with
          | Some ((a : expression), _) -> (
              match a.exp_desc with
              | Texp_field (base, _, lbl) -> (
                  match record_kind lbl with
                  | `Node_record _ -> (
                      match base.exp_desc with
                      | Texp_ident (Path.Pident id, _, _) -> (
                          match get_val env id with
                          | Some bv -> (
                              match state_of_aval bv with
                              | Freed ->
                                  report ctx ~loc ~rule:"use-after-free"
                                    "non-transactional access to a freed \
                                     node"
                              | (Shared | Checked | Carried | Retired)
                                when ctx.in_txn ->
                                  report ctx ~loc ~rule:"raw-access"
                                    (Printf.sprintf
                                       "Tm.%s on a %s node's payload \
                                        inside a transaction bypasses the \
                                        TM (no version check, no \
                                        validation)"
                                       (snd key)
                                       (state_name (state_of_aval bv)))
                              | _ -> ())
                          | None -> ())
                      | _ -> ())
                  | _ -> ())
              | _ -> ())
          | None -> ())
        args;
      (env, if snd key = "peek" then aval_of_type e.exp_type else Aother)
  | (("Tm", "defer"), None) ->
      let env, args = analyze_args ctx env args in
      List.iter
        (fun (_, arg) ->
          match arg with
          | Some ((a : expression), _) -> (
              match a.exp_desc with
              | Texp_function _ ->
                  (* defer bodies run right after commit, outside the
                     transaction, with frees sanctioned *)
                  ignore
                    (analyze_lambda
                       { ctx with in_txn = false; free_ok = true }
                       env ~name:"<defer>" a)
              | _ -> ())
          | None -> ())
        args;
      (env, Aother)
  | (("Tm", ("atomic" | "atomic_stamped")), None)
  | (("Hoh", ("apply" | "apply_stamped" | "run")), None) ->
      let is_hoh = fst key = "Hoh" in
      let env, args = analyze_args ctx env args in
      List.iter
        (fun (_, arg) ->
          match arg with
          | Some ((a : expression), _) -> (
              match a.exp_desc with
              | Texp_function _ ->
                  ignore
                    (analyze_lambda
                       { ctx with in_txn = true; free_ok = false }
                       env
                       ~name:(if is_hoh then "<step>" else "<atomic>")
                       ~start_checked:is_hoh ~window_entry:true a)
              | _ -> ())
          | None -> ())
        args;
      (env, aval_of_type e.exp_type)
  | (("Tm", "current_txn"), None) ->
      let env, _ = analyze_args ctx env args in
      (env, Acurtxn)
  | ((m, "middle_acquire"), None) when m <> "San" ->
      (* San.middle_acquire is the sanitizer's notification hook, not an
         acquisition *)
      let env, args = analyze_args ctx env args in
      ctx.summary.Vsummary.acquires_lock <- true;
      let node =
        List.fold_left
          (fun acc (_, arg) ->
            match arg with
            | Some ((a : expression), _) -> (
                match ident_of a with Some s -> Some s | None -> acc)
            | None -> acc)
          None args
      in
      ( {
          env with
          obls =
            fresh_obl ~kind:Olock ~node ~loc ~what:"middle lock"
            :: env.obls;
        },
        Aother )
  | ((m, "middle_release"), None) when m <> "San" ->
      let env, _ = analyze_args ctx env args in
      ctx.summary.Vsummary.releases_lock <- true;
      (discharge env ~kind:Olock ~node:None, Aother)
  | _ -> (
      let env, aargs = analyze_args ctx env args in
      (* known summary? module-level first, then local closures *)
      let summary =
        match local_summary with
        | Some s -> Some s
        | None -> (
            match Vsummary.lookup ~modname:(fst key) ~name:(snd key) with
            | Some s -> Some s
            | None -> Vsummary.lookup ~modname:ctx.modname ~name:(snd key))
      in
      match summary with
      | Some s -> apply_summary ctx env e s aargs
      | None ->
          analyze_lambda_args ctx env aargs;
          note_raise ctx env ~loc ~definite:false;
          (env, aval_of_type e.exp_type))

and apply_summary ctx env (e : expression) (s : Vsummary.t) args =
  let loc = e.exp_loc in
  analyze_lambda_args ctx env args;
  if s.Vsummary.may_raise then begin
    ctx.summary.Vsummary.may_raise <- true;
    note_raise ctx env ~loc ~definite:false
  end;
  if s.Vsummary.drains && ctx.in_txn then
    report ctx ~loc ~rule:"magazine-drain-in-txn"
      "this call drains mempool magazines, but runs inside a transaction";
  (* the callee's effects are the caller's effects: a recursive retry
     loop that releases through a helper must itself count as releasing *)
  if s.Vsummary.drains then ctx.summary.Vsummary.drains <- true;
  if s.Vsummary.acquires_lock then ctx.summary.Vsummary.acquires_lock <- true;
  if s.Vsummary.releases_lock then ctx.summary.Vsummary.releases_lock <- true;
  if s.Vsummary.releases_all then ctx.summary.Vsummary.releases_all <- true;
  let env = if s.Vsummary.releases_all then discharge env ~kind:Oresv ~node:None else env in
  let env =
    if s.Vsummary.releases_lock then discharge env ~kind:Olock ~node:None
    else env
  in
  let env =
    if s.Vsummary.acquires_lock && not s.Vsummary.releases_lock then
      {
        env with
        obls =
          fresh_obl ~kind:Olock ~node:None ~loc ~what:"middle lock"
          :: env.obls;
      }
    else env
  in
  (* positional node params: walk provided args in order, matching the
     callee's rows in order of node-typed arguments *)
  let idx = ref (-1) in
  let env = ref env in
  List.iter
    (fun (_, arg) ->
      match arg with
      | Some ((a : expression), v)
        when (match node_of_type a.exp_type with
             | `No -> false
             | _ -> true) -> (
          incr idx;
          match nth_node_param s !idx with
          | None -> ()
          | Some pt ->
              let st = state_of_aval v in
              if pt.Vsummary.derefs && not pt.Vsummary.checks then begin
                match st with
                | Carried ->
                    report ctx ~loc ~rule:"deref-before-check"
                      "this call dereferences its argument, but the \
                       carried pointer has not been re-checked in this \
                       window"
                | Freed ->
                    report ctx ~loc ~rule:"use-after-free"
                      "this call dereferences its argument, which was \
                       already freed on this path"
                | _ -> ()
              end;
              if pt.Vsummary.checks then
                env := set_node_state !env a Checked;
              if pt.Vsummary.revokes then begin
                if st = Retired then
                  report ctx ~loc ~rule:"double-revoke"
                    "the callee revokes/invalidates this node, which was \
                     already revoked on this path";
                env := discharge !env ~kind:Oresv ~node:(ident_of a);
                env := set_node_state !env a Retired
              end;
              if pt.Vsummary.frees then begin
                let st' =
                  match ident_of a with
                  | Some id -> (
                      match IM.find_opt id !env.vals with
                      | Some v -> state_of_aval v
                      | None -> st)
                  | None -> st
                in
                (if pt.Vsummary.requires_retired then
                   match st' with
                   | Shared | Checked | Carried ->
                       report ctx ~loc
                         ~rule:"free-under-live-reservation"
                         "the callee disposes this node, but it was never \
                          revoked/invalidated on this path"
                   | Freed ->
                       report ctx ~loc ~rule:"use-after-free"
                         "the callee frees this node, which was already \
                          freed on this path"
                   | _ -> ());
                env := set_node_state !env a Freed
              end;
              if pt.Vsummary.reserves then
                env :=
                  {
                    !env with
                    obls =
                      fresh_obl ~kind:Oresv ~node:(ident_of a) ~loc
                        ~what:"reservation (via callee)"
                      :: !env.obls;
                  };
              if pt.Vsummary.releases then
                env := discharge !env ~kind:Oresv ~node:(ident_of a))
      | _ -> ())
    args;
  (* result *)
  let ret =
    if s.Vsummary.ret_sources = [] then aval_of_type e.exp_type
    else
      let st =
        List.fold_left
          (fun acc src ->
            match src with
            | Vsummary.Sfresh -> join_state acc Fresh
            | Vsummary.Sshared -> join_state acc Shared
            | Vsummary.Sparam i -> (
                (* state of the i-th node argument *after* the callee's
                   effects: a helper that checks and returns its parameter
                   must yield a Checked result, not the stale pre-call
                   (possibly Carried) state from the argument list *)
                let cur = ref (-1) in
                let st = ref Nunknown in
                List.iter
                  (fun (_, arg) ->
                    match arg with
                    | Some ((a : expression), v) -> (
                        match node_of_type a.exp_type with
                        | `Node _ | `Opt _ ->
                            incr cur;
                            if !cur = i then
                              st :=
                                (match ident_of a with
                                | Some id -> (
                                    match IM.find_opt id !env.vals with
                                    | Some pv -> state_of_aval pv
                                    | None -> state_of_aval v)
                                | None -> (
                                    (* non-ident argument: the env holds no
                                       binding to read back, so apply the
                                       row's upgrade directly *)
                                    match Vsummary.param s i with
                                    | Some pt when pt.Vsummary.checks ->
                                        Checked
                                    | _ -> state_of_aval v))
                        | `No -> ())
                    | None -> ())
                  args;
                join_state acc !st))
          Nbot s.Vsummary.ret_sources
      in
      match node_of_type e.exp_type with
      | `Node _ -> Anode (st, Plocal)
      | `Opt _ -> Awrap (st, Plocal)
      | `No -> Aother
  in
  (!env, ret)

and nth_node_param (s : Vsummary.t) i = Vsummary.param s i

(* ---- functions ---- *)

(* Collect the parameter chain of a [Texp_function] nest. *)
and collect_params (e : expression) =
  match e.exp_desc with
  | Texp_function { arg_label; param; cases = [ c ]; _ } -> (
      match c.c_lhs.pat_desc with
      | Tpat_var _ | Tpat_alias _ | Tpat_any | Tpat_tuple _
      | Tpat_construct _ | Tpat_record _ ->
          let rest, body = collect_params c.c_rhs in
          ((arg_label, param, c.c_lhs, c.c_lhs.pat_type) :: rest, body)
      | _ -> ([], e))
  | _ -> ([], e)

and analyze_lambda ?(start_checked = false) ?(window_entry = false) ctx env
    ~name (e : expression) : Vsummary.t =
  let params, body = collect_params e in
  if params = [] then begin
    (* multi-case function: treat as single param + match *)
    match e.exp_desc with
    | Texp_function { cases; param; _ } ->
        let summary = Vsummary.create ~arity:1 in
        let fctx =
          {
            ctx with
            fname = name;
            summary;
            handler = None;
          }
        in
        ignore param;
        let entry = List.map (fun o -> o.o_id) env.obls in
        List.iter
          (fun (c : value case) ->
            let benv = bind_pattern fctx env c.c_lhs Aother in
            let benv, _ = analyze_expr fctx benv c.c_rhs in
            check_exits ~entry fctx benv)
          cases;
        summary
    | _ -> Vsummary.create ~arity:0
  end
  else begin
    let entry_obls = env.obls in
    let has_txn_param =
      List.exists (fun (_, _, _, ty) -> is_txn_type ty) params
    in
    let summary = Vsummary.create ~arity:(count_node_params params) in
    (* window boundary: entering a transaction body ages every ref
       assigned elsewhere in the enclosing function to its
       across-windows state *)
    let env =
      if window_entry || has_txn_param then
        {
          env with
          refs =
            IM.mapi
              (fun r c ->
                match Hashtbl.find_opt ctx.ref_accum r with
                | Some (s0, p0) ->
                    {
                      r_state = join_state c.r_state s0;
                      r_prov = join_prov c.r_prov p0;
                      r_this_window = false;
                    }
                | None -> { c with r_this_window = false })
              env.refs;
        }
      else env
    in
    let fctx =
      {
        ctx with
        fname = name;
        summary;
        handler = None;
        in_txn = ctx.in_txn || has_txn_param;
      }
    in
    (* bind parameters *)
    let nidx = ref (-1) in
    let env, _ =
      List.fold_left
        (fun (env, i) (lbl, _, pat, ty) ->
          let v =
            match node_of_type ty with
            | `Node _ ->
                incr nidx;
                Anode (Nunknown, Pparam !nidx)
            | `Opt _ ->
                incr nidx;
                let st =
                  if
                    start_checked
                    && (match lbl with
                       | Asttypes.Labelled "start"
                       | Asttypes.Optional "start" ->
                           true
                       | _ -> i = 1 (* second param of a step *))
                  then Checked
                  else Nunknown
                in
                Awrap (st, Pparam !nidx)
            | `No ->
                if is_txn_type ty then Atxn
                else if is_ref_type ty then Aother
                else Aother
          in
          (bind_pattern fctx env pat v, i + 1))
        (env, 0) params
    in
    let env, ret = analyze_expr fctx env body in
    (* return sources *)
    (match ret with
    | Anode (st, pr) | Awrap (st, pr) ->
        (match pr with
        | Pparam i -> Vsummary.add_ret_source summary (Vsummary.Sparam i)
        | Plocal -> (
            match st with
            | Fresh -> Vsummary.add_ret_source summary Vsummary.Sfresh
            | Shared | Checked | Carried ->
                Vsummary.add_ret_source summary Vsummary.Sshared
            | _ -> ()))
    | _ -> ());
    check_exits ~entry:(List.map (fun o -> o.o_id) entry_obls) fctx env;
    summary
  end

and count_node_params params =
  List.length
    (List.filter
       (fun (_, _, _, ty) ->
         match node_of_type ty with `Node _ | `Opt _ -> true | `No -> false)
       params)

(* Obligations must be discharged on every committing exit path. Only
   obligations the function itself acquired are its to discharge — a
   closure (defer body, retry step) may legitimately run while its
   enclosing scope still holds a reservation. *)
and check_exits ?(entry = []) ctx env =
  List.iter
    (fun o ->
      if List.mem o.o_id entry then ()
      else
        let ctx =
          List.fold_left (fun c t -> push c t) ctx (List.rev o.o_trace)
        in
        match o.o_kind with
        | Oresv ->
            report ctx ~loc:o.o_loc ~rule:"reservation-leak"
              (Printf.sprintf
                 "%s acquired here is neither released, revoked, nor \
                  handed over on some exit path of %s"
                 o.o_what ctx.fname)
        | Olock ->
            report ctx ~loc:o.o_loc ~rule:"lock-leak"
              (Printf.sprintf
                 "%s acquired here is still held on some exit path of %s"
                 o.o_what ctx.fname))
    env.obls

