(** Manual cache-line isolation for contended heap objects.

    OCaml 5.1 has no [Atomic.make_contended], and the minor heap's bump
    allocator places successively allocated small blocks on the same cache
    line. A per-thread flag array built with [Array.init n (fun _ ->
    Atomic.make false)] therefore packs up to eight atomics per 64-byte
    line, and every CAS or store by one thread invalidates the line under
    all of its neighbours — classic false sharing, and exactly the pattern
    on the TM's commit hot path.

    The fix is the standard multicore-OCaml idiom (cf. [multicore-magic]'s
    [copy_as_padded]): re-allocate the object as an over-sized block whose
    trailing words are unused filler, so no two padded objects can share a
    line. Atomic and record primitives address fields by index, so the
    extra words are invisible to ordinary code; they are visible only to
    structural equality/hashing/marshalling, which must not be applied to
    padded values. *)

val words : int
(** Size, in words, of a padded block: two 64-byte cache lines, so that a
    padded object also defeats adjacent-line prefetching. *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is [Atomic.make v] isolated on its own cache lines. *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded x] returns a copy of the record or tuple [x] whose
    block is padded to at least {!words} words. Returns [x] unchanged for
    immediates and unscannable blocks (strings, float arrays). Do {b not}
    apply to arrays — [Array.length] is derived from the block size — or
    to values that are later compared or hashed structurally. *)
