(* Two cache lines (2 x 64 bytes / 8-byte words): padding a single line
   still leaves neighbours exposed to adjacent-line prefetch pairing. *)
let words = 16

(* [Obj.new_block] initializes scannable fields to [()], so the filler
   words are always valid values for the GC to scan. *)
let pad_block src =
  let sz = Obj.size src in
  let dst = Obj.new_block (Obj.tag src) (max words sz) in
  for i = 0 to sz - 1 do
    Obj.set_field dst i (Obj.field src i)
  done;
  dst

let atomic (v : 'a) : 'a Atomic.t =
  (* An [Atomic.t] is a single-field block addressed by field index, so a
     wider block behaves identically under the [%atomic_*] primitives. *)
  (Obj.magic (pad_block (Obj.repr (Atomic.make v))) : 'a Atomic.t)

let copy_as_padded (x : 'a) : 'a =
  let o = Obj.repr x in
  if Obj.is_int o || Obj.tag o >= Obj.no_scan_tag || Obj.size o >= words then x
  else (Obj.magic (pad_block o) : 'a)
