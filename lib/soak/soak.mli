(** Adversarial soak harness: scripted churn phases plus two adversaries
    — a stalled reader and a mid-commit/mid-2PC crash — over any
    {!Harness.Factories.Spec} (or the sharded service router), with a
    reclamation-backlog oracle built on {!Mempool.live} accounting.

    The harness exists to measure the paper's headline contrast rather
    than assert it: precise RR reclamation bounds unreclaimed garbage
    where an amortized scheme (EBR) can be wedged forever by one stalled
    reader. Churn phases run on real domains (thread join/leave flows
    through the watermark quiescence: every worker finalizes and its id
    is recycled between phases); the adversaries run under the DST
    virtual scheduler so a kill mid-commit is a deterministic, replayable
    event. Every failure carries a one-line reproduction command. *)

(** {1 Churn-phase scripts} *)

type shape =
  | Grow  (** insert-heavy wave: 70% insert / 10% remove / 20% lookup *)
  | Shrink  (** remove-heavy wave: 10% / 70% / 20% *)
  | Storm of float
      (** hot-key storm: balanced 30/30/40 mix with Zipfian keys at the
          given theta ({!Harness.Workload.Zipf}) *)
  | Mix of int
      (** steady state: the given lookup percentage, remainder split
          evenly between inserts and removes, uniform keys *)

type phase = { shape : shape; threads : int; ops : int (** per thread *) }

val shape_name : shape -> string

val print_phases : phase list -> string
(** Compact script form, e.g. ["grow:4x500,storm:2x800@0.99,mix:2x400@50"]
    — [shape:THREADSxOPS], with [@theta] for storms and [@lookup_pct] for
    mixes. Round-trips through {!parse_phases}. *)

val parse_phases : string -> (phase list, string) result

val gen_ops :
  seed:int ->
  key_bits:int ->
  phase_index:int ->
  thread:int ->
  phase ->
  Harness.Store.op array
(** The deterministic per-thread operation script: a pure function of
    (seed, key range, phase position, worker index, phase). Same inputs
    produce the identical array — the property that makes [@soak-smoke]
    replays exact (pinned by a qcheck test). *)

val repro :
  scenario:string ->
  seed:int ->
  ?key_bits:int ->
  ?phases:phase list ->
  Harness.Factories.Spec.t ->
  string
(** The one-line reproduction command embedded in every failure report
    and artifact: [main.exe soak --seed N --key-bits B --phases S --spec
    'JSON'] for churn runs ([scenario = "churn"]), [--scenario NAME]
    otherwise. *)

(** {1 Churn runner (real domains)} *)

type phase_result = {
  p_shape : string;
  p_threads : int;
  p_ops : int;  (** total operations completed in the phase *)
  p_elapsed_s : float;
  p_throughput : float;
  p_slo_violations : int;  (** operations slower than the SLO *)
  p_live_hwm : int;  (** max {!Mempool.live} sample during the phase *)
  p_backlog : int;
      (** reclaimable-but-unreclaimed slots at phase quiescence: the
          drop in pool-live across a full [Store.drain] — exactly what
          the reclaimer was still holding when every worker had left *)
}

type churn_result = {
  c_label : string;
  c_phases : phase_result list;
  c_san : (string * int) list;  (** TxSan Count-mode per-rule totals *)
  c_serial : (unit, string) result Stdlib.Option.t;
      (** [Some] iff [verify]: commit-stamp serializability of the logged
          history ({!Harness.Serial_check}) *)
  c_check : (unit, string) result;  (** structural check after the run *)
  c_leaked : int;  (** pool slots unaccounted for after the final drain *)
  c_repro : string;
}

val churn_failed : churn_result -> string option
(** [Some msg] when any oracle failed; [msg] ends with the repro line. *)

val run_churn :
  ?service:bool ->
  ?verify:bool ->
  ?slo_us:int ->
  seed:int ->
  key_bits:int ->
  phases:phase list ->
  Harness.Factories.Spec.t ->
  churn_result
(** Drive the spec through the phase script. [service] (default: on iff
    the spec's [shards] knob exceeds 1) routes every operation through
    {!Service.as_store}. [verify] (default true) logs each operation with
    its commit stamp and replays the whole history through the
    serializability checker (skipped for unstamped stores). [slo_us]
    (default 1000) is the per-operation latency SLO. The calling domain
    must be TM-registered. *)

(** {1 DST adversaries}

    Both scenarios reset thread ids and run under {!Dst.Sched.run}; call
    them only when no other domain is executing instrumented code. *)

type stall_result = {
  s_label : string;
  s_samples : int array;
      (** backlog trajectory: pool-live minus baseline after each churn
          round, while the reader is parked at a {!Dst.Hoh_handoff} *)
  s_hwm : int;  (** high-water mark of the trajectory *)
  s_final_backlog : int;
      (** what the final drain reclaimed after the parked reader was
          finalized — the wedged garbage the reader was pinning *)
  s_error : string option;  (** [Some] on any oracle failure, with repro *)
  s_repro : string;
}

val stalled_reader :
  ?rounds:int -> ?keys:int -> seed:int -> Harness.Factories.Spec.t -> stall_result
(** Park a reader mid-traversal (delay-armed at its own thread's
    [Hoh_handoff]) while one churn thread runs [rounds] remove/insert
    pairs on a disjoint key, sampling pool-live after each round. Under
    RR every round's free lands immediately and the trajectory stays at
    the baseline; under EBR the parked reader blocks epoch advance and
    the trajectory grows by one slot per round (the [epoch.mli] caveat,
    measured). After the run the killed reader is finalized, accounting
    must balance exactly, and the structure must pass its check. *)

type crash_result = {
  k_label : string;
  k_scenario : string;  (** ["crash-commit"] or ["crash-2pc"] *)
  k_recovered : int;  (** 2PC intents resolved by {!Service.recover} *)
  k_serial_ok : bool;  (** survivor history passes {!Harness.Serial_check} *)
  k_leaked : int;  (** pool slots unaccounted after recovery; must be 0 *)
  k_error : string option;
  k_repro : string;
}

val crash_mid_commit : seed:int -> Harness.Factories.Spec.t -> crash_result
(** Kill a remover parked at its window transaction's commit entry
    ([Tm_commit], thread-scoped arm) while a survivor thread keeps
    committing logged operations. The victim's buffered writes must
    vanish (survivor history serializes against the untouched initial
    contents), and after finalizing the victim no pool slot may leak. *)

val crash_mid_2pc :
  seed:int -> Harness.Factories.Spec.t -> crash_result
(** Kill a thread between the apply sub-steps of a cross-shard multi
    ([Svc_apply]); {!Service.recover} must roll the applied prefix back
    to all-or-nothing contents with exact pool accounting — including
    with magazines enabled, where the victim's cached slots are drained
    rather than leaked. The spec's [shards] knob must be at least 2. *)

(** {1 Telemetry} *)

val backlog_gauge : unit -> unit
(** Register (idempotently) the ["soak"/"backlog"] gauge publishing the
    churn runner's latest pool-live sample, high-water mark and quiesced
    backlog; no-op unless {!Telemetry.enabled}. The runner calls this
    itself when telemetry is on. *)
