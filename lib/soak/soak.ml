open Harness
module Spec = Factories.Spec
module Json = Telemetry.Json

(* ---- churn-phase scripts ---- *)

type shape = Grow | Shrink | Storm of float | Mix of int
type phase = { shape : shape; threads : int; ops : int }

let shape_name = function
  | Grow -> "grow"
  | Shrink -> "shrink"
  | Storm _ -> "storm"
  | Mix _ -> "mix"

let print_phase p =
  let base = Printf.sprintf "%s:%dx%d" (shape_name p.shape) p.threads p.ops in
  match p.shape with
  | Storm theta -> Printf.sprintf "%s@%g" base theta
  | Mix pct -> Printf.sprintf "%s@%d" base pct
  | Grow | Shrink -> base

let print_phases ps = String.concat "," (List.map print_phase ps)

let parse_phase s =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let* name, rest =
    match String.index_opt s ':' with
    | Some i ->
        Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> err "phase %S: missing ':'" s
  in
  let rest, arg =
    match String.index_opt rest '@' with
    | Some i ->
        ( String.sub rest 0 i,
          Some (String.sub rest (i + 1) (String.length rest - i - 1)) )
    | None -> (rest, None)
  in
  let* threads, ops =
    match String.split_on_char 'x' rest with
    | [ t; o ] -> (
        match (int_of_string_opt t, int_of_string_opt o) with
        | Some t, Some o when t >= 1 && o >= 1 -> Ok (t, o)
        | _ -> err "phase %S: counts must be THREADSxOPS, both >= 1" s)
    | _ -> err "phase %S: expected THREADSxOPS after ':'" s
  in
  let* shape =
    match (name, arg) with
    | "grow", None -> Ok Grow
    | "shrink", None -> Ok Shrink
    | "storm", Some a -> (
        match float_of_string_opt a with
        | Some th when th >= 0. -> Ok (Storm th)
        | _ -> err "phase %S: bad theta %S" s a)
    | "storm", None -> Ok (Storm 0.99)
    | "mix", Some a -> (
        match int_of_string_opt a with
        | Some p when p >= 0 && p <= 100 -> Ok (Mix p)
        | _ -> err "phase %S: lookup pct must be 0..100" s)
    | "mix", None -> Ok (Mix 50)
    | ("grow" | "shrink"), Some _ -> err "phase %S: %s takes no '@'" s name
    | _ -> err "phase %S: unknown shape %S" s name
  in
  Ok { shape; threads; ops }

let parse_phases s =
  let rec go acc = function
    | [] -> if acc = [] then Error "empty phase script" else Ok (List.rev acc)
    | p :: rest -> (
        match parse_phase p with
        | Ok ph -> go (ph :: acc) rest
        | Error _ as e -> e)
  in
  go [] (List.filter (fun p -> p <> "") (String.split_on_char ',' s))

(* (insert_pct, remove_pct); the remainder is lookups *)
let mix_of_shape = function
  | Grow -> (70, 10)
  | Shrink -> (10, 70)
  | Storm _ -> (30, 30)
  | Mix lookup_pct ->
      let w = 100 - lookup_pct in
      (w - (w / 2), w / 2)

let gen_ops ~seed ~key_bits ~phase_index ~thread phase =
  let range = 1 lsl key_bits in
  let rng =
    Workload.Rng.create
      ~seed:(seed lxor (0x50A5 * (phase_index + 1)))
      ~thread:(thread + 1)
  in
  let zipf =
    match phase.shape with
    | Storm theta ->
        Some (Workload.Zipf.create ~seed:(seed + (31 * phase_index)) ~theta range)
    | Grow | Shrink | Mix _ -> None
  in
  let ins_pct, rem_pct = mix_of_shape phase.shape in
  Array.init phase.ops (fun _ ->
      let key =
        match zipf with
        | Some z -> Workload.Zipf.draw z rng
        | None -> 1 + Workload.Rng.int rng range
      in
      let roll = Workload.Rng.int rng 100 in
      if roll < ins_pct then Store.Insert key
      else if roll < ins_pct + rem_pct then Store.Remove key
      else Store.Get key)

let repro ~scenario ~seed ?key_bits ?phases spec =
  let spec_s = Json.to_string (Spec.to_json spec) in
  let bits =
    match key_bits with
    | Some b -> Printf.sprintf " --key-bits %d" b
    | None -> ""
  in
  match phases with
  | Some ps ->
      Printf.sprintf "main.exe soak --seed %d%s --phases %s --spec '%s'" seed
        bits (print_phases ps) spec_s
  | None ->
      Printf.sprintf "main.exe soak --scenario %s --seed %d%s --spec '%s'"
        scenario seed bits spec_s

(* ---- the backlog gauge ---- *)

let g_last = Atomic.make 0
let g_hwm = Atomic.make 0
let g_backlog = Atomic.make 0

let backlog_gauge () =
  if
    Telemetry.enabled ()
    && not (Telemetry.Gauges.registered ~group:"soak" ~name:"backlog")
  then
    Telemetry.Gauges.register ~group:"soak" ~name:"backlog" (fun () ->
        [
          ("live", float_of_int (Atomic.get g_last));
          ("live_hwm", float_of_int (Atomic.get g_hwm));
          ("quiesced_backlog", float_of_int (Atomic.get g_backlog));
        ])

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

(* ---- churn runner ---- *)

type phase_result = {
  p_shape : string;
  p_threads : int;
  p_ops : int;
  p_elapsed_s : float;
  p_throughput : float;
  p_slo_violations : int;
  p_live_hwm : int;
  p_backlog : int;
}

type churn_result = {
  c_label : string;
  c_phases : phase_result list;
  c_san : (string * int) list;
  c_serial : (unit, string) result Stdlib.Option.t;
  c_check : (unit, string) result;
  c_leaked : int;
  c_repro : string;
}

(* Same two-phase start barrier as Driver: t0 is taken only after every
   worker has checked in, so the timed window covers exactly the op
   loops. *)
type barrier = { ready : int Atomic.t; go : bool Atomic.t }

let barrier_make n = { ready = Atomic.make n; go = Atomic.make false }

let barrier_arrive b =
  Atomic.decr b.ready;
  while not (Atomic.get b.go) do
    Domain.cpu_relax ()
  done

let barrier_await_ready b =
  while Atomic.get b.ready > 0 do
    Domain.cpu_relax ()
  done

let dummy_log =
  {
    Serial_check.op = Workload.Lookup;
    key = 0;
    result = false;
    earliest = 0;
    stamp = 0;
  }

let log_entry op (reply : Store.reply) =
  let wop =
    match op with
    | Store.Insert k -> (Workload.Insert, k)
    | Store.Remove k -> (Workload.Remove, k)
    | Store.Get k | Store.Scan { low = k; _ } -> (Workload.Lookup, k)
  in
  {
    Serial_check.op = fst wop;
    key = snd wop;
    result = Store.positive reply.Store.outcome;
    earliest = reply.Store.earliest;
    stamp = reply.Store.stamp;
  }

let churn_failed c =
  let fails =
    List.filter_map Fun.id
      [
        (match c.c_check with
        | Ok () -> None
        | Error e -> Some ("structural check: " ^ e));
        (match c.c_serial with
        | Some (Error e) -> Some ("serial check: " ^ e)
        | _ -> None);
        (if c.c_leaked <> 0 then
           Some (Printf.sprintf "%d pool slots unaccounted for" c.c_leaked)
         else None);
      ]
  in
  match fails with
  | [] -> None
  | fs -> Some (String.concat "; " fs ^ "\n  repro: " ^ c.c_repro)

let run_churn ?service ?(verify = true) ?(slo_us = 1000) ~seed ~key_bits
    ~phases spec =
  let use_service =
    match service with
    | Some b -> b
    | None -> ( match spec.Spec.shards with Some n -> n > 1 | None -> false)
  in
  let store, svc =
    if use_service then
      let svc = Service.create spec in
      (Service.as_store svc, Some svc)
    else ((Factories.make spec).Factories.make (), None)
  in
  backlog_gauge ();
  San.reset ();
  San.set_enabled ~mode:San.Count true;
  let repro_line = repro ~scenario:"churn" ~seed ~key_bits ~phases spec in
  let live () = Option.value (Store.pool_live store) ~default:0 in
  (* With the worker pool on, every churn op flows through the async
     path — bounded queue, fused drain, hot cache — instead of the
     synchronous gate, so the soak exercises the same machinery the
     service load bench measures. submit's default High priority is
     deliberate: a shed would answer [Overload] with no stamp and the
     serial check has nothing to linearize. *)
  let pooled_svc =
    match svc with Some s when Service.pooled s -> Some s | _ -> None
  in
  let exec_op ~thread op =
    match pooled_svc with
    | Some s -> (Service.await s (Service.submit s ~thread [| op |])).(0)
    | None -> Store.exec store ~thread op
  in
  let live_empty = live () in
  let tid = Tm.Thread.id () in
  let range = 1 lsl key_bits in
  let initial = List.init (range / 2) (fun i -> (2 * i) + 1) in
  List.iter (fun k -> ignore (Store.insert store ~thread:tid k)) initial;
  let live0 = live () and size0 = Store.size store in
  let do_verify = verify && Store.stamped store in
  let slo_ns = slo_us * 1000 in
  let logs = ref [] in
  let run_phase pi ph =
    let barrier = barrier_make ph.threads in
    let hwm = Atomic.make (live ()) in
    let slo = Atomic.make 0 in
    let worker d () =
      Tm.Thread.with_registered (fun wtid ->
          let ops = gen_ops ~seed ~key_bits ~phase_index:pi ~thread:d ph in
          let log =
            if do_verify then Array.make (Array.length ops) dummy_log else [||]
          in
          barrier_arrive barrier;
          Array.iteri
            (fun i op ->
              let t_op = Telemetry.now_ns () in
              let reply = exec_op ~thread:wtid op in
              if Telemetry.now_ns () - t_op > slo_ns then Atomic.incr slo;
              if do_verify then log.(i) <- log_entry op reply;
              if i land 15 = 0 then begin
                let lv = live () in
                Atomic.set g_last lv;
                atomic_max hwm lv;
                atomic_max g_hwm lv
              end)
            ops;
          (* thread leave: the watermark-quiescence hook (drains magazines,
             leaves the epoch) before the id is recycled for the next
             phase's workers *)
          Store.finalize_thread store ~thread:wtid;
          log)
    in
    let domains = List.init ph.threads (fun d -> Domain.spawn (worker d)) in
    barrier_await_ready barrier;
    let t0 = Telemetry.now_ns () in
    Atomic.set barrier.go true;
    let outs = List.map Domain.join domains in
    let elapsed = float_of_int (Telemetry.now_ns () - t0) /. 1e9 in
    if do_verify then logs := !logs @ outs;
    (* quiescence: every worker has left; what a full drain still frees is
       exactly the reclaimer's leftover backlog for this phase *)
    let pre = live () in
    Store.drain store;
    let backlog = pre - live () in
    Atomic.set g_backlog backlog;
    let total = ph.threads * ph.ops in
    {
      p_shape = print_phase ph;
      p_threads = ph.threads;
      p_ops = total;
      p_elapsed_s = elapsed;
      p_throughput = (if elapsed > 0. then float_of_int total /. elapsed else 0.);
      p_slo_violations = Atomic.get slo;
      p_live_hwm = Atomic.get hwm;
      p_backlog = backlog;
    }
  in
  let phase_results = List.mapi run_phase phases in
  (* Workers exit before the pool is held to account: shutdown joins the
     drain domains and runs their thread finalizers (flushing
     magazine-cached slots), and the extra drain returns whatever those
     finalizers released. Without it the leak oracle would blame the
     parked workers' magazines. No-op for unpooled services. *)
  Option.iter
    (fun s ->
      Service.shutdown s;
      Service.drain s)
    svc;
  let san = San.violations () in
  San.set_enabled false;
  let serial =
    if do_verify then Some (Serial_check.check ~initial !logs) else None
  in
  let check =
    match svc with Some s -> Service.check s | None -> Store.check store
  in
  (* Leak oracle: only when the prefill showed an exact nodes-per-key
     ratio (lists, hash sets, skip lists — not the external BST with its
     router nodes) can the final live count be predicted from the final
     size. *)
  let size_f = Store.size store and live_f = live () in
  let leaked =
    if size0 > 0 && (live0 - live_empty) mod size0 = 0 then
      let npk = (live0 - live_empty) / size0 in
      live_f - live_empty - (npk * size_f)
    else 0
  in
  {
    c_label = Store.name store;
    c_phases = phase_results;
    c_san = san;
    c_serial = serial;
    c_check = check;
    c_leaked = leaked;
    c_repro = repro_line;
  }

(* ---- DST adversaries ---- *)

(* Both scenarios pin the traversal knobs (small fixed windows, no
   scatter/adaptive jitter, no fusion) so the delay-armed yield site is
   reached at a deterministic point of the schedule; the reclaimer under
   test comes from the caller's spec unchanged. *)
let pin_traversal spec =
  {
    spec with
    Spec.window = Some 2;
    scatter = Some false;
    adaptive = Some false;
    fusion = Some 1;
  }

type stall_result = {
  s_label : string;
  s_samples : int array;
  s_hwm : int;
  s_final_backlog : int;
  s_error : string option;
  s_repro : string;
}

type crash_result = {
  k_label : string;
  k_scenario : string;
  k_recovered : int;
  k_serial_ok : bool;
  k_leaked : int;
  k_error : string option;
  k_repro : string;
}

let combine_errors ~repro_line errors =
  match List.rev errors with
  | [] -> None
  | es -> Some (String.concat "; " es ^ "\n  repro: " ^ repro_line)

let sched_failure_msg (o : Dst.Sched.outcome) =
  match o.Dst.Sched.failure with
  | Some f -> [ Format.asprintf "%a" Dst.Sched.pp_failure f ]
  | None -> []

let stalled_reader ?(rounds = 32) ?(keys = 40) ~seed spec =
  let spec = pin_traversal spec in
  let repro_line = repro ~scenario:"stalled-reader" ~seed spec in
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let store = (Factories.make spec).Factories.make () in
  let live () = Option.value (Store.pool_live store) ~default:0 in
  let b0 = ref 0 in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        for k = 1 to keys do
          ignore (Store.insert store ~thread k)
        done);
    b0 := live ()
  in
  let victim_tid = ref (-1) and churn_tid = ref (-1) in
  let reader () =
    Tm.Thread.with_registered (fun thread ->
        victim_tid := thread;
        (* ltid 0 only: pass two hand-offs mid-traversal, then park until
           the budget kills us — a reader wedged with its epoch announced
           (EBR) or holding one revocable reservation (RR) *)
        Dst.Inject.arm ~thread:0 ~after:2 ~times:1 Dst.Hoh_handoff
          (Dst.Inject.Delay 1_000_000);
        ignore (Store.get store ~thread keys))
  in
  let samples = ref [] in
  let churn () =
    Tm.Thread.with_registered (fun thread ->
        churn_tid := thread;
        for _ = 1 to rounds do
          (* one retire + one alloc per round, net zero live nodes: any
             growth of the trajectory is reclamation debt, not data *)
          ignore (Store.remove store ~thread 1);
          ignore (Store.insert store ~thread 1);
          samples := (live () - !b0) :: !samples
        done)
  in
  let o =
    Dst.Sched.run
      ~budget:(20_000 + (rounds * 1_000))
      ~init (Dst.Sched.Random seed) [ reader; churn ]
  in
  let errors = ref (List.rev (sched_failure_msg o)) in
  if not o.Dst.Sched.hung then
    errors := "reader did not park (run completed)" :: !errors;
  let samples = Array.of_list (List.rev !samples) in
  if Array.length samples < rounds then
    errors :=
      Printf.sprintf "budget exhausted mid-churn: %d/%d rounds"
        (Array.length samples) rounds
      :: !errors;
  (* the killed reader never ran its own quiescence hook; finalize it (and
     the churn thread) before holding the pool to account *)
  let _tid = Tm.Thread.id () in
  if !victim_tid >= 0 then Store.finalize_thread store ~thread:!victim_tid;
  if !churn_tid >= 0 then Store.finalize_thread store ~thread:!churn_tid;
  let pre = live () in
  Store.drain store;
  let final_backlog = pre - live () in
  (match Store.check store with
  | Ok () -> ()
  | Error e -> errors := ("post-drain check: " ^ e) :: !errors);
  let leaked = live () - !b0 in
  if leaked <> 0 then
    errors :=
      Printf.sprintf "%d pool slots unaccounted after drain" leaked :: !errors;
  Dst.Inject.clear ();
  {
    s_label = Store.name store;
    s_samples = samples;
    s_hwm = Array.fold_left max 0 samples;
    s_final_backlog = final_backlog;
    s_error = combine_errors ~repro_line !errors;
    s_repro = repro_line;
  }

let crash_mid_commit ~seed spec =
  let spec = pin_traversal spec in
  let repro_line = repro ~scenario:"crash-commit" ~seed spec in
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let store = (Factories.make spec).Factories.make () in
  let live () = Option.value (Store.pool_live store) ~default:0 in
  let initial = List.init 8 (fun i -> 2 * (i + 1)) in
  let b0 = ref 0 in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        List.iter (fun k -> ignore (Store.insert store ~thread k)) initial);
    b0 := live ()
  in
  let victim_tid = ref (-1) in
  let victim () =
    Tm.Thread.with_registered (fun thread ->
        victim_tid := thread;
        (* ltid 0 only: pass the first window commit of the remove, then
           park at the next commit entry — buffered writes staged, nothing
           published — until the budget kills us *)
        Dst.Inject.arm ~thread:0 ~after:1 ~times:1 Dst.Tm_commit
          (Dst.Inject.Delay 1_000_000);
        ignore (Store.remove store ~thread 8))
  in
  let log = ref [] in
  let survivor () =
    Tm.Thread.with_registered (fun thread ->
        for i = 1 to 10 do
          let k = 100 + i in
          let r1 = Store.insert store ~thread k in
          log := log_entry (Store.Insert k) r1 :: !log;
          let r2 = Store.get store ~thread 4 in
          log := log_entry (Store.Get 4) r2 :: !log;
          let r3 = Store.remove store ~thread k in
          log := log_entry (Store.Remove k) r3 :: !log
        done;
        Store.finalize_thread store ~thread)
  in
  let o =
    Dst.Sched.run ~budget:30_000 ~init (Dst.Sched.Random seed)
      [ victim; survivor ]
  in
  let errors = ref (List.rev (sched_failure_msg o)) in
  if not o.Dst.Sched.hung then
    errors := "victim did not park mid-commit (run completed)" :: !errors;
  let _tid = Tm.Thread.id () in
  if !victim_tid >= 0 then Store.finalize_thread store ~thread:!victim_tid;
  (match Store.check store with
  | Ok () -> ()
  | Error e -> errors := ("post-kill check: " ^ e) :: !errors);
  (* the victim's remove never committed: the survivor's history must
     serialize against the *untouched* initial contents *)
  let serial =
    Serial_check.check ~initial [ Array.of_list (List.rev !log) ]
  in
  (match serial with
  | Ok () -> ()
  | Error e -> errors := ("serial check: " ^ e) :: !errors);
  Store.drain store;
  let leaked = live () - !b0 in
  if leaked <> 0 then
    errors := Printf.sprintf "%d pool slots leaked" leaked :: !errors;
  Dst.Inject.clear ();
  {
    k_label = Store.name store;
    k_scenario = "crash-commit";
    k_recovered = 0;
    k_serial_ok = serial = Ok ();
    k_leaked = leaked;
    k_error = combine_errors ~repro_line !errors;
    k_repro = repro_line;
  }

let key_in_shard svc ~shard ~avoid =
  let rec go k =
    if k > 100_000 then failwith "no key routes to shard"
    else if Service.shard_of_key svc k = shard && not (List.mem k avoid) then k
    else go (k + 1)
  in
  go 1

let crash_mid_2pc ~seed spec =
  let repro_line = repro ~scenario:"crash-2pc" ~seed spec in
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create spec in
  let label = Service.label svc in
  let fail msg =
    {
      k_label = label;
      k_scenario = "crash-2pc";
      k_recovered = 0;
      k_serial_ok = false;
      k_leaked = 0;
      k_error = Some (msg ^ "\n  repro: " ^ repro_line);
      k_repro = repro_line;
    }
  in
  if Service.shards svc < 2 then fail "spec must shard across >= 2 shards"
  else begin
    let live () = Option.value (Service.pool_live svc) ~default:0 in
    let kept = key_in_shard svc ~shard:0 ~avoid:[] in
    let fresh = key_in_shard svc ~shard:1 ~avoid:[ kept ] in
    let b0 = ref 0 in
    let init () =
      Tm.Thread.with_registered (fun thread ->
          ignore (Service.exec svc ~thread (Store.Insert kept)));
      b0 := live ()
    in
    let victim_tid = ref (-1) in
    let victim () =
      Tm.Thread.with_registered (fun thread ->
          victim_tid := thread;
          (* apply the first 2PC sub-op (the remove lands), then park
             before the second until the budget kills us *)
          Dst.Inject.arm ~thread:0 ~after:1 ~times:1 Dst.Svc_apply
            (Dst.Inject.Delay 1_000_000);
          ignore
            (Service.multi svc ~thread
               [| Store.Remove kept; Store.Insert fresh |]))
    in
    let o = Dst.Sched.run ~budget:5_000 ~init (Dst.Sched.Random seed) [ victim ] in
    let errors = ref (List.rev (sched_failure_msg o)) in
    if not o.Dst.Sched.hung then
      errors := "victim did not park mid-2PC (run completed)" :: !errors;
    if not (Result.is_error (Service.check svc)) then
      errors := "abandoned intent not visible to check" :: !errors;
    let _tid = Tm.Thread.id () in
    let recovered = Service.recover svc in
    if recovered <> 1 then
      errors :=
        Printf.sprintf "recover resolved %d intents, want 1" recovered
        :: !errors;
    let contents_ok = Service.contents svc = [ kept ] in
    if not contents_ok then
      errors := "recover left a torn state" :: !errors;
    (match Service.check svc with
    | Ok () -> ()
    | Error e -> errors := ("post-recover check: " ^ e) :: !errors);
    (* the victim died with its freed slot possibly cached in a magazine;
       its quiescence drain (and the full service drain) must return it
       rather than leak it *)
    if !victim_tid >= 0 then Service.finalize_thread svc ~thread:!victim_tid;
    Service.drain svc;
    let leaked = live () - !b0 in
    if leaked <> 0 then
      errors :=
        Printf.sprintf "%d pool slots leaked after recover" leaked :: !errors;
    Dst.Inject.clear ();
    {
      k_label = label;
      k_scenario = "crash-2pc";
      k_recovered = recovered;
      k_serial_ok = contents_ok;
      k_leaked = leaked;
      k_error = combine_errors ~repro_line !errors;
      k_repro = repro_line;
    }
  end
