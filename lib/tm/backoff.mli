(** Randomized exponential backoff for contended retry loops.

    Every wait spins on {!Domain.cpu_relax}, which yields the processor on
    oversubscribed machines; this matters because the benchmark harness runs
    more domains than hardware threads. *)

type t

(** How long the caller expects the conflicting condition to persist, so
    one backoff instance can serve aborts of very different costs. *)
type hint =
  | Short  (** transient: a commit-time lock held for a few stores *)
  | Normal  (** unknown: the classic randomized exponential schedule *)
  | Long  (** durable: a serial-irrevocable transaction is running *)

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ()] makes a fresh backoff whose first wait spins for roughly
    [min_wait] iterations and doubles up to [max_wait]. The number of
    iterations is randomized to de-synchronize colliding threads. *)

val once : ?hint:hint -> t -> unit
(** [once b] waits for the current duration and doubles the next one.
    [~hint:Short] waits a quarter period without escalating;
    [~hint:Long] waits a doubled period and escalates. *)

val reset : t -> unit
(** [reset b] returns [b] to its initial (shortest) wait. *)
