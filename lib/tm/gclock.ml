(* The clock word is the single most contended location in the system —
   every writing transaction CASes it at commit — so it gets its own cache
   lines; sharing a line with any other global would put that global's
   readers on the clock's invalidation storm. *)
let clock = Pad.atomic 0

let sample () = Atomic.get clock

let advance () = 1 + Atomic.fetch_and_add clock 1

let reset_for_testing () = Atomic.set clock 0
