type hint = Short | Normal | Long

type t = {
  min_wait : int;
  max_wait : int;
  mutable cur : int;
  mutable seed : int;
}

let create ?(min_wait = 16) ?(max_wait = 4096) () =
  { min_wait; max_wait; cur = min_wait; seed = 0x9e3779b9 }

(* xorshift step; cheap thread-local randomness, no global state. *)
let next_random b =
  let s = b.seed in
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  let s = s lxor (s lsl 17) in
  b.seed <- s;
  s land max_int

let spin b n =
  let spins = b.min_wait + (next_random b mod n) in
  for _ = 1 to spins do
    Domain.cpu_relax ()
  done

let once ?(hint = Normal) b =
  match hint with
  | Short ->
      (* The contended lock is held only for the writeback of an already
         validated commit, so it clears in nanoseconds: spin briefly and do
         not escalate, or the thread sleeps through its retry window. *)
      spin b (max 1 (b.cur / 4))
  | Normal ->
      spin b b.cur;
      b.cur <- min b.max_wait (b.cur * 2)
  | Long ->
      (* A serial transaction owns the token for its whole (irrevocable)
         run; retrying sooner only burns the bus. Wait a full doubled
         period and escalate. *)
      spin b (min b.max_wait (2 * b.cur));
      b.cur <- min b.max_wait (b.cur * 2)

let reset b = b.cur <- b.min_wait
