(** A TL2-style software transactional memory with a serial-irrevocable
    fallback.

    This module plays the role of the paper's TM substrate (Intel TSX HTM
    driven through GCC's language-level TM). The paper's algorithms require
    only that the TM provide a total order on transactions and make
    conflicts manifest immediately (Sec. 3, System Model); TL2 gives both:

    - every location is protected by a versioned lock word;
    - transactions sample a global version clock at begin ([rv]) and abort
      any read of a location whose version exceeds [rv] (opacity — doomed
      transactions never observe inconsistent state, the software analog of
      HTM's immediate aborts);
    - writing transactions obtain a unique commit stamp [wv] from the clock,
      which totally orders them. The stamp is exposed through
      {!atomic_stamped} so tests can {e check} serializability by replaying
      committed operations in stamp order.

    GCC's HTM policy of retrying a few times and then falling back to a
    serial mode is mirrored by {!atomic}'s [max_attempts]: once exhausted,
    the transaction runs irrevocably under a global serial token, after
    waiting for in-flight committers to quiesce. *)

module Stats = Telemetry.Counters
(** Per-thread commit/abort counters; an alias of {!Telemetry.Counters}
    (which re-homed the old [Tm_stats] record). *)

type 'a tvar
(** A transactional variable. All access from inside a transaction goes
    through {!read} and {!write}; initialization and post-quiescence
    inspection may use {!peek} and {!poke}. *)

type txn
(** A transaction context, valid only during the callback passed to
    {!atomic}. *)

type abort_cause =
  | Read_invalid  (** a read (or commit-time validation) saw a newer version *)
  | Lock_busy  (** a location was locked by a concurrent committer *)
  | Serial_pending  (** a serial transaction is running; back off *)
  | User_retry  (** explicit {!retry} *)

exception Abort of abort_cause
(** Raised internally to unwind an attempt. It never escapes {!atomic};
    it is exposed for completeness and for white-box tests. *)

val tvar : 'a -> 'a tvar
(** [tvar v] allocates a fresh transactional variable holding [v]. *)

val tvar_id : _ tvar -> int
(** A unique id per tvar, for debugging and hashing. *)

module Thread : sig
  val max_threads : int
  (** Capacity of the thread-id space (ids are recycled by {!release}). *)

  val register : unit -> int
  (** Claim a thread id for the calling domain. Idempotent per domain.
      @raise Failure when more than {!max_threads} ids are live. *)

  val release : unit -> unit
  (** Return this domain's id to the pool. Call only when the domain will
      perform no further transactions (typically just before it finishes);
      a released id may be handed to another domain. *)

  val with_registered : (int -> 'a) -> 'a
  (** [with_registered f] registers, runs [f id], and releases even on
      exceptions. The worker-thread entry point used by the harness. *)

  val id : unit -> int
  (** This domain's id, registering it on first use. *)

  val stats : unit -> Telemetry.Counters.t
  (** The calling domain's live statistics record (updated in place by
      {!atomic}; copy it before the domain finishes if it must outlive the
      run). *)

  val reset_ids_for_testing : unit -> unit
  (** Forget released ids and rewind the watermark so ids are handed out
      deterministically from 0 again. Only for deterministic-schedule
      tests; the caller must guarantee no registered thread is live
      anywhere in the process. *)
end

val read : txn -> 'a tvar -> 'a
(** Transactional read. Returns the transaction's own pending write if any;
    otherwise performs an opaque (validated) read.

    A read that observes a version newer than the transaction's read
    timestamp first attempts a {e timestamp extension} (TinySTM/LSA-style):
    the whole read set is revalidated against the current lock words and,
    if intact, the read timestamp is advanced to a fresh clock sample and
    the read re-executed — so only {e true} conflicts abort. Successful
    extensions and failed attempts are counted in the thread's
    {!Thread.stats} ([extensions] / [ext_fails]).
    @raise Abort on conflict. *)

val write : txn -> 'a tvar -> 'a -> unit
(** Transactional write, buffered until commit. *)

val retry : txn -> 'a
(** Abort the current attempt and re-execute from the beginning. Does not
    count toward the serial-fallback threshold. Must not be used from serial
    mode (serial transactions are irrevocable);
    @raise Failure in serial mode. *)

val validate_on_commit : txn -> unit
(** Request commit-time read-set validation even if this transaction turns
    out to be read-only. A read-only TL2 transaction is always a consistent
    snapshot at [rv], so it normally commits without validation; but a
    transaction whose {e side effects} must be ordered before later
    conflicting commits — publishing a hazard pointer for a node it read —
    must confirm at commit that nothing it read has changed, the TM analog
    of the hazard-pointer publish-then-revalidate rule. Aborts with
    [Read_invalid] if validation fails. *)

val defer : txn -> (unit -> unit) -> unit
(** [defer txn f] runs [f] immediately after this transaction commits, in
    registration order, and discards it if the attempt aborts. This is how
    transactional allocators defer [free]: Listing 5 calls [delete(curr)]
    inside a transaction, which must not take effect on abort. *)

val defers_pending : txn -> int
(** Number of callbacks queued by {!defer} on this attempt so far. The
    window-fusion engine uses the delta across a window step to detect
    protocol state that only becomes visible after commit (two-phase
    hand-offs, traversal hints): such a window must end its transaction
    rather than be fused past, or the next window would run against the
    pre-commit state. *)

val thread_id : txn -> int
val is_serial : txn -> bool

val commit_stamp : txn -> int
(** The stamp of the transaction that just committed. Only meaningful
    inside {!defer} callbacks (which run right after commit); data
    structures use it to record where an operation's reservation was
    established. *)

type 'a result = {
  value : 'a;
  stamp : int;  (** commit timestamp: unique [wv] for writers, [rv] for
                    read-only transactions *)
  read_only : bool;
  attempts : int;  (** total attempts including the successful one *)
  serial : bool;  (** whether the committing attempt ran in serial mode *)
}

(** Per-structure middle-path lock: the second rung of the three-path
    progression fast-speculative / middle / global-serial (after Brown's
    3-path HTM template, arXiv:1708.04838). A transaction that exhausts
    its speculative abort budget acquires the structure's middle lock and
    retries speculatively with a fresh budget; the lock excludes only
    other middle-path transactions, so optimistic fast-path transactions
    keep running and validating against the holder. Only if the fresh
    budget is also exhausted does the transaction drop the middle lock
    and escalate to the global serial token. *)
module Middle : sig
  type t

  val create : unit -> t
  (** One per structure (cache-line isolated). *)

  val locked : t -> bool
  (** Whether some middle-path transaction currently holds the lock
      (tests/diagnostics only; inherently racy). *)
end

val atomic :
  ?site:string ->
  ?max_attempts:int ->
  ?read_phase:bool ->
  ?middle:Middle.t ->
  (txn -> 'a) ->
  'a
(** [atomic f] runs [f] as a transaction, retrying on conflicts with
    randomized exponential backoff. After [max_attempts] conflict aborts
    (default {!default_max_attempts}), the transaction is re-run under the
    global serial token and cannot abort. Nested calls are flattened into
    the enclosing transaction.

    [site] labels this call site for telemetry: when {!Telemetry.enabled}
    is on, every abort is attributed to [(site, cause, conflicting tvar)]
    in the calling thread's {!Telemetry.Attribution} table. Pass a static
    string (e.g. ["slist.insert"]); when omitted the aborts are pooled
    under ["?"]. Ignored (beyond the enclosing label) for nested calls.

    [read_phase] (default [false]) declares a pure-traversal transaction:
    reads that hit a locked word wait out the (bounded) writeback section
    instead of aborting with [Lock_busy], and the retry loop never
    escalates to the serial fallback — so a read-only traversal window
    never advances the global version clock. Only set it for transactions
    whose writes (if any) are private; a read-phase transaction that
    conflicts on every attempt retries speculatively forever, which is
    livelock-free only because each of its aborts implies a concurrent
    commit. Ignored for nested calls (the enclosing hint stays in
    force).

    [middle] supplies the structure's {!Middle.t} lock and enables the
    middle rung between speculative retry and the serial fallback;
    escalations are counted separately as
    [Stats.fallbacks_middle]/[Stats.fallbacks_serial]. Without it the
    ladder is the original two-path one. *)

val atomic_stamped :
  ?site:string ->
  ?max_attempts:int ->
  ?read_phase:bool ->
  ?middle:Middle.t ->
  (txn -> 'a) ->
  'a result
(** Like {!atomic} but also reports the commit stamp and attempt counts. *)

val default_max_attempts : unit -> int

val set_default_max_attempts : int -> unit
(** The paper uses GCC's default of 2 retries for lists and raises it to 8
    for trees; benchmarks adjust this knob per data structure. *)

val peek : 'a tvar -> 'a
(** Non-transactional read. Only meaningful during initialization or after
    all worker threads have quiesced. *)

val poke : 'a tvar -> 'a -> unit
(** Non-transactional write with a fresh version (so concurrent speculative
    readers, if any, abort rather than observe a torn snapshot). Intended
    for initialization. *)

val serial_active : unit -> bool
(** Whether a serial transaction currently holds the token (for tests). *)

val reads_logged : txn -> int
(** Number of entries currently in the transaction's read set. White-box
    hook for tests of read-set dedup; meaningless outside {!atomic}. *)

val writes_logged : txn -> int
(** Number of distinct locations in the transaction's write set. White-box
    hook for tests; meaningless outside {!atomic}. *)

val current_txn : unit -> txn option
(** The calling domain's active transaction, if any. Lets operations that
    normally run stand-alone detect that they were called {e inside} an
    enclosing transaction (flat nesting) and defer side effects — such as
    returning an unused node to a pool — until the enclosing commit. *)

val clock : unit -> int
(** A sample of the global version clock. TxSan timestamps its shadow
    events with this so violation reports order against commit stamps. *)

val txn_site : txn -> string
(** The telemetry site label of the enclosing {!atomic} call (["?"] when
    unlabeled or when neither telemetry nor TxSan is enabled). *)

val current_site : unit -> string
(** {!txn_site} of the calling domain's active transaction, or ["?"]. *)
