module Stats = Telemetry.Counters

type abort_cause = Read_invalid | Lock_busy | Serial_pending | User_retry

exception Abort of abort_cause

(* A tvar couples a TL2 versioned lock word with the value cell. The lock
   word encodes [version lsl 1 lor locked]. The value lives in its own
   [Atomic.t] so the seqlock pattern (lock, value, lock) is free of plain
   data races under the OCaml memory model. *)
type 'a tvar = { lock : int Atomic.t; cell : 'a Atomic.t; uid : int }

let tvar_uid = Atomic.make 0
let tvar v = { lock = Atomic.make 0; cell = Atomic.make v; uid = Atomic.fetch_and_add tvar_uid 1 }
let tvar_id tv = tv.uid

let locked word = word land 1 = 1
let version word = word asr 1

(* Write-set entry. The existential is only ever unpacked when the stored
   tvar is physically equal to the one being looked up, which implies their
   type parameters are equal, making the [Obj.magic] in [wset_find] and
   [wset_update] safe. This is the standard OCaml idiom for heterogeneous
   transaction logs (cf. kcas). *)
type wentry = W : { tv : 'a tvar; mutable v : 'a } -> wentry

type txn = {
  mutable tid : int;
  mutable rv : int;
  mutable serial : bool;
  mutable serial_wv : int;
  mutable active : bool;
  mutable r_locks : int Atomic.t array;
  mutable r_words : int array;
  mutable r_uids : int array;
  mutable rn : int;
  mutable wset : wentry array;
  mutable wn : int;
  mutable wfilter : int;
      (* Bloom word over the uids in the write set: a clear bit lets
         [read] skip [wset_find] entirely — the common case, since most
         reads are of locations never written. *)
  mutable windex : int array;
      (* Open-addressed uid index over [wset] ([slot+1]; 0 = empty),
         engaged once [wn] passes [windex_threshold] so lookups stop
         being O(wn). [no_index] (physically) when disengaged. *)
  mutable defers : (unit -> unit) list;
  mutable stamp : int;
  mutable read_only : bool;
  mutable must_validate : bool;
  mutable read_phase : bool;
      (* Pure-traversal hint from the operation layer: reads wait out
         locked words instead of aborting, and the attempt loop never
         escalates to the serial fallback (which would advance the global
         clock on behalf of a transaction that publishes nothing). *)
  stats : Stats.t;
      (* The owning thread's counter record, so deep read-path events
         (timestamp extensions) can be attributed without threading the
         thread state through every call. *)
  (* Telemetry: the site label of the enclosing [atomic] call and the uid
     of the tvar that caused the pending abort (-1 when unknown). Both are
     only written on slow paths (atomic entry, abort raise sites). *)
  mutable site : string;
  mutable conflict_uid : int;
}

type 'a result = {
  value : 'a;
  stamp : int;
  read_only : bool;
  attempts : int;
  serial : bool;
}

let dummy_lock = Atomic.make 0
let dummy_wentry = W { tv = { lock = Atomic.make 0; cell = Atomic.make 0; uid = -1 }; v = 0 }

let max_threads = 128
let () = assert (max_threads <= Telemetry.max_threads)

let no_site = "?"

(* Global serial token and per-thread committing flags implementing the
   Dekker-style quiescence handshake between speculative committers and the
   serial fallback. Every flag is stride-padded onto its own cache lines:
   each committer writes its flag twice per writing commit, and with the
   flags packed eight to a line those writes would invalidate the line
   under seven other committers (and under the serial fallback's quiescence
   scan). *)
let serial_token = Pad.atomic 0
let committing = Array.init max_threads (fun _ -> Pad.atomic false)
let serial_active () = Atomic.get serial_token = 1

let default_attempts = Atomic.make 4
let default_max_attempts () = Atomic.get default_attempts
let set_default_max_attempts n =
  if n < 1 then invalid_arg "Tm.set_default_max_attempts";
  Atomic.set default_attempts n

type thread_state = {
  id : int;
  txn : txn;
  backoff : Backoff.t;
  t_stats : Stats.t;
  t_slot : Telemetry.slot;
}

let no_index : int array = [||]

let fresh_txn tid stats =
  {
    tid;
    rv = 0;
    serial = false;
    serial_wv = 0;
    active = false;
    r_locks = Array.make 64 dummy_lock;
    r_words = Array.make 64 0;
    r_uids = Array.make 64 (-1);
    rn = 0;
    wset = Array.make 16 dummy_wentry;
    wn = 0;
    wfilter = 0;
    windex = no_index;
    defers = [];
    stamp = 0;
    read_only = true;
    must_validate = false;
    site = no_site;
    conflict_uid = -1;
    read_phase = false;
    stats;
  }

module Thread = struct
  let max_threads = max_threads

  let pool_mutex = Mutex.create ()
  let free_ids : int list ref = ref []

  (* High-water mark of handed-out ids. Atomic (though always updated
     under [pool_mutex]) so the serial fallback can read it without the
     lock as its quiescence watermark: only ids below it can possibly
     have a committing flag set. It never decreases — released ids go to
     [free_ids], not back into the watermark. *)
  let next_id = Atomic.make 0

  let acquire_id () =
    Mutex.lock pool_mutex;
    let id =
      match !free_ids with
      | id :: rest ->
          free_ids := rest;
          id
      | [] ->
          let id = Atomic.get next_id in
          if id >= max_threads then (
            Mutex.unlock pool_mutex;
            failwith "Tm.Thread.register: thread-id space exhausted");
          Atomic.set next_id (id + 1);
          id
    in
    Mutex.unlock pool_mutex;
    id

  let release_id id =
    Mutex.lock pool_mutex;
    free_ids := id :: !free_ids;
    Mutex.unlock pool_mutex

  (* Test-only: forget released ids and rewind the watermark so ids are
     handed out deterministically from 0 again. The caller must guarantee
     no registered thread is live anywhere in the process. *)
  let reset_ids_for_testing () =
    Mutex.lock pool_mutex;
    free_ids := [];
    Atomic.set next_id 0;
    Mutex.unlock pool_mutex

  (* Logical-thread-local, not merely domain-local: under an active DST
     schedule N logical threads share one domain and each needs its own
     transaction descriptor. Outside DST this is exactly Domain.DLS. *)
  let tls_key : thread_state option Dst.Tls.key =
    Dst.Tls.new_key (fun () -> None)

  let state () =
    match Dst.Tls.get tls_key with
    | Some st -> st
    | None ->
        let id = acquire_id () in
        (* The stats and backoff records are bumped on every attempt;
           padding keeps one domain's updates from invalidating the
           cache line under a neighbouring domain's records (DLS roots
           for concurrently spawned domains are allocated together). *)
        let t_stats = Pad.copy_as_padded (Stats.create ()) in
        let st =
          { id; txn = fresh_txn id t_stats;
            backoff = Pad.copy_as_padded (Backoff.create ());
            t_stats;
            t_slot = Telemetry.slot id }
        in
        Dst.Tls.set tls_key (Some st);
        st

  let register () = (state ()).id

  let release () =
    match Dst.Tls.get tls_key with
    | None -> ()
    | Some st ->
        (* Leak check before the id can be recycled. [San.thread_exit]
           never raises (this runs in [Fun.protect] finalizers). *)
        San.thread_exit ~tid:st.id;
        Dst.Tls.set tls_key None;
        release_id st.id

  let with_registered f =
    let id = register () in
    Fun.protect ~finally:release (fun () -> f id)

  let id () = register ()
  let stats () = (state ()).t_stats
end

(* ---- read/write sets ---- *)

(* One Fibonacci-hashed bit per uid in the 63-bit Bloom word over the
   write set. No false negatives: every logged uid has
   its bit set, so a clear bit proves absence without touching the log.
   This runs on every [read], so the 6-bit slice of the product is range-
   reduced to 0..62 with a multiply-shift — a [mod] here would cost a
   hardware division per read. (Bit 62 is the sign bit; as a pure mask
   bit that is fine.) *)
let[@inline] filter_bit uid =
  let h = (uid * 0x9e3779b1) lsr 26 in
  1 lsl (((h land 63) * 63) lsr 6)

let[@inline] uid_hash uid = uid * 0x9e3779b1

(* Write sets up to this size are scanned linearly (they fit in a cache
   line or two); past it, [windex] takes over. *)
let windex_threshold = 8

let[@inline] rset_push txn lock word uid =
  if txn.rn = Array.length txn.r_locks then begin
    let n = 2 * txn.rn in
    let locks = Array.make n dummy_lock
    and words = Array.make n 0
    and uids = Array.make n (-1) in
    Array.blit txn.r_locks 0 locks 0 txn.rn;
    Array.blit txn.r_words 0 words 0 txn.rn;
    Array.blit txn.r_uids 0 uids 0 txn.rn;
    txn.r_locks <- locks;
    txn.r_words <- words;
    txn.r_uids <- uids
  end;
  txn.r_locks.(txn.rn) <- lock;
  txn.r_words.(txn.rn) <- word;
  txn.r_uids.(txn.rn) <- uid;
  txn.rn <- txn.rn + 1

(* Slot of [tv] in the write set, or -1. Uids are unique per tvar, so the
   index probe compares identities just like the linear scan; a chain ends
   at the first empty index slot (the table keeps load factor <= 1/2, so
   probes terminate). *)
let wset_slot : type a. txn -> a tvar -> int =
 fun txn tv ->
  if txn.windex != no_index then begin
    let idx = txn.windex in
    let mask = Array.length idx - 1 in
    let rec probe i =
      match idx.(i) with
      | 0 -> -1
      | s ->
          let (W e) = txn.wset.(s - 1) in
          if Obj.repr e.tv == Obj.repr tv then s - 1
          else probe ((i + 1) land mask)
    in
    probe (uid_hash tv.uid land mask)
  end
  else
    let rec go i =
      if i >= txn.wn then -1
      else
        let (W e) = txn.wset.(i) in
        if Obj.repr e.tv == Obj.repr tv then i else go (i + 1)
    in
    go 0

let wset_find : type a. txn -> a tvar -> a option =
 fun txn tv ->
  match wset_slot txn tv with
  | -1 -> None
  | s ->
      let (W e) = txn.wset.(s) in
      Some (Obj.magic e.v)

let windex_add idx uid slot =
  let mask = Array.length idx - 1 in
  let i = ref (uid_hash uid land mask) in
  while idx.(!i) <> 0 do
    i := (!i + 1) land mask
  done;
  idx.(!i) <- slot + 1

(* (Re)build the index over the first [wn] entries, sized to keep the load
   factor at or below 1/4 so probe chains stay short. *)
let windex_rebuild txn =
  let cap = ref 32 in
  while !cap < 4 * txn.wn do
    cap := !cap * 2
  done;
  let idx = Array.make !cap 0 in
  for s = 0 to txn.wn - 1 do
    let (W e) = txn.wset.(s) in
    windex_add idx e.tv.uid s
  done;
  txn.windex <- idx

let wset_put : type a. txn -> a tvar -> a -> unit =
 fun txn tv v ->
  let s = wset_slot txn tv in
  if s >= 0 then
    let (W e) = txn.wset.(s) in
    e.v <- Obj.magic v
  else begin
    if txn.wn = Array.length txn.wset then begin
      let arr = Array.make (2 * txn.wn) dummy_wentry in
      Array.blit txn.wset 0 arr 0 txn.wn;
      txn.wset <- arr
    end;
    txn.wset.(txn.wn) <- W { tv; v };
    txn.wfilter <- txn.wfilter lor filter_bit tv.uid;
    if txn.windex != no_index then
      if 2 * (txn.wn + 1) > Array.length txn.windex then begin
        txn.wn <- txn.wn + 1;
        windex_rebuild txn
      end
      else begin
        windex_add txn.windex tv.uid txn.wn;
        txn.wn <- txn.wn + 1
      end
    else begin
      txn.wn <- txn.wn + 1;
      if txn.wn > windex_threshold then windex_rebuild txn
    end
  end

(* Whether [lock] belongs to a tvar in the write set — i.e. a lock the
   committing transaction itself holds. [uid] is the read-set entry's
   logged tvar uid, letting the lookup reuse the read path's Bloom filter
   and uid index so commit validation stays O(rn) instead of O(rn * wn)
   for large write sets; uids are unique per tvar, so a uid match implies
   the lock identity matches. *)
let wset_holds_lock txn lock uid =
  txn.wfilter land filter_bit uid <> 0
  &&
  if txn.windex != no_index then begin
    let idx = txn.windex in
    let mask = Array.length idx - 1 in
    let rec probe i =
      match idx.(i) with
      | 0 -> false
      | s ->
          let (W e) = txn.wset.(s - 1) in
          if e.tv.uid = uid then e.tv.lock == lock
          else probe ((i + 1) land mask)
    in
    probe (uid_hash uid land mask)
  end
  else
    let rec go i =
      if i >= txn.wn then false
      else
        let (W e) = txn.wset.(i) in
        e.tv.lock == lock || go (i + 1)
    in
    go 0

let reset_logs txn =
  (* Clear stored references so the GC can collect dead tvars. *)
  for i = 0 to txn.rn - 1 do
    txn.r_locks.(i) <- dummy_lock
  done;
  for i = 0 to txn.wn - 1 do
    txn.wset.(i) <- dummy_wentry
  done;
  txn.rn <- 0;
  txn.wn <- 0;
  txn.wfilter <- 0;
  (* Drop (rather than zero) the index: most transactions never engage it,
     and the next large one rebuilds at the right size anyway. *)
  if txn.windex != no_index then txn.windex <- no_index;
  txn.defers <- [];
  txn.read_only <- true;
  txn.must_validate <- false

(* ---- transactional operations ---- *)

(* Whether entry [i] of the read set already logs [lock]. A same-lock
   entry with a {e different} word is impossible for a live transaction —
   any commit that changed the word after it was first logged carries
   [wv > rv] and would have failed this read's version check — so it is
   treated as the inconsistency it would be and aborts. *)
let[@inline] rset_dup_at txn i lock word uid =
  i >= 0
  && txn.r_locks.(i) == lock
  && (txn.r_words.(i) = word
     ||
     (txn.conflict_uid <- uid;
      raise (Abort Read_invalid)))

(* ---- timestamp extension (TinySTM/LSA-style) ----

   A read that observes [version l1 > txn.rv] is not necessarily doomed:
   if every location already in the read set still carries exactly its
   logged lock word, the snapshot taken so far is also consistent at the
   current clock value, so [rv] can be extended and the read re-executed
   instead of aborting. The serial-token re-check mirrors [sample_rv]'s
   straddle closure: observing the token clear {e after} sampling proves
   every serial transaction with [wv_s <= new_rv] has fully finished, so
   none of its in-flight direct writes can be mistaken for state that is
   consistent at [new_rv]. *)
let try_extend txn =
  if Dst.point_fails Dst.Tm_extend then false
  else begin
    let new_rv = Gclock.sample () in
    if serial_active () then false
    else begin
      Dst.point Dst.Tm_validate;
      let rec intact i =
        i >= txn.rn
        || (Atomic.get txn.r_locks.(i) = txn.r_words.(i) && intact (i + 1))
      in
      intact 0
      && begin
           txn.rv <- new_rv;
           Stats.incr_extensions txn.stats;
           true
         end
    end
  end

(* The uncached read loop lives at top level (not as an inner [let rec])
   so the hot path stays allocation-free: an inner recursive closure
   capturing [txn]/[tv] would cost one minor-heap block per read, and at
   multiple domains that allocation rate turns into stop-the-world minor
   collections. *)
let rec read_uncached : 'a. txn -> 'a tvar -> 'a =
  fun (type a) (txn : txn) (tv : a tvar) : a ->
   let l1 = Atomic.get tv.lock in
   if locked l1 then
     if txn.read_phase then begin
       (* Committers never spin while holding locks, so the writeback
          section is bounded: a pure traversal waits it out rather than
          paying an abort. Under DST the holder is a paused logical
          thread; yield to it. *)
       Dst.point Dst.Tm_read;
       Domain.cpu_relax ();
       read_uncached txn tv
     end
     else begin
       txn.conflict_uid <- tv.uid;
       raise (Abort Lock_busy)
     end
   else begin
     let v = Atomic.get tv.cell in
     let l2 = Atomic.get tv.lock in
     if l1 <> l2 then
       (* A committer's writeback raced the seqlock pair; the word has
          settled into either locked or a newer version, both handled
          above on re-read. *)
       read_uncached txn tv
     else if version l1 > txn.rv then
       if try_extend txn then read_uncached txn tv
       else begin
         txn.conflict_uid <- tv.uid;
         Stats.incr_ext_fails txn.stats;
         raise (Abort Read_invalid)
       end
     else begin
       (* Dedup: a hand-over-hand operation re-reads locations it logged
          moments ago — the traversal's (prev, curr) pair, a node's
          fields around an unlink — so when a read is a duplicate, the
          earlier entry sits at the tail of the read set. Checking the
          two newest entries catches these patterns for the cost of two
          physical-equality tests; a duplicate that escapes the bound is
          pushed again, which is benign, since commit-time validation is
          per-location. (An exact Bloom-filtered dedup was measurably
          slower: its per-read hash-and-test overhead outweighed the
          saved entries on every single-domain configuration.) *)
       if
         not
           (rset_dup_at txn (txn.rn - 1) tv.lock l1 tv.uid
           || rset_dup_at txn (txn.rn - 2) tv.lock l1 tv.uid)
       then rset_push txn tv.lock l1 tv.uid;
       (* The read has validated against [rv]; TxSan checks it against the
          slot's free/reservation shadow at exactly this point, so doomed
          reads that version checks already rejected are never reported. *)
       San.tm_read ~tid:txn.tid ~site:txn.site ~rv:txn.rv tv.uid;
       v
     end
   end

let read (txn : txn) tv =
  if txn.serial then begin
    let v = Atomic.get tv.cell in
    San.tm_read ~tid:txn.tid ~site:txn.site ~rv:txn.rv tv.uid;
    v
  end
  else begin
    if Dst.point_fails Dst.Tm_read then begin
      txn.conflict_uid <- tv.uid;
      raise (Abort Read_invalid)
    end;
    let bit = filter_bit tv.uid in
    let buffered =
      (* The filter has no false negatives, so a clear bit skips the
         write-set lookup outright — the common case for a traversal,
         whose reads vastly outnumber its writes. *)
      if txn.wfilter land bit <> 0 then wset_find txn tv else None
    in
    match buffered with Some v -> v | None -> read_uncached txn tv
  end

let write (txn : txn) tv v =
  txn.read_only <- false;
  if txn.serial then begin
    (* Irrevocable direct publication: mark locked, write, release with the
       serial stamp so concurrent speculative readers abort rather than
       pairing the new value with an old version. *)
    Dst.point Dst.Tm_serial_write;
    San.tm_serial_write ~tid:txn.tid ~site:txn.site ~wv:txn.serial_wv tv.uid;
    Atomic.set tv.lock ((txn.serial_wv lsl 1) lor 1);
    Atomic.set tv.cell v;
    Atomic.set tv.lock (txn.serial_wv lsl 1)
  end
  else begin
    San.tm_write ~tid:txn.tid ~site:txn.site ~rv:txn.rv tv.uid;
    wset_put txn tv v
  end

let retry (txn : txn) =
  if txn.serial then failwith "Tm.retry: serial transactions are irrevocable";
  raise (Abort User_retry)

let defer (txn : txn) f = txn.defers <- f :: txn.defers
let defers_pending (txn : txn) = List.length txn.defers

let validate_on_commit (txn : txn) = txn.must_validate <- true
let thread_id (txn : txn) = txn.tid
let is_serial (txn : txn) = txn.serial
let commit_stamp (txn : txn) = txn.stamp

let run_defers (txn : txn) =
  let ds = List.rev txn.defers in
  txn.defers <- [];
  List.iter (fun f -> f ()) ds

(* ---- commit ---- *)

let unlock_first_n txn n =
  for i = 0 to n - 1 do
    let (W e) = txn.wset.(i) in
    let cur = Atomic.get e.tv.lock in
    Atomic.set e.tv.lock (cur land lnot 1);
    San.tm_unlock ~tid:txn.tid ~site:txn.site ~wv:(-1) e.tv.uid
  done

let commit (txn : txn) =
  if txn.wn = 0 then begin
    (* A read-only snapshot at [rv] is always consistent, but a transaction
       whose side effects must be ordered before later conflicting commits
       (hazard publication) re-validates: if any location it read has been
       overwritten or locked since, the publication may have come too late
       to be seen, so abort. *)
    if txn.must_validate then begin
      Dst.point Dst.Tm_validate;
      for i = 0 to txn.rn - 1 do
        if Atomic.get txn.r_locks.(i) <> txn.r_words.(i) then begin
          txn.conflict_uid <- txn.r_uids.(i);
          raise (Abort Read_invalid)
        end
      done
    end;
    txn.stamp <- txn.rv;
    (* [now] is a fresh clock sample: a read-only commit has no write
       version, but TxSan's reservation checks need to know what "had
       already happened" when the reservation became real. *)
    if San.enabled () then
      San.tm_commit ~tid:txn.tid ~site:txn.site ~rv:txn.rv
        ~now:(Gclock.sample ());
    run_defers txn
  end
  else begin
    if Dst.point_fails Dst.Tm_commit then begin
      txn.conflict_uid <- -1;
      raise (Abort Lock_busy)
    end;
    let flag = committing.(txn.tid) in
    Atomic.set flag true;
    (* The committing flag must not survive an abandoned logical thread
       (DST kills a paused commit by raising at a yield point): the abort
       paths below clear it themselves before raising [Abort], and any
       other exception clears it here. *)
    try
      if serial_active () then begin
        Atomic.set flag false;
        txn.conflict_uid <- -1;
        raise (Abort Serial_pending)
      end;
      (* Lock the write set; abort immediately on any busy lock (no
         spinning, so lock acquisition cannot deadlock). *)
      let rec lock_from i =
        if i < txn.wn then begin
          Dst.point Dst.Tm_lock;
          let (W e) = txn.wset.(i) in
          let l = Atomic.get e.tv.lock in
          if locked l || not (Atomic.compare_and_set e.tv.lock l (l lor 1))
          then begin
            unlock_first_n txn i;
            Atomic.set flag false;
            txn.conflict_uid <- e.tv.uid;
            raise (Abort Lock_busy)
          end;
          San.tm_lock ~tid:txn.tid e.tv.uid;
          lock_from (i + 1)
        end
      in
      lock_from 0;
      Dst.point Dst.Tm_gclock;
      let wv = Gclock.advance () in
      (* If no other transaction committed since we began, the read set is
         trivially valid (standard TL2 optimization). *)
      if wv <> txn.rv + 1 then begin
        Dst.point Dst.Tm_validate;
        let rec validate i =
          if i < txn.rn then begin
            let lock = txn.r_locks.(i) and word = txn.r_words.(i) in
            let cur = Atomic.get lock in
            let ok =
              cur = word
              || (cur = word lor 1
                 && wset_holds_lock txn lock txn.r_uids.(i))
            in
            if not ok then begin
              unlock_first_n txn txn.wn;
              Atomic.set flag false;
              txn.conflict_uid <- txn.r_uids.(i);
              raise (Abort Read_invalid)
            end;
            validate (i + 1)
          end
        in
        validate 0
      end;
      for i = 0 to txn.wn - 1 do
        Dst.point Dst.Tm_publish;
        let (W e) = txn.wset.(i) in
        Atomic.set e.tv.cell e.v
      done;
      Dst.point Dst.Tm_publish;
      for i = 0 to txn.wn - 1 do
        let (W e) = txn.wset.(i) in
        Atomic.set e.tv.lock (wv lsl 1);
        San.tm_unlock ~tid:txn.tid ~site:txn.site ~wv e.tv.uid
      done;
      Atomic.set flag false;
      txn.stamp <- wv;
      San.tm_commit ~tid:txn.tid ~site:txn.site ~rv:txn.rv ~now:wv;
      run_defers txn
    with
    | Abort _ as e -> raise e
    | e ->
        Atomic.set flag false;
        raise e
  end

(* ---- serial fallback ---- *)

let serial_token_acquire () =
  let b = Backoff.create () in
  while not (Atomic.compare_and_set serial_token 0 1) do
    (* The current holder runs a whole irrevocable transaction. *)
    if Dst.scheduled () then Dst.point Dst.Tm_serial_token
    else Backoff.once ~hint:Backoff.Long b
  done

(* Quiesce in-flight speculative committers. Only ids below the
   registration watermark can have a committing flag set: ids are handed
   out by bumping [Thread.next_id] before the owning domain's first
   commit, and a registration racing this read sets its flag only after
   the token (already 1, sequentially consistent) is visible, so that
   committer sees the token and aborts with [Serial_pending] instead.
   Scanning the watermark rather than all [max_threads] slots keeps the
   fallback's entry cost proportional to the threads that exist. *)
let serial_quiesce () =
  let live = Atomic.get Thread.next_id in
  for i = 0 to live - 1 do
    while Atomic.get committing.(i) do
      Dst.point Dst.Tm_serial_quiesce;
      Domain.cpu_relax ()
    done
  done

let serial_release () = Atomic.set serial_token 0

let serial_run st f =
  let txn = st.txn in
  (* Quiescence runs under the same protection as the body: if this
     logical thread is abandoned while waiting out an in-flight committer,
     the token must still be released. No yield point sits between the
     winning CAS and the protect, so the token cannot leak. *)
  serial_token_acquire ();
  Fun.protect ~finally:serial_release (fun () ->
      serial_quiesce ();
      txn.serial <- true;
      Dst.point Dst.Tm_gclock;
      txn.serial_wv <- Gclock.advance ();
      San.tm_serial_begin ~tid:txn.tid ~wv:txn.serial_wv;
      txn.active <- true;
      txn.rv <- txn.serial_wv;
      txn.defers <- [];
      txn.read_only <- true;
      let finish v =
        txn.stamp <- txn.serial_wv;
        San.tm_commit ~tid:txn.tid ~site:txn.site ~rv:txn.serial_wv
          ~now:txn.serial_wv;
        run_defers txn;
        txn.active <- false;
        txn.serial <- false;
        San.tm_serial_end ~tid:txn.tid;
        v
      in
      match f txn with
      | v -> finish v
      | exception e ->
          txn.defers <- [];
          txn.active <- false;
          txn.serial <- false;
          San.tm_serial_end ~tid:txn.tid;
          San.tm_abandon ~tid:txn.tid;
          raise e)

(* ---- middle path ---- *)

module Middle = struct
  (* Per-structure middle-path lock: the second rung of the three-path
     progression (fast speculative / middle / global serial), after
     Brown's 3-path HTM template. The word is 0 when free, owner tid + 1
     when held. Holding it excludes only other middle-path transactions:
     the holder keeps running fully-validated speculative transactions,
     so optimistic fast-path transactions proceed (and may still abort
     the holder) concurrently — unlike the serial token, it never stops
     the world. *)
  type t = int Atomic.t

  let create () : t = Pad.atomic 0
  let locked (t : t) = Atomic.get t <> 0
end

let middle_acquire st (m : Middle.t) =
  let b = Backoff.create () in
  while not (Atomic.compare_and_set m 0 (st.id + 1)) do
    (* The holder runs at most one fresh abort budget of speculative
       attempts, then either commits or escalates to serial; waiting
       beats joining the abort storm it is draining. *)
    if Dst.scheduled () then Dst.point Dst.Tm_middle_token
    else Backoff.once ~hint:Backoff.Long b
  done;
  San.middle_acquire ~tid:st.id

let middle_release st (m : Middle.t) =
  Atomic.set m 0;
  San.middle_release ~tid:st.id ~site:st.txn.site

(* ---- the atomic runner ---- *)

let wait_serial_clear () =
  while serial_active () do
    Dst.point Dst.Tm_wait_serial;
    Domain.cpu_relax ()
  done

(* Sample a read version that cannot straddle a serial transaction. A
   serial transaction advances the clock to [wv_s] {e before} performing
   its direct writes; a speculative transaction that sampled [rv >= wv_s]
   while those writes were still in flight could read pre-serial values and
   wrongly attribute them to stamp [rv]. Observing the serial token clear
   {e after} sampling proves every serial transaction with [wv_s <= rv]
   has fully finished (the token is held from before the clock bump until
   after the last write), so the snapshot at [rv] is well-defined; later
   serial transactions get [wv_s > rv] and are caught by version checks. *)
let rec sample_rv () =
  wait_serial_clear ();
  Dst.point Dst.Tm_sample_rv;
  let rv = Gclock.sample () in
  (* Dst.Inject bug #1: dropping the re-check re-opens the serial-straddle
     window this function exists to close (see DESIGN.md). *)
  if serial_active () && not (Dst.Inject.bug Dst.Inject.Snapshot_straddle) then
    sample_rv ()
  else rv

let cause_label = function
  | Read_invalid -> "read_invalid"
  | Lock_busy -> "lock_busy"
  | Serial_pending -> "serial_pending"
  | User_retry -> "user_retry"

let atomic_stamped ?site ?max_attempts ?(read_phase = false) ?middle f =
  let st = Thread.state () in
  let txn = st.txn in
  if txn.active then
    (* Flat nesting: run inside the enclosing transaction. The enclosing
       atomic's site label stays in force for attribution. *)
    let v = f txn in
    { value = v; stamp = txn.stamp; read_only = txn.read_only;
      attempts = 0; serial = txn.serial }
  else begin
    let max_attempts =
      match max_attempts with Some n -> n | None -> default_max_attempts ()
    in
    let stats = st.t_stats in
    (* Sample the switch once per operation: a concurrent toggle mid-run
       costs at worst one mis-attributed operation, and the hot path pays a
       single immutable-bool test per attempt instead of an Atomic.get. *)
    let tele = Telemetry.enabled () in
    let slot = st.t_slot in
    if tele || San.enabled () then
      txn.site <- (match site with Some s -> s | None -> no_site);
    txn.read_phase <- read_phase;
    let op_start = if tele then Telemetry.now_ns () else 0 in
    Backoff.reset st.backoff;
    (* Middle-path rung state: the lock is held across speculative retries
       (an Abort keeps it, so the fresh budget runs excluded from other
       middle-path transactions) and released on commit, on escalation to
       serial, and on any non-Abort exception. *)
    let middle_held = ref false in
    let release_middle () =
      if !middle_held then begin
        middle_held := false;
        match middle with Some m -> middle_release st m | None -> ()
      end
    in
    let rec attempt n total =
      (* A read-phase transaction never escalates: the serial fallback
         advances the global clock (and blocks every speculative
         committer) on behalf of a window that publishes nothing. Its
         aborts all imply another transaction made progress, so unbounded
         speculative retry is abort-free livelock-safe. *)
      if n >= max_attempts && not read_phase then begin
        match middle with
        | Some m when not !middle_held ->
            (* Second rung: exclude other middle-path transactions on this
               structure, then retry speculatively with a fresh abort
               budget. Optimistic transactions keep running and validating
               against the holder's commits. *)
            Stats.incr_fallbacks_middle stats;
            middle_acquire st m;
            middle_held := true;
            attempt 0 total
        | _ ->
            (* Final rung: the global irrevocable serial mode. The middle
               lock is dropped first — serial quiescence stops every
               speculative committer anyway, and holding both would make
               waiters on the middle lock spin out a whole serial run. *)
            release_middle ();
            Stats.incr_fallbacks_serial stats;
            Stats.incr_started stats;
            let t0 = if tele then Telemetry.now_ns () else 0 in
            let v = serial_run st f in
            Stats.incr_commits stats;
            if tele then begin
              let now = Telemetry.now_ns () in
              Telemetry.Histogram.record slot.serial (now - t0);
              Telemetry.Histogram.record slot.attempts (now - t0);
              Telemetry.Histogram.record slot.ops (now - op_start)
            end;
            { value = v; stamp = txn.stamp; read_only = txn.read_only;
              attempts = total + 1; serial = true }
      end
      else begin
        txn.rv <- sample_rv ();
        txn.active <- true;
        Stats.incr_started stats;
        let t0 = if tele then Telemetry.now_ns () else 0 in
        match
          let v = f txn in
          commit txn;
          v
        with
        | v ->
            txn.active <- false;
            release_middle ();
            let read_only = txn.read_only in
            reset_logs txn;
            Stats.incr_commits stats;
            if tele then begin
              let now = Telemetry.now_ns () in
              Telemetry.Histogram.record slot.attempts (now - t0);
              Telemetry.Histogram.record slot.ops (now - op_start)
            end;
            { value = v; stamp = txn.stamp; read_only;
              attempts = total + 1; serial = false }
        | exception Abort cause ->
            txn.active <- false;
            reset_logs txn;
            San.tm_abort ~tid:txn.tid;
            if tele then begin
              Telemetry.Histogram.record slot.attempts
                (Telemetry.now_ns () - t0);
              Telemetry.Attribution.record slot.attr ~site:txn.site
                ~cause:(cause_label cause) ~uid:txn.conflict_uid
            end;
            txn.conflict_uid <- -1;
            let next, hint =
              match cause with
              | Read_invalid ->
                  Stats.incr_aborts_read stats;
                  (n + 1, Backoff.Normal)
              | Lock_busy ->
                  (* The lock clears as soon as the holder finishes its
                     writeback; a full exponential wait would outlive it. *)
                  Stats.incr_aborts_lock stats;
                  (n + 1, Backoff.Short)
              | Serial_pending ->
                  (* The serial transaction holds the token for its whole
                     run; retry eagerly and it aborts again. *)
                  Stats.incr_aborts_serial stats;
                  (n + 1, Backoff.Long)
              | User_retry ->
                  Stats.incr_aborts_user stats;
                  (* Explicit retries wait for state to change; they do not
                     escalate to the (irrevocable) serial mode. *)
                  (n, Backoff.Normal)
            in
            (* Under DST the backoff spin is dead time with no scheduling
               value; a yield gives the explorer the same decision point. *)
            if Dst.scheduled () then Dst.point Dst.Tm_backoff
            else Backoff.once ~hint st.backoff;
            attempt next (total + 1)
        | exception e ->
            txn.active <- false;
            release_middle ();
            reset_logs txn;
            San.tm_abandon ~tid:txn.tid;
            raise e
      end
    in
    attempt 0 0
  end

let atomic ?site ?max_attempts ?read_phase ?middle f =
  (atomic_stamped ?site ?max_attempts ?read_phase ?middle f).value

let current_txn () =
  match Dst.Tls.get Thread.tls_key with
  | Some st when st.txn.active -> Some st.txn
  | _ -> None

let peek tv =
  let rec go () =
    let l1 = Atomic.get tv.lock in
    if locked l1 then begin
      (* Under DST the lock holder is a paused logical thread; yield so it
         can finish instead of spinning this domain forever. *)
      Dst.point Dst.Tm_read;
      Domain.cpu_relax ();
      go ()
    end
    else
      let v = Atomic.get tv.cell in
      let l2 = Atomic.get tv.lock in
      if l1 <> l2 then go ()
      else begin
        San.nontxn_read tv.uid;
        v
      end
  in
  go ()

let poke tv v =
  San.nontxn_write tv.uid;
  let wv = Gclock.advance () in
  Atomic.set tv.lock ((wv lsl 1) lor 1);
  Atomic.set tv.cell v;
  Atomic.set tv.lock (wv lsl 1)

let clock () = Gclock.sample ()
let txn_site (txn : txn) = txn.site

let current_site () =
  match Dst.Tls.get Thread.tls_key with
  | Some st when st.txn.active -> st.txn.site
  | _ -> no_site

(* White-box hooks for the read/write-set tests. *)
let reads_logged (txn : txn) = txn.rn
let writes_logged (txn : txn) = txn.wn
