module Stats = Tm_stats

type abort_cause = Read_invalid | Lock_busy | Serial_pending | User_retry

exception Abort of abort_cause

(* A tvar couples a TL2 versioned lock word with the value cell. The lock
   word encodes [version lsl 1 lor locked]. The value lives in its own
   [Atomic.t] so the seqlock pattern (lock, value, lock) is free of plain
   data races under the OCaml memory model. *)
type 'a tvar = { lock : int Atomic.t; cell : 'a Atomic.t; uid : int }

let tvar_uid = Atomic.make 0
let tvar v = { lock = Atomic.make 0; cell = Atomic.make v; uid = Atomic.fetch_and_add tvar_uid 1 }
let tvar_id tv = tv.uid

let locked word = word land 1 = 1
let version word = word asr 1

(* Write-set entry. The existential is only ever unpacked when the stored
   tvar is physically equal to the one being looked up, which implies their
   type parameters are equal, making the [Obj.magic] in [wset_find] and
   [wset_update] safe. This is the standard OCaml idiom for heterogeneous
   transaction logs (cf. kcas). *)
type wentry = W : { tv : 'a tvar; mutable v : 'a } -> wentry

type txn = {
  mutable tid : int;
  mutable rv : int;
  mutable serial : bool;
  mutable serial_wv : int;
  mutable active : bool;
  mutable r_locks : int Atomic.t array;
  mutable r_words : int array;
  mutable r_uids : int array;
  mutable rn : int;
  mutable wset : wentry array;
  mutable wn : int;
  mutable defers : (unit -> unit) list;
  mutable stamp : int;
  mutable read_only : bool;
  mutable must_validate : bool;
  (* Telemetry: the site label of the enclosing [atomic] call and the uid
     of the tvar that caused the pending abort (-1 when unknown). Both are
     only written on slow paths (atomic entry, abort raise sites). *)
  mutable site : string;
  mutable conflict_uid : int;
}

type 'a result = {
  value : 'a;
  stamp : int;
  read_only : bool;
  attempts : int;
  serial : bool;
}

let dummy_lock = Atomic.make 0
let dummy_wentry = W { tv = { lock = Atomic.make 0; cell = Atomic.make 0; uid = -1 }; v = 0 }

let max_threads = 128
let () = assert (max_threads <= Telemetry.max_threads)

let no_site = "?"

(* Global serial token and per-thread committing flags implementing the
   Dekker-style quiescence handshake between speculative committers and the
   serial fallback. *)
let serial_token = Atomic.make 0
let committing = Array.init max_threads (fun _ -> Atomic.make false)
let serial_active () = Atomic.get serial_token = 1

let default_attempts = Atomic.make 4
let default_max_attempts () = Atomic.get default_attempts
let set_default_max_attempts n =
  if n < 1 then invalid_arg "Tm.set_default_max_attempts";
  Atomic.set default_attempts n

type thread_state = {
  id : int;
  txn : txn;
  backoff : Backoff.t;
  t_stats : Tm_stats.t;
  t_slot : Telemetry.slot;
}

let fresh_txn tid =
  {
    tid;
    rv = 0;
    serial = false;
    serial_wv = 0;
    active = false;
    r_locks = Array.make 64 dummy_lock;
    r_words = Array.make 64 0;
    r_uids = Array.make 64 (-1);
    rn = 0;
    wset = Array.make 16 dummy_wentry;
    wn = 0;
    defers = [];
    stamp = 0;
    read_only = true;
    must_validate = false;
    site = no_site;
    conflict_uid = -1;
  }

module Thread = struct
  let max_threads = max_threads

  let pool_mutex = Mutex.create ()
  let free_ids : int list ref = ref []
  let next_id = ref 0

  let acquire_id () =
    Mutex.lock pool_mutex;
    let id =
      match !free_ids with
      | id :: rest ->
          free_ids := rest;
          id
      | [] ->
          let id = !next_id in
          if id >= max_threads then (
            Mutex.unlock pool_mutex;
            failwith "Tm.Thread.register: thread-id space exhausted");
          incr next_id;
          id
    in
    Mutex.unlock pool_mutex;
    id

  let release_id id =
    Mutex.lock pool_mutex;
    free_ids := id :: !free_ids;
    Mutex.unlock pool_mutex

  let dls_key : thread_state option Domain.DLS.key =
    Domain.DLS.new_key (fun () -> None)

  let state () =
    match Domain.DLS.get dls_key with
    | Some st -> st
    | None ->
        let id = acquire_id () in
        let st =
          { id; txn = fresh_txn id; backoff = Backoff.create ();
            t_stats = Tm_stats.create (); t_slot = Telemetry.slot id }
        in
        Domain.DLS.set dls_key (Some st);
        st

  let register () = (state ()).id

  let release () =
    match Domain.DLS.get dls_key with
    | None -> ()
    | Some st ->
        Domain.DLS.set dls_key None;
        release_id st.id

  let with_registered f =
    let id = register () in
    Fun.protect ~finally:release (fun () -> f id)

  let id () = register ()
  let stats () = (state ()).t_stats
end

(* ---- read/write sets ---- *)

let rset_push txn lock word uid =
  if txn.rn = Array.length txn.r_locks then begin
    let n = 2 * txn.rn in
    let locks = Array.make n dummy_lock
    and words = Array.make n 0
    and uids = Array.make n (-1) in
    Array.blit txn.r_locks 0 locks 0 txn.rn;
    Array.blit txn.r_words 0 words 0 txn.rn;
    Array.blit txn.r_uids 0 uids 0 txn.rn;
    txn.r_locks <- locks;
    txn.r_words <- words;
    txn.r_uids <- uids
  end;
  txn.r_locks.(txn.rn) <- lock;
  txn.r_words.(txn.rn) <- word;
  txn.r_uids.(txn.rn) <- uid;
  txn.rn <- txn.rn + 1

let wset_find : type a. txn -> a tvar -> a option =
 fun txn tv ->
  let rec go i =
    if i >= txn.wn then None
    else
      let (W e) = txn.wset.(i) in
      if Obj.repr e.tv == Obj.repr tv then Some (Obj.magic e.v) else go (i + 1)
  in
  go 0

let wset_put : type a. txn -> a tvar -> a -> unit =
 fun txn tv v ->
  let rec go i =
    if i >= txn.wn then begin
      if txn.wn = Array.length txn.wset then begin
        let arr = Array.make (2 * txn.wn) dummy_wentry in
        Array.blit txn.wset 0 arr 0 txn.wn;
        txn.wset <- arr
      end;
      txn.wset.(txn.wn) <- W { tv; v };
      txn.wn <- txn.wn + 1
    end
    else
      let (W e) = txn.wset.(i) in
      if Obj.repr e.tv == Obj.repr tv then e.v <- Obj.magic v else go (i + 1)
  in
  go 0

let wset_holds_lock txn lock =
  let rec go i =
    if i >= txn.wn then false
    else
      let (W e) = txn.wset.(i) in
      e.tv.lock == lock || go (i + 1)
  in
  go 0

let reset_logs txn =
  (* Clear stored references so the GC can collect dead tvars. *)
  for i = 0 to txn.rn - 1 do
    txn.r_locks.(i) <- dummy_lock
  done;
  for i = 0 to txn.wn - 1 do
    txn.wset.(i) <- dummy_wentry
  done;
  txn.rn <- 0;
  txn.wn <- 0;
  txn.defers <- [];
  txn.read_only <- true;
  txn.must_validate <- false

(* ---- transactional operations ---- *)

let read (txn : txn) tv =
  if txn.serial then Atomic.get tv.cell
  else
    match wset_find txn tv with
    | Some v -> v
    | None ->
        let l1 = Atomic.get tv.lock in
        if locked l1 then begin
          txn.conflict_uid <- tv.uid;
          raise (Abort Lock_busy)
        end;
        let v = Atomic.get tv.cell in
        let l2 = Atomic.get tv.lock in
        if l1 <> l2 || version l1 > txn.rv then begin
          txn.conflict_uid <- tv.uid;
          raise (Abort Read_invalid)
        end;
        rset_push txn tv.lock l1 tv.uid;
        v

let write (txn : txn) tv v =
  txn.read_only <- false;
  if txn.serial then begin
    (* Irrevocable direct publication: mark locked, write, release with the
       serial stamp so concurrent speculative readers abort rather than
       pairing the new value with an old version. *)
    Atomic.set tv.lock ((txn.serial_wv lsl 1) lor 1);
    Atomic.set tv.cell v;
    Atomic.set tv.lock (txn.serial_wv lsl 1)
  end
  else wset_put txn tv v

let retry (txn : txn) =
  if txn.serial then failwith "Tm.retry: serial transactions are irrevocable";
  raise (Abort User_retry)

let defer (txn : txn) f = txn.defers <- f :: txn.defers

let validate_on_commit (txn : txn) = txn.must_validate <- true
let thread_id (txn : txn) = txn.tid
let is_serial (txn : txn) = txn.serial
let commit_stamp (txn : txn) = txn.stamp

let run_defers (txn : txn) =
  let ds = List.rev txn.defers in
  txn.defers <- [];
  List.iter (fun f -> f ()) ds

(* ---- commit ---- *)

let unlock_first_n txn n =
  for i = 0 to n - 1 do
    let (W e) = txn.wset.(i) in
    let cur = Atomic.get e.tv.lock in
    Atomic.set e.tv.lock (cur land lnot 1)
  done

let commit (txn : txn) =
  if txn.wn = 0 then begin
    (* A read-only snapshot at [rv] is always consistent, but a transaction
       whose side effects must be ordered before later conflicting commits
       (hazard publication) re-validates: if any location it read has been
       overwritten or locked since, the publication may have come too late
       to be seen, so abort. *)
    if txn.must_validate then
      for i = 0 to txn.rn - 1 do
        if Atomic.get txn.r_locks.(i) <> txn.r_words.(i) then begin
          txn.conflict_uid <- txn.r_uids.(i);
          raise (Abort Read_invalid)
        end
      done;
    txn.stamp <- txn.rv;
    run_defers txn
  end
  else begin
    let flag = committing.(txn.tid) in
    Atomic.set flag true;
    if serial_active () then begin
      Atomic.set flag false;
      txn.conflict_uid <- -1;
      raise (Abort Serial_pending)
    end;
    (* Lock the write set; abort immediately on any busy lock (no spinning,
       so lock acquisition cannot deadlock). *)
    let rec lock_from i =
      if i < txn.wn then begin
        let (W e) = txn.wset.(i) in
        let l = Atomic.get e.tv.lock in
        if locked l || not (Atomic.compare_and_set e.tv.lock l (l lor 1))
        then begin
          unlock_first_n txn i;
          Atomic.set flag false;
          txn.conflict_uid <- e.tv.uid;
          raise (Abort Lock_busy)
        end;
        lock_from (i + 1)
      end
    in
    lock_from 0;
    let wv = Gclock.advance () in
    (* If no other transaction committed since we began, the read set is
       trivially valid (standard TL2 optimization). *)
    if wv <> txn.rv + 1 then begin
      let rec validate i =
        if i < txn.rn then begin
          let lock = txn.r_locks.(i) and word = txn.r_words.(i) in
          let cur = Atomic.get lock in
          let ok =
            cur = word || (cur = word lor 1 && wset_holds_lock txn lock)
          in
          if not ok then begin
            unlock_first_n txn txn.wn;
            Atomic.set flag false;
            txn.conflict_uid <- txn.r_uids.(i);
            raise (Abort Read_invalid)
          end;
          validate (i + 1)
        end
      in
      validate 0
    end;
    for i = 0 to txn.wn - 1 do
      let (W e) = txn.wset.(i) in
      Atomic.set e.tv.cell e.v
    done;
    for i = 0 to txn.wn - 1 do
      let (W e) = txn.wset.(i) in
      Atomic.set e.tv.lock (wv lsl 1)
    done;
    Atomic.set flag false;
    txn.stamp <- wv;
    run_defers txn
  end

(* ---- serial fallback ---- *)

let serial_acquire () =
  let b = Backoff.create () in
  while not (Atomic.compare_and_set serial_token 0 1) do
    Backoff.once b
  done;
  (* Quiesce in-flight speculative committers. *)
  Array.iter
    (fun flag ->
      while Atomic.get flag do
        Domain.cpu_relax ()
      done)
    committing

let serial_release () = Atomic.set serial_token 0

let serial_run st f =
  let txn = st.txn in
  serial_acquire ();
  Fun.protect ~finally:serial_release (fun () ->
      txn.serial <- true;
      txn.serial_wv <- Gclock.advance ();
      txn.active <- true;
      txn.rv <- txn.serial_wv;
      txn.defers <- [];
      txn.read_only <- true;
      let finish v =
        txn.stamp <- txn.serial_wv;
        run_defers txn;
        txn.active <- false;
        txn.serial <- false;
        v
      in
      match f txn with
      | v -> finish v
      | exception e ->
          txn.defers <- [];
          txn.active <- false;
          txn.serial <- false;
          raise e)

(* ---- the atomic runner ---- *)

let wait_serial_clear () =
  while serial_active () do
    Domain.cpu_relax ()
  done

(* Sample a read version that cannot straddle a serial transaction. A
   serial transaction advances the clock to [wv_s] {e before} performing
   its direct writes; a speculative transaction that sampled [rv >= wv_s]
   while those writes were still in flight could read pre-serial values and
   wrongly attribute them to stamp [rv]. Observing the serial token clear
   {e after} sampling proves every serial transaction with [wv_s <= rv]
   has fully finished (the token is held from before the clock bump until
   after the last write), so the snapshot at [rv] is well-defined; later
   serial transactions get [wv_s > rv] and are caught by version checks. *)
let rec sample_rv () =
  wait_serial_clear ();
  let rv = Gclock.sample () in
  if serial_active () then sample_rv () else rv

let cause_label = function
  | Read_invalid -> "read_invalid"
  | Lock_busy -> "lock_busy"
  | Serial_pending -> "serial_pending"
  | User_retry -> "user_retry"

let atomic_stamped ?site ?max_attempts f =
  let st = Thread.state () in
  let txn = st.txn in
  if txn.active then
    (* Flat nesting: run inside the enclosing transaction. The enclosing
       atomic's site label stays in force for attribution. *)
    let v = f txn in
    { value = v; stamp = txn.stamp; read_only = txn.read_only;
      attempts = 0; serial = txn.serial }
  else begin
    let max_attempts =
      match max_attempts with Some n -> n | None -> default_max_attempts ()
    in
    let stats = st.t_stats in
    (* Sample the switch once per operation: a concurrent toggle mid-run
       costs at worst one mis-attributed operation, and the hot path pays a
       single immutable-bool test per attempt instead of an Atomic.get. *)
    let tele = Telemetry.enabled () in
    let slot = st.t_slot in
    if tele then
      txn.site <- (match site with Some s -> s | None -> no_site);
    let op_start = if tele then Telemetry.now_ns () else 0 in
    Backoff.reset st.backoff;
    let rec attempt n total =
      if n >= max_attempts then begin
        Stats.incr_fallbacks stats;
        Stats.incr_started stats;
        let t0 = if tele then Telemetry.now_ns () else 0 in
        let v = serial_run st f in
        Stats.incr_commits stats;
        if tele then begin
          let now = Telemetry.now_ns () in
          Telemetry.Histogram.record slot.serial (now - t0);
          Telemetry.Histogram.record slot.attempts (now - t0);
          Telemetry.Histogram.record slot.ops (now - op_start)
        end;
        { value = v; stamp = txn.stamp; read_only = txn.read_only;
          attempts = total + 1; serial = true }
      end
      else begin
        txn.rv <- sample_rv ();
        txn.active <- true;
        Stats.incr_started stats;
        let t0 = if tele then Telemetry.now_ns () else 0 in
        match
          let v = f txn in
          commit txn;
          v
        with
        | v ->
            txn.active <- false;
            let read_only = txn.read_only in
            reset_logs txn;
            Stats.incr_commits stats;
            if tele then begin
              let now = Telemetry.now_ns () in
              Telemetry.Histogram.record slot.attempts (now - t0);
              Telemetry.Histogram.record slot.ops (now - op_start)
            end;
            { value = v; stamp = txn.stamp; read_only;
              attempts = total + 1; serial = false }
        | exception Abort cause ->
            txn.active <- false;
            reset_logs txn;
            if tele then begin
              Telemetry.Histogram.record slot.attempts
                (Telemetry.now_ns () - t0);
              Telemetry.Attribution.record slot.attr ~site:txn.site
                ~cause:(cause_label cause) ~uid:txn.conflict_uid
            end;
            txn.conflict_uid <- -1;
            let next =
              match cause with
              | Read_invalid ->
                  Stats.incr_aborts_read stats;
                  n + 1
              | Lock_busy ->
                  Stats.incr_aborts_lock stats;
                  n + 1
              | Serial_pending ->
                  Stats.incr_aborts_serial stats;
                  n + 1
              | User_retry ->
                  Stats.incr_aborts_user stats;
                  (* Explicit retries wait for state to change; they do not
                     escalate to the (irrevocable) serial mode. *)
                  n
            in
            Backoff.once st.backoff;
            attempt next (total + 1)
        | exception e ->
            txn.active <- false;
            reset_logs txn;
            raise e
      end
    in
    attempt 0 0
  end

let atomic ?site ?max_attempts f = (atomic_stamped ?site ?max_attempts f).value

let current_txn () =
  match Domain.DLS.get Thread.dls_key with
  | Some st when st.txn.active -> Some st.txn
  | _ -> None

let peek tv =
  let rec go () =
    let l1 = Atomic.get tv.lock in
    if locked l1 then begin
      Domain.cpu_relax ();
      go ()
    end
    else
      let v = Atomic.get tv.cell in
      let l2 = Atomic.get tv.lock in
      if l1 <> l2 then go () else v
  in
  go ()

let poke tv v =
  let wv = Gclock.advance () in
  Atomic.set tv.lock ((wv lsl 1) lor 1);
  Atomic.set tv.cell v;
  Atomic.set tv.lock (wv lsl 1)

let _ = ignore dummy_lock
