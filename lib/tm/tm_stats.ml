include Telemetry.Counters
