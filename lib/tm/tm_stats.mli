(** Per-thread transaction statistics.

    Since the telemetry redesign this is an alias for
    {!Telemetry.Counters}: an abstract counter record updated through
    [incr_*] bumpers and read through named accessors, with [to_json] for
    machine-readable export. Each record is written by exactly one thread
    and only read by others after the worker threads have joined, so no
    synchronization is needed on the hot path. *)

include module type of Telemetry.Counters with type t = Telemetry.Counters.t
