(** RR-FA: fully associative reservations (paper Listing 2).

    A transactional linked list holds one node per registered thread; each
    node carries the thread's reservation slots. [Revoke] traverses the
    whole list — O(T) work and a read of every thread's slots, which is why
    it is prone to conflicts with concurrent [Reserve]/[Release] — while
    [Reserve], [Release] and [Get] touch only the caller's node. *)

type 'r slots = 'r option Tm.tvar array

type 'r lnode = { slots : 'r slots; next : 'r lnode option Tm.tvar }

type 'r t = {
  equal : 'r -> 'r -> bool;
  k : int;
  head : 'r lnode option Tm.tvar;
  mine : 'r lnode option Tm.tvar array;  (** per-thread registration *)
}

let name = "RR-FA"
let strict = true

let create ?(config = Rr_config.default) ~hash:_ ~equal () =
  Rr_config.validate config;
  {
    equal;
    k = config.slots_per_thread;
    head = Tm.tvar None;
    mine = Array.init Tm.Thread.max_threads (fun _ -> Tm.tvar None);
  }

let my_lnode t txn =
  let mine = t.mine.(Tm.thread_id txn) in
  match Tm.read txn mine with
  | Some n -> n
  | None ->
      let n =
        {
          slots = Array.init t.k (fun _ -> Tm.tvar None);
          next = Tm.tvar None;
        }
      in
      Tm.write txn n.next (Tm.read txn t.head);
      Tm.write txn t.head (Some n);
      Tm.write txn mine (Some n);
      n

let register t txn = ignore (my_lnode t txn)

(* Find the first slot satisfying [pred]; scanning stops early so a
   transaction's read set stays proportional to the slots it inspects. *)
let find_slot txn slots pred =
  let n = Array.length slots in
  let rec go i =
    if i >= n then None
    else
      let v = Tm.read txn slots.(i) in
      if pred v then Some slots.(i) else go (i + 1)
  in
  go 0

let holds t txn slots r =
  find_slot txn slots (function Some r' -> t.equal r' r | None -> false)

let reserve t txn r =
  let n = my_lnode t txn in
  match holds t txn n.slots r with
  | Some _ -> ()
  | None -> (
      match find_slot txn n.slots (fun v -> v = None) with
      | Some slot -> Tm.write txn slot (Some r)
      | None -> invalid_arg "Rr_fa.reserve: reservation set full")

let release t txn r =
  let n = my_lnode t txn in
  match holds t txn n.slots r with
  | Some slot -> Tm.write txn slot None
  | None -> ()

let release_all t txn =
  let n = my_lnode t txn in
  Array.iter
    (fun slot -> if Tm.read txn slot <> None then Tm.write txn slot None)
    n.slots

let get t txn r =
  let n = my_lnode t txn in
  match holds t txn n.slots r with Some _ -> Some r | None -> None

let revoke t txn r =
  let rec walk = function
    | None -> ()
    | Some n ->
        Dst.point Dst.Rr_revoke_step;
        Array.iter
          (fun slot ->
            match Tm.read txn slot with
            | Some r' when t.equal r' r -> Tm.write txn slot None
            | Some _ | None -> ())
          n.slots;
        walk (Tm.read txn n.next)
  in
  walk (Tm.read txn t.head)
