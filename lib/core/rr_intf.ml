(** The revocable-reservation interface (the paper's Section 2 object).

    A revocable reservation maintains, for every thread, a set of
    references. All methods must be called from inside a transaction; their
    effects commit or roll back with it.

    The specification (Listing 1):
    - [Reserve r] adds [r] to the calling thread's set;
    - [Release r] removes it;
    - [Get r] returns [Some r] iff [r] is in the caller's set;
    - [Revoke r] removes [r] from {e every} thread's set.

    Strict implementations (RR-FA, RR-DM, RR-SA) implement this exactly.
    Relaxed implementations (RR-XO, RR-SO, RR-V) may {e spuriously} drop a
    reservation — [Get r] may return [None] even though no [Revoke r]
    occurred (because of hash collisions or competing [Reserve]s) — but
    never return [Some r] for a reference that was revoked since the
    caller's reservation. Spurious drops cost a restart, never safety. *)

module type S = sig
  type 'r t

  val name : string

  val strict : bool
  (** Whether [get] is immune to spurious invalidation. The doubly-linked
      list's separate unlink-and-revoke transaction keys off this. *)

  val create :
    ?config:Rr_config.t ->
    hash:('r -> int) ->
    equal:('r -> 'r -> bool) ->
    unit ->
    'r t
  (** [hash] maps a reference to its metadata index (the paper hashes node
      addresses; here, pool slot ids); it may collide freely. [equal]
      decides reference identity (physical equality for pool nodes). *)

  val register : 'r t -> Tm.txn -> unit
  (** Announce the calling thread. Must precede its first use of any other
      method; idempotent, and cheap after the first call. *)

  val reserve : 'r t -> Tm.txn -> 'r -> unit
  (** Add [r] to the caller's set. No-op if already present.
      @raise Invalid_argument if the per-thread set is full
      ({!Rr_config.t.slots_per_thread}). *)

  val release : 'r t -> Tm.txn -> 'r -> unit
  (** Remove [r] from the caller's set; no-op if absent. *)

  val release_all : 'r t -> Tm.txn -> unit
  (** Empty the caller's set (Listing 5 releases its only reservation at
      every window boundary; with [K = 1] this is the common path). *)

  val get : 'r t -> Tm.txn -> 'r -> 'r option
  (** [Some r] iff the caller still holds a valid reservation on [r]. *)

  val revoke : 'r t -> Tm.txn -> 'r -> unit
  (** Remove [r] from every thread's set, so that the memory behind [r] can
      be reclaimed the moment the enclosing transaction commits. *)
end

(** A runtime handle: one implementation instantiated at a concrete
    reference type, packaged as closures so data structures and benchmarks
    can select implementations dynamically. *)
type 'r ops = {
  name : string;
  strict : bool;
  register : Tm.txn -> unit;
  reserve : Tm.txn -> 'r -> unit;
  release : Tm.txn -> 'r -> unit;
  release_all : Tm.txn -> unit;
  get : Tm.txn -> 'r -> 'r option;
  revoke : Tm.txn -> 'r -> unit;
}

let instantiate (type r) (module M : S) ?config ~(hash : r -> int)
    ?(sid : r -> int = hash) ~(equal : r -> r -> bool) () : r ops =
  let t = M.create ?config ~hash ~equal () in
  (* The single funnel every implementation's operations pass through, so
     one yield point (and one TxSan protocol hook) per method covers all
     six RRs under DST. [sid] maps a reference to its sanitizer shadow-slot
     key (pool nodes pass [Mempool.san_key]); it defaults to [hash], whose
     values simply miss the shadow tables, keeping non-pool references
     benign. *)
  let plain =
    {
      name = M.name;
      strict = M.strict;
      register = (fun txn -> M.register t txn);
      reserve =
        (fun txn r ->
          Dst.point Dst.Rr_reserve;
          San.rr_reserve ~tid:(Tm.thread_id txn) ~node:(sid r);
          M.reserve t txn r);
      release =
        (fun txn r ->
          Dst.point Dst.Rr_release;
          San.rr_release ~tid:(Tm.thread_id txn) ~node:(sid r);
          M.release t txn r);
      release_all =
        (fun txn ->
          Dst.point Dst.Rr_release;
          San.rr_release_all ~tid:(Tm.thread_id txn);
          M.release_all t txn);
      get =
        (fun txn r ->
          Dst.point Dst.Rr_get;
          if San.enabled () then begin
            let tid = Tm.thread_id txn in
            San.rr_check_begin ~tid;
            let res = M.get t txn r in
            San.rr_check_end ~tid ~site:(Tm.txn_site txn) ~node:(sid r)
              ~ok:(res <> None);
            res
          end
          else M.get t txn r);
      revoke =
        (fun txn r ->
          Dst.point Dst.Rr_revoke;
          San.rr_revoke ~tid:(Tm.thread_id txn) ~site:(Tm.txn_site txn)
            ~node:(sid r);
          M.revoke t txn r);
    }
  in
  if not (Telemetry.enabled ()) then plain
  else begin
    (* Counting wrapper, built only when telemetry was on at instantiation
       time, so the default path pays zero overhead. Counts are per attempt
       (an aborted transaction's calls are included): [get_misses] is the
       number of [Get] calls that returned [None], an upper bound on the
       relaxed implementations' spurious drops (it also includes genuine
       revocations observed by the caller). *)
    let reserves = Atomic.make 0
    and releases = Atomic.make 0
    and revokes = Atomic.make 0
    and gets = Atomic.make 0
    and get_misses = Atomic.make 0 in
    Telemetry.Gauges.register ~group:"rr" ~name:M.name (fun () ->
        [
          ("reserves", float_of_int (Atomic.get reserves));
          ("releases", float_of_int (Atomic.get releases));
          ("revokes", float_of_int (Atomic.get revokes));
          ("gets", float_of_int (Atomic.get gets));
          ("get_misses", float_of_int (Atomic.get get_misses));
        ]);
    (* Delegate to [plain] rather than [M] directly so the DST yield
       points and TxSan hooks stay in force under telemetry. *)
    {
      plain with
      reserve =
        (fun txn r ->
          Atomic.incr reserves;
          plain.reserve txn r);
      release =
        (fun txn r ->
          Atomic.incr releases;
          plain.release txn r);
      revoke =
        (fun txn r ->
          Atomic.incr revokes;
          plain.revoke txn r);
      get =
        (fun txn r ->
          Atomic.incr gets;
          match plain.get txn r with
          | None ->
              Atomic.incr get_misses;
              None
          | some -> some);
    }
  end
