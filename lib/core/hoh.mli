(** The hand-over-hand transaction engine (the skeleton of the paper's
    Listing 5 [Apply]).

    An operation is a chain of transactions. Each transaction receives the
    validated hand-off point of its predecessor ([start = Some node] if the
    reservation survived, [None] if it was revoked or this is the first
    transaction — in which case the traversal begins at the root/head) and
    either finishes the operation or hands off by naming the node to
    reserve for the next transaction. The engine performs the
    register / get / release-all / reserve choreography so the data
    structures contain only traversal logic. *)

type ('r, 'a) outcome =
  | Finish of 'a  (** operation complete; release reservations and commit *)
  | Hand_off of 'r
      (** commit this window, reserving the given node as the next start *)

(** Per-thread window budgets with the paper's [scatter] optimization: the
    first window of an operation spans a random 1..W nodes so that threads
    starting together do not all try to reserve the same node; subsequent
    windows span exactly W.

    With [adaptive] set, the static W becomes a per-thread controller that
    MIMD-adjusts the live budget from contention feedback: a window that
    commits without contention aborts doubles it (up to [4 * w]); one that
    pays read-validation / lock-busy / serial-pending aborts, or commits
    serially, halves it (down to 1). The feedback is recorded by
    {!apply} when the window is passed to it.

    With [fusion = k > 1], the same feedback drives a second per-thread
    controller over window {e count}: after clean commits, up to the live
    fuse budget (1..k, doubling on clean, halving on contention) of
    consecutive windows run inside one transaction — one gclock stamp and
    one release/reserve round per fused chain instead of per window. A
    window step that queues {!Tm.defer} work ends its fused chain (the
    defers publish protocol state at commit, which the next window must
    observe), so only pure traversal windows fuse. *)
module Window : sig
  type t

  val create : ?scatter:bool -> ?adaptive:bool -> ?fusion:int -> int -> t
  (** [create w] with [w >= 1]; [scatter] defaults to [true], [adaptive]
      to [false], [fusion] to [1] (off; must be [>= 1]). [w] is the static
      budget, and the adaptive controller's starting point and
      quarter-ceiling; [fusion] is the fuse controller's ceiling. *)

  val size : t -> int
  (** The static [w], regardless of adaptation. *)

  val adaptive : t -> bool

  val fusion : t -> int
  (** The fusion ceiling [k] ([1] when fusion is off). *)

  val fused : t -> bool

  val budget : t -> thread:int -> int
  (** The live budget for a continuation window: [thread]'s adapted value,
      or [w] when not adaptive. *)

  val fuse_budget : t -> thread:int -> int
  (** How many consecutive windows [thread]'s next transaction may fuse
      ([1] when fusion is off or after recent contention). *)

  val record : t -> thread:int -> contended:bool -> unit
  (** Feed one committed window's outcome to [thread]'s controller(s);
      no-op when neither adaptive nor fused. *)

  val first_budget : t -> thread:int -> int
  (** Budget for an operation's first window: uniform in [1..budget] when
      scattering, else [budget]. Uses a per-thread generator, so it is
      safe to call concurrently. *)
end

val apply :
  rr:'r Rr_intf.ops ->
  ?site:string ->
  ?max_attempts:int ->
  ?read_phase:bool ->
  ?window:Window.t * int ->
  ?middle:Tm.Middle.t ->
  (Tm.txn -> start:'r option -> ('r, 'a) outcome) ->
  'a
(** [apply ~rr step] runs [step] in successive transactions until it
    finishes. If an attempt aborts, [step] re-runs in a fresh transaction
    with the reservation re-checked; if the reservation was revoked
    meanwhile, [start] is [None] and the step must restart from the
    beginning of the structure.

    [site] is forwarded to {!Tm.atomic} as the telemetry attribution label
    for every window transaction of this operation, and [read_phase] as
    the pure-traversal hint (locked reads wait instead of aborting; no
    serial escalation — see {!Tm.atomic}).

    [window] is [(w, thread)]: when [w] is adaptive or fused, every window
    transaction's contention outcome is fed back to [thread]'s budget
    controller(s) via {!Window.record}. The step callback still chooses
    its own budgets (via {!Window.budget} / {!Window.first_budget});
    passing [window] closes the feedback loop, and with [fusion > 1] also
    lets the engine run {!Window.fuse_budget} consecutive windows inside
    one transaction (intermediate hand-offs carry no reservation — the
    fused transaction's own read-set validation protects them).

    [middle] is forwarded to {!Tm.atomic} as the structure's middle-path
    lock for every window transaction of this operation. *)

val apply_stamped :
  rr:'r Rr_intf.ops ->
  ?site:string ->
  ?max_attempts:int ->
  ?read_phase:bool ->
  ?window:Window.t * int ->
  ?middle:Tm.Middle.t ->
  (Tm.txn -> start:'r option -> ('r, 'a) outcome) ->
  'a * int
(** Like {!apply} but also returns the commit stamp of the {e final}
    transaction — the operation's linearization point, used by the
    serialization checker. *)
