(** Revocable reservations — the paper's core contribution.

    A revocable reservation object lets a transaction reserve a reference
    (a node address) so a {e later} transaction by the same thread can pick
    up where it left off, while letting any other transaction revoke all
    reservations on a reference so its memory can be reclaimed immediately.
    See {!Rr_intf.S} for the contract and the six implementations below for
    the paper's design-space exploration (Section 3). *)

module Config = Rr_config
module Spec_model = Rr_spec_model
module Hoh = Hoh

module type S = Rr_intf.S

(** A runtime handle for one implementation at a concrete reference type
    (see {!Rr_intf.ops}). *)
type 'r ops = 'r Rr_intf.ops = {
  name : string;
  strict : bool;
  register : Tm.txn -> unit;
  reserve : Tm.txn -> 'r -> unit;
  release : Tm.txn -> 'r -> unit;
  release_all : Tm.txn -> unit;
  get : Tm.txn -> 'r -> 'r option;
  revoke : Tm.txn -> 'r -> unit;
}

val instantiate :
  (module S) ->
  ?config:Config.t ->
  hash:('r -> int) ->
  ?sid:('r -> int) ->
  equal:('r -> 'r -> bool) ->
  unit ->
  'r ops
(** [sid] maps a reference to its TxSan shadow-slot key (pool-backed
    structures pass [Mempool.san_key]); defaults to [hash], whose values
    miss the sanitizer's shadow tables and are treated as benign. *)

(** The three strict implementations (cache-shaped; O(T)-ish [Revoke]). *)

module Fa : S
(** Fully associative: per-thread nodes on one list (Listing 2). *)

module Dm : S
(** Direct mapped: per-thread cells in hashed bucket lists. *)

module Sa : S
(** Set associative: [A] bucket arrays, threads partitioned across them. *)

(** The three relaxed implementations (O(1) or O(A) [Revoke]; spurious
    drops allowed). *)

module Xo : S
(** Exclusive ownership: bucket -> owning thread id (Listing 3). *)

module So : S
(** Shared ownership: [A] ownership arrays. *)

module V : S
(** Versioned: bucket -> counter, incremented by [Revoke] (Listing 4). *)

val all : (string * (module S)) list
(** All six, keyed by their paper names ("RR-FA" ... "RR-V"). *)

val by_name : string -> (module S) option
