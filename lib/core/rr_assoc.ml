(** Shared core of RR-DM (direct mapped) and RR-SA (set associative).

    Reservations live in per-thread cells that are linked, while active,
    into a doubly linked bucket list selected by hashing the reference; the
    paper's RR-DM is the one-way special case and RR-SA uses [A] ways with
    each thread assigned to one way, so concurrent [Reserve]/[Release] by
    different threads rarely touch the same list. [Revoke] walks the bucket
    for the reference's hash in {e every} way. Each bucket starts with a
    sentinel cell to decouple revokers from inserters (a paper-noted
    contention optimization), and [Release] can optionally defer unlinking
    to the next [Reserve] ({!Rr_config.t.dm_eager_unlink} = false). *)

type 'r cell = {
  value : 'r option Tm.tvar;
  prev : 'r cell option Tm.tvar;  (** [Some _] iff linked into a bucket *)
  next : 'r cell option Tm.tvar;
}

type 'r t = {
  hash : 'r -> int;
  equal : 'r -> 'r -> bool;
  k : int;
  ways : int;
  buckets : int;
  eager_unlink : bool;
  table : 'r cell array array;  (** [ways][buckets] sentinels *)
  mine : 'r cell array option Tm.tvar array;  (** per-thread cells *)
}

let fresh_cell () =
  { value = Tm.tvar None; prev = Tm.tvar None; next = Tm.tvar None }

let create_t ~ways ~config ~hash ~equal =
  Rr_config.validate config;
  if ways < 1 then invalid_arg "Rr_assoc: ways < 1";
  {
    hash;
    equal;
    k = config.Rr_config.slots_per_thread;
    ways;
    buckets = config.Rr_config.buckets;
    eager_unlink = config.Rr_config.dm_eager_unlink;
    table =
      Array.init ways (fun _ ->
          Array.init config.Rr_config.buckets (fun _ -> fresh_cell ()));
    mine = Array.init Tm.Thread.max_threads (fun _ -> Tm.tvar None);
  }

let bucket_of t ~way r = t.table.(way).((t.hash r land max_int) mod t.buckets)
let way_of t txn = Tm.thread_id txn mod t.ways

let my_cells t txn =
  let mine = t.mine.(Tm.thread_id txn) in
  match Tm.read txn mine with
  | Some cells -> cells
  | None ->
      let cells = Array.init t.k (fun _ -> fresh_cell ()) in
      Tm.write txn mine (Some cells);
      cells

let register t txn = ignore (my_cells t txn)

let link_after txn sentinel cell =
  let nxt = Tm.read txn sentinel.next in
  Tm.write txn cell.prev (Some sentinel);
  Tm.write txn cell.next nxt;
  Tm.write txn sentinel.next (Some cell);
  match nxt with
  | Some c -> Tm.write txn c.prev (Some cell)
  | None -> ()

let unlink txn cell =
  match Tm.read txn cell.prev with
  | None -> ()
  | Some p ->
      let nxt = Tm.read txn cell.next in
      Tm.write txn p.next nxt;
      (match nxt with Some c -> Tm.write txn c.prev (Some p) | None -> ());
      Tm.write txn cell.prev None;
      Tm.write txn cell.next None

let find_cell t txn cells pred =
  let n = Array.length cells in
  let rec go i =
    if i >= n then None
    else
      let c = cells.(i) in
      if pred (Tm.read txn c.value) then Some c else go (i + 1)
  in
  ignore t;
  go 0

let holding t txn cells r =
  find_cell t txn cells (function Some r' -> t.equal r' r | None -> false)

let reserve t txn r =
  let cells = my_cells t txn in
  match holding t txn cells r with
  | Some _ -> ()
  | None -> (
      match find_cell t txn cells (fun v -> v = None) with
      | None -> invalid_arg "Rr_assoc.reserve: reservation set full"
      | Some cell ->
          (* A lazily-released cell may still sit in its old bucket; move it
             now ("removal delayed until a subsequent transaction"). *)
          unlink txn cell;
          Tm.write txn cell.value (Some r);
          link_after txn (bucket_of t ~way:(way_of t txn) r) cell)

let release_cell t txn cell =
  Tm.write txn cell.value None;
  if t.eager_unlink then unlink txn cell

let release t txn r =
  let cells = my_cells t txn in
  match holding t txn cells r with
  | Some cell -> release_cell t txn cell
  | None -> ()

let release_all t txn =
  let cells = my_cells t txn in
  Array.iter
    (fun cell ->
      if Tm.read txn cell.value <> None then release_cell t txn cell)
    cells

let get t txn r =
  let cells = my_cells t txn in
  match holding t txn cells r with Some _ -> Some r | None -> None

let revoke t txn r =
  for way = 0 to t.ways - 1 do
    let sentinel = bucket_of t ~way r in
    let rec walk = function
      | None -> ()
      | Some cell ->
          Dst.point Dst.Rr_revoke_step;
          (match Tm.read txn cell.value with
          | Some r' when t.equal r' r -> Tm.write txn cell.value None
          | Some _ | None -> ());
          walk (Tm.read txn cell.next)
    in
    walk (Tm.read txn sentinel.next)
  done
