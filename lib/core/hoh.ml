type ('r, 'a) outcome = Finish of 'a | Hand_off of 'r

let run ~rr ?site ?max_attempts step =
  let reserved = ref None in
  let rec loop () =
    let res =
      Tm.atomic_stamped ?site ?max_attempts (fun txn ->
          rr.Rr_intf.register txn;
          let start =
            match !reserved with
            | None -> None
            | Some r -> rr.Rr_intf.get txn r
          in
          match step txn ~start with
          | Finish v ->
              rr.Rr_intf.release_all txn;
              Finish v
          | Hand_off r ->
              rr.Rr_intf.release_all txn;
              rr.Rr_intf.reserve txn r;
              Hand_off r)
    in
    match res.Tm.value with
    | Finish v ->
        reserved := None;
        (v, res.Tm.stamp)
    | Hand_off r ->
        reserved := Some r;
        (* Between windows the operation holds only its reservation; this
           is the interleaving the paper's races live in, so make it a
           first-class scheduling point. *)
        Dst.point Dst.Hoh_handoff;
        loop ()
  in
  loop ()

let apply ~rr ?site ?max_attempts step = fst (run ~rr ?site ?max_attempts step)
let apply_stamped ~rr ?site ?max_attempts step = run ~rr ?site ?max_attempts step

module Window = struct
  type t = { w : int; scatter : bool; seeds : int array }

  let create ?(scatter = true) w =
    if w < 1 then invalid_arg "Hoh.Window.create: w < 1";
    {
      w;
      scatter;
      seeds = Array.init Tm.Thread.max_threads (fun i -> (i * 7919) + 17);
    }

  let size t = t.w

  let first_budget t ~thread =
    if not t.scatter then t.w
    else begin
      let s = t.seeds.(thread) in
      let s = s lxor (s lsl 13) in
      let s = s lxor (s lsr 7) in
      let s = s lxor (s lsl 17) in
      t.seeds.(thread) <- s;
      1 + (s land max_int) mod t.w
    end
end
