type ('r, 'a) outcome = Finish of 'a | Hand_off of 'r

(* Per-thread window budgets. Static mode is the paper's fixed W with the
   scatter optimization for first windows. Adaptive mode replaces the fixed
   W with a per-thread controller: the budget grows multiplicatively after
   a window that committed without contention and shrinks multiplicatively
   after one that paid contention aborts (read-validation, lock-busy or
   serial-pending — user retries are the operation's own business), so hot
   traversals converge on the largest window the current conflict rate
   sustains instead of a compile-time guess. *)
module Window = struct
  type t = {
    w : int;
    scatter : bool;
    seeds : int array;
    adaptive : bool;
    w_min : int;
    w_max : int;
    cur : int array;  (* per-thread live budget; owner-written only *)
    fusion : int;  (* max windows fused into one transaction; 1 = off *)
    fcur : int array;  (* per-thread live fuse count; owner-written only *)
  }

  let create ?(scatter = true) ?(adaptive = false) ?(fusion = 1) w =
    if w < 1 then invalid_arg "Hoh.Window.create: w < 1";
    if fusion < 1 then invalid_arg "Hoh.Window.create: fusion < 1";
    {
      w;
      scatter;
      seeds = Array.init Tm.Thread.max_threads (fun i -> (i * 7919) + 17);
      adaptive;
      w_min = 1;
      w_max = 4 * w;
      cur = Array.make Tm.Thread.max_threads w;
      fusion;
      fcur = Array.make Tm.Thread.max_threads 1;
    }

  let size t = t.w
  let adaptive t = t.adaptive
  let budget t ~thread = if t.adaptive then t.cur.(thread) else t.w
  let fusion t = t.fusion
  let fused t = t.fusion > 1
  let fuse_budget t ~thread = if t.fusion > 1 then t.fcur.(thread) else 1

  let record t ~thread ~contended =
    if t.adaptive then begin
      let c = t.cur.(thread) in
      t.cur.(thread) <-
        (if contended then max t.w_min (c / 2) else min t.w_max (2 * c))
    end;
    if t.fusion > 1 then begin
      let k = t.fcur.(thread) in
      t.fcur.(thread) <-
        (if contended then max 1 (k / 2) else min t.fusion (2 * k))
    end

  let first_budget t ~thread =
    let b = budget t ~thread in
    if not t.scatter then b
    else begin
      let s = t.seeds.(thread) in
      let s = s lxor (s lsl 13) in
      let s = s lxor (s lsr 7) in
      let s = s lxor (s lsl 17) in
      t.seeds.(thread) <- s;
      1 + (s land max_int) mod b
    end
end

let[@inline] contention_aborts s =
  Tm.Stats.aborts_read s + Tm.Stats.aborts_lock s + Tm.Stats.aborts_serial s

let run ~rr ?site ?max_attempts ?(read_phase = false) ?window ?middle step =
  let reserved = ref None in
  (* The controller's feedback signal: the delta of this thread's
     contention-abort counters across the window transaction, plus whether
     it had to commit serially. Counters are thread-private, so the delta
     attributes exactly this window's aborts. *)
  let stats =
    match window with
    | Some (w, _) when Window.adaptive w || Window.fused w ->
        Some (Tm.Thread.stats ())
    | _ -> None
  in
  let rec loop () =
    let c0 = match stats with Some s -> contention_aborts s | None -> 0 in
    let fuse =
      match window with
      | Some (w, thread) -> Window.fuse_budget w ~thread
      | None -> 1
    in
    let res =
      Tm.atomic_stamped ?site ?max_attempts ~read_phase ?middle (fun txn ->
          rr.Rr_intf.register txn;
          let start =
            match !reserved with
            | None -> None
            | Some r -> rr.Rr_intf.get txn r
          in
          (* Window fusion: run up to [fuse] windows back to back inside
             this one transaction. An intermediate hand-off point needs no
             reservation — the node was read by this very transaction, so
             the read-set validation that guards the commit also proves it
             was not revoked (opacity); only the final window's hand-off
             pays the release/reserve round, and the whole fused chain
             pays one gclock stamp. On abort the transaction re-runs from
             the last {e committed} reservation, exactly as unfused.

             A window that queued deferred work is a fusion barrier: the
             defers carry protocol state the step only publishes at
             commit (the dlist two-phase remove, the skiplist resume
             hint), so the next window must not run in the same
             transaction or it would observe the pre-commit state. *)
          let rec windows start k =
            let d0 = Tm.defers_pending txn in
            match step txn ~start with
            | Finish v ->
                rr.Rr_intf.release_all txn;
                Finish v
            | Hand_off r when k > 1 && Tm.defers_pending txn = d0 ->
                windows (Some r) (k - 1)
            | Hand_off r ->
                rr.Rr_intf.release_all txn;
                rr.Rr_intf.reserve txn r;
                Hand_off r
          in
          windows start fuse)
    in
    (match (window, stats) with
    | Some (w, thread), Some s ->
        Window.record w ~thread
          ~contended:(res.Tm.serial || contention_aborts s > c0)
    | _ -> ());
    match res.Tm.value with
    | Finish v ->
        reserved := None;
        (* The operation is over: TxSan checks the thread left no applied
           reservations behind and drops its carry/hint shadow. *)
        if San.enabled () then San.window_finish ~tid:(Tm.Thread.id ());
        (v, res.Tm.stamp)
    | Hand_off r ->
        reserved := Some r;
        (* The committed reservation becomes the carried pointer; until
           the next window's successful [get] it must not be dereferenced
           (TxSan's unchecked-carry rule). *)
        if San.enabled () then San.window_handoff ~tid:(Tm.Thread.id ());
        (* Between windows the operation holds only its reservation; this
           is the interleaving the paper's races live in, so make it a
           first-class scheduling point. *)
        Dst.point Dst.Hoh_handoff;
        loop ()
  in
  loop ()

let apply ~rr ?site ?max_attempts ?read_phase ?window ?middle step =
  fst (run ~rr ?site ?max_attempts ?read_phase ?window ?middle step)

let apply_stamped ~rr ?site ?max_attempts ?read_phase ?window ?middle step =
  run ~rr ?site ?max_attempts ?read_phase ?window ?middle step
