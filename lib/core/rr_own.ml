(** Shared core of RR-XO (exclusive ownership) and RR-SO (shared
    ownership) — the paper's Listing 3 generalized to [A] ownership arrays.

    An array of thread ids maps each hash bucket to the thread that most
    recently reserved a reference hashing there; [Revoke] is a single
    constant-time write of [-1]. The price is relaxation: a [Get] finds the
    reservation gone if {e any} other thread reserved a colliding reference
    (or, with one array, the same reference) in the meantime — a spurious
    drop that costs the victim a restart but never correctness. The
    reserved reference itself lives in a per-thread tvar ([R_t]), which
    rolls back with the enclosing transaction, mirroring GCC TM's
    instrumentation of thread-local writes. *)

type 'r t = {
  hash : 'r -> int;
  equal : 'r -> 'r -> bool;
  k : int;
  ways : int;
  buckets : int;
  own : int Tm.tvar array array;  (** [ways][buckets] thread ids; -1 empty *)
  rt : 'r option Tm.tvar array array;  (** [threads][K] *)
}

let create_t ~ways ~config ~hash ~equal =
  Rr_config.validate config;
  if ways < 1 then invalid_arg "Rr_own: ways < 1";
  let k = config.Rr_config.slots_per_thread in
  {
    hash;
    equal;
    k;
    ways;
    buckets = config.Rr_config.buckets;
    own =
      Array.init ways (fun _ ->
          Array.init config.Rr_config.buckets (fun _ -> Tm.tvar (-1)));
    rt =
      Array.init Tm.Thread.max_threads (fun _ ->
          Array.init k (fun _ -> Tm.tvar None));
  }

let register _t _txn = ()
let index t r = (t.hash r land max_int) mod t.buckets
let way_of t txn = Tm.thread_id txn mod t.ways
let slots t txn = t.rt.(Tm.thread_id txn)

let find_slot t txn cells pred =
  let rec go i =
    if i >= t.k then None
    else
      let c = cells.(i) in
      if pred (Tm.read txn c) then Some c else go (i + 1)
  in
  go 0

let holding t txn cells r =
  find_slot t txn cells (function Some r' -> t.equal r' r | None -> false)

let reserve t txn r =
  let cells = slots t txn in
  let publish () =
    (* A blind write: Reserve never reads OWN (Listing 3), so two threads
       reserving colliding references conflict only at commit. *)
    Tm.write txn t.own.(way_of t txn).(index t r) (Tm.thread_id txn)
  in
  match holding t txn cells r with
  | Some _ -> publish ()
  | None -> (
      match find_slot t txn cells (fun v -> v = None) with
      | None -> invalid_arg "Rr_own.reserve: reservation set full"
      | Some c ->
          Tm.write txn c (Some r);
          publish ())

let release t txn r =
  let cells = slots t txn in
  match holding t txn cells r with
  | Some c -> Tm.write txn c None
  | None -> ()

let release_all t txn =
  Array.iter
    (fun c -> if Tm.read txn c <> None then Tm.write txn c None)
    (slots t txn)

let get t txn r =
  let cells = slots t txn in
  match holding t txn cells r with
  | None -> None
  | Some _ ->
      if Tm.read txn t.own.(way_of t txn).(index t r) = Tm.thread_id txn then
        Some r
      else None

let revoke t txn r =
  let i = index t r in
  for way = 0 to t.ways - 1 do
    Dst.point Dst.Rr_revoke_step;
    Tm.write txn t.own.(way).(i) (-1)
  done
