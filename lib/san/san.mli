(** TxSan: a runtime transactional sanitizer for the TM / RR / reclamation
    protocol stack, in the spirit of TSan/ASan.

    TxSan keeps shadow state per tvar and per mempool slot (last committed
    writer, version-lock holder, reservation holders, freed-at timestamp and
    site, allocation generation) and checks every hooked event against the
    hand-over-hand discipline the paper assumes. The hooks live in [Tm]
    (read / write / lock / commit / abort / serial), the six RR
    implementations (reserve / check / revoke, via the [Rr_intf.instantiate]
    funnel), [Mempool] (alloc / free), [Reclaim.Hazard] / [Reclaim.Epoch]
    (protect / retire / enter / leave), and the [Hoh] window engine
    (hand-off / finish).

    Like [Dst], the sanitizer costs one relaxed bool load per hook when
    disabled — the hooks follow the exact [if !on then slow_path] pattern of
    the DST yield points and share their overhead budget. When enabled, all
    shadow updates run under one global mutex: TxSan trades throughput for
    precision, which is measured and recorded by [bench_scaling]'s [san]
    probe.

    Checks that fire inside a transaction are made {e abort-aware}: rules
    that a doomed-but-not-yet-aborted transaction could trip spuriously
    (reserving a node that was freed under the transaction's snapshot) are
    buffered with the transaction's RR protocol events and only delivered if
    the transaction commits; an abort discards them together with the
    buffered reservations. Rules that are provably impossible in a clean
    execution (validated read of a slot freed before the snapshot, carried
    pointer dereferenced before any RR check) are delivered eagerly at the
    faulting access. *)

type rule =
  | Use_after_free
      (** TM or raw access to a freed slot; a reservation committed against
          a snapshot in which the node was freed or recycled. *)
  | Unchecked_carry
      (** Window-protocol violation: a pointer carried across a hand-off was
          dereferenced in the new window without a successful RR check (or a
          skiplist hint was dereferenced without revalidation). *)
  | Reservation_leak
      (** A thread finished a window sequence, or exited the run, with live
          reservations / hazard publications / epoch announcements. *)
  | Double_revoke
      (** Double revoke, revoke-after-free, double retire, retire-after-free
          — reclamation ordering violations. *)
  | Lock_leak  (** A version lock still held after commit or abort. *)
  | Non_txn_access
      (** Non-transactional write to a tvar while a transaction holds its
          version lock. *)
  | Stale_read
      (** A transactional read validated against a snapshot that straddles
          an in-flight serial (irrevocable) writer — the serial-fallback
          publication race of DESIGN.md bug #1. *)
  | Stale_cache_hit
      (** A service hot-cache hit returned a value older than the shard's
          last committed write stamp — a write committed without bumping
          the shard's invalidation epoch (DESIGN.md bug #5). *)

val all_rules : rule list
val rule_id : rule -> string
(** Stable slug: ["use-after-free"], ["unchecked-carry"],
    ["reservation-leak"], ["double-revoke"], ["lock-leak"],
    ["non-txn-access"], ["stale-read"], ["stale-cache-hit"]. *)

type event = {
  what : string;  (** "alloc" / "free" / "reserve" / "revoke" / ... *)
  thread : int;
  site : string;  (** PR-1 telemetry site label of the acting transaction *)
  stamp : int;  (** global-clock sample when the event was recorded *)
}

type report = {
  rule : rule;
  thread : int;  (** thread that tripped the rule *)
  site : string;  (** site label of the faulting access *)
  subject : string;  (** "node #k" / "tvar #u (node #k)" / "tvars #..." *)
  detail : string;
  history : event list;  (** shadow history of the offending slot, oldest first *)
}

exception Violation of report

val pp_report : Format.formatter -> report -> unit
val report_to_string : report -> string

(** How violations are delivered. [Raise] (the default) raises {!Violation}
    at the faulting access — right for DST replays and unit tests. [Count]
    only increments the per-rule counters — right for parallel benchmark
    runs, where the shadow race windows of a multi-domain execution could
    otherwise turn a nanosecond-level ambiguity into a crash. *)
type mode = Raise | Count

val set_enabled : ?mode:mode -> bool -> unit
(** Turn the sanitizer on or off. Enabling registers a ["san"] gauge group
    with [Telemetry] when telemetry is active. Does not clear shadow state;
    call {!reset} for a fresh run. *)

val enabled : unit -> bool
(** One relaxed bool load; hook call sites that must materialize arguments
    (tvar-id lists, site strings) guard on this before paying for them. *)

val reset : unit -> unit
(** Drop all shadow state and zero the violation counters. *)

val violations : unit -> (string * int) list
(** Per-rule violation counts, in {!all_rules} order, including zeros. *)

val total_violations : unit -> int
val last_report : unit -> report option

(** {2 Identity}

    Slot identities are dense ints; every pool-like component (mempool,
    hazard domain, epoch domain) draws a distinct group id so that per-pool
    node ids from different pools never collide in the shadow tables. *)

val fresh_group : unit -> int
val node_key : group:int -> node:int -> int
(** [node_key] packs [(group, node)] into one int ([node] in the low 21
    bits). Negative [node] (sentinels) still yields a usable key; sentinel
    slots are never allocated from a pool, so they have no shadow entry and
    every check treats them as benign. *)

(** {2 TM hooks} *)

val tm_read : tid:int -> site:string -> rv:int -> int -> unit
(** Validated transactional read of tvar [uid] under snapshot [rv]. *)

val tm_write : tid:int -> site:string -> rv:int -> int -> unit
(** Buffered transactional write to tvar [uid]. *)

val tm_serial_write : tid:int -> site:string -> wv:int -> int -> unit
(** In-place write by the serial (irrevocable) fallback. *)

val tm_lock : tid:int -> int -> unit
(** Version lock of tvar [uid] acquired during commit. *)

val tm_unlock : tid:int -> site:string -> wv:int -> int -> unit
(** Version lock of tvar [uid] released; [wv >= 0] is the publishing commit
    version, [wv = -1] an abort-path release. *)

val middle_acquire : tid:int -> unit
(** Middle-path (per-structure) lock acquired. An acquire without a
    matching {!middle_release} before {!thread_exit} is a lock leak. *)

val middle_release : tid:int -> site:string -> unit
(** Middle-path lock released; a release without a matching acquire is
    itself reported under the lock-leak rule. *)

val tm_commit : tid:int -> site:string -> rv:int -> now:int -> unit
(** Transaction committed: checks lock leaks, applies the buffered RR
    protocol events, delivers buffered violations. [now] is the commit
    version for writers and a fresh clock sample for read-only commits. *)

val tm_abort : tid:int -> unit
(** Clean abort ([Tm.Abort]): discards buffered events, checks lock leaks. *)

val tm_abandon : tid:int -> unit
(** Abnormal exit (user exception, DST [Killed]): discards buffered events
    and lock shadow without checking. *)

val tm_serial_begin : tid:int -> wv:int -> unit
val tm_serial_end : tid:int -> unit

val nontxn_read : int -> unit
(** [Tm.peek] of tvar [uid] (lock-safe by construction, so only checked
    against use-after-free). *)

val nontxn_write : int -> unit
(** [Tm.poke] of tvar [uid]. *)

val exempt_begin : unit -> unit
val exempt_end : unit -> unit
(** Bracket sanctioned raw accesses (pool poisoning, node re-init after
    alloc) so {!nontxn_read}/{!nontxn_write} skip them. Per logical
    thread. *)

(** {2 Mempool hooks} *)

val mp_alloc :
  thread:int ->
  node:int ->
  tvars:int list ->
  probes:int list ->
  stamp:int ->
  unit
(** Slot (re)allocated. [tvars] are the node's payload tvar uids (they map
    back to the slot in the shadow tables); [probes] are the subset that
    serve as validity flags ([deleted]): the discipline sanctions reading a
    probe on a possibly-freed pointer — poison makes the read observe the
    deletion — so probe reads are exempt from the eager read-UAF rule. *)

val mp_free :
  thread:int ->
  site:string ->
  node:int ->
  stamp:int ->
  unit

val retire : thread:int -> site:string -> node:int -> unit
(** Node handed to a deferred reclaimer (hazard or epoch). *)

(** {2 RR / window hooks} *)

val rr_reserve : tid:int -> node:int -> unit
val rr_release : tid:int -> node:int -> unit
val rr_release_all : tid:int -> unit
val rr_check_begin : tid:int -> unit
val rr_check_end : tid:int -> site:string -> node:int -> ok:bool -> unit
val rr_revoke : tid:int -> site:string -> node:int -> unit

val hint_note : tid:int -> node:int -> unit
(** A traversal recorded [node] in a carried hint array (skiplist [preds]);
    buffered and stamped with the slot generation at commit. *)

val hint_use : tid:int -> site:string -> node:int -> revalidated:bool -> unit
(** A later window dereferenced a recorded hint. [revalidated] says the
    caller is about to re-check the hint's key/level invariants
    transactionally; an unrevalidated use of a recycled hint is an
    {!Unchecked_carry} violation (DESIGN.md bug #3). *)

val window_handoff : tid:int -> unit
(** The window engine committed a hand-off: the last applied reservation
    becomes the carried pointer, unchecked until the next RR check. *)

val window_finish : tid:int -> unit
(** The window engine finished an operation: the applied reservation set
    must be empty. *)

val thread_exit : tid:int -> unit
(** Thread unregistered: live reservations / hazard publications / epoch
    announcements are reservation leaks. Never raises (it runs in
    finalizers); leaks are counted and recorded in {!last_report}. *)

(** {2 Reclaim hooks} *)

val hp_protect : group:int -> thread:int -> slot:int -> node:int -> unit
val hp_clear : group:int -> thread:int -> slot:int -> unit
val ep_enter : thread:int -> unit
val ep_leave : thread:int -> unit

(** {2 Service hot-cache hooks} *)

val cache_hit : thread:int -> shard:int -> stamp:int -> last_write:int -> unit
(** A hot-cache hit is about to serve the cached reply committed at
    [stamp]; [last_write] is the shard's last committed write stamp as
    published by the invalidation protocol. [stamp < last_write] means an
    invalidation was missed and the hit is stale ({!Stale_cache_hit}).
    Delivered eagerly — cache hits happen outside any transaction. *)
