type rule =
  | Use_after_free
  | Unchecked_carry
  | Reservation_leak
  | Double_revoke
  | Lock_leak
  | Non_txn_access
  | Stale_read
  | Stale_cache_hit

let all_rules =
  [
    Use_after_free;
    Unchecked_carry;
    Reservation_leak;
    Double_revoke;
    Lock_leak;
    Non_txn_access;
    Stale_read;
    Stale_cache_hit;
  ]

let rule_id = function
  | Use_after_free -> "use-after-free"
  | Unchecked_carry -> "unchecked-carry"
  | Reservation_leak -> "reservation-leak"
  | Double_revoke -> "double-revoke"
  | Lock_leak -> "lock-leak"
  | Non_txn_access -> "non-txn-access"
  | Stale_read -> "stale-read"
  | Stale_cache_hit -> "stale-cache-hit"

let rule_index = function
  | Use_after_free -> 0
  | Unchecked_carry -> 1
  | Reservation_leak -> 2
  | Double_revoke -> 3
  | Lock_leak -> 4
  | Non_txn_access -> 5
  | Stale_read -> 6
  | Stale_cache_hit -> 7

type event = { what : string; thread : int; site : string; stamp : int }

type report = {
  rule : rule;
  thread : int;
  site : string;
  subject : string;
  detail : string;
  history : event list;
}

exception Violation of report

let pp_report ppf r =
  Format.fprintf ppf "@[<v 2>TxSan: [%s] %s@ thread %d at %s: %s" (rule_id r.rule)
    r.subject r.thread r.site r.detail;
  List.iter
    (fun e ->
      Format.fprintf ppf "@ | %-12s thread %d at %-24s @@%d" e.what e.thread
        e.site e.stamp)
    r.history;
  Format.fprintf ppf "@]"

let report_to_string r = Format.asprintf "%a" pp_report r

let () =
  Printexc.register_printer (function
    | Violation r -> Some (report_to_string r)
    | _ -> None)

type mode = Raise | Count

(* One relaxed bool load per hook when off — the DST yield-point pattern. *)
let on = ref false
let delivery = ref Raise
let enabled () = !on

(* ------------------------------------------------------------------ *)
(* Shadow state. All of it lives behind [m]: TxSan-on runs serialize   *)
(* their shadow updates, which is the measured (and documented) cost.  *)
(* ------------------------------------------------------------------ *)

let m = Mutex.create ()

type tvar_shadow = {
  uid : int;
  mutable owner : int; (* slot key, or min_int when unknown *)
  mutable probe : bool; (* validity flag: freed-slot reads are sanctioned *)
  mutable locked_by : int; (* committing thread, or -1 *)
  mutable last_writer : int;
  mutable last_wv : int;
}

type slot_shadow = {
  key : int;
  mutable generation : int;
  mutable live : bool;
  mutable alloc_stamp : int;
  mutable freed_stamp : int;
  mutable free_site : string;
  mutable free_thread : int;
  mutable retired : bool;
  mutable revoked : bool;
  mutable history : event list; (* newest first, capped *)
}

type pending =
  | P_reserve of int
  | P_release of int
  | P_release_all
  | P_revoke of int * string
  | P_hint of int
  | P_viol of report (* delivered on commit, discarded on abort *)

type thread_shadow = {
  mutable pending : pending list; (* newest first *)
  mutable reserved : int list; (* applied (committed) reservation set *)
  mutable last_reserved : int;
  mutable carry : int; (* node key carried across the last hand-off *)
  mutable carry_gen : int;
  mutable carry_checked : bool;
  mutable in_check : bool;
  mutable locks : int list; (* tvar uids locked by the in-flight commit *)
  mutable middle : int; (* middle-path locks currently held (0 or 1) *)
  mutable hints : (int * int) list; (* (node key, generation at note) *)
  mutable epochs : int; (* live epoch announcements *)
  mutable hp : ((int * int) * int) list; (* ((group, slot), node) *)
}

let fresh_thread () =
  {
    pending = [];
    reserved = [];
    last_reserved = min_int;
    carry = min_int;
    carry_gen = -1;
    carry_checked = false;
    in_check = false;
    locks = [];
    middle = 0;
    hints = [];
    epochs = 0;
    hp = [];
  }

let tvars : (int, tvar_shadow) Hashtbl.t = Hashtbl.create 1024
let slots : (int, slot_shadow) Hashtbl.t = Hashtbl.create 256
let threads = Array.init Telemetry.max_threads (fun _ -> fresh_thread ())

(* In-flight serial (irrevocable) writer: [(wv lsl 8) lor tid], or -1. *)
let serial_word = Atomic.make (-1)
let counters = Array.init (List.length all_rules) (fun _ -> Atomic.make 0)
let last = Atomic.make None
let group_ctr = Atomic.make 0
let fresh_group () = Atomic.fetch_and_add group_ctr 1
let node_key ~group ~node = (group lsl 21) lor (node land 0x1f_ffff)

let reset () =
  Mutex.lock m;
  Hashtbl.reset tvars;
  Hashtbl.reset slots;
  Array.iteri (fun i _ -> threads.(i) <- fresh_thread ()) threads;
  Atomic.set serial_word (-1);
  Array.iter (fun c -> Atomic.set c 0) counters;
  Atomic.set last None;
  Mutex.unlock m

let violations () =
  List.map
    (fun r -> (rule_id r, Atomic.get counters.(rule_index r)))
    all_rules

let total_violations () =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 counters

let last_report () = Atomic.get last

(* The sanitizer is a singleton, so ask the registry instead of keeping a
   local flag: a local flag would go stale when a benchmark driver calls
   [Gauges.clear] between measurement windows. *)
let register_gauges () =
  if
    Telemetry.enabled ()
    && not (Telemetry.Gauges.registered ~group:"san" ~name:"violations")
  then
    Telemetry.Gauges.register ~group:"san" ~name:"violations" (fun () ->
        List.map (fun (id, n) -> (id, float_of_int n)) (violations ()))

let set_enabled ?(mode = Raise) flag =
  delivery := mode;
  if flag then register_gauges ();
  on := flag

(* ------------------------------------------------------------------ *)
(* Internals                                                           *)
(* ------------------------------------------------------------------ *)

let thr tid =
  if tid >= 0 && tid < Array.length threads then threads.(tid)
  else threads.(0)

let find_tvar uid = Hashtbl.find_opt tvars uid

let tvar_of uid =
  match Hashtbl.find_opt tvars uid with
  | Some tv -> tv
  | None ->
      let tv =
        {
          uid;
          owner = min_int;
          probe = false;
          locked_by = -1;
          last_writer = -1;
          last_wv = -1;
        }
      in
      Hashtbl.add tvars uid tv;
      tv

let find_slot key = if key = min_int then None else Hashtbl.find_opt slots key

let slot_of key =
  match Hashtbl.find_opt slots key with
  | Some s -> s
  | None ->
      let s =
        {
          key;
          generation = 0;
          live = false;
          alloc_stamp = -1;
          freed_stamp = -1;
          free_site = "?";
          free_thread = -1;
          retired = false;
          revoked = false;
          history = [];
        }
      in
      Hashtbl.add slots key s;
      s

let push_ev s e =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  s.history <- e :: take 11 s.history

let slot_history key =
  match find_slot key with Some s -> List.rev s.history | None -> []

let node_subject key = Printf.sprintf "node #%d" key

let mk rule ~tid ~site ~subject ~detail ~key =
  { rule; thread = tid; site; subject; detail; history = slot_history key }

(* Counting happens under no lock (atomics); raising happens after the
   shadow mutex is released so a handler can re-enter TxSan safely. *)
let deliver_all reps =
  List.iter
    (fun r ->
      Atomic.incr counters.(rule_index r.rule);
      Atomic.set last (Some r))
    reps;
  match reps with
  | r :: _ when !delivery = Raise -> raise (Violation r)
  | _ -> ()

let guarded f =
  Mutex.lock m;
  let reps = try f () with e -> Mutex.unlock m; raise e in
  Mutex.unlock m;
  deliver_all reps

let quiet f =
  Mutex.lock m;
  let reps = try f () with e -> Mutex.unlock m; raise e in
  Mutex.unlock m;
  List.iter
    (fun r ->
      Atomic.incr counters.(rule_index r.rule);
      Atomic.set last (Some r))
    reps

let remove_key k l = List.filter (fun x -> x <> k) l

(* ------------------------------------------------------------------ *)
(* TM hooks                                                            *)
(* ------------------------------------------------------------------ *)

let tm_read_slow ~tid ~site ~rv uid =
  guarded (fun () ->
      let reps = ref [] in
      (match find_tvar uid with
      | None -> ()
      | Some tv -> (
          match find_slot tv.owner with
          | Some s when (not s.live) && s.freed_stamp <= rv && not tv.probe ->
              (* A validated read of a slot freed before the snapshot can
                 only be reached through a stale pointer: the poison poke
                 bumped the version past [freed_stamp], so any path that
                 read the linking pointers afterwards would have aborted.
                 Probe tvars (the node's validity flag) are exempt: the
                 protocol sanctions checking [deleted] on a possibly-freed
                 pointer — poison forces the read to observe the deletion,
                 and the caller discards the pointer. *)
              reps :=
                mk Use_after_free ~tid ~site
                  ~subject:(Printf.sprintf "tvar #%d (node #%d)" uid tv.owner)
                  ~detail:
                    (Printf.sprintf
                       "read of freed slot (freed by thread %d at %s, @@%d; \
                        snapshot rv=%d)"
                       s.free_thread s.free_site s.freed_stamp rv)
                  ~key:tv.owner
                :: !reps
          | Some s when s.live ->
              let th = thr tid in
              if th.carry = s.key && (not th.carry_checked) && not th.in_check
              then
                reps :=
                  mk Unchecked_carry ~tid ~site
                    ~subject:
                      (Printf.sprintf "tvar #%d (node #%d)" uid tv.owner)
                    ~detail:
                      "carried pointer dereferenced in a new window before \
                       any successful RR check"
                    ~key:tv.owner
                  :: !reps
          | _ -> ()));
      let sw = Atomic.get serial_word in
      if sw >= 0 then begin
        let stid = sw land 0xff and swv = sw lsr 8 in
        if stid <> tid && swv <= rv then
          reps :=
            mk Stale_read ~tid ~site
              ~subject:(Printf.sprintf "tvar #%d" uid)
              ~detail:
                (Printf.sprintf
                   "snapshot rv=%d straddles in-flight serial writer (thread \
                    %d, wv=%d): serial stores may be half-visible"
                   rv stid swv)
              ~key:min_int
            :: !reps
      end;
      List.rev !reps)

let[@inline] tm_read ~tid ~site ~rv uid =
  if !on then tm_read_slow ~tid ~site ~rv uid

let tm_write_slow ~tid ~site ~rv uid =
  guarded (fun () ->
      match find_tvar uid with
      | None -> []
      | Some tv -> (
          match find_slot tv.owner with
          | Some s when (not s.live) && s.freed_stamp <= rv ->
              [
                mk Use_after_free ~tid ~site
                  ~subject:(Printf.sprintf "tvar #%d (node #%d)" uid tv.owner)
                  ~detail:
                    (Printf.sprintf
                       "write to freed slot (freed by thread %d at %s, @@%d)"
                       s.free_thread s.free_site s.freed_stamp)
                  ~key:tv.owner;
              ]
          | Some s when s.live ->
              let th = thr tid in
              if th.carry = s.key && (not th.carry_checked) && not th.in_check
              then
                [
                  mk Unchecked_carry ~tid ~site
                    ~subject:
                      (Printf.sprintf "tvar #%d (node #%d)" uid tv.owner)
                    ~detail:
                      "carried pointer written in a new window before any \
                       successful RR check"
                    ~key:tv.owner;
                ]
              else []
          | _ -> []))

let[@inline] tm_write ~tid ~site ~rv uid =
  if !on then tm_write_slow ~tid ~site ~rv uid

let tm_serial_write_slow ~tid ~site ~wv uid =
  guarded (fun () ->
      match find_tvar uid with
      | None -> []
      | Some tv -> (
          tv.last_writer <- tid;
          tv.last_wv <- wv;
          match find_slot tv.owner with
          | Some s when not s.live ->
              [
                mk Use_after_free ~tid ~site
                  ~subject:(Printf.sprintf "tvar #%d (node #%d)" uid tv.owner)
                  ~detail:
                    (Printf.sprintf
                       "serial write to freed slot (freed by thread %d at %s, \
                        @@%d)"
                       s.free_thread s.free_site s.freed_stamp)
                  ~key:tv.owner;
              ]
          | _ -> []))

let[@inline] tm_serial_write ~tid ~site ~wv uid =
  if !on then tm_serial_write_slow ~tid ~site ~wv uid

let tm_lock_slow ~tid uid =
  guarded (fun () ->
      let tv = tvar_of uid in
      tv.locked_by <- tid;
      let th = thr tid in
      th.locks <- uid :: th.locks;
      [])

let[@inline] tm_lock ~tid uid = if !on then tm_lock_slow ~tid uid

let tm_unlock_slow ~tid ~site ~wv uid =
  guarded (fun () ->
      (match find_tvar uid with
      | Some tv ->
          tv.locked_by <- -1;
          if wv >= 0 then begin
            tv.last_writer <- tid;
            tv.last_wv <- wv;
            match find_slot tv.owner with
            | Some s ->
                push_ev s { what = "commit-write"; thread = tid; site; stamp = wv }
            | None -> ()
          end
      | None -> ());
      let th = thr tid in
      let rec drop = function
        | [] -> []
        | x :: tl -> if x = uid then tl else x :: drop tl
      in
      th.locks <- drop th.locks;
      [])

let[@inline] tm_unlock ~tid ~site ~wv uid =
  if !on then tm_unlock_slow ~tid ~site ~wv uid

let middle_acquire_slow ~tid =
  guarded (fun () ->
      let th = thr tid in
      th.middle <- th.middle + 1;
      [])

let[@inline] middle_acquire ~tid = if !on then middle_acquire_slow ~tid

let middle_release_slow ~tid ~site =
  guarded (fun () ->
      let th = thr tid in
      if th.middle <= 0 then
        [
          mk Lock_leak ~tid ~site ~subject:"middle lock"
            ~detail:"middle-path lock released without a matching acquire"
            ~key:min_int;
        ]
      else begin
        th.middle <- th.middle - 1;
        []
      end)

let[@inline] middle_release ~tid ~site =
  if !on then middle_release_slow ~tid ~site

let lock_leak_report ~tid ~site locks =
  mk Lock_leak ~tid ~site
    ~subject:
      (Printf.sprintf "tvars [%s]"
         (String.concat "; " (List.map string_of_int locks)))
    ~detail:"version locks still held after commit/abort" ~key:min_int

let apply_pending th ~tid ~site ~rv ~now reps =
  List.iter
    (fun p ->
      match p with
      | P_reserve k ->
          (match find_slot k with
          | Some s when (not s.live) && s.freed_stamp > rv && s.freed_stamp <= now
            ->
              reps :=
                mk Use_after_free ~tid ~site ~subject:(node_subject k)
                  ~detail:
                    (Printf.sprintf
                       "reservation committed on a node freed under the \
                        transaction (rv=%d, freed @@%d by thread %d at %s)"
                       rv s.freed_stamp s.free_thread s.free_site)
                  ~key:k
                :: !reps
          | Some s when s.live && s.alloc_stamp > rv && s.alloc_stamp <= now ->
              reps :=
                mk Use_after_free ~tid ~site ~subject:(node_subject k)
                  ~detail:
                    (Printf.sprintf
                       "reservation committed on a node freed and recycled \
                        under the transaction (rv=%d, realloc @@%d; last free \
                        by thread %d at %s @@%d)"
                       rv s.alloc_stamp s.free_thread s.free_site
                       s.freed_stamp)
                  ~key:k
                :: !reps
          | _ -> ());
          if not (List.mem k th.reserved) then th.reserved <- k :: th.reserved;
          th.last_reserved <- k;
          (match find_slot k with
          | Some s ->
              push_ev s { what = "reserve"; thread = tid; site; stamp = now }
          | None -> ())
      | P_release k -> th.reserved <- remove_key k th.reserved
      | P_release_all -> th.reserved <- []
      | P_revoke (k, rsite) -> (
          match find_slot k with
          | Some s when not s.live ->
              reps :=
                mk Double_revoke ~tid ~site:rsite ~subject:(node_subject k)
                  ~detail:
                    (Printf.sprintf
                       "revoke of a node already freed (by thread %d at %s, \
                        @@%d)"
                       s.free_thread s.free_site s.freed_stamp)
                  ~key:k
                :: !reps
          | Some s when s.revoked ->
              reps :=
                mk Double_revoke ~tid ~site:rsite ~subject:(node_subject k)
                  ~detail:"node revoked twice without an intervening realloc"
                  ~key:k
                :: !reps
          | Some s ->
              s.revoked <- true;
              push_ev s { what = "revoke"; thread = tid; site = rsite; stamp = now };
              (* Revocation is what makes reservations precise: it cancels
                 every thread's reservation of the node before the free. *)
              Array.iter
                (fun t' -> t'.reserved <- remove_key k t'.reserved)
                threads
          | None -> ())
      | P_hint k -> (
          match find_slot k with
          | Some s ->
              th.hints <-
                (k, s.generation)
                :: List.filteri
                     (fun i (k', _) -> i < 31 && k' <> k)
                     th.hints
          | None -> ())
      | P_viol r -> reps := r :: !reps)
    (List.rev th.pending);
  th.pending <- []

let tm_commit_slow ~tid ~site ~rv ~now =
  guarded (fun () ->
      let th = thr tid in
      let reps = ref [] in
      if th.locks <> [] then begin
        reps := lock_leak_report ~tid ~site th.locks :: !reps;
        List.iter
          (fun uid ->
            match find_tvar uid with
            | Some tv -> tv.locked_by <- -1
            | None -> ())
          th.locks;
        th.locks <- []
      end;
      apply_pending th ~tid ~site ~rv ~now reps;
      List.rev !reps)

let[@inline] tm_commit ~tid ~site ~rv ~now =
  if !on then tm_commit_slow ~tid ~site ~rv ~now

let tm_abort_slow ~tid =
  guarded (fun () ->
      let th = thr tid in
      th.pending <- [];
      th.in_check <- false;
      if th.locks <> [] then begin
        let r = lock_leak_report ~tid ~site:"?" th.locks in
        List.iter
          (fun uid ->
            match find_tvar uid with
            | Some tv -> tv.locked_by <- -1
            | None -> ())
          th.locks;
        th.locks <- [];
        [ r ]
      end
      else [])

let[@inline] tm_abort ~tid = if !on then tm_abort_slow ~tid

let tm_abandon_slow ~tid =
  quiet (fun () ->
      let th = thr tid in
      th.pending <- [];
      th.in_check <- false;
      List.iter
        (fun uid ->
          match find_tvar uid with
          | Some tv -> tv.locked_by <- -1
          | None -> ())
        th.locks;
      th.locks <- [];
      [])

let[@inline] tm_abandon ~tid = if !on then tm_abandon_slow ~tid

let[@inline] tm_serial_begin ~tid ~wv =
  if !on then Atomic.set serial_word ((wv lsl 8) lor (tid land 0xff))

let[@inline] tm_serial_end ~tid:_ = if !on then Atomic.set serial_word (-1)

let nontxn_key = Dst.Tls.new_key (fun () -> ref 0)
let[@inline] exempt_begin () = if !on then incr (Dst.Tls.get nontxn_key)
let[@inline] exempt_end () = if !on then decr (Dst.Tls.get nontxn_key)

let nontxn_read_slow uid =
  if !(Dst.Tls.get nontxn_key) > 0 then ()
  else
    guarded (fun () ->
        match find_tvar uid with
        | Some tv -> (
            match find_slot tv.owner with
            | Some s when not s.live ->
                [
                  mk Use_after_free ~tid:(-1) ~site:"(non-transactional)"
                    ~subject:
                      (Printf.sprintf "tvar #%d (node #%d)" uid tv.owner)
                    ~detail:
                      (Printf.sprintf
                         "raw peek of freed slot (freed by thread %d at %s, \
                          @@%d)"
                         s.free_thread s.free_site s.freed_stamp)
                    ~key:tv.owner;
                ]
            | _ -> [])
        | None -> [])

let[@inline] nontxn_read uid = if !on then nontxn_read_slow uid

let nontxn_write_slow uid =
  if !(Dst.Tls.get nontxn_key) > 0 then ()
  else
    guarded (fun () ->
        match find_tvar uid with
        | Some tv ->
            let locked =
              if tv.locked_by >= 0 then
                [
                  mk Non_txn_access ~tid:(-1) ~site:"(non-transactional)"
                    ~subject:(Printf.sprintf "tvar #%d" uid)
                    ~detail:
                      (Printf.sprintf
                         "raw poke while thread %d's commit holds the \
                          version lock"
                         tv.locked_by)
                    ~key:tv.owner;
                ]
              else []
            in
            let freed =
              match find_slot tv.owner with
              | Some s when not s.live ->
                  [
                    mk Use_after_free ~tid:(-1) ~site:"(non-transactional)"
                      ~subject:
                        (Printf.sprintf "tvar #%d (node #%d)" uid tv.owner)
                      ~detail:
                        (Printf.sprintf
                           "raw poke of freed slot (freed by thread %d at \
                            %s, @@%d)"
                           s.free_thread s.free_site s.freed_stamp)
                      ~key:tv.owner;
                  ]
              | _ -> []
            in
            locked @ freed
        | None -> [])

let[@inline] nontxn_write uid = if !on then nontxn_write_slow uid

(* ------------------------------------------------------------------ *)
(* Mempool hooks                                                       *)
(* ------------------------------------------------------------------ *)

let mp_alloc_slow ~thread ~node ~tvars:uids ~probes ~stamp =
  guarded (fun () ->
      let s = slot_of node in
      s.generation <- s.generation + 1;
      s.live <- true;
      s.alloc_stamp <- stamp;
      s.retired <- false;
      s.revoked <- false;
      push_ev s { what = "alloc"; thread; site = "(pool)"; stamp };
      List.iter (fun uid -> (tvar_of uid).owner <- node) uids;
      List.iter
        (fun uid ->
          let tv = tvar_of uid in
          tv.owner <- node;
          tv.probe <- true)
        probes;
      [])

let[@inline] mp_alloc ~thread ~node ~tvars ~probes ~stamp =
  if !on then mp_alloc_slow ~thread ~node ~tvars ~probes ~stamp

let mp_free_slow ~thread ~site ~node ~stamp =
  guarded (fun () ->
      let s = slot_of node in
      let holders = ref [] in
      Array.iteri
        (fun i t' -> if List.mem node t'.reserved then holders := i :: !holders)
        threads;
      let reps =
        if !holders <> [] then
          [
            mk Use_after_free ~tid:thread ~site ~subject:(node_subject node)
              ~detail:
                (Printf.sprintf
                   "node freed while threads [%s] still hold unrevoked \
                    reservations on it"
                   (String.concat "; " (List.map string_of_int !holders)))
              ~key:node;
          ]
        else []
      in
      s.live <- false;
      s.freed_stamp <- stamp;
      s.free_site <- site;
      s.free_thread <- thread;
      s.retired <- false;
      push_ev s { what = "free"; thread; site; stamp };
      reps)

let[@inline] mp_free ~thread ~site ~node ~stamp =
  if !on then mp_free_slow ~thread ~site ~node ~stamp

let retire_slow ~thread ~site ~node =
  guarded (fun () ->
      match find_slot node with
      | None -> []
      | Some s ->
          if not s.live then
            [
              mk Double_revoke ~tid:thread ~site ~subject:(node_subject node)
                ~detail:
                  (Printf.sprintf
                     "retire of a node already freed (by thread %d at %s, \
                      @@%d)"
                     s.free_thread s.free_site s.freed_stamp)
                ~key:node;
            ]
          else if s.retired then
            [
              mk Double_revoke ~tid:thread ~site ~subject:(node_subject node)
                ~detail:"node retired twice without an intervening realloc"
                ~key:node;
            ]
          else begin
            s.retired <- true;
            push_ev s { what = "retire"; thread; site; stamp = s.alloc_stamp };
            []
          end)

let[@inline] retire ~thread ~site ~node =
  if !on then retire_slow ~thread ~site ~node

(* ------------------------------------------------------------------ *)
(* RR / window hooks. Protocol events are buffered with the enclosing  *)
(* transaction and applied at commit, so an abort discards them.       *)
(* ------------------------------------------------------------------ *)

let buffer ~tid p =
  Mutex.lock m;
  let th = thr tid in
  th.pending <- p :: th.pending;
  Mutex.unlock m

let[@inline] rr_reserve ~tid ~node = if !on then buffer ~tid (P_reserve node)
let[@inline] rr_release ~tid ~node = if !on then buffer ~tid (P_release node)
let[@inline] rr_release_all ~tid = if !on then buffer ~tid P_release_all

let[@inline] rr_revoke ~tid ~site ~node =
  if !on then buffer ~tid (P_revoke (node, site))

let rr_check_begin_slow ~tid =
  Mutex.lock m;
  (thr tid).in_check <- true;
  Mutex.unlock m

let[@inline] rr_check_begin ~tid = if !on then rr_check_begin_slow ~tid

let rr_check_end_slow ~tid ~site ~node ~ok =
  guarded (fun () ->
      let th = thr tid in
      th.in_check <- false;
      if ok then begin
        if th.carry = node && node <> min_int then begin
          th.carry_checked <- true;
          match find_slot node with
          | Some s when not s.live ->
              th.pending <-
                P_viol
                  (mk Use_after_free ~tid ~site ~subject:(node_subject node)
                     ~detail:
                       (Printf.sprintf
                          "RR check succeeded on a freed node (freed by \
                           thread %d at %s, @@%d)"
                          s.free_thread s.free_site s.freed_stamp)
                     ~key:node)
                :: th.pending
          | Some s when s.generation <> th.carry_gen ->
              th.pending <-
                P_viol
                  (mk Use_after_free ~tid ~site ~subject:(node_subject node)
                     ~detail:
                       (Printf.sprintf
                          "carried reservation target was freed and recycled \
                           across the hand-off (generation %d -> %d; last \
                           free by thread %d at %s @@%d)"
                          th.carry_gen s.generation s.free_thread s.free_site
                          s.freed_stamp)
                     ~key:node)
                :: th.pending
          | _ -> ()
        end
      end
      else if th.carry = node then begin
        (* The check failed: the reservation is gone, the thread restarts
           from the head and is no longer carrying anything. *)
        th.carry <- min_int;
        th.carry_checked <- false
      end;
      [])

let[@inline] rr_check_end ~tid ~site ~node ~ok =
  if !on then rr_check_end_slow ~tid ~site ~node ~ok

let[@inline] hint_note ~tid ~node = if !on then buffer ~tid (P_hint node)

let hint_use_slow ~tid ~site ~node ~revalidated =
  guarded (fun () ->
      let th = thr tid in
      let fresh =
        List.exists (function P_hint k -> k = node | _ -> false) th.pending
      in
      if fresh || revalidated then []
      else
        match (List.assoc_opt node th.hints, find_slot node) with
        | Some g, Some s when (not s.live) || s.generation <> g ->
            [
              mk Unchecked_carry ~tid ~site ~subject:(node_subject node)
                ~detail:
                  (Printf.sprintf
                     "stale traversal hint dereferenced without \
                      revalidation (noted at generation %d, now %s)"
                     g
                     (if s.live then
                        Printf.sprintf "generation %d" s.generation
                      else
                        Printf.sprintf "freed by thread %d at %s @@%d"
                          s.free_thread s.free_site s.freed_stamp))
                ~key:node;
            ]
        | _ -> [])

let[@inline] hint_use ~tid ~site ~node ~revalidated =
  if !on then hint_use_slow ~tid ~site ~node ~revalidated

let window_handoff_slow ~tid =
  Mutex.lock m;
  let th = thr tid in
  th.carry <- th.last_reserved;
  th.carry_checked <- false;
  th.carry_gen <-
    (match find_slot th.carry with Some s -> s.generation | None -> -1);
  Mutex.unlock m

let[@inline] window_handoff ~tid = if !on then window_handoff_slow ~tid

let window_finish_slow ~tid =
  guarded (fun () ->
      let th = thr tid in
      let reps =
        if th.reserved <> [] then
          [
            mk Reservation_leak ~tid ~site:"?"
              ~subject:
                (Printf.sprintf "nodes [%s]"
                   (String.concat "; " (List.map string_of_int th.reserved)))
              ~detail:"operation finished with live reservations" ~key:min_int;
          ]
        else []
      in
      th.reserved <- [];
      th.carry <- min_int;
      th.carry_checked <- false;
      th.last_reserved <- min_int;
      th.hints <- [];
      reps)

let[@inline] window_finish ~tid = if !on then window_finish_slow ~tid

let thread_exit_slow ~tid =
  quiet (fun () ->
      let th = thr tid in
      let leaks = ref [] in
      if th.reserved <> [] then
        leaks :=
          Printf.sprintf "reservations [%s]"
            (String.concat "; " (List.map string_of_int th.reserved))
          :: !leaks;
      if th.hp <> [] then
        leaks :=
          Printf.sprintf "%d hazard publication(s)" (List.length th.hp)
          :: !leaks;
      if th.epochs > 0 then
        leaks :=
          Printf.sprintf "%d epoch announcement(s)" th.epochs :: !leaks;
      let reps =
        if !leaks <> [] then
          [
            mk Reservation_leak ~tid ~site:"(thread exit)"
              ~subject:(Printf.sprintf "thread %d" tid)
              ~detail:
                ("thread exited the run with live " ^ String.concat ", " !leaks)
              ~key:min_int;
          ]
        else []
      in
      let reps =
        if th.middle > 0 then
          mk Lock_leak ~tid ~site:"(thread exit)" ~subject:"middle lock"
            ~detail:"middle-path lock acquired but never released"
            ~key:min_int
          :: reps
        else reps
      in
      threads.(if tid >= 0 && tid < Array.length threads then tid else 0) <-
        fresh_thread ();
      reps)

let[@inline] thread_exit ~tid = if !on then thread_exit_slow ~tid

(* ------------------------------------------------------------------ *)
(* Reclaim hooks                                                       *)
(* ------------------------------------------------------------------ *)

let hp_protect_slow ~group ~thread ~slot ~node =
  Mutex.lock m;
  let th = thr thread in
  th.hp <-
    ((group, slot), node)
    :: List.filter (fun (k, _) -> k <> (group, slot)) th.hp;
  Mutex.unlock m

let[@inline] hp_protect ~group ~thread ~slot ~node =
  if !on then hp_protect_slow ~group ~thread ~slot ~node

let hp_clear_slow ~group ~thread ~slot =
  Mutex.lock m;
  let th = thr thread in
  th.hp <- List.filter (fun (k, _) -> k <> (group, slot)) th.hp;
  Mutex.unlock m

let[@inline] hp_clear ~group ~thread ~slot =
  if !on then hp_clear_slow ~group ~thread ~slot

let ep_enter_slow ~thread =
  Mutex.lock m;
  let th = thr thread in
  th.epochs <- th.epochs + 1;
  Mutex.unlock m

let[@inline] ep_enter ~thread = if !on then ep_enter_slow ~thread

let ep_leave_slow ~thread =
  Mutex.lock m;
  let th = thr thread in
  if th.epochs > 0 then th.epochs <- th.epochs - 1;
  Mutex.unlock m

let[@inline] ep_leave ~thread = if !on then ep_leave_slow ~thread

(* ------------------------------------------------------------------ *)
(* Service hot-cache freshness                                         *)
(* ------------------------------------------------------------------ *)

let cache_hit_slow ~thread ~shard ~stamp ~last_write =
  if stamp < last_write then
    deliver_all
      [
        mk Stale_cache_hit ~tid:thread ~site:"service.hotcache"
          ~subject:(Printf.sprintf "shard #%d" shard)
          ~detail:
            (Printf.sprintf
               "cache hit served stamp %d but the shard's last committed \
                write is stamp %d (missed invalidation)"
               stamp last_write)
          ~key:min_int;
      ]

let[@inline] cache_hit ~thread ~shard ~stamp ~last_write =
  if !on then cache_hit_slow ~thread ~shard ~stamp ~last_write
