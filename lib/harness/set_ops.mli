(** Deprecated record-of-closures view of a {!Store.t}.

    This was the original uniform handle over the set implementations;
    it survives for one release as a thin adapter so out-of-tree callers
    can migrate at their own pace. New code should use {!Store} /
    {!Store_intf.S} directly: typed {!Store_intf.outcome} replies instead
    of decoded bools, an explicit batch entry point, and a telemetry
    [stats] hook. *)

type handle = {
  name : string;
  stamped : bool;
  insert : thread:int -> int -> bool * int;
  remove : thread:int -> int -> bool * int * int;
      (** (result, earliest, stamp): linearizes at [stamp] except for the
          doubly-linked-list strict fast-fail, which may linearize anywhere
          in [(earliest, stamp]] *)
  lookup : thread:int -> int -> bool * int;
  finalize_thread : thread:int -> unit;
  drain : unit -> unit;
  size : unit -> int;
  contents : unit -> int list;
  check : unit -> (unit, string) result;
  pool_live : unit -> int option;
  max_backlog : unit -> int option;
  leaked : unit -> int option;
}
[@@ocaml.deprecated "use Store.t and the Store_intf.S module type instead"]

[@@@ocaml.alert "-deprecated"]
[@@@ocaml.warning "-3"]

val of_store : Store.t -> handle
(** Wrap a store in the legacy record. The only supported way to obtain
    a [handle]; everything else here delegates to it. *)

val of_hoh_list : Structs.Hoh_list.t -> handle
  [@@ocaml.deprecated "use Store.of_hoh_list"]

val of_hoh_dlist : Structs.Hoh_dlist.t -> handle
  [@@ocaml.deprecated "use Store.of_hoh_dlist"]

val of_bst_int : Structs.Hoh_bst_int.t -> handle
  [@@ocaml.deprecated "use Store.of_bst_int"]

val of_bst_ext : Structs.Hoh_bst_ext.t -> handle
  [@@ocaml.deprecated "use Store.of_bst_ext"]

val of_hashset : Structs.Hoh_hashset.t -> handle
  [@@ocaml.deprecated "use Store.of_hashset"]

val of_skiplist : Structs.Hoh_skiplist.t -> handle
  [@@ocaml.deprecated "use Store.of_skiplist"]

val of_harris_list : Lockfree.Harris_list.t -> handle
  [@@ocaml.deprecated "use Store.of_harris_list"]

val of_nm_tree : Lockfree.Nm_tree.t -> handle
  [@@ocaml.deprecated "use Store.of_nm_tree"]
