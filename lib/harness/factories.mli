(** Named constructors for every curve in the paper's figures.

    The unified entry point is {!Spec.v} plus {!make}: a specification
    record names the structure, the concurrency-control/reclamation mode,
    and every tuning knob in one value, so benchmarks and the sharded
    service can build, print, sweep, and ({!Spec.to_json}) persist
    configurations uniformly instead of threading optional-argument
    lists. *)

type factory = { label : string; make : unit -> Store.t }

val rr_kinds : (string * Structs.Mode.kind) list
(** The six reservation implementations, as [Mode.Rr_kind]s. *)

(** A complete description of one benchmark / service configuration. *)
module Spec : sig
  type structure = Slist | Dlist | Bst_int | Bst_ext | Hashset | Skiplist

  type t = {
    structure : structure;
    kind : Structs.Mode.kind;
    window : int option;  (** hand-over-hand window budget *)
    scatter : bool option;  (** scatter window boundaries across threads *)
    adaptive : bool option;
        (** contention-adaptive per-thread window controller
            ({!Rr.Hoh.Window}); [window] is its starting budget *)
    fusion : int option;
        (** window-fusion ceiling: run up to this many consecutive clean
            windows in one transaction ({!Rr.Hoh.Window}; default 1 = off) *)
    middle : bool option;
        (** retry exhausted speculative attempts under a per-structure
            middle-path lock before the serial rung ({!Tm.Middle}) *)
    magazines : bool option;
        (** per-thread magazine caches in front of the pool strategy
            ({!Mempool.create}) *)
    strategy : Mempool.strategy option;
    rr_config : Rr.Config.t option;
    max_attempts : int option;  (** TM attempts before serial fallback *)
    buckets : int option;  (** [Hashset] only *)
    split_unlink : bool option;  (** [Dlist] only *)
    shards : int option;
        (** service layer: number of keyspace shards (default 1) *)
    fuse : bool option;
        (** service layer: fuse same-shard batches into one irrevocable
            transaction (see {!Store_intf.S.batch}) *)
    pool : bool option;
        (** service layer: per-shard worker domains draining bounded
            request queues ({!Service} async submission path) *)
    hotcache : bool option;
        (** service layer: versioned hot-key read cache in front of the
            router, invalidated by per-shard epoch bumps at commit *)
    slo_us : int option;
        (** service layer: p99 lag SLO (microseconds) for admission
            control; low-priority requests are shed with [Overload] when
            the projection exceeds it. Requires [pool]. *)
  }

  val v :
    ?window:int ->
    ?scatter:bool ->
    ?adaptive:bool ->
    ?fusion:int ->
    ?middle:bool ->
    ?magazines:bool ->
    ?strategy:Mempool.strategy ->
    ?rr_config:Rr.Config.t ->
    ?max_attempts:int ->
    ?buckets:int ->
    ?split_unlink:bool ->
    ?shards:int ->
    ?fuse:bool ->
    ?pool:bool ->
    ?hotcache:bool ->
    ?slo_us:int ->
    structure ->
    Structs.Mode.kind ->
    t
  (** [v structure kind] builds a spec with every knob at the structure's
      default.
      @raise Invalid_argument if [buckets] or [split_unlink] is given for a
      structure it does not apply to, [shards < 1], [fusion < 1],
      [slo_us < 1], or [slo_us] is given without [pool]. *)

  val structure_name : structure -> string
  val structure_of_name : string -> structure option

  val kind_of_name : string -> Structs.Mode.kind option
  (** Inverse of {!Structs.Mode.kind_name}: the four fixed modes plus any
      reservation implementation registered in {!Rr.all}. *)

  val label : t -> string
  (** The curve label used in reports: the mode's name, suffixed with
      ["-hash"] / ["-skip"] for the structures the paper plots separately,
      ["+fuseK"] when [fusion = Some k, k > 1], ["+mid"] / ["+mag"] when
      the middle path / magazines are on, ["+pool"] / ["+hotcache"] /
      ["+sloUS"] for the service worker-pool, hot-cache, and admission
      knobs, and ["/xN"] when sharded ([shards > 1]). *)

  val to_json : t -> Telemetry.Json.t
  (** Data form of a spec. The emitted object leads with a derived
      ["label"] field so documents are self-describing; only knobs that
      are [Some _] are emitted. *)

  val of_json : Telemetry.Json.t -> (t, string) result
  (** Inverse of {!to_json}. Applies the {!v} validation rules, and — if a
      ["label"] field is present — rejects documents whose label does not
      match the parsed spec's {!label}. *)
end

val make : Spec.t -> factory
(** Instantiate a specification as a single store. The store is built
    afresh on each [factory.make] call, so one spec can drive repeated
    runs. [shards]/[fuse] are ignored here — they configure the service
    layer, which calls [make] once per shard. *)

val lf_list : [ `Leak | `Hp ] -> factory
val nm_tree : unit -> factory

val best_window : threads:int -> int
(** The paper tunes the window per thread count: larger windows win at low
    thread counts, smaller at high counts (Sec. 5.2). *)
