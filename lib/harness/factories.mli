(** Named constructors for every curve in the paper's figures.

    The unified entry point is {!Spec.v} plus {!make}: a specification
    record names the structure, the concurrency-control/reclamation mode,
    and every tuning knob in one value, so benchmarks can build, print, and
    sweep configurations uniformly instead of threading six parallel
    optional-argument lists. *)

type factory = { label : string; make : unit -> Set_ops.handle }

val rr_kinds : (string * Structs.Mode.kind) list
(** The six reservation implementations, as [Mode.Rr_kind]s. *)

(** A complete description of one benchmark configuration. *)
module Spec : sig
  type structure = Slist | Dlist | Bst_int | Bst_ext | Hashset | Skiplist

  type t = {
    structure : structure;
    kind : Structs.Mode.kind;
    window : int option;  (** hand-over-hand window budget *)
    scatter : bool option;  (** scatter window boundaries across threads *)
    adaptive : bool option;
        (** contention-adaptive per-thread window controller
            ({!Rr.Hoh.Window}); [window] is its starting budget *)
    strategy : Mempool.strategy option;
    rr_config : Rr.Config.t option;
    max_attempts : int option;  (** TM attempts before serial fallback *)
    buckets : int option;  (** [Hashset] only *)
    split_unlink : bool option;  (** [Dlist] only *)
  }

  val v :
    ?window:int ->
    ?scatter:bool ->
    ?adaptive:bool ->
    ?strategy:Mempool.strategy ->
    ?rr_config:Rr.Config.t ->
    ?max_attempts:int ->
    ?buckets:int ->
    ?split_unlink:bool ->
    structure ->
    Structs.Mode.kind ->
    t
  (** [v structure kind] builds a spec with every knob at the structure's
      default.
      @raise Invalid_argument if [buckets] or [split_unlink] is given for a
      structure it does not apply to. *)

  val structure_name : structure -> string

  val label : t -> string
  (** The curve label used in reports: the mode's name, suffixed with
      ["-hash"] / ["-skip"] for the structures the paper plots separately. *)
end

val make : Spec.t -> factory
(** Instantiate a specification. The handle is built afresh on each
    [factory.make] call, so one spec can drive repeated runs. *)

val lf_list : [ `Leak | `Hp ] -> factory
val nm_tree : unit -> factory

val best_window : threads:int -> int
(** The paper tunes the window per thread count: larger windows win at low
    thread counts, smaller at high counts (Sec. 5.2). *)
