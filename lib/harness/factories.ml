type factory = { label : string; make : unit -> Store.t }

let rr_kinds =
  List.map
    (fun (name, m) -> (name, Structs.Mode.Rr_kind m))
    Rr.all

module Spec = struct
  type structure = Slist | Dlist | Bst_int | Bst_ext | Hashset | Skiplist

  type t = {
    structure : structure;
    kind : Structs.Mode.kind;
    window : int option;
    scatter : bool option;
    adaptive : bool option;
    fusion : int option;
    middle : bool option;
    magazines : bool option;
    strategy : Mempool.strategy option;
    rr_config : Rr.Config.t option;
    max_attempts : int option;
    buckets : int option;
    split_unlink : bool option;
    shards : int option;
    fuse : bool option;
    pool : bool option;
    hotcache : bool option;
    slo_us : int option;
  }

  let v ?window ?scatter ?adaptive ?fusion ?middle ?magazines ?strategy
      ?rr_config ?max_attempts ?buckets ?split_unlink ?shards ?fuse ?pool
      ?hotcache ?slo_us structure kind =
    (match buckets with
    | Some _ when structure <> Hashset ->
        invalid_arg "Factories.Spec.v: buckets only applies to Hashset"
    | _ -> ());
    (match split_unlink with
    | Some _ when structure <> Dlist ->
        invalid_arg "Factories.Spec.v: split_unlink only applies to Dlist"
    | _ -> ());
    (match shards with
    | Some n when n < 1 ->
        invalid_arg "Factories.Spec.v: shards must be >= 1"
    | _ -> ());
    (match fusion with
    | Some k when k < 1 ->
        invalid_arg "Factories.Spec.v: fusion must be >= 1"
    | _ -> ());
    (match slo_us with
    | Some us when us < 1 ->
        invalid_arg "Factories.Spec.v: slo_us must be >= 1"
    | Some _ when pool <> Some true ->
        invalid_arg "Factories.Spec.v: slo_us requires pool (admission control rides the worker queues)"
    | _ -> ());
    {
      structure;
      kind;
      window;
      scatter;
      adaptive;
      fusion;
      middle;
      magazines;
      strategy;
      rr_config;
      max_attempts;
      buckets;
      split_unlink;
      shards;
      fuse;
      pool;
      hotcache;
      slo_us;
    }

  let structure_name = function
    | Slist -> "slist"
    | Dlist -> "dlist"
    | Bst_int -> "bst-int"
    | Bst_ext -> "bst-ext"
    | Hashset -> "hashset"
    | Skiplist -> "skiplist"

  let structure_of_name = function
    | "slist" -> Some Slist
    | "dlist" -> Some Dlist
    | "bst-int" -> Some Bst_int
    | "bst-ext" -> Some Bst_ext
    | "hashset" -> Some Hashset
    | "skiplist" -> Some Skiplist
    | _ -> None

  let label t =
    let k = Structs.Mode.kind_name t.kind in
    let base =
      match t.structure with
      | Slist | Dlist | Bst_int | Bst_ext -> k
      | Hashset -> k ^ "-hash"
      | Skiplist -> k ^ "-skip"
    in
    let base =
      match t.fusion with
      | Some k when k > 1 -> Printf.sprintf "%s+fuse%d" base k
      | _ -> base
    in
    let base = if t.middle = Some true then base ^ "+mid" else base in
    let base = if t.magazines = Some true then base ^ "+mag" else base in
    let base = if t.pool = Some true then base ^ "+pool" else base in
    let base = if t.hotcache = Some true then base ^ "+hotcache" else base in
    let base =
      match t.slo_us with
      | Some us -> Printf.sprintf "%s+slo%d" base us
      | None -> base
    in
    match t.shards with
    | None | Some 1 -> base
    | Some n -> Printf.sprintf "%s/x%d" base n

  let kind_of_name name =
    match name with
    | "HTM" -> Some Structs.Mode.Htm
    | "TMHP" -> Some Structs.Mode.Tmhp
    | "REF" -> Some Structs.Mode.Ref
    | "EBR" -> Some Structs.Mode.Ebr
    | _ -> Option.map (fun m -> Structs.Mode.Rr_kind m) (Rr.by_name name)

  let strategy_of_name name =
    let matches s = String.equal (Mempool.strategy_name s) name in
    List.find_opt matches [ Mempool.Size_class; Mempool.Thread_arena ]

  module J = Telemetry.Json

  let to_json t =
    let opt name conv v rest =
      match v with None -> rest | Some x -> (name, conv x) :: rest
    in
    let rr_config_json (c : Rr.Config.t) =
      J.Obj
        [
          ("slots_per_thread", J.Int c.slots_per_thread);
          ("buckets", J.Int c.buckets);
          ("assoc", J.Int c.assoc);
          ("dm_eager_unlink", J.Bool c.dm_eager_unlink);
        ]
    in
    J.Obj
      (("label", J.String (label t))
      :: ("structure", J.String (structure_name t.structure))
      :: ("kind", J.String (Structs.Mode.kind_name t.kind))
      :: (opt "window" (fun i -> J.Int i) t.window
      @@ opt "scatter" (fun b -> J.Bool b) t.scatter
      @@ opt "adaptive" (fun b -> J.Bool b) t.adaptive
      @@ opt "fusion" (fun i -> J.Int i) t.fusion
      @@ opt "middle" (fun b -> J.Bool b) t.middle
      @@ opt "magazines" (fun b -> J.Bool b) t.magazines
      @@ opt "strategy" (fun s -> J.String (Mempool.strategy_name s)) t.strategy
      @@ opt "rr_config" rr_config_json t.rr_config
      @@ opt "max_attempts" (fun i -> J.Int i) t.max_attempts
      @@ opt "buckets" (fun i -> J.Int i) t.buckets
      @@ opt "split_unlink" (fun b -> J.Bool b) t.split_unlink
      @@ opt "shards" (fun i -> J.Int i) t.shards
      @@ opt "fuse" (fun b -> J.Bool b) t.fuse
      @@ opt "pool" (fun b -> J.Bool b) t.pool
      @@ opt "hotcache" (fun b -> J.Bool b) t.hotcache
      @@ opt "slo_us" (fun i -> J.Int i) t.slo_us
      @@ []))

  let of_json json =
    let ( let* ) = Result.bind in
    let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
    let require name conv =
      match J.member name json with
      | None -> fail "Spec.of_json: missing %S" name
      | Some v -> (
          match conv v with
          | Some x -> Ok x
          | None -> fail "Spec.of_json: bad %S" name)
    in
    let optional name conv =
      match J.member name json with
      | None -> Ok None
      | Some v -> (
          match conv v with
          | Some x -> Ok (Some x)
          | None -> fail "Spec.of_json: bad %S" name)
    in
    let rr_config_of v =
      let f name = Option.bind (J.member name v) in
      match
        ( f "slots_per_thread" J.to_int,
          f "buckets" J.to_int,
          f "assoc" J.to_int,
          f "dm_eager_unlink" J.to_bool )
      with
      | Some slots_per_thread, Some buckets, Some assoc, Some dm_eager_unlink
        ->
          Some { Rr.Config.slots_per_thread; buckets; assoc; dm_eager_unlink }
      | _ -> None
    in
    let* structure =
      require "structure" (fun v ->
          Option.bind (J.to_string_opt v) structure_of_name)
    in
    let* kind =
      require "kind" (fun v -> Option.bind (J.to_string_opt v) kind_of_name)
    in
    let* window = optional "window" J.to_int in
    let* scatter = optional "scatter" J.to_bool in
    let* adaptive = optional "adaptive" J.to_bool in
    let* fusion = optional "fusion" J.to_int in
    let* middle = optional "middle" J.to_bool in
    let* magazines = optional "magazines" J.to_bool in
    let* strategy =
      optional "strategy" (fun v ->
          Option.bind (J.to_string_opt v) strategy_of_name)
    in
    let* rr_config = optional "rr_config" rr_config_of in
    let* max_attempts = optional "max_attempts" J.to_int in
    let* buckets = optional "buckets" J.to_int in
    let* split_unlink = optional "split_unlink" J.to_bool in
    let* shards = optional "shards" J.to_int in
    let* fuse = optional "fuse" J.to_bool in
    let* pool = optional "pool" J.to_bool in
    let* hotcache = optional "hotcache" J.to_bool in
    let* slo_us = optional "slo_us" J.to_int in
    let* t =
      match
        v ?window ?scatter ?adaptive ?fusion ?middle ?magazines ?strategy
          ?rr_config ?max_attempts ?buckets ?split_unlink ?shards ?fuse ?pool
          ?hotcache ?slo_us structure kind
      with
      | t -> Ok t
      | exception Invalid_argument m -> Error m
    in
    (* the label is derived, so a mismatch means the document was edited
       inconsistently (or produced by a different Spec version) *)
    match J.member "label" json with
    | None -> Ok t
    | Some l -> (
        match J.to_string_opt l with
        | Some l when String.equal l (label t) -> Ok t
        | Some l -> fail "Spec.of_json: label %S does not match spec %S" l (label t)
        | None -> fail "Spec.of_json: bad \"label\"")
end

let make (s : Spec.t) =
  let { Spec.structure; kind; window; scatter; adaptive; fusion; middle;
        magazines; strategy; rr_config; max_attempts; buckets; split_unlink;
        shards = _; fuse = _; pool = _; hotcache = _; slo_us = _ } = s in
  let build () =
    match structure with
    | Spec.Slist ->
        Store.of_hoh_list
          (Structs.Hoh_list.create ~mode:kind ?window ?scatter ?adaptive
             ?fusion ?middle ?magazines ?strategy ?rr_config ?max_attempts ())
    | Spec.Dlist ->
        Store.of_hoh_dlist
          (Structs.Hoh_dlist.create ~mode:kind ?window ?scatter ?adaptive
             ?fusion ?middle ?magazines ?strategy ?rr_config ?max_attempts
             ?split_unlink ())
    | Spec.Bst_int ->
        Store.of_bst_int
          (Structs.Hoh_bst_int.create ~mode:kind ?window ?scatter ?adaptive
             ?fusion ?middle ?magazines ?strategy ?rr_config ?max_attempts ())
    | Spec.Bst_ext ->
        Store.of_bst_ext
          (Structs.Hoh_bst_ext.create ~mode:kind ?window ?scatter ?adaptive
             ?fusion ?middle ?magazines ?strategy ?rr_config ?max_attempts ())
    | Spec.Hashset ->
        Store.of_hashset
          (Structs.Hoh_hashset.create ~mode:kind ?buckets ?window ?scatter
             ?adaptive ?fusion ?middle ?magazines ?strategy ?rr_config
             ?max_attempts ())
    | Spec.Skiplist ->
        Store.of_skiplist
          (Structs.Hoh_skiplist.create ~mode:kind ?window ?scatter ?adaptive
             ?fusion ?middle ?magazines ?strategy ?rr_config ?max_attempts ())
  in
  { label = Spec.label s; make = build }

let lf_list reclaim =
  {
    label = (match reclaim with `Leak -> "LFLeak" | `Hp -> "LFHP");
    make =
      (fun () -> Store.of_harris_list (Lockfree.Harris_list.create ~reclaim ()));
  }

let nm_tree () =
  {
    label = "LFLeak-NM";
    make = (fun () -> Store.of_nm_tree (Lockfree.Nm_tree.create ()));
  }

let best_window ~threads = if threads <= 4 then 16 else 8
