type factory = { label : string; make : unit -> Set_ops.handle }

let rr_kinds =
  List.map
    (fun (name, m) -> (name, Structs.Mode.Rr_kind m))
    Rr.all

module Spec = struct
  type structure = Slist | Dlist | Bst_int | Bst_ext | Hashset | Skiplist

  type t = {
    structure : structure;
    kind : Structs.Mode.kind;
    window : int option;
    scatter : bool option;
    adaptive : bool option;
    strategy : Mempool.strategy option;
    rr_config : Rr.Config.t option;
    max_attempts : int option;
    buckets : int option;
    split_unlink : bool option;
  }

  let v ?window ?scatter ?adaptive ?strategy ?rr_config ?max_attempts
      ?buckets ?split_unlink structure kind =
    (match buckets with
    | Some _ when structure <> Hashset ->
        invalid_arg "Factories.Spec.v: buckets only applies to Hashset"
    | _ -> ());
    (match split_unlink with
    | Some _ when structure <> Dlist ->
        invalid_arg "Factories.Spec.v: split_unlink only applies to Dlist"
    | _ -> ());
    {
      structure;
      kind;
      window;
      scatter;
      adaptive;
      strategy;
      rr_config;
      max_attempts;
      buckets;
      split_unlink;
    }

  let structure_name = function
    | Slist -> "slist"
    | Dlist -> "dlist"
    | Bst_int -> "bst-int"
    | Bst_ext -> "bst-ext"
    | Hashset -> "hashset"
    | Skiplist -> "skiplist"

  let label t =
    let k = Structs.Mode.kind_name t.kind in
    match t.structure with
    | Slist | Dlist | Bst_int | Bst_ext -> k
    | Hashset -> k ^ "-hash"
    | Skiplist -> k ^ "-skip"
end

let make (s : Spec.t) =
  let { Spec.structure; kind; window; scatter; adaptive; strategy; rr_config;
        max_attempts; buckets; split_unlink } = s in
  let build () =
    match structure with
    | Spec.Slist ->
        Set_ops.of_hoh_list
          (Structs.Hoh_list.create ~mode:kind ?window ?scatter ?adaptive
             ?strategy ?rr_config ?max_attempts ())
    | Spec.Dlist ->
        Set_ops.of_hoh_dlist
          (Structs.Hoh_dlist.create ~mode:kind ?window ?scatter ?adaptive
             ?strategy ?rr_config ?max_attempts ?split_unlink ())
    | Spec.Bst_int ->
        Set_ops.of_bst_int
          (Structs.Hoh_bst_int.create ~mode:kind ?window ?scatter ?adaptive
             ?strategy ?rr_config ?max_attempts ())
    | Spec.Bst_ext ->
        Set_ops.of_bst_ext
          (Structs.Hoh_bst_ext.create ~mode:kind ?window ?scatter ?adaptive
             ?strategy ?rr_config ?max_attempts ())
    | Spec.Hashset ->
        Set_ops.of_hashset
          (Structs.Hoh_hashset.create ~mode:kind ?buckets ?window ?scatter
             ?adaptive ?strategy ?rr_config ?max_attempts ())
    | Spec.Skiplist ->
        Set_ops.of_skiplist
          (Structs.Hoh_skiplist.create ~mode:kind ?window ?scatter ?adaptive
             ?strategy ?rr_config ?max_attempts ())
  in
  { label = Spec.label s; make = build }

let lf_list reclaim =
  {
    label = (match reclaim with `Leak -> "LFLeak" | `Hp -> "LFHP");
    make =
      (fun () -> Set_ops.of_harris_list (Lockfree.Harris_list.create ~reclaim ()));
  }

let nm_tree () =
  {
    label = "LFLeak-NM";
    make = (fun () -> Set_ops.of_nm_tree (Lockfree.Nm_tree.create ()));
  }

let best_window ~threads = if threads <= 4 then 16 else 8
