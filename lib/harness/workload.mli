(** Workload specifications matching the paper's stress-test
    microbenchmarks: keys drawn uniformly from a [2^key_bits] range, a
    lookup percentage with the remainder split evenly between inserts and
    removes, the structure pre-filled to 50%, and a fixed number of
    operations per thread. *)

type op = Insert | Remove | Lookup

type spec = {
  key_bits : int;
  lookup_pct : int;
  threads : int;
  ops_per_thread : int;
  prefill_ratio : float;  (** fraction of the key range present at start *)
  seed : int;
}

val spec :
  ?prefill_ratio:float ->
  ?seed:int ->
  key_bits:int ->
  lookup_pct:int ->
  threads:int ->
  ops_per_thread:int ->
  unit ->
  spec

val key_range : spec -> int
(** Number of distinct keys; keys are 1..range (0 is avoided so sentinels
    and poison values can never collide with a key). *)

val pp_spec : Format.formatter -> spec -> unit

(** Deterministic per-thread generator (splitmix64). *)
module Rng : sig
  type t

  val create : seed:int -> thread:int -> t
  val int : t -> int -> int  (** uniform in [0, bound) *)
end

(** Zipfian key-skew generator for the sustained-load service harness:
    rank probabilities proportional to [1/(rank+1)^theta], ranks
    scrambled over the keyspace by a seeded permutation so hot keys
    scatter across shards. [theta = 0] degenerates to uniform;
    [theta ~ 0.99] is the YCSB-style default. *)
module Zipf : sig
  type t

  val create : ?seed:int -> theta:float -> int -> t
  (** [create ~theta n] prepares a distribution over keys [1..n].
      O(n) table; sampling is a binary search. *)

  val draw : t -> Rng.t -> int
  (** A key in [1..n], skewed by [theta]. *)
end

val next_op : Rng.t -> spec -> op * int
(** Draw an operation and key according to the mix. *)

val prefill_keys : spec -> int list
(** The deterministic initial contents (about [prefill_ratio * range]
    distinct keys). *)
