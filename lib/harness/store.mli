(** Packed stores and the canonical constructors.

    See {!Store_intf} for the module type. This module adds the
    existential wrapper [t] (so heterogeneous stores are ordinary
    values), per-structure constructors for every set implementation in
    the repository, and small helpers over {!Store_intf.op} /
    {!Store_intf.outcome}. *)

type outcome = Store_intf.outcome =
  | Found
  | Absent
  | Inserted
  | Duplicate
  | Removed
  | Missing
  | Keys of int list
  | Overload

type reply = Store_intf.reply = {
  outcome : outcome;
  earliest : int;
  stamp : int;
}

type op = Store_intf.op =
  | Get of int
  | Insert of int
  | Remove of int
  | Scan of { low : int; count : int }

module type S = Store_intf.S

val op_key : op -> int
(** The routing key of an operation (a scan routes by its low bound). *)

val positive : outcome -> bool
(** Did the operation take effect / find something? [Found], [Inserted],
    [Removed] and non-empty [Keys] are positive. *)

val outcome_name : outcome -> string

(** {1 Packed stores} *)

type t = Packed : (module S with type t = 'a) * 'a -> t

val pack : (module S with type t = 'a) -> 'a -> t

(** Forwarders — [Store.get st ~thread k] etc. unpack and dispatch. *)

val name : t -> string
val stamped : t -> bool
val get : t -> thread:int -> int -> reply
val insert : t -> thread:int -> int -> reply
val remove : t -> thread:int -> int -> reply
val scan : t -> thread:int -> low:int -> count:int -> reply

val batch : ?fuse:bool -> t -> thread:int -> op array -> reply array
(** [fuse] defaults to [false]; see {!Store_intf.S.batch}. *)

val exec : t -> thread:int -> op -> reply
(** Dispatch a single {!op} to the matching point operation. *)

val stats : t -> Telemetry.Report.t
val finalize_thread : t -> thread:int -> unit
val drain : t -> unit
val size : t -> int
val contents : t -> int list
val check : t -> (unit, string) result
val pool_live : t -> int option
val max_backlog : t -> int option
val leaked : t -> int option

(** {1 Constructors}

    One per structure; each packs the structure behind {!S} with the
    stamped transactional semantics (HOH structures) or zero stamps
    (lock-free baselines). *)

val of_hoh_list : Structs.Hoh_list.t -> t
val of_hoh_dlist : Structs.Hoh_dlist.t -> t
val of_bst_int : Structs.Hoh_bst_int.t -> t
val of_bst_ext : Structs.Hoh_bst_ext.t -> t
val of_hashset : Structs.Hoh_hashset.t -> t
val of_skiplist : Structs.Hoh_skiplist.t -> t
val of_harris_list : Lockfree.Harris_list.t -> t
val of_nm_tree : Lockfree.Nm_tree.t -> t
