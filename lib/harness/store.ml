include Store_intf

let op_key = function
  | Get k | Insert k | Remove k -> k
  | Scan { low; _ } -> low

let positive = function
  | Found | Inserted | Removed -> true
  | Keys ks -> ks <> []
  | Absent | Duplicate | Missing | Overload -> false

let outcome_name = function
  | Found -> "found"
  | Absent -> "absent"
  | Inserted -> "inserted"
  | Duplicate -> "duplicate"
  | Removed -> "removed"
  | Missing -> "missing"
  | Keys _ -> "keys"
  | Overload -> "overload"

type t = Packed : (module S with type t = 'a) * 'a -> t

let pack m s = Packed (m, s)

let name (Packed ((module M), s)) = M.name s
let stamped (Packed ((module M), s)) = M.stamped s
let get (Packed ((module M), s)) ~thread k = M.get s ~thread k
let insert (Packed ((module M), s)) ~thread k = M.insert s ~thread k
let remove (Packed ((module M), s)) ~thread k = M.remove s ~thread k

let scan (Packed ((module M), s)) ~thread ~low ~count =
  M.scan s ~thread ~low ~count

let batch ?(fuse = false) (Packed ((module M), s)) ~thread ops =
  M.batch s ~thread ~fuse ops

let stats (Packed ((module M), s)) = M.stats s
let finalize_thread (Packed ((module M), s)) ~thread = M.finalize_thread s ~thread
let drain (Packed ((module M), s)) = M.drain s
let size (Packed ((module M), s)) = M.size s
let contents (Packed ((module M), s)) = M.contents s
let check (Packed ((module M), s)) = M.check s
let pool_live (Packed ((module M), s)) = M.pool_live s
let max_backlog (Packed ((module M), s)) = M.max_backlog s
let leaked (Packed ((module M), s)) = M.leaked s

let exec st ~thread = function
  | Get k -> get st ~thread k
  | Insert k -> insert st ~thread k
  | Remove k -> remove st ~thread k
  | Scan { low; count } -> scan st ~thread ~low ~count

(* ---- the shared implementation over structure primitives ----

   Each concrete structure exposes the same stamped point operations; one
   record of closures captures them and a single module [Prim] lifts the
   record to the full [S] signature (typed replies, scan, batching,
   stats). The record is private to this module: consumers see only [S]
   and the packed [t]. *)

type prim = {
  pr_name : string;
  pr_stamped : bool;
  pr_insert : thread:int -> int -> bool * int;
  pr_remove : thread:int -> int -> bool * int * int;
      (* (result, earliest, stamp) — see {!Store_intf.reply} *)
  pr_lookup : thread:int -> int -> bool * int;
  pr_finalize : thread:int -> unit;
  pr_drain : unit -> unit;
  pr_size : unit -> int;
  pr_contents : unit -> int list;
  pr_check : unit -> (unit, string) Stdlib.result;
  pr_pool_live : unit -> int option;
  pr_max_backlog : unit -> int option;
  pr_leaked : unit -> int option;
}

module Prim : S with type t = prim = struct
  type t = prim

  let name p = p.pr_name
  let stamped p = p.pr_stamped

  let get p ~thread k =
    let r, s = p.pr_lookup ~thread k in
    { outcome = (if r then Found else Absent); earliest = s; stamp = s }

  let insert p ~thread k =
    let r, s = p.pr_insert ~thread k in
    { outcome = (if r then Inserted else Duplicate); earliest = s; stamp = s }

  let remove p ~thread k =
    let r, e, s = p.pr_remove ~thread k in
    { outcome = (if r then Removed else Missing); earliest = e; stamp = s }

  let scan p ~thread ~low ~count =
    if count < 0 then invalid_arg "Store.scan: negative count";
    let hits = ref [] in
    let earliest = ref 0 and stamp = ref 0 in
    for k = low + count - 1 downto low do
      let r, s = p.pr_lookup ~thread k in
      if !stamp = 0 then stamp := s;
      earliest := s;
      if r then hits := k :: !hits
    done;
    (* probes ran high-to-low, so [stamp] is the first probe's stamp and
       [earliest] the last; order the interval *)
    let lo = min !earliest !stamp and hi = max !earliest !stamp in
    { outcome = Keys !hits; earliest = lo; stamp = hi }

  let exec1 p ~thread = function
    | Get k -> get p ~thread k
    | Insert k -> insert p ~thread k
    | Remove k -> remove p ~thread k
    | Scan { low; count } -> scan p ~thread ~low ~count

  let batch p ~thread ~fuse ops =
    if (not fuse) || Array.length ops <= 1 then
      Array.map (exec1 p ~thread) ops
    else
      (* One irrevocable serial transaction for the whole batch: nested
         structure transactions flatten into it, deferred reservation and
         reclamation hand-offs run at its single commit, and — because the
         serial token excludes every abort cause — the spare-node
         allocation protocol of the structures cannot be rewound past,
         which a speculative enclosing transaction could do (leaking pool
         nodes on an outer abort after an inner success). *)
      let r =
        Tm.atomic_stamped ~site:"store.batch" ~max_attempts:0 (fun _txn ->
            Array.map (exec1 p ~thread) ops)
      in
      Array.map
        (fun reply -> { reply with earliest = r.Tm.stamp; stamp = r.Tm.stamp })
        r.Tm.value

  let stats p = Telemetry.Report.snapshot ~label:p.pr_name ()
  let finalize_thread p ~thread = p.pr_finalize ~thread
  let drain p = p.pr_drain ()
  let size p = p.pr_size ()
  let contents p = p.pr_contents ()
  let check p = p.pr_check ()
  let pool_live p = p.pr_pool_live ()
  let max_backlog p = p.pr_max_backlog ()
  let leaked p = p.pr_leaked ()
end

let of_prim p = Packed ((module Prim), p)

let hazard_backlog metrics =
  Option.map (fun m -> m.Reclaim.Hazard.max_backlog) metrics

let of_hoh_list l =
  let open Structs.Hoh_list in
  of_prim
    {
      pr_name = name l;
      pr_stamped = true;
      pr_insert = (fun ~thread k -> insert_s l ~thread k);
      pr_remove =
        (fun ~thread k ->
          let r, s = remove_s l ~thread k in
          (r, s, s));
      pr_lookup = (fun ~thread k -> lookup_s l ~thread k);
      pr_finalize = (fun ~thread -> finalize_thread l ~thread);
      pr_drain = (fun () -> drain l);
      pr_size = (fun () -> size l);
      pr_contents = (fun () -> to_list l);
      pr_check = (fun () -> check l);
      pr_pool_live = (fun () -> Some (pool_live l));
      pr_max_backlog = (fun () -> hazard_backlog (hazard_metrics l));
      pr_leaked = (fun () -> None);
    }

let of_hoh_dlist l =
  let open Structs.Hoh_dlist in
  of_prim
    {
      pr_name = name l;
      pr_stamped = true;
      pr_insert = (fun ~thread k -> insert_s l ~thread k);
      pr_remove = (fun ~thread k -> remove_s l ~thread k);
      pr_lookup = (fun ~thread k -> lookup_s l ~thread k);
      pr_finalize = (fun ~thread -> finalize_thread l ~thread);
      pr_drain = (fun () -> drain l);
      pr_size = (fun () -> size l);
      pr_contents = (fun () -> to_list l);
      pr_check = (fun () -> check l);
      pr_pool_live = (fun () -> Some (pool_live l));
      pr_max_backlog = (fun () -> hazard_backlog (hazard_metrics l));
      pr_leaked = (fun () -> None);
    }

let of_bst_int t =
  let open Structs.Hoh_bst_int in
  of_prim
    {
      pr_name = name t;
      pr_stamped = true;
      pr_insert = (fun ~thread k -> insert_s t ~thread k);
      pr_remove =
        (fun ~thread k ->
          let r, s = remove_s t ~thread k in
          (r, s, s));
      pr_lookup = (fun ~thread k -> lookup_s t ~thread k);
      pr_finalize = (fun ~thread -> finalize_thread t ~thread);
      pr_drain = (fun () -> drain t);
      pr_size = (fun () -> size t);
      pr_contents = (fun () -> to_list t);
      pr_check = (fun () -> check t);
      pr_pool_live = (fun () -> Some (pool_live t));
      pr_max_backlog = (fun () -> None);
      pr_leaked = (fun () -> None);
    }

let of_bst_ext t =
  let open Structs.Hoh_bst_ext in
  of_prim
    {
      pr_name = name t;
      pr_stamped = true;
      pr_insert = (fun ~thread k -> insert_s t ~thread k);
      pr_remove =
        (fun ~thread k ->
          let r, s = remove_s t ~thread k in
          (r, s, s));
      pr_lookup = (fun ~thread k -> lookup_s t ~thread k);
      pr_finalize = (fun ~thread -> finalize_thread t ~thread);
      pr_drain = (fun () -> drain t);
      pr_size = (fun () -> size t);
      pr_contents = (fun () -> to_list t);
      pr_check = (fun () -> check t);
      pr_pool_live = (fun () -> Some (pool_live t));
      pr_max_backlog = (fun () -> hazard_backlog (hazard_metrics t));
      pr_leaked = (fun () -> None);
    }

let of_hashset t =
  let open Structs.Hoh_hashset in
  of_prim
    {
      pr_name = name t;
      pr_stamped = true;
      pr_insert = (fun ~thread k -> insert_s t ~thread k);
      pr_remove =
        (fun ~thread k ->
          let r, s = remove_s t ~thread k in
          (r, s, s));
      pr_lookup = (fun ~thread k -> lookup_s t ~thread k);
      pr_finalize = (fun ~thread -> finalize_thread t ~thread);
      pr_drain = (fun () -> drain t);
      pr_size = (fun () -> size t);
      pr_contents = (fun () -> to_list t);
      pr_check = (fun () -> check t);
      pr_pool_live = (fun () -> Some (pool_live t));
      pr_max_backlog = (fun () -> hazard_backlog (hazard_metrics t));
      pr_leaked = (fun () -> None);
    }

let of_skiplist t =
  let open Structs.Hoh_skiplist in
  of_prim
    {
      pr_name = name t;
      pr_stamped = true;
      pr_insert = (fun ~thread k -> insert_s t ~thread k);
      pr_remove =
        (fun ~thread k ->
          let r, s = remove_s t ~thread k in
          (r, s, s));
      pr_lookup = (fun ~thread k -> lookup_s t ~thread k);
      pr_finalize = (fun ~thread -> finalize_thread t ~thread);
      pr_drain = (fun () -> drain t);
      pr_size = (fun () -> size t);
      pr_contents = (fun () -> to_list t);
      pr_check = (fun () -> check t);
      pr_pool_live = (fun () -> Some (pool_live t));
      pr_max_backlog = (fun () -> hazard_backlog (hazard_metrics t));
      pr_leaked = (fun () -> None);
    }

let of_harris_list l =
  let open Lockfree.Harris_list in
  let leaked () =
    match hazard_metrics l with
    | Some _ -> None
    | None -> Some ((pool_stats l).Mempool.Stats.live - size l)
  in
  of_prim
    {
      pr_name = name l;
      pr_stamped = false;
      pr_insert = (fun ~thread k -> (insert l ~thread k, 0));
      pr_remove = (fun ~thread k -> (remove l ~thread k, 0, 0));
      pr_lookup = (fun ~thread k -> (lookup l ~thread k, 0));
      pr_finalize = (fun ~thread -> finalize_thread l ~thread);
      pr_drain = (fun () -> drain l);
      pr_size = (fun () -> size l);
      pr_contents = (fun () -> to_list l);
      pr_check = (fun () -> check l);
      pr_pool_live = (fun () -> Some (pool_live l));
      pr_max_backlog = (fun () -> hazard_backlog (hazard_metrics l));
      pr_leaked = leaked;
    }

let of_nm_tree t =
  let open Lockfree.Nm_tree in
  of_prim
    {
      pr_name = name t;
      pr_stamped = false;
      pr_insert = (fun ~thread k -> (insert t ~thread k, 0));
      pr_remove = (fun ~thread k -> (remove t ~thread k, 0, 0));
      pr_lookup = (fun ~thread k -> (lookup t ~thread k, 0));
      pr_finalize = (fun ~thread -> finalize_thread t ~thread);
      pr_drain = (fun () -> drain t);
      pr_size = (fun () -> size t);
      pr_contents = (fun () -> to_list t);
      pr_check = (fun () -> check t);
      pr_pool_live = (fun () -> None);
      pr_max_backlog = (fun () -> None);
      pr_leaked = (fun () -> Some (allocated t - reachable t));
    }
