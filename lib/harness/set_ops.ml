type handle = {
  name : string;
  stamped : bool;
  insert : thread:int -> int -> bool * int;
  remove : thread:int -> int -> bool * int * int;
  lookup : thread:int -> int -> bool * int;
  finalize_thread : thread:int -> unit;
  drain : unit -> unit;
  size : unit -> int;
  contents : unit -> int list;
  check : unit -> (unit, string) result;
  pool_live : unit -> int option;
  max_backlog : unit -> int option;
  leaked : unit -> int option;
}

let of_store st =
  {
    name = Store.name st;
    stamped = Store.stamped st;
    insert =
      (fun ~thread k ->
        let r = Store.insert st ~thread k in
        (Store.positive r.Store.outcome, r.Store.stamp));
    remove =
      (fun ~thread k ->
        let r = Store.remove st ~thread k in
        (Store.positive r.Store.outcome, r.Store.earliest, r.Store.stamp));
    lookup =
      (fun ~thread k ->
        let r = Store.get st ~thread k in
        (Store.positive r.Store.outcome, r.Store.stamp));
    finalize_thread = (fun ~thread -> Store.finalize_thread st ~thread);
    drain = (fun () -> Store.drain st);
    size = (fun () -> Store.size st);
    contents = (fun () -> Store.contents st);
    check = (fun () -> Store.check st);
    pool_live = (fun () -> Store.pool_live st);
    max_backlog = (fun () -> Store.max_backlog st);
    leaked = (fun () -> Store.leaked st);
  }

let of_hoh_list l = of_store (Store.of_hoh_list l)
let of_hoh_dlist l = of_store (Store.of_hoh_dlist l)
let of_bst_int t = of_store (Store.of_bst_int t)
let of_bst_ext t = of_store (Store.of_bst_ext t)
let of_hashset t = of_store (Store.of_hashset t)
let of_skiplist t = of_store (Store.of_skiplist t)
let of_harris_list l = of_store (Store.of_harris_list l)
let of_nm_tree t = of_store (Store.of_nm_tree t)
