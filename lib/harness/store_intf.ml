(** The first-class store interface.

    Every set implementation in the repository — the six HOH structures,
    the lock-free baselines — is served to the driver, the benchmarks and
    the sharded service through this module type. It replaces the bare
    [Set_ops.handle] record of closures with a typed API:

    - operations return a {!reply} whose {!outcome} is a variant, not a
      bare [bool], so callers distinguish "insert succeeded" from
      "key already present" without decoding tuple conventions;
    - {!S.batch} is an explicit batch entry point (the unit the service
      router amortizes per shard), with an optional fused mode that runs
      the whole batch as one irrevocable transaction;
    - {!S.stats} exposes a telemetry snapshot hook so a store can be asked
      for its measurement-window report uniformly.

    Implementations are packed with [Store.pack] into the existential
    [Store.t], so heterogeneous stores remain interchangeable values the
    way the old record was. *)

(** Operation result. [Keys] carries a scan's hits; the other constructors
    are the typed split of the old boolean (success/failure per class of
    operation). *)
type outcome =
  | Found  (** get: key present *)
  | Absent  (** get: key not present *)
  | Inserted  (** insert: key was added *)
  | Duplicate  (** insert: key already present, nothing changed *)
  | Removed  (** remove: key was deleted *)
  | Missing  (** remove: key not present, nothing changed *)
  | Keys of int list  (** scan: present keys of the range, ascending *)
  | Overload
      (** service admission control shed the request before execution;
          carries zero stamps and never enters a serialization history *)

type reply = {
  outcome : outcome;
  earliest : int;
      (** earliest stamp at which the operation may linearize; equal to
          [stamp] for point operations other than the doubly-linked-list
          strict fast-fail (see {!Serial_check}) *)
  stamp : int;  (** commit stamp of the operation's final transaction *)
}

(** A request, as routed and batched by the service layer. *)
type op =
  | Get of int
  | Insert of int
  | Remove of int
  | Scan of { low : int; count : int }
      (** present keys in [[low, low + count)] *)

module type S = sig
  type t

  val name : t -> string

  val stamped : t -> bool
  (** Whether replies carry real linearization stamps (the transactional
      structures) or zeros (the lock-free baselines, which the
      serialization checker skips). *)

  val get : t -> thread:int -> int -> reply
  val insert : t -> thread:int -> int -> reply
  val remove : t -> thread:int -> int -> reply

  val scan : t -> thread:int -> low:int -> count:int -> reply
  (** Interval-linearized range read: per-key membership probes whose
      replies span [[earliest, stamp]]; each individual probe is
      serializable but the range is not a single snapshot. For an atomic
      snapshot, issue the scan inside a fused {!batch}. *)

  val batch : t -> thread:int -> fuse:bool -> op array -> reply array
  (** Execute the operations in order. With [fuse:false] each runs as its
      own (windowed) transaction sequence. With [fuse:true] and more than
      one operation, the whole batch runs as {e one irrevocable serial
      transaction}: every reply carries the same commit stamp and the batch
      is a single serialization point. Fusing is irrevocable by design —
      a speculative enclosing transaction could abort {e after} an inner
      operation's allocation protocol had retired its spare-node state,
      leaking pool nodes; the serial token makes the fused batch
      abort-free (see DESIGN.md, decision 10). *)

  val stats : t -> Telemetry.Report.t
  (** Post-quiescence telemetry snapshot, labelled with [name]. *)

  val finalize_thread : t -> thread:int -> unit
  val drain : t -> unit

  (** Quiescent inspection — only meaningful with no concurrent ops. *)

  val size : t -> int
  val contents : t -> int list
  val check : t -> (unit, string) result
  val pool_live : t -> int option
  val max_backlog : t -> int option
  val leaked : t -> int option
end
