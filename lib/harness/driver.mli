(** The multi-domain benchmark driver.

    Pre-fills the structure to the spec's ratio, releases all worker
    domains from a barrier, runs the op mix, and gathers throughput, TM
    statistics, reclamation metrics, and correctness verdicts. *)

type result = {
  impl : string;
  spec : Workload.spec;
  elapsed_s : float;
  total_ops : int;
  throughput : float;  (** operations per second, all threads *)
  tm : Tm.Stats.t;  (** aggregated over worker threads *)
  size_after : int;
  verdict : (unit, string) Stdlib.result;
      (** structural invariants + size accounting + (when available)
          commit-stamp serializability of the whole run *)
  pool_live : int option;
  max_backlog : int option;
  leaked : int option;
  telemetry : Telemetry.Report.t option;
      (** post-quiescence snapshot of the measurement window (latency
          histograms, abort attribution, gauges); [Some] iff
          {!Telemetry.enabled} was on when the run started *)
  san : (string * int) list option;
      (** per-rule TxSan violation counts ({!San.violations} order);
          [Some] iff the run was started with [~san:true] *)
}

val run : ?verify:bool -> ?san:bool -> Workload.spec -> Store.t -> result
(** [verify] (default [true]) logs every operation and runs the
    serialization checker; disable it for pure throughput timing. [san]
    (default [false]) runs with the TxSan sanitizer enabled in [Count]
    mode (reset before prefill, disabled again after drain) and fills the
    result's [san] field. The calling domain must be TM-registered. *)

val abort_rate : result -> float
(** Aborts per started transaction attempt. *)

val pp_result : Format.formatter -> result -> unit
