type result = {
  impl : string;
  spec : Workload.spec;
  elapsed_s : float;
  total_ops : int;
  throughput : float;
  tm : Tm.Stats.t;
  size_after : int;
  verdict : (unit, string) Stdlib.result;
  pool_live : int option;
  max_backlog : int option;
  leaked : int option;
  telemetry : Telemetry.Report.t option;
  san : (string * int) list option;
}

(* Two-phase start barrier. A single shared countdown would let workers
   start operating as soon as the last arrival decrements it — including
   while the main domain is still descheduled and has yet to sample t0, so
   on an oversubscribed box the timed window could miss an arbitrary chunk
   of the run (the 1-thread smoke point used to report hundreds of Mops/s
   this way). Instead workers check in and then spin on a flag that main
   sets only after it has observed full attendance and taken t0: no
   operation can begin before the clock is running. *)
type barrier = { ready : int Atomic.t; go : bool Atomic.t }

let barrier_make n = { ready = Atomic.make n; go = Atomic.make false }

let barrier_arrive b =
  Atomic.decr b.ready;
  while not (Atomic.get b.go) do
    Domain.cpu_relax ()
  done

let barrier_await_ready b =
  while Atomic.get b.ready > 0 do
    Domain.cpu_relax ()
  done

let barrier_release b = Atomic.set b.go true

type worker_out = {
  log : Serial_check.logged array;
  w_ins : int;
  w_rem : int;
  w_stats : Tm.Stats.t;
}

let dummy_log =
  {
    Serial_check.op = Workload.Lookup;
    key = 0;
    result = false;
    earliest = 0;
    stamp = 0;
  }

let worker ~spec ~store ~verify ~barrier d () =
  Tm.Thread.with_registered (fun tid ->
      let rng = Workload.Rng.create ~seed:spec.Workload.seed ~thread:(d + 1) in
      let n = spec.Workload.ops_per_thread in
      let log = if verify then Array.make n dummy_log else [||] in
      let ins = ref 0 and rem = ref 0 in
      Tm.Stats.reset (Tm.Thread.stats ());
      barrier_arrive barrier;
      for i = 0 to n - 1 do
        let op, key = Workload.next_op rng spec in
        let reply =
          match op with
          | Workload.Insert ->
              let r = Store.insert store ~thread:tid key in
              if r.Store.outcome = Store.Inserted then incr ins;
              r
          | Workload.Remove ->
              let r = Store.remove store ~thread:tid key in
              if r.Store.outcome = Store.Removed then incr rem;
              r
          | Workload.Lookup -> Store.get store ~thread:tid key
        in
        let result = Store.positive reply.Store.outcome in
        let earliest = reply.Store.earliest and stamp = reply.Store.stamp in
        if verify then
          log.(i) <- { Serial_check.op; key; result; earliest; stamp }
      done;
      Store.finalize_thread store ~thread:tid;
      {
        log;
        w_ins = !ins;
        w_rem = !rem;
        w_stats = Tm.Stats.copy (Tm.Thread.stats ());
      })

let run ?(verify = true) ?(san = false) spec store =
  (* Count mode for multi-domain runs: a raise inside one worker would tear
     down the run mid-measurement; per-rule counts are reported instead. *)
  if san then begin
    San.reset ();
    San.set_enabled ~mode:San.Count true
  end;
  let tid = Tm.Thread.id () in
  let initial = Workload.prefill_keys spec in
  List.iter
    (fun k ->
      if (Store.insert store ~thread:tid k).Store.outcome <> Store.Inserted
      then failwith "Driver.run: prefill insert failed")
    initial;
  (* Start the measurement window after prefill so the report reflects the
     contended phase only. Gauges are cumulative and keep their registry. *)
  if Telemetry.enabled () then Telemetry.reset_slots ();
  let barrier = barrier_make spec.Workload.threads in
  let domains =
    List.init spec.Workload.threads (fun d ->
        Domain.spawn (worker ~spec ~store ~verify ~barrier d))
  in
  barrier_await_ready barrier;
  (* Monotonic, not wall, time: an NTP step mid-run would corrupt the
     throughput denominator. t0 is taken after every worker has checked in
     and before any is released, so the window covers exactly the op
     loops. *)
  let t0 = Telemetry.now_ns () in
  barrier_release barrier;
  let outs = List.map Domain.join domains in
  let elapsed = float_of_int (Telemetry.now_ns () - t0) /. 1e9 in
  Store.drain store;
  let san_counts =
    if san then begin
      let v = San.violations () in
      San.set_enabled false;
      Some v
    end
    else None
  in
  let total_ops = spec.Workload.threads * spec.Workload.ops_per_thread in
  let tm = Tm.Stats.create () in
  List.iter (fun o -> Tm.Stats.add tm o.w_stats) outs;
  let ins = List.fold_left (fun a o -> a + o.w_ins) 0 outs in
  let rem = List.fold_left (fun a o -> a + o.w_rem) 0 outs in
  let size_after = Store.size store in
  let expected = List.length initial + ins - rem in
  let verdict =
    if size_after <> expected then
      Error
        (Printf.sprintf "size accounting: found %d, expected %d" size_after
           expected)
    else
      match Store.check store with
      | Error _ as e -> e
      | Ok () ->
          if verify && Store.stamped store then
            Serial_check.check ~initial (List.map (fun o -> o.log) outs)
          else Ok ()
  in
  {
    impl = Store.name store;
    spec;
    elapsed_s = elapsed;
    total_ops;
    throughput = float_of_int total_ops /. elapsed;
    tm;
    size_after;
    verdict;
    pool_live = Store.pool_live store;
    max_backlog = Store.max_backlog store;
    leaked = Store.leaked store;
    telemetry =
      (if Telemetry.enabled () then
         Some
           (Telemetry.Report.snapshot ~label:(Store.name store) ~counters:tm
              ())
       else None);
    san = san_counts;
  }

let abort_rate r =
  if Tm.Stats.started r.tm = 0 then 0.
  else
    float_of_int (Tm.Stats.total_aborts r.tm)
    /. float_of_int (Tm.Stats.started r.tm)

let pp_result ppf r =
  Format.fprintf ppf
    "%-10s %a: %.0f ops/s (%.2fs), aborts/attempt %.3f, fallbacks %d, %s"
    r.impl Workload.pp_spec r.spec r.throughput r.elapsed_s (abort_rate r)
    (Tm.Stats.fallbacks r.tm)
    (match r.verdict with Ok () -> "OK" | Error e -> "FAIL: " ^ e);
  match r.san with
  | None -> ()
  | Some counts ->
      let total = List.fold_left (fun a (_, n) -> a + n) 0 counts in
      if total = 0 then Format.fprintf ppf "@ [san: clean]"
      else
        Format.fprintf ppf "@ [san: %a]"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
             (fun ppf (rule, n) -> Format.fprintf ppf "%s=%d" rule n))
          (List.filter (fun (_, n) -> n > 0) counts)
