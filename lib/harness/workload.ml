type op = Insert | Remove | Lookup

type spec = {
  key_bits : int;
  lookup_pct : int;
  threads : int;
  ops_per_thread : int;
  prefill_ratio : float;
  seed : int;
}

let spec ?(prefill_ratio = 0.5) ?(seed = 0x5eed) ~key_bits ~lookup_pct
    ~threads ~ops_per_thread () =
  if key_bits < 1 || key_bits > 30 then invalid_arg "Workload.spec: key_bits";
  if lookup_pct < 0 || lookup_pct > 100 then
    invalid_arg "Workload.spec: lookup_pct";
  if threads < 1 then invalid_arg "Workload.spec: threads";
  { key_bits; lookup_pct; threads; ops_per_thread; prefill_ratio; seed }

let key_range s = 1 lsl s.key_bits

let pp_spec ppf s =
  Format.fprintf ppf "%d-bit keys, %d%% lookups, %d threads, %d ops/thread"
    s.key_bits s.lookup_pct s.threads s.ops_per_thread

module Rng = struct
  type t = { mutable state : int }

  let create ~seed ~thread =
    { state = (seed * 0x9e3779b9) + (thread * 0x85ebca6b) + 1 }

  (* splitmix64-style mixer, truncated to OCaml's 63-bit ints. *)
  let next t =
    t.state <- (t.state + 0x1e3779b97f4a7c15) land max_int;
    let z = t.state in
    let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 land max_int in
    let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb land max_int in
    z lxor (z lsr 31)

  let int t bound =
    if bound <= 0 then invalid_arg "Rng.int";
    next t mod bound
end

module Zipf = struct
  type t = {
    cdf : float array;  (* cdf.(r) = P(rank <= r), strictly increasing *)
    perm : int array;  (* rank -> key-1: scrambles rank order over the space *)
  }

  (* Zipf(theta) over [n] keys: P(rank r) proportional to 1/(r+1)^theta.
     The CDF table costs O(n) floats once per workload; sampling is a
     binary search. Ranks are scrambled by a seeded Fisher-Yates
     permutation so the hottest keys scatter over the keyspace (and over
     the service's shards) instead of clustering at the low end. *)
  let create ?(seed = 0x21bf) ~theta n =
    if n < 1 then invalid_arg "Zipf.create: n";
    if theta < 0. then invalid_arg "Zipf.create: theta";
    let w = Array.init n (fun r -> 1. /. (float_of_int (r + 1) ** theta)) in
    let total = Array.fold_left ( +. ) 0. w in
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    Array.iteri
      (fun r wr ->
        acc := !acc +. (wr /. total);
        cdf.(r) <- !acc)
      w;
    cdf.(n - 1) <- 1.;
    let perm = Array.init n (fun i -> i) in
    let rng = Rng.create ~seed ~thread:0 in
    for i = n - 1 downto 1 do
      let j = Rng.int rng (i + 1) in
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    done;
    { cdf; perm }

  let draw t rng =
    let u =
      float_of_int (Rng.int rng (1 lsl 30)) /. float_of_int (1 lsl 30)
    in
    (* first rank whose cdf covers u *)
    let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < u then lo := mid + 1 else hi := mid
    done;
    1 + t.perm.(!lo)
end

let next_op rng s =
  let key = 1 + Rng.int rng (key_range s) in
  let roll = Rng.int rng 100 in
  let op =
    if roll < s.lookup_pct then Lookup
    else if (roll - s.lookup_pct) mod 2 = 0 then Insert
    else Remove
  in
  (op, key)

let prefill_keys s =
  let rng = Rng.create ~seed:s.seed ~thread:9999 in
  let range = key_range s in
  let want = int_of_float (s.prefill_ratio *. float_of_int range) in
  let present = Hashtbl.create (2 * want) in
  let rec go acc n guard =
    if n >= want || guard > 100 * range then acc
    else
      let k = 1 + Rng.int rng range in
      if Hashtbl.mem present k then go acc n (guard + 1)
      else begin
        Hashtbl.add present k ();
        go (k :: acc) (n + 1) (guard + 1)
      end
  in
  go [] 0 0
