(* Unit, concurrency and property tests for the TL2-style TM substrate. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_tm f = Tm.Thread.with_registered (fun _ -> f ())

(* ---- basics ---- *)

let test_read_write () =
  with_tm (fun () ->
      let v = Tm.tvar 10 in
      let r = Tm.atomic (fun txn -> Tm.read txn v) in
      check "initial" 10 r;
      Tm.atomic (fun txn -> Tm.write txn v 42);
      check "after write" 42 (Tm.peek v))

let test_read_own_write () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let seen =
        Tm.atomic (fun txn ->
            Tm.write txn v 7;
            Tm.read txn v)
      in
      check "reads own buffered write" 7 seen;
      check "committed" 7 (Tm.peek v))

let test_write_write () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      Tm.atomic (fun txn ->
          Tm.write txn v 1;
          Tm.write txn v 2;
          Tm.write txn v 3);
      check "last write wins" 3 (Tm.peek v))

let test_multiple_tvars () =
  with_tm (fun () ->
      let a = Tm.tvar 1 and b = Tm.tvar 2 and c = Tm.tvar "x" in
      Tm.atomic (fun txn ->
          Tm.write txn a (Tm.read txn b);
          Tm.write txn b 9;
          Tm.write txn c "y");
      check "a" 2 (Tm.peek a);
      check "b" 9 (Tm.peek b);
      Alcotest.(check string) "c" "y" (Tm.peek c))

let test_exception_rolls_back () =
  with_tm (fun () ->
      let v = Tm.tvar 5 in
      (try
         Tm.atomic (fun txn ->
             Tm.write txn v 99;
             failwith "boom")
       with Failure _ -> ());
      check "write discarded" 5 (Tm.peek v))

let test_abort_retries () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let attempts = ref 0 in
      let defers_run = ref 0 in
      let r =
        Tm.atomic_stamped ~max_attempts:10 (fun txn ->
            incr attempts;
            Tm.defer txn (fun () -> incr defers_run);
            Tm.write txn v !attempts;
            if !attempts < 3 then raise (Tm.Abort Tm.Read_invalid))
      in
      check "three attempts" 3 !attempts;
      check "reported attempts" 3 r.Tm.attempts;
      check "defer ran once" 1 !defers_run;
      check "only final attempt committed" 3 (Tm.peek v);
      checkb "not serial" false r.Tm.serial)

let test_defer_order () =
  with_tm (fun () ->
      let order = ref [] in
      Tm.atomic (fun txn ->
          Tm.defer txn (fun () -> order := 1 :: !order);
          Tm.defer txn (fun () -> order := 2 :: !order);
          Tm.defer txn (fun () -> order := 3 :: !order));
      Alcotest.(check (list int)) "registration order" [ 1; 2; 3 ]
        (List.rev !order))

let test_serial_fallback () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      (* max_attempts = 0 goes straight to serial mode. *)
      let r =
        Tm.atomic_stamped ~max_attempts:0 (fun txn ->
            checkb "serial flag" true (Tm.is_serial txn);
            Tm.write txn v (Tm.read txn v + 1))
      in
      checkb "result serial" true r.Tm.serial;
      check "serial write applied" 1 (Tm.peek v);
      checkb "token released" false (Tm.serial_active ()))

let test_stamps_monotone () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let s1 = (Tm.atomic_stamped (fun txn -> Tm.write txn v 1)).Tm.stamp in
      let s2 = (Tm.atomic_stamped (fun txn -> Tm.write txn v 2)).Tm.stamp in
      let s3 = (Tm.atomic_stamped (fun txn -> Tm.read txn v)).Tm.stamp in
      checkb "writer stamps increase" true (s2 > s1);
      checkb "read-only stamp covers last writer" true (s3 >= s2);
      checkb "read-only is flagged" true
        (Tm.atomic_stamped (fun txn -> Tm.read txn v)).Tm.read_only;
      checkb "writer is not read-only" false
        (Tm.atomic_stamped (fun txn -> Tm.write txn v 3)).Tm.read_only)

let test_nested_flattens () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      Tm.atomic (fun txn ->
          Tm.write txn v 1;
          (* The nested atomic must see the enclosing buffered write. *)
          let inner = Tm.atomic (fun txn' -> Tm.read txn' v) in
          check "nested sees outer write" 1 inner;
          Tm.write txn v (inner + 1));
      check "flattened commit" 2 (Tm.peek v))

let test_poke_bumps_version () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      Tm.poke v 33;
      check "poke visible" 33 (Tm.peek v);
      check "transactional read sees poke" 33
        (Tm.atomic (fun txn -> Tm.read txn v)))

let test_opaque_snapshot () =
  with_tm (fun () ->
      let a = Tm.tvar 0 and b = Tm.tvar 0 in
      let attempts = ref 0 in
      let pair =
        Tm.atomic ~max_attempts:10 (fun txn ->
            incr attempts;
            let va = Tm.read txn a in
            if !attempts = 1 then begin
              (* concurrent update between the two reads: the second read
                 must not pair the old [a] with the new [b] *)
              Tm.poke a 1;
              Tm.poke b 1
            end;
            let vb = Tm.read txn b in
            (va, vb))
      in
      check "aborted the torn attempt" 2 !attempts;
      checkb "snapshot is consistent" true (pair = (1, 1)))

let test_validate_on_commit () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let attempts = ref 0 in
      let seen =
        Tm.atomic ~max_attempts:10 (fun txn ->
            incr attempts;
            let x = Tm.read txn v in
            Tm.validate_on_commit txn;
            (* invalidate the read set after the read: a plain read-only
               transaction would commit anyway; a validating one must abort
               and retry *)
            if !attempts = 1 then Tm.poke v 99;
            x)
      in
      check "validating read-only txn retried" 2 !attempts;
      check "retry saw the new value" 99 seen;
      (* without the request, the same shape commits first try: it is a
         consistent snapshot of the state before the poke *)
      let attempts2 = ref 0 in
      let seen2 =
        Tm.atomic ~max_attempts:10 (fun txn ->
            incr attempts2;
            let x = Tm.read txn v in
            if !attempts2 = 1 then Tm.poke v 100;
            x)
      in
      check "plain read-only txn commits" 1 !attempts2;
      check "with the pre-poke snapshot" 99 seen2)

(* ---- timestamp extension and the read-phase hint ---- *)

(* A stale read whose read set is still intact must be rescued: the poke
   of [b] moves the clock past the transaction's read version, but nothing
   the transaction already read changed, so the extension revalidates,
   advances rv, and the attempt commits without ever aborting. *)
let test_extension_rescues_stale_read () =
  with_tm (fun () ->
      Tm.Stats.reset (Tm.Thread.stats ());
      let a = Tm.tvar 0 and b = Tm.tvar 0 in
      let first = ref true in
      let r =
        Tm.atomic_stamped ~max_attempts:10 (fun txn ->
            let va = Tm.read txn a in
            if !first then begin
              first := false;
              Tm.poke b 7
            end;
            (va, Tm.read txn b))
      in
      checkb "reads the rescued pair" true (r.Tm.value = (0, 7));
      check "no retry needed" 1 r.Tm.attempts;
      let st = Tm.Thread.stats () in
      check "extension counted" 1 (Tm.Stats.extensions st);
      check "no extension failures" 0 (Tm.Stats.ext_fails st);
      check "no read aborts" 0 (Tm.Stats.aborts_read st))

(* When the read set is no longer intact the extension must fail — moving
   rv past a committed conflicting update would break opacity — and the
   transaction aborts exactly as it did before extensions existed. *)
let test_extension_fails_on_true_conflict () =
  with_tm (fun () ->
      Tm.Stats.reset (Tm.Thread.stats ());
      let a = Tm.tvar 0 and b = Tm.tvar 0 in
      let first = ref true in
      let r =
        Tm.atomic_stamped ~max_attempts:10 (fun txn ->
            let va = Tm.read txn a in
            if !first then begin
              first := false;
              Tm.poke a 1;
              Tm.poke b 1
            end;
            (va, Tm.read txn b))
      in
      checkb "snapshot consistent after retry" true (r.Tm.value = (1, 1));
      check "one retry" 2 r.Tm.attempts;
      let st = Tm.Thread.stats () in
      check "failed extension counted" 1 (Tm.Stats.ext_fails st);
      check "no successful extension" 0 (Tm.Stats.extensions st);
      check "aborted once" 1 (Tm.Stats.aborts_read st))

(* read_phase transactions retry speculatively instead of escalating: even
   with the attempt budget already exhausted (max_attempts = 0 sends a
   normal transaction straight to serial mode) they never take the serial
   token. *)
let test_read_phase_never_serial () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let attempts = ref 0 in
      let r =
        Tm.atomic_stamped ~max_attempts:0 ~read_phase:true (fun txn ->
            incr attempts;
            let x = Tm.read txn v in
            if !attempts <= 2 then raise (Tm.Abort Tm.Read_invalid);
            x)
      in
      check "kept retrying speculatively" 3 !attempts;
      checkb "never went serial" false r.Tm.serial;
      checkb "token untouched" false (Tm.serial_active ()))

let test_read_phase_writes_commit () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      Tm.atomic ~read_phase:true (fun txn -> Tm.write txn v 5);
      check "private write committed" 5 (Tm.peek v))

(* ---- commit path: write-set index, filters, read-set dedup ---- *)

(* Mirrors the Bloom-bit hash in tm.ml (white-box): used to manufacture a
   filter false positive below. *)
let filter_bit uid =
  let h = (uid * 0x9e3779b1) lsr 26 in
  1 lsl (((h land 63) * 63) lsr 6)

let test_wset_growth_readback () =
  with_tm (fun () ->
      (* 100 writes crosses the hash-index engagement threshold and forces
         several rehashes; read-after-write must keep returning the
         buffered value throughout. *)
      let n = 100 in
      let tvars = Array.init n (fun _ -> Tm.tvar (-1)) in
      Tm.atomic (fun txn ->
          Array.iteri (fun i tv -> Tm.write txn tv (i * 3)) tvars;
          Array.iteri
            (fun i tv ->
              check (Printf.sprintf "readback %d" i) (i * 3) (Tm.read txn tv))
            tvars;
          check "each tvar logged once" n (Tm.writes_logged txn));
      Array.iteri
        (fun i tv -> check (Printf.sprintf "committed %d" i) (i * 3) (Tm.peek tv))
        tvars)

let test_wset_overwrite_in_place () =
  with_tm (fun () ->
      let a = Tm.tvar 0 in
      let others = Array.init 40 (fun _ -> Tm.tvar 0) in
      Tm.atomic (fun txn ->
          Tm.write txn a 1;
          (* push the write set past the index threshold, then overwrite
             the first entry: the indexed lookup must find and update it
             rather than append a duplicate *)
          Array.iter (fun tv -> Tm.write txn tv 7) others;
          Tm.write txn a 2;
          check "overwrite did not append" 41 (Tm.writes_logged txn);
          check "read sees overwrite" 2 (Tm.read txn a));
      check "last write wins" 2 (Tm.peek a))

let test_wfilter_false_positive_falls_through () =
  with_tm (fun () ->
      (* find two tvars whose uids share a filter bit; writing one sets
         the bit, so reading the other takes the filtered path, misses in
         the write set, and must fall through to the committed value *)
      let seed = Tm.tvar 111 in
      let bit = filter_bit (Tm.tvar_id seed) in
      let rec mk_collider tries =
        if tries > 10_000 then None
        else
          let tv = Tm.tvar 222 in
          if filter_bit (Tm.tvar_id tv) = bit then Some tv
          else mk_collider (tries + 1)
      in
      match mk_collider 0 with
      | None -> Alcotest.fail "no filter collision in 10k tvars (62 bits?)"
      | Some other ->
          let seen =
            Tm.atomic (fun txn ->
                Tm.write txn seed 333;
                Tm.read txn other)
          in
          check "false positive reads committed value" 222 seen;
          check "seed committed" 333 (Tm.peek seed))

let test_rset_dedup () =
  with_tm (fun () ->
      let a = Tm.tvar 1 and b = Tm.tvar 2 in
      Tm.atomic (fun txn ->
          for _ = 1 to 50 do
            ignore (Tm.read txn a)
          done;
          check "repeated reads log once" 1 (Tm.reads_logged txn);
          ignore (Tm.read txn b);
          for _ = 1 to 50 do
            ignore (Tm.read txn a + Tm.read txn b)
          done;
          check "two tvars, two entries" 2 (Tm.reads_logged txn)))

let test_rset_dedup_still_validated () =
  with_tm (fun () ->
      (* dedup must not weaken commit-time validation: the single logged
         entry still catches a concurrent update *)
      let v = Tm.tvar 0 in
      let attempts = ref 0 in
      let seen =
        Tm.atomic ~max_attempts:10 (fun txn ->
            incr attempts;
            let x = ref 0 in
            for _ = 1 to 10 do
              x := Tm.read txn v
            done;
            Tm.validate_on_commit txn;
            if !attempts = 1 then Tm.poke v 55;
            !x)
      in
      check "deduped read still validated" 2 !attempts;
      check "retry saw the poke" 55 seen)

(* ---- thread registry ---- *)

let test_thread_ids_recycled () =
  let id1 =
    Domain.join
      (Domain.spawn (fun () -> Tm.Thread.with_registered (fun id -> id)))
  in
  let id2 =
    Domain.join
      (Domain.spawn (fun () -> Tm.Thread.with_registered (fun id -> id)))
  in
  check "released id is reused" id1 id2

let test_thread_ids_distinct () =
  Tm.Thread.with_registered (fun my_id ->
      let other =
        Domain.join
          (Domain.spawn (fun () -> Tm.Thread.with_registered (fun id -> id)))
      in
      checkb "concurrent ids differ" true (other <> my_id))

(* ---- concurrency ---- *)

let spawn_workers n f =
  List.init n (fun i -> Domain.spawn (fun () -> Tm.Thread.with_registered (f i)))
  |> List.map Domain.join

let test_concurrent_counter () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let per_thread = 2000 in
      let _ =
        spawn_workers 4 (fun _ _tid ->
            for _ = 1 to per_thread do
              Tm.atomic (fun txn -> Tm.write txn v (Tm.read txn v + 1))
            done)
      in
      check "no lost updates" (4 * per_thread) (Tm.peek v))

let test_concurrent_counter_serial_pressure () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let per_thread = 800 in
      let _ =
        spawn_workers 4 (fun _ _tid ->
            for _ = 1 to per_thread do
              Tm.atomic ~max_attempts:1 (fun txn ->
                  Tm.write txn v (Tm.read txn v + 1))
            done)
      in
      check "no lost updates under heavy serial fallback" (4 * per_thread)
        (Tm.peek v))

(* Bank invariant: concurrent random transfers keep the total constant and
   every read-only snapshot observes the full total (opacity/consistency). *)
let test_bank_invariant () =
  with_tm (fun () ->
      let n_accounts = 16 in
      let initial = 100 in
      let accounts = Array.init n_accounts (fun _ -> Tm.tvar initial) in
      let total = n_accounts * initial in
      let violations = Atomic.make 0 in
      let _ =
        spawn_workers 4 (fun i _tid ->
            let rng = ref (i + 17) in
            let rand m =
              rng := (!rng * 1103515245) + 12345;
              !rng land 0x3FFFFFFF mod m
            in
            for _ = 1 to 2500 do
              if rand 4 = 0 then begin
                (* audit: snapshot the whole bank *)
                let sum =
                  Tm.atomic (fun txn ->
                      Array.fold_left (fun a v -> a + Tm.read txn v) 0 accounts)
                in
                if sum <> total then Atomic.incr violations
              end
              else
                let a = rand n_accounts and b = rand n_accounts in
                let amt = rand 10 in
                Tm.atomic (fun txn ->
                    let va = Tm.read txn accounts.(a) in
                    let vb = Tm.read txn accounts.(b) in
                    Tm.write txn accounts.(a) (va - amt);
                    Tm.write txn accounts.(b) (vb + amt))
            done)
      in
      check "no inconsistent audit" 0 (Atomic.get violations);
      let final = Array.fold_left (fun a v -> a + Tm.peek v) 0 accounts in
      check "total conserved" total final)

(* Regression for the serial-fallback snapshot race: with max_attempts=1
   every conflict escalates to a serial transaction, and read-only audits
   must still see consistent totals (a reader that samples its snapshot
   while a serial writer is mid-publication must not mix old and new
   values). *)
let test_bank_invariant_serial_pressure () =
  with_tm (fun () ->
      let n_accounts = 8 in
      let initial = 50 in
      let accounts = Array.init n_accounts (fun _ -> Tm.tvar initial) in
      let total = n_accounts * initial in
      let violations = Atomic.make 0 in
      let _ =
        spawn_workers 4 (fun i _tid ->
            let rng = ref (i + 29) in
            let rand m =
              rng := (!rng * 1103515245) + 12345;
              !rng land 0x3FFFFFFF mod m
            in
            for _ = 1 to 1500 do
              if rand 3 = 0 then begin
                let sum =
                  Tm.atomic ~max_attempts:1 (fun txn ->
                      Array.fold_left (fun a v -> a + Tm.read txn v) 0 accounts)
                in
                if sum <> total then Atomic.incr violations
              end
              else
                let a = rand n_accounts and b = rand n_accounts in
                Tm.atomic ~max_attempts:1 (fun txn ->
                    let va = Tm.read txn accounts.(a) in
                    let vb = Tm.read txn accounts.(b) in
                    Tm.write txn accounts.(a) (va - 1);
                    Tm.write txn accounts.(b) (vb + 1))
            done)
      in
      check "no torn snapshot under serial pressure" 0
        (Atomic.get violations);
      let final = Array.fold_left (fun a v -> a + Tm.peek v) 0 accounts in
      check "total conserved" total final)

(* Writer stamps are unique across threads. *)
let test_stamp_uniqueness () =
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      let stamps =
        spawn_workers 4 (fun _ _tid ->
            List.init 500 (fun _ ->
                (Tm.atomic_stamped (fun txn -> Tm.write txn v (Tm.read txn v + 1)))
                  .Tm.stamp))
        |> List.concat
      in
      let sorted = List.sort_uniq compare stamps in
      check "all writer stamps distinct" (List.length stamps)
        (List.length sorted))

(* TM-level serializability: concurrent random read/write transactions on a
   small tvar array, logged with commit stamps, must replay exactly against
   a sequential model in stamp order. *)
let test_concurrent_serializable () =
  with_tm (fun () ->
      let n_vars = 6 in
      let tvars = Array.init n_vars (fun _ -> Tm.tvar 0) in
      let logs =
        spawn_workers 4 (fun w _tid ->
            let rng = ref (w + 91) in
            let rand m =
              rng := (!rng * 1103515245) + 12345;
              !rng land 0x3FFFFFFF mod m
            in
            let log = ref [] in
            for _ = 1 to 1200 do
              let src = rand n_vars and dst = rand n_vars in
              let amount = rand 10 in
              let r =
                Tm.atomic_stamped (fun txn ->
                    let v = Tm.read txn tvars.(src) in
                    if amount mod 3 = 0 then v (* read-only observation *)
                    else begin
                      Tm.write txn tvars.(dst) (v + amount);
                      v + amount
                    end)
              in
              log :=
                (r.Tm.stamp, r.Tm.read_only, src, dst, amount, r.Tm.value)
                :: !log
            done;
            List.rev !log)
      in
      (* replay in stamp order, writers before readers on ties *)
      let all =
        List.concat logs
        |> List.stable_sort (fun (s1, ro1, _, _, _, _) (s2, ro2, _, _, _, _) ->
               match compare s1 s2 with 0 -> compare ro1 ro2 | c -> c)
      in
      let model = Array.make n_vars 0 in
      List.iter
        (fun (_, _, src, dst, amount, value) ->
          if amount mod 3 = 0 then begin
            if model.(src) <> value then
              Alcotest.failf "read-only txn observed %d, model has %d" value
                model.(src)
          end
          else begin
            let expected = model.(src) + amount in
            if expected <> value then
              Alcotest.failf "writer observed %d, model expects %d" value
                expected;
            model.(dst) <- expected
          end)
        all;
      Array.iteri
        (fun i tv -> check (Printf.sprintf "final var %d" i) model.(i) (Tm.peek tv))
        tvars)

(* ---- qcheck: single-threaded sequences against a model ---- *)

let qcheck_model =
  QCheck.Test.make ~name:"tm matches sequential model" ~count:200
    QCheck.(list (pair (int_bound 7) (int_bound 100)))
    (fun ops ->
      Tm.Thread.with_registered (fun _ ->
          let tvars = Array.init 8 (fun _ -> Tm.tvar 0) in
          let model = Array.make 8 0 in
          List.iter
            (fun (i, v) ->
              (* Write v to slot i and add the previous value to slot
                 (i+1) mod 8, transactionally and in the model. *)
              Tm.atomic (fun txn ->
                  let old = Tm.read txn tvars.(i) in
                  Tm.write txn tvars.(i) v;
                  let j = (i + 1) mod 8 in
                  Tm.write txn tvars.(j) (Tm.read txn tvars.(j) + old));
              let old = model.(i) in
              model.(i) <- v;
              let j = (i + 1) mod 8 in
              model.(j) <- model.(j) + old)
            ops;
          Array.for_all2 (fun tv m -> Tm.peek tv = m) tvars model))

let qcheck_stamp_order =
  QCheck.Test.make ~name:"later writers get later stamps" ~count:100
    QCheck.(list_of_size (Gen.return 10) (int_bound 50))
    (fun vs ->
      Tm.Thread.with_registered (fun _ ->
          let v = Tm.tvar 0 in
          let stamps =
            List.map
              (fun x -> (Tm.atomic_stamped (fun txn -> Tm.write txn v x)).Tm.stamp)
              vs
          in
          let rec increasing = function
            | a :: (b :: _ as rest) -> a < b && increasing rest
            | _ -> true
          in
          increasing stamps))

let () =
  Alcotest.run "tm"
    [
      ( "basics",
        [
          Alcotest.test_case "read-write" `Quick test_read_write;
          Alcotest.test_case "read-own-write" `Quick test_read_own_write;
          Alcotest.test_case "write-write" `Quick test_write_write;
          Alcotest.test_case "multiple tvars" `Quick test_multiple_tvars;
          Alcotest.test_case "exception rollback" `Quick
            test_exception_rolls_back;
          Alcotest.test_case "abort retries" `Quick test_abort_retries;
          Alcotest.test_case "defer order" `Quick test_defer_order;
          Alcotest.test_case "serial fallback" `Quick test_serial_fallback;
          Alcotest.test_case "stamps monotone" `Quick test_stamps_monotone;
          Alcotest.test_case "nesting flattens" `Quick test_nested_flattens;
          Alcotest.test_case "poke" `Quick test_poke_bumps_version;
          Alcotest.test_case "opaque snapshot" `Quick test_opaque_snapshot;
          Alcotest.test_case "validate-on-commit" `Quick
            test_validate_on_commit;
        ] );
      ( "extension",
        [
          Alcotest.test_case "rescues stale read" `Quick
            test_extension_rescues_stale_read;
          Alcotest.test_case "fails on true conflict" `Quick
            test_extension_fails_on_true_conflict;
          Alcotest.test_case "read-phase never serial" `Quick
            test_read_phase_never_serial;
          Alcotest.test_case "read-phase writes commit" `Quick
            test_read_phase_writes_commit;
        ] );
      ( "commit path",
        [
          Alcotest.test_case "write-set growth readback" `Quick
            test_wset_growth_readback;
          Alcotest.test_case "overwrite in place" `Quick
            test_wset_overwrite_in_place;
          Alcotest.test_case "filter false positive" `Quick
            test_wfilter_false_positive_falls_through;
          Alcotest.test_case "read-set dedup" `Quick test_rset_dedup;
          Alcotest.test_case "dedup still validated" `Quick
            test_rset_dedup_still_validated;
        ] );
      ( "threads",
        [
          Alcotest.test_case "id recycling" `Quick test_thread_ids_recycled;
          Alcotest.test_case "distinct ids" `Quick test_thread_ids_distinct;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "counter" `Quick test_concurrent_counter;
          Alcotest.test_case "counter (serial pressure)" `Quick
            test_concurrent_counter_serial_pressure;
          Alcotest.test_case "bank invariant" `Quick test_bank_invariant;
          Alcotest.test_case "bank invariant (serial pressure)" `Slow
            test_bank_invariant_serial_pressure;
          Alcotest.test_case "stamp uniqueness" `Quick test_stamp_uniqueness;
          Alcotest.test_case "concurrent serializability" `Slow
            test_concurrent_serializable;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_model;
          QCheck_alcotest.to_alcotest qcheck_stamp_order;
        ] );
    ]
