(* Unit tests for TxSan: each rule id is tripped by a hand-built violating
   event history driven straight through the hook API (no TM, no real data
   structure), and a qcheck property checks that randomly generated *clean*
   histories never trip any rule. The san_smoke executable covers the
   end-to-end half: the same rules caught inside real DST replays. *)

let check_s = Alcotest.(check string)
let check_i = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_san f =
  San.reset ();
  San.set_enabled ~mode:San.Raise true;
  Fun.protect
    ~finally:(fun () ->
      San.set_enabled false;
      San.reset ())
    f

(* Run [f]; it must raise [San.Violation] with the given rule (and site,
   when one is pinned by the scenario rather than synthesized as "?"). *)
let expect ?site rule f =
  match f () with
  | () -> Alcotest.failf "expected a %s violation" (San.rule_id rule)
  | exception San.Violation r ->
      check_s "rule id" (San.rule_id rule) (San.rule_id r.San.rule);
      Option.iter (fun s -> check_s "site label" s r.San.site) site

(* A tiny identity pool: group + dense node ids, one payload tvar and one
   probe (validity-flag) tvar per node, mirroring how Mempool feeds the
   sanitizer. Tvar uids just need to be distinct ints. *)
type ctx = { group : int; mutable clock : int }

let mk_ctx () = { group = San.fresh_group (); clock = 0 }
let tick c = c.clock <- c.clock + 1; c.clock
let key c i = San.node_key ~group:c.group ~node:i
let payload i = (i * 10) + 1
let probe i = (i * 10) + 2

let alloc c ?(thread = 0) i =
  San.mp_alloc ~thread ~node:(key c i) ~tvars:[ payload i ]
    ~probes:[ probe i ] ~stamp:(tick c)

let free c ?(thread = 0) ?(site = "test.free") i =
  San.mp_free ~thread ~site ~node:(key c i) ~stamp:(tick c)

(* A transaction that buffers [ops] and commits: rv is sampled before the
   body, now after it, exactly like the TM hook call sites. *)
let txn c ?(tid = 0) ?(site = "test.commit") ops =
  let rv = c.clock in
  ops ();
  San.tm_commit ~tid ~site ~rv ~now:(tick c)

(* ---- use-after-free ---- *)

let test_uaf_read () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c ~thread:1 ~site:"other.free" 1;
      expect San.Use_after_free ~site:"me.read" (fun () ->
          San.tm_read ~tid:0 ~site:"me.read" ~rv:(tick c) (payload 1)))

let test_uaf_probe_exempt () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c 1;
      (* Probing the validity flag on a freed node is the sanctioned move:
         poison guarantees the read observes the deletion. *)
      San.tm_read ~tid:0 ~site:"me.read" ~rv:(tick c) (probe 1);
      (* ...but the payload of the same freed node is still a violation. *)
      expect San.Use_after_free (fun () ->
          San.tm_read ~tid:0 ~site:"me.read" ~rv:c.clock (payload 1)))

let test_uaf_write () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c 1;
      expect San.Use_after_free ~site:"me.write" (fun () ->
          San.tm_write ~tid:0 ~site:"me.write" ~rv:(tick c) (payload 1)))

let test_uaf_reserve_window () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      (* The reservation is buffered with the transaction; the node is freed
         while the transaction is in flight (rv < freed_stamp <= now), so
         the commit publishes a reservation on dead memory. *)
      expect San.Use_after_free ~site:"me.commit" (fun () ->
          let rv = c.clock in
          San.rr_reserve ~tid:0 ~node:(key c 1);
          free c ~thread:1 1;
          San.tm_commit ~tid:0 ~site:"me.commit" ~rv ~now:(tick c)))

let test_uaf_reserve_before_snapshot_is_quiet () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c 1;
      (* freed_stamp <= rv: the snapshot already saw the free, so the
         reserve-at-commit window check stays quiet (the *read* path is
         what catches stale pointers into pre-snapshot frees). *)
      txn c (fun () -> San.rr_reserve ~tid:0 ~node:(key c 1)));
  ()

let test_uaf_free_under_reservation () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c ~tid:1 (fun () -> San.rr_reserve ~tid:1 ~node:(key c 1));
      (* Thread 1's reservation was never revoked: freeing now is exactly
         the bug revocable reservations exist to prevent. *)
      expect San.Use_after_free ~site:"me.free" (fun () ->
          free c ~thread:0 ~site:"me.free" 1))

let test_revoke_then_free_is_quiet () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c ~tid:1 (fun () -> San.rr_reserve ~tid:1 ~node:(key c 1));
      (* Revocation cancels every thread's reservation before the free. *)
      txn c ~tid:0 (fun () ->
          San.rr_revoke ~tid:0 ~site:"me.remove" ~node:(key c 1));
      free c ~thread:0 1;
      San.window_finish ~tid:1)

(* ---- unchecked-carry ---- *)

let carry_handoff c ~tid i =
  txn c ~tid (fun () -> San.rr_reserve ~tid ~node:(key c i));
  San.window_handoff ~tid

let test_carry_unchecked_read () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      carry_handoff c ~tid:0 1;
      expect San.Unchecked_carry ~site:"me.read" (fun () ->
          San.tm_read ~tid:0 ~site:"me.read" ~rv:(tick c) (payload 1)))

let test_carry_checked_read_is_quiet () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      carry_handoff c ~tid:0 1;
      (* Reads *inside* the RR check are the check: exempt. *)
      San.rr_check_begin ~tid:0;
      San.tm_read ~tid:0 ~site:"me.check" ~rv:(tick c) (payload 1);
      San.rr_check_end ~tid:0 ~site:"me.check" ~node:(key c 1) ~ok:true;
      (* After a successful check the carry is legitimate. *)
      San.tm_read ~tid:0 ~site:"me.read" ~rv:(tick c) (payload 1);
      txn c (fun () -> San.rr_release_all ~tid:0);
      San.window_finish ~tid:0)

let test_carry_failed_check_restart_is_quiet () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      alloc c 2;
      carry_handoff c ~tid:0 1;
      (* A failed check means restart-from-head: the carried pointer is
         dropped and the thread may read other nodes freely. *)
      San.rr_check_begin ~tid:0;
      San.rr_check_end ~tid:0 ~site:"me.check" ~node:(key c 1) ~ok:false;
      San.tm_read ~tid:0 ~site:"me.read" ~rv:(tick c) (payload 2))

let test_carry_recycled_across_handoff () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      carry_handoff c ~tid:0 1;
      (* The carried node is revoked, freed, and recycled between hand-off
         and check; the check "succeeds" against the impostor. Buffered with
         the transaction, delivered at its commit. *)
      txn c ~tid:1 (fun () ->
          San.rr_revoke ~tid:1 ~site:"other.remove" ~node:(key c 1));
      free c ~thread:1 1;
      alloc c ~thread:1 1;
      expect San.Use_after_free ~site:"me.check" (fun () ->
          txn c (fun () ->
              San.rr_check_begin ~tid:0;
              San.rr_check_end ~tid:0 ~site:"me.check" ~node:(key c 1)
                ~ok:true)))

let test_hint_stale_use () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c (fun () -> San.hint_note ~tid:0 ~node:(key c 1));
      (* The hinted node is recycled; dereferencing the hint without
         revalidation is DESIGN.md bug #3 in miniature. *)
      free c ~thread:1 1;
      alloc c ~thread:1 1;
      expect San.Unchecked_carry ~site:"me.hint" (fun () ->
          San.hint_use ~tid:0 ~site:"me.hint" ~node:(key c 1)
            ~revalidated:false))

let test_hint_revalidated_is_quiet () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c (fun () -> San.hint_note ~tid:0 ~node:(key c 1));
      free c ~thread:1 1;
      alloc c ~thread:1 1;
      San.hint_use ~tid:0 ~site:"me.hint" ~node:(key c 1) ~revalidated:true;
      (* A hint that is still at its noted generation needs no excuse. *)
      txn c (fun () -> San.hint_note ~tid:0 ~node:(key c 1));
      San.hint_use ~tid:0 ~site:"me.hint" ~node:(key c 1) ~revalidated:false)

(* ---- reservation-leak ---- *)

let test_reservation_leak_on_finish () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c (fun () -> San.rr_reserve ~tid:0 ~node:(key c 1));
      expect San.Reservation_leak (fun () -> San.window_finish ~tid:0))

let test_release_then_finish_is_quiet () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      alloc c 2;
      txn c (fun () ->
          San.rr_reserve ~tid:0 ~node:(key c 1);
          San.rr_reserve ~tid:0 ~node:(key c 2));
      txn c (fun () -> San.rr_release ~tid:0 ~node:(key c 1));
      txn c (fun () -> San.rr_release_all ~tid:0);
      San.window_finish ~tid:0)

let test_aborted_reserve_is_discarded () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      (* The reserving transaction aborts: the buffered reservation must
         die with it, so the window finishes clean. *)
      San.rr_reserve ~tid:0 ~node:(key c 1);
      San.tm_abort ~tid:0;
      San.window_finish ~tid:0)

let test_thread_exit_leak_is_counted_not_raised () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c (fun () -> San.rr_reserve ~tid:0 ~node:(key c 1));
      (* thread_exit runs in finalizers: it must never raise, only count. *)
      San.thread_exit ~tid:0;
      check_i "leak counted" 1
        (List.assoc (San.rule_id San.Reservation_leak) (San.violations ()));
      match San.last_report () with
      | Some r ->
          check_s "rule id" (San.rule_id San.Reservation_leak)
            (San.rule_id r.San.rule)
      | None -> Alcotest.fail "expected a last report")

(* ---- lock-leak ---- *)

let test_lock_leak_at_commit () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.tm_lock ~tid:0 (payload 1);
      expect San.Lock_leak ~site:"me.commit" (fun () ->
          San.tm_commit ~tid:0 ~site:"me.commit" ~rv:c.clock ~now:(tick c)))

let test_lock_leak_at_abort () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.tm_lock ~tid:0 (payload 1);
      expect San.Lock_leak (fun () -> San.tm_abort ~tid:0))

let test_lock_unlock_is_quiet () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.tm_lock ~tid:0 (payload 1);
      San.tm_unlock ~tid:0 ~site:"me.commit" ~wv:(tick c) (payload 1);
      txn c (fun () -> ());
      (* Abort-path release (wv = -1) must also balance the books. *)
      San.tm_lock ~tid:0 (payload 1);
      San.tm_unlock ~tid:0 ~site:"me.abort" ~wv:(-1) (payload 1);
      San.tm_abort ~tid:0)

(* The middle-path lock shares the rule: a release without a matching
   acquire fires immediately, an acquire never released fires (counted,
   not raised) when the thread exits, and the balanced bracket is quiet
   even across nested acquisitions of different structures' locks. *)
let test_middle_release_without_acquire () =
  with_san (fun () ->
      expect San.Lock_leak ~site:"me.middle" (fun () ->
          San.middle_release ~tid:0 ~site:"me.middle"))

let test_middle_leak_at_thread_exit () =
  with_san (fun () ->
      San.middle_acquire ~tid:0;
      San.thread_exit ~tid:0;
      check_i "leak counted" 1
        (List.assoc (San.rule_id San.Lock_leak) (San.violations ())))

let test_middle_bracket_is_quiet () =
  with_san (fun () ->
      San.middle_acquire ~tid:0;
      San.middle_acquire ~tid:0;
      San.middle_release ~tid:0 ~site:"a.commit";
      San.middle_release ~tid:0 ~site:"b.commit";
      San.thread_exit ~tid:0)

(* ---- double-revoke ---- *)

let test_double_revoke () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c (fun () -> San.rr_revoke ~tid:0 ~site:"me.remove" ~node:(key c 1));
      expect San.Double_revoke ~site:"me.remove" (fun () ->
          txn c (fun () ->
              San.rr_revoke ~tid:0 ~site:"me.remove" ~node:(key c 1))))

let test_revoke_after_free () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c 1;
      expect San.Double_revoke ~site:"me.remove" (fun () ->
          txn c (fun () ->
              San.rr_revoke ~tid:0 ~site:"me.remove" ~node:(key c 1))))

let test_double_retire () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.retire ~thread:0 ~site:"me.remove" ~node:(key c 1);
      expect San.Double_revoke ~site:"me.remove" (fun () ->
          San.retire ~thread:0 ~site:"me.remove" ~node:(key c 1)))

let test_retire_after_free () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c 1;
      expect San.Double_revoke (fun () ->
          San.retire ~thread:0 ~site:"me.remove" ~node:(key c 1)))

let test_realloc_resets_retire_and_revoke () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      txn c (fun () -> San.rr_revoke ~tid:0 ~site:"a" ~node:(key c 1));
      San.retire ~thread:0 ~site:"a" ~node:(key c 1);
      free c 1;
      alloc c 1;
      (* A recycled slot starts a fresh revoke/retire cycle. *)
      txn c (fun () -> San.rr_revoke ~tid:0 ~site:"b" ~node:(key c 1));
      San.retire ~thread:0 ~site:"b" ~node:(key c 1))

(* ---- non-txn-access ---- *)

let test_nontxn_write_under_lock () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.tm_lock ~tid:2 (payload 1);
      expect San.Non_txn_access (fun () -> San.nontxn_write (payload 1));
      San.tm_unlock ~tid:2 ~site:"other.commit" ~wv:(tick c) (payload 1))

let test_nontxn_exempt_bracket () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.tm_lock ~tid:2 (payload 1);
      (* Pool-internal pokes (poison, re-init) run inside the bracket. *)
      San.exempt_begin ();
      San.nontxn_write (payload 1);
      San.exempt_end ();
      San.tm_unlock ~tid:2 ~site:"other.commit" ~wv:(tick c) (payload 1);
      San.nontxn_write (payload 1))

let test_nontxn_uaf () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c 1;
      expect San.Use_after_free (fun () -> San.nontxn_read (payload 1)))

(* ---- stale-read ---- *)

let test_stale_read_straddles_serial () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.tm_serial_begin ~tid:0 ~wv:10;
      expect San.Stale_read ~site:"me.read" (fun () ->
          San.tm_read ~tid:1 ~site:"me.read" ~rv:12 (payload 1));
      San.tm_serial_end ~tid:0)

let test_stale_read_negatives () =
  with_san (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      San.tm_serial_begin ~tid:0 ~wv:10;
      (* The serial writer reading its own stores is fine... *)
      San.tm_read ~tid:0 ~site:"me.read" ~rv:12 (payload 1);
      (* ...and a snapshot taken before the serial window opened cannot
         observe its half-published stores. *)
      San.tm_read ~tid:1 ~site:"me.read" ~rv:9 (payload 1);
      San.tm_serial_end ~tid:0;
      San.tm_read ~tid:1 ~site:"me.read" ~rv:12 (payload 1))

(* ---- Count mode ---- *)

let test_count_mode () =
  San.reset ();
  San.set_enabled ~mode:San.Count true;
  Fun.protect
    ~finally:(fun () ->
      San.set_enabled false;
      San.reset ())
    (fun () ->
      let c = mk_ctx () in
      alloc c 1;
      free c 1;
      (* No raise: benchmark workers must survive their own violations. *)
      San.tm_read ~tid:0 ~site:"me.read" ~rv:(tick c) (payload 1);
      San.tm_lock ~tid:0 (payload 1);
      San.tm_commit ~tid:0 ~site:"me.commit" ~rv:c.clock ~now:(tick c);
      check_i "uaf counted" 1
        (List.assoc (San.rule_id San.Use_after_free) (San.violations ()));
      check_i "lock leak counted" 1
        (List.assoc (San.rule_id San.Lock_leak) (San.violations ()));
      check_i "total" 2 (San.total_violations ());
      checkb "every rule listed" true
        (List.length (San.violations ()) = List.length San.all_rules))

(* ---- clean histories never trip (qcheck) ----

   Commands are interpreted against a tiny model that follows the
   discipline: reads target live nodes, frees happen only after every
   reservation was revoked or released, hints are revalidated when stale,
   windows finish with empty reservation sets. Any randomly chosen command
   that the model says would be a violation is skipped, so the resulting
   history is clean by construction — and TxSan must agree. *)

type cmd =
  | C_alloc of int
  | C_free of int
  | C_read of int
  | C_reserve of int
  | C_release of int
  | C_release_all
  | C_revoke of int
  | C_retire of int
  | C_finish
  | C_lock_txn of int
  | C_hint of int

let n_slots = 4

let gen_cmds =
  let open QCheck.Gen in
  let slot = int_bound (n_slots - 1) in
  let cmd =
    frequency
      [
        (3, map (fun i -> C_alloc i) slot);
        (2, map (fun i -> C_free i) slot);
        (4, map (fun i -> C_read i) slot);
        (3, map (fun i -> C_reserve i) slot);
        (2, map (fun i -> C_release i) slot);
        (1, return C_release_all);
        (2, map (fun i -> C_revoke i) slot);
        (1, map (fun i -> C_retire i) slot);
        (2, return C_finish);
        (1, map (fun i -> C_lock_txn i) slot);
        (2, map (fun i -> C_hint i) slot);
      ]
  in
  list_size (int_range 10 120) cmd

let run_clean_history cmds =
  let c = mk_ctx () in
  let live = Array.make n_slots false in
  let retired = Array.make n_slots false in
  let revoked = Array.make n_slots false in
  let reserved = ref [] in
  List.iter
    (fun cmd ->
      match cmd with
      | C_alloc i ->
          if not live.(i) then begin
            alloc c i;
            live.(i) <- true;
            retired.(i) <- false;
            revoked.(i) <- false
          end
      | C_free i ->
          if live.(i) && not (List.mem i !reserved) then begin
            free c i;
            live.(i) <- false
          end
      | C_read i ->
          if live.(i) then
            San.tm_read ~tid:0 ~site:"prop.read" ~rv:c.clock (payload i)
      | C_reserve i ->
          if live.(i) then begin
            txn c (fun () -> San.rr_reserve ~tid:0 ~node:(key c i));
            if not (List.mem i !reserved) then reserved := i :: !reserved
          end
      | C_release i ->
          if List.mem i !reserved then begin
            txn c (fun () -> San.rr_release ~tid:0 ~node:(key c i));
            reserved := List.filter (fun j -> j <> i) !reserved
          end
      | C_release_all ->
          txn c (fun () -> San.rr_release_all ~tid:0);
          reserved := []
      | C_revoke i ->
          if live.(i) && not revoked.(i) then begin
            txn c (fun () ->
                San.rr_revoke ~tid:0 ~site:"prop.revoke" ~node:(key c i));
            revoked.(i) <- true;
            (* Revocation strips the node from every reservation set. *)
            reserved := List.filter (fun j -> j <> i) !reserved
          end
      | C_retire i ->
          if live.(i) && not retired.(i) then begin
            San.retire ~thread:0 ~site:"prop.retire" ~node:(key c i);
            retired.(i) <- true
          end
      | C_finish ->
          if !reserved = [] then San.window_finish ~tid:0
      | C_lock_txn i ->
          if live.(i) then begin
            San.tm_lock ~tid:0 (payload i);
            San.tm_unlock ~tid:0 ~site:"prop.commit" ~wv:(tick c) (payload i);
            txn c (fun () -> ())
          end
      | C_hint i ->
          if live.(i) then begin
            txn c (fun () -> San.hint_note ~tid:0 ~node:(key c i));
            San.hint_use ~tid:0 ~site:"prop.hint" ~node:(key c i)
              ~revalidated:false
          end)
    cmds;
  txn c (fun () -> San.rr_release_all ~tid:0);
  San.window_finish ~tid:0

let qcheck_clean_history =
  QCheck.Test.make ~name:"clean histories never trip TxSan" ~count:300
    (QCheck.make gen_cmds) (fun cmds ->
      San.reset ();
      San.set_enabled ~mode:San.Raise true;
      Fun.protect
        ~finally:(fun () ->
          San.set_enabled false;
          San.reset ())
        (fun () ->
          run_clean_history cmds;
          San.total_violations () = 0))

let () =
  Alcotest.run "san"
    [
      ( "use-after-free",
        [
          Alcotest.test_case "txn read of freed slot" `Quick test_uaf_read;
          Alcotest.test_case "probe tvar is exempt" `Quick
            test_uaf_probe_exempt;
          Alcotest.test_case "txn write to freed slot" `Quick test_uaf_write;
          Alcotest.test_case "reserve committed over a free" `Quick
            test_uaf_reserve_window;
          Alcotest.test_case "reserve after pre-snapshot free is quiet"
            `Quick test_uaf_reserve_before_snapshot_is_quiet;
          Alcotest.test_case "free under live reservation" `Quick
            test_uaf_free_under_reservation;
          Alcotest.test_case "revoke-then-free is quiet" `Quick
            test_revoke_then_free_is_quiet;
          Alcotest.test_case "raw read of freed slot" `Quick test_nontxn_uaf;
        ] );
      ( "unchecked-carry",
        [
          Alcotest.test_case "carry read before check" `Quick
            test_carry_unchecked_read;
          Alcotest.test_case "checked carry is quiet" `Quick
            test_carry_checked_read_is_quiet;
          Alcotest.test_case "failed check restarts clean" `Quick
            test_carry_failed_check_restart_is_quiet;
          Alcotest.test_case "carry recycled across hand-off" `Quick
            test_carry_recycled_across_handoff;
          Alcotest.test_case "stale hint dereferenced" `Quick
            test_hint_stale_use;
          Alcotest.test_case "revalidated hint is quiet" `Quick
            test_hint_revalidated_is_quiet;
        ] );
      ( "reservation-leak",
        [
          Alcotest.test_case "finish with live reservation" `Quick
            test_reservation_leak_on_finish;
          Alcotest.test_case "released window is quiet" `Quick
            test_release_then_finish_is_quiet;
          Alcotest.test_case "aborted reserve is discarded" `Quick
            test_aborted_reserve_is_discarded;
          Alcotest.test_case "thread exit counts, never raises" `Quick
            test_thread_exit_leak_is_counted_not_raised;
        ] );
      ( "lock-leak",
        [
          Alcotest.test_case "held lock at commit" `Quick
            test_lock_leak_at_commit;
          Alcotest.test_case "held lock at abort" `Quick
            test_lock_leak_at_abort;
          Alcotest.test_case "balanced lock/unlock is quiet" `Quick
            test_lock_unlock_is_quiet;
          Alcotest.test_case "middle release without acquire" `Quick
            test_middle_release_without_acquire;
          Alcotest.test_case "middle lock held at thread exit" `Quick
            test_middle_leak_at_thread_exit;
          Alcotest.test_case "balanced middle bracket is quiet" `Quick
            test_middle_bracket_is_quiet;
        ] );
      ( "double-revoke",
        [
          Alcotest.test_case "revoked twice" `Quick test_double_revoke;
          Alcotest.test_case "revoke after free" `Quick
            test_revoke_after_free;
          Alcotest.test_case "retired twice" `Quick test_double_retire;
          Alcotest.test_case "retire after free" `Quick
            test_retire_after_free;
          Alcotest.test_case "realloc resets the cycle" `Quick
            test_realloc_resets_retire_and_revoke;
        ] );
      ( "non-txn-access",
        [
          Alcotest.test_case "raw poke under version lock" `Quick
            test_nontxn_write_under_lock;
          Alcotest.test_case "exempt bracket" `Quick
            test_nontxn_exempt_bracket;
        ] );
      ( "stale-read",
        [
          Alcotest.test_case "snapshot straddles serial writer" `Quick
            test_stale_read_straddles_serial;
          Alcotest.test_case "negatives" `Quick test_stale_read_negatives;
        ] );
      ( "modes",
        [
          Alcotest.test_case "count mode accumulates" `Quick test_count_mode;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_clean_history ] );
    ]
