(* Tests for the explicit pool allocator (precise-reclamation substrate). *)

type obj = { id : int; state : int Atomic.t; mutable payload : int }

let make_pool ?strategy ?batch ?magazines () =
  Mempool.create ?strategy ?batch ?magazines
    ~make:(fun id -> { id; state = Atomic.make 0; payload = 0 })
    ~node_id:(fun o -> o.id)
    ~state:(fun o -> o.state)
    ~poison:(fun o -> o.payload <- -1)
    ()

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_alloc_free_reuse () =
  let p = make_pool ~strategy:Mempool.Size_class () in
  let a = Mempool.alloc p ~thread:0 in
  a.payload <- 42;
  checkb "live after alloc" true (Mempool.is_live p a);
  Mempool.free p ~thread:0 a;
  checkb "not live after free" false (Mempool.is_live p a);
  check "poisoned" (-1) a.payload;
  let b = Mempool.alloc p ~thread:0 in
  checkb "immediate reuse (precise reclamation)" true (a == b);
  check "same id across reuse" a.id b.id

let test_unique_ids () =
  let p = make_pool () in
  let objs = List.init 100 (fun _ -> Mempool.alloc p ~thread:0) in
  let ids = List.sort_uniq compare (List.map (fun o -> o.id) objs) in
  check "all ids distinct" 100 (List.length ids)

let test_double_free () =
  let p = make_pool () in
  let a = Mempool.alloc p ~thread:0 in
  Mempool.free p ~thread:0 a;
  Alcotest.check_raises "double free detected" (Mempool.Double_free a.id)
    (fun () -> Mempool.free p ~thread:0 a)

let test_free_unallocated () =
  let p = make_pool () in
  let a = Mempool.alloc p ~thread:0 in
  Mempool.free p ~thread:0 a;
  (* freeing a fabricated-but-never-allocated node: simulate via reuse *)
  let b = Mempool.alloc p ~thread:0 in
  Mempool.free p ~thread:0 b;
  Alcotest.check_raises "free of free node" (Mempool.Double_free b.id)
    (fun () -> Mempool.free p ~thread:0 b)

let test_stats_accounting () =
  let p = make_pool ~strategy:Mempool.Thread_arena () in
  let objs = List.init 50 (fun _ -> Mempool.alloc p ~thread:0) in
  List.iteri (fun i o -> if i < 30 then Mempool.free p ~thread:0 o) objs;
  let st = Mempool.stats p in
  check "allocs" 50 st.Mempool.Stats.allocs;
  check "frees" 30 st.Mempool.Stats.frees;
  check "live" 20 st.Mempool.Stats.live;
  check "fresh" 50 st.Mempool.Stats.fresh;
  checkb "high water >= live" true (st.Mempool.Stats.high_water >= 20)

let test_high_water () =
  let p = make_pool () in
  let objs = List.init 10 (fun _ -> Mempool.alloc p ~thread:0) in
  List.iter (Mempool.free p ~thread:0) objs;
  let o = Mempool.alloc p ~thread:0 in
  ignore o;
  let st = Mempool.stats p in
  check "high water is the peak" 10 st.Mempool.Stats.high_water;
  check "live now" 1 st.Mempool.Stats.live

let test_size_class_hits_global () =
  let p = make_pool ~strategy:Mempool.Size_class () in
  let a = Mempool.alloc p ~thread:0 in
  Mempool.free p ~thread:0 a;
  ignore (Mempool.alloc p ~thread:1);
  let st = Mempool.stats p in
  (* every alloc/free touches the shared list under size-class *)
  checkb "global ops counted" true (st.Mempool.Stats.global_ops >= 3)

let test_thread_arena_local () =
  let p = make_pool ~strategy:Mempool.Thread_arena ~batch:64 () in
  let a = Mempool.alloc p ~thread:0 in
  Mempool.free p ~thread:0 a;
  let g0 = (Mempool.stats p).Mempool.Stats.global_ops in
  let b = Mempool.alloc p ~thread:0 in
  checkb "arena returns local node" true (a == b);
  let g1 = (Mempool.stats p).Mempool.Stats.global_ops in
  check "local reuse avoids the global freelist" g0 g1

let test_arena_spill_and_steal () =
  let p = make_pool ~strategy:Mempool.Thread_arena ~batch:4 () in
  (* thread 0 frees enough to spill a batch to the global stack *)
  let objs = List.init 16 (fun _ -> Mempool.alloc p ~thread:0) in
  List.iter (Mempool.free p ~thread:0) objs;
  (* thread 1 should be able to reuse spilled nodes *)
  let got = List.init 4 (fun _ -> Mempool.alloc p ~thread:1) in
  let reused = List.filter (fun o -> List.memq o objs) got in
  checkb "cross-thread reuse via batches" true (List.length reused > 0)

let test_flush_arenas () =
  let p = make_pool ~strategy:Mempool.Thread_arena () in
  let a = Mempool.alloc p ~thread:2 in
  Mempool.free p ~thread:2 a;
  Mempool.flush_arenas p;
  (* after flush, another thread can see it through the global list *)
  let b = Mempool.alloc p ~thread:3 in
  checkb "flushed node reusable elsewhere" true (a == b)

(* ---- magazines ---- *)

let test_magazine_hit_miss () =
  let p =
    make_pool ~strategy:Mempool.Thread_arena ~batch:4 ~magazines:true ()
  in
  (* Both magazines and the depot are empty: the first alloc is a miss
     that falls through to the strategy path. *)
  let a = Mempool.alloc p ~thread:0 in
  check "first alloc misses" 1 (Mempool.stats p).Mempool.Stats.magazine_misses;
  (* The free caches the node thread-locally: a hit... *)
  Mempool.free p ~thread:0 a;
  check "free hits the magazine" 1
    (Mempool.stats p).Mempool.Stats.magazine_hits;
  (* ...and the re-alloc serves it back without touching shared state. *)
  let g0 = (Mempool.stats p).Mempool.Stats.global_ops in
  let b = Mempool.alloc p ~thread:0 in
  checkb "magazine returns the cached node" true (a == b);
  let st = Mempool.stats p in
  check "alloc hit" 2 st.Mempool.Stats.magazine_hits;
  check "hot path avoids the shared freelist" g0 st.Mempool.Stats.global_ops;
  check "exact live accounting" 1 st.Mempool.Stats.live

let test_magazine_two_magazine_rotation () =
  let p =
    make_pool ~strategy:Mempool.Thread_arena ~batch:2 ~magazines:true ()
  in
  let objs = List.init 5 (fun _ -> Mempool.alloc p ~thread:0) in
  List.iter (Mempool.free p ~thread:0) objs;
  (* batch 2: two frees fill [loaded], the third rotates it to [prev], the
     fourth fills again, and only the fifth spills a full magazine to the
     depot — one miss on the free path, never one per node. *)
  let st = Mempool.stats p in
  check "frees" 5 st.Mempool.Stats.frees;
  check "four cached frees" 4 st.Mempool.Stats.magazine_hits;
  (* 5 allocs against empty caches + 1 spill *)
  check "misses = cold allocs + one spill" 6 st.Mempool.Stats.magazine_misses;
  check "nothing live" 0 st.Mempool.Stats.live

let test_drain_on_quiescence () =
  let p =
    make_pool ~strategy:Mempool.Thread_arena ~batch:8 ~magazines:true ()
  in
  let a = Mempool.alloc p ~thread:0 in
  Mempool.free p ~thread:0 a;
  (* While cached, the slot is invisible to other threads. *)
  let b = Mempool.alloc p ~thread:1 in
  checkb "cached node is thread-private" true (a != b);
  Mempool.free p ~thread:1 b;
  let g0 = (Mempool.stats p).Mempool.Stats.global_ops in
  Mempool.drain_magazines p ~thread:0;
  Mempool.drain_magazines p ~thread:1;
  let g1 = (Mempool.stats p).Mempool.Stats.global_ops in
  check "drains honestly counted as global ops" (g0 + 2) g1;
  (* After the quiescence drain, any thread can reuse the slots. *)
  let c = Mempool.alloc p ~thread:2 in
  checkb "drained node visible cross-thread" true (c == a || c == b);
  let st = Mempool.stats p in
  check "allocs" 3 st.Mempool.Stats.allocs;
  check "frees" 2 st.Mempool.Stats.frees;
  check "live" 1 st.Mempool.Stats.live;
  (* Draining an empty magazine is a free no-op. *)
  Mempool.drain_magazines p ~thread:3;
  check "empty drain costs nothing" g1
    ((Mempool.stats p).Mempool.Stats.global_ops - 1)

let test_flush_arenas_covers_magazines () =
  let p =
    make_pool ~strategy:Mempool.Size_class ~batch:4 ~magazines:true ()
  in
  let a = Mempool.alloc p ~thread:2 in
  Mempool.free p ~thread:2 a;
  Mempool.flush_arenas p;
  let b = Mempool.alloc p ~thread:3 in
  checkb "magazine-held node reusable after flush" true (a == b)

let test_concurrent_balance () =
  Tm.Thread.with_registered (fun _ ->
      let p = make_pool ~strategy:Mempool.Thread_arena ~batch:8 () in
      let workers =
        List.init 4 (fun i ->
            Domain.spawn (fun () ->
                Tm.Thread.with_registered (fun tid ->
                    let held = ref [] in
                    let rng = ref (i + 5) in
                    let rand m =
                      rng := (!rng * 1103515245) + 12345;
                      !rng land 0x3FFFFFFF mod m
                    in
                    for _ = 1 to 5000 do
                      if rand 2 = 0 || !held = [] then
                        held := Mempool.alloc p ~thread:tid :: !held
                      else
                        match !held with
                        | o :: rest ->
                            Mempool.free p ~thread:tid o;
                            held := rest
                        | [] -> ()
                    done;
                    List.iter (Mempool.free p ~thread:tid) !held)))
      in
      List.iter Domain.join workers;
      let st = Mempool.stats p in
      Alcotest.(check int) "all returned" 0 st.Mempool.Stats.live;
      Alcotest.(check int) "allocs = frees" st.Mempool.Stats.allocs
        st.Mempool.Stats.frees)

let qcheck_accounting =
  QCheck.Test.make ~name:"live = allocs - frees" ~count:100
    QCheck.(list (int_bound 1))
    (fun ops ->
      let p = make_pool () in
      let held = ref [] in
      let allocs = ref 0 and frees = ref 0 in
      List.iter
        (fun op ->
          if op = 0 || !held = [] then begin
            held := Mempool.alloc p ~thread:0 :: !held;
            incr allocs
          end
          else
            match !held with
            | o :: rest ->
                Mempool.free p ~thread:0 o;
                incr frees;
                held := rest
            | [] -> ())
        ops;
      let st = Mempool.stats p in
      st.Mempool.Stats.live = !allocs - !frees
      && st.Mempool.Stats.allocs = !allocs
      && st.Mempool.Stats.frees = !frees)

let () =
  Alcotest.run "mempool"
    [
      ( "basics",
        [
          Alcotest.test_case "alloc-free-reuse" `Quick test_alloc_free_reuse;
          Alcotest.test_case "unique ids" `Quick test_unique_ids;
          Alcotest.test_case "double free" `Quick test_double_free;
          Alcotest.test_case "free of free" `Quick test_free_unallocated;
          Alcotest.test_case "stats" `Quick test_stats_accounting;
          Alcotest.test_case "high water" `Quick test_high_water;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "size-class global traffic" `Quick
            test_size_class_hits_global;
          Alcotest.test_case "arena locality" `Quick test_thread_arena_local;
          Alcotest.test_case "arena spill/steal" `Quick
            test_arena_spill_and_steal;
          Alcotest.test_case "flush" `Quick test_flush_arenas;
        ] );
      ( "magazines",
        [
          Alcotest.test_case "hit/miss accounting" `Quick test_magazine_hit_miss;
          Alcotest.test_case "two-magazine rotation" `Quick
            test_magazine_two_magazine_rotation;
          Alcotest.test_case "drain on quiescence" `Quick
            test_drain_on_quiescence;
          Alcotest.test_case "flush covers magazines" `Quick
            test_flush_arenas_covers_magazines;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "balance" `Quick test_concurrent_balance ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_accounting ]);
    ]
