(* Tests for the benchmark harness: workload generation, the serialization
   checker itself, the driver, and reporting. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

open Harness

(* ---- workload ---- *)

let test_workload_determinism () =
  let spec =
    Workload.spec ~key_bits:8 ~lookup_pct:33 ~threads:2 ~ops_per_thread:100 ()
  in
  let draw () =
    let rng = Workload.Rng.create ~seed:spec.Workload.seed ~thread:1 in
    List.init 100 (fun _ -> Workload.next_op rng spec)
  in
  checkb "same seed, same stream" true (draw () = draw ());
  let rng2 = Workload.Rng.create ~seed:spec.Workload.seed ~thread:2 in
  let other = List.init 100 (fun _ -> Workload.next_op rng2 spec) in
  checkb "different thread, different stream" true (other <> draw ())

let test_workload_key_range () =
  let spec =
    Workload.spec ~key_bits:6 ~lookup_pct:0 ~threads:1 ~ops_per_thread:1 ()
  in
  check "range" 64 (Workload.key_range spec);
  let rng = Workload.Rng.create ~seed:1 ~thread:0 in
  for _ = 1 to 1000 do
    let _, k = Workload.next_op rng spec in
    checkb "key within range" true (k >= 1 && k <= 64)
  done

let test_workload_mix () =
  let spec =
    Workload.spec ~key_bits:10 ~lookup_pct:80 ~threads:1 ~ops_per_thread:1 ()
  in
  let rng = Workload.Rng.create ~seed:3 ~thread:0 in
  let counts = Hashtbl.create 3 in
  let bump k =
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  in
  for _ = 1 to 10000 do
    let op, _ = Workload.next_op rng spec in
    bump op
  done;
  (* The stream is fully determined by the pinned seed, so assert the
     exact draw counts rather than a tolerance band: any change to the
     generator shows up as a precise diff instead of an occasional
     borderline failure. The mix matches the requested 80/10/10 split. *)
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  check "lookups for seed 3" 8000 (get Workload.Lookup);
  check "inserts for seed 3" 1040 (get Workload.Insert);
  check "removes for seed 3" 960 (get Workload.Remove)

let test_prefill () =
  let spec =
    Workload.spec ~key_bits:8 ~lookup_pct:0 ~threads:1 ~ops_per_thread:1 ()
  in
  let keys = Workload.prefill_keys spec in
  check "about half the range" 128 (List.length keys);
  check "distinct" 128 (List.length (List.sort_uniq compare keys));
  List.iter (fun k -> checkb "in range" true (k >= 1 && k <= 256)) keys

let test_invalid_specs () =
  let bad f = match f () with _ -> false | exception Invalid_argument _ -> true in
  checkb "key_bits" true
    (bad (fun () ->
         Workload.spec ~key_bits:0 ~lookup_pct:0 ~threads:1 ~ops_per_thread:1 ()));
  checkb "lookup_pct" true
    (bad (fun () ->
         Workload.spec ~key_bits:4 ~lookup_pct:101 ~threads:1 ~ops_per_thread:1 ()));
  checkb "threads" true
    (bad (fun () ->
         Workload.spec ~key_bits:4 ~lookup_pct:0 ~threads:0 ~ops_per_thread:1 ()))

(* ---- the serialization checker itself ---- *)

let entry ?earliest op key result stamp =
  {
    Serial_check.op;
    key;
    result;
    earliest = Option.value ~default:stamp earliest;
    stamp;
  }

let test_checker_accepts_valid () =
  let log =
    [|
      entry Workload.Insert 1 true 10;
      entry Workload.Lookup 1 true 11;
      entry Workload.Remove 1 true 12;
      entry Workload.Lookup 1 false 13;
      entry Workload.Insert 1 true 14;
    |]
  in
  checkb "valid history accepted" true
    (Serial_check.check ~initial:[] [ log ] = Ok ())

let test_checker_initial_contents () =
  let log = [| entry Workload.Lookup 5 true 1; entry Workload.Remove 5 true 2 |] in
  checkb "prefilled key visible" true
    (Serial_check.check ~initial:[ 5 ] [ log ] = Ok ())

let test_checker_rejects_lost_insert () =
  let log =
    [| entry Workload.Insert 1 true 10; entry Workload.Lookup 1 false 11 |]
  in
  checkb "lost insert detected" true
    (Serial_check.check ~initial:[] [ log ] <> Ok ())

let test_checker_rejects_double_insert () =
  let log =
    [| entry Workload.Insert 1 true 10; entry Workload.Insert 1 true 11 |]
  in
  checkb "double insert detected" true
    (Serial_check.check ~initial:[] [ log ] <> Ok ())

let test_checker_merges_threads_by_stamp () =
  let t1 = [| entry Workload.Insert 1 true 10; entry Workload.Lookup 1 false 30 |] in
  let t2 = [| entry Workload.Remove 1 true 20 |] in
  checkb "cross-thread order derived from stamps" true
    (Serial_check.check ~initial:[] [ t1; t2 ] = Ok ())

let test_checker_reader_after_writer_at_tie () =
  (* reader with stamp = writer's stamp saw that writer's effect *)
  let t1 = [| entry Workload.Insert 1 true 10 |] in
  let t2 = [| entry Workload.Lookup 1 true 10 |] in
  checkb "tie: reader placed after writer" true
    (Serial_check.check ~initial:[] [ t1; t2 ] = Ok ())

let test_checker_flex_remove () =
  (* remove-false with an interval (earliest < stamp) is accepted iff the
     key was absent somewhere inside the interval *)
  let valid =
    [
      [| entry Workload.Remove 1 true 15 |];
      [| entry ~earliest:10 Workload.Remove 1 false 30 |];
      [| entry Workload.Insert 1 true 20 |];
    ]
  in
  checkb "absence inside interval accepted" true
    (Serial_check.check ~initial:[ 1 ] valid = Ok ());
  let invalid =
    [
      [| entry ~earliest:10 Workload.Remove 1 false 30 |];
      (* key present the whole time: last insert before the interval *)
    ]
  in
  checkb "no absence in interval rejected" true
    (Serial_check.check ~initial:[ 1 ] invalid <> Ok ());
  let point =
    [ [| entry Workload.Remove 1 false 30 |] ]
  in
  checkb "point remove-false with key present rejected" true
    (Serial_check.check ~initial:[ 1 ] point <> Ok ())

(* Fuzz the checker: generate a random valid history from a model run,
   check it passes; then corrupt one entry and check it is rejected. *)
let gen_history =
  QCheck.Gen.(
    list_size (int_range 5 60)
      (pair (int_bound 2) (pair (int_bound 7) bool)))

let build_valid_history ops =
  let model = Hashtbl.create 16 in
  let stamp = ref 0 in
  List.map
    (fun (op, (key, _)) ->
      incr stamp;
      let present = Hashtbl.mem model key in
      match op with
      | 0 ->
          if not present then Hashtbl.replace model key ();
          entry Workload.Insert key (not present) !stamp
      | 1 ->
          if present then Hashtbl.remove model key;
          entry Workload.Remove key present !stamp
      | _ -> entry Workload.Lookup key present !stamp)
    ops

let qcheck_checker_fuzz =
  QCheck.Test.make ~name:"checker accepts valid, rejects corrupted" ~count:200
    (QCheck.make gen_history)
    (fun ops ->
      let history = build_valid_history ops in
      let ok = Serial_check.check ~initial:[] [ Array.of_list history ] = Ok () in
      let rejects_corruption =
        match history with
        | [] -> true
        | first :: rest ->
            let corrupted = { first with result = not first.Serial_check.result } in
            (* flipping the first op's result always breaks the history *)
            Serial_check.check ~initial:[] [ Array.of_list (corrupted :: rest) ]
            <> Ok ()
      in
      ok && rejects_corruption)

(* ---- driver end-to-end ---- *)

let test_driver_end_to_end () =
  Tm.Thread.with_registered (fun _ ->
      let spec =
        Workload.spec ~key_bits:6 ~lookup_pct:33 ~threads:2
          ~ops_per_thread:1000 ()
      in
      let h =
        (Factories.make
           (Factories.Spec.v ~window:4 Factories.Spec.Slist
              (Structs.Mode.Rr_kind (module Rr.V))))
          .Factories.make ()
      in
      let r = Driver.run spec h in
      checkb "verdict ok" true (r.Driver.verdict = Ok ());
      check "ops counted" 2000 r.Driver.total_ops;
      checkb "throughput positive" true (r.Driver.throughput > 0.);
      checkb "abort rate sane" true
        (Driver.abort_rate r >= 0. && Driver.abort_rate r < 1.))

(* Serializability must survive the commit-path fast paths: with
   max_attempts = 0 every window transaction goes straight to the serial
   fallback, so this run exercises watermark quiescence (only registered
   ids are polled) and read-set dedup together on every operation, and
   the stamp-order checker must still accept the history. *)
let test_driver_serial_pressure () =
  Tm.Thread.with_registered (fun _ ->
      let spec =
        Workload.spec ~key_bits:5 ~lookup_pct:20 ~threads:4
          ~ops_per_thread:400 ()
      in
      let h =
        (Factories.make
           (Factories.Spec.v ~window:2 ~max_attempts:0 Factories.Spec.Slist
              (Structs.Mode.Rr_kind (module Rr.V))))
          .Factories.make ()
      in
      let r = Driver.run spec h in
      checkb "serializable under serial pressure" true
        (r.Driver.verdict = Ok ());
      checkb "fallbacks actually exercised" true
        (Tm.Stats.fallbacks r.Driver.tm > 0))

let test_driver_catches_bugs () =
  (* a deliberately broken store: get always reports Absent. Wrapping an
     existing packed store in a new module is the Store_intf way to
     interpose on single operations. *)
  Tm.Thread.with_registered (fun _ ->
      let inner =
        (Factories.make (Factories.Spec.v Factories.Spec.Slist Structs.Mode.Htm))
          .Factories.make ()
      in
      let module Broken = struct
        type t = Store.t

        let name _ = "broken"
        let stamped = Store.stamped

        let get st ~thread key =
          let r = Store.get st ~thread key in
          { r with Store.outcome = Store.Absent }

        let insert = Store.insert
        let remove = Store.remove
        let scan st ~thread ~low ~count = Store.scan st ~thread ~low ~count
        let batch st ~thread ~fuse ops = Store.batch ~fuse st ~thread ops
        let stats = Store.stats
        let finalize_thread = Store.finalize_thread
        let drain = Store.drain
        let size = Store.size
        let contents = Store.contents
        let check = Store.check
        let pool_live = Store.pool_live
        let max_backlog = Store.max_backlog
        let leaked = Store.leaked
      end in
      let broken = Store.pack (module Broken) inner in
      let spec =
        Workload.spec ~key_bits:4 ~lookup_pct:50 ~threads:2
          ~ops_per_thread:300 ()
      in
      let r = Driver.run spec broken in
      checkb "broken implementation rejected" true (r.Driver.verdict <> Ok ()))

(* ---- raw-speed spec knobs ---- *)

let opt_spec ?fusion ?middle ?magazines () =
  Factories.Spec.v ?fusion ?middle ?magazines Factories.Spec.Slist
    (Structs.Mode.Rr_kind (module Rr.V))

let test_spec_opt_labels () =
  let label s = Factories.Spec.label s in
  let base = label (opt_spec ()) in
  Alcotest.(check string)
    "all three knobs suffix in order"
    (base ^ "+fuse4+mid+mag")
    (label (opt_spec ~fusion:4 ~middle:true ~magazines:true ()));
  Alcotest.(check string)
    "fusion 1 is the off state" base
    (label (opt_spec ~fusion:1 ()));
  Alcotest.(check string)
    "explicit off knobs leave the label alone" base
    (label (opt_spec ~middle:false ~magazines:false ()));
  Alcotest.(check string)
    "single knob" (base ^ "+mid")
    (label (opt_spec ~middle:true ()))

let test_spec_opt_json_roundtrip () =
  let s = opt_spec ~fusion:4 ~middle:true ~magazines:true () in
  let j = Factories.Spec.to_json s in
  (match Factories.Spec.of_json j with
  | Error e -> Alcotest.failf "of_json rejected its own to_json: %s" e
  | Ok s' ->
      checkb "round trip is lossless" true
        (Telemetry.Json.equal j (Factories.Spec.to_json s'));
      Alcotest.(check string)
        "label survives" (Factories.Spec.label s) (Factories.Spec.label s'));
  (* a tampered label must be caught against the recomputed one *)
  let tampered =
    match j with
    | Telemetry.Json.Obj kvs ->
        Telemetry.Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "label" then (k, Telemetry.Json.String "RR-V+fuse2")
               else (k, v))
             kvs)
    | _ -> Alcotest.fail "to_json is not an object"
  in
  checkb "mismatched optimization label rejected" true
    (Result.is_error (Factories.Spec.of_json tampered))

let test_spec_opt_validation () =
  checkb "fusion < 1 rejected" true
    (match opt_spec ~fusion:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* The knobs must reach the structures: driver runs with all three on
   must stay serializable. Beyond the plain list this sweeps the
   structures whose window protocols publish state through [Tm.defer]
   (the dlist two-phase remove, the skiplist resume hint) — fused
   windows must treat those as fusion barriers, or the next window runs
   against pre-commit state (a real bug this test caught). *)
let test_driver_all_optimizations_on () =
  Tm.Thread.with_registered (fun _ ->
      let spec =
        Workload.spec ~key_bits:6 ~lookup_pct:33 ~threads:2
          ~ops_per_thread:1000 ()
      in
      List.iter
        (fun structure ->
          let h =
            (Factories.make
               (Factories.Spec.v ~fusion:4 ~middle:true ~magazines:true
                  structure
                  (Structs.Mode.Rr_kind (module Rr.V))))
              .Factories.make ()
          in
          let r = Driver.run spec h in
          checkb
            (Factories.Spec.structure_name structure
            ^ " serializable with fuse+mid+mag")
            true
            (r.Driver.verdict = Ok ());
          check "ops counted" 2000 r.Driver.total_ops)
        [
          Factories.Spec.Slist; Factories.Spec.Dlist; Factories.Spec.Skiplist;
          Factories.Spec.Hashset;
        ])

(* ---- reporting ---- *)

let test_report_csv () =
  let series =
    [
      { Report.label = "A"; points = [ (1, 10.); (2, 20.) ] };
      { Report.label = "B"; points = [ (1, 5.) ] };
    ]
  in
  let dir = Filename.temp_file "hohtx" "" in
  Sys.remove dir;
  let path = Report.save_csv ~dir ~name:"t" ~xlabel:"threads" series in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  Alcotest.(check (list string))
    "csv contents"
    [ "threads,A,B"; "1,10.0,5.0"; "2,20.0," ]
    (List.rev !lines)

let () =
  Alcotest.run "harness"
    [
      ( "workload",
        [
          Alcotest.test_case "determinism" `Quick test_workload_determinism;
          Alcotest.test_case "key range" `Quick test_workload_key_range;
          Alcotest.test_case "mix" `Quick test_workload_mix;
          Alcotest.test_case "prefill" `Quick test_prefill;
          Alcotest.test_case "invalid specs" `Quick test_invalid_specs;
        ] );
      ( "serialization checker",
        [
          Alcotest.test_case "accepts valid" `Quick test_checker_accepts_valid;
          Alcotest.test_case "initial contents" `Quick
            test_checker_initial_contents;
          Alcotest.test_case "rejects lost insert" `Quick
            test_checker_rejects_lost_insert;
          Alcotest.test_case "rejects double insert" `Quick
            test_checker_rejects_double_insert;
          Alcotest.test_case "merges threads" `Quick
            test_checker_merges_threads_by_stamp;
          Alcotest.test_case "reader-writer ties" `Quick
            test_checker_reader_after_writer_at_tie;
          Alcotest.test_case "interval remove" `Quick test_checker_flex_remove;
        ] );
      ( "checker-fuzz", [ QCheck_alcotest.to_alcotest qcheck_checker_fuzz ] );
      ( "driver",
        [
          Alcotest.test_case "end to end" `Slow test_driver_end_to_end;
          Alcotest.test_case "serial pressure" `Slow
            test_driver_serial_pressure;
          Alcotest.test_case "catches bugs" `Slow test_driver_catches_bugs;
        ] );
      ( "spec knobs",
        [
          Alcotest.test_case "labels" `Quick test_spec_opt_labels;
          Alcotest.test_case "json round trip" `Quick
            test_spec_opt_json_roundtrip;
          Alcotest.test_case "validation" `Quick test_spec_opt_validation;
          Alcotest.test_case "all-on driver run" `Slow
            test_driver_all_optimizations_on;
        ] );
      ("report", [ Alcotest.test_case "csv" `Quick test_report_csv ]);
    ]
