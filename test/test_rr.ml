(* Tests for the six revocable-reservation implementations against the
   paper's Listing-1 specification, plus the hand-over-hand engine. *)

let checkb = Alcotest.(check bool)
let check_opt = Alcotest.(check (option int))

let impls = Rr.all

let strict_impls =
  List.filter
    (fun (_, m) ->
      let module M = (val m : Rr.S) in
      M.strict)
    impls

let relaxed_impls =
  List.filter
    (fun (_, m) ->
      let module M = (val m : Rr.S) in
      not M.strict)
    impls

(* Instantiate an implementation over [int] references. With the identity
   hash and distinct small references there are no collisions, so even the
   relaxed implementations should match the sequential specification
   exactly in single-thread use. *)
let make ?config ?(hash = fun (r : int) -> r) m =
  Rr.instantiate m ?config ~hash ~equal:Int.equal ()

let in_txn f = Tm.atomic (fun txn -> f txn)

let seq_case name m f =
  Alcotest.test_case name `Quick (fun () ->
      Tm.Thread.with_registered (fun _ -> f m))

(* ---- single-thread behaviour, every implementation ---- *)

let test_reserve_get_release m =
  let rr = make m in
  in_txn (fun txn ->
      rr.Rr.register txn;
      check_opt "empty" None (rr.Rr.get txn 5);
      rr.Rr.reserve txn 5;
      check_opt "reserved" (Some 5) (rr.Rr.get txn 5);
      check_opt "other ref absent" None (rr.Rr.get txn 6);
      rr.Rr.release txn 5;
      check_opt "released" None (rr.Rr.get txn 5))

let test_persists_across_txns m =
  let rr = make m in
  in_txn (fun txn ->
      rr.Rr.register txn;
      rr.Rr.reserve txn 9);
  in_txn (fun txn -> check_opt "survives commit" (Some 9) (rr.Rr.get txn 9))

let test_rollback_on_abort m =
  let rr = make m in
  let attempt = ref 0 in
  Tm.atomic ~max_attempts:10 (fun txn ->
      rr.Rr.register txn;
      incr attempt;
      rr.Rr.reserve txn 3;
      if !attempt = 1 then raise (Tm.Abort Tm.Read_invalid));
  in_txn (fun txn ->
      check_opt "reservation from committed attempt" (Some 3) (rr.Rr.get txn 3));
  (try
     Tm.atomic (fun txn ->
         rr.Rr.release txn 3;
         failwith "user abort")
   with Failure _ -> ());
  in_txn (fun txn ->
      check_opt "release rolled back with its txn" (Some 3) (rr.Rr.get txn 3))

let test_revoke_self m =
  let rr = make m in
  in_txn (fun txn ->
      rr.Rr.register txn;
      rr.Rr.reserve txn 7);
  in_txn (fun txn -> rr.Rr.revoke txn 7);
  in_txn (fun txn -> check_opt "revoked" None (rr.Rr.get txn 7))

let test_reserve_idempotent m =
  let rr = make m in
  in_txn (fun txn ->
      rr.Rr.register txn;
      rr.Rr.reserve txn 4;
      rr.Rr.reserve txn 4;
      check_opt "still reserved" (Some 4) (rr.Rr.get txn 4));
  in_txn (fun txn ->
      rr.Rr.release txn 4;
      check_opt "one release suffices" None (rr.Rr.get txn 4))

let test_capacity m =
  let rr = make m in
  in_txn (fun txn ->
      rr.Rr.register txn;
      rr.Rr.reserve txn 1;
      (* default capacity is one reservation per thread, as in the paper *)
      checkb "full set rejected" true
        (match rr.Rr.reserve txn 2 with
        | () -> false
        | exception Invalid_argument _ -> true))

let test_multi_slot m =
  let config = { Rr.Config.default with slots_per_thread = 3 } in
  let rr = make ~config m in
  in_txn (fun txn ->
      rr.Rr.register txn;
      rr.Rr.reserve txn 1;
      rr.Rr.reserve txn 2;
      rr.Rr.reserve txn 3;
      check_opt "slot 1" (Some 1) (rr.Rr.get txn 1);
      check_opt "slot 2" (Some 2) (rr.Rr.get txn 2);
      check_opt "slot 3" (Some 3) (rr.Rr.get txn 3));
  in_txn (fun txn -> rr.Rr.revoke txn 2);
  in_txn (fun txn ->
      check_opt "1 untouched" (Some 1) (rr.Rr.get txn 1);
      check_opt "2 revoked" None (rr.Rr.get txn 2);
      check_opt "3 untouched" (Some 3) (rr.Rr.get txn 3);
      rr.Rr.release_all txn);
  in_txn (fun txn ->
      check_opt "released all" None (rr.Rr.get txn 1);
      check_opt "released all" None (rr.Rr.get txn 3))

let test_release_absent_noop m =
  let rr = make m in
  in_txn (fun txn ->
      rr.Rr.register txn;
      rr.Rr.release txn 42;
      rr.Rr.release_all txn;
      check_opt "still empty" None (rr.Rr.get txn 42))

(* ---- cross-thread behaviour ---- *)

let test_per_thread_sets m =
  Test_util.Worker.with_workers 2 (fun ws ->
      let w1 = List.nth ws 0 and w2 = List.nth ws 1 in
      let rr = make m in
      Test_util.Worker.run w1 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 8));
      let seen_by_2 =
        Test_util.Worker.run w2 (fun () ->
            in_txn (fun txn ->
                rr.Rr.register txn;
                rr.Rr.get txn 8))
      in
      check_opt "sets are per-thread" None seen_by_2;
      let seen_by_1 =
        Test_util.Worker.run w1 (fun () -> in_txn (fun txn -> rr.Rr.get txn 8))
      in
      check_opt "owner still holds" (Some 8) seen_by_1)

let test_cross_thread_revoke m =
  Test_util.Worker.with_workers 2 (fun ws ->
      let w1 = List.nth ws 0 and w2 = List.nth ws 1 in
      let rr = make m in
      Test_util.Worker.run w1 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 11));
      Test_util.Worker.run w2 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.revoke txn 11));
      let seen =
        Test_util.Worker.run w1 (fun () -> in_txn (fun txn -> rr.Rr.get txn 11))
      in
      check_opt "revoked by another thread" None seen)

(* Strict implementations guarantee no spurious invalidation even when all
   references hash to the same bucket. *)
let test_strict_no_spurious m =
  Test_util.Worker.with_workers 2 (fun ws ->
      let w1 = List.nth ws 0 and w2 = List.nth ws 1 in
      let rr = make ~hash:(fun _ -> 0) m in
      Test_util.Worker.run w1 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 1));
      Test_util.Worker.run w2 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 2));
      Test_util.Worker.run w2 (fun () -> in_txn (fun txn -> rr.Rr.revoke txn 2));
      let seen =
        Test_util.Worker.run w1 (fun () -> in_txn (fun txn -> rr.Rr.get txn 1))
      in
      check_opt "strict: unrelated colliding ops do not invalidate" (Some 1)
        seen)

(* Relaxed implementations may drop reservations spuriously but must never
   return a reference that was actually revoked. *)
let test_relaxed_sound_under_collision m =
  Test_util.Worker.with_workers 2 (fun ws ->
      let w1 = List.nth ws 0 and w2 = List.nth ws 1 in
      let rr = make ~hash:(fun _ -> 0) m in
      Test_util.Worker.run w1 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 1));
      Test_util.Worker.run w2 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.revoke txn 1));
      let seen =
        Test_util.Worker.run w1 (fun () -> in_txn (fun txn -> rr.Rr.get txn 1))
      in
      check_opt "actually-revoked is never returned" None seen)

let test_xo_exclusive () =
  Test_util.Worker.with_workers 2 (fun ws ->
      let w1 = List.nth ws 0 and w2 = List.nth ws 1 in
      let rr = make (module Rr.Xo : Rr.S) in
      Test_util.Worker.run w1 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 5));
      Test_util.Worker.run w2 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 5));
      let w1_sees =
        Test_util.Worker.run w1 (fun () -> in_txn (fun txn -> rr.Rr.get txn 5))
      in
      let w2_sees =
        Test_util.Worker.run w2 (fun () -> in_txn (fun txn -> rr.Rr.get txn 5))
      in
      check_opt "second reserver steals exclusive ownership" None w1_sees;
      check_opt "latest reserver holds" (Some 5) w2_sees)

let test_so_shared () =
  Test_util.Worker.with_workers 2 (fun ws ->
      let w1 = List.nth ws 0 and w2 = List.nth ws 1 in
      (* one way per possible thread id: sharing always succeeds *)
      let config = { Rr.Config.default with assoc = Tm.Thread.max_threads } in
      let rr = make ~config (module Rr.So : Rr.S) in
      Test_util.Worker.run w1 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 5));
      Test_util.Worker.run w2 (fun () ->
          in_txn (fun txn ->
              rr.Rr.register txn;
              rr.Rr.reserve txn 5));
      let w1_sees =
        Test_util.Worker.run w1 (fun () -> in_txn (fun txn -> rr.Rr.get txn 5))
      in
      check_opt "shared ownership tolerates a second reserver" (Some 5) w1_sees;
      Test_util.Worker.run w2 (fun () -> in_txn (fun txn -> rr.Rr.revoke txn 5));
      let w1_after =
        Test_util.Worker.run w1 (fun () -> in_txn (fun txn -> rr.Rr.get txn 5))
      in
      check_opt "revoke reaches every way" None w1_after)

let test_v_concurrent_holders () =
  Test_util.Worker.with_workers 2 (fun ws ->
      let rr = make (module Rr.V : Rr.S) in
      List.iter
        (fun w ->
          Test_util.Worker.run w (fun () ->
              in_txn (fun txn ->
                  rr.Rr.register txn;
                  rr.Rr.reserve txn 5)))
        ws;
      let both =
        List.map
          (fun w ->
            Test_util.Worker.run w (fun () ->
                in_txn (fun txn -> rr.Rr.get txn 5)))
          ws
      in
      Alcotest.(check (list (option int)))
        "any number of threads may hold the same reference"
        [ Some 5; Some 5 ] both)

(* ---- model-based property: exact conformance to Listing 1 ---- *)

type spec_op = Reserve of int | Release of int | Get of int | Revoke of int

let gen_ops =
  let open QCheck.Gen in
  let ref_ = int_bound 4 in
  list_size (int_bound 40)
    (oneof
       [
         map (fun r -> Reserve r) ref_;
         map (fun r -> Release r) ref_;
         map (fun r -> Get r) ref_;
         map (fun r -> Revoke r) ref_;
       ])

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Reserve r -> Printf.sprintf "res %d" r
         | Release r -> Printf.sprintf "rel %d" r
         | Get r -> Printf.sprintf "get %d" r
         | Revoke r -> Printf.sprintf "rev %d" r)
       ops)

let qcheck_spec_conformance ?(config = { Rr.Config.default with slots_per_thread = 5 })
    ?(suffix = "") (name, m) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s matches Listing 1 (single thread)%s" name suffix)
    ~count:150
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      Tm.Thread.with_registered (fun tid ->
          let rr = make ~config m in
          let model = Rr.Spec_model.create ~equal:Int.equal () in
          List.for_all
            (fun op ->
              Tm.atomic (fun txn ->
                  rr.Rr.register txn;
                  match op with
                  | Reserve r ->
                      rr.Rr.reserve txn r;
                      Rr.Spec_model.reserve model ~thread:tid r;
                      true
                  | Release r ->
                      rr.Rr.release txn r;
                      Rr.Spec_model.release model ~thread:tid r;
                      true
                  | Revoke r ->
                      rr.Rr.revoke txn r;
                      Rr.Spec_model.revoke model r;
                      true
                  | Get r ->
                      rr.Rr.get txn r = Rr.Spec_model.get model ~thread:tid r))
            ops))

(* ---- concurrent model-based stress ----

   Workers run random Reserve/Release/Get/Revoke operations, each in its
   own stamped transaction; afterwards the log is replayed in commit-stamp
   order against the Listing-1 model. Strict implementations must agree
   with the model on every Get; relaxed implementations may spuriously
   return None but must never return a reference the model says the thread
   does not hold. *)

type stress_entry = {
  s_thread : int;
  s_op : spec_op;
  s_got : int option;  (* Get result; meaningless for other ops *)
  s_stamp : int;
  s_writer : bool;
}

let concurrent_stress_test (name, m) =
  Alcotest.test_case (name ^ " concurrent spec stress") `Slow (fun () ->
      Tm.Thread.with_registered (fun _ ->
          let config = { Rr.Config.default with slots_per_thread = 3 } in
          let rr = make ~config m in
          let n_workers = 4 in
          let barrier = Atomic.make n_workers in
          let worker w () =
            Tm.Thread.with_registered (fun tid ->
                let rng = Test_util.Prng.create (w * 77) in
                Atomic.decr barrier;
                while Atomic.get barrier > 0 do
                  Domain.cpu_relax ()
                done;
                let log = ref [] in
                for _ = 1 to 1500 do
                  let r = Test_util.Prng.int rng 6 in
                  let op =
                    match Test_util.Prng.int rng 8 with
                    | 0 | 1 -> Reserve r
                    | 2 -> Release r
                    | 3 -> Revoke r
                    | _ -> Get r
                  in
                  let res =
                    Tm.atomic_stamped (fun txn ->
                        rr.Rr.register txn;
                        match op with
                        | Reserve r -> (
                            (* the set may be full: empty it and retry,
                               mirrored in the model replay below *)
                            match rr.Rr.reserve txn r with
                            | () -> (None, true)
                            | exception Invalid_argument _ ->
                                rr.Rr.release_all txn;
                                rr.Rr.reserve txn r;
                                (None, true))
                        | Release r ->
                            rr.Rr.release txn r;
                            (None, true)
                        | Revoke r ->
                            rr.Rr.revoke txn r;
                            (None, true)
                        | Get r -> (rr.Rr.get txn r, false))
                  in
                  let got, writer_intent = res.Tm.value in
                  log :=
                    {
                      s_thread = tid;
                      s_op = op;
                      s_got = got;
                      s_stamp = res.Tm.stamp;
                      s_writer = writer_intent && not res.Tm.read_only;
                    }
                    :: !log
                done;
                List.rev !log)
          in
          let logs =
            List.init n_workers (fun w -> Domain.spawn (worker w))
            |> List.map Domain.join
          in
          (* NB: reserve-when-full released the whole set first; model that
             by replaying release_all before the reserve. We conservatively
             re-run the same decision: the model's set size tells us whether
             the implementation would have overflowed. *)
          let all =
            List.concat logs
            |> List.stable_sort (fun a b ->
                   match compare a.s_stamp b.s_stamp with
                   | 0 -> compare b.s_writer a.s_writer
                   | c -> c)
          in
          let module M = (val m : Rr.S) in
          let model = Rr.Spec_model.create ~equal:Int.equal () in
          List.iter
            (fun e ->
              match e.s_op with
              | Reserve r ->
                  if
                    Rr.Spec_model.get model ~thread:e.s_thread r = None
                    && Rr.Spec_model.count model ~thread:e.s_thread >= 3
                  then Rr.Spec_model.release_all model ~thread:e.s_thread;
                  Rr.Spec_model.reserve model ~thread:e.s_thread r
              | Release r -> Rr.Spec_model.release model ~thread:e.s_thread r
              | Revoke r -> Rr.Spec_model.revoke model r
              | Get r ->
                  let expected = Rr.Spec_model.get model ~thread:e.s_thread r in
                  if M.strict then begin
                    if e.s_got <> expected then
                      Alcotest.failf
                        "%s: strict get %d at stamp %d returned %s, model                          says %s"
                        name r e.s_stamp
                        (match e.s_got with
                        | Some v -> string_of_int v
                        | None -> "nil")
                        (match expected with
                        | Some v -> string_of_int v
                        | None -> "nil")
                  end
                  else if e.s_got <> None && e.s_got <> expected then
                    Alcotest.failf
                      "%s: relaxed get %d at stamp %d returned a reference                        the model does not hold"
                      name r e.s_stamp)
            all))

(* ---- the hand-over-hand engine ---- *)

let test_hoh_single_finish () =
  Tm.Thread.with_registered (fun _ ->
      let rr = make (module Rr.Fa : Rr.S) in
      let calls = ref 0 in
      let v, stamp =
        Rr.Hoh.apply_stamped ~rr (fun _txn ~start ->
            incr calls;
            checkb "first txn starts fresh" true (start = None);
            Rr.Hoh.Finish 42)
      in
      Alcotest.(check int) "value" 42 v;
      Alcotest.(check int) "one transaction" 1 !calls;
      checkb "stamp set" true (stamp >= 0))

let test_hoh_chain () =
  Tm.Thread.with_registered (fun _ ->
      let rr = make (module Rr.Fa : Rr.S) in
      let starts = ref [] in
      let v =
        Rr.Hoh.apply ~rr (fun _txn ~start ->
            starts := start :: !starts;
            match start with
            | None -> Rr.Hoh.Hand_off 1
            | Some 1 -> Rr.Hoh.Hand_off 2
            | Some 2 -> Rr.Hoh.Hand_off 3
            | Some n -> Rr.Hoh.Finish n)
      in
      Alcotest.(check int) "chained to the end" 3 v;
      Alcotest.(check (list (option int)))
        "each window resumes from its reservation"
        [ None; Some 1; Some 2; Some 3 ]
        (List.rev !starts);
      in_txn (fun txn ->
          check_opt "released at finish" None (rr.Rr.get txn 3)))

let test_hoh_revoked_resume () =
  Test_util.Worker.with_workers 1 (fun ws ->
      let w2 = List.nth ws 0 in
      Tm.Thread.with_registered (fun _ ->
          let rr = make (module Rr.Fa : Rr.S) in
          let revoked_once = ref false in
          let v =
            Rr.Hoh.apply ~rr (fun _txn ~start ->
                match start with
                | None when not !revoked_once -> Rr.Hoh.Hand_off 1
                | Some 1 ->
                    if not !revoked_once then begin
                      (* revoke from another thread, then hand off again:
                         the next window must find its reservation gone *)
                      Test_util.Worker.run w2 (fun () ->
                          in_txn (fun txn ->
                              rr.Rr.register txn;
                              rr.Rr.revoke txn 1));
                      revoked_once := true;
                      Rr.Hoh.Hand_off 1
                    end
                    else Rr.Hoh.Finish (-1)
                | None -> Rr.Hoh.Finish 99 (* restart detected *)
                | Some _ -> Rr.Hoh.Finish (-2))
          in
          Alcotest.(check int) "restarted from scratch after revoke" 99 v))

let test_window_scatter () =
  let w = Rr.Hoh.Window.create ~scatter:true 8 in
  Alcotest.(check int) "size" 8 (Rr.Hoh.Window.size w);
  for _ = 1 to 100 do
    let b = Rr.Hoh.Window.first_budget w ~thread:3 in
    checkb "scattered budget in [1..W]" true (b >= 1 && b <= 8)
  done;
  let seen = Hashtbl.create 8 in
  for _ = 1 to 200 do
    Hashtbl.replace seen (Rr.Hoh.Window.first_budget w ~thread:0) ()
  done;
  checkb "budgets vary" true (Hashtbl.length seen > 1)

let test_window_no_scatter () =
  let w = Rr.Hoh.Window.create ~scatter:false 8 in
  for t = 0 to 3 do
    Alcotest.(check int) "always W" 8 (Rr.Hoh.Window.first_budget w ~thread:t)
  done

let test_window_invalid () =
  Alcotest.check_raises "w must be positive"
    (Invalid_argument "Hoh.Window.create: w < 1") (fun () ->
      ignore (Rr.Hoh.Window.create 0))

let test_window_adaptive () =
  let module W = Rr.Hoh.Window in
  let w = W.create ~adaptive:true 8 in
  checkb "adaptive flag" true (W.adaptive w);
  Alcotest.(check int) "static size unchanged" 8 (W.size w);
  Alcotest.(check int) "starts at w" 8 (W.budget w ~thread:0);
  (* MIMD: clean windows double the live budget, up to 4w. *)
  W.record w ~thread:0 ~contended:false;
  Alcotest.(check int) "doubles on clean" 16 (W.budget w ~thread:0);
  W.record w ~thread:0 ~contended:false;
  W.record w ~thread:0 ~contended:false;
  Alcotest.(check int) "capped at 4w" 32 (W.budget w ~thread:0);
  (* ...and contended windows halve it, down to 1. *)
  W.record w ~thread:0 ~contended:true;
  Alcotest.(check int) "halves on contention" 16 (W.budget w ~thread:0);
  for _ = 1 to 10 do
    W.record w ~thread:0 ~contended:true
  done;
  Alcotest.(check int) "floored at 1" 1 (W.budget w ~thread:0);
  (* Controllers are per-thread. *)
  Alcotest.(check int) "other threads unaffected" 8 (W.budget w ~thread:1);
  (* First-window scatter follows the live budget. *)
  W.record w ~thread:2 ~contended:false;
  for _ = 1 to 50 do
    let b = W.first_budget w ~thread:2 in
    checkb "scatter within live budget" true (b >= 1 && b <= 16)
  done;
  (* A non-adaptive window ignores feedback. *)
  let s = W.create ~scatter:false 8 in
  checkb "not adaptive by default" false (W.adaptive s);
  W.record s ~thread:0 ~contended:false;
  Alcotest.(check int) "static budget fixed" 8 (W.budget s ~thread:0)

let test_spec_model () =
  let m = Rr.Spec_model.create ~equal:Int.equal () in
  Rr.Spec_model.reserve m ~thread:0 1;
  Rr.Spec_model.reserve m ~thread:1 1;
  Alcotest.(check (option int))
    "t0 holds" (Some 1)
    (Rr.Spec_model.get m ~thread:0 1);
  Rr.Spec_model.release m ~thread:0 1;
  Alcotest.(check (option int))
    "t0 released" None
    (Rr.Spec_model.get m ~thread:0 1);
  Alcotest.(check (option int))
    "t1 unaffected" (Some 1)
    (Rr.Spec_model.get m ~thread:1 1);
  Rr.Spec_model.revoke m 1;
  Alcotest.(check (option int))
    "revoke clears everyone" None
    (Rr.Spec_model.get m ~thread:1 1);
  Alcotest.(check int) "count" 0 (Rr.Spec_model.count m ~thread:1)

let () =
  let per_impl name f =
    List.map (fun (iname, m) -> seq_case (iname ^ " " ^ name) m f) impls
  in
  Alcotest.run "rr"
    [
      ("reserve-get-release", per_impl "basic" test_reserve_get_release);
      ("persistence", per_impl "across txns" test_persists_across_txns);
      ("rollback", per_impl "abort rollback" test_rollback_on_abort);
      ("revoke", per_impl "self revoke" test_revoke_self);
      ("idempotence", per_impl "reserve twice" test_reserve_idempotent);
      ("capacity", per_impl "full set" test_capacity);
      ("multi-slot", per_impl "K=3" test_multi_slot);
      ("lenient-release", per_impl "absent release" test_release_absent_noop);
      ( "cross-thread",
        List.concat
          [
            List.map
              (fun (n, m) ->
                seq_case (n ^ " per-thread") m test_per_thread_sets)
              impls;
            List.map
              (fun (n, m) ->
                seq_case (n ^ " cross revoke") m test_cross_thread_revoke)
              impls;
            List.map
              (fun (n, m) ->
                seq_case (n ^ " no spurious under collision") m
                  test_strict_no_spurious)
              strict_impls;
            List.map
              (fun (n, m) ->
                seq_case (n ^ " sound under collision") m
                  test_relaxed_sound_under_collision)
              relaxed_impls;
          ] );
      ( "specifics",
        [
          Alcotest.test_case "RR-XO exclusivity" `Quick test_xo_exclusive;
          Alcotest.test_case "RR-SO sharing" `Quick test_so_shared;
          Alcotest.test_case "RR-V concurrent holders" `Quick
            test_v_concurrent_holders;
        ] );
      ( "engine",
        [
          Alcotest.test_case "single finish" `Quick test_hoh_single_finish;
          Alcotest.test_case "hand-off chain" `Quick test_hoh_chain;
          Alcotest.test_case "revoked resume" `Quick test_hoh_revoked_resume;
          Alcotest.test_case "window scatter" `Quick test_window_scatter;
          Alcotest.test_case "window fixed" `Quick test_window_no_scatter;
          Alcotest.test_case "window invalid" `Quick test_window_invalid;
          Alcotest.test_case "window adaptive" `Quick test_window_adaptive;
          Alcotest.test_case "spec model" `Quick test_spec_model;
        ] );
      ( "properties",
        List.map
          (fun im -> QCheck_alcotest.to_alcotest (qcheck_spec_conformance im))
          impls
        @ [
            (* the paper's lazy bucket-unlink optimization must not change
               RR-DM/RR-SA semantics *)
            QCheck_alcotest.to_alcotest
              (qcheck_spec_conformance ~suffix:" [lazy unlink]"
                 ~config:
                   {
                     Rr.Config.default with
                     slots_per_thread = 5;
                     dm_eager_unlink = false;
                   }
                 ("RR-DM", (module Rr.Dm : Rr.S)));
            QCheck_alcotest.to_alcotest
              (qcheck_spec_conformance ~suffix:" [lazy unlink]"
                 ~config:
                   {
                     Rr.Config.default with
                     slots_per_thread = 5;
                     dm_eager_unlink = false;
                   }
                 ("RR-SA", (module Rr.Sa : Rr.S)));
          ] );
      ("concurrent-stress", List.map concurrent_stress_test impls);
    ]
