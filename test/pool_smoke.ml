(* Fast push-gate for the worker-pool layer.

   Three checks, all cheap enough for every push:

   1. Determinism: a seeded script of submissions and explicit drains
      against a spawnless pool replays to the identical outcome trace,
      counters and final contents — the queue, fusion and cache layers
      add no hidden nondeterminism when driven single-threaded.
   2. Serializability: two client domains pipeline async submissions
      through real worker domains (hot cache on) and log every reply at
      its commit stamp; the merged history must replay against the
      sequential set model. Cached hits log the stamp of the lookup that
      populated them, so a stale hit would surface as a model divergence.
   3. Accounting: after shutdown (which runs each worker's thread
      finalizer) and a full drain, live pool slots equal the surviving
      contents and nothing has leaked. *)

open Harness

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let spec () =
  Factories.Spec.v ~window:4 ~scatter:false ~shards:2 ~fuse:true ~pool:true
    ~hotcache:true Factories.Spec.Slist
    (Structs.Mode.Rr_kind (module Rr.V))

(* ---- 1. spawnless determinism ---- *)

let spawnless_trace seed =
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~pool_spawn:false (spec ()) in
  let rng = Random.State.make [| seed |] in
  let buf = Buffer.create 1024 in
  Tm.Thread.with_registered (fun thread ->
      let redeem t =
        let rec go () =
          match Service.try_await svc t with
          | Some rs -> rs
          | None ->
              ignore (Service.pool_step svc ~shard:0 ~thread);
              ignore (Service.pool_step svc ~shard:1 ~thread);
              go ()
        in
        go ()
      in
      let pending = Queue.create () in
      for _ = 1 to 400 do
        let key = 1 + Random.State.int rng 32 in
        let op =
          match Random.State.int rng 10 with
          | 0 | 1 | 2 -> Store.Insert key
          | 3 | 4 -> Store.Remove key
          | _ -> Store.Get key
        in
        Queue.add (Service.submit svc ~thread [| op |]) pending;
        (* interleave explicit drains, seed-determined *)
        if Random.State.int rng 3 = 0 then
          ignore (Service.pool_step svc ~shard:(Random.State.int rng 2) ~thread);
        if Queue.length pending >= 6 then
          Array.iter
            (fun (r : Store.reply) ->
              Buffer.add_string buf
                (match r.Store.outcome with
                | Store.Inserted -> "i"
                | Store.Duplicate -> "d"
                | Store.Removed -> "r"
                | Store.Missing -> "m"
                | Store.Found -> "f"
                | Store.Absent -> "a"
                | _ -> "?"))
            (redeem (Queue.pop pending))
      done;
      while not (Queue.is_empty pending) do
        ignore (redeem (Queue.pop pending))
      done;
      Service.shutdown svc;
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf ";%s=%d" k v))
        (Service.counters svc);
      Service.finalize_thread svc ~thread;
      Service.drain svc;
      List.iter
        (fun k -> Buffer.add_string buf (Printf.sprintf ",%d" k))
        (Service.contents svc);
      (match Service.check svc with
      | Ok () -> ()
      | Error e -> fail "pool-smoke: spawnless check failed: %s" e);
      Buffer.contents buf)

let determinism () =
  let a = spawnless_trace 42 and b = spawnless_trace 42 in
  if a <> b then
    fail "pool-smoke: spawnless replay diverged (%d vs %d trace bytes)"
      (String.length a) (String.length b);
  Printf.printf "pool-smoke determinism: %d trace bytes, replay identical\n%!"
    (String.length a)

(* ---- 2 + 3. worker domains, serial oracle, accounting ---- *)

let workers () =
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create (spec ()) in
  let n_clients = 2 and per_client = 1500 in
  let logs = Array.make n_clients [||] in
  let client c =
    Tm.Thread.with_registered (fun thread ->
        let rng = Random.State.make [| 77; c |] in
        let acc = ref [] in
        let pending = Queue.create () in
        let redeem (op, key, t) =
          let r = (Service.await svc t).(0) in
          acc :=
            {
              Serial_check.op;
              key;
              result = Store.positive r.Store.outcome;
              earliest = r.Store.earliest;
              stamp = r.Store.stamp;
            }
            :: !acc
        in
        for _ = 1 to per_client do
          let key = 1 + Random.State.int rng 48 in
          let op, sop =
            match Random.State.int rng 10 with
            | 0 | 1 -> (Workload.Insert, Store.Insert key)
            | 2 | 3 -> (Workload.Remove, Store.Remove key)
            | _ -> (Workload.Lookup, Store.Get key)
          in
          Queue.add (op, key, Service.submit svc ~thread [| sop |]) pending;
          if Queue.length pending >= 8 then redeem (Queue.pop pending)
        done;
        while not (Queue.is_empty pending) do
          redeem (Queue.pop pending)
        done;
        logs.(c) <- Array.of_list (List.rev !acc);
        Service.finalize_thread svc ~thread)
  in
  let doms =
    Array.init n_clients (fun c -> Domain.spawn (fun () -> client c))
  in
  Array.iter Domain.join doms;
  Service.shutdown svc;
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> fail "pool-smoke: post-shutdown check failed: %s" e);
  (match Serial_check.check ~initial:[] (Array.to_list logs) with
  | Ok () -> ()
  | Error e -> fail "pool-smoke: serial check failed: %s" e);
  let counters = Service.counters svc in
  let drained = List.assoc "drained_requests" counters in
  let hits = List.assoc "cache_hits" counters in
  if drained = 0 then fail "pool-smoke: workers drained nothing";
  Service.drain svc;
  let live_expected = List.length (Service.contents svc) in
  (match Service.pool_live svc with
  | Some live when live = live_expected -> ()
  | Some live ->
      fail "pool-smoke: pool accounting leak: %d live vs %d contents" live
        live_expected
  | None -> fail "pool-smoke: expected pool accounting");
  (match Service.leaked svc with
  | Some 0 | None -> ()
  | Some n -> fail "pool-smoke: %d leaked slots after drain" n);
  Printf.printf
    "pool-smoke workers: %d ops over %d clients | drained %d | cache hits %d \
     | serial ok | live %d = contents | leaked 0\n\
     %!"
    (n_clients * per_client) n_clients drained hits live_expected

let () =
  determinism ();
  workers ();
  print_endline "pool-smoke OK: determinism, serial oracle, zero-leak accounting"
