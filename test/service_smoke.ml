(* @service-smoke: a fast push-gate for the sharded service layer.

   Three deterministic checks, no alcotest harness:
   1. a DST run that kills a thread between the 2PC phases and proves
      [Service.recover] restores all-or-nothing contents, frees the dead
      thread's gates, and keeps the pool accounting precise;
   2. the [Tear_2pc] bug flag reproduces the torn write that the
      compensating rollback prevents;
   3. a short real-concurrency run of the service packed as a Store
      through the benchmark driver with the serialization check on. *)

open Harness

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("FAIL: " ^ s); exit 1) fmt

let spec =
  Factories.Spec.v ~window:4 ~scatter:false ~shards:4 ~fuse:true
    Factories.Spec.Slist
    (Structs.Mode.Rr_kind (module Rr.V))

let key_in_shard svc ~shard ~avoid =
  let rec go k =
    if k > 100_000 then die "no key routes to shard %d" shard
    else if Service.shard_of_key svc k = shard && not (List.mem k avoid) then k
    else go (k + 1)
  in
  go 1

let kill_and_recover () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~shards:2 spec in
  let kept = key_in_shard svc ~shard:0 ~avoid:[] in
  let fresh = key_in_shard svc ~shard:1 ~avoid:[ kept ] in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let victim () =
    Tm.Thread.with_registered (fun thread ->
        Dst.Inject.arm ~after:1 Dst.Svc_apply (Dst.Inject.Delay 1_000_000);
        ignore
          (Service.multi svc ~thread
             [| Store.Remove kept; Store.Insert fresh |]))
  in
  let o = Dst.Sched.run ~budget:5_000 ~init (Dst.Sched.Random 1) [ victim ] in
  if not o.Dst.Sched.hung then die "kill scenario did not hang as designed";
  if Dst.Sched.failed o then die "kill scenario failed before the kill";
  if not (Result.is_error (Service.check svc)) then
    die "abandoned intent not visible to check";
  let resolved =
    Tm.Thread.with_registered (fun _ -> Service.recover svc)
  in
  if resolved <> 1 then die "recover resolved %d intents, want 1" resolved;
  if Service.contents svc <> [ kept ] then die "recover left a torn state";
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> die "post-recover check: %s" e);
  Service.drain svc;
  (match Service.pool_live svc with
  | Some 1 -> ()
  | Some n -> die "pool live = %d after recover, want 1" n
  | None -> die "no pool accounting");
  Dst.Inject.clear ();
  print_endline "service-smoke: kill between 2PC phases -> recover OK"

let tear_bug_caught () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  Dst.Inject.set_bug Dst.Inject.Tear_2pc true;
  let svc = Service.create ~shards:2 spec in
  let kept = key_in_shard svc ~shard:0 ~avoid:[] in
  let fresh = key_in_shard svc ~shard:1 ~avoid:[ kept ] in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let body () =
    Tm.Thread.with_registered (fun thread ->
        Dst.Inject.arm Dst.Mp_alloc Dst.Inject.Fail;
        match
          Service.multi svc ~thread [| Store.Remove kept; Store.Insert fresh |]
        with
        | _ -> die "armed allocation unexpectedly succeeded"
        | exception Dst.Injected Dst.Mp_alloc -> ())
  in
  let o = Dst.Sched.run ~init (Dst.Sched.Random 1) [ body ] in
  Dst.Inject.clear ();
  if Dst.Sched.failed o then die "tear scenario crashed";
  if Service.contents svc = [ kept ] then
    die "Tear_2pc flag had no effect: expected a torn write";
  print_endline "service-smoke: Tear_2pc bug flag reproduces the torn write"

let driver_run () =
  let svc = Service.create spec in
  let w =
    Workload.spec ~key_bits:6 ~lookup_pct:40 ~threads:2 ~ops_per_thread:2000 ()
  in
  let r = Driver.run ~verify:true w (Service.as_store svc) in
  (match r.Driver.verdict with
  | Ok () -> ()
  | Error e -> die "driver verdict on %s: %s" (Service.label svc) e);
  Printf.printf "service-smoke: driver run on %s serial-ok\n%!"
    (Service.label svc)

let () =
  kill_and_recover ();
  tear_bug_caught ();
  driver_run ();
  print_endline "service-smoke OK"
