(* Tests for the telemetry layer: histograms, JSON round-trips, abort
   attribution with forced conflict causes, and the report schema. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let with_tm f = Tm.Thread.with_registered (fun _ -> f ())

let with_telemetry f =
  Telemetry.set_enabled true;
  Telemetry.reset_slots ();
  Fun.protect ~finally:(fun () -> Telemetry.set_enabled false) f

(* ---- histograms ---- *)

let test_hist_basics () =
  let h = Telemetry.Histogram.create () in
  checkb "fresh is empty" true (Telemetry.Histogram.is_empty h);
  for v = 1 to 1000 do
    Telemetry.Histogram.record h v
  done;
  check "count" 1000 (Telemetry.Histogram.count h);
  check "sum" 500_500 (Telemetry.Histogram.sum h);
  check "min" 1 (Telemetry.Histogram.min_value h);
  check "max" 1000 (Telemetry.Histogram.max_value h);
  (* Quantiles underestimate by at most one sub-bucket (12.5%). *)
  let p50 = Telemetry.Histogram.quantile h 0.5 in
  checkb "p50 within bucket error" true (p50 >= 437 && p50 <= 500);
  let p99 = Telemetry.Histogram.quantile h 0.99 in
  checkb "p99 within bucket error" true (p99 >= 866 && p99 <= 990);
  Telemetry.Histogram.reset h;
  check "reset clears" 0 (Telemetry.Histogram.count h)

let test_hist_buckets () =
  (* lower_bound (index_of v) <= v, and buckets are monotone. *)
  let probes = [ 0; 1; 7; 8; 9; 63; 64; 100; 1023; 1024; 123_456_789 ] in
  List.iter
    (fun v ->
      let i = Telemetry.Histogram.index_of v in
      let lo = Telemetry.Histogram.lower_bound i in
      checkb (Printf.sprintf "lower_bound %d" v) true (lo <= v);
      checkb
        (Printf.sprintf "next bucket above %d" v)
        true
        (Telemetry.Histogram.lower_bound (i + 1) > v))
    probes

let test_hist_merge () =
  let a = Telemetry.Histogram.create ()
  and b = Telemetry.Histogram.create () in
  List.iter (Telemetry.Histogram.record a) [ 5; 10; 20 ];
  List.iter (Telemetry.Histogram.record b) [ 1000; 2000 ];
  Telemetry.Histogram.merge ~into:a b;
  check "merged count" 5 (Telemetry.Histogram.count a);
  check "merged max" 2000 (Telemetry.Histogram.max_value a);
  check "merged min" 5 (Telemetry.Histogram.min_value a)

(* ---- JSON ---- *)

let test_json_roundtrip () =
  let open Telemetry.Json in
  let v =
    Obj
      [
        ("s", String "a \"quoted\"\nstring \t with \x01 control");
        ("i", Int (-42));
        ("f", Float 1.5);
        ("nan", Float Float.nan);
        ("b", Bool true);
        ("n", Null);
        ("l", List [ Int 1; List []; Obj [] ]);
      ]
  in
  let s = to_string v in
  match of_string s with
  | Error e -> Alcotest.fail ("emitted JSON failed to parse: " ^ e)
  | Ok parsed ->
      (* NaN serializes as null; everything else survives. *)
      let expected =
        Obj
          [
            ("s", String "a \"quoted\"\nstring \t with \x01 control");
            ("i", Int (-42));
            ("f", Float 1.5);
            ("nan", Null);
            ("b", Bool true);
            ("n", Null);
            ("l", List [ Int 1; List []; Obj [] ]);
          ]
      in
      checkb "round-trip" true (equal parsed expected)

let test_json_rejects () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Telemetry.Json.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s))
    bad

(* ---- counters (the re-homed Tm_stats backend) ---- *)

let test_counters () =
  let c = Tm.Stats.create () in
  Tm.Stats.incr_started c;
  Tm.Stats.incr_started c;
  Tm.Stats.incr_commits c;
  Tm.Stats.incr_aborts_lock c;
  check "started" 2 (Tm.Stats.started c);
  check "commits" 1 (Tm.Stats.commits c);
  check "total aborts" 1 (Tm.Stats.total_aborts c);
  let d = Tm.Stats.copy c in
  Tm.Stats.add d c;
  check "add doubles" 4 (Tm.Stats.started d);
  match Tm.Stats.to_json c with
  | Telemetry.Json.Obj fields ->
      checkb "json has started" true
        (List.mem_assoc "started" fields)
  | _ -> Alcotest.fail "Stats.to_json is not an object"

(* ---- attribution ---- *)

let test_attribution_overflow () =
  let a = Telemetry.Attribution.create () in
  for uid = 0 to 99 do
    Telemetry.Attribution.record a ~site:"s" ~cause:"read_invalid" ~uid
  done;
  check "all recorded" 100
    (Telemetry.Attribution.count a ~site:"s" ~cause:"read_invalid");
  (* Distinct uids are capped; the overflow pseudo-uid absorbs the rest. *)
  let e = List.hd (Telemetry.Attribution.entries a) in
  let total =
    List.fold_left (fun acc (_, n) -> acc + n) 0 e.Telemetry.Attribution.top_tvars
  in
  checkb "top tvars bounded" true (List.length e.Telemetry.Attribution.top_tvars <= 8);
  checkb "tvar counts don't exceed total" true (total <= 100)

(* ---- forced abort causes, with attribution (tentpole test) ---- *)

(* Single-domain Read_invalid: poke both an already-read tvar and a
   yet-to-be-read one mid-transaction. The pokes advance the global clock
   past the transaction's read version, so the subsequent read of [b]
   attempts a timestamp extension — which fails, because [a] in the read
   set also changed — and the abort is attributed to [b]. (Poking only [b]
   would no longer abort at all: the extension would rescue the read.) *)
let test_forced_read_invalid () =
  with_telemetry (fun () ->
      with_tm (fun () ->
          Tm.Stats.reset (Tm.Thread.stats ());
          let a = Tm.tvar 0 and b = Tm.tvar 0 in
          let first = ref true in
          let seen =
            Tm.atomic ~site:"test.read_invalid" (fun txn ->
                let _ = Tm.read txn a in
                if !first then begin
                  first := false;
                  Tm.poke a 1;
                  Tm.poke b 7
                end;
                Tm.read txn b)
          in
          check "eventually reads poked value" 7 seen;
          let st = Tm.Thread.stats () in
          check "one read abort" 1 (Tm.Stats.aborts_read st);
          check "the failed extension was counted" 1 (Tm.Stats.ext_fails st);
          let rep = Telemetry.Report.snapshot () in
          let attr = rep.Telemetry.Report.attribution in
          check "attributed to site+cause" 1
            (Telemetry.Attribution.count attr ~site:"test.read_invalid"
               ~cause:"read_invalid");
          let e =
            List.find
              (fun e -> e.Telemetry.Attribution.site = "test.read_invalid")
              (Telemetry.Attribution.entries attr)
          in
          checkb "conflicting tvar identified" true
            (List.mem_assoc (Tm.tvar_id b) e.Telemetry.Attribution.top_tvars)))

(* Two-domain Read_invalid: domain A reads v and then waits for domain B to
   commit a write to v; A's re-read of v must observe the newer version and
   abort, attributing the conflict to v. Handshake makes it deterministic. *)
let test_two_domain_conflict () =
  with_telemetry (fun () ->
      let v = Tm.tvar 0 in
      let a_read = Atomic.make false and b_wrote = Atomic.make false in
      let writer =
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun _ ->
                while not (Atomic.get a_read) do
                  Domain.cpu_relax ()
                done;
                Tm.atomic ~site:"test.writer" (fun txn -> Tm.write txn v 1);
                Atomic.set b_wrote true))
      in
      with_tm (fun () ->
          Tm.Stats.reset (Tm.Thread.stats ());
          let attempts = ref 0 in
          let r =
            Tm.atomic_stamped ~site:"test.reader" (fun txn ->
                incr attempts;
                let x = Tm.read txn v in
                if !attempts = 1 then begin
                  Atomic.set a_read true;
                  while not (Atomic.get b_wrote) do
                    Domain.cpu_relax ()
                  done
                end;
                ignore x;
                Tm.read txn v)
          in
          Domain.join writer;
          check "reader sees committed write" 1 r.Tm.value;
          check "two attempts" 2 r.Tm.attempts;
          let st = Tm.Thread.stats () in
          check "one read abort" 1 (Tm.Stats.aborts_read st);
          let rep = Telemetry.Report.snapshot () in
          let attr = rep.Telemetry.Report.attribution in
          check "abort attributed to reader site" 1
            (Telemetry.Attribution.count attr ~site:"test.reader"
               ~cause:"read_invalid");
          let e =
            List.find
              (fun e -> e.Telemetry.Attribution.site = "test.reader")
              (Telemetry.Attribution.entries attr)
          in
          checkb "conflict attributed to v" true
            (List.mem_assoc (Tm.tvar_id v) e.Telemetry.Attribution.top_tvars)))

(* Forced Lock_busy via the public white-box exception: the uid is unknown
   (-1) but the (site, cause) cell must still be recorded. *)
let test_forced_lock_busy () =
  with_telemetry (fun () ->
      with_tm (fun () ->
          Tm.Stats.reset (Tm.Thread.stats ());
          let first = ref true in
          Tm.atomic ~site:"test.lock_busy" (fun _txn ->
              if !first then begin
                first := false;
                raise (Tm.Abort Tm.Lock_busy)
              end);
          let st = Tm.Thread.stats () in
          check "one lock abort" 1 (Tm.Stats.aborts_lock st);
          let rep = Telemetry.Report.snapshot () in
          check "attributed" 1
            (Telemetry.Attribution.count rep.Telemetry.Report.attribution
               ~site:"test.lock_busy" ~cause:"lock_busy")))

(* Forced serial fallback: one attempt budget and an attempt that always
   aborts speculatively forces the serial path, which must be recorded in
   the fallback counter and the serial-latency histogram. *)
let test_forced_serial_fallback () =
  with_telemetry (fun () ->
      with_tm (fun () ->
          Tm.Stats.reset (Tm.Thread.stats ());
          let v = Tm.tvar 0 in
          let r =
            Tm.atomic_stamped ~site:"test.serial" ~max_attempts:1 (fun txn ->
                if not (Tm.is_serial txn) then raise (Tm.Abort Tm.Read_invalid);
                Tm.write txn v 9;
                Tm.read txn v)
          in
          check "serial result" 9 r.Tm.value;
          checkb "ran serially" true r.Tm.serial;
          let st = Tm.Thread.stats () in
          check "one fallback" 1 (Tm.Stats.fallbacks st);
          let rep = Telemetry.Report.snapshot () in
          check "serial latency recorded" 1
            (Telemetry.Histogram.count rep.Telemetry.Report.serial);
          check "speculative abort attributed" 1
            (Telemetry.Attribution.count rep.Telemetry.Report.attribution
               ~site:"test.serial" ~cause:"read_invalid")))

(* ---- report ---- *)

let test_report_roundtrip () =
  with_telemetry (fun () ->
      with_tm (fun () ->
          Telemetry.Gauges.clear ();
          Telemetry.Gauges.register ~group:"test" ~name:"g" (fun () ->
              [ ("x", 1.5); ("y", 0.) ]);
          let v = Tm.tvar 0 in
          for i = 1 to 100 do
            Tm.atomic ~site:"test.report" (fun txn -> Tm.write txn v i)
          done;
          let rep =
            Telemetry.Report.snapshot ~label:"unit"
              ~counters:(Tm.Stats.copy (Tm.Thread.stats ()))
              ()
          in
          checkb "attempts recorded" true
            (Telemetry.Histogram.count rep.Telemetry.Report.attempts >= 100);
          let js = Telemetry.Report.to_json rep in
          let s = Telemetry.Json.to_string js in
          (match Telemetry.Json.of_string s with
          | Error e -> Alcotest.fail ("report JSON does not parse: " ^ e)
          | Ok parsed ->
              checkb "report JSON round-trips" true
                (Telemetry.Json.equal parsed js);
              (match Telemetry.Report.validate parsed with
              | Ok () -> ()
              | Error e -> Alcotest.fail ("schema: " ^ e)));
          Telemetry.Gauges.clear ()))

let test_disabled_is_silent () =
  (* With the switch off, runs must not accumulate telemetry state. *)
  Telemetry.set_enabled false;
  Telemetry.reset_slots ();
  with_tm (fun () ->
      let v = Tm.tvar 0 in
      for i = 1 to 50 do
        Tm.atomic ~site:"test.silent" (fun txn -> Tm.write txn v i)
      done;
      let rep = Telemetry.Report.snapshot () in
      check "no attempts recorded" 0
        (Telemetry.Histogram.count rep.Telemetry.Report.attempts);
      checkb "no attribution" true
        (Telemetry.Attribution.is_empty rep.Telemetry.Report.attribution))

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "basics" `Quick test_hist_basics;
          Alcotest.test_case "bucket bounds" `Quick test_hist_buckets;
          Alcotest.test_case "merge" `Quick test_hist_merge;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
        ] );
      ( "counters",
        [ Alcotest.test_case "incr/accessors/json" `Quick test_counters ] );
      ( "attribution",
        [ Alcotest.test_case "uid cap" `Quick test_attribution_overflow ] );
      ( "abort causes",
        [
          Alcotest.test_case "forced read_invalid" `Quick
            test_forced_read_invalid;
          Alcotest.test_case "two-domain conflict" `Quick
            test_two_domain_conflict;
          Alcotest.test_case "forced lock_busy" `Quick test_forced_lock_busy;
          Alcotest.test_case "forced serial fallback" `Quick
            test_forced_serial_fallback;
        ] );
      ( "report",
        [
          Alcotest.test_case "json round-trip + schema" `Quick
            test_report_roundtrip;
          Alcotest.test_case "disabled is silent" `Quick
            test_disabled_is_silent;
        ] );
    ]
