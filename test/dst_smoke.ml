(* Capped smoke run of the deterministic-schedule explorer, wired to the
   [dst-smoke] dune alias (and from there into [runtest] and CI). Each of
   the three DESIGN.md bugs is re-injected, rediscovered by its documented
   seeded search, and cross-checked against the committed minimized
   schedule; the fixed code must survive both the search and the pinned
   adversarial schedules. The timestamp-extension scenarios then run as
   oracles (no schedule may break opacity or the read-phase guarantee)
   and as pinned deterministic replays of the extension success/failure
   paths. Exits non-zero on any miss. *)

let failures = ref 0

let expect what ok =
  if ok then Printf.printf "dst-smoke: %-46s ok\n%!" what
  else begin
    incr failures;
    Printf.printf "dst-smoke: %-46s FAILED\n%!" what
  end

let found name = function
  | None ->
      expect name false
  | Some f ->
      Printf.printf "dst-smoke: %-46s found (seed %s, %d runs, %d-step schedule)\n%!"
        name
        (match f.Dst.Explore.seed with Some s -> string_of_int s | None -> "-")
        f.Dst.Explore.runs
        (Array.length f.Dst.Explore.schedule)

let () =
  let open Dst_scenarios in
  (* searches, at the budgets documented in Dst_scenarios *)
  found "bug #1 straddle / random search"
    (Dst.Explore.random_search ~budget:500 ~max_runs:2000 (straddle ~bug:true));
  found "bug #2 ro-publication / PCT search"
    (Dst.Explore.pct_search ~budget:300 ~max_runs:6000 ~depth:2
       (ro_publication ~bug:true));
  found "bug #3 stale-hint / PCT search"
    (Dst.Explore.pct_search ~budget:400 ~max_runs:6000 ~depth:2
       (stale_hint ~bug:true));
  (* pinned minimized schedules: buggy fails, fixed survives *)
  let replay name mk sched fails =
    expect name (Dst.Sched.failed (Dst.Explore.replay mk sched) = fails)
  in
  replay "bug #1 pinned schedule triggers" (straddle ~bug:true) sched_bug1 true;
  replay "bug #1 fixed code survives" (straddle ~bug:false) sched_bug1 false;
  replay "bug #2 pinned schedule triggers" (ro_publication ~bug:true) sched_bug2
    true;
  replay "bug #2 fixed code survives" (ro_publication ~bug:false) sched_bug2
    false;
  replay "bug #3 pinned schedule triggers" (stale_hint ~bug:true) sched_bug3
    true;
  replay "bug #3 fixed code survives" (stale_hint ~bug:false) sched_bug3 false;
  (* timestamp extension: oracle searches must find no opacity or
     read-phase violation on any explored schedule, and the pinned
     schedules must drive the protocol through the extension paths
     deterministically (one-attempt rescue / clean fail-and-retry) *)
  expect "extension opacity / random oracle"
    (Option.is_none
       (Dst.Explore.random_search ~budget:300 ~max_runs:400
          (extend_success ~expect:`Opaque)));
  expect "extension opacity / PCT oracle"
    (Option.is_none
       (Dst.Explore.pct_search ~budget:300 ~max_runs:400 ~depth:2
          (extend_fail ~expect:`Opaque)));
  expect "read-phase hint / random oracle"
    (Option.is_none
       (Dst.Explore.random_search ~budget:300 ~max_runs:400 read_phase_wait));
  replay "extension success pinned schedule"
    (extend_success ~expect:`Strong)
    sched_extend_ok false;
  replay "extension failure pinned schedule"
    (extend_fail ~expect:`Strong)
    sched_extend_fail false;
  (* raw-speed optimizations: no schedule may break the middle path's
     safety (both commits land, lock released) or fused windows'
     serializability, and the pinned schedules must deterministically
     drive the middle-path rescue and the fuse-budget shrink *)
  expect "middle-path safety / random oracle"
    (Option.is_none
       (Dst.Explore.random_search ~budget:300 ~max_runs:400
          (middle_exclusion ~expect:`Safe)));
  expect "fused-window serializability / random oracle"
    (Option.is_none
       (Dst.Explore.random_search ~budget:400 ~max_runs:100
          (fusion_shrink ~expect:`Safe)));
  replay "middle-path exclusion pinned schedule"
    (middle_exclusion ~expect:`Strong)
    sched_middle false;
  replay "fusion shrink-on-abort pinned schedule"
    (fusion_shrink ~expect:`Strong)
    sched_fusion false;
  Dst.Inject.clear ();
  if !failures > 0 then exit 1
