(* Tests for the transactional data structures: Listing 5's singly linked
   list, the doubly linked list with split unlink-and-revoke, and the
   internal/external unbalanced BSTs — across every reservation mode. *)

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

open Harness

let rr_kinds = Factories.rr_kinds

module Spec = Factories.Spec

(* Every factory under test is a [Spec.t]; the HTM (plain single-
   transaction) variants take the structure's default window. *)
let spec ?window ?buckets structure kind =
  Factories.make (Spec.v ?window ?buckets structure kind)

let slist_factories =
  List.map (fun (_, k) -> spec ~window:3 Spec.Slist k) rr_kinds
  @ [
      spec Spec.Slist Structs.Mode.Htm;
      spec ~window:3 Spec.Slist Structs.Mode.Tmhp;
      spec ~window:3 Spec.Slist Structs.Mode.Ref;
      spec ~window:3 Spec.Slist Structs.Mode.Ebr;
    ]

let dlist_factories =
  List.map (fun (_, k) -> spec ~window:3 Spec.Dlist k) rr_kinds
  @ [
      spec Spec.Dlist Structs.Mode.Htm;
      spec ~window:3 Spec.Dlist Structs.Mode.Tmhp;
      spec ~window:3 Spec.Dlist Structs.Mode.Ebr;
    ]

let bst_int_factories =
  List.map (fun (_, k) -> spec ~window:3 Spec.Bst_int k) rr_kinds
  @ [ spec Spec.Bst_int Structs.Mode.Htm ]

let bst_ext_factories =
  List.map (fun (_, k) -> spec ~window:3 Spec.Bst_ext k) rr_kinds
  @ [
      spec Spec.Bst_ext Structs.Mode.Htm;
      spec ~window:3 Spec.Bst_ext Structs.Mode.Tmhp;
      spec ~window:3 Spec.Bst_ext Structs.Mode.Ebr;
    ]

(* hash set: use few buckets so chains are long enough to exercise
   hand-over-hand windows and reservations *)
let hashset_factories =
  List.map (fun (_, k) -> spec ~buckets:4 ~window:3 Spec.Hashset k) rr_kinds
  @ [
      spec ~buckets:4 Spec.Hashset Structs.Mode.Htm;
      spec ~buckets:4 ~window:3 Spec.Hashset Structs.Mode.Tmhp;
      spec ~buckets:4 ~window:3 Spec.Hashset Structs.Mode.Ebr;
    ]

let skiplist_factories =
  List.map (fun (_, k) -> spec ~window:3 Spec.Skiplist k) rr_kinds
  @ [
      spec Spec.Skiplist Structs.Mode.Htm;
      spec ~window:3 Spec.Skiplist Structs.Mode.Tmhp;
      spec ~window:3 Spec.Skiplist Structs.Mode.Ebr;
    ]

let all_factories =
  List.concat
    [
      List.map (fun f -> ("slist", f)) slist_factories;
      List.map (fun f -> ("dlist", f)) dlist_factories;
      List.map (fun f -> ("bst-int", f)) bst_int_factories;
      List.map (fun f -> ("bst-ext", f)) bst_ext_factories;
      List.map (fun f -> ("hashset", f)) hashset_factories;
      List.map (fun f -> ("skiplist", f)) skiplist_factories;
    ]

(* ---- sequential semantics against a Set model ---- *)

type op = I of int | R of int | L of int

let gen_ops =
  let open QCheck.Gen in
  let key = map (fun k -> k + 1) (int_bound 30) in
  list_size (int_bound 60)
    (oneof
       [ map (fun k -> I k) key; map (fun k -> R k) key; map (fun k -> L k) key ])

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | I k -> Printf.sprintf "I%d" k
         | R k -> Printf.sprintf "R%d" k
         | L k -> Printf.sprintf "L%d" k)
       ops)

(* Shrink both the op list (drop ops) and individual keys (toward 1), so
   counterexamples come back as the shortest sequence over the smallest
   keys that still disagrees with the model. *)
let shrink_op op yield =
  let key k mk = QCheck.Shrink.int k (fun k' -> if k' >= 1 then yield (mk k')) in
  match op with
  | I k -> key k (fun k -> I k)
  | R k -> key k (fun k -> R k)
  | L k -> key k (fun k -> L k)

let shrink_ops = QCheck.Shrink.list ~shrink:shrink_op

let arb_ops = QCheck.make ~print:print_ops ~shrink:shrink_ops gen_ops

(* Boolean views of the typed Store replies, for model comparison. *)
let ins st ~thread k = Store.positive (Store.insert st ~thread k).Store.outcome
let rem st ~thread k = Store.positive (Store.remove st ~thread k).Store.outcome
let mem st ~thread k = Store.positive (Store.get st ~thread k).Store.outcome

(* Drive a store and a Hashtbl model through the same op sequence; true
   iff every op agreed, the final contents match, and invariants hold. *)
let agrees_with_model (h : Store.t) tid ops =
  let model = Hashtbl.create 64 in
  let ok =
    List.for_all
      (fun op ->
        match op with
        | I k ->
            let expected = not (Hashtbl.mem model k) in
            if expected then Hashtbl.replace model k ();
            ins h ~thread:tid k = expected
        | R k ->
            let expected = Hashtbl.mem model k in
            if expected then Hashtbl.remove model k;
            rem h ~thread:tid k = expected
        | L k -> mem h ~thread:tid k = Hashtbl.mem model k)
      ops
  in
  Store.finalize_thread h ~thread:tid;
  Store.drain h;
  let contents = List.sort compare (Store.contents h) in
  let model_contents =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) model [])
  in
  ok && contents = model_contents && Store.check h = Ok ()

let qcheck_sequential (family, f) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s/%s sequential model" family f.Factories.label)
    ~count:60 arb_ops
    (fun ops ->
      Tm.Thread.with_registered (fun tid ->
          agrees_with_model (f.Factories.make ()) tid ops))

(* Window-randomized variant: the hand-over-hand window is part of the
   generated input (1..4, so the single-node window edge is exercised),
   over the chained structures where the window governs hand-off
   frequency — dlist, hashset, skiplist — for every RR flavour. The
   window does not shrink: a short op list at the original window is the
   more useful counterexample. *)
let gen_windowed =
  QCheck.Gen.(pair (map (fun w -> 1 + w) (int_bound 3)) gen_ops)

let arb_windowed =
  QCheck.make
    ~print:(fun (w, ops) -> Printf.sprintf "window=%d [%s]" w (print_ops ops))
    ~shrink:(QCheck.Shrink.pair QCheck.Shrink.nil shrink_ops)
    gen_windowed

let qcheck_windowed (family, structure, buckets) (kname, kind) =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s/%s windowed model" family kname)
    ~count:40 arb_windowed
    (fun (window, ops) ->
      Tm.Thread.with_registered (fun tid ->
          let f = spec ~window ?buckets structure kind in
          agrees_with_model (f.Factories.make ()) tid ops))

let windowed_tests =
  List.concat_map
    (fun target -> List.map (qcheck_windowed target) rr_kinds)
    [
      ("dlist", Spec.Dlist, None);
      ("hashset", Spec.Hashset, Some 4);
      ("skiplist", Spec.Skiplist, None);
    ]

(* ---- targeted unit tests ---- *)

let with_handle f g =
  Tm.Thread.with_registered (fun tid -> g tid (f.Factories.make ()))

let test_empty_ops (_, f) () =
  with_handle f (fun tid h ->
      checkb "lookup on empty" false (mem h ~thread:tid 5);
      checkb "remove on empty" false (rem h ~thread:tid 5);
      check "size 0" 0 (Store.size h);
      checkb "check ok" true (Store.check h = Ok ()))

let test_duplicate_insert (_, f) () =
  with_handle f (fun tid h ->
      checkb "first insert" true (ins h ~thread:tid 7);
      checkb "duplicate rejected" false (ins h ~thread:tid 7);
      check "size 1" 1 (Store.size h))

let test_sorted_contents (_, f) () =
  with_handle f (fun tid h ->
      List.iter
        (fun k -> ignore (ins h ~thread:tid k))
        [ 5; 1; 9; 3; 7; 2; 8 ];
      Alcotest.(check (list int))
        "contents sorted" [ 1; 2; 3; 5; 7; 8; 9 ]
        (Store.contents h))

let test_remove_all (family, f) () =
  with_handle f (fun tid h ->
      let keys = List.init 40 (fun i -> i + 1) in
      List.iter (fun k -> ignore (ins h ~thread:tid k)) keys;
      List.iter
        (fun k ->
          checkb "removed" true (rem h ~thread:tid k))
        keys;
      check "empty at end" 0 (Store.size h);
      Store.finalize_thread h ~thread:tid;
      Store.drain h;
      (match Store.pool_live h with
      | Some live ->
          check (family ^ " precise reclamation: no live nodes") 0 live
      | None -> ());
      checkb "check ok" true (Store.check h = Ok ()))

(* Interleaved single-thread churn exercises node reuse heavily. *)
let test_churn (_, f) () =
  with_handle f (fun tid h ->
      let rng = Test_util.Prng.create 99 in
      let model = Hashtbl.create 64 in
      for _ = 1 to 3000 do
        let k = 1 + Test_util.Prng.int rng 16 in
        match Test_util.Prng.int rng 3 with
        | 0 ->
            let e = not (Hashtbl.mem model k) in
            if e then Hashtbl.replace model k ();
            checkb "insert agrees" e (ins h ~thread:tid k)
        | 1 ->
            let e = Hashtbl.mem model k in
            if e then Hashtbl.remove model k;
            checkb "remove agrees" e (rem h ~thread:tid k)
        | _ ->
            checkb "lookup agrees" (Hashtbl.mem model k)
              (mem h ~thread:tid k)
      done;
      checkb "structure intact" true (Store.check h = Ok ()))

(* ---- concurrent stress with full verification via the driver ---- *)

let driver_case name f spec =
  Alcotest.test_case name `Slow (fun () ->
      Tm.Thread.with_registered (fun _ ->
          let h = f.Factories.make () in
          let r = Driver.run spec h in
          match r.Driver.verdict with
          | Ok () -> ()
          | Error e -> Alcotest.failf "%s: %s" name e))

let stress_spec =
  Workload.spec ~key_bits:6 ~lookup_pct:30 ~threads:4 ~ops_per_thread:2500 ()

let stress_cases =
  List.map
    (fun (family, f) ->
      driver_case
        (Printf.sprintf "%s/%s serializable under contention" family
           f.Factories.label)
        f stress_spec)
    all_factories

(* ---- structure-specific behaviour ---- *)

let test_dlist_split_ablation () =
  Tm.Thread.with_registered (fun _ ->
      List.iter
        (fun split_unlink ->
          let l =
            Structs.Hoh_dlist.create
              ~mode:(Structs.Mode.Rr_kind (module Rr.Fa))
              ~window:3 ~split_unlink ()
          in
          let h = Store.of_hoh_dlist l in
          let spec =
            Workload.spec ~key_bits:5 ~lookup_pct:20 ~threads:4
              ~ops_per_thread:1500 ()
          in
          let r = Driver.run spec h in
          match r.Driver.verdict with
          | Ok () -> ()
          | Error e -> Alcotest.failf "split_unlink=%b: %s" split_unlink e)
        [ true; false ])

let test_tmhp_no_recycled_resumes () =
  Tm.Thread.with_registered (fun _ ->
      let before = Atomic.get Structs.Mode.tmhp_gen_violations in
      let h = (spec ~window:3 Spec.Slist Structs.Mode.Tmhp).Factories.make () in
      let spec =
        Workload.spec ~key_bits:5 ~lookup_pct:10 ~threads:4
          ~ops_per_thread:2000 ()
      in
      let r = Driver.run spec h in
      checkb "run ok" true (r.Driver.verdict = Ok ());
      check "hazard protocol never resumes a recycled node" before
        (Atomic.get Structs.Mode.tmhp_gen_violations))

let test_tmhp_reclaims_on_drain () =
  Tm.Thread.with_registered (fun tid ->
      let l = Structs.Hoh_list.create ~mode:Structs.Mode.Tmhp ~window:4 () in
      List.iter
        (fun k -> ignore (Structs.Hoh_list.insert l ~thread:tid k))
        (List.init 100 (fun i -> i + 1));
      List.iter
        (fun k -> ignore (Structs.Hoh_list.remove l ~thread:tid k))
        (List.init 100 (fun i -> i + 1));
      Structs.Hoh_list.finalize_thread l ~thread:tid;
      Structs.Hoh_list.drain l;
      (match Structs.Hoh_list.hazard_metrics l with
      | Some m ->
          check "retired everything" 100 m.Reclaim.Hazard.retired_total;
          check "drained backlog" 0 m.Reclaim.Hazard.backlog;
          checkb "deferral was real (backlog grew past 1)" true
            (m.Reclaim.Hazard.max_backlog > 1)
      | None -> Alcotest.fail "expected hazard metrics");
      check "pool empty" 0 (Structs.Hoh_list.pool_stats l).Mempool.Stats.live)

let test_rr_list_reclaims_immediately () =
  Tm.Thread.with_registered (fun tid ->
      let l =
        Structs.Hoh_list.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.V))
          ~window:4 ()
      in
      ignore (Structs.Hoh_list.insert l ~thread:tid 1);
      ignore (Structs.Hoh_list.insert l ~thread:tid 2);
      let live () = (Structs.Hoh_list.pool_stats l).Mempool.Stats.live in
      check "two live" 2 (live ());
      ignore (Structs.Hoh_list.remove l ~thread:tid 1);
      (* precise: the node is back in the pool the moment remove returns *)
      check "freed immediately, no drain needed" 1 (live ()))

let test_bst_int_two_child_removal () =
  Tm.Thread.with_registered (fun tid ->
      let t =
        Structs.Hoh_bst_int.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.Fa))
          ~window:16 ()
      in
      List.iter
        (fun k -> ignore (Structs.Hoh_bst_int.insert t ~thread:tid k))
        [ 50; 30; 70; 20; 40; 60; 80; 65 ];
      checkb "remove root (two children)" true
        (Structs.Hoh_bst_int.remove t ~thread:tid 50);
      Alcotest.(check (list int))
        "leftmost of right subtree swapped in"
        [ 20; 30; 40; 60; 65; 70; 80 ]
        (Structs.Hoh_bst_int.to_list t);
      checkb "invariants hold" true (Structs.Hoh_bst_int.check t = Ok ());
      checkb "swapped key still found" true
        (Structs.Hoh_bst_int.lookup t ~thread:tid 60);
      checkb "removed key gone" false
        (Structs.Hoh_bst_int.lookup t ~thread:tid 50);
      check "pool live = size" 7
        (Structs.Hoh_bst_int.pool_stats t).Mempool.Stats.live)

let test_bst_int_chain_removal () =
  Tm.Thread.with_registered (fun tid ->
      let t =
        Structs.Hoh_bst_int.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.Xo))
          ~window:2 ()
      in
      (* degenerate (sorted-insert) tree forces deep hand-over-hand chains *)
      for k = 1 to 60 do
        ignore (Structs.Hoh_bst_int.insert t ~thread:tid k)
      done;
      check "depth is linear" 60 (Structs.Hoh_bst_int.depth t);
      for k = 1 to 60 do
        checkb "found" true (Structs.Hoh_bst_int.lookup t ~thread:tid k)
      done;
      for k = 60 downto 1 do
        checkb "removed" true (Structs.Hoh_bst_int.remove t ~thread:tid k)
      done;
      check "empty" 0 (Structs.Hoh_bst_int.size t))

let test_bst_ext_structure () =
  Tm.Thread.with_registered (fun tid ->
      let t =
        Structs.Hoh_bst_ext.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.V))
          ~window:16 ()
      in
      List.iter
        (fun k -> ignore (Structs.Hoh_bst_ext.insert t ~thread:tid k))
        [ 10; 5; 15; 3; 7 ];
      check "size" 5 (Structs.Hoh_bst_ext.size t);
      (* external tree: n leaves and n-1 routers *)
      check "pool live = 2n-1" 9
        (Structs.Hoh_bst_ext.pool_stats t).Mempool.Stats.live;
      checkb "remove leaf" true (Structs.Hoh_bst_ext.remove t ~thread:tid 3);
      check "leaf and router reclaimed" 7
        (Structs.Hoh_bst_ext.pool_stats t).Mempool.Stats.live;
      checkb "invariants" true (Structs.Hoh_bst_ext.check t = Ok ());
      checkb "last leaf removable" true
        (List.for_all
           (fun k -> Structs.Hoh_bst_ext.remove t ~thread:tid k)
           [ 10; 5; 15; 7 ]);
      check "empty tree" 0 (Structs.Hoh_bst_ext.size t);
      check "nothing live" 0
        (Structs.Hoh_bst_ext.pool_stats t).Mempool.Stats.live;
      checkb "reinsert into empty works" true
        (Structs.Hoh_bst_ext.insert t ~thread:tid 42))

let test_key_range_checks () =
  Tm.Thread.with_registered (fun tid ->
      let l =
        Structs.Hoh_list.create ~mode:(Structs.Mode.Rr_kind (module Rr.V)) ()
      in
      checkb "rejects sentinel-range keys" true
        (match Structs.Hoh_list.insert l ~thread:tid min_int with
        | _ -> false
        | exception Invalid_argument _ -> true);
      let t = Structs.Hoh_bst_ext.create ~mode:Structs.Mode.Htm () in
      checkb "bst rejects max_int" true
        (match Structs.Hoh_bst_ext.insert t ~thread:tid max_int with
        | _ -> false
        | exception Invalid_argument _ -> true))

let test_mode_restrictions () =
  checkb "internal tree rejects TMHP" true
    (match Structs.Hoh_bst_int.create ~mode:Structs.Mode.Tmhp () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "internal tree rejects EBR" true
    (match Structs.Hoh_bst_int.create ~mode:Structs.Mode.Ebr () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "external tree rejects REF" true
    (match Structs.Hoh_bst_ext.create ~mode:Structs.Mode.Ref () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_skiplist_structure () =
  Tm.Thread.with_registered (fun tid ->
      let sl =
        Structs.Hoh_skiplist.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.V))
          ~window:4 ()
      in
      for k = 1 to 500 do
        checkb "insert" true (Structs.Hoh_skiplist.insert sl ~thread:tid k)
      done;
      check "size" 500 (Structs.Hoh_skiplist.size sl);
      checkb "multi-level invariants" true
        (Structs.Hoh_skiplist.check sl = Ok ());
      let hist = Structs.Hoh_skiplist.levels_histogram sl in
      checkb "some tall towers exist" true
        (Array.exists (fun c -> c > 0) (Array.sub hist 3 (Array.length hist - 3)));
      checkb "height-1 dominates (geometric)" true
        (hist.(1) > hist.(2) && hist.(2) > hist.(3));
      for k = 1 to 500 do
        checkb "remove" true (Structs.Hoh_skiplist.remove sl ~thread:tid k)
      done;
      check "precise reclamation" 0
        (Structs.Hoh_skiplist.pool_stats sl).Mempool.Stats.live)

(* Operations compose: because nested Tm.atomic calls flatten into the
   enclosing transaction, a remove-from-one/insert-into-other pair wrapped
   in an outer transaction moves an element between two structures
   atomically — concurrent observers never see the element in both or in
   neither. *)
let test_atomic_cross_structure_move () =
  Tm.Thread.with_registered (fun tid ->
      let mk () =
        Structs.Hoh_list.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.V))
          ~window:4 ()
      in
      let a = mk () and b = mk () in
      for k = 1 to 32 do
        ignore (Structs.Hoh_list.insert a ~thread:tid k)
      done;
      let stop = Atomic.make false in
      let violations = Atomic.make 0 in
      let observer =
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun otid ->
                while not (Atomic.get stop) do
                  for k = 1 to 32 do
                    let in_both =
                      Tm.atomic (fun _ ->
                          let ia = Structs.Hoh_list.lookup a ~thread:otid k in
                          let ib = Structs.Hoh_list.lookup b ~thread:otid k in
                          (ia, ib))
                    in
                    match in_both with
                    | true, true | false, false -> Atomic.incr violations
                    | _ -> ()
                  done
                done))
      in
      (* move everything a -> b, one atomic move at a time *)
      for k = 1 to 32 do
        let moved =
          Tm.atomic (fun _ ->
              let r = Structs.Hoh_list.remove a ~thread:tid k in
              if r then assert (Structs.Hoh_list.insert b ~thread:tid k);
              r)
        in
        checkb "moved" true moved
      done;
      Atomic.set stop true;
      Domain.join observer;
      check "no observer saw a torn move" 0 (Atomic.get violations);
      check "a empty" 0 (Structs.Hoh_list.size a);
      check "b full" 32 (Structs.Hoh_list.size b))

let test_hashset_buckets () =
  Tm.Thread.with_registered (fun tid ->
      let h =
        Structs.Hoh_hashset.create
          ~mode:(Structs.Mode.Rr_kind (module Rr.V))
          ~buckets:2 ~window:2 ()
      in
      for k = 1 to 200 do
        checkb "insert" true (Structs.Hoh_hashset.insert h ~thread:tid k)
      done;
      check "size" 200 (Structs.Hoh_hashset.size h);
      Alcotest.(check (list int))
        "sorted contents"
        (List.init 200 (fun i -> i + 1))
        (Structs.Hoh_hashset.to_list h);
      checkb "bucket invariants" true (Structs.Hoh_hashset.check h = Ok ());
      for k = 1 to 200 do
        checkb "remove" true (Structs.Hoh_hashset.remove h ~thread:tid k)
      done;
      check "reclaimed" 0
        (Structs.Hoh_hashset.pool_stats h).Mempool.Stats.live)

let test_ebr_defers_then_reclaims () =
  Tm.Thread.with_registered (fun tid ->
      let l = Structs.Hoh_list.create ~mode:Structs.Mode.Ebr ~window:4 () in
      List.iter
        (fun k -> ignore (Structs.Hoh_list.insert l ~thread:tid k))
        (List.init 100 (fun i -> i + 1));
      List.iter
        (fun k -> ignore (Structs.Hoh_list.remove l ~thread:tid k))
        (List.init 100 (fun i -> i + 1));
      Structs.Hoh_list.finalize_thread l ~thread:tid;
      Structs.Hoh_list.drain l;
      (match Structs.Hoh_list.hazard_metrics l with
      | Some m ->
          check "all retired" 100 m.Reclaim.Hazard.retired_total;
          check "all freed after drain" 100 m.Reclaim.Hazard.freed_total;
          checkb "epoch advanced" true (m.Reclaim.Hazard.scans > 0)
      | None -> Alcotest.fail "expected epoch metrics");
      check "pool empty" 0 (Structs.Hoh_list.pool_stats l).Mempool.Stats.live)

let () =
  let unit_cases name f =
    List.map
      (fun ((family, fac) as x) ->
        Alcotest.test_case
          (Printf.sprintf "%s/%s %s" family fac.Factories.label name)
          `Quick (f x))
      all_factories
  in
  Alcotest.run "structs"
    [
      ("empty", unit_cases "empty ops" test_empty_ops);
      ("duplicates", unit_cases "duplicate insert" test_duplicate_insert);
      ("sorted", unit_cases "sorted contents" test_sorted_contents);
      ("remove-all", unit_cases "remove all + reclamation" test_remove_all);
      ( "churn",
        List.map
          (fun ((family, fac) as x) ->
            Alcotest.test_case
              (Printf.sprintf "%s/%s churn" family fac.Factories.label)
              `Slow (test_churn x))
          all_factories );
      ("stress", stress_cases);
      ( "specifics",
        [
          Alcotest.test_case "dlist split ablation" `Slow
            test_dlist_split_ablation;
          Alcotest.test_case "tmhp: no recycled resumes" `Slow
            test_tmhp_no_recycled_resumes;
          Alcotest.test_case "tmhp: deferred reclamation" `Quick
            test_tmhp_reclaims_on_drain;
          Alcotest.test_case "rr: immediate reclamation" `Quick
            test_rr_list_reclaims_immediately;
          Alcotest.test_case "bst-int: two-child removal" `Quick
            test_bst_int_two_child_removal;
          Alcotest.test_case "bst-int: degenerate chain" `Quick
            test_bst_int_chain_removal;
          Alcotest.test_case "bst-ext: structure and reclamation" `Quick
            test_bst_ext_structure;
          Alcotest.test_case "key range" `Quick test_key_range_checks;
          Alcotest.test_case "mode restrictions" `Quick test_mode_restrictions;
          Alcotest.test_case "hashset buckets" `Quick test_hashset_buckets;
          Alcotest.test_case "atomic cross-structure move" `Slow
            test_atomic_cross_structure_move;
          Alcotest.test_case "skiplist structure" `Quick
            test_skiplist_structure;
          Alcotest.test_case "ebr: deferred reclamation" `Quick
            test_ebr_defers_then_reclaims;
        ] );
      ( "properties",
        List.map
          (fun x -> QCheck_alcotest.to_alcotest (qcheck_sequential x))
          all_factories );
      ( "windowed-properties",
        List.map QCheck_alcotest.to_alcotest windowed_tests );
    ]
