(* The sharded service layer: deterministic routing, same-shard batch
   fusing, cross-shard two-phase commit (commit, abort, rollback and
   recovery paths), the Spec JSON round trip that configures it, and the
   service packed as a Store driving the existing benchmark driver.

   The 2PC failure paths run under the DST scheduler: an injected
   allocation fault mid-apply must trigger compensating rollback, the
   [Tear_2pc] bug flag must reproduce the torn write that rollback
   prevents, and a thread killed between the phases must leave a state
   that [Service.recover] resolves back to all-or-nothing with the
   mempool accounting intact. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

open Harness

let spec ?(shards = 4) () =
  Factories.Spec.v ~window:4 ~scatter:false ~shards ~fuse:true
    Factories.Spec.Slist
    (Structs.Mode.Rr_kind (module Rr.V))

let with_thread f = Tm.Thread.with_registered (fun thread -> f ~thread)

(* A key in [1..bound] (fresh w.r.t. [avoid]) that routes to [shard]. *)
let key_in_shard svc ~shard ~avoid =
  let rec go k =
    if k > 100_000 then failwith "no key found for shard"
    else if Service.shard_of_key svc k = shard && not (List.mem k avoid) then k
    else go (k + 1)
  in
  go 1

(* ---------------------------------------------------------------- *)
(* Routing                                                           *)
(* ---------------------------------------------------------------- *)

let test_routing_deterministic () =
  let a = Service.create (spec ()) and b = Service.create (spec ()) in
  check "shard count from the spec knob" 4 (Service.shards a);
  let population = Array.make 4 0 in
  for k = 1 to 4096 do
    let s = Service.shard_of_key a k in
    checkb "in range" true (s >= 0 && s < 4);
    check "deterministic across instances" s (Service.shard_of_key b k);
    population.(s) <- population.(s) + 1
  done;
  (* the mixer must spread the keyspace, not stripe or clump it *)
  Array.iteri
    (fun s n ->
      if n < 512 || n > 1536 then
        Alcotest.failf "shard %d holds %d of 4096 keys" s n)
    population

let test_create_validates () =
  checkb "shards = 0 rejected" true
    (match Service.create ~shards:0 (spec ()) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "explicit override beats the spec knob" 2
    (Service.shards (Service.create ~shards:2 (spec ())))

(* ---------------------------------------------------------------- *)
(* Spec JSON round trip                                              *)
(* ---------------------------------------------------------------- *)

let test_spec_json_roundtrip () =
  let s = spec () in
  let j = Factories.Spec.to_json s in
  match Factories.Spec.of_json j with
  | Error e -> Alcotest.failf "of_json rejected its own to_json: %s" e
  | Ok s' ->
      checkb "round trip is lossless" true
        (Telemetry.Json.equal j (Factories.Spec.to_json s'));
      Alcotest.(check string)
        "label survives" (Factories.Spec.label s) (Factories.Spec.label s')

let test_spec_json_label_checked () =
  let tampered =
    match Factories.Spec.to_json (spec ()) with
    | Telemetry.Json.Obj kvs ->
        Telemetry.Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "label" then (k, Telemetry.Json.String "RR-FA/x9")
               else (k, v))
             kvs)
    | _ -> Alcotest.fail "to_json is not an object"
  in
  checkb "mismatched label rejected" true
    (Result.is_error (Factories.Spec.of_json tampered))

let test_spec_label_sharding_suffix () =
  let base = Factories.Spec.label (spec ~shards:1 ()) in
  Alcotest.(check string)
    "x4 suffix"
    (base ^ "/x4")
    (Factories.Spec.label (spec ~shards:4 ()));
  checkb "no suffix for one shard" true
    (not (String.contains base '/'))

(* ---------------------------------------------------------------- *)
(* Single-key traffic, scans, batches                                *)
(* ---------------------------------------------------------------- *)

let test_basics () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let keys = List.init 64 (fun i -> (i * 7) + 1) in
  List.iter
    (fun k ->
      checkb "fresh insert" true
        ((Service.exec svc ~thread (Store.Insert k)).Store.outcome
        = Store.Inserted))
    keys;
  checkb "duplicate insert" true
    ((Service.exec svc ~thread (Store.Insert 8)).Store.outcome
    = Store.Duplicate);
  checkb "present get" true
    ((Service.exec svc ~thread (Store.Get 8)).Store.outcome = Store.Found);
  checkb "absent get" true
    ((Service.exec svc ~thread (Store.Get 2)).Store.outcome = Store.Absent);
  checkb "remove present" true
    ((Service.exec svc ~thread (Store.Remove 8)).Store.outcome = Store.Removed);
  checkb "remove absent" true
    ((Service.exec svc ~thread (Store.Remove 8)).Store.outcome = Store.Missing);
  check "size sums the shards" 63 (Service.size svc);
  checkb "contents merge sorted" true
    (Service.contents svc = List.sort compare (List.filter (( <> ) 8) keys));
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "service check: %s" e);
  Service.finalize_thread svc ~thread;
  Service.drain svc

let test_scan_spans_shards () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let keys = [ 3; 4; 7; 11; 12; 19; 23 ] in
  List.iter (fun k -> ignore (Service.exec svc ~thread (Store.Insert k))) keys;
  let r = Service.exec svc ~thread (Store.Scan { low = 4; count = 16 }) in
  (match r.Store.outcome with
  | Store.Keys ks ->
      checkb "hits merged in key order" true (ks = [ 4; 7; 11; 12; 19 ])
  | _ -> Alcotest.fail "scan did not return Keys");
  checkb "interval is well-formed" true (r.Store.earliest <= r.Store.stamp)

let test_batch_fuses_per_shard () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  (* three fresh keys on one shard: fused into a single transaction, so
     every reply carries the same commit stamp *)
  let k1 = key_in_shard svc ~shard:2 ~avoid:[] in
  let k2 = key_in_shard svc ~shard:2 ~avoid:[ k1 ] in
  let k3 = key_in_shard svc ~shard:2 ~avoid:[ k1; k2 ] in
  let rs =
    Service.exec_batch svc ~thread
      [| Store.Insert k1; Store.Insert k2; Store.Get k1; Store.Remove k3 |]
  in
  checkb "replies in request order" true
    (Array.map (fun r -> r.Store.outcome) rs
    = [| Store.Inserted; Store.Inserted; Store.Found; Store.Missing |]);
  let s0 = rs.(0).Store.stamp in
  Array.iter
    (fun r ->
      check "one stamp for the fused sub-batch" s0 r.Store.stamp;
      check "fused replies are points" s0 r.Store.earliest)
    rs;
  (* a cross-shard batch scatters per-shard replies back in order *)
  let other = key_in_shard svc ~shard:0 ~avoid:[ k1; k2; k3 ] in
  let rs =
    Service.exec_batch svc ~thread
      [| Store.Get k1; Store.Insert other; Store.Get k2 |]
  in
  checkb "cross-shard batch order" true
    (Array.map (fun r -> r.Store.outcome) rs
    = [| Store.Found; Store.Inserted; Store.Found |])

(* ---------------------------------------------------------------- *)
(* Cross-shard multis (two-phase commit)                             *)
(* ---------------------------------------------------------------- *)

let test_multi_commits_across_shards () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let a = key_in_shard svc ~shard:0 ~avoid:[] in
  let b = key_in_shard svc ~shard:3 ~avoid:[ a ] in
  ignore (Service.exec svc ~thread (Store.Insert b));
  (match
     Service.multi svc ~thread [| Store.Insert a; Store.Remove b; Store.Get a |]
   with
  | Service.Committed rs ->
      checkb "insert applied" true (rs.(0).Store.outcome = Store.Inserted);
      checkb "remove applied" true (rs.(1).Store.outcome = Store.Removed);
      (* the Get was answered by the prepare probe, before the insert *)
      checkb "get answered from prepare" true
        (rs.(2).Store.outcome = Store.Absent)
  | Service.Aborted i -> Alcotest.failf "unexpected abort at %d" i);
  checkb "multi effects visible" true (Service.contents svc = [ a ]);
  check "counter" 1 (List.assoc "multis" (Service.counters svc))

let test_multi_aborts_without_effect () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let a = key_in_shard svc ~shard:0 ~avoid:[] in
  let b = key_in_shard svc ~shard:1 ~avoid:[ a ] in
  ignore (Service.exec svc ~thread (Store.Insert b));
  (* precondition of op 1 fails (b present); op 0 must not apply *)
  (match Service.multi svc ~thread [| Store.Insert a; Store.Insert b |] with
  | Service.Aborted i -> check "failing index reported" 1 i
  | Service.Committed _ -> Alcotest.fail "expected abort");
  checkb "no effect applied" true (Service.contents svc = [ b ]);
  check "abort counter" 1 (List.assoc "multi_aborts" (Service.counters svc));
  match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gates or intent left behind: %s" e

let test_multi_rejects_bad_shapes () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  checkb "scan rejected" true
    (match Service.multi svc ~thread [| Store.Scan { low = 1; count = 4 } |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "duplicate write key rejected" true
    (match Service.multi svc ~thread [| Store.Insert 5; Store.Remove 5 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* The service as a store: the benchmark driver runs it unchanged    *)
(* ---------------------------------------------------------------- *)

let test_driver_drives_service () =
  let svc = Service.create (spec ()) in
  let w =
    Workload.spec ~key_bits:6 ~lookup_pct:40 ~threads:2 ~ops_per_thread:1500 ()
  in
  let r = Driver.run ~verify:true w (Service.as_store svc) in
  (match r.Driver.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "driver verdict: %s" e);
  checkb "sharded label" true
    (String.length (Service.label svc) > 3
    && String.sub (Service.label svc) (String.length (Service.label svc) - 3) 3
       = "/x4")

(* ---------------------------------------------------------------- *)
(* DST: 2PC failure paths                                            *)
(* ---------------------------------------------------------------- *)

(* Build a fresh 2-shard service with a known prefill; [b] routes to a
   different shard than [a], and the multi [Remove kept; Insert a] fails
   mid-apply when the insert's allocation is injected to fail. *)
let svc_and_keys () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~shards:2 (spec ()) in
  let kept = key_in_shard svc ~shard:0 ~avoid:[] in
  let fresh = key_in_shard svc ~shard:1 ~avoid:[ kept ] in
  (svc, kept, fresh)

(* Injected allocation failure in phase 2: the remove applied first must
   be compensated while the gates are held, so the service lands back on
   exactly the initial contents. *)
let rollback_case ~bug () =
  let svc, kept, fresh = svc_and_keys () in
  let init () =
    with_thread (fun ~thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let saw_fault = ref false in
  let body () =
    with_thread (fun ~thread ->
        Dst.Inject.arm Dst.Mp_alloc Dst.Inject.Fail;
        match
          Service.multi svc ~thread [| Store.Remove kept; Store.Insert fresh |]
        with
        | _ -> failwith "armed allocation unexpectedly succeeded"
        | exception Dst.Injected Dst.Mp_alloc -> saw_fault := true)
  in
  {
    Dst.Explore.init = Some init;
    threads = [ body ];
    check =
      (fun () ->
        if not !saw_fault then failwith "fault did not fire";
        (match Service.check svc with
        | Ok () -> ()
        | Error e -> failwith e);
        if Service.contents svc <> [ kept ] then
          failwith
            (if bug then "torn write: the applied remove was not rolled back"
             else "rollback failed to restore the initial contents"));
  }

let test_apply_fault_rolls_back () =
  let c = rollback_case ~bug:false () in
  let o =
    Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
      (Dst.Sched.Random 1) c.Dst.Explore.threads
  in
  checkb "rollback restored the prefix" false (Dst.Sched.failed o);
  Dst.Inject.clear ()

let test_tear_2pc_bug_is_caught () =
  (* bug #4 armed: the same schedule leaves a torn partial write that the
     all-or-nothing check catches; production code replays clean above.
     The flag goes on after the case builder, which clears all arms. *)
  let c = rollback_case ~bug:true () in
  Dst.Inject.set_bug Dst.Inject.Tear_2pc true;
  let o =
    Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
      (Dst.Sched.Random 1) c.Dst.Explore.threads
  in
  Dst.Inject.clear ();
  checkb "torn write detected under the bug flag" true (Dst.Sched.failed o);
  checkb "failure is the check, not a crash" true
    (match o.Dst.Sched.failure with
    | Some (Dst.Sched.Check_failed _) -> true
    | _ -> false)

(* A thread killed between the 2PC phases — after the first sub-op
   applied, before the second — leaves its intent and exclusive gates in
   place (no transactions run during unwinding). [Service.recover] must
   undo the applied prefix, free the dead thread's gates, and restore
   precise pool accounting. *)
let kill_between_phases ~delay_site ~applied_before_kill () =
  let svc, kept, fresh = svc_and_keys () in
  let prefill = [ kept ] in
  let init () =
    with_thread (fun ~thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let victim () =
    with_thread (fun ~thread ->
        (* pass the first visit, then stall until the budget kills us *)
        Dst.Inject.arm ~after:1 delay_site (Dst.Inject.Delay 1_000_000);
        ignore
          (Service.multi svc ~thread
             [| Store.Remove kept; Store.Insert fresh |]))
  in
  let o = Dst.Sched.run ~budget:5_000 ~init (Dst.Sched.Random 1) [ victim ] in
  checkb "run hung at the stalled site" true o.Dst.Sched.hung;
  checkb "hang is not a failure" false (Dst.Sched.failed o);
  (* the victim died mid-2PC: its intent and gates are still in place *)
  checkb "check reports the abandoned intent" true
    (Result.is_error (Service.check svc));
  check "applied prefix before recovery"
    (List.length prefill - applied_before_kill)
    (Service.size svc);
  let resolved = with_thread (fun ~thread:_ -> Service.recover svc) in
  check "one intent resolved" 1 resolved;
  checkb "contents restored to all-or-nothing" true
    (Service.contents svc = prefill);
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after recover: %s" e);
  check "recovered counter" 1 (List.assoc "recovered" (Service.counters svc));
  Service.drain svc;
  (* precise reclamation: every node the rolled-back multi touched went
     back to its pool; live nodes = structure contents, per shard summed *)
  (match Service.pool_live svc with
  | Some live -> check "pool live = contents" (List.length prefill) live
  | None -> Alcotest.fail "expected pool accounting");
  Dst.Inject.clear ()

let test_kill_mid_apply_recovers =
  (* killed at the second apply point: the remove landed, the insert did
     not — recover must re-insert the removed key *)
  kill_between_phases ~delay_site:Dst.Svc_apply ~applied_before_kill:1

let test_kill_mid_prepare_recovers =
  (* killed between prepare probes: nothing applied; recover only frees
     the gates and clears the intent *)
  kill_between_phases ~delay_site:Dst.Svc_prepare ~applied_before_kill:0

(* Recovery with magazines on: the victim's applied remove freed its node
   into the dead thread's magazine. Frees are counted at free time, above
   the magazine layer, so pool accounting must already be exact right
   after [recover]; finalizing the dead thread (which runs its
   [drain_magazines]) and the full drain must only move cached slots,
   never change the live count. *)
let test_kill_mid_apply_mag_recovers () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let mag_spec =
    Factories.Spec.v ~window:4 ~scatter:false ~shards:2 ~fuse:true
      ~magazines:true Factories.Spec.Slist
      (Structs.Mode.Rr_kind (module Rr.V))
  in
  let svc = Service.create mag_spec in
  let contains_sub s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  checkb "magazines are on in the label" true
    (contains_sub (Service.label svc) "+mag");
  let kept = key_in_shard svc ~shard:0 ~avoid:[] in
  let fresh = key_in_shard svc ~shard:1 ~avoid:[ kept ] in
  let init () =
    with_thread (fun ~thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let victim_tid = ref (-1) in
  let victim () =
    with_thread (fun ~thread ->
        victim_tid := thread;
        Dst.Inject.arm ~after:1 Dst.Svc_apply (Dst.Inject.Delay 1_000_000);
        ignore
          (Service.multi svc ~thread
             [| Store.Remove kept; Store.Insert fresh |]))
  in
  let o = Dst.Sched.run ~budget:5_000 ~init (Dst.Sched.Random 1) [ victim ] in
  checkb "run hung at the stalled apply" true o.Dst.Sched.hung;
  checkb "hang is not a failure" false (Dst.Sched.failed o);
  checkb "check reports the abandoned intent" true
    (Result.is_error (Service.check svc));
  let resolved = with_thread (fun ~thread:_ -> Service.recover svc) in
  check "one intent resolved" 1 resolved;
  checkb "contents restored to all-or-nothing" true
    (Service.contents svc = [ kept ]);
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after recover: %s" e);
  (* accounting is exact even while the victim's magazine still caches
     the freed slot *)
  (match Service.pool_live svc with
  | Some live -> check "pool live exact before magazine drain" 1 live
  | None -> Alcotest.fail "expected pool accounting");
  with_thread (fun ~thread:_ ->
      Service.finalize_thread svc ~thread:!victim_tid);
  Service.drain svc;
  (match Service.pool_live svc with
  | Some live -> check "pool live unchanged by magazine drain" 1 live
  | None -> Alcotest.fail "expected pool accounting");
  Dst.Inject.clear ()

(* ---------------------------------------------------------------- *)
(* DST: serializability of mixed single/multi traffic                *)
(* ---------------------------------------------------------------- *)

(* One thread runs scripted singles, another scripted multis, on
   overlapping keys; every committed operation is logged at its commit
   stamp and the merged history must replay against the sequential set
   model. The shared TM clock is what makes the multis' per-shard
   sub-transactions order consistently here (DESIGN.md, decision 10). *)
let serial_oracle_case () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~shards:2 (spec ()) in
  let initial = [ 2; 4; 6; 8 ] in
  let init () =
    with_thread (fun ~thread ->
        List.iter
          (fun k -> ignore (Service.exec svc ~thread (Store.Insert k)))
          initial)
  in
  let logs = Array.make 2 [] in
  let entry op key (r : Store.reply) =
    {
      Serial_check.op;
      key;
      result = Store.positive r.Store.outcome;
      earliest = r.Store.earliest;
      stamp = r.Store.stamp;
    }
  in
  let singles () =
    with_thread (fun ~thread ->
        logs.(0) <-
          List.map
            (fun (op, key) ->
              let o =
                match op with
                | `I -> Store.Insert key
                | `R -> Store.Remove key
                | `L -> Store.Get key
              in
              let w =
                match op with
                | `I -> Workload.Insert
                | `R -> Workload.Remove
                | `L -> Workload.Lookup
              in
              entry w key (Service.exec svc ~thread o))
            [ (`I, 1); (`R, 4); (`L, 2); (`I, 5); (`R, 1); (`L, 6) ])
  in
  let multis () =
    with_thread (fun ~thread ->
        let log_multi ops =
          match Service.multi svc ~thread ops with
          | Service.Aborted _ -> ()
          | Service.Committed rs ->
              Array.iteri
                (fun i r ->
                  let w, key =
                    match ops.(i) with
                    | Store.Insert k -> (Workload.Insert, k)
                    | Store.Remove k -> (Workload.Remove, k)
                    | Store.Get k -> (Workload.Lookup, k)
                    | Store.Scan _ -> assert false
                  in
                  logs.(1) <- entry w key r :: logs.(1))
                rs
        in
        log_multi [| Store.Remove 2; Store.Insert 3; Store.Get 4 |];
        log_multi [| Store.Insert 1; Store.Remove 6 |];
        log_multi [| Store.Remove 8; Store.Insert 9 |];
        logs.(1) <- List.rev logs.(1))
  in
  {
    Dst.Explore.init = Some init;
    threads = [ singles; multis ];
    check =
      (fun () ->
        (match Service.check svc with
        | Ok () -> ()
        | Error e -> failwith e);
        match
          Serial_check.check ~initial
            [ Array.of_list logs.(0); Array.of_list logs.(1) ]
        with
        | Ok () -> ()
        | Error e -> failwith e);
  }

let test_serial_oracle () =
  for seed = 1 to 15 do
    let c = serial_oracle_case () in
    let o =
      Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
        (Dst.Sched.Random seed) c.Dst.Explore.threads
    in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?");
    checkb "completed" false o.Dst.Sched.hung
  done

let () =
  Alcotest.run "service"
    [
      ( "routing",
        [
          Alcotest.test_case "deterministic and balanced" `Quick
            test_routing_deterministic;
          Alcotest.test_case "create validates" `Quick test_create_validates;
        ] );
      ( "spec json",
        [
          Alcotest.test_case "round trip" `Quick test_spec_json_roundtrip;
          Alcotest.test_case "label checked" `Quick
            test_spec_json_label_checked;
          Alcotest.test_case "sharding suffix" `Quick
            test_spec_label_sharding_suffix;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "scan spans shards" `Quick test_scan_spans_shards;
          Alcotest.test_case "batch fuses per shard" `Quick
            test_batch_fuses_per_shard;
        ] );
      ( "2pc",
        [
          Alcotest.test_case "commits across shards" `Quick
            test_multi_commits_across_shards;
          Alcotest.test_case "aborts without effect" `Quick
            test_multi_aborts_without_effect;
          Alcotest.test_case "rejects bad shapes" `Quick
            test_multi_rejects_bad_shapes;
        ] );
      ( "as store",
        [
          Alcotest.test_case "driver drives the service" `Quick
            test_driver_drives_service;
        ] );
      ( "dst",
        [
          Alcotest.test_case "apply fault rolls back" `Quick
            test_apply_fault_rolls_back;
          Alcotest.test_case "tear-2pc bug caught" `Quick
            test_tear_2pc_bug_is_caught;
          Alcotest.test_case "kill mid-apply, recover" `Quick
            test_kill_mid_apply_recovers;
          Alcotest.test_case "kill mid-prepare, recover" `Quick
            test_kill_mid_prepare_recovers;
          Alcotest.test_case "kill mid-apply with magazines, recover" `Quick
            test_kill_mid_apply_mag_recovers;
          Alcotest.test_case "serializability oracle" `Quick
            test_serial_oracle;
        ] );
    ]
