(* The sharded service layer: deterministic routing, same-shard batch
   fusing, cross-shard two-phase commit (commit, abort, rollback and
   recovery paths), the Spec JSON round trip that configures it, and the
   service packed as a Store driving the existing benchmark driver.

   The 2PC failure paths run under the DST scheduler: an injected
   allocation fault mid-apply must trigger compensating rollback, the
   [Tear_2pc] bug flag must reproduce the torn write that rollback
   prevents, and a thread killed between the phases must leave a state
   that [Service.recover] resolves back to all-or-nothing with the
   mempool accounting intact. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

open Harness

let spec ?(shards = 4) () =
  Factories.Spec.v ~window:4 ~scatter:false ~shards ~fuse:true
    Factories.Spec.Slist
    (Structs.Mode.Rr_kind (module Rr.V))

let with_thread f = Tm.Thread.with_registered (fun thread -> f ~thread)

(* A key in [1..bound] (fresh w.r.t. [avoid]) that routes to [shard]. *)
let key_in_shard svc ~shard ~avoid =
  let rec go k =
    if k > 100_000 then failwith "no key found for shard"
    else if Service.shard_of_key svc k = shard && not (List.mem k avoid) then k
    else go (k + 1)
  in
  go 1

(* ---------------------------------------------------------------- *)
(* Routing                                                           *)
(* ---------------------------------------------------------------- *)

let test_routing_deterministic () =
  let a = Service.create (spec ()) and b = Service.create (spec ()) in
  check "shard count from the spec knob" 4 (Service.shards a);
  let population = Array.make 4 0 in
  for k = 1 to 4096 do
    let s = Service.shard_of_key a k in
    checkb "in range" true (s >= 0 && s < 4);
    check "deterministic across instances" s (Service.shard_of_key b k);
    population.(s) <- population.(s) + 1
  done;
  (* the mixer must spread the keyspace, not stripe or clump it *)
  Array.iteri
    (fun s n ->
      if n < 512 || n > 1536 then
        Alcotest.failf "shard %d holds %d of 4096 keys" s n)
    population

let test_create_validates () =
  checkb "shards = 0 rejected" true
    (match Service.create ~shards:0 (spec ()) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "explicit override beats the spec knob" 2
    (Service.shards (Service.create ~shards:2 (spec ())))

(* ---------------------------------------------------------------- *)
(* Spec JSON round trip                                              *)
(* ---------------------------------------------------------------- *)

let test_spec_json_roundtrip () =
  let s = spec () in
  let j = Factories.Spec.to_json s in
  match Factories.Spec.of_json j with
  | Error e -> Alcotest.failf "of_json rejected its own to_json: %s" e
  | Ok s' ->
      checkb "round trip is lossless" true
        (Telemetry.Json.equal j (Factories.Spec.to_json s'));
      Alcotest.(check string)
        "label survives" (Factories.Spec.label s) (Factories.Spec.label s')

let test_spec_json_label_checked () =
  let tampered =
    match Factories.Spec.to_json (spec ()) with
    | Telemetry.Json.Obj kvs ->
        Telemetry.Json.Obj
          (List.map
             (fun (k, v) ->
               if k = "label" then (k, Telemetry.Json.String "RR-FA/x9")
               else (k, v))
             kvs)
    | _ -> Alcotest.fail "to_json is not an object"
  in
  checkb "mismatched label rejected" true
    (Result.is_error (Factories.Spec.of_json tampered))

let test_spec_label_sharding_suffix () =
  let base = Factories.Spec.label (spec ~shards:1 ()) in
  Alcotest.(check string)
    "x4 suffix"
    (base ^ "/x4")
    (Factories.Spec.label (spec ~shards:4 ()));
  checkb "no suffix for one shard" true
    (not (String.contains base '/'))

(* ---------------------------------------------------------------- *)
(* Single-key traffic, scans, batches                                *)
(* ---------------------------------------------------------------- *)

let test_basics () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let keys = List.init 64 (fun i -> (i * 7) + 1) in
  List.iter
    (fun k ->
      checkb "fresh insert" true
        ((Service.exec svc ~thread (Store.Insert k)).Store.outcome
        = Store.Inserted))
    keys;
  checkb "duplicate insert" true
    ((Service.exec svc ~thread (Store.Insert 8)).Store.outcome
    = Store.Duplicate);
  checkb "present get" true
    ((Service.exec svc ~thread (Store.Get 8)).Store.outcome = Store.Found);
  checkb "absent get" true
    ((Service.exec svc ~thread (Store.Get 2)).Store.outcome = Store.Absent);
  checkb "remove present" true
    ((Service.exec svc ~thread (Store.Remove 8)).Store.outcome = Store.Removed);
  checkb "remove absent" true
    ((Service.exec svc ~thread (Store.Remove 8)).Store.outcome = Store.Missing);
  check "size sums the shards" 63 (Service.size svc);
  checkb "contents merge sorted" true
    (Service.contents svc = List.sort compare (List.filter (( <> ) 8) keys));
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "service check: %s" e);
  Service.finalize_thread svc ~thread;
  Service.drain svc

let test_scan_spans_shards () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let keys = [ 3; 4; 7; 11; 12; 19; 23 ] in
  List.iter (fun k -> ignore (Service.exec svc ~thread (Store.Insert k))) keys;
  let r = Service.exec svc ~thread (Store.Scan { low = 4; count = 16 }) in
  (match r.Store.outcome with
  | Store.Keys ks ->
      checkb "hits merged in key order" true (ks = [ 4; 7; 11; 12; 19 ])
  | _ -> Alcotest.fail "scan did not return Keys");
  checkb "interval is well-formed" true (r.Store.earliest <= r.Store.stamp)

let test_batch_fuses_per_shard () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  (* three fresh keys on one shard: fused into a single transaction, so
     every reply carries the same commit stamp *)
  let k1 = key_in_shard svc ~shard:2 ~avoid:[] in
  let k2 = key_in_shard svc ~shard:2 ~avoid:[ k1 ] in
  let k3 = key_in_shard svc ~shard:2 ~avoid:[ k1; k2 ] in
  let rs =
    Service.exec_batch svc ~thread
      [| Store.Insert k1; Store.Insert k2; Store.Get k1; Store.Remove k3 |]
  in
  checkb "replies in request order" true
    (Array.map (fun r -> r.Store.outcome) rs
    = [| Store.Inserted; Store.Inserted; Store.Found; Store.Missing |]);
  let s0 = rs.(0).Store.stamp in
  Array.iter
    (fun r ->
      check "one stamp for the fused sub-batch" s0 r.Store.stamp;
      check "fused replies are points" s0 r.Store.earliest)
    rs;
  (* a cross-shard batch scatters per-shard replies back in order *)
  let other = key_in_shard svc ~shard:0 ~avoid:[ k1; k2; k3 ] in
  let rs =
    Service.exec_batch svc ~thread
      [| Store.Get k1; Store.Insert other; Store.Get k2 |]
  in
  checkb "cross-shard batch order" true
    (Array.map (fun r -> r.Store.outcome) rs
    = [| Store.Found; Store.Inserted; Store.Found |])

(* ---------------------------------------------------------------- *)
(* Cross-shard multis (two-phase commit)                             *)
(* ---------------------------------------------------------------- *)

let test_multi_commits_across_shards () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let a = key_in_shard svc ~shard:0 ~avoid:[] in
  let b = key_in_shard svc ~shard:3 ~avoid:[ a ] in
  ignore (Service.exec svc ~thread (Store.Insert b));
  (match
     Service.multi svc ~thread [| Store.Insert a; Store.Remove b; Store.Get a |]
   with
  | Service.Committed rs ->
      checkb "insert applied" true (rs.(0).Store.outcome = Store.Inserted);
      checkb "remove applied" true (rs.(1).Store.outcome = Store.Removed);
      (* the Get was answered by the prepare probe, before the insert *)
      checkb "get answered from prepare" true
        (rs.(2).Store.outcome = Store.Absent)
  | Service.Aborted i -> Alcotest.failf "unexpected abort at %d" i);
  checkb "multi effects visible" true (Service.contents svc = [ a ]);
  check "counter" 1 (List.assoc "multis" (Service.counters svc))

let test_multi_aborts_without_effect () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  let a = key_in_shard svc ~shard:0 ~avoid:[] in
  let b = key_in_shard svc ~shard:1 ~avoid:[ a ] in
  ignore (Service.exec svc ~thread (Store.Insert b));
  (* precondition of op 1 fails (b present); op 0 must not apply *)
  (match Service.multi svc ~thread [| Store.Insert a; Store.Insert b |] with
  | Service.Aborted i -> check "failing index reported" 1 i
  | Service.Committed _ -> Alcotest.fail "expected abort");
  checkb "no effect applied" true (Service.contents svc = [ b ]);
  check "abort counter" 1 (List.assoc "multi_aborts" (Service.counters svc));
  match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "gates or intent left behind: %s" e

let test_multi_rejects_bad_shapes () =
  let svc = Service.create (spec ()) in
  with_thread @@ fun ~thread ->
  checkb "scan rejected" true
    (match Service.multi svc ~thread [| Store.Scan { low = 1; count = 4 } |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "duplicate write key rejected" true
    (match Service.multi svc ~thread [| Store.Insert 5; Store.Remove 5 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* The service as a store: the benchmark driver runs it unchanged    *)
(* ---------------------------------------------------------------- *)

let test_driver_drives_service () =
  let svc = Service.create (spec ()) in
  let w =
    Workload.spec ~key_bits:6 ~lookup_pct:40 ~threads:2 ~ops_per_thread:1500 ()
  in
  let r = Driver.run ~verify:true w (Service.as_store svc) in
  (match r.Driver.verdict with
  | Ok () -> ()
  | Error e -> Alcotest.failf "driver verdict: %s" e);
  checkb "sharded label" true
    (String.length (Service.label svc) > 3
    && String.sub (Service.label svc) (String.length (Service.label svc) - 3) 3
       = "/x4")

(* ---------------------------------------------------------------- *)
(* DST: 2PC failure paths                                            *)
(* ---------------------------------------------------------------- *)

(* Build a fresh 2-shard service with a known prefill; [b] routes to a
   different shard than [a], and the multi [Remove kept; Insert a] fails
   mid-apply when the insert's allocation is injected to fail. *)
let svc_and_keys () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~shards:2 (spec ()) in
  let kept = key_in_shard svc ~shard:0 ~avoid:[] in
  let fresh = key_in_shard svc ~shard:1 ~avoid:[ kept ] in
  (svc, kept, fresh)

(* Injected allocation failure in phase 2: the remove applied first must
   be compensated while the gates are held, so the service lands back on
   exactly the initial contents. *)
let rollback_case ~bug () =
  let svc, kept, fresh = svc_and_keys () in
  let init () =
    with_thread (fun ~thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let saw_fault = ref false in
  let body () =
    with_thread (fun ~thread ->
        Dst.Inject.arm Dst.Mp_alloc Dst.Inject.Fail;
        match
          Service.multi svc ~thread [| Store.Remove kept; Store.Insert fresh |]
        with
        | _ -> failwith "armed allocation unexpectedly succeeded"
        | exception Dst.Injected Dst.Mp_alloc -> saw_fault := true)
  in
  {
    Dst.Explore.init = Some init;
    threads = [ body ];
    check =
      (fun () ->
        if not !saw_fault then failwith "fault did not fire";
        (match Service.check svc with
        | Ok () -> ()
        | Error e -> failwith e);
        if Service.contents svc <> [ kept ] then
          failwith
            (if bug then "torn write: the applied remove was not rolled back"
             else "rollback failed to restore the initial contents"));
  }

let test_apply_fault_rolls_back () =
  let c = rollback_case ~bug:false () in
  let o =
    Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
      (Dst.Sched.Random 1) c.Dst.Explore.threads
  in
  checkb "rollback restored the prefix" false (Dst.Sched.failed o);
  Dst.Inject.clear ()

let test_tear_2pc_bug_is_caught () =
  (* bug #4 armed: the same schedule leaves a torn partial write that the
     all-or-nothing check catches; production code replays clean above.
     The flag goes on after the case builder, which clears all arms. *)
  let c = rollback_case ~bug:true () in
  Dst.Inject.set_bug Dst.Inject.Tear_2pc true;
  let o =
    Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
      (Dst.Sched.Random 1) c.Dst.Explore.threads
  in
  Dst.Inject.clear ();
  checkb "torn write detected under the bug flag" true (Dst.Sched.failed o);
  checkb "failure is the check, not a crash" true
    (match o.Dst.Sched.failure with
    | Some (Dst.Sched.Check_failed _) -> true
    | _ -> false)

(* A thread killed between the 2PC phases — after the first sub-op
   applied, before the second — leaves its intent and exclusive gates in
   place (no transactions run during unwinding). [Service.recover] must
   undo the applied prefix, free the dead thread's gates, and restore
   precise pool accounting. *)
let kill_between_phases ~delay_site ~applied_before_kill () =
  let svc, kept, fresh = svc_and_keys () in
  let prefill = [ kept ] in
  let init () =
    with_thread (fun ~thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let victim () =
    with_thread (fun ~thread ->
        (* pass the first visit, then stall until the budget kills us *)
        Dst.Inject.arm ~after:1 delay_site (Dst.Inject.Delay 1_000_000);
        ignore
          (Service.multi svc ~thread
             [| Store.Remove kept; Store.Insert fresh |]))
  in
  let o = Dst.Sched.run ~budget:5_000 ~init (Dst.Sched.Random 1) [ victim ] in
  checkb "run hung at the stalled site" true o.Dst.Sched.hung;
  checkb "hang is not a failure" false (Dst.Sched.failed o);
  (* the victim died mid-2PC: its intent and gates are still in place *)
  checkb "check reports the abandoned intent" true
    (Result.is_error (Service.check svc));
  check "applied prefix before recovery"
    (List.length prefill - applied_before_kill)
    (Service.size svc);
  let resolved = with_thread (fun ~thread:_ -> Service.recover svc) in
  check "one intent resolved" 1 resolved;
  checkb "contents restored to all-or-nothing" true
    (Service.contents svc = prefill);
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after recover: %s" e);
  check "recovered counter" 1 (List.assoc "recovered" (Service.counters svc));
  Service.drain svc;
  (* precise reclamation: every node the rolled-back multi touched went
     back to its pool; live nodes = structure contents, per shard summed *)
  (match Service.pool_live svc with
  | Some live -> check "pool live = contents" (List.length prefill) live
  | None -> Alcotest.fail "expected pool accounting");
  Dst.Inject.clear ()

let test_kill_mid_apply_recovers =
  (* killed at the second apply point: the remove landed, the insert did
     not — recover must re-insert the removed key *)
  kill_between_phases ~delay_site:Dst.Svc_apply ~applied_before_kill:1

let test_kill_mid_prepare_recovers =
  (* killed between prepare probes: nothing applied; recover only frees
     the gates and clears the intent *)
  kill_between_phases ~delay_site:Dst.Svc_prepare ~applied_before_kill:0

(* Recovery with magazines on: the victim's applied remove freed its node
   into the dead thread's magazine. Frees are counted at free time, above
   the magazine layer, so pool accounting must already be exact right
   after [recover]; finalizing the dead thread (which runs its
   [drain_magazines]) and the full drain must only move cached slots,
   never change the live count. *)
let test_kill_mid_apply_mag_recovers () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let mag_spec =
    Factories.Spec.v ~window:4 ~scatter:false ~shards:2 ~fuse:true
      ~magazines:true Factories.Spec.Slist
      (Structs.Mode.Rr_kind (module Rr.V))
  in
  let svc = Service.create mag_spec in
  let contains_sub s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  checkb "magazines are on in the label" true
    (contains_sub (Service.label svc) "+mag");
  let kept = key_in_shard svc ~shard:0 ~avoid:[] in
  let fresh = key_in_shard svc ~shard:1 ~avoid:[ kept ] in
  let init () =
    with_thread (fun ~thread ->
        ignore (Service.exec svc ~thread (Store.Insert kept)))
  in
  let victim_tid = ref (-1) in
  let victim () =
    with_thread (fun ~thread ->
        victim_tid := thread;
        Dst.Inject.arm ~after:1 Dst.Svc_apply (Dst.Inject.Delay 1_000_000);
        ignore
          (Service.multi svc ~thread
             [| Store.Remove kept; Store.Insert fresh |]))
  in
  let o = Dst.Sched.run ~budget:5_000 ~init (Dst.Sched.Random 1) [ victim ] in
  checkb "run hung at the stalled apply" true o.Dst.Sched.hung;
  checkb "hang is not a failure" false (Dst.Sched.failed o);
  checkb "check reports the abandoned intent" true
    (Result.is_error (Service.check svc));
  let resolved = with_thread (fun ~thread:_ -> Service.recover svc) in
  check "one intent resolved" 1 resolved;
  checkb "contents restored to all-or-nothing" true
    (Service.contents svc = [ kept ]);
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after recover: %s" e);
  (* accounting is exact even while the victim's magazine still caches
     the freed slot *)
  (match Service.pool_live svc with
  | Some live -> check "pool live exact before magazine drain" 1 live
  | None -> Alcotest.fail "expected pool accounting");
  with_thread (fun ~thread:_ ->
      Service.finalize_thread svc ~thread:!victim_tid);
  Service.drain svc;
  (match Service.pool_live svc with
  | Some live -> check "pool live unchanged by magazine drain" 1 live
  | None -> Alcotest.fail "expected pool accounting");
  Dst.Inject.clear ()

(* ---------------------------------------------------------------- *)
(* DST: serializability of mixed single/multi traffic                *)
(* ---------------------------------------------------------------- *)

(* One thread runs scripted singles, another scripted multis, on
   overlapping keys; every committed operation is logged at its commit
   stamp and the merged history must replay against the sequential set
   model. The shared TM clock is what makes the multis' per-shard
   sub-transactions order consistently here (DESIGN.md, decision 10). *)
let serial_oracle_case () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~shards:2 (spec ()) in
  let initial = [ 2; 4; 6; 8 ] in
  let init () =
    with_thread (fun ~thread ->
        List.iter
          (fun k -> ignore (Service.exec svc ~thread (Store.Insert k)))
          initial)
  in
  let logs = Array.make 2 [] in
  let entry op key (r : Store.reply) =
    {
      Serial_check.op;
      key;
      result = Store.positive r.Store.outcome;
      earliest = r.Store.earliest;
      stamp = r.Store.stamp;
    }
  in
  let singles () =
    with_thread (fun ~thread ->
        logs.(0) <-
          List.map
            (fun (op, key) ->
              let o =
                match op with
                | `I -> Store.Insert key
                | `R -> Store.Remove key
                | `L -> Store.Get key
              in
              let w =
                match op with
                | `I -> Workload.Insert
                | `R -> Workload.Remove
                | `L -> Workload.Lookup
              in
              entry w key (Service.exec svc ~thread o))
            [ (`I, 1); (`R, 4); (`L, 2); (`I, 5); (`R, 1); (`L, 6) ])
  in
  let multis () =
    with_thread (fun ~thread ->
        let log_multi ops =
          match Service.multi svc ~thread ops with
          | Service.Aborted _ -> ()
          | Service.Committed rs ->
              Array.iteri
                (fun i r ->
                  let w, key =
                    match ops.(i) with
                    | Store.Insert k -> (Workload.Insert, k)
                    | Store.Remove k -> (Workload.Remove, k)
                    | Store.Get k -> (Workload.Lookup, k)
                    | Store.Scan _ -> assert false
                  in
                  logs.(1) <- entry w key r :: logs.(1))
                rs
        in
        log_multi [| Store.Remove 2; Store.Insert 3; Store.Get 4 |];
        log_multi [| Store.Insert 1; Store.Remove 6 |];
        log_multi [| Store.Remove 8; Store.Insert 9 |];
        logs.(1) <- List.rev logs.(1))
  in
  {
    Dst.Explore.init = Some init;
    threads = [ singles; multis ];
    check =
      (fun () ->
        (match Service.check svc with
        | Ok () -> ()
        | Error e -> failwith e);
        match
          Serial_check.check ~initial
            [ Array.of_list logs.(0); Array.of_list logs.(1) ]
        with
        | Ok () -> ()
        | Error e -> failwith e);
  }

let test_serial_oracle () =
  for seed = 1 to 15 do
    let c = serial_oracle_case () in
    let o =
      Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
        (Dst.Sched.Random seed) c.Dst.Explore.threads
    in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?");
    checkb "completed" false o.Dst.Sched.hung
  done

(* ---------------------------------------------------------------- *)
(* Spec knobs for the front layers                                   *)
(* ---------------------------------------------------------------- *)

let layered_spec ?pool ?hotcache ?slo_us ?(shards = 2) () =
  Factories.Spec.v ~window:4 ~scatter:false ~shards ~fuse:true ?pool ?hotcache
    ?slo_us Factories.Spec.Slist
    (Structs.Mode.Rr_kind (module Rr.V))

let contains_sub s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_spec_layer_knobs () =
  let s = layered_spec ~pool:true ~hotcache:true ~slo_us:5000 () in
  let l = Factories.Spec.label s in
  checkb "+pool in the label" true (contains_sub l "+pool");
  checkb "+hotcache in the label" true (contains_sub l "+hotcache");
  checkb "+slo in the label" true (contains_sub l "+slo5000");
  checkb "knobs precede the shard suffix" true
    (String.length l > 3 && String.sub l (String.length l - 3) 3 = "/x2");
  (match Factories.Spec.of_json (Factories.Spec.to_json s) with
  | Error e -> Alcotest.failf "of_json rejected layered to_json: %s" e
  | Ok s' ->
      checkb "layered round trip is lossless" true
        (Telemetry.Json.equal (Factories.Spec.to_json s)
           (Factories.Spec.to_json s')));
  checkb "slo without pool rejected" true
    (match layered_spec ~slo_us:5000 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "slo_us = 0 rejected" true
    (match layered_spec ~pool:true ~slo_us:0 () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "create rejects slo without pool too" true
    (match Service.create ~slo_us:5000 (spec ()) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------------------------------------------------------- *)
(* Worker pool: deterministic spawnless driving                      *)
(* ---------------------------------------------------------------- *)

(* [pool_spawn:false] starts no worker domains: the test drives drains
   through [pool_step], so enqueue/execute interleavings are explicit. *)
let pooled_svc ?slo_us ?hotcache () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  Service.create ~shards:2 ~pool:true ~pool_spawn:false ?slo_us ?hotcache
    (spec ~shards:2 ())

let test_pool_async_spawnless () =
  let svc = pooled_svc () in
  with_thread @@ fun ~thread ->
  let k1 = key_in_shard svc ~shard:0 ~avoid:[] in
  let t1 = Service.submit svc ~thread [| Store.Insert k1 |] in
  (match t1 with
  | Service.Queued _ -> ()
  | _ -> Alcotest.fail "same-shard group should ride the queue");
  check "queued" 1 (Service.queued svc);
  check "per-shard depth" 1 (Service.queue_depth svc ~shard:0);
  checkb "not yet executed" true (Service.try_await svc t1 = None);
  checkb "check flags the backlog" true (Result.is_error (Service.check svc));
  check "one step drains it" 1 (Service.pool_step svc ~shard:0 ~thread);
  (match Service.try_await svc t1 with
  | Some rs ->
      checkb "insert applied" true (rs.(0).Store.outcome = Store.Inserted)
  | None -> Alcotest.fail "completion cell not filled");
  checkb "await after completion" true
    ((Service.await svc t1).(0).Store.outcome = Store.Inserted);
  (* cross-shard groups and scans degrade to the synchronous paths *)
  let k2 = key_in_shard svc ~shard:1 ~avoid:[ k1 ] in
  (match Service.submit svc ~thread [| Store.Get k1; Store.Insert k2 |] with
  | Service.Done rs ->
      checkb "sync fallback in order" true
        (Array.map (fun r -> r.Store.outcome) rs
        = [| Store.Found; Store.Inserted |])
  | _ -> Alcotest.fail "cross-shard group should complete synchronously");
  (match Service.submit svc ~thread [| Store.Scan { low = 1; count = 8 } |] with
  | Service.Done _ -> ()
  | _ -> Alcotest.fail "scan should complete synchronously");
  check "empty after drain" 0 (Service.queued svc);
  Service.shutdown svc;
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "check: %s" e);
  Service.finalize_thread svc ~thread;
  Service.drain svc

let test_pool_fused_drain () =
  let svc = pooled_svc () in
  with_thread @@ fun ~thread ->
  let k1 = key_in_shard svc ~shard:0 ~avoid:[] in
  let k2 = key_in_shard svc ~shard:0 ~avoid:[ k1 ] in
  let k3 = key_in_shard svc ~shard:0 ~avoid:[ k1; k2 ] in
  let ts =
    List.map
      (fun k -> Service.submit svc ~thread [| Store.Insert k |])
      [ k1; k2; k3 ]
  in
  check "three queued" 3 (Service.queued svc);
  check "one step drains all three" 3 (Service.pool_step svc ~shard:0 ~thread);
  let rs = List.map (fun t -> (Service.await svc t).(0)) ts in
  List.iter
    (fun (r : Store.reply) ->
      checkb "inserted" true (r.Store.outcome = Store.Inserted))
    rs;
  (match rs with
  | a :: rest ->
      List.iter
        (fun (r : Store.reply) ->
          check "one stamp for the fused drain" a.Store.stamp r.Store.stamp)
        rest
  | [] -> assert false);
  let c = Service.counters svc in
  check "drained_requests" 3 (List.assoc "drained_requests" c);
  check "drained_batches" 1 (List.assoc "drained_batches" c);
  Service.shutdown svc;
  Service.finalize_thread svc ~thread;
  Service.drain svc

let test_pool_admission_sheds () =
  let svc = pooled_svc ~slo_us:1_000 () in
  with_thread @@ fun ~thread ->
  let k0 = key_in_shard svc ~shard:0 ~avoid:[] in
  checkb "not overloaded at rest" true (not (Service.overloaded svc ~shard:0));
  (* Low rides the queue while the controller is calm *)
  let t0 = Service.submit svc ~thread ~priority:Service.Low [| Store.Insert k0 |] in
  (match t0 with
  | Service.Queued _ -> ()
  | _ -> Alcotest.fail "low must be admitted at rest");
  check "drained" 1 (Service.pool_step svc ~shard:0 ~thread);
  checkb "low executed" true
    ((Service.await svc t0).(0).Store.outcome = Store.Inserted);
  (* an open-loop lag burst pushes the EWMA past the SLO budget *)
  Service.note_lag svc 8_000_000;
  checkb "overloaded after the lag burst" true (Service.overloaded svc ~shard:0);
  let t1 =
    Service.submit svc ~thread ~priority:Service.Low
      [| Store.Get k0; Store.Get k0 |]
  in
  (match t1 with
  | Service.Shed n -> check "shed covers the whole group" 2 n
  | _ -> Alcotest.fail "low must shed under overload");
  let rs = Service.await svc t1 in
  check "overload replies for every op" 2 (Array.length rs);
  Array.iter
    (fun (r : Store.reply) ->
      checkb "overload outcome" true (r.Store.outcome = Store.Overload);
      checkb "overload is not positive" true
        (not (Store.positive r.Store.outcome)))
    rs;
  (* High is never shed, only counted as deferred *)
  (match Service.submit svc ~thread ~priority:Service.High [| Store.Get k0 |] with
  | Service.Queued _ -> ()
  | _ -> Alcotest.fail "high must be admitted under overload");
  check "drain the deferred high" 1 (Service.pool_step svc ~shard:0 ~thread);
  let c = Service.counters svc in
  checkb "shed_low counted" true (List.assoc "shed_low" c >= 1);
  check "no high sheds ever" 0 (List.assoc "shed_high" c);
  checkb "deferred high counted" true (List.assoc "deferred_high" c >= 1);
  Service.shutdown svc;
  Service.finalize_thread svc ~thread;
  Service.drain svc

(* Real worker domains: a pipelined client against the model, then
   zero-leak accounting through the workers' thread finalizers. *)
let test_pool_workers_end_to_end () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~shards:2 ~pool:true (spec ~shards:2 ()) in
  with_thread @@ fun ~thread ->
  let model = Hashtbl.create 64 in
  let mismatches = ref 0 in
  for i = 1 to 300 do
    let k = 1 + ((i * 37) mod 48) in
    let op =
      match i mod 3 with
      | 0 -> Store.Insert k
      | 1 -> Store.Remove k
      | _ -> Store.Get k
    in
    let t = Service.submit svc ~thread [| op |] in
    let r = (Service.await svc t).(0) in
    let expected =
      match op with
      | Store.Insert _ ->
          let e = not (Hashtbl.mem model k) in
          if e then Hashtbl.replace model k ();
          e
      | Store.Remove _ ->
          let e = Hashtbl.mem model k in
          if e then Hashtbl.remove model k;
          e
      | Store.Get _ -> Hashtbl.mem model k
      | Store.Scan _ -> assert false
    in
    if Store.positive r.Store.outcome <> expected then incr mismatches
  done;
  check "every awaited reply matches the model" 0 !mismatches;
  Service.shutdown svc;
  (match Service.check svc with
  | Ok () -> ()
  | Error e -> Alcotest.failf "after shutdown: %s" e);
  check "workers drained every request" 300
    (List.assoc "drained_requests" (Service.counters svc));
  Service.finalize_thread svc ~thread;
  Service.drain svc;
  checkb "final contents match the model" true
    (Service.contents svc
    = List.sort compare (Hashtbl.fold (fun k () a -> k :: a) model []));
  match Service.pool_live svc with
  | Some live ->
      check "zero leak through worker finalizers" (Hashtbl.length model) live
  | None -> Alcotest.fail "expected pool accounting"

(* ---------------------------------------------------------------- *)
(* Hot-key read cache                                                *)
(* ---------------------------------------------------------------- *)

let test_hotcache_unit () =
  let module H = Service.Hot_cache in
  Dst.Inject.clear ();
  let hc = H.create ~capacity:16 ~shards:2 () in
  let reply o = { Store.outcome = o; earliest = 7; stamp = 9 } in
  checkb "cold miss" true (H.find hc ~shard:0 ~thread:0 5 = None);
  let e0 = H.epoch hc ~shard:0 in
  H.note hc ~shard:0 ~epoch0:e0 5 (reply Store.Found);
  (match H.find hc ~shard:0 ~thread:0 5 with
  | Some r ->
      checkb "hit replays the reply" true
        (r.Store.outcome = Store.Found && r.Store.stamp = 9
       && r.Store.earliest = 7)
  | None -> Alcotest.fail "expected a hit");
  (* a writer bump invalidates the whole shard *)
  H.bump hc ~shard:0 ~stamp:12;
  checkb "invalidated after bump" true (H.find hc ~shard:0 ~thread:0 5 = None);
  (* stillborn populate: an epoch sampled before a write never serves *)
  let e1 = H.epoch hc ~shard:0 in
  H.bump hc ~shard:0 ~stamp:15;
  H.note hc ~shard:0 ~epoch0:e1 5 (reply Store.Absent);
  checkb "stale populate never serves" true
    (H.find hc ~shard:0 ~thread:0 5 = None);
  (* only lookup replies populate *)
  H.note hc ~shard:1 ~epoch0:(H.epoch hc ~shard:1) 3 (reply Store.Inserted);
  checkb "writes are not cached" true (H.find hc ~shard:1 ~thread:0 3 = None);
  (* shard-0 bumps do not touch shard 1 *)
  H.note hc ~shard:1 ~epoch0:(H.epoch hc ~shard:1) 3 (reply Store.Found);
  checkb "per-shard isolation" true (H.find hc ~shard:1 ~thread:0 3 <> None);
  let stats = H.stats hc in
  check "invalidations counted" 2 (List.assoc "cache_invalidations" stats);
  check "hits counted" 2 (List.assoc "cache_hits" stats);
  check "misses counted" 4 (List.assoc "cache_misses" stats);
  checkb "hit rate" true (abs_float (H.hit_rate hc -. (2. /. 6.)) < 1e-9)

let test_service_cache_hits () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc = Service.create ~shards:2 ~hotcache:true (spec ~shards:2 ()) in
  with_thread @@ fun ~thread ->
  let k = key_in_shard svc ~shard:0 ~avoid:[] in
  ignore (Service.exec svc ~thread (Store.Insert k));
  checkb "first get misses and populates" true
    ((Service.exec svc ~thread (Store.Get k)).Store.outcome = Store.Found);
  checkb "second get hits" true
    ((Service.exec svc ~thread (Store.Get k)).Store.outcome = Store.Found);
  check "one hit" 1 (List.assoc "cache_hits" (Service.counters svc));
  checkb "hit rate positive" true (Service.cache_hit_rate svc > 0.);
  (* any same-shard write invalidates the cached entry *)
  let k2 = key_in_shard svc ~shard:0 ~avoid:[ k ] in
  ignore (Service.exec svc ~thread (Store.Insert k2));
  checkb "invalidated entry re-misses" true
    ((Service.exec svc ~thread (Store.Get k)).Store.outcome = Store.Found);
  check "still one hit" 1 (List.assoc "cache_hits" (Service.counters svc));
  checkb "invalidations counted" true
    (List.assoc "cache_invalidations" (Service.counters svc) >= 1);
  (* a lone cached Get completes inline through submit, pool or not *)
  (match Service.submit svc ~thread [| Store.Get k |] with
  | Service.Done rs ->
      checkb "inline cache hit" true (rs.(0).Store.outcome = Store.Found)
  | _ -> Alcotest.fail "expected an inline completion");
  check "two hits" 2 (List.assoc "cache_hits" (Service.counters svc));
  Service.finalize_thread svc ~thread;
  Service.drain svc

(* Satellite: a cross-shard multi must invalidate the caches of every
   shard it writes before either exclusive gate is released — no lookup
   after the 2PC can be served from a pre-multi entry. TxSan's freshness
   rule is armed for the whole test. *)
let test_2pc_invalidates_both_shards () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  San.reset ();
  San.set_enabled ~mode:San.Raise true;
  Fun.protect ~finally:(fun () ->
      San.set_enabled false;
      San.reset ())
  @@ fun () ->
  let svc = Service.create ~shards:2 ~hotcache:true (spec ~shards:2 ()) in
  with_thread @@ fun ~thread ->
  let a = key_in_shard svc ~shard:0 ~avoid:[] in
  let b = key_in_shard svc ~shard:1 ~avoid:[ a ] in
  ignore (Service.exec svc ~thread (Store.Insert b));
  (* warm both shards' caches and confirm they serve *)
  checkb "a absent" true
    ((Service.exec svc ~thread (Store.Get a)).Store.outcome = Store.Absent);
  checkb "b found" true
    ((Service.exec svc ~thread (Store.Get b)).Store.outcome = Store.Found);
  checkb "a hit" true
    ((Service.exec svc ~thread (Store.Get a)).Store.outcome = Store.Absent);
  checkb "b hit" true
    ((Service.exec svc ~thread (Store.Get b)).Store.outcome = Store.Found);
  check "both shards serving" 2 (List.assoc "cache_hits" (Service.counters svc));
  let inv0 = List.assoc "cache_invalidations" (Service.counters svc) in
  (match Service.multi svc ~thread [| Store.Insert a; Store.Remove b |] with
  | Service.Committed _ -> ()
  | Service.Aborted i -> Alcotest.failf "unexpected abort at %d" i);
  checkb "both shards invalidated" true
    (List.assoc "cache_invalidations" (Service.counters svc) >= inv0 + 2);
  (* post-2PC lookups see the multi's effects, not the dead entries *)
  checkb "a now found" true
    ((Service.exec svc ~thread (Store.Get a)).Store.outcome = Store.Found);
  checkb "b now absent" true
    ((Service.exec svc ~thread (Store.Get b)).Store.outcome = Store.Absent);
  check "no stale hit served" 2 (List.assoc "cache_hits" (Service.counters svc));
  check "no freshness violation" 0 (San.total_violations ());
  Service.finalize_thread svc ~thread;
  Service.drain svc

(* The [Stale_cache] injected bug: the writer commits but skips the
   invalidation. The entry stays servable, and the TxSan freshness rule
   must name the stale hit at the faulting access. Injected bugs are
   only live inside a DST run, so the deterministic sequence runs as a
   solo logical thread. *)
let test_stale_cache_bug_caught () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  San.reset ();
  San.set_enabled ~mode:San.Raise true;
  Fun.protect ~finally:(fun () ->
      San.set_enabled false;
      San.reset ();
      Dst.Inject.clear ())
  @@ fun () ->
  let svc = Service.create ~shards:2 ~hotcache:true (spec ~shards:2 ()) in
  Dst.Inject.set_bug Dst.Inject.Stale_cache true;
  let body () =
    with_thread (fun ~thread ->
        let k = key_in_shard svc ~shard:0 ~avoid:[] in
        if (Service.exec svc ~thread (Store.Get k)).Store.outcome <> Store.Absent
        then failwith "expected an absent populate";
        ignore (Service.exec svc ~thread (Store.Insert k));
        ignore (Service.exec svc ~thread (Store.Get k));
        failwith "stale hit served without a report")
  in
  let o = Dst.Sched.run (Dst.Sched.Random 1) [ body ] in
  match o.Dst.Sched.failure with
  | Some (Dst.Sched.Thread_raised { exn = San.Violation r; _ }) ->
      checkb "rule is stale-cache-hit" true (r.San.rule = San.Stale_cache_hit)
  | Some f ->
      Alcotest.failf "unexpected failure: %s"
        (Format.asprintf "%a" Dst.Sched.pp_failure f)
  | None -> Alcotest.fail "stale hit served without a report"

(* qcheck: a cached service driven through a random op sequence (singles
   and cross-shard multis) agrees with the sequential set model — cached
   lookups included. *)
let qcheck_cached_matches_model =
  let open QCheck in
  let gen =
    Gen.(
      let key = map (fun k -> k + 1) (int_bound 23) in
      list_size (int_bound 80)
        (frequency
           [
             (3, map (fun k -> `I k) key);
             (3, map (fun k -> `R k) key);
             (6, map (fun k -> `L k) key);
             (1, map (fun k -> `M (k, k + 1)) key);
           ]))
  in
  let print ops =
    String.concat ";"
      (List.map
         (function
           | `I k -> Printf.sprintf "I%d" k
           | `R k -> Printf.sprintf "R%d" k
           | `L k -> Printf.sprintf "L%d" k
           | `M (a, b) -> Printf.sprintf "M%d-%d" a b)
         ops)
  in
  Test.make ~name:"hotcache: cached lookups match the sequential model"
    ~count:50 (make ~print gen)
    (fun ops ->
      let svc = Service.create ~shards:2 ~hotcache:true (spec ~shards:2 ()) in
      Tm.Thread.with_registered (fun thread ->
          let model = Hashtbl.create 32 in
          let ok =
            List.for_all
              (function
                | `I k ->
                    let e = not (Hashtbl.mem model k) in
                    if e then Hashtbl.replace model k ();
                    Store.positive
                      (Service.exec svc ~thread (Store.Insert k)).Store.outcome
                    = e
                | `R k ->
                    let e = Hashtbl.mem model k in
                    if e then Hashtbl.remove model k;
                    Store.positive
                      (Service.exec svc ~thread (Store.Remove k)).Store.outcome
                    = e
                | `L k ->
                    Store.positive
                      (Service.exec svc ~thread (Store.Get k)).Store.outcome
                    = Hashtbl.mem model k
                | `M (a, b) -> (
                    let pa = not (Hashtbl.mem model a)
                    and pb = Hashtbl.mem model b in
                    match
                      Service.multi svc ~thread
                        [| Store.Insert a; Store.Remove b |]
                    with
                    | Service.Committed _ ->
                        if pa && pb then (
                          Hashtbl.replace model a ();
                          Hashtbl.remove model b;
                          true)
                        else false
                    | Service.Aborted _ -> not (pa && pb)))
              ops
          in
          Service.finalize_thread svc ~thread;
          Service.drain svc;
          ok
          && Service.contents svc
             = List.sort compare (Hashtbl.fold (fun k () a -> k :: a) model [])
          && Service.check svc = Ok ()))

(* ---------------------------------------------------------------- *)
(* DST: queue drains vs submissions, and vs 2PC gates                *)
(* ---------------------------------------------------------------- *)

(* A producer submits through the queues and awaits through the
   scheduler while a drainer thread runs [pool_step]: every ticket must
   complete with the right outcome regardless of the interleaving. *)
let pool_drain_case () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc =
    Service.create ~shards:2 ~pool:true ~pool_spawn:false (spec ~shards:2 ())
  in
  let producer_done = ref false in
  let bad = ref 0 in
  let producer () =
    with_thread (fun ~thread ->
        let ts =
          List.map
            (fun k -> Service.submit svc ~thread [| Store.Insert k |])
            [ 1; 2; 3; 4; 5; 6 ]
        in
        List.iter
          (fun t ->
            if (Service.await svc t).(0).Store.outcome <> Store.Inserted then
              incr bad)
          ts;
        producer_done := true)
  in
  let drainer () =
    with_thread (fun ~thread ->
        while (not !producer_done) || Service.queued svc > 0 do
          ignore (Service.pool_step svc ~shard:0 ~thread);
          ignore (Service.pool_step svc ~shard:1 ~thread);
          Dst.point Dst.Svc_drain
        done)
  in
  {
    Dst.Explore.init = None;
    threads = [ producer; drainer ];
    check =
      (fun () ->
        if !bad > 0 then failwith "a queued insert lost its effect";
        (match Service.check svc with
        | Ok () -> ()
        | Error e -> failwith e);
        if Service.contents svc <> [ 1; 2; 3; 4; 5; 6 ] then
          failwith "drained contents are wrong");
  }

let test_dst_pool_drain () =
  for seed = 1 to 10 do
    let c = pool_drain_case () in
    let o =
      Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
        (Dst.Sched.Random seed) c.Dst.Explore.threads
    in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?");
    checkb "completed" false o.Dst.Sched.hung
  done

(* Queue drains (shared gates) racing a cross-shard 2PC (exclusive
   gates): whatever order the scheduler picks, the history must land on
   one of the two serializable outcomes, never a torn mix. *)
let pool_2pc_case () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let svc =
    Service.create ~shards:2 ~pool:true ~pool_spawn:false ~hotcache:true
      (spec ~shards:2 ())
  in
  let a = key_in_shard svc ~shard:0 ~avoid:[] in
  let b = key_in_shard svc ~shard:1 ~avoid:[ a ] in
  let done_ = Array.make 2 false in
  let submitter () =
    with_thread (fun ~thread ->
        let t1 = Service.submit svc ~thread [| Store.Insert a |] in
        if not (Store.positive (Service.await svc t1).(0).Store.outcome) then
          failwith "insert of a fresh key failed";
        let t2 = Service.submit svc ~thread [| Store.Get a |] in
        ignore (Service.await svc t2);
        done_.(0) <- true)
  in
  let multi_thread () =
    with_thread (fun ~thread ->
        (match Service.multi svc ~thread [| Store.Remove a; Store.Insert b |] with
        | Service.Committed _ | Service.Aborted _ -> ());
        done_.(1) <- true)
  in
  let drainer () =
    with_thread (fun ~thread ->
        while (not (done_.(0) && done_.(1))) || Service.queued svc > 0 do
          ignore (Service.pool_step svc ~shard:0 ~thread);
          ignore (Service.pool_step svc ~shard:1 ~thread);
          Dst.point Dst.Svc_drain
        done)
  in
  {
    Dst.Explore.init = None;
    threads = [ submitter; multi_thread; drainer ];
    check =
      (fun () ->
        (match Service.check svc with
        | Ok () -> ()
        | Error e -> failwith e);
        (* multi-first: it aborts (a absent), insert lands -> [a];
           insert-first: the multi commits -> [b] *)
        let c = Service.contents svc in
        if c <> [ a ] && c <> [ b ] then
          failwith "contents are not a serializable outcome of the race");
  }

let test_dst_pool_vs_2pc () =
  for seed = 1 to 10 do
    let c = pool_2pc_case () in
    let o =
      Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
        (Dst.Sched.Random seed) c.Dst.Explore.threads
    in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?");
    checkb "completed" false o.Dst.Sched.hung
  done

(* Reader populating and hitting the cache while a writer churns the
   same shard: production code must stay violation-free under every
   schedule; with the [Stale_cache] bug armed, some schedule serves a
   stale hit and the armed sanitizer reports it. *)
let cache_race_case ~bug () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  San.reset ();
  if bug then Dst.Inject.set_bug Dst.Inject.Stale_cache true;
  let svc = Service.create ~shards:1 ~hotcache:true (spec ~shards:1 ()) in
  let reader () =
    with_thread (fun ~thread ->
        for _ = 1 to 6 do
          ignore (Service.exec svc ~thread (Store.Get 5))
        done)
  in
  let writer () =
    with_thread (fun ~thread ->
        ignore (Service.exec svc ~thread (Store.Insert 5));
        ignore (Service.exec svc ~thread (Store.Remove 5)))
  in
  {
    Dst.Explore.init = None;
    threads = [ reader; writer ];
    check =
      (fun () ->
        match Service.check svc with Ok () -> () | Error e -> failwith e);
  }

let run_cache_race ~bug seed =
  let c = cache_race_case ~bug () in
  Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
    (Dst.Sched.Random seed) c.Dst.Explore.threads

let test_dst_cache_race_clean () =
  San.set_enabled ~mode:San.Raise true;
  Fun.protect ~finally:(fun () ->
      San.set_enabled false;
      San.reset ();
      Dst.Inject.clear ())
  @@ fun () ->
  for seed = 1 to 10 do
    let o = run_cache_race ~bug:false seed in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?")
  done;
  check "no violations across schedules" 0 (San.total_violations ())

let test_dst_cache_race_bug_caught () =
  San.set_enabled ~mode:San.Raise true;
  Fun.protect ~finally:(fun () ->
      San.set_enabled false;
      San.reset ();
      Dst.Inject.clear ())
  @@ fun () ->
  let caught = ref false in
  for seed = 1 to 10 do
    if not !caught then
      let o = run_cache_race ~bug:true seed in
      match o.Dst.Sched.failure with
      | Some (Dst.Sched.Thread_raised { exn = San.Violation r; _ }) ->
          checkb "rule is stale-cache-hit" true
            (r.San.rule = San.Stale_cache_hit);
          caught := true
      | Some _ | None -> ()
  done;
  checkb "some schedule served the stale hit" true !caught

let () =
  Alcotest.run "service"
    [
      ( "routing",
        [
          Alcotest.test_case "deterministic and balanced" `Quick
            test_routing_deterministic;
          Alcotest.test_case "create validates" `Quick test_create_validates;
        ] );
      ( "spec json",
        [
          Alcotest.test_case "round trip" `Quick test_spec_json_roundtrip;
          Alcotest.test_case "label checked" `Quick
            test_spec_json_label_checked;
          Alcotest.test_case "sharding suffix" `Quick
            test_spec_label_sharding_suffix;
          Alcotest.test_case "front-layer knobs" `Quick test_spec_layer_knobs;
        ] );
      ( "pool",
        [
          Alcotest.test_case "async submit, spawnless" `Quick
            test_pool_async_spawnless;
          Alcotest.test_case "fused drain" `Quick test_pool_fused_drain;
          Alcotest.test_case "admission sheds low" `Quick
            test_pool_admission_sheds;
          Alcotest.test_case "worker domains end to end" `Quick
            test_pool_workers_end_to_end;
        ] );
      ( "hotcache",
        [
          Alcotest.test_case "unit semantics" `Quick test_hotcache_unit;
          Alcotest.test_case "service hits and invalidation" `Quick
            test_service_cache_hits;
          Alcotest.test_case "2pc invalidates both shards" `Quick
            test_2pc_invalidates_both_shards;
          Alcotest.test_case "stale-cache bug caught" `Quick
            test_stale_cache_bug_caught;
          QCheck_alcotest.to_alcotest qcheck_cached_matches_model;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "basics" `Quick test_basics;
          Alcotest.test_case "scan spans shards" `Quick test_scan_spans_shards;
          Alcotest.test_case "batch fuses per shard" `Quick
            test_batch_fuses_per_shard;
        ] );
      ( "2pc",
        [
          Alcotest.test_case "commits across shards" `Quick
            test_multi_commits_across_shards;
          Alcotest.test_case "aborts without effect" `Quick
            test_multi_aborts_without_effect;
          Alcotest.test_case "rejects bad shapes" `Quick
            test_multi_rejects_bad_shapes;
        ] );
      ( "as store",
        [
          Alcotest.test_case "driver drives the service" `Quick
            test_driver_drives_service;
        ] );
      ( "dst",
        [
          Alcotest.test_case "apply fault rolls back" `Quick
            test_apply_fault_rolls_back;
          Alcotest.test_case "tear-2pc bug caught" `Quick
            test_tear_2pc_bug_is_caught;
          Alcotest.test_case "kill mid-apply, recover" `Quick
            test_kill_mid_apply_recovers;
          Alcotest.test_case "kill mid-prepare, recover" `Quick
            test_kill_mid_prepare_recovers;
          Alcotest.test_case "kill mid-apply with magazines, recover" `Quick
            test_kill_mid_apply_mag_recovers;
          Alcotest.test_case "serializability oracle" `Quick
            test_serial_oracle;
          Alcotest.test_case "queue drains vs submissions" `Quick
            test_dst_pool_drain;
          Alcotest.test_case "queue drains vs 2pc gates" `Quick
            test_dst_pool_vs_2pc;
          Alcotest.test_case "cache race is clean" `Quick
            test_dst_cache_race_clean;
          Alcotest.test_case "cache race bug caught" `Quick
            test_dst_cache_race_bug_caught;
        ] );
    ]
