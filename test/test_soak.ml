(* The soak harness: churn-phase grammar round trip, determinism of the
   generated op scripts (the property that makes @soak-smoke replays
   exact), a miniature churn run with all oracles on, and unit runs of
   the DST adversaries (stalled reader, kill mid-commit, kill mid-2PC
   with magazines). *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

module Spec = Harness.Factories.Spec

let rr_v : Structs.Mode.kind = Structs.Mode.Rr_kind (module Rr.V)

(* ---- phase grammar ---- *)

let test_phase_grammar_round_trip () =
  let script = "grow:4x500,storm:2x800@0.99,shrink:1x10,mix:2x400@50" in
  match Soak.parse_phases script with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok ps ->
      Alcotest.(check string) "print inverts parse" script (Soak.print_phases ps);
      check "four phases" 4 (List.length ps)

let test_phase_grammar_rejects () =
  let bad s =
    checkb (Printf.sprintf "%S rejected" s) true
      (Result.is_error (Soak.parse_phases s))
  in
  bad "";
  bad "bogus:2x2";
  bad "grow:0x5";
  bad "grow:2x5@3";
  bad "storm:2x5@nope";
  bad "mix:2x5@140";
  bad "grow:5"

(* ---- determinism of the op generator ---- *)

let gen_params =
  QCheck.Gen.(
    map
      (fun ((seed, key_bits), ((phase_index, thread), ((tag, arg), (threads, ops)))) ->
        let shape =
          match tag with
          | 0 -> Soak.Grow
          | 1 -> Soak.Shrink
          | 2 -> Soak.Storm (float_of_int arg /. 100.)
          | _ -> Soak.Mix (min arg 100)
        in
        (seed, key_bits, phase_index, thread, { Soak.shape; threads; ops }))
      (pair
         (pair (int_bound 1_000_000) (int_range 4 8))
         (pair
            (pair (int_bound 7) (int_bound 7))
            (pair (pair (int_bound 3) (int_bound 120)) (pair (int_range 1 4) (int_range 1 64))))))

let qcheck_gen_ops_deterministic =
  QCheck.Test.make ~name:"gen_ops is a pure function of its inputs" ~count:200
    (QCheck.make gen_params)
    (fun (seed, key_bits, phase_index, thread, phase) ->
      let a = Soak.gen_ops ~seed ~key_bits ~phase_index ~thread phase in
      let b = Soak.gen_ops ~seed ~key_bits ~phase_index ~thread phase in
      a = b && Array.length a = phase.Soak.ops)

let qcheck_phase_print_parse =
  QCheck.Test.make ~name:"phase scripts round-trip" ~count:200
    (QCheck.make
       (QCheck.Gen.list_size (QCheck.Gen.int_range 1 5)
          (QCheck.Gen.map
             (fun (seed, key_bits, phase_index, thread, phase) ->
               ignore (seed, key_bits, phase_index, thread);
               phase)
             gen_params)))
    (fun ps -> Soak.parse_phases (Soak.print_phases ps) = Ok ps)

(* ---- miniature churn run, all oracles on ---- *)

let test_churn_mini () =
  let phases =
    match Soak.parse_phases "grow:2x80,shrink:2x80" with
    | Ok ps -> ps
    | Error e -> failwith e
  in
  let r =
    Soak.run_churn ~seed:11 ~key_bits:6 ~phases (Spec.v ~window:4 Spec.Slist rr_v)
  in
  (match Soak.churn_failed r with
  | None -> ()
  | Some m -> Alcotest.failf "churn: %s" m);
  check "one result per phase" 2 (List.length r.Soak.c_phases);
  checkb "serializability was checked" true (r.Soak.c_serial = Some (Ok ()));
  checkb "repro names the soak command" true
    (String.length r.Soak.c_repro > 0
    && String.sub r.Soak.c_repro 0 14 = "main.exe soak ")

(* ---- DST adversaries ---- *)

let test_stalled_reader_deterministic () =
  let run () = Soak.stalled_reader ~rounds:12 ~seed:3 (Spec.v Spec.Slist rr_v) in
  let a = run () and b = run () in
  (match a.Soak.s_error with
  | None -> ()
  | Some e -> Alcotest.failf "stalled reader: %s" e);
  checkb "same seed, same trajectory" true (a.Soak.s_samples = b.Soak.s_samples);
  check "one sample per churn round" 12 (Array.length a.Soak.s_samples)

let test_crash_mid_commit () =
  let r = Soak.crash_mid_commit ~seed:5 (Spec.v Spec.Slist rr_v) in
  (match r.Soak.k_error with
  | None -> ()
  | Some e -> Alcotest.failf "crash-commit: %s" e);
  checkb "survivor history serializable" true r.Soak.k_serial_ok;
  check "no slots leaked" 0 r.Soak.k_leaked

let test_crash_mid_2pc_mag () =
  let r =
    Soak.crash_mid_2pc ~seed:5
      (Spec.v ~window:4 ~shards:2 ~fuse:true ~magazines:true Spec.Slist rr_v)
  in
  (match r.Soak.k_error with
  | None -> ()
  | Some e -> Alcotest.failf "crash-2pc: %s" e);
  check "one intent resolved" 1 r.Soak.k_recovered;
  checkb "contents all-or-nothing" true r.Soak.k_serial_ok;
  check "no slots leaked" 0 r.Soak.k_leaked

let () =
  Alcotest.run "soak"
    [
      ( "grammar",
        [
          Alcotest.test_case "round trip" `Quick test_phase_grammar_round_trip;
          Alcotest.test_case "rejects malformed" `Quick
            test_phase_grammar_rejects;
          QCheck_alcotest.to_alcotest qcheck_phase_print_parse;
        ] );
      ( "determinism",
        [ QCheck_alcotest.to_alcotest qcheck_gen_ops_deterministic ] );
      ( "churn", [ Alcotest.test_case "mini run" `Quick test_churn_mini ] );
      ( "adversaries",
        [
          Alcotest.test_case "stalled reader replays" `Quick
            test_stalled_reader_deterministic;
          Alcotest.test_case "kill mid-commit" `Quick test_crash_mid_commit;
          Alcotest.test_case "kill mid-2PC with magazines" `Quick
            test_crash_mid_2pc_mag;
        ] );
    ]
