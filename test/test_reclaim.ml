(* Tests for the deferred-reclamation baselines: hazard pointers, epochs,
   transactional reference counts. *)

let check = Alcotest.(check int)
let checkb = Alcotest.(check bool)

type obj = { id : int; mutable freed : bool }

let make_hazard ?slots_per_thread ?scan_threshold () =
  let freed = ref [] in
  let h =
    Reclaim.Hazard.create ?slots_per_thread ?scan_threshold
      ~free:(fun ~thread:_ o ->
        o.freed <- true;
        freed := o :: !freed)
      ~node_id:(fun o -> o.id)
      ()
  in
  (h, freed)

let obj id = { id; freed = false }

(* ---- hazard pointers ---- *)

let test_hp_protect_blocks_free () =
  let h, _ = make_hazard ~scan_threshold:1 () in
  let a = obj 1 in
  Reclaim.Hazard.protect h ~thread:0 ~slot:0 a;
  Reclaim.Hazard.retire h ~thread:1 a;
  Reclaim.Hazard.scan h ~thread:1;
  checkb "protected node survives scans" false a.freed;
  Reclaim.Hazard.clear h ~thread:0 ~slot:0;
  Reclaim.Hazard.scan h ~thread:1;
  checkb "freed once unprotected" true a.freed

let test_hp_unprotected_freed_at_threshold () =
  let h, freed = make_hazard ~scan_threshold:4 () in
  for i = 1 to 3 do
    Reclaim.Hazard.retire h ~thread:0 (obj i)
  done;
  check "below threshold: nothing freed" 0 (List.length !freed);
  Reclaim.Hazard.retire h ~thread:0 (obj 4);
  check "threshold triggers scan" 4 (List.length !freed)

let test_hp_per_thread_lists () =
  let h, freed = make_hazard ~scan_threshold:100 () in
  Reclaim.Hazard.retire h ~thread:0 (obj 1);
  Reclaim.Hazard.retire h ~thread:1 (obj 2);
  Reclaim.Hazard.scan h ~thread:0;
  check "scan only drains caller's list" 1 (List.length !freed);
  Reclaim.Hazard.drain h;
  check "drain empties all" 2 (List.length !freed)

let test_hp_slot_independence () =
  let h, _ = make_hazard ~slots_per_thread:3 ~scan_threshold:1 () in
  let a = obj 1 and b = obj 2 in
  Reclaim.Hazard.protect h ~thread:0 ~slot:0 a;
  Reclaim.Hazard.protect h ~thread:0 ~slot:1 b;
  Reclaim.Hazard.clear h ~thread:0 ~slot:0;
  Reclaim.Hazard.retire h ~thread:1 a;
  Reclaim.Hazard.retire h ~thread:1 b;
  Reclaim.Hazard.scan h ~thread:1;
  checkb "a freed (slot cleared)" true a.freed;
  checkb "b survives (slot 1 held)" false b.freed;
  Reclaim.Hazard.clear_all h ~thread:0;
  Reclaim.Hazard.drain h;
  checkb "b freed after clear_all" true b.freed

let test_hp_metrics () =
  let h, _ = make_hazard ~scan_threshold:2 () in
  let a = obj 1 in
  Reclaim.Hazard.protect h ~thread:0 ~slot:0 a;
  Reclaim.Hazard.retire h ~thread:1 a;
  Reclaim.Hazard.retire h ~thread:1 (obj 2);
  let m = Reclaim.Hazard.metrics h in
  check "retired" 2 m.Reclaim.Hazard.retired_total;
  check "freed" 1 m.Reclaim.Hazard.freed_total;
  check "backlog" 1 m.Reclaim.Hazard.backlog;
  checkb "max backlog >= 2" true (m.Reclaim.Hazard.max_backlog >= 2);
  checkb "delay recorded" true (m.Reclaim.Hazard.delay_max_s >= 0.)

let test_hp_bad_slot () =
  let h, _ = make_hazard ~slots_per_thread:2 () in
  Alcotest.check_raises "slot out of range"
    (Invalid_argument "Hazard: slot") (fun () ->
      Reclaim.Hazard.protect h ~thread:0 ~slot:2 (obj 1))

(* ---- epochs ---- *)

let make_epoch ?advance_threshold () =
  let freed = ref [] in
  let e =
    Reclaim.Epoch.create ?advance_threshold
      ~free:(fun ~thread:_ o ->
        o.freed <- true;
        freed := o :: !freed)
      ()
  in
  (e, freed)

let test_epoch_basic_reclaim () =
  let e, freed = make_epoch ~advance_threshold:1 () in
  let a = obj 1 in
  Reclaim.Epoch.retire e ~thread:0 a;
  (* no active threads: epoch advances freely; after a few retires the bag
     from two epochs ago is freed *)
  Reclaim.Epoch.retire e ~thread:0 (obj 2);
  Reclaim.Epoch.retire e ~thread:0 (obj 3);
  Reclaim.Epoch.drain e;
  checkb "eventually freed" true a.freed;
  check "all freed after drain" 3 (List.length !freed)

let test_epoch_blocked_by_active_thread () =
  let e, _ = make_epoch ~advance_threshold:1 () in
  let start = Reclaim.Epoch.current_epoch e in
  Reclaim.Epoch.enter e ~thread:1;
  (* thread 1 is active in [start]; retiring from thread 0 cannot advance *)
  let a = obj 1 in
  Reclaim.Epoch.retire e ~thread:0 a;
  for i = 2 to 10 do
    Reclaim.Epoch.retire e ~thread:0 (obj i)
  done;
  (* The epoch may advance once (all active threads are at [start]) but can
     never advance twice past a stalled reader, so nothing retired at or
     after [start] becomes freeable. *)
  checkb "epoch advances at most once past a stalled reader" true
    (Reclaim.Epoch.current_epoch e <= start + 1);
  checkb "nothing freed while blocked" false a.freed;
  Reclaim.Epoch.leave e ~thread:1;
  Reclaim.Epoch.drain e;
  checkb "freed after quiescence" true a.freed

let test_epoch_metrics () =
  let e, _ = make_epoch ~advance_threshold:1 () in
  for i = 1 to 5 do
    Reclaim.Epoch.retire e ~thread:0 (obj i)
  done;
  let m = Reclaim.Epoch.metrics e in
  check "retired" 5 m.Reclaim.Epoch.retired_total;
  checkb "some advances" true (m.Reclaim.Epoch.advances > 0);
  Reclaim.Epoch.drain e;
  let m = Reclaim.Epoch.metrics e in
  check "drained backlog" 0 m.Reclaim.Epoch.backlog;
  check "all freed" 5 m.Reclaim.Epoch.freed_total

(* ---- transactional refcounts ---- *)

let test_rc () =
  Tm.Thread.with_registered (fun _ ->
      let rc = Reclaim.Rc.make 0 in
      Tm.atomic (fun txn ->
          Reclaim.Rc.incr txn rc;
          Reclaim.Rc.incr txn rc);
      check "two increments" 2 (Reclaim.Rc.peek rc);
      let n = Tm.atomic (fun txn -> Reclaim.Rc.decr txn rc) in
      check "decr returns new count" 1 n;
      check "peek agrees" 1 (Reclaim.Rc.peek rc))

let test_rc_rollback () =
  Tm.Thread.with_registered (fun _ ->
      let rc = Reclaim.Rc.make 1 in
      (try
         Tm.atomic (fun txn ->
             Reclaim.Rc.incr txn rc;
             failwith "abort")
       with Failure _ -> ());
      check "increment rolled back" 1 (Reclaim.Rc.peek rc))

let test_rc_negative () =
  Tm.Thread.with_registered (fun _ ->
      let rc = Reclaim.Rc.make 0 in
      Alcotest.check_raises "negative refcount"
        (Invalid_argument "Rc.decr: negative refcount") (fun () ->
          Tm.atomic (fun txn -> ignore (Reclaim.Rc.decr txn rc))))

(* concurrent hazard stress: retired nodes are freed exactly once and only
   when unprotected *)
let test_hp_concurrent () =
  Tm.Thread.with_registered (fun _ ->
      let free_count = Atomic.make 0 in
      let h =
        Reclaim.Hazard.create ~slots_per_thread:1 ~scan_threshold:8
          ~free:(fun ~thread:_ o ->
            if o.freed then failwith "double free by hazard domain";
            o.freed <- true;
            Atomic.incr free_count)
          ~node_id:(fun o -> o.id)
          ()
      in
      let next_id = Atomic.make 0 in
      let workers =
        List.init 4 (fun _ ->
            Domain.spawn (fun () ->
                Tm.Thread.with_registered (fun tid ->
                    for _ = 1 to 2000 do
                      let o = obj (Atomic.fetch_and_add next_id 1) in
                      Reclaim.Hazard.protect h ~thread:tid ~slot:0 o;
                      Reclaim.Hazard.clear h ~thread:tid ~slot:0;
                      Reclaim.Hazard.retire h ~thread:tid o
                    done;
                    Reclaim.Hazard.scan h ~thread:tid)))
      in
      List.iter Domain.join workers;
      Reclaim.Hazard.drain h;
      let m = Reclaim.Hazard.metrics h in
      check "everything retired" 8000 m.Reclaim.Hazard.retired_total;
      check "everything freed" 8000 (Atomic.get free_count);
      check "no backlog" 0 m.Reclaim.Hazard.backlog)

(* ---- stalled-reader backlog contrast (regression pin) ----

   The soak adversary parks a reader mid-traversal and measures the
   reclamation backlog per churn round. This pins the paper's headline
   asymmetry as a regression test: EBR's deferred frees grow monotonically
   once the parked reader wedges the epoch, while RR's precise frees keep
   the backlog at the baseline no matter how long the reader stalls. *)

let test_stalled_reader_backlog_contrast () =
  let rounds = 16 in
  let run kind =
    Soak.stalled_reader ~rounds ~seed:7
      (Harness.Factories.Spec.v Harness.Factories.Spec.Slist kind)
  in
  let rr = run (Structs.Mode.Rr_kind (module Rr.V)) in
  let ebr = run Structs.Mode.Ebr in
  (match rr.Soak.s_error with
  | None -> ()
  | Some e -> Alcotest.failf "RR scenario: %s" e);
  (match ebr.Soak.s_error with
  | None -> ()
  | Some e -> Alcotest.failf "EBR scenario: %s" e);
  let samples = ebr.Soak.s_samples in
  let n = Array.length samples in
  checkb "EBR backlog grows past threshold" true
    (ebr.Soak.s_hwm >= rounds / 2);
  checkb "EBR growth never reverses while the reader is parked" true
    (n > 0 && samples.(n - 1) = ebr.Soak.s_hwm);
  (* once the trajectory clears the noise floor the growth is monotone *)
  let wedged = ref false and monotone = ref true in
  Array.iteri
    (fun i v ->
      if v > 2 then wedged := true;
      if !wedged && i > 0 && v < samples.(i - 1) then monotone := false)
    samples;
  checkb "EBR backlog monotone once wedged" true !monotone;
  checkb "RR backlog stays bounded" true (rr.Soak.s_hwm <= 2);
  checkb "EBR high-water strictly above RR" true
    (ebr.Soak.s_hwm > rr.Soak.s_hwm)

let () =
  Alcotest.run "reclaim"
    [
      ( "hazard",
        [
          Alcotest.test_case "protect blocks free" `Quick
            test_hp_protect_blocks_free;
          Alcotest.test_case "threshold scan" `Quick
            test_hp_unprotected_freed_at_threshold;
          Alcotest.test_case "per-thread retire lists" `Quick
            test_hp_per_thread_lists;
          Alcotest.test_case "slot independence" `Quick
            test_hp_slot_independence;
          Alcotest.test_case "metrics" `Quick test_hp_metrics;
          Alcotest.test_case "bad slot" `Quick test_hp_bad_slot;
          Alcotest.test_case "concurrent" `Quick test_hp_concurrent;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "basic reclaim" `Quick test_epoch_basic_reclaim;
          Alcotest.test_case "blocked by reader" `Quick
            test_epoch_blocked_by_active_thread;
          Alcotest.test_case "metrics" `Quick test_epoch_metrics;
        ] );
      ( "refcount",
        [
          Alcotest.test_case "incr/decr" `Quick test_rc;
          Alcotest.test_case "rollback" `Quick test_rc_rollback;
          Alcotest.test_case "negative" `Quick test_rc_negative;
        ] );
      (* last: the scenario resets the TM thread-id space *)
      ( "soak backlog",
        [
          Alcotest.test_case "stalled reader: EBR grows, RR bounded" `Quick
            test_stalled_reader_backlog_contrast;
        ] );
    ]
