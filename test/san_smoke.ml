(* TxSan under DST: replay the pinned minimized schedules of the three
   DESIGN.md injected bugs with the sanitizer armed in [Raise] mode, and
   assert that TxSan names the violated rule at the faulting access —
   instead of (or before) the structural corruption the scenarios' own
   checks would eventually notice. The fixed code must replay the same
   adversarial schedules clean with the sanitizer still on. Wired to the
   [san-smoke] dune alias (and from there into [runtest] and CI). *)

let failures = ref 0

let expect what ok =
  if ok then Printf.printf "san-smoke: %-52s ok\n%!" what
  else begin
    incr failures;
    Printf.printf "san-smoke: %-52s FAILED\n%!" what
  end

(* Arm the sanitizer per attempt, after the scenario builder has cleared
   injection flags and thread ids, so every replay starts from virgin
   shadow state. *)
let san_case mk () =
  let case = mk () in
  San.reset ();
  San.set_enabled ~mode:San.Raise true;
  case

let violation out =
  match out.Dst.Sched.failure with
  | Some (Dst.Sched.Thread_raised { exn = San.Violation r; _ }) -> Some r
  | _ -> None

let caught name mk sched ~rule ?site () =
  let out = Dst.Explore.replay (san_case mk) sched in
  match violation out with
  | Some r ->
      let id = San.rule_id r.San.rule in
      expect
        (Printf.sprintf "%s names %s" name rule)
        (id = rule);
      (match site with
      | None -> ()
      | Some s ->
          expect
            (Printf.sprintf "%s faults at site %s" name s)
            (r.San.site = s))
  | None ->
      expect (Printf.sprintf "%s names %s" name rule) false;
      Option.iter
        (fun s -> expect (Printf.sprintf "%s faults at site %s" name s) false)
        site

let clean name mk sched =
  let out = Dst.Explore.replay (san_case mk) sched in
  expect name (not (Dst.Sched.failed out))

let () =
  let open Dst_scenarios in
  (* bug #1: the reader's snapshot straddles the in-flight serial writer;
     the faulting transactional read is unlabelled (bare Tm.atomic). *)
  caught "bug #1 straddle" (straddle ~bug:true) sched_bug1 ~rule:"stale-read"
    ();
  (* bug #2: the read-only reserving transaction commits against a
     snapshot in which B freed (and recycled) the node. Delivered at A's
     lookup commit — the access that publishes the doomed hazard. *)
  caught "bug #2 ro-publication" (ro_publication ~bug:true) sched_bug2
    ~rule:"use-after-free" ~site:"slist.lookup" ();
  (* bug #3: the recycled skiplist hint is dereferenced with only the
     [deleted] re-check — an unrevalidated carried pointer. *)
  caught "bug #3 stale-hint" (stale_hint ~bug:true) sched_bug3
    ~rule:"unchecked-carry" ~site:"skiplist.remove" ();
  (* the fixed protocol survives the same adversarial schedules with the
     sanitizer still armed: no violation, no structural failure *)
  clean "bug #1 fixed replays clean under TxSan" (straddle ~bug:false)
    sched_bug1;
  clean "bug #2 fixed replays clean under TxSan" (ro_publication ~bug:false)
    sched_bug2;
  clean "bug #3 fixed replays clean under TxSan" (stale_hint ~bug:false)
    sched_bug3;
  San.set_enabled false;
  San.reset ();
  Dst.Inject.clear ();
  if !failures > 0 then exit 1
