(* Deterministic schedule testing: the virtual scheduler itself, schedule
   search over the three DESIGN.md concurrency bugs re-introduced behind
   [Dst.Inject] flags, pinned minimized regression schedules, oracle
   validation under adversarial schedules, and fault injection.

   Every search here is seeded, so a failure reproduces from the printed
   seed; the pinned schedules at the bottom of each bug section are the
   minimized traces those searches produced (committed so the bugs stay
   findable without re-searching). *)

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

open Structs

(* ---------------------------------------------------------------- *)
(* Scheduler unit tests                                             *)
(* ---------------------------------------------------------------- *)

(* Two logical threads race a non-atomic read-modify-write around an
   explicit yield: the canonical lost update, used to exercise the
   scheduler without involving the TM at all. *)
let lost_update () =
  let c = ref 0 in
  let bump () =
    let v = !c in
    Dst.point (Dst.User 0);
    c := v + 1
  in
  {
    Dst.Explore.init = None;
    threads = [ bump; bump ];
    check = (fun () -> if !c <> 2 then failwith "lost update");
  }

let test_points_inactive () =
  (* outside a run every hook is a no-op *)
  checkb "not scheduled" false (Dst.scheduled ());
  Dst.point Dst.Tm_read;
  checkb "point_fails inactive" false (Dst.point_fails Dst.Tm_commit)

let test_run_completes_and_interleaves () =
  let c = lost_update () in
  let o = Dst.Sched.run (Dst.Sched.Random 3) c.Dst.Explore.threads in
  checkb "not hung" false o.Dst.Sched.hung;
  (* both threads took at least one step *)
  checkb "thread 0 scheduled" true (Array.mem 0 o.Dst.Sched.trace);
  checkb "thread 1 scheduled" true (Array.mem 1 o.Dst.Sched.trace)

let test_same_seed_same_trace () =
  let run () =
    let c = lost_update () in
    (Dst.Sched.run (Dst.Sched.Random 42) c.Dst.Explore.threads).Dst.Sched.trace
  in
  checkb "replayable from seed" true (run () = run ())

let test_fixed_replays_trace () =
  let c1 = lost_update () in
  let o = Dst.Sched.run (Dst.Sched.Random 7) c1.Dst.Explore.threads in
  let c2 = lost_update () in
  let o' =
    Dst.Sched.run (Dst.Sched.Fixed o.Dst.Sched.trace) c2.Dst.Explore.threads
  in
  checkb "fixed schedule reproduces the trace" true
    (o.Dst.Sched.trace = o'.Dst.Sched.trace)

let test_tls_per_logical_thread () =
  let key = Dst.Tls.new_key (fun () -> 0) in
  let seen = Array.make 2 (-1) in
  let body i () =
    Dst.Tls.set key (100 + i);
    Dst.point (Dst.User 1);
    seen.(i) <- Dst.Tls.get key
  in
  let o = Dst.Sched.run (Dst.Sched.Random 5) [ body 0; body 1 ] in
  checkb "clean" false (Dst.Sched.failed o);
  check "thread 0 kept its slot" 100 seen.(0);
  check "thread 1 kept its slot" 101 seen.(1);
  (* inactive fallback goes through Domain.DLS *)
  Dst.Tls.set key 7;
  check "inactive TLS works" 7 (Dst.Tls.get key)

let test_budget_hang_detection () =
  let spin () =
    while true do
      Dst.point (Dst.User 2)
    done
  in
  let o = Dst.Sched.run ~budget:50 (Dst.Sched.Random 1) [ spin ] in
  checkb "hung" true o.Dst.Sched.hung;
  checkb "hang is not a failure" false (Dst.Sched.failed o);
  check "stopped at budget" 50 o.Dst.Sched.steps

let test_killed_runs_finalizers () =
  let cleaned = ref false in
  let spin () =
    Fun.protect
      ~finally:(fun () -> cleaned := true)
      (fun () ->
        while true do
          Dst.point (Dst.User 3)
        done)
  in
  let o = Dst.Sched.run ~budget:20 (Dst.Sched.Random 1) [ spin ] in
  checkb "hung" true o.Dst.Sched.hung;
  checkb "Fun.protect finalizer ran on Killed" true !cleaned

let test_init_phase_is_deterministic () =
  let v = ref 0 in
  let init () =
    Dst.point (Dst.User 4);
    v := 10
  in
  let reader_saw = ref 0 in
  let o =
    Dst.Sched.run ~init (Dst.Sched.Random 9)
      [ (fun () -> reader_saw := !v) ]
  in
  checkb "clean" false (Dst.Sched.failed o);
  check "init completed before threads ran" 10 !reader_saw;
  (* init yields are not part of the recorded schedule *)
  check "trace covers only the worker" 1 (Array.length o.Dst.Sched.trace)

let test_exhaustive_finds_lost_update () =
  match Dst.Explore.exhaustive ~max_depth:6 ~max_runs:200 lost_update with
  | None -> Alcotest.fail "exhaustive search missed the lost update"
  | Some f ->
      checkb "minimized schedule still fails" true
        (Dst.Sched.failed (Dst.Explore.replay lost_update f.Dst.Explore.schedule));
      (* the interleaving needs both threads inside the critical section *)
      checkb "schedule is short" true (Array.length f.Dst.Explore.schedule <= 3)

let test_exhaustive_clean_space () =
  (* a race-free variant: the whole RMW happens before the yield *)
  let mk () =
    let c = ref 0 in
    let bump () =
      c := !c + 1;
      Dst.point (Dst.User 0)
    in
    {
      Dst.Explore.init = None;
      threads = [ bump; bump ];
      check = (fun () -> if !c <> 2 then failwith "lost update");
    }
  in
  checkb "no failure in the whole bounded space" true
    (Dst.Explore.exhaustive ~max_depth:6 ~max_runs:200 mk = None)

(* ---------------------------------------------------------------- *)
(* Bug discovery: the three DESIGN.md bugs (see Dst_scenarios)        *)
(* ---------------------------------------------------------------- *)

let straddle = Dst_scenarios.straddle
let ro_publication = Dst_scenarios.ro_publication
let stale_hint = Dst_scenarios.stale_hint

(* Documented budget: uniform random search, schedule budget 500,
   <= 2000 seeded runs. Empirically found at seed 6 in 19 runs. *)
let test_bug1_found_by_random_search () =
  match
    Dst.Explore.random_search ~budget:500 ~max_runs:2000 (straddle ~bug:true)
  with
  | None -> Alcotest.fail "random search missed the straddle bug"
  | Some f ->
      checkb "failure is the torn snapshot" true
        (match f.Dst.Explore.failure with
        | Dst.Sched.Check_failed _ -> true
        | _ -> false);
      checkb "minimized schedule replays" true
        (Dst.Sched.failed
           (Dst.Explore.replay (straddle ~bug:true) f.Dst.Explore.schedule))

let test_bug1_control_clean () =
  checkb "fixed code survives the same search" true
    (Dst.Explore.random_search ~budget:500 ~max_runs:300 (straddle ~bug:false)
    = None)

(* Documented budget: PCT depth 2, schedule budget 300, <= 6000 seeded
   runs. Empirically found at seed 18 in 79 runs. Uniform random search
   cannot find this bug: it needs one context switch at the publication
   point followed by ~50 uninterrupted steps of thread B. *)
let test_bug2_found_by_pct_search () =
  match
    Dst.Explore.pct_search ~budget:300 ~max_runs:6000 ~depth:2
      (ro_publication ~bug:true)
  with
  | None -> Alcotest.fail "PCT search missed the publication race"
  | Some f ->
      checkb "minimized schedule replays" true
        (Dst.Sched.failed
           (Dst.Explore.replay (ro_publication ~bug:true) f.Dst.Explore.schedule))

let test_bug2_control_clean () =
  checkb "fixed code survives the same search" true
    (Dst.Explore.pct_search ~budget:300 ~max_runs:500 ~depth:2
       (ro_publication ~bug:false)
    = None)

(* Documented budget: PCT depth 2, schedule budget 400, <= 6000 seeded
   runs. Empirically found at seed 29 in 247 runs. *)
let test_bug3_found_by_pct_search () =
  match
    Dst.Explore.pct_search ~budget:400 ~max_runs:6000 ~depth:2
      (stale_hint ~bug:true)
  with
  | None -> Alcotest.fail "PCT search missed the stale-hint bug"
  | Some f ->
      checkb "minimized schedule replays" true
        (Dst.Sched.failed
           (Dst.Explore.replay (stale_hint ~bug:true) f.Dst.Explore.schedule))

let test_bug3_control_clean () =
  checkb "fixed code survives the same search" true
    (Dst.Explore.pct_search ~budget:400 ~max_runs:500 ~depth:2
       (stale_hint ~bug:false)
    = None)

(* ---------------------------------------------------------------- *)
(* Pinned minimized regression schedules (see Dst_scenarios)          *)
(* ---------------------------------------------------------------- *)

let sched_bug1 = Dst_scenarios.sched_bug1
let sched_bug2 = Dst_scenarios.sched_bug2
let sched_bug3 = Dst_scenarios.sched_bug3

let regression mk_buggy mk_fixed sched () =
  let buggy = Dst.Explore.replay mk_buggy sched in
  checkb "pinned schedule still triggers the bug" true
    (Dst.Sched.failed buggy);
  checkb "pinned run is deterministic" true
    (buggy.Dst.Sched.trace
    = (Dst.Explore.replay mk_buggy sched).Dst.Sched.trace);
  let fixed = Dst.Explore.replay mk_fixed sched in
  checkb "production code survives the adversarial schedule" false
    (Dst.Sched.failed fixed)

let test_regression_bug1 =
  regression (straddle ~bug:true) (straddle ~bug:false) sched_bug1

let test_regression_bug2 =
  regression (ro_publication ~bug:true) (ro_publication ~bug:false) sched_bug2

let test_regression_bug3 =
  regression (stale_hint ~bug:true) (stale_hint ~bug:false) sched_bug3

(* ---------------------------------------------------------------- *)
(* Timestamp extension and the read-phase hint (see Dst_scenarios)    *)
(* ---------------------------------------------------------------- *)

let test_extension_opacity_oracle () =
  checkb "random search finds no torn snapshot" true
    (Dst.Explore.random_search ~budget:300 ~max_runs:600
       (Dst_scenarios.extend_success ~expect:`Opaque)
    = None);
  checkb "PCT search finds no torn snapshot" true
    (Dst.Explore.pct_search ~budget:300 ~max_runs:600 ~depth:2
       (Dst_scenarios.extend_fail ~expect:`Opaque)
    = None)

let test_read_phase_oracle () =
  checkb "no Lock_busy abort or serial escalation on any schedule" true
    (Dst.Explore.random_search ~budget:300 ~max_runs:600
       Dst_scenarios.read_phase_wait
    = None)

(* Documented budgets: random probe searches over the [`Probe] variants
   (budget 300, <= 4000 runs) found the extension-success schedule at
   seed 24 in 34 runs and the extension-failure schedule at seed 43 in
   55 runs; the minimized traces are pinned in Dst_scenarios. *)
let test_pinned_extension_paths () =
  checkb "pinned schedule drives a one-attempt extension rescue" false
    (Dst.Sched.failed
       (Dst.Explore.replay
          (Dst_scenarios.extend_success ~expect:`Strong)
          Dst_scenarios.sched_extend_ok));
  checkb "pinned schedule drives a failed extension and clean retry" false
    (Dst.Sched.failed
       (Dst.Explore.replay
          (Dst_scenarios.extend_fail ~expect:`Strong)
          Dst_scenarios.sched_extend_fail))

(* ---------------------------------------------------------------- *)
(* The raw-speed optimizations (see Dst_scenarios)                   *)
(* ---------------------------------------------------------------- *)

let test_middle_safety_oracle () =
  checkb "both commits land and the lock is released on every schedule" true
    (Dst.Explore.random_search ~budget:300 ~max_runs:600
       (Dst_scenarios.middle_exclusion ~expect:`Safe)
    = None)

let test_fusion_serializability_oracle () =
  checkb "fused windows stay stamp-order serializable on every schedule" true
    (Dst.Explore.random_search ~budget:400 ~max_runs:150
       (Dst_scenarios.fusion_shrink ~expect:`Safe)
    = None)

(* Documented budgets: a random probe search over
   [middle_exclusion ~expect:`Probe] (budget 300, <= 2000 runs) found the
   middle-path schedule at seed 1 in 22 runs; a PCT depth-2 search over
   [fusion_shrink ~expect:`Probe] (budget 400, <= 6000 runs) found the
   shrink schedule at seed 50 in 198 runs. The minimized traces are
   pinned in Dst_scenarios. *)
let test_pinned_optimization_paths () =
  let replay mk sched = Dst.Explore.replay mk sched in
  checkb "pinned schedule drives the middle-path rescue" false
    (Dst.Sched.failed
       (replay
          (Dst_scenarios.middle_exclusion ~expect:`Strong)
          Dst_scenarios.sched_middle));
  checkb "pinned middle replay is deterministic" true
    ((replay (Dst_scenarios.middle_exclusion ~expect:`Strong)
        Dst_scenarios.sched_middle)
       .Dst.Sched.trace
    = (replay (Dst_scenarios.middle_exclusion ~expect:`Strong)
         Dst_scenarios.sched_middle)
        .Dst.Sched.trace);
  checkb "pinned schedule drives the fuse-budget shrink" false
    (Dst.Sched.failed
       (replay
          (Dst_scenarios.fusion_shrink ~expect:`Strong)
          Dst_scenarios.sched_fusion))

(* ---------------------------------------------------------------- *)
(* Oracles under adversarial schedules                               *)
(* ---------------------------------------------------------------- *)

(* Two threads run scripted list operations, logging commit stamps; a
   clean run must produce a stamp-order serializable history exactly as
   the concurrent-driver tests do, but here across many seeded virtual
   schedules instead of wall-clock nondeterminism. *)
let serializability_case () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let l =
    Hoh_list.create ~mode:(Mode.Rr_kind (module Rr.V)) ~window:2 ~scatter:false ()
  in
  let initial = [ 2; 4; 6 ] in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        List.iter (fun k -> ignore (Hoh_list.insert l ~thread k)) initial)
  in
  let logs = Array.make 2 [] in
  let entry op key (result, stamp) =
    { Harness.Serial_check.op; key; result; earliest = stamp; stamp }
  in
  let scripted i script () =
    Tm.Thread.with_registered (fun thread ->
        logs.(i) <-
          List.map
            (fun (op, key) ->
              match op with
              | `I -> entry Harness.Workload.Insert key (Hoh_list.insert_s l ~thread key)
              | `R -> entry Harness.Workload.Remove key (Hoh_list.remove_s l ~thread key)
              | `L -> entry Harness.Workload.Lookup key (Hoh_list.lookup_s l ~thread key))
            script)
  in
  let t0 = scripted 0 [ (`I, 1); (`R, 4); (`L, 2); (`I, 5); (`R, 1) ] in
  let t1 = scripted 1 [ (`R, 2); (`I, 4); (`L, 4); (`I, 3); (`L, 5) ] in
  {
    Dst.Explore.init = Some init;
    threads = [ t0; t1 ];
    check =
      (fun () ->
        (match Hoh_list.check l with Ok () -> () | Error e -> failwith e);
        match
          Harness.Serial_check.check ~initial
            [ Array.of_list logs.(0); Array.of_list logs.(1) ]
        with
        | Ok () -> ()
        | Error e -> failwith e);
  }

let test_serializability_oracle () =
  for seed = 1 to 25 do
    let c = serializability_case () in
    let o =
      Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
        (Dst.Sched.Random seed) c.Dst.Explore.threads
    in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?");
    checkb "completed" false o.Dst.Sched.hung
  done

(* Reservation semantics against the paper's Listing 1 sequential spec:
   log every RR operation with its commit stamp, replay the merged
   stamp-ordered trace through the model, and compare each Get. Strict
   implementations must agree exactly; relaxed ones may spuriously drop
   (impl None where the model says Some) but never resurrect. *)
let rr_model_case (module M : Rr.S) () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let refs = Array.init 4 (fun i -> ref i) in
  let ops =
    Rr.instantiate (module M)
      ~config:{ Rr.Config.default with Rr.Config.slots_per_thread = 2 }
      ~hash:(fun r -> !r) ~equal:( == ) ()
  in
  let log = ref [] in
  let step thread act =
    let r =
      Tm.atomic_stamped (fun txn ->
          ops.Rr.register txn;
          match act with
          | `Reserve i ->
              ops.Rr.reserve txn refs.(i);
              None
          | `Release i ->
              ops.Rr.release txn refs.(i);
              None
          | `Release_all ->
              ops.Rr.release_all txn;
              None
          | `Revoke i ->
              ops.Rr.revoke txn refs.(i);
              None
          | `Get i -> Some (ops.Rr.get txn refs.(i) <> None))
    in
    (* writers before readers at equal stamps, as in Serial_check *)
    log :=
      (r.Tm.stamp, (if r.Tm.read_only then 1 else 0), thread, act, r.Tm.value)
      :: !log
  in
  let t0 () =
    Tm.Thread.with_registered (fun _ ->
        List.iter (step 0)
          [ `Reserve 0; `Reserve 1; `Get 0; `Get 1; `Release 1; `Get 1;
            `Reserve 2; `Get 2; `Release_all; `Get 0 ])
  in
  let t1 () =
    Tm.Thread.with_registered (fun _ ->
        List.iter (step 1)
          [ `Reserve 3; `Revoke 0; `Get 3; `Revoke 2; `Get 0; `Revoke 3; `Get 3 ])
  in
  {
    Dst.Explore.init = None;
    threads = [ t0; t1 ];
    check =
      (fun () ->
        let model = Rr.Spec_model.create ~equal:( == ) () in
        let trace = List.sort compare (List.rev !log) in
        List.iter
          (fun (_, _, thread, act, got) ->
            match act with
            | `Reserve i -> Rr.Spec_model.reserve model ~thread refs.(i)
            | `Release i -> Rr.Spec_model.release model ~thread refs.(i)
            | `Release_all -> Rr.Spec_model.release_all model ~thread
            | `Revoke i -> Rr.Spec_model.revoke model refs.(i)
            | `Get i ->
                let expect =
                  Rr.Spec_model.get model ~thread refs.(i) <> None
                in
                let got = Option.get got in
                if M.strict && got <> expect then
                  failwith
                    (Printf.sprintf "%s: thread %d Get %d = %b, model says %b"
                       M.name thread i got expect);
                if (not M.strict) && got && not expect then
                  failwith
                    (Printf.sprintf
                       "%s: thread %d Get %d resurrected a revoked ref" M.name
                       thread i))
          trace);
  }

let test_rr_model_oracle () =
  List.iter
    (fun m ->
      for seed = 1 to 10 do
        let c = rr_model_case m () in
        let o =
          Dst.Sched.run ~check:c.Dst.Explore.check (Dst.Sched.Random seed)
            c.Dst.Explore.threads
        in
        if Dst.Sched.failed o then
          let (module M : Rr.S) = m in
          Alcotest.failf "%s seed %d: %s" M.name seed
            (match o.Dst.Sched.failure with
            | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
            | None -> "?")
      done)
    [
      (module Rr.Fa : Rr.S);
      (module Rr.Dm);
      (module Rr.Sa);
      (module Rr.Xo);
      (module Rr.So);
      (module Rr.V);
    ]

(* Precise reclamation accounting: under any schedule, a clean run of a
   precise-RR list leaves exactly [length contents] nodes live in the
   pool (every removed node went back the moment its remove returned). *)
let mempool_accounting_case () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let l =
    Hoh_list.create ~mode:(Mode.Rr_kind (module Rr.Fa)) ~window:2 ~scatter:false ()
  in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        List.iter
          (fun k -> ignore (Hoh_list.insert l ~thread k))
          [ 1; 2; 3; 4; 5; 6 ])
  in
  let t0 () =
    Tm.Thread.with_registered (fun thread ->
        List.iter
          (fun k -> ignore (Hoh_list.remove l ~thread k))
          [ 2; 4; 6 ];
        ignore (Hoh_list.insert l ~thread 7))
  in
  let t1 () =
    Tm.Thread.with_registered (fun thread ->
        List.iter
          (fun k -> ignore (Hoh_list.remove l ~thread k))
          [ 1; 5 ];
        ignore (Hoh_list.insert l ~thread 8))
  in
  {
    Dst.Explore.init = Some init;
    threads = [ t0; t1 ];
    check =
      (fun () ->
        (match Hoh_list.check l with Ok () -> () | Error e -> failwith e);
        let contents = Hoh_list.to_list l in
        if contents <> [ 3; 7; 8 ] then failwith "wrong contents";
        let live = (Hoh_list.pool_stats l).Mempool.Stats.live in
        if live <> List.length contents then
          failwith
            (Printf.sprintf "pool live = %d, structure holds %d" live
               (List.length contents)));
  }

let test_mempool_accounting_oracle () =
  for seed = 1 to 25 do
    let c = mempool_accounting_case () in
    let o =
      Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
        (Dst.Sched.Random seed) c.Dst.Explore.threads
    in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?")
  done

(* ---------------------------------------------------------------- *)
(* Fault injection                                                   *)
(* ---------------------------------------------------------------- *)

(* Forced aborts at the read and commit hooks must be absorbed by the
   retry/serial-fallback machinery without breaking atomicity. *)
let test_forced_aborts_are_absorbed () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  Dst.Inject.arm ~times:4 Dst.Tm_read Dst.Inject.Fail;
  Dst.Inject.arm ~times:4 Dst.Tm_commit Dst.Inject.Fail;
  let c = Tm.tvar 0 in
  let body () =
    Tm.Thread.with_registered (fun _ ->
        for _ = 1 to 5 do
          Tm.atomic (fun txn -> Tm.write txn c (Tm.read txn c + 1))
        done)
  in
  let total = ref 0 in
  let o =
    Dst.Sched.run
      ~check:(fun () -> total := Tm.peek c)
      (Dst.Sched.Random 11) [ body; body ]
  in
  checkb "clean" false (Dst.Sched.failed o);
  check "all increments survived the injected aborts" 10 !total;
  Dst.Inject.clear ()

(* A commit stalled mid lock-acquisition and a revocation sweep stalled
   mid-walk are just long windows for the other thread; serializability
   and the structural invariants must hold. *)
let test_stalled_commit_and_revocation () =
  let mk () =
    let c = mempool_accounting_case () in
    Dst.Inject.arm ~times:3 Dst.Tm_lock (Dst.Inject.Delay 15);
    Dst.Inject.arm ~times:3 Dst.Rr_revoke_step (Dst.Inject.Delay 10);
    c
  in
  for seed = 1 to 10 do
    let c = mk () in
    let o =
      Dst.Sched.run ?init:c.Dst.Explore.init ~check:c.Dst.Explore.check
        (Dst.Sched.Random seed) c.Dst.Explore.threads
    in
    if Dst.Sched.failed o then
      Alcotest.failf "seed %d: %s" seed
        (match o.Dst.Sched.failure with
        | Some f -> Format.asprintf "%a" Dst.Sched.pp_failure f
        | None -> "?")
  done;
  Dst.Inject.clear ()

(* Allocation failure surfaces as [Dst.Injected Mp_alloc], aborts the
   enclosing operation cleanly, and leaves both the TM and the pool in a
   state where the same operation simply succeeds on retry. *)
let test_alloc_failure_is_clean () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let l =
    Hoh_list.create ~mode:(Mode.Rr_kind (module Rr.V)) ~window:2 ~scatter:false ()
  in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        List.iter (fun k -> ignore (Hoh_list.insert l ~thread k)) [ 1; 2; 3 ])
  in
  let saw_fault = ref false and retried = ref false in
  let body () =
    Tm.Thread.with_registered (fun thread ->
        Dst.Inject.arm Dst.Mp_alloc Dst.Inject.Fail;
        (match Hoh_list.insert l ~thread 9 with
        | _ -> failwith "armed allocation unexpectedly succeeded"
        | exception Dst.Injected Dst.Mp_alloc -> saw_fault := true);
        retried := Hoh_list.insert l ~thread 9)
  in
  let o =
    Dst.Sched.run ~init
      ~check:(fun () ->
        match Hoh_list.check l with Ok () -> () | Error e -> failwith e)
      (Dst.Sched.Random 2) [ body ]
  in
  checkb "clean" false (Dst.Sched.failed o);
  checkb "fault was injected" true !saw_fault;
  checkb "retry succeeded" true !retried;
  checkb "key present after retry" true (List.mem 9 (Hoh_list.to_list l));
  check "live accounting intact" 4 (Hoh_list.pool_stats l).Mempool.Stats.live;
  Dst.Inject.clear ()

let () =
  Alcotest.run "dst"
    [
      ( "scheduler",
        [
          Alcotest.test_case "hooks inactive outside runs" `Quick
            test_points_inactive;
          Alcotest.test_case "runs and interleaves" `Quick
            test_run_completes_and_interleaves;
          Alcotest.test_case "same seed, same trace" `Quick
            test_same_seed_same_trace;
          Alcotest.test_case "fixed schedule replay" `Quick
            test_fixed_replays_trace;
          Alcotest.test_case "per-logical-thread TLS" `Quick
            test_tls_per_logical_thread;
          Alcotest.test_case "budget hang detection" `Quick
            test_budget_hang_detection;
          Alcotest.test_case "kill runs finalizers" `Quick
            test_killed_runs_finalizers;
          Alcotest.test_case "deterministic init phase" `Quick
            test_init_phase_is_deterministic;
          Alcotest.test_case "exhaustive finds lost update" `Quick
            test_exhaustive_finds_lost_update;
          Alcotest.test_case "exhaustive clean space" `Quick
            test_exhaustive_clean_space;
        ] );
      ( "bug discovery",
        [
          Alcotest.test_case "bug #1 straddle: random search" `Quick
            test_bug1_found_by_random_search;
          Alcotest.test_case "bug #1 control" `Quick test_bug1_control_clean;
          Alcotest.test_case "bug #2 publication: PCT search" `Quick
            test_bug2_found_by_pct_search;
          Alcotest.test_case "bug #2 control" `Quick test_bug2_control_clean;
          Alcotest.test_case "bug #3 stale hint: PCT search" `Quick
            test_bug3_found_by_pct_search;
          Alcotest.test_case "bug #3 control" `Quick test_bug3_control_clean;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "snapshot straddle (bug #1)" `Quick
            test_regression_bug1;
          Alcotest.test_case "ro publication (bug #2)" `Quick
            test_regression_bug2;
          Alcotest.test_case "stale hint (bug #3)" `Quick test_regression_bug3;
        ] );
      ( "extension",
        [
          Alcotest.test_case "opacity oracle" `Quick
            test_extension_opacity_oracle;
          Alcotest.test_case "read-phase oracle" `Quick test_read_phase_oracle;
          Alcotest.test_case "pinned extension paths" `Quick
            test_pinned_extension_paths;
        ] );
      ( "raw-speed optimizations",
        [
          Alcotest.test_case "middle-path safety oracle" `Quick
            test_middle_safety_oracle;
          Alcotest.test_case "fused-window serializability oracle" `Quick
            test_fusion_serializability_oracle;
          Alcotest.test_case "pinned optimization paths" `Quick
            test_pinned_optimization_paths;
        ] );
      ( "oracles",
        [
          Alcotest.test_case "stamp-order serializability" `Quick
            test_serializability_oracle;
          Alcotest.test_case "RR sequential spec" `Quick test_rr_model_oracle;
          Alcotest.test_case "precise mempool accounting" `Quick
            test_mempool_accounting_oracle;
        ] );
      ( "fault injection",
        [
          Alcotest.test_case "forced aborts absorbed" `Quick
            test_forced_aborts_are_absorbed;
          Alcotest.test_case "stalled commit and revocation" `Quick
            test_stalled_commit_and_revocation;
          Alcotest.test_case "allocation failure" `Quick
            test_alloc_failure_is_clean;
        ] );
    ]
