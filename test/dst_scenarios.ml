(* The three DESIGN.md concurrency bugs as deterministic-schedule-testing
   scenarios. Each builder re-arms the corresponding [Dst.Inject] flag (or
   clears it, for the control/fixed variants) and constructs fresh state,
   so every attempt of a search starts identically; the pinned schedules
   are the minimized traces the seeded searches produced, committed as
   regression inputs.

   Shared between the alcotest suite (test_dst.ml) and the capped
   [@dst-smoke] runner (dst_smoke.ml). *)

open Structs

(* ---- bug #1: serial-straddle torn snapshot ---- *)

(* A writer forced straight into the serial-irrevocable fallback
   ([max_attempts:0]) updates x then y; a reader snapshots both in one
   transaction. If [sample_rv] does not re-check the serial token after
   sampling the clock (the injected bug), the reader can sample the
   already-bumped serial [wv], accept the writer's first direct write as
   old enough, and commit the torn pair (1,0). *)
let straddle ~bug () =
  Dst.Inject.clear ();
  Dst.Inject.set_bug Dst.Inject.Snapshot_straddle bug;
  Tm.Thread.reset_ids_for_testing ();
  let x = Tm.tvar 0 and y = Tm.tvar 0 in
  let observed = ref (0, 0) in
  let writer () =
    Tm.Thread.with_registered (fun _ ->
        Tm.atomic ~max_attempts:0 (fun txn ->
            Tm.write txn x 1;
            Tm.write txn y 1))
  in
  let reader () =
    Tm.Thread.with_registered (fun _ ->
        observed := Tm.atomic (fun txn -> (Tm.read txn x, Tm.read txn y)))
  in
  {
    Dst.Explore.init = None;
    threads = [ writer; reader ];
    check =
      (fun () ->
        match !observed with
        | (0, 0) | (1, 1) -> ()
        | (a, b) -> failwith (Printf.sprintf "torn snapshot (%d,%d)" a b));
  }

(* ---- bug #2: read-only hazard publication race ---- *)

(* TMHP list, window 1, immediate retire-scan. Thread A's hand-off
   transaction is paused between deciding to reserve a node and storing
   the hazard slot; thread B removes that node (retire + scan frees it:
   nothing protects it yet) and recycles it as the tail key 5. Without
   forced commit validation on the otherwise read-only reserving
   transaction (the injected bug), A's hand-off commits against a stale
   snapshot and A resumes its lookup of 4 from what is now the key-5
   tail -- returning false for a key that was never removed. *)
let ro_publication ~bug () =
  Dst.Inject.clear ();
  Dst.Inject.set_bug Dst.Inject.Ro_publication bug;
  Tm.Thread.reset_ids_for_testing ();
  let l =
    Hoh_list.create ~mode:Mode.Tmhp ~window:1 ~scatter:false ~hp_threshold:1 ()
  in
  let looked = ref true and removed = ref false and inserted = ref false in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        List.iter (fun k -> ignore (Hoh_list.insert l ~thread k)) [ 1; 2; 3; 4 ])
  in
  let a () =
    Tm.Thread.with_registered (fun thread ->
        looked := Hoh_list.lookup l ~thread 4;
        Hoh_list.finalize_thread l ~thread)
  in
  let b () =
    Tm.Thread.with_registered (fun thread ->
        removed := Hoh_list.remove l ~thread 2;
        inserted := Hoh_list.insert l ~thread 5;
        Hoh_list.finalize_thread l ~thread)
  in
  {
    Dst.Explore.init = Some init;
    threads = [ a; b ];
    check =
      (fun () ->
        if not !removed then failwith "remove 2 failed";
        if not !inserted then failwith "insert 5 failed";
        if not !looked then failwith "lookup 4 = false (4 was never removed)";
        (match Hoh_list.check l with Ok () -> () | Error e -> failwith e);
        let got = Hoh_list.to_list l in
        if got <> [ 1; 3; 4; 5 ] then
          failwith ("contents " ^ String.concat ";" (List.map string_of_int got)));
  }

(* ---- bug #3: stale skiplist hint accepted after recycling ---- *)

(* Precise RR-FA skiplist, window 1, seed 128 chosen so the prefill
   towers are 10:1, 20:2, 30:1, 40:2 and the recycled node re-enters at
   height 1. Thread A removes 40 and pauses at the hand-off holding a
   reservation on 30, with preds[1] still pointing at node 20. Thread B
   removes 20 (freed immediately: precise reclamation) and inserts 25,
   which recycles the node under a new key and a shorter tower. A
   resumes; checking only [deleted] on the hint (the injected bug)
   accepts the recycled node as a level-1 predecessor and the level-1
   unlink walks off the level-1 list entirely. *)
let stale_hint ~bug () =
  Dst.Inject.clear ();
  Dst.Inject.set_bug Dst.Inject.Stale_hint bug;
  Tm.Thread.reset_ids_for_testing ();
  let sl =
    Hoh_skiplist.create
      ~mode:(Mode.Rr_kind (module Rr.Fa))
      ~window:1 ~scatter:false ~seed:128 ()
  in
  let r40 = ref false and r20 = ref false and i25 = ref false in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        List.iter
          (fun k -> ignore (Hoh_skiplist.insert sl ~thread k))
          [ 10; 20; 30; 40 ])
  in
  let a () =
    Tm.Thread.with_registered (fun thread ->
        r40 := Hoh_skiplist.remove sl ~thread 40)
  in
  let b () =
    Tm.Thread.with_registered (fun thread ->
        r20 := Hoh_skiplist.remove sl ~thread 20;
        i25 := Hoh_skiplist.insert sl ~thread 25)
  in
  {
    Dst.Explore.init = Some init;
    threads = [ a; b ];
    check =
      (fun () ->
        if not (!r40 && !r20 && !i25) then failwith "an operation failed";
        (match Hoh_skiplist.check sl with Ok () -> () | Error e -> failwith e);
        let got = Hoh_skiplist.to_list sl in
          if got <> [ 10; 25; 30 ] then
            failwith
              ("contents " ^ String.concat ";" (List.map string_of_int got)));
  }

(* ---- timestamp extension under a concurrent commit ---- *)

(* No injected bug here: these scenarios pin the extension protocol's
   behavior. A reader snapshots x then y while a writer commits between
   the two reads. In [extend_success] the writer touches only y, so the
   reader's stale read of y revalidates its intact read set {x}, extends
   rv, and completes in a single attempt; in [extend_fail] the writer
   updates both, the revalidation finds x changed, and the reader must
   abort and retry exactly as it did before extensions existed.

   [expect] selects the check:
   - [`Opaque]   opacity only — must hold on {e every} schedule; the
                 searches over these are the oracle runs proving the
                 extension never lets a torn pair commit;
   - [`Probe]    inverted: {e fail} when the extension fired — used once
                 to discover the pinned schedules below (the minimized
                 "failure" is precisely a schedule that drives the
                 protocol through the extension path);
   - [`Strong]   the full deterministic claim, for pinned replays. *)
let extend_scenario ~writes_x ~expect () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let x = Tm.tvar 0 and y = Tm.tvar 0 in
  let observed = ref (-1, -1) in
  let attempts = ref 0 and extensions = ref 0 and ext_fails = ref 0 in
  let writer () =
    Tm.Thread.with_registered (fun _ ->
        Tm.atomic (fun txn ->
            if writes_x then Tm.write txn x 1;
            Tm.write txn y 1))
  in
  let reader () =
    Tm.Thread.with_registered (fun _ ->
        let st = Tm.Thread.stats () in
        Tm.Stats.reset st;
        let r =
          Tm.atomic_stamped (fun txn ->
              let vx = Tm.read txn x in
              let vy = Tm.read txn y in
              (vx, vy))
        in
        observed := r.Tm.value;
        attempts := r.Tm.attempts;
        extensions := Tm.Stats.extensions st;
        ext_fails := Tm.Stats.ext_fails st)
  in
  let opaque () =
    match (writes_x, !observed) with
    | _, ((0, 0) | (1, 1)) | false, (0, 1) -> ()
    | _, (a, b) -> failwith (Printf.sprintf "torn snapshot (%d,%d)" a b)
  in
  {
    Dst.Explore.init = None;
    threads = [ writer; reader ];
    check =
      (fun () ->
        opaque ();
        match expect with
        | `Opaque -> ()
        | `Probe ->
            if (if writes_x then !ext_fails else !extensions) > 0 then
              failwith "extension path taken"
        | `Strong ->
            if writes_x then begin
              if !observed <> (1, 1) then
                failwith "writer did not commit mid-snapshot";
              if !attempts <> 2 then
                failwith (Printf.sprintf "%d attempts, wanted 2" !attempts);
              if !ext_fails < 1 then failwith "no failed extension recorded"
            end
            else begin
              if !observed <> (0, 1) then
                failwith "writer did not commit mid-snapshot";
              if !attempts <> 1 then
                failwith
                  (Printf.sprintf "%d attempts (aborted instead of extending)"
                     !attempts);
              if !extensions < 1 then failwith "no extension recorded"
            end);
  }

let extend_success ~expect = extend_scenario ~writes_x:false ~expect
let extend_fail ~expect = extend_scenario ~writes_x:true ~expect

(* ---- the read-phase hint under a paused committer ---- *)

(* A read-phase reader that hits a locked word must wait the (bounded)
   writeback section out rather than abort: on {e every} schedule —
   including those pausing the writer between its lock acquisition and
   writeback — the reader completes with zero [Lock_busy] aborts and
   never escalates to the serial fallback. *)
let read_phase_wait () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let x = Tm.tvar 0 in
  let seen = ref (-1) and lock_aborts = ref 0 and serial = ref true in
  let writer () =
    Tm.Thread.with_registered (fun _ ->
        Tm.atomic (fun txn -> Tm.write txn x 1))
  in
  let reader () =
    Tm.Thread.with_registered (fun _ ->
        let st = Tm.Thread.stats () in
        Tm.Stats.reset st;
        let r =
          Tm.atomic_stamped ~max_attempts:1 ~read_phase:true (fun txn ->
              Tm.read txn x)
        in
        seen := r.Tm.value;
        serial := r.Tm.serial;
        lock_aborts := Tm.Stats.aborts_lock st)
  in
  {
    Dst.Explore.init = None;
    threads = [ writer; reader ];
    check =
      (fun () ->
        if !seen <> 0 && !seen <> 1 then
          failwith (Printf.sprintf "read %d" !seen);
        if !lock_aborts > 0 then
          failwith
            (Printf.sprintf "%d Lock_busy aborts under read_phase"
               !lock_aborts);
        if !serial then failwith "read-phase transaction went serial");
  }

(* ---- the middle path: lock-excluded retries between the rungs ---- *)

(* Two incrementers of one counter, one speculative attempt each
   ([max_attempts:1]), sharing a middle-path lock. The loser's retry runs
   under the lock, excluded only from other middle-path transactions, and
   commits without ever reaching the serial rung.

   [expect] selects the check:
   - [`Safe]   must hold on {e every} schedule: both increments commit and
               the middle lock is released;
   - [`Probe]  inverted — fail when the middle path fired; used once to
               discover the pinned schedule below;
   - [`Strong] the deterministic claim for pinned replays: the middle
               path absorbed the contention (no serial fallback, no
               Lock_busy storm under the lock). *)
let middle_exclusion ~expect () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let x = Tm.tvar 0 in
  let m = Tm.Middle.create () in
  let mid = ref 0 and serial = ref 0 and locky = ref 0 in
  let incr_thread () =
    Tm.Thread.with_registered (fun _ ->
        let st = Tm.Thread.stats () in
        Tm.Stats.reset st;
        Tm.atomic ~max_attempts:1 ~middle:m (fun txn ->
            Tm.write txn x (Tm.read txn x + 1));
        mid := !mid + Tm.Stats.fallbacks_middle st;
        serial := !serial + Tm.Stats.fallbacks_serial st;
        locky := !locky + Tm.Stats.aborts_lock st)
  in
  {
    Dst.Explore.init = None;
    threads = [ incr_thread; incr_thread ];
    check =
      (fun () ->
        let v = Tm.peek x in
        if v <> 2 then failwith (Printf.sprintf "x = %d, wanted 2" v);
        if Tm.Middle.locked m then failwith "middle lock still held";
        match expect with
        | `Safe -> ()
        | `Probe -> if !mid > 0 then failwith "middle path taken"
        | `Strong ->
            if !mid < 1 then failwith "middle path never taken";
            if !serial > 0 then
              failwith
                (Printf.sprintf "%d serial fallbacks despite the middle path"
                   !serial);
            if !locky > 2 then
              failwith (Printf.sprintf "Lock_busy storm (%d aborts)" !locky));
  }

(* ---- window fusion: multiplicative shrink on a contended commit ---- *)

(* Fusion-4 list, window 1: thread A's lookups fuse up to 4 one-node
   windows per transaction, doubling the per-thread fuse budget on each
   clean commit; thread B's scripted updates conflict with a fused
   traversal, and the contended commit must halve the budget. Both logs
   feed the stamp-order serializability oracle, so the fused windows also
   prove they linearize correctly under fire.

   [expect]: [`Safe] (every schedule: structure invariants + the
   serializability oracle), [`Probe] (inverted — fail once the final fuse
   budget shrank below the ceiling; the discovery run), [`Strong] (pinned:
   the shrink deterministically happened). *)
let fusion_shrink ~expect () =
  Dst.Inject.clear ();
  Tm.Thread.reset_ids_for_testing ();
  let l =
    Hoh_list.create
      ~mode:(Mode.Rr_kind (module Rr.V))
      ~window:1 ~scatter:false ~fusion:4 ()
  in
  let initial = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let init () =
    Tm.Thread.with_registered (fun thread ->
        List.iter (fun k -> ignore (Hoh_list.insert l ~thread k)) initial)
  in
  let logs = Array.make 2 [] in
  let a_thread = ref 0 in
  let entry op key (result, stamp) =
    { Harness.Serial_check.op; key; result; earliest = stamp; stamp }
  in
  let scripted i script () =
    Tm.Thread.with_registered (fun thread ->
        if i = 0 then a_thread := thread;
        logs.(i) <-
          List.map
            (fun (op, key) ->
              match op with
              | `I ->
                  entry Harness.Workload.Insert key
                    (Hoh_list.insert_s l ~thread key)
              | `R ->
                  entry Harness.Workload.Remove key
                    (Hoh_list.remove_s l ~thread key)
              | `L ->
                  entry Harness.Workload.Lookup key
                    (Hoh_list.lookup_s l ~thread key))
            script)
  in
  let a = scripted 0 [ (`L, 8); (`L, 8) ] in
  let b = scripted 1 [ (`R, 6); (`I, 9) ] in
  {
    Dst.Explore.init = Some init;
    threads = [ a; b ];
    check =
      (fun () ->
        (match Hoh_list.check l with Ok () -> () | Error e -> failwith e);
        (match
           Harness.Serial_check.check ~initial
             [ Array.of_list logs.(0); Array.of_list logs.(1) ]
         with
        | Ok () -> ()
        | Error e -> failwith e);
        let budget = Hoh_list.fuse_budget l ~thread:!a_thread in
        match expect with
        | `Safe -> ()
        | `Probe -> if budget < 4 then failwith "fuse budget shrank"
        | `Strong ->
            if budget >= 4 then
              failwith
                (Printf.sprintf "fuse budget %d did not shrink on abort"
                   budget));
  }

(* ---- pinned minimized schedules and documented search budgets ---- *)

(* bug #1, random search (budget 500, <= 2000 runs; found at seed 6 in 19
   runs): reader pauses at the clock sample, writer runs its serial
   commit past the first direct write, reader resumes. *)
let sched_bug1 = [| 1; 0; 0; 1; 1 |]

(* bug #2, PCT depth 2 (budget 300, <= 6000 runs; found at seed 18 in 79
   runs): A walks to its second hand-off and pauses at the hazard
   publication; B runs remove 2 + insert 5 to completion. *)
let sched_bug2 = Array.concat [ Array.make 10 0; Array.make 42 1 ]

(* bug #3, PCT depth 2 (budget 400, <= 6000 runs; found at seed 29 in 247
   runs): A walks to the hand-off reserving node 30; B runs remove 20 +
   insert 25 to completion; A's resumed level-1 unlink trips. *)
let sched_bug3 = Array.concat [ Array.make 53 0; Array.make 124 1 ]

(* extension success, random probe search over [extend_success ~expect:`Probe]
   (budget 300, <= 4000 runs; found at seed 24 in 34 runs): the reader
   runs through its clock sample and the read of x, the exhausted
   schedule hands the rest of the run to the writer (lowest-numbered
   runnable thread), which commits y; the reader's resumed read of y is
   stale, revalidates {x}, and extends. *)
let sched_extend_ok = [| 1; 1 |]

(* extension failure, random probe search over [extend_fail ~expect:`Probe]
   (budget 300, <= 4000 runs; found at seed 43 in 55 runs): same shape
   one yield deeper; the writer's commit covers x as well, so the
   reader's revalidation finds its read set changed, the extension
   fails, and the second attempt snapshots (1,1). *)
let sched_extend_fail = [| 1; 1; 1 |]

(* middle path, random probe search over [middle_exclusion ~expect:`Probe]
   (budget 300, <= 2000 runs; found at seed 1 in 22 runs): the second
   incrementer reads x, the first runs to commit under it, the second's
   validation fails and its retry acquires the uncontended middle lock
   and commits — one middle fallback, zero serial. *)
let sched_middle = [| 1; 1; 1; 0; 0; 0; 1; 1; 1; 1; 1 |]

(* fusion shrink, PCT depth 2 over [fusion_shrink ~expect:`Probe] (budget
   400, <= 6000 runs; found at seed 50 in 198 runs): A runs both lookups
   until its final fused transaction is in flight with a grown budget,
   then B's remove 6 + insert 9 commit under it; the contended commit
   halves A's fuse budget below the ceiling. *)
let sched_fusion = Array.concat [ Array.make 69 0; Array.make 60 1 ]
