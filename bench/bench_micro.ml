(* Bechamel micro-benchmarks: per-operation latency of the six revocable-
   reservation implementations (Reserve+Release cycles, Get, Revoke), the
   asymptotic story behind Figures 2-7: O(T) revokes for the strict
   implementations versus O(1)/O(A) for the relaxed ones. *)

open Bechamel
open Toolkit

(* Give Revoke real work: pre-register a handful of ghost threads (RR-FA
   traverses one node per registered thread). *)
let populate rr =
  (* Hold all ghost registrations simultaneously (a barrier) so thread-id
     recycling cannot hand two ghosts the same per-thread slot. *)
  let barrier = Atomic.make 7 in
  let doms =
    List.init 7 (fun i ->
        Domain.spawn (fun () ->
            Tm.Thread.with_registered (fun _ ->
                Tm.atomic (fun txn ->
                    rr.Rr.register txn;
                    rr.Rr.reserve txn (1000 + i));
                Atomic.decr barrier;
                while Atomic.get barrier > 0 do
                  Domain.cpu_relax ()
                done)))
  in
  List.iter Domain.join doms

let rr_tests () =
  List.concat_map
    (fun (name, m) ->
      let rr = Rr.instantiate m ~hash:(fun r -> r) ~equal:Int.equal () in
      populate rr;
      Tm.atomic (fun txn -> rr.Rr.register txn);
      [
        Test.make
          ~name:(name ^ "/reserve+release")
          (Staged.stage (fun () ->
               Tm.atomic (fun txn ->
                   rr.Rr.reserve txn 1;
                   rr.Rr.release txn 1)));
        Test.make ~name:(name ^ "/get")
          (Staged.stage (fun () ->
               Tm.atomic (fun txn -> ignore (rr.Rr.get txn 1))));
        Test.make ~name:(name ^ "/revoke")
          (Staged.stage (fun () ->
               Tm.atomic (fun txn -> rr.Rr.revoke txn 2)));
      ])
    Rr.all

let tm_tests () =
  let v = Tm.tvar 0 in
  [
    Test.make ~name:"tm/read-only txn"
      (Staged.stage (fun () -> Tm.atomic (fun txn -> Tm.read txn v)));
    Test.make ~name:"tm/writer txn"
      (Staged.stage (fun () ->
           Tm.atomic (fun txn -> Tm.write txn v (Tm.read txn v + 1))));
  ]

let run ?(smoke = false) () =
  Tm.Thread.with_registered (fun _ ->
      let tests =
        Test.make_grouped ~name:"micro" ~fmt:"%s %s" (tm_tests () @ rr_tests ())
      in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
      in
      let instances = Instance.[ monotonic_clock ] in
      (* Smoke mode only needs to exercise every instrumented path once or
         twice for schema validation, not to produce stable estimates. *)
      let cfg =
        if smoke then
          Benchmark.cfg ~limit:50 ~quota:(Time.second 0.01) ~kde:None ()
        else
          Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000)
            ()
      in
      let raw = Benchmark.all cfg instances tests in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Printf.printf "\n== Micro-benchmarks: per-transaction latency (ns) ==\n";
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with
              | Some [ e ] -> e
              | _ -> nan
            in
            (name, est) :: acc)
          results []
        |> List.sort compare
      in
      List.iter
        (fun (name, est) -> Printf.printf "%-32s %12.0f ns/txn\n" name est)
        rows;
      print_newline ())
