(* Thread-sweep scalability baseline (`main.exe scaling`).

   The paper's whole argument is that hand-over-hand transactions scale
   where single-transaction traversals do not (Figs. 2-7), so the repo
   needs a reproducible perf trajectory: one sweep over 1..N domains x
   {slist, bst-int, skiplist} x the RR variants x lookup mixes, written to
   [BENCH_scaling.json] under the [hohtx-bench/1] schema so successive
   builds can be diffed mechanically. `main.exe scaling-smoke` (the
   @bench-smoke dune alias) runs a 2-thread miniature of the same sweep
   and validates the emitted file against the schema. *)

open Harness
module Spec = Factories.Spec
module Json = Telemetry.Json

let schema = "hohtx-bench/1"
let default_out = "BENCH_scaling.json"

type params = {
  quick : bool;
  verify : bool;
  threads_list : int list;
  json_stdout : bool;  (** also print the report to stdout *)
  out : string;  (** path of the emitted JSON file *)
}

(* One swept configuration: a structure/kind/mix triple; the thread count
   varies along the curve. Key ranges are sized so the default prefill
   (50%) yields structures long/deep enough for multi-window traversals. *)
type config = {
  structure : Spec.structure;
  kind : Structs.Mode.kind;
  lookup_pct : int;
  key_bits : int;
  adaptive : bool;  (** contention-adaptive window controller *)
}

let structure_key_bits = function
  | Spec.Slist | Spec.Dlist -> 8
  | Spec.Bst_int | Spec.Bst_ext -> 12
  | Spec.Skiplist -> 10
  | Spec.Hashset -> 10

let sweep_configs ?(adaptives = [ false ]) ~structures ~kinds ~mixes () =
  List.concat_map
    (fun structure ->
      List.concat_map
        (fun (_, kind) ->
          List.concat_map
            (fun lookup_pct ->
              List.map
                (fun adaptive ->
                  {
                    structure;
                    kind;
                    lookup_pct;
                    key_bits = structure_key_bits structure;
                    adaptive;
                  })
                adaptives)
            mixes)
        kinds)
    structures

let run_point p (c : config) ~ops_per_thread ~threads =
  let window = Factories.best_window ~threads in
  let handle =
    (Factories.make (Spec.v ~window ~adaptive:c.adaptive c.structure c.kind))
      .Factories.make ()
  in
  let spec =
    Workload.spec ~key_bits:c.key_bits ~lookup_pct:c.lookup_pct ~threads
      ~ops_per_thread ()
  in
  let r = Driver.run ~verify:p.verify spec handle in
  (match r.Driver.verdict with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "!! scaling [%s %s %d%%]: %s\n%!"
        (Spec.structure_name c.structure)
        (Structs.Mode.kind_name c.kind)
        c.lookup_pct e);
  let tm = r.Driver.tm in
  Json.Obj
    [
      ("threads", Json.Int threads);
      ("window", Json.Int window);
      ("throughput", Json.Float r.Driver.throughput);
      ("elapsed_s", Json.Float r.Driver.elapsed_s);
      ("total_ops", Json.Int r.Driver.total_ops);
      ("started", Json.Int (Tm.Stats.started tm));
      ("aborts", Json.Int (Tm.Stats.total_aborts tm));
      ("abort_rate", Json.Float (Driver.abort_rate r));
      ("fallbacks", Json.Int (Tm.Stats.fallbacks tm));
      ("fallbacks_middle", Json.Int (Tm.Stats.fallbacks_middle tm));
      ("fallbacks_serial", Json.Int (Tm.Stats.fallbacks_serial tm));
      ("extensions", Json.Int (Tm.Stats.extensions tm));
      ("ext_fails", Json.Int (Tm.Stats.ext_fails tm));
      ("verified", Json.Bool (r.Driver.verdict = Ok ()));
    ]

let run_config p c ~ops_per_thread =
  let points =
    List.map
      (fun threads -> run_point p c ~ops_per_thread ~threads)
      p.threads_list
  in
  Printf.printf "%-9s %-6s %3d%% lookups%s:%s\n%!"
    (Spec.structure_name c.structure)
    (Structs.Mode.kind_name c.kind)
    c.lookup_pct
    (if c.adaptive then " adaptive " else " ")
    (String.concat ""
       (List.map2
          (fun threads pt ->
            let tput =
              match Json.member "throughput" pt with
              | Some (Json.Float f) -> f
              | _ -> 0.
            in
            Printf.sprintf "  %dT %.0f/s" threads tput)
          p.threads_list points));
  Json.Obj
    [
      ("structure", Json.String (Spec.structure_name c.structure));
      ("kind", Json.String (Structs.Mode.kind_name c.kind));
      ("lookup_pct", Json.Int c.lookup_pct);
      ("key_bits", Json.Int c.key_bits);
      ("adaptive", Json.Bool c.adaptive);
      ("ops_per_thread", Json.Int ops_per_thread);
      ("points", Json.List points);
    ]

(* The sanitizer probe: one representative configuration run three ways —
   a plain baseline (TxSan hooks compiled in but disabled, i.e. the
   seed-equivalent path plus one relaxed bool load per hook), a paired
   off-mode sample (so "within noise" compares two runs of the *same*
   code), and a TxSan-armed run in [Count] mode. Off-mode must stay within
   noise of the baseline; the on-mode slowdown is recorded, not bounded —
   precision is allowed to cost. *)
let san_probe p (c : config) ~ops_per_thread =
  (* Floor the probe's op count: the noise bound below needs runs long
     enough that scheduler jitter doesn't dominate, even in smoke mode. *)
  let ops_per_thread = max 2_000 ops_per_thread in
  let threads = List.fold_left max 1 p.threads_list in
  let point ~san =
    let window = Factories.best_window ~threads in
    let handle =
      (Factories.make (Spec.v ~window ~adaptive:c.adaptive c.structure c.kind))
        .Factories.make ()
    in
    let spec =
      Workload.spec ~key_bits:c.key_bits ~lookup_pct:c.lookup_pct ~threads
        ~ops_per_thread ()
    in
    Driver.run ~verify:p.verify ~san spec handle
  in
  let base = point ~san:false in
  let off = point ~san:false in
  let on = point ~san:true in
  let violations =
    match on.Driver.san with
    | Some per_rule -> List.fold_left (fun a (_, n) -> a + n) 0 per_rule
    | None -> 0
  in
  let off_vs_baseline = off.Driver.throughput /. base.Driver.throughput in
  let on_slowdown = base.Driver.throughput /. on.Driver.throughput in
  Printf.printf
    "san probe  %-9s %-6s %dT: off/base %.2f, on-mode slowdown %.1fx, \
     violations %d\n%!"
    (Spec.structure_name c.structure)
    (Structs.Mode.kind_name c.kind)
    threads off_vs_baseline on_slowdown violations;
  Json.Obj
    [
      ("structure", Json.String (Spec.structure_name c.structure));
      ("kind", Json.String (Structs.Mode.kind_name c.kind));
      ("lookup_pct", Json.Int c.lookup_pct);
      ("threads", Json.Int threads);
      ("ops_per_thread", Json.Int ops_per_thread);
      ("baseline_throughput", Json.Float base.Driver.throughput);
      ("off_throughput", Json.Float off.Driver.throughput);
      ("on_throughput", Json.Float on.Driver.throughput);
      ("off_vs_baseline", Json.Float off_vs_baseline);
      ("on_slowdown", Json.Float on_slowdown);
      ("violations", Json.Int violations);
    ]

(* The raw-speed probe matrix: the hot-traversal list configuration run
   once per point of the optimization on/off grid — window fusion, the
   middle lock path, and mempool magazines, individually and together —
   plus a paired all-off rerun so "within noise" compares two runs of the
   same code. The knobs are compiled into every binary and default off, so
   the all-off point doubles as the guard that carrying them costs
   nothing. *)
let opt_variants =
  [
    ("all-off", (1, false, false));
    ("fuse4", (4, false, false));
    ("mid", (1, true, false));
    ("mag", (1, false, true));
    ("all-on", (4, true, true));
  ]

let opt_probe p ~ops_per_thread =
  let ops_per_thread = max 2_000 ops_per_thread in
  let threads = List.fold_left max 1 p.threads_list in
  let window = Factories.best_window ~threads in
  let kind = Structs.Mode.Rr_kind (module Rr.V : Rr.S) in
  (* Hot-traversal mix: a small key range concentrates the traffic so
     conflicts are real, and [max_attempts = 1] (the soak-test convention)
     sends every repeated conflict down the fallback ladder — the
     middle path's effect on serial fallbacks is only measurable when
     the all-off configuration actually takes that ladder. *)
  let lookup_pct = 33 and key_bits = 5 and max_attempts = 1 in
  let point ~fusion ~middle ~magazines =
    (* Built directly (not via [Factories.make]) so the pool's magazine
       counters stay readable after the run. *)
    let l =
      Structs.Hoh_list.create ~mode:kind ~window ~fusion ~middle ~magazines
        ~max_attempts ()
    in
    let spec =
      Workload.spec ~key_bits ~lookup_pct ~threads ~ops_per_thread ()
    in
    let r = Driver.run ~verify:p.verify spec (Store.of_hoh_list l) in
    (r, Structs.Hoh_list.pool_stats l)
  in
  (* One discarded warm-up run: the first driver run on a fresh binary
     pays allocator/GC cold-start costs that would otherwise land
     entirely on the baseline sample and masquerade as noise. *)
  ignore (point ~fusion:1 ~middle:false ~magazines:false);
  let base, _ = point ~fusion:1 ~middle:false ~magazines:false in
  let runs =
    List.map
      (fun (name, (fusion, middle, magazines)) ->
        (name, (fusion, middle, magazines), point ~fusion ~middle ~magazines))
      opt_variants
  in
  let tput name =
    let _, _, (r, _) = List.find (fun (n, _, _) -> n = name) runs in
    r.Driver.throughput
  in
  let serial name =
    let _, _, (r, _) = List.find (fun (n, _, _) -> n = name) runs in
    Tm.Stats.fallbacks_serial r.Driver.tm
  in
  let all_off = tput "all-off" in
  let off_vs_baseline = all_off /. base.Driver.throughput in
  let all_on_vs_all_off = tput "all-on" /. all_off in
  let middle_reduces_serial = serial "mid" < serial "all-off" in
  Printf.printf
    "opt probe  slist     RR-V   %dT: off/base %.2f, all-on/all-off %.2fx, \
     serial fallbacks %d -> %d under middle\n%!"
    threads off_vs_baseline all_on_vs_all_off (serial "all-off") (serial "mid");
  let variant_json (name, (fusion, middle, magazines), (r, pool)) =
    let spec =
      Spec.v ~window ~fusion ~middle ~magazines ~max_attempts Spec.Slist kind
    in
    let tm = r.Driver.tm in
    Json.Obj
      [
        ("variant", Json.String name);
        ("label", Json.String (Spec.label spec));
        ("fusion", Json.Int fusion);
        ("middle", Json.Bool middle);
        ("magazines", Json.Bool magazines);
        ("throughput", Json.Float r.Driver.throughput);
        ("aborts", Json.Int (Tm.Stats.total_aborts tm));
        ("fallbacks_middle", Json.Int (Tm.Stats.fallbacks_middle tm));
        ("fallbacks_serial", Json.Int (Tm.Stats.fallbacks_serial tm));
        ("magazine_hits", Json.Int pool.Mempool.Stats.magazine_hits);
        ("magazine_misses", Json.Int pool.Mempool.Stats.magazine_misses);
        ("vs_all_off", Json.Float (r.Driver.throughput /. all_off));
        ("verified", Json.Bool (r.Driver.verdict = Ok ()));
      ]
  in
  Json.Obj
    [
      ("structure", Json.String (Spec.structure_name Spec.Slist));
      ("kind", Json.String (Structs.Mode.kind_name kind));
      ("lookup_pct", Json.Int lookup_pct);
      ("key_bits", Json.Int key_bits);
      ("max_attempts", Json.Int max_attempts);
      ("threads", Json.Int threads);
      ("ops_per_thread", Json.Int ops_per_thread);
      ("baseline_throughput", Json.Float base.Driver.throughput);
      ("off_vs_baseline", Json.Float off_vs_baseline);
      ("all_on_vs_all_off", Json.Float all_on_vs_all_off);
      ("middle_reduces_serial", Json.Bool middle_reduces_serial);
      ("variants", Json.List (List.map variant_json runs));
    ]

let report p ~mode ~configs ~ops_per_thread =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("bench", Json.String "scaling");
      ("mode", Json.String mode);
      ( "threads",
        Json.List (List.map (fun t -> Json.Int t) p.threads_list) );
      ( "configs",
        Json.List (List.map (run_config p ~ops_per_thread) configs) );
      ("san", san_probe p (List.hd configs) ~ops_per_thread);
      ("opt", opt_probe p ~ops_per_thread);
    ]

let write_report ~out js =
  let oc = open_out out in
  output_string oc (Json.to_string js);
  output_char oc '\n';
  close_out oc

(* ---- schema validation (used by the smoke alias and tests) ---- *)

let validate js =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let field name conv o =
    match Option.bind (Json.member name o) conv with
    | Some v -> Ok v
    | None -> err "missing or ill-typed field %S" name
  in
  let* s = field "schema" Json.to_string_opt js in
  let* () = if s = schema then Ok () else err "schema %S, wanted %S" s schema in
  let* _ = field "bench" Json.to_string_opt js in
  let* _ = field "mode" Json.to_string_opt js in
  let* san = field "san" Option.some js in
  let* off = field "off_throughput" Json.to_float san in
  let* () = if off > 0. then Ok () else err "san off_throughput <= 0" in
  let* on = field "on_throughput" Json.to_float san in
  let* () = if on > 0. then Ok () else err "san on_throughput <= 0" in
  let* ratio = field "off_vs_baseline" Json.to_float san in
  let* () = if ratio > 0. then Ok () else err "san off_vs_baseline <= 0" in
  let* slow = field "on_slowdown" Json.to_float san in
  let* () = if slow > 0. then Ok () else err "san on_slowdown <= 0" in
  let* viols = field "violations" Json.to_int san in
  let* () = if viols >= 0 then Ok () else err "negative san violations" in
  let* opt = field "opt" Option.some js in
  let* obase = field "baseline_throughput" Json.to_float opt in
  let* () = if obase > 0. then Ok () else err "opt baseline_throughput <= 0" in
  let* oratio = field "off_vs_baseline" Json.to_float opt in
  let* () = if oratio > 0. then Ok () else err "opt off_vs_baseline <= 0" in
  let* _ = field "all_on_vs_all_off" Json.to_float opt in
  let* _ = field "middle_reduces_serial" Json.to_bool opt in
  let* variants = field "variants" Json.to_list opt in
  let* () =
    if List.length variants = List.length opt_variants then Ok ()
    else err "opt probe variant set incomplete"
  in
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        let* _ = field "variant" Json.to_string_opt v in
        let* _ = field "label" Json.to_string_opt v in
        let* tput = field "throughput" Json.to_float v in
        let* () = if tput > 0. then Ok () else err "opt throughput <= 0" in
        let* fm = field "fallbacks_middle" Json.to_int v in
        let* () =
          if fm >= 0 then Ok () else err "negative fallbacks_middle"
        in
        let* fs = field "fallbacks_serial" Json.to_int v in
        let* () =
          if fs >= 0 then Ok () else err "negative fallbacks_serial"
        in
        let* mh = field "magazine_hits" Json.to_int v in
        let* () = if mh >= 0 then Ok () else err "negative magazine_hits" in
        let* mm = field "magazine_misses" Json.to_int v in
        let* () =
          if mm >= 0 then Ok () else err "negative magazine_misses"
        in
        Ok ())
      (Ok ()) variants
  in
  let* configs = field "configs" Json.to_list js in
  let* () = if configs = [] then err "empty configs" else Ok () in
  List.fold_left
    (fun acc c ->
      let* () = acc in
      let* _ = field "structure" Json.to_string_opt c in
      let* _ = field "kind" Json.to_string_opt c in
      let* _ = field "lookup_pct" Json.to_int c in
      let* _ = field "key_bits" Json.to_int c in
      let* _ = field "adaptive" Json.to_bool c in
      let* _ = field "ops_per_thread" Json.to_int c in
      let* points = field "points" Json.to_list c in
      let* () = if points = [] then err "config with no points" else Ok () in
      List.fold_left
        (fun acc pt ->
          let* () = acc in
          let* threads = field "threads" Json.to_int pt in
          let* () = if threads >= 1 then Ok () else err "threads < 1" in
          let* tput = field "throughput" Json.to_float pt in
          let* () = if tput > 0. then Ok () else err "throughput <= 0" in
          let* rate = field "abort_rate" Json.to_float pt in
          let* () =
            if rate >= 0. then Ok () else err "negative abort_rate"
          in
          let* _ = field "aborts" Json.to_int pt in
          let* _ = field "fallbacks" Json.to_int pt in
          let* fm = field "fallbacks_middle" Json.to_int pt in
          let* () =
            if fm >= 0 then Ok () else err "negative fallbacks_middle"
          in
          let* fs = field "fallbacks_serial" Json.to_int pt in
          let* () =
            if fs >= 0 then Ok () else err "negative fallbacks_serial"
          in
          let* ext = field "extensions" Json.to_int pt in
          let* () = if ext >= 0 then Ok () else err "negative extensions" in
          let* ef = field "ext_fails" Json.to_int pt in
          let* () = if ef >= 0 then Ok () else err "negative ext_fails" in
          Ok ())
        (Ok ()) points)
    (Ok ()) configs

(* ---- entry points ---- *)

let run p =
  let ops_per_thread = if p.quick then 2_000 else 20_000 in
  let configs =
    sweep_configs
      ~adaptives:[ false; true ]
      ~structures:[ Spec.Slist; Spec.Bst_int; Spec.Skiplist ]
      ~kinds:Factories.rr_kinds ~mixes:[ 33; 80 ] ()
  in
  Printf.printf
    "scaling sweep: %d configs x threads {%s}, %d ops/thread -> %s\n%!"
    (List.length configs)
    (String.concat "," (List.map string_of_int p.threads_list))
    ops_per_thread p.out;
  let js =
    report p
      ~mode:(if p.quick then "quick" else "full")
      ~configs ~ops_per_thread
  in
  write_report ~out:p.out js;
  if p.json_stdout then print_endline (Json.to_string js);
  Printf.printf "wrote %s\n%!" p.out

let smoke () =
  let p =
    {
      quick = true;
      verify = true;
      threads_list = [ 1; 2 ];
      json_stdout = false;
      out = default_out;
    }
  in
  let configs =
    sweep_configs
      ~adaptives:[ false; true ]
      ~structures:[ Spec.Slist ]
      ~kinds:
        [
          ("RR-V", Structs.Mode.Rr_kind (module Rr.V));
          ("RR-XO", Structs.Mode.Rr_kind (module Rr.Xo));
        ]
      ~mixes:[ 33 ] ()
  in
  let js = report p ~mode:"smoke" ~configs ~ops_per_thread:300 in
  write_report ~out:p.out js;
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        prerr_endline ("bench-smoke: " ^ m);
        exit 1)
      fmt
  in
  let ic = open_in p.out in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  (match Json.of_string text with
  | Error e -> fail "emitted JSON does not parse: %s" e
  | Ok parsed -> (
      if not (Json.equal parsed js) then
        fail "JSON round-trip changed the value";
      match validate parsed with
      | Error e -> fail "schema validation failed: %s" e
      | Ok () -> ()));
  (* Off-mode must be within noise of the baseline: an accidentally-armed
     sanitizer serializes every access on a global mutex (5-10x), while the
     legitimate hook cost is one relaxed bool load. The bound is loose
     because smoke runs are short and containers are noisy. *)
  (match Option.bind (Json.member "san" js) (Json.member "off_vs_baseline") with
  | Some (Json.Float ratio) when ratio < 0.33 ->
      fail "sanitizer-off throughput fell out of noise (ratio %.2f)" ratio
  | Some (Json.Float _) -> ()
  | _ -> fail "san probe missing off_vs_baseline");
  (* Same bound for the optimization knobs: all three are compiled into
     the binary but disabled in the all-off point, so falling out of noise
     against the paired baseline rerun means a disabled knob has a hot-path
     cost. *)
  (match Option.bind (Json.member "opt" js) (Json.member "off_vs_baseline") with
  | Some (Json.Float ratio) when ratio < 0.33 ->
      fail "optimizations-off throughput fell out of noise (ratio %.2f)" ratio
  | Some (Json.Float _) -> ()
  | _ -> fail "opt probe missing off_vs_baseline");
  Printf.printf "bench-smoke OK: %s validates against %s\n" p.out schema
