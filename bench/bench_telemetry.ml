(* Telemetry demonstration (`main.exe telemetry`) and schema smoke test
   (`main.exe telemetry-smoke`, run from the @telemetry-smoke dune alias).

   Both enable the global switch, build structures *afterwards* (gauge
   providers register at construction time), drive a deliberately contended
   workload so abort attribution has something to show, and emit the
   post-quiescence report. *)

open Harness

(* Small key range + write-heavy mix + tiny windows: plenty of conflicts
   between the two domains, so read_invalid/lock_busy attribution rows
   appear even on a single core. *)
let contended_run ~ops () =
  let spec =
    Workload.spec ~key_bits:5 ~lookup_pct:10 ~threads:2 ~ops_per_thread:ops ()
  in
  let factory =
    Factories.make
      (Factories.Spec.v ~window:2 Factories.Spec.Slist
         (Structs.Mode.Rr_kind (module Rr.Xo)))
  in
  let handle = factory.Factories.make () in
  Driver.run ~verify:false spec handle

let report_of_run r =
  match r.Driver.telemetry with
  | Some rep -> rep
  | None -> failwith "telemetry run produced no report (switch off?)"

let run ~json () =
  Telemetry.set_enabled true;
  Telemetry.Gauges.clear ();
  let r = contended_run ~ops:20_000 () in
  let rep = report_of_run r in
  if json then
    print_endline (Telemetry.Json.to_string (Telemetry.Report.to_json rep))
  else begin
    Format.printf "%a@." Driver.pp_result r;
    Format.printf "%a" Telemetry.Report.pp rep
  end

(* Schema smoke: micro-benchmarks run under telemetry (hot-path
   instrumentation must not crash or skew bechamel into nonsense), then a
   contended run's report must serialize to JSON that parses back and
   validates, with the gauge groups the tentpole promises. *)
let smoke () =
  Telemetry.set_enabled true;
  Telemetry.Gauges.clear ();
  Bench_micro.run ~smoke:true ();
  let r = contended_run ~ops:5_000 () in
  let rep = report_of_run r in
  let js = Telemetry.Report.to_json rep in
  let text = Telemetry.Json.to_string js in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("telemetry-smoke: " ^ m); exit 1) fmt in
  (match Telemetry.Json.of_string text with
  | Error e -> fail "emitted JSON does not parse: %s" e
  | Ok parsed -> (
      if not (Telemetry.Json.equal parsed js) then
        fail "JSON round-trip changed the value";
      match Telemetry.Report.validate parsed with
      | Error e -> fail "schema validation failed: %s" e
      | Ok () -> ()));
  let groups =
    List.sort_uniq compare
      (List.map
         (fun s -> s.Telemetry.Gauges.group)
         rep.Telemetry.Report.gauges)
  in
  List.iter
    (fun g ->
      if not (List.mem g groups) then
        fail "missing gauge group %S (have: %s)" g (String.concat ", " groups))
    [ "mempool"; "rr" ];
  if Telemetry.Histogram.count rep.Telemetry.Report.attempts = 0 then
    fail "attempt histogram is empty";
  Printf.printf
    "telemetry-smoke OK: %d-byte report, %d attribution rows, gauges: %s\n"
    (String.length text)
    (List.length (Telemetry.Attribution.entries rep.Telemetry.Report.attribution))
    (String.concat ", " groups)
